// Unit tests for the crypto substrate: SHA-1, HMAC, ARC4, PRNG, base32.
#include <gtest/gtest.h>

#include "src/crypto/arc4.h"
#include "src/crypto/prng.h"
#include "src/crypto/sha1.h"
#include "src/util/bytes.h"

namespace {

using crypto::Arc4;
using crypto::HmacSha1;
using crypto::Prng;
using crypto::Sha1;
using crypto::Sha1Digest;
using util::Bytes;
using util::BytesOf;
using util::HexEncode;

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HexEncode(Sha1Digest(std::string(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HexEncode(Sha1Digest(std::string("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(HexEncode(Sha1Digest(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Digest(), Sha1Digest(msg)) << "split at " << split;
  }
}

TEST(Sha1Test, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edge all hash distinctly
  // and deterministically.
  std::vector<Bytes> digests;
  for (size_t len : {54, 55, 56, 57, 63, 64, 65, 119, 120, 128}) {
    Bytes digest = Sha1Digest(std::string(len, 'x'));
    for (const Bytes& prev : digests) {
      EXPECT_NE(digest, prev);
    }
    EXPECT_EQ(digest, Sha1Digest(std::string(len, 'x')));
    digests.push_back(digest);
  }
}

TEST(HmacSha1Test, Rfc2202Vector1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha1(key, BytesOf("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Vector2) {
  EXPECT_EQ(HexEncode(HmacSha1(BytesOf("Jefe"), BytesOf("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, LongKeyIsHashed) {
  // Keys longer than the block size must be pre-hashed (RFC 2202 case 6).
  Bytes key(80, 0xaa);
  EXPECT_EQ(HexEncode(HmacSha1(key, BytesOf("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1Test, KeySensitivity) {
  Bytes key1(20, 1);
  Bytes key2(20, 2);
  Bytes msg = BytesOf("message");
  EXPECT_NE(HmacSha1(key1, msg), HmacSha1(key2, msg));
}

TEST(Arc4Test, ClassicKnownVectors) {
  // Keys under 128 bits take a single key-schedule pass, i.e. standard
  // RC4, so the classic published vectors must hold.
  struct Vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext_hex;
  };
  const Vector kVectors[] = {
      {"Key", "Plaintext", "bbf316e8d940af0ad3"},
      {"Wiki", "pedia", "1021bf0420"},
      {"Secret", "Attack at dawn", "45a01f645fc35b383552544b9bf5"},
  };
  for (const Vector& v : kVectors) {
    Arc4 cipher(BytesOf(v.key));
    Bytes data = BytesOf(v.plaintext);
    cipher.Crypt(&data);
    EXPECT_EQ(util::HexEncode(data), v.ciphertext_hex) << v.key;
  }
}

TEST(Arc4Test, KeystreamIsDeterministic) {
  Arc4 a(BytesOf("0123456789abcdefghij"));
  Arc4 b(BytesOf("0123456789abcdefghij"));
  EXPECT_EQ(a.NextBytes(256), b.NextBytes(256));
}

TEST(Arc4Test, EncryptDecryptRoundTrip) {
  Bytes key = BytesOf("abcdefghijklmnopqrst");
  Bytes plaintext = BytesOf("attack at dawn; bring the self-certifying pathnames");
  Bytes data = plaintext;
  Arc4 enc(key);
  enc.Crypt(&data);
  EXPECT_NE(data, plaintext);
  Arc4 dec(key);
  dec.Crypt(&data);
  EXPECT_EQ(data, plaintext);
}

TEST(Arc4Test, DifferentKeysDifferentStreams) {
  Arc4 a(BytesOf("abcdefghijklmnopqrst"));
  Arc4 b(BytesOf("abcdefghijklmnopqrsu"));
  EXPECT_NE(a.NextBytes(64), b.NextBytes(64));
}

TEST(Arc4Test, TwentyByteKeySpinsTwice) {
  // A 20-byte key must not produce the same stream as standard single-pass
  // RC4 of a 16-byte truncation or extension; sanity check: prefix change
  // anywhere in the 20 bytes changes the stream.
  Bytes base = BytesOf("aaaaaaaaaaaaaaaaaaaa");
  Arc4 ref(base);
  Bytes ref_stream = ref.NextBytes(64);
  for (size_t i = 0; i < base.size(); ++i) {
    Bytes k = base;
    k[i] ^= 0x80;
    Arc4 variant(k);
    EXPECT_NE(variant.NextBytes(64), ref_stream) << "byte " << i << " ignored by schedule";
  }
}

TEST(PrngTest, DeterministicFromSeed) {
  Prng a(uint64_t{42});
  Prng b(uint64_t{42});
  EXPECT_EQ(a.RandomBytes(100), b.RandomBytes(100));
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(uint64_t{42});
  Prng b(uint64_t{43});
  EXPECT_NE(a.RandomBytes(100), b.RandomBytes(100));
}

TEST(PrngTest, RandomUint64RespectsBound) {
  Prng prng(uint64_t{7});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.RandomUint64(17), 17u);
  }
}

TEST(PrngTest, RandomUint64CoversRange) {
  Prng prng(uint64_t{7});
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[prng.RandomUint64(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 300) << "suspiciously non-uniform";
  }
}

TEST(PrngTest, AddEntropyChangesStream) {
  Prng a(uint64_t{1});
  Prng b(uint64_t{1});
  b.AddEntropy(BytesOf("keystroke timings"));
  EXPECT_NE(a.RandomBytes(64), b.RandomBytes(64));
}

TEST(Base32Test, RoundTrip) {
  Prng prng(uint64_t{5});
  for (size_t len : {0, 1, 2, 5, 19, 20, 21, 64}) {
    Bytes data = prng.RandomBytes(len);
    std::string encoded = util::Base32Encode(data);
    auto decoded = util::Base32Decode(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), data) << "len " << len;
  }
}

TEST(Base32Test, HostIdLengthIs32Chars) {
  Bytes host_id(20, 0xff);
  EXPECT_EQ(util::Base32Encode(host_id).size(), 32u);
}

TEST(Base32Test, AlphabetOmitsConfusableCharacters) {
  // Paper §2.2: the encoding omits "l", "1", "0", and "o".
  Prng prng(uint64_t{11});
  std::string all;
  for (int i = 0; i < 100; ++i) {
    all += util::Base32Encode(prng.RandomBytes(20));
  }
  EXPECT_EQ(all.find('l'), std::string::npos);
  EXPECT_EQ(all.find('1'), std::string::npos);
  EXPECT_EQ(all.find('0'), std::string::npos);
  EXPECT_EQ(all.find('o'), std::string::npos);
}

TEST(Base32Test, RejectsInvalidCharacters) {
  EXPECT_FALSE(util::Base32Decode("abc0").ok());
  EXPECT_FALSE(util::Base32Decode("ab l").ok());
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  auto decoded = util::HexDecode(util::HexEncode(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(HexTest, RejectsOddLengthAndBadChars) {
  EXPECT_FALSE(util::HexDecode("abc").ok());
  EXPECT_FALSE(util::HexDecode("zz").ok());
}

TEST(ConstantTimeEqualsTest, Basics) {
  EXPECT_TRUE(util::ConstantTimeEquals({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(util::ConstantTimeEquals({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(util::ConstantTimeEquals({1, 2, 3}, {1, 2}));
}

}  // namespace
