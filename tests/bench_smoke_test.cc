// Locks the benchmark testbed's qualitative results into the test suite:
// the orderings the paper reports must hold on every build, so a cost-
// model or caching regression fails fast here rather than silently
// skewing EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

double FchownLatencySeconds(Config config) {
  Testbed tb(config);
  std::string dir = tb.WorkDir();
  auto file = tb.vfs()->Open(tb.user(), dir + "/t", vfs::OpenFlags::CreateRw());
  EXPECT_TRUE(file.ok());
  nfs::Sattr chown;
  chown.uid = 4242;
  sim::Stopwatch watch(tb.clock());
  for (int i = 0; i < 50; ++i) {
    (void)file->SetAttr(chown);
  }
  return watch.elapsed_seconds() / 50;
}

TEST(BenchSmokeTest, Fig5LatencyOrdering) {
  double udp = FchownLatencySeconds(Config::kNfsUdp);
  double tcp = FchownLatencySeconds(Config::kNfsTcp);
  double sfs = FchownLatencySeconds(Config::kSfs);
  double sfs_nocrypt = FchownLatencySeconds(Config::kSfsNoCrypt);
  EXPECT_LT(udp, tcp);
  EXPECT_LT(tcp, sfs_nocrypt);
  EXPECT_LT(sfs_nocrypt, sfs);
  // The paper's headline ratio: SFS ~4x NFS/UDP on latency.
  EXPECT_GT(sfs / udp, 3.0);
  EXPECT_LT(sfs / udp, 5.0);
  // Encryption is a small fraction of the extra latency (§4.2).
  EXPECT_LT((sfs - sfs_nocrypt) / (sfs - udp), 0.2);
}

double SeqReadSeconds(Config config, size_t mb) {
  Testbed tb(config);
  std::string dir = tb.WorkDir();
  bench::Check(tb.vfs()->Open(tb.user(), dir + "/s", vfs::OpenFlags::CreateRw()).status(),
               "create");
  bench::Check(tb.vfs()->Truncate(tb.user(), dir + "/s", mb << 20), "truncate");
  tb.DropClientCaches();
  auto file = tb.vfs()->Open(tb.user(), dir + "/s", vfs::OpenFlags::ReadOnly());
  EXPECT_TRUE(file.ok());
  sim::Stopwatch watch(tb.clock());
  for (uint64_t off = 0; off < (mb << 20); off += 8192) {
    (void)file->Pread(off, 8192);
  }
  return watch.elapsed_seconds();
}

TEST(BenchSmokeTest, Fig5ThroughputOrdering) {
  double udp = SeqReadSeconds(Config::kNfsUdp, 8);
  double tcp = SeqReadSeconds(Config::kNfsTcp, 8);
  double sfs = SeqReadSeconds(Config::kSfs, 8);
  double sfs_nocrypt = SeqReadSeconds(Config::kSfsNoCrypt, 8);
  EXPECT_LT(udp, tcp);
  EXPECT_LT(tcp, sfs_nocrypt);
  EXPECT_LT(sfs_nocrypt, sfs);  // Encryption visibly caps streaming.
  // SFS streams at roughly 2-3x less than NFS/UDP (paper: 9.3 vs 4.1).
  EXPECT_GT(sfs / udp, 1.7);
  EXPECT_LT(sfs / udp, 3.5);
}

TEST(BenchSmokeTest, CleanRunReportsZeroRetransmissionsViaRegistry) {
  // The loss-masking machinery must be invisible on a clean link: the
  // registry aggregates that the benchmarks report (link retransmissions
  // + stale retries, duplicate-cache hits) all read zero.
  for (Config config : {Config::kNfsUdp, Config::kSfs}) {
    Testbed tb(config);
    std::string dir = tb.WorkDir();
    bench::WriteFile(&tb, dir + "/clean", bench::Content(16 * 1024, /*seed=*/7));
    tb.DropClientCaches();
    bench::ReadFile(&tb, dir + "/clean");
    EXPECT_GT(tb.WireMessages(), 0u) << bench::ConfigName(config);
    EXPECT_EQ(tb.Retransmissions(), 0u) << bench::ConfigName(config);
    EXPECT_EQ(tb.DrcHits(), 0u) << bench::ConfigName(config);
    EXPECT_EQ(tb.registry()->CounterValue("link.retransmissions"), 0u)
        << bench::ConfigName(config);
    EXPECT_EQ(tb.registry()->CounterValue("rpc.client.stale_retries"), 0u)
        << bench::ConfigName(config);
    EXPECT_EQ(tb.registry()->CounterValue("link.drops"), 0u) << bench::ConfigName(config);
  }
}

TEST(BenchSmokeTest, MabOrderingAndCachingAblation) {
  auto total = [](Config c) {
    Testbed tb(c);
    return bench::RunMab(&tb).total();
  };
  double local = total(Config::kLocal);
  double udp = total(Config::kNfsUdp);
  double sfs = total(Config::kSfs);
  double nocache = total(Config::kSfsNoCache);
  double nocrypt = total(Config::kSfsNoCrypt);
  EXPECT_LT(local, udp);
  EXPECT_LT(udp, sfs);
  EXPECT_LT(sfs, nocache);   // Enhanced caching earns its keep.
  EXPECT_LT(nocrypt, sfs);   // Encryption costs a little.
  // SFS within ~25% of NFS/UDP on application workloads (paper: 11%).
  EXPECT_LT(sfs / udp, 1.25);
}

TEST(BenchSmokeTest, LfsSmallFileShapes) {
  Testbed udp(Config::kNfsUdp);
  bench::LfsSmallResult nfs_result = bench::RunLfsSmall(&udp, 200);
  Testbed sfs(Config::kSfs);
  bench::LfsSmallResult sfs_result = bench::RunLfsSmall(&sfs, 200);
  // Read phase: latency-bound, SFS ~3-4x slower.
  EXPECT_GT(sfs_result.read / nfs_result.read, 2.0);
  EXPECT_LT(sfs_result.read / nfs_result.read, 6.0);
  // Unlink phase: disk-bound, near parity (within 40%).
  EXPECT_LT(sfs_result.unlink / nfs_result.unlink, 1.4);
  // Create phase: attribute caching keeps SFS in NFS's neighborhood.
  EXPECT_LT(sfs_result.create / nfs_result.create, 1.6);
}

}  // namespace
