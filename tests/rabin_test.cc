// Tests for the Rabin–Williams cryptosystem.
#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"

namespace {

using crypto::BigInt;
using crypto::Mgf1Sha1;
using crypto::Prng;
using crypto::RabinPrivateKey;
using crypto::RabinPublicKey;
using util::Bytes;
using util::BytesOf;

constexpr size_t kTestKeyBits = 512;  // Small for test speed; SFS uses 1024+.

// Shared key so each test doesn't regenerate primes.
const RabinPrivateKey& TestKey() {
  static const RabinPrivateKey kKey = [] {
    Prng prng(uint64_t{31});
    return RabinPrivateKey::Generate(&prng, kTestKeyBits);
  }();
  return kKey;
}

TEST(Mgf1Test, DeterministicAndLengthExact) {
  Bytes seed = BytesOf("seed");
  EXPECT_EQ(Mgf1Sha1(seed, 55).size(), 55u);
  EXPECT_EQ(Mgf1Sha1(seed, 55), Mgf1Sha1(seed, 55));
  // Prefix property: longer output extends shorter output.
  Bytes long_out = Mgf1Sha1(seed, 100);
  Bytes short_out = Mgf1Sha1(seed, 40);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
  EXPECT_NE(Mgf1Sha1(BytesOf("seed2"), 40), short_out);
}

TEST(RabinTest, GeneratedKeyHasExpectedShape) {
  const auto& key = TestKey();
  EXPECT_GE(key.public_key().BitLength(), kTestKeyBits - 2);
  // N ≡ 5 (mod 8) when p ≡ 3 and q ≡ 7 (mod 8).
  EXPECT_EQ((key.public_key().n() % BigInt(8)).Low64(), 5u);
}

TEST(RabinTest, SignVerifyRoundTrip) {
  const auto& key = TestKey();
  Bytes msg = BytesOf("authservers map public keys to credentials");
  Bytes sig = key.Sign(msg);
  EXPECT_TRUE(key.public_key().Verify(msg, sig).ok());
}

TEST(RabinTest, VerifyRejectsWrongMessage) {
  const auto& key = TestKey();
  Bytes sig = key.Sign(BytesOf("message one"));
  auto status = key.public_key().Verify(BytesOf("message two"), sig);
  EXPECT_EQ(status.code(), util::ErrorCode::kSecurityError);
}

TEST(RabinTest, VerifyRejectsTamperedSignature) {
  const auto& key = TestKey();
  Bytes msg = BytesOf("tamper me");
  Bytes sig = key.Sign(msg);
  for (size_t i : {size_t{0}, size_t{1}, size_t{2}, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(key.public_key().Verify(msg, bad).ok()) << "flip at " << i;
  }
}

TEST(RabinTest, VerifyRejectsWrongLength) {
  const auto& key = TestKey();
  Bytes msg = BytesOf("m");
  Bytes sig = key.Sign(msg);
  sig.pop_back();
  EXPECT_FALSE(key.public_key().Verify(msg, sig).ok());
}

TEST(RabinTest, SignaturesNotValidUnderOtherKey) {
  const auto& key = TestKey();
  Prng prng(uint64_t{32});
  RabinPrivateKey other = RabinPrivateKey::Generate(&prng, kTestKeyBits);
  Bytes msg = BytesOf("cross-key check");
  Bytes sig = key.Sign(msg);
  EXPECT_FALSE(other.public_key().Verify(msg, sig).ok());
}

TEST(RabinTest, ManyMessagesSignVerify) {
  const auto& key = TestKey();
  Prng prng(uint64_t{33});
  for (int i = 0; i < 25; ++i) {
    Bytes msg = prng.RandomBytes(1 + prng.RandomUint64(200));
    Bytes sig = key.Sign(msg);
    EXPECT_TRUE(key.public_key().Verify(msg, sig).ok()) << "iteration " << i;
  }
}

TEST(RabinTest, EncryptDecryptRoundTrip) {
  const auto& key = TestKey();
  Prng prng(uint64_t{34});
  Bytes msg = BytesOf("session key half KC1");
  auto ct = key.public_key().Encrypt(msg, &prng);
  ASSERT_TRUE(ct.ok());
  auto pt = key.Decrypt(ct.value());
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(pt.value(), msg);
}

TEST(RabinTest, EncryptionIsRandomized) {
  const auto& key = TestKey();
  Prng prng(uint64_t{35});
  Bytes msg = BytesOf("same plaintext");
  auto c1 = key.public_key().Encrypt(msg, &prng);
  auto c2 = key.public_key().Encrypt(msg, &prng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST(RabinTest, DecryptRejectsTamperedCiphertext) {
  const auto& key = TestKey();
  Prng prng(uint64_t{36});
  auto ct = key.public_key().Encrypt(BytesOf("secret"), &prng);
  ASSERT_TRUE(ct.ok());
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    Bytes bad = ct.value();
    bad[static_cast<size_t>(i) * bad.size() / 10] ^= 0x01;
    if (!key.Decrypt(bad).ok()) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 10);
}

TEST(RabinTest, EncryptRejectsOversizedPlaintext) {
  const auto& key = TestKey();
  Prng prng(uint64_t{37});
  Bytes big(key.public_key().MaxPlaintextBytes() + 1, 0x55);
  EXPECT_FALSE(key.public_key().Encrypt(big, &prng).ok());
  Bytes max(key.public_key().MaxPlaintextBytes(), 0x55);
  auto ct = key.public_key().Encrypt(max, &prng);
  ASSERT_TRUE(ct.ok());
  auto pt = key.Decrypt(ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), max);
}

TEST(RabinTest, EmptyPlaintextRoundTrips) {
  const auto& key = TestKey();
  Prng prng(uint64_t{38});
  auto ct = key.public_key().Encrypt({}, &prng);
  ASSERT_TRUE(ct.ok());
  auto pt = key.Decrypt(ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->empty());
}

TEST(RabinTest, PublicKeySerializationRoundTrip) {
  const auto& key = TestKey();
  Bytes wire = key.public_key().Serialize();
  auto parsed = RabinPublicKey::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == key.public_key());
  Bytes msg = BytesOf("serialize check");
  EXPECT_TRUE(parsed->Verify(msg, key.Sign(msg)).ok());
}

TEST(RabinTest, PrivateKeySerializationRoundTrip) {
  const auto& key = TestKey();
  auto restored = RabinPrivateKey::Deserialize(key.Serialize());
  ASSERT_TRUE(restored.ok());
  Bytes msg = BytesOf("round trip");
  EXPECT_TRUE(key.public_key().Verify(msg, restored->Sign(msg)).ok());
  Prng prng(uint64_t{39});
  auto ct = key.public_key().Encrypt(BytesOf("x"), &prng);
  ASSERT_TRUE(ct.ok());
  EXPECT_TRUE(restored->Decrypt(ct.value()).ok());
}

TEST(RabinTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RabinPublicKey::Deserialize({}).ok());
  EXPECT_FALSE(RabinPublicKey::Deserialize({1, 2, 3}).ok());
  EXPECT_FALSE(RabinPrivateKey::Deserialize({0, 0, 0}).ok());
  EXPECT_FALSE(RabinPrivateKey::Deserialize({0, 0, 0, 200, 1}).ok());
}

}  // namespace
