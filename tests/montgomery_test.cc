// Property tests for the Montgomery kernel: the optimized path must be
// bit-for-bit equal to the naive reference (BigInt::ModExpNaive) on
// every input shape the callers can produce, and the key flows that now
// run through cached contexts (Rabin, SRP) must still round-trip.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/crypto/bignum.h"
#include "src/crypto/kernel32.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/crypto/srp.h"

namespace {

using crypto::BigInt;
using crypto::MontgomeryCtx;
using crypto::Prng;

BigInt RandomOdd(Prng* prng, size_t bits) {
  BigInt m = BigInt::Random(prng, bits);
  return m.is_odd() ? m : m + BigInt(1);
}

TEST(MontgomeryTest, ModExpMatchesNaiveAcrossSizes) {
  Prng prng(uint64_t{1001});
  for (size_t bits : {33, 64, 96, 160, 512, 1024}) {
    BigInt m = RandomOdd(&prng, bits);
    MontgomeryCtx ctx(m);
    for (int i = 0; i < 8; ++i) {
      BigInt base = BigInt::Random(&prng, bits - 7);
      BigInt exp = BigInt::Random(&prng, bits);
      EXPECT_EQ(ctx.ModExp(base, exp), BigInt::ModExpNaive(base, exp, m))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(MontgomeryTest, ModExpReducesLargeAndNegativeBases) {
  Prng prng(uint64_t{1002});
  BigInt m = RandomOdd(&prng, 256);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt base = BigInt::Random(&prng, 512);  // base >= m: must reduce first.
    BigInt exp = BigInt::Random(&prng, 128);
    EXPECT_EQ(ctx.ModExp(base, exp), BigInt::ModExpNaive(base, exp, m));
    EXPECT_EQ(ctx.ModExp(-base, exp), BigInt::ModExpNaive((-base).Mod(m), exp, m));
  }
}

TEST(MontgomeryTest, ModExpEdgeExponents) {
  Prng prng(uint64_t{1003});
  BigInt m = RandomOdd(&prng, 200);
  MontgomeryCtx ctx(m);
  BigInt base = BigInt::Random(&prng, 150);
  EXPECT_EQ(ctx.ModExp(base, BigInt(0)), BigInt(1));  // x^0 == 1 by convention.
  EXPECT_EQ(ctx.ModExp(base, BigInt(1)), base.Mod(m));
  EXPECT_EQ(ctx.ModExp(BigInt(0), BigInt(5)), BigInt(0));
  EXPECT_EQ(ctx.ModExp(BigInt(1), BigInt::Random(&prng, 100)), BigInt(1));
}

TEST(MontgomeryTest, ModulusOne) {
  MontgomeryCtx ctx(BigInt(1));
  // Everything is 0 mod 1 — except exp == 0, where both paths return 1.
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(3)), BigInt(0));
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(3)), BigInt::ModExpNaive(BigInt(5), BigInt(3), BigInt(1)));
  EXPECT_EQ(ctx.ModExp(BigInt(5), BigInt(0)), BigInt::ModExpNaive(BigInt(5), BigInt(0), BigInt(1)));
}

TEST(MontgomeryTest, EvenModulusFallsBackToNaive) {
  Prng prng(uint64_t{1004});
  for (int i = 0; i < 6; ++i) {
    BigInt m = BigInt::Random(&prng, 160);
    if (m.is_odd()) {
      m = m + BigInt(1);
    }
    BigInt base = BigInt::Random(&prng, 200);
    BigInt exp = BigInt::Random(&prng, 80);
    EXPECT_EQ(BigInt::ModExp(base, exp, m), BigInt::ModExpNaive(base, exp, m));
  }
}

TEST(MontgomeryTest, ToMontFromMontRoundTrips) {
  Prng prng(uint64_t{1005});
  BigInt m = RandomOdd(&prng, 320);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt x = BigInt::Random(&prng, 400).Mod(m);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(x)), x);
  }
  EXPECT_EQ(ctx.FromMont(ctx.One()), BigInt(1));
}

TEST(MontgomeryTest, MulMatchesPlainModularProduct) {
  Prng prng(uint64_t{1006});
  BigInt m = RandomOdd(&prng, 256);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::Random(&prng, 250);
    BigInt b = BigInt::Random(&prng, 250);
    EXPECT_EQ(ctx.ModMul(a, b), (a * b).Mod(m));
    EXPECT_EQ(ctx.ModSquare(a), (a * a).Mod(m));
  }
}

// The multiply above the Karatsuba threshold must agree with division:
// (a*b)/b == a and (a*b) mod b == 0 exercise the split/recombine path
// against independent code.
TEST(MontgomeryTest, KaratsubaProductConsistentWithDivision) {
  Prng prng(uint64_t{1007});
  // 800 bits stays schoolbook; 4500 crosses the Karatsuba threshold once;
  // 9000 recurses (each half is itself above the threshold).
  for (size_t bits : {800, 4500, 9000}) {
    BigInt a = BigInt::Random(&prng, bits);
    BigInt b = BigInt::Random(&prng, bits - 13);
    BigInt p = a * b;
    EXPECT_EQ(p / b, a);
    EXPECT_EQ(p % b, BigInt(0));
    EXPECT_EQ(p.ModU32(999999937u),
              static_cast<uint64_t>(a.ModU32(999999937u)) * b.ModU32(999999937u) % 999999937u);
  }
}

TEST(MontgomeryTest, Rfc5054GroupUsesSharedContext) {
  const crypto::SrpParams& params = crypto::DefaultSrpParams();
  ASSERT_NE(params.ctx, nullptr);
  EXPECT_EQ(params.ctx->modulus(), params.n);
  Prng prng(uint64_t{1008});
  BigInt x = BigInt::Random(&prng, 512);
  EXPECT_EQ(params.ctx->ModExp(params.g, x), BigInt::ModExpNaive(params.g, x, params.n));
}

TEST(MontgomeryTest, RabinSignVerifyRoundTripsThroughContexts) {
  Prng prng(uint64_t{1009});
  crypto::RabinPrivateKey key = crypto::RabinPrivateKey::Generate(&prng, 512);
  for (int i = 0; i < 4; ++i) {
    util::Bytes message = prng.RandomBytes(40 + static_cast<size_t>(i) * 17);
    util::Bytes signature = key.Sign(message);
    EXPECT_TRUE(key.public_key().Verify(message, signature).ok());
    message[0] ^= 1;
    EXPECT_FALSE(key.public_key().Verify(message, signature).ok());
  }
}

// --- Differential suite against the frozen 32-bit oracle -------------
//
// crypto::ref32 is the pre-refactor 32-bit-limb kernel, kept compiled
// but off every production path.  The 64-bit CIOS kernel must agree
// with it bit-for-bit: a carry or n' bug in the new kernel cannot also
// exist in code that has not changed.

TEST(MontgomeryTest, Mul32OracleMatchesProduct) {
  Prng prng(uint64_t{2001});
  for (size_t bits : {31, 64, 65, 127, 256, 512, 1024, 3000}) {
    for (int i = 0; i < 4; ++i) {
      BigInt a = BigInt::Random(&prng, bits);
      BigInt b = BigInt::Random(&prng, bits - 5);
      EXPECT_EQ(a * b, crypto::ref32::Mul32(a, b)) << "bits=" << bits;
    }
  }
  EXPECT_EQ(BigInt(0) * BigInt(7), crypto::ref32::Mul32(BigInt(0), BigInt(7)));
  EXPECT_EQ(BigInt(1) * BigInt(1), crypto::ref32::Mul32(BigInt(1), BigInt(1)));
}

TEST(MontgomeryTest, ModExp32OracleMatchesModExpAcrossSizes) {
  Prng prng(uint64_t{2002});
  for (size_t bits : {33, 96, 160, 512, 1024}) {
    BigInt m = RandomOdd(&prng, bits);
    MontgomeryCtx ctx(m);
    for (int i = 0; i < 4; ++i) {
      BigInt base = BigInt::Random(&prng, bits + 13);  // Also > m: reduce path.
      BigInt exp = BigInt::Random(&prng, bits);
      EXPECT_EQ(ctx.ModExp(base, exp), crypto::ref32::ModExp32(base, exp, m))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(MontgomeryTest, ModExp32OracleMatchesEdgeExponents) {
  Prng prng(uint64_t{2003});
  for (size_t bits : {64, 521, 1024}) {
    BigInt m = RandomOdd(&prng, bits);
    MontgomeryCtx ctx(m);
    BigInt base = BigInt::Random(&prng, bits - 3);
    // exp in {0, 1, m-1}: the degenerate schedule, the no-squaring walk,
    // and the densest full-width exponent (Fermat shape).
    for (const BigInt& exp : {BigInt(0), BigInt(1), m - BigInt(1)}) {
      EXPECT_EQ(ctx.ModExp(base, exp), crypto::ref32::ModExp32(base, exp, m))
          << "bits=" << bits;
    }
    // Even modulus: both sides take their naive fallback.
    BigInt even_m = m + BigInt(1);
    BigInt exp = BigInt::Random(&prng, 80);
    EXPECT_EQ(BigInt::ModExp(base, exp, even_m),
              crypto::ref32::ModExp32(base, exp, even_m));
  }
}

// --- Compiled exponent schedules -------------------------------------

TEST(MontgomeryTest, CompiledScheduleReplayMatchesDirectExp) {
  Prng prng(uint64_t{2004});
  BigInt m = RandomOdd(&prng, 512);
  MontgomeryCtx ctx(m);
  for (const BigInt& exp : {BigInt(0), BigInt(1), BigInt(15), BigInt(16),
                            BigInt::Random(&prng, 160), BigInt::Random(&prng, 512),
                            m - BigInt(1)}) {
    crypto::ExpSchedule sched = MontgomeryCtx::CompileExp(exp);
    EXPECT_EQ(sched.zero(), exp.is_zero());
    for (int i = 0; i < 3; ++i) {
      MontgomeryCtx::Residue base = ctx.ToMont(BigInt::Random(&prng, 512));
      EXPECT_EQ(ctx.FromMont(ctx.Exp(base, sched)), ctx.FromMont(ctx.Exp(base, exp)));
    }
  }
}

TEST(MontgomeryTest, ScheduleIsContextIndependent) {
  // A schedule depends only on the exponent's bits, so one compiled walk
  // must replay correctly under a different modulus.
  Prng prng(uint64_t{2005});
  BigInt exp = BigInt::Random(&prng, 300);
  crypto::ExpSchedule sched = MontgomeryCtx::CompileExp(exp, /*secret=*/true);
  EXPECT_TRUE(sched.secret());
  for (size_t bits : {128, 512}) {
    BigInt m = RandomOdd(&prng, bits);
    MontgomeryCtx ctx(m);
    BigInt base = BigInt::Random(&prng, bits - 1);
    EXPECT_EQ(ctx.FromMont(ctx.Exp(ctx.ToMont(base), sched)), ctx.ModExp(base, exp));
  }
}

TEST(MontgomeryTest, ExpBatchMatchesPerBaseExp) {
  Prng prng(uint64_t{2006});
  BigInt m = RandomOdd(&prng, 384);
  MontgomeryCtx ctx(m);
  for (const BigInt& exp : {BigInt(0), BigInt::Random(&prng, 384)}) {
    std::vector<MontgomeryCtx::Residue> bases;
    for (int i = 0; i < 7; ++i) {
      bases.push_back(ctx.ToMont(BigInt::Random(&prng, 384)));
    }
    std::vector<MontgomeryCtx::Residue> batch = ctx.ExpBatch(bases, exp);
    ASSERT_EQ(batch.size(), bases.size());
    for (size_t i = 0; i < bases.size(); ++i) {
      EXPECT_EQ(batch[i], ctx.Exp(bases[i], exp)) << "i=" << i;
    }
  }
  EXPECT_TRUE(ctx.ExpBatch({}, BigInt(3)).empty());
}

TEST(MontgomeryTest, RabinEncryptDecryptRoundTripsThroughContexts) {
  Prng prng(uint64_t{1010});
  crypto::RabinPrivateKey key = crypto::RabinPrivateKey::Generate(&prng, 512);
  for (size_t len : {size_t{0}, size_t{1}, size_t{16}, key.public_key().MaxPlaintextBytes()}) {
    util::Bytes plaintext = prng.RandomBytes(len);
    auto ciphertext = key.public_key().Encrypt(plaintext, &prng);
    ASSERT_TRUE(ciphertext.ok());
    auto decrypted = key.Decrypt(ciphertext.value());
    ASSERT_TRUE(decrypted.ok());
    EXPECT_EQ(decrypted.value(), plaintext);
  }
}

}  // namespace
