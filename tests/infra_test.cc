// Tests for the infrastructure substrates: XDR marshaling, the RPC layer,
// the simulated clock/network/disk, and interposition.
#include <gtest/gtest.h>

#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"
#include "src/xdr/xdr.h"

namespace {

using util::Bytes;
using util::BytesOf;

// --- XDR ---------------------------------------------------------------------

TEST(XdrTest, PrimitiveRoundTrip) {
  xdr::Encoder enc;
  enc.PutUint32(0xdeadbeef);
  enc.PutInt32(-42);
  enc.PutUint64(0x0123456789abcdefULL);
  enc.PutBool(true);
  enc.PutBool(false);
  xdr::Decoder dec(enc.Take());
  EXPECT_EQ(dec.GetUint32().value(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetInt32().value(), -42);
  EXPECT_EQ(dec.GetUint64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.GetBool().value());
  EXPECT_FALSE(dec.GetBool().value());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, OpaquePaddingTo4Bytes) {
  for (size_t len : {0, 1, 2, 3, 4, 5, 7, 8}) {
    xdr::Encoder enc;
    enc.PutOpaque(Bytes(len, 0xaa));
    size_t expected = 4 + ((len + 3) & ~size_t{3});
    EXPECT_EQ(enc.data().size(), expected) << "len " << len;
    xdr::Decoder dec(enc.Take());
    EXPECT_EQ(dec.GetOpaque().value().size(), len);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(XdrTest, StringRoundTrip) {
  xdr::Encoder enc;
  enc.PutString("self-certifying");
  enc.PutString("");
  enc.PutString(std::string("embedded\0nul", 12));
  xdr::Decoder dec(enc.Take());
  EXPECT_EQ(dec.GetString().value(), "self-certifying");
  EXPECT_EQ(dec.GetString().value(), "");
  EXPECT_EQ(dec.GetString().value().size(), 12u);
}

TEST(XdrTest, FixedOpaqueHasNoLengthPrefix) {
  xdr::Encoder enc;
  enc.PutFixedOpaque(Bytes(5, 0x11));
  EXPECT_EQ(enc.data().size(), 8u);  // 5 + 3 padding.
  xdr::Decoder dec(enc.Take());
  EXPECT_EQ(dec.GetFixedOpaque(5).value(), Bytes(5, 0x11));
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, FixedOpaquePaddingIsPerItem) {
  // XDR pads each fixed opaque to a multiple of 4 of *its own length*,
  // never to the encoder's buffer position.  Regression test for a
  // latent mis-framing: padding to buffer alignment happens to agree
  // only because every public Put* keeps the buffer 4-aligned.
  size_t expected = 0;
  xdr::Encoder enc;
  for (size_t len = 1; len <= 9; ++len) {
    enc.PutFixedOpaque(Bytes(len, static_cast<uint8_t>(len)));
    expected += (len + 3) / 4 * 4;
    EXPECT_EQ(enc.data().size(), expected);
  }
  xdr::Decoder dec(enc.Take());
  for (size_t len = 1; len <= 9; ++len) {
    auto item = dec.GetFixedOpaque(static_cast<uint32_t>(len));
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(item.value(), Bytes(len, static_cast<uint8_t>(len)));
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, TruncationDetected) {
  xdr::Encoder enc;
  enc.PutUint64(7);
  Bytes full = enc.Take();
  for (size_t cut = 0; cut < 8; ++cut) {
    xdr::Decoder dec(Bytes(full.begin(), full.begin() + static_cast<long>(cut)));
    EXPECT_FALSE(dec.GetUint64().ok()) << "cut " << cut;
  }
}

TEST(XdrTest, OpaqueLengthLargerThanBufferRejected) {
  xdr::Encoder enc;
  enc.PutUint32(1000);  // Claims 1000 bytes...
  enc.PutUint32(0);     // ...but only 4 follow.
  xdr::Decoder dec(enc.Take());
  EXPECT_FALSE(dec.GetOpaque().ok());
}

TEST(XdrTest, HugeOpaqueLengthRejected) {
  xdr::Encoder enc;
  enc.PutUint32(0xffffffff);
  xdr::Decoder dec(enc.Take());
  EXPECT_FALSE(dec.GetOpaque().ok());
}

TEST(XdrTest, NonZeroPaddingRejected) {
  xdr::Encoder enc;
  enc.PutOpaque(BytesOf("a"));
  Bytes wire = enc.Take();
  wire[6] = 0x77;  // Corrupt a padding byte.
  xdr::Decoder dec(std::move(wire));
  EXPECT_FALSE(dec.GetOpaque().ok());
}

TEST(XdrTest, BoolRangeChecked) {
  xdr::Encoder enc;
  enc.PutUint32(2);
  xdr::Decoder dec(enc.Take());
  EXPECT_FALSE(dec.GetBool().ok());
}

TEST(XdrTest, TakeRemaining) {
  xdr::Encoder enc;
  enc.PutUint32(1);
  enc.PutString("rest of the message");
  xdr::Decoder dec(enc.Take());
  ASSERT_TRUE(dec.GetUint32().ok());
  Bytes rest = dec.TakeRemaining();
  EXPECT_TRUE(dec.AtEnd());
  xdr::Decoder dec2(std::move(rest));
  EXPECT_EQ(dec2.GetString().value(), "rest of the message");
}

// --- Clock / Stopwatch ---------------------------------------------------------

TEST(ClockTest, AdvanceAndStopwatch) {
  sim::Clock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(1'500'000'000);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 1.5);
  sim::Stopwatch watch(&clock);
  clock.Advance(250);
  EXPECT_EQ(watch.elapsed_ns(), 250u);
  watch.Reset();
  EXPECT_EQ(watch.elapsed_ns(), 0u);
}

// --- Disk model ----------------------------------------------------------------

TEST(DiskTest, SequentialReadsSkipSeek) {
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  disk.ChargeRead(1, 0, 8192);
  uint64_t first = clock.now_ns();
  EXPECT_GT(first, 6'000'000u);  // Paid the seek.
  disk.ChargeRead(1, 8192, 8192);
  uint64_t second = clock.now_ns() - first;
  EXPECT_LT(second, 1'000'000u);  // Transfer only.
  // A different file seeks again.
  uint64_t before = clock.now_ns();
  disk.ChargeRead(2, 0, 8192);
  EXPECT_GT(clock.now_ns() - before, 6'000'000u);
}

TEST(DiskTest, CommitChargesOnceForDirtyData) {
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  disk.BufferWrite(100 * 1024);
  EXPECT_EQ(clock.now_ns(), 0u);  // Buffered writes are free.
  disk.ChargeCommit();
  uint64_t cost = clock.now_ns();
  EXPECT_GT(cost, 6'000'000u);
  disk.ChargeCommit();  // Nothing dirty: free.
  EXPECT_EQ(clock.now_ns(), cost);
}

TEST(DiskTest, DiscardDirtyForgetsBufferedWrites) {
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  disk.BufferWrite(1 << 20);
  disk.DiscardDirty();
  disk.ChargeCommit();
  EXPECT_EQ(clock.now_ns(), 0u);
}

// --- Network link ----------------------------------------------------------------

class EchoService : public sim::Service {
 public:
  util::Result<Bytes> Handle(const Bytes& request) override {
    ++calls_;
    return request;
  }
  int calls_ = 0;
};

TEST(LinkTest, RoundtripChargesBothDirections) {
  sim::Clock clock;
  EchoService echo;
  sim::Link link(&clock, sim::LinkProfile::Udp(), &echo);
  auto reply = link.Roundtrip(Bytes(1000, 1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->size(), 1000u);
  // 2 x (latency 45us + per-message 25us + 1000B/12.5MBps = 80us).
  EXPECT_NEAR(static_cast<double>(clock.now_ns()), 2 * (45'000 + 25'000 + 80'000), 2'000);
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 2000u);
}

TEST(LinkTest, LocalProfileIsFree) {
  sim::Clock clock;
  EchoService echo;
  sim::Link link(&clock, sim::LinkProfile::Local(), &echo);
  ASSERT_TRUE(link.Roundtrip(Bytes(4096, 0)).ok());
  EXPECT_EQ(clock.now_ns(), 0u);
}

class DropInterposer : public sim::Interposer {
 public:
  util::Result<Bytes> OnRequest(Bytes request) override {
    (void)request;
    return util::Unavailable("packet lost");
  }
};

TEST(LinkTest, InterposerCanDropRequests) {
  sim::Clock clock;
  EchoService echo;
  sim::Link link(&clock, sim::LinkProfile::Udp(), &echo);
  DropInterposer dropper;
  link.set_interposer(&dropper);
  auto reply = link.Roundtrip(BytesOf("hello?"));
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(echo.calls_, 0);  // Never reached the server.
}

// --- RPC -------------------------------------------------------------------------

class RpcFixture : public ::testing::Test {
 protected:
  RpcFixture() : link_(&clock_, sim::LinkProfile::Local(), &dispatcher_), transport_(&link_) {
    dispatcher_.RegisterProgram(77, [this](uint32_t proc, const Bytes& args) {
      return Handler(proc, args);
    });
  }

  util::Result<Bytes> Handler(uint32_t proc, const Bytes& args) {
    if (proc == 1) {
      Bytes out = args;
      std::reverse(out.begin(), out.end());
      return out;
    }
    if (proc == 2) {
      return util::PermissionDenied("proc 2 says no");
    }
    return util::InvalidArgument("no such proc");
  }

  sim::Clock clock_;
  rpc::Dispatcher dispatcher_;
  sim::Link link_;
  rpc::LinkTransport transport_;
};

TEST_F(RpcFixture, CallAndReply) {
  rpc::Client client(&transport_, 77);
  auto reply = client.Call(1, BytesOf("abc"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(util::StringOf(reply.value()), "cba");
  EXPECT_EQ(client.calls_made(), 1u);
}

TEST_F(RpcFixture, HandlerErrorsPropagateWithCode) {
  rpc::Client client(&transport_, 77);
  auto reply = client.Call(2, {});
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(reply.status().message(), "proc 2 says no");
}

TEST_F(RpcFixture, UnknownProgramRejected) {
  rpc::Client client(&transport_, 99);
  auto reply = client.Call(1, {});
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kNotFound);
}

TEST_F(RpcFixture, MalformedCallRejectedByDispatcher) {
  auto reply = dispatcher_.Handle(BytesOf("garbage"));
  EXPECT_FALSE(reply.ok());
}

// An interposer that rewrites the xid in replies: the client must treat
// each such reply as stale (discard and retransmit), then give up.
class XidRewriter : public sim::Interposer {
 public:
  util::Result<Bytes> OnResponse(Bytes response) override {
    if (response.size() >= 4) {
      response[3] ^= 0x01;
    }
    return response;
  }
};

TEST_F(RpcFixture, MismatchedXidDetected) {
  XidRewriter rewriter;
  link_.set_interposer(&rewriter);
  rpc::Client client(&transport_, 77);
  auto reply = client.Call(1, BytesOf("x"));
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kUnavailable);
  // Every reply was stale, so the client kept retransmitting; the
  // dispatcher answered the repeats from its duplicate-request cache.
  EXPECT_GT(client.retransmissions(), 0u);
  EXPECT_GT(dispatcher_.drc_hits(), 0u);
}

// --- Status / Result ---------------------------------------------------------------

TEST(StatusTest, ToStringAndCodes) {
  EXPECT_EQ(util::OkStatus().ToString(), "OK");
  EXPECT_EQ(util::SecurityError("mac failed").ToString(), "SECURITY_ERROR: mac failed");
  EXPECT_TRUE(util::OkStatus().ok());
  EXPECT_FALSE(util::NotFound("x").ok());
}

TEST(StatusTest, ResultValueAndStatus) {
  util::Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  util::Result<int> bad(util::InvalidArgument("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> util::Result<int> {
    if (fail) {
      return util::NotFound("inner");
    }
    return 5;
  };
  auto outer = [&](bool fail) -> util::Result<int> {
    ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 10);
  EXPECT_EQ(outer(true).status().code(), util::ErrorCode::kNotFound);
}

}  // namespace
