// Forensic scenarios for the tamper-evident audit journal
// (src/obs/auditlog.h) and its SFS server integration
// (src/sfs/audit.h): an adversary who seizes the server after the fact
// rewrites, truncates, reorders, or splices the log at a chosen record
// k, and the offline verifier must pinpoint exactly record k while
// every earlier record stays attested.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "src/auth/authserver.h"
#include "src/obs/auditlog.h"
#include "src/obs/span.h"
#include "src/sfs/audit.h"
#include "src/sfs/client.h"
#include "src/sfs/proto.h"
#include "src/sfs/revocation.h"
#include "src/sfs/server.h"
#include "src/xdr/xdr.h"
#include "tests/test_keys.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using obs::AuditKind;
using obs::AuditLog;
using obs::AuditRecord;
using obs::AuditRecordInfo;
using obs::AuditVerifyResult;
using obs::VerifyAuditLog;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

Bytes GenesisKey() { return BytesOf("audit-test-genesis-key"); }

// A journal of `n` synthetic records with recognizable field values.
AuditLog MakeLog(uint64_t n, uint32_t batch_records, bool finalize = true) {
  AuditLog log(GenesisKey(), AuditLog::Options{batch_records});
  for (uint64_t i = 0; i < n; ++i) {
    AuditRecord record;
    record.time_ns = 1000 * i;
    record.connection_id = 7;
    record.wire_seqno = static_cast<uint32_t>(i);
    record.kind = static_cast<uint32_t>(AuditKind::kNfs);
    record.proc = static_cast<uint32_t>(i % 22);
    record.verdict = 0;
    record.fh_digest = 0x1234 + i;
    record.trace_id = 99;
    record.span_id = 1000 + i;
    AuditLog::AppendInfo info = log.Append(record);
    EXPECT_EQ(info.seqno, i);
    EXPECT_GT(info.hashed_bytes, 0u);
    // Seal at the ratchet boundary, as sfs::ServerAuditor does.
    if (log.open_records() >= batch_records) {
      log.Seal();
    }
  }
  if (finalize) {
    log.Finalize();
  }
  return log;
}

// Seqnos still attested after tampering.  A seqno survives if any
// parseable copy of it carries a valid tag (a spliced duplicate adds an
// unattested copy without revoking the genuine one).
std::set<uint64_t> SurvivingSeqnos(const AuditVerifyResult& result) {
  std::set<uint64_t> alive;
  for (const AuditRecordInfo& info : result.records) {
    if (info.survives) {
      alive.insert(info.record.seqno);
    }
  }
  return alive;
}

void ExpectEarliestBad(const AuditVerifyResult& result, uint64_t k) {
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.earliest_bad.has_value()) << result.detail;
  EXPECT_EQ(*result.earliest_bad, k) << result.detail;
  std::set<uint64_t> alive = SurvivingSeqnos(result);
  for (uint64_t s = 0; s < k; ++s) {
    EXPECT_TRUE(alive.count(s)) << "record " << s << " lost attestation";
  }
}

// --- Writer/verifier basics ---------------------------------------------------

TEST(AuditRecordTest, SerializeRoundTrips) {
  AuditRecord record;
  record.seqno = 0x0102030405060708ULL;
  record.time_ns = 42;
  record.connection_id = 3;
  record.wire_seqno = 9;
  record.kind = static_cast<uint32_t>(AuditKind::kCtl);
  record.proc = 5;
  record.verdict = 13;
  record.fh_digest = 0xdeadbeefcafef00dULL;
  record.trace_id = 777;
  record.span_id = 778;
  Bytes wire = record.Serialize();
  ASSERT_EQ(wire.size(), AuditRecord::kWireSize);
  AuditRecord back = AuditRecord::Deserialize(wire.data());
  EXPECT_EQ(back.seqno, record.seqno);
  EXPECT_EQ(back.time_ns, record.time_ns);
  EXPECT_EQ(back.connection_id, record.connection_id);
  EXPECT_EQ(back.wire_seqno, record.wire_seqno);
  EXPECT_EQ(back.kind, record.kind);
  EXPECT_EQ(back.proc, record.proc);
  EXPECT_EQ(back.verdict, record.verdict);
  EXPECT_EQ(back.fh_digest, record.fh_digest);
  EXPECT_EQ(back.trace_id, record.trace_id);
  EXPECT_EQ(back.span_id, record.span_id);
}

TEST(AuditLogTest, PristineLogVerifiesAcrossBatchSizes) {
  for (uint32_t batch : {1u, 4u, 64u}) {
    AuditLog log = MakeLog(50, batch);
    AuditVerifyResult result = VerifyAuditLog(GenesisKey(), log.bytes());
    EXPECT_TRUE(result.ok) << "batch=" << batch << ": " << result.detail;
    EXPECT_TRUE(result.finalized);
    EXPECT_EQ(result.records_ok, 50u);
    EXPECT_EQ(SurvivingSeqnos(result).size(), 50u);
  }
}

TEST(AuditLogTest, EmptyFinalizedLogVerifies) {
  AuditLog log(GenesisKey());
  log.Finalize();
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), log.bytes());
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_TRUE(result.finalized);
  EXPECT_EQ(result.records_ok, 0u);
}

TEST(AuditLogTest, FinalizeIsIdempotent) {
  AuditLog log = MakeLog(10, 4);
  size_t size = log.bytes().size();
  log.Finalize();
  EXPECT_EQ(log.bytes().size(), size);
  EXPECT_TRUE(log.finalized());
}

TEST(AuditLogTest, WrongGenesisKeyRejectsEverything) {
  AuditLog log = MakeLog(20, 4);
  AuditVerifyResult result = VerifyAuditLog(BytesOf("not-the-key"), log.bytes());
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.earliest_bad.has_value());
  EXPECT_EQ(*result.earliest_bad, 0u);
  EXPECT_TRUE(SurvivingSeqnos(result).empty());
}

TEST(AuditLogTest, UnfinalizedLogReportsPossibleTailLoss) {
  AuditLog log = MakeLog(20, 4, /*finalize=*/false);
  log.Seal();  // Batches are intact but no terminal marker exists.
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), log.bytes());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.finalized);
  ASSERT_TRUE(result.earliest_bad.has_value());
  // Every written record attests; the anomaly is the missing tail marker.
  EXPECT_EQ(*result.earliest_bad, 20u);
  EXPECT_EQ(SurvivingSeqnos(result).size(), 20u);
}

// --- The four adversaries at record k ----------------------------------------

// Byte offset of record `k`'s 64-byte body, from the pristine verify.
uint64_t OffsetOf(const AuditVerifyResult& pristine, uint64_t k) {
  for (const AuditRecordInfo& info : pristine.records) {
    if (info.record.seqno == k) {
      return info.offset;
    }
  }
  ADD_FAILURE() << "record " << k << " not found";
  return 0;
}

TEST(AuditForensicsTest, RewriteAtRecordKIsPinpointed) {
  for (uint32_t batch : {1u, 4u, 64u}) {
    AuditLog log = MakeLog(100, batch);
    AuditVerifyResult pristine = VerifyAuditLog(GenesisKey(), log.bytes());
    ASSERT_TRUE(pristine.ok);
    const uint64_t k = 57;
    Bytes tampered = log.bytes();
    tampered[OffsetOf(pristine, k) + 11] ^= 0x40;  // Flip one bit of the body.
    AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
    ExpectEarliestBad(result, k);
    // Records in later batches still attest under their own keys.
    std::set<uint64_t> alive = SurvivingSeqnos(result);
    uint64_t next_batch_start = (k / batch + 1) * batch;
    for (uint64_t s = next_batch_start; s < 100; ++s) {
      EXPECT_TRUE(alive.count(s)) << "batch=" << batch << " record " << s;
    }
  }
}

TEST(AuditForensicsTest, TruncationAtRecordKIsPinpointed) {
  for (uint32_t batch : {1u, 4u, 64u}) {
    AuditLog log = MakeLog(100, batch);
    AuditVerifyResult pristine = VerifyAuditLog(GenesisKey(), log.bytes());
    ASSERT_TRUE(pristine.ok);
    const uint64_t k = 41;
    Bytes tampered = log.bytes();
    tampered.resize(OffsetOf(pristine, k));  // k and everything after: gone.
    AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
    ExpectEarliestBad(result, k);
    EXPECT_FALSE(result.finalized);
  }
}

TEST(AuditForensicsTest, ReorderWithinBatchIsPinpointed) {
  AuditLog log = MakeLog(100, 16);
  AuditVerifyResult pristine = VerifyAuditLog(GenesisKey(), log.bytes());
  ASSERT_TRUE(pristine.ok);
  const uint64_t k = 33;  // 33 and 34 share the batch [32, 48).
  Bytes tampered = log.bytes();
  uint64_t a = OffsetOf(pristine, k);
  uint64_t b = OffsetOf(pristine, k + 1);
  std::swap_ranges(tampered.begin() + static_cast<long>(a),
                   tampered.begin() + static_cast<long>(a + obs::kAuditEntrySize),
                   tampered.begin() + static_cast<long>(b));
  ExpectEarliestBad(VerifyAuditLog(GenesisKey(), tampered), k);
}

TEST(AuditForensicsTest, WholeBatchReorderIsPinpointed) {
  AuditLog log = MakeLog(64, 8);
  AuditVerifyResult pristine = VerifyAuditLog(GenesisKey(), log.bytes());
  ASSERT_TRUE(pristine.ok);
  // Swap complete batches 2 and 3 (records [16,24) and [24,32)); each
  // still carries a valid MAC, but under the wrong position.
  const size_t batch_bytes =
      obs::kAuditHeaderSize + 8 * obs::kAuditEntrySize + obs::kAuditMacSize;
  Bytes tampered = log.bytes();
  const size_t b2 = 2 * batch_bytes;
  std::swap_ranges(tampered.begin() + static_cast<long>(b2),
                   tampered.begin() + static_cast<long>(b2 + batch_bytes),
                   tampered.begin() + static_cast<long>(b2 + batch_bytes));
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
  ExpectEarliestBad(result, 16);
}

TEST(AuditForensicsTest, SpliceOfAuthenticRecordIsPinpointed) {
  AuditLog log = MakeLog(100, 16);
  AuditVerifyResult pristine = VerifyAuditLog(GenesisKey(), log.bytes());
  ASSERT_TRUE(pristine.ok);
  const uint64_t k = 50, j = 10;  // Replay record 10 over record 50.
  Bytes tampered = log.bytes();
  uint64_t dst = OffsetOf(pristine, k);
  uint64_t src = OffsetOf(pristine, j);
  std::copy(log.bytes().begin() + static_cast<long>(src),
            log.bytes().begin() + static_cast<long>(src + obs::kAuditEntrySize),
            tampered.begin() + static_cast<long>(dst));
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
  ExpectEarliestBad(result, k);
  // The genuine record j is still attested even though its bytes now
  // also appear (unattested) at k's position.
  EXPECT_TRUE(SurvivingSeqnos(result).count(j));
}

TEST(AuditForensicsTest, WholeBatchDeletionIsPinpointedAndLaterBatchesSurvive) {
  AuditLog log = MakeLog(64, 8);
  const size_t batch_bytes =
      obs::kAuditHeaderSize + 8 * obs::kAuditEntrySize + obs::kAuditMacSize;
  Bytes tampered = log.bytes();
  // Excise batch 3 entirely (records [24, 32)).
  tampered.erase(tampered.begin() + static_cast<long>(3 * batch_bytes),
                 tampered.begin() + static_cast<long>(4 * batch_bytes));
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
  ExpectEarliestBad(result, 24);
  // Batches 4+ verify under their stored index keys: their records are
  // evidence even though a gap precedes them.
  std::set<uint64_t> alive = SurvivingSeqnos(result);
  for (uint64_t s = 32; s < 64; ++s) {
    EXPECT_TRUE(alive.count(s)) << "record " << s;
  }
  EXPECT_FALSE(alive.count(24));
}

TEST(AuditForensicsTest, TrailingGarbageAfterFinalBatchIsDetected) {
  AuditLog log = MakeLog(10, 4);
  Bytes tampered = log.bytes();
  Bytes garbage = BytesOf("post-final forged bytes");
  tampered.insert(tampered.end(), garbage.begin(), garbage.end());
  AuditVerifyResult result = VerifyAuditLog(GenesisKey(), tampered);
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.earliest_bad.has_value());
  EXPECT_EQ(*result.earliest_bad, 10u);
  // All genuine records still attest.
  EXPECT_EQ(SurvivingSeqnos(result).size(), 10u);
}

// --- SFS server integration ---------------------------------------------------

class ServerAuditTest : public ::testing::Test {
 protected:
  ServerAuditTest() {
    sfs::SfsServer::Options server_options;
    server_options.location = "sfs.lcs.mit.edu";
    server_options.key_bits = kKeyBits;
    server_options.allow_cleartext = true;
    server_options.registry = &registry_;
    server_options.audit_batch_records = 8;
    server_options.audit_genesis_key = GenesisKey();
    server_ = std::make_unique<sfs::SfsServer>(&clock_, &costs_, server_options,
                                               &authserver_);
    sfs::SfsClient::Options client_options;
    client_options.ephemeral_key_bits = kKeyBits;
    client_options.registry = &registry_;
    client_ = MakeClient(client_options);

    user_key_ = test_keys::CachedTestKey(77, kKeyBits);
    auth::PublicUserRecord record;
    record.name = "auditor";
    record.public_key = user_key_.public_key().Serialize();
    record.credentials = Credentials::User(1000, {1000});
    EXPECT_TRUE(authserver_.RegisterUser(record).ok());
  }

  sfs::SfsClient::AuthSigner UserSigner() {
    return [this](const Bytes& auth_info, uint32_t seqno) -> std::optional<Bytes> {
      Bytes auth_id = sfs::MakeAuthId(auth_info);
      Bytes body = auth::MakeSignedAuthReqBody(auth_id, seqno);
      xdr::Encoder enc;
      enc.PutOpaque(user_key_.public_key().Serialize());
      enc.PutOpaque(user_key_.Sign(body));
      return enc.Take();
    };
  }

  std::unique_ptr<sfs::SfsClient> MakeClient(sfs::SfsClient::Options options) {
    return std::make_unique<sfs::SfsClient>(
        &clock_, &costs_,
        [this](const std::string& location) -> sfs::SfsServer* {
          return location == "sfs.lcs.mit.edu" ? server_.get() : nullptr;
        },
        options);
  }

  // Finalizes the journal and verifies it offline with the escrowed key.
  AuditVerifyResult VerifyJournal() {
    server_->auditor()->Finalize();
    return VerifyAuditLog(server_->auditor()->genesis_key(),
                          server_->auditor()->log().bytes());
  }

  static int CountKind(const AuditVerifyResult& result, AuditKind kind) {
    int n = 0;
    for (const AuditRecordInfo& info : result.records) {
      if (info.record.kind == static_cast<uint32_t>(kind)) {
        ++n;
      }
    }
    return n;
  }

  obs::Registry registry_;
  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<sfs::SfsServer> server_;
  std::unique_ptr<sfs::SfsClient> client_;
  crypto::RabinPrivateKey user_key_;
};

TEST_F(ServerAuditTest, DispatchedRpcsAreJournaledAndVerify) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ASSERT_TRUE((*mount)->Authenticate(1000, UserSigner()).ok());
  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  nfs::Sattr sattr;
  sattr.mode = 0644;
  ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "journaled", alice, sattr,
                                   &fh, &attr),
            Stat::kOk);
  ASSERT_EQ((*mount)->fs()->GetAttr(fh, &attr), Stat::kOk);

  AuditVerifyResult result = VerifyJournal();
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_TRUE(result.finalized);
  EXPECT_GT(CountKind(result, AuditKind::kNfs), 0);
  EXPECT_EQ(registry_.CounterValue("audit.records"), result.records_ok);
  EXPECT_GT(registry_.CounterValue("audit.bytes"), 0u);
  // Every journaled RPC carries the virtual timestamp of its dispatch.
  uint64_t last = 0;
  for (const AuditRecordInfo& info : result.records) {
    EXPECT_GE(info.record.time_ns, last);
    last = info.record.time_ns;
  }
}

TEST_F(ServerAuditTest, WriteAndCommitRecordsCarryStableFlag) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ASSERT_TRUE((*mount)->Authenticate(1000, UserSigner()).ok());
  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  nfs::Sattr sattr;
  sattr.mode = 0644;
  ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "flagged", alice, sattr, &fh,
                                   &attr),
            Stat::kOk);
  Bytes data = BytesOf("stable-or-not");
  ASSERT_EQ((*mount)->fs()->Write(fh, alice, 0, data, /*stable=*/false, &attr), Stat::kOk);
  ASSERT_EQ((*mount)->fs()->Write(fh, alice, 64, data, /*stable=*/true, &attr), Stat::kOk);
  ASSERT_EQ((*mount)->fs()->Commit(fh), Stat::kOk);

  AuditVerifyResult result = VerifyJournal();
  ASSERT_TRUE(result.ok) << result.detail;
  int stable_writes = 0;
  int unstable_writes = 0;
  int commits = 0;
  for (const AuditRecordInfo& info : result.records) {
    if (info.record.kind != static_cast<uint32_t>(AuditKind::kNfs)) {
      continue;
    }
    bool flagged = (info.record.verdict & sfs::kAuditVerdictStableBit) != 0;
    if (info.record.proc == nfs::kProcWrite) {
      (flagged ? stable_writes : unstable_writes) += 1;
    } else if (info.record.proc == nfs::kProcCommit) {
      ++commits;
      // Every COMMIT is a durable commitment: always flagged.
      EXPECT_TRUE(flagged);
    } else {
      // The flag is reserved for WRITE/COMMIT; the low bits still carry
      // the status code on every other record.
      EXPECT_FALSE(flagged) << "proc " << info.record.proc;
    }
    EXPECT_EQ(info.record.verdict & ~sfs::kAuditVerdictStableBit, 0u);
  }
  EXPECT_EQ(stable_writes, 1);
  EXPECT_EQ(unstable_writes, 1);
  EXPECT_EQ(commits, 1);
}

TEST_F(ServerAuditTest, RecordsCrossLinkToSpansInPerfettoExport) {
  registry_.spans().Enable([this] { return clock_.now_ns(); }, nullptr, 1 << 16);
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  Credentials anon = Credentials::User(1000, {1000});
  Fattr attr;
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);

  AuditVerifyResult result = VerifyJournal();
  ASSERT_TRUE(result.ok) << result.detail;

  std::set<std::pair<uint64_t, uint64_t>> span_ids;
  for (const obs::Span& span : registry_.spans().finished()) {
    span_ids.insert({span.trace_id, span.id});
  }
  int linked = 0;
  for (const AuditRecordInfo& info : result.records) {
    if (info.record.span_id == 0) {
      continue;
    }
    EXPECT_TRUE(span_ids.count({info.record.trace_id, info.record.span_id}))
        << "record " << info.record.seqno << " references an unknown span";
    ++linked;
  }
  EXPECT_GT(linked, 0);
  // And those ids are what the Perfetto export publishes.
  std::string trace = obs::ExportChromeTrace(registry_.spans().finished());
  const AuditRecordInfo* sample = nullptr;
  for (const AuditRecordInfo& info : result.records) {
    if (info.record.span_id != 0) {
      sample = &info;
      break;
    }
  }
  ASSERT_NE(sample, nullptr);
  EXPECT_NE(trace.find("\"span_id\": " + std::to_string(sample->record.span_id)),
            std::string::npos);
}

TEST_F(ServerAuditTest, ConnectionTeardownSealsTheOpenBatch) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  Credentials anon = Credentials::User(1000, {1000});
  Fattr attr;
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);
  // batch_records=8; a partial batch is open now.
  client_.reset();  // Tears down the server connection.
  EXPECT_EQ(server_->auditor()->log().open_records(), 0u);
  EXPECT_GT(server_->auditor()->log().batches_sealed(), 0u);
}

TEST_F(ServerAuditTest, RevocationEventsAreJournaled) {
  sfs::PathRevokeCert cert = sfs::PathRevokeCert::MakeRevocation(
      server_->private_key(), server_->Path().location);
  server_->ServeRevocation(cert);
  // A client that connects is answered with the certificate; both the
  // installation and the serving leave journal records.
  auto mount = client_->Mount(server_->Path());
  EXPECT_FALSE(mount.ok());

  AuditVerifyResult result = VerifyJournal();
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_EQ(CountKind(result, AuditKind::kRevocationInstalled), 1);
  EXPECT_GE(CountKind(result, AuditKind::kRevocationServed), 1);
  // Installation and serving bind to the same HostID digest.
  uint64_t installed_digest = 0, served_digest = 0;
  for (const AuditRecordInfo& info : result.records) {
    if (info.record.kind == static_cast<uint32_t>(AuditKind::kRevocationInstalled)) {
      installed_digest = info.record.fh_digest;
    }
    if (info.record.kind == static_cast<uint32_t>(AuditKind::kRevocationServed)) {
      served_digest = info.record.fh_digest;
    }
  }
  EXPECT_NE(installed_digest, 0u);
  EXPECT_EQ(installed_digest, served_digest);
}

TEST_F(ServerAuditTest, JournalSurvivesTamperWithExactLocalization) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  Fattr attr;
  // The caching layer would answer repeats locally; go through the raw
  // NFS client so every call crosses the wire and lands in the journal.
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ((*mount)->raw_client()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);
  }
  AuditVerifyResult pristine = VerifyJournal();
  ASSERT_TRUE(pristine.ok) << pristine.detail;
  ASSERT_GT(pristine.records_ok, 20u);

  const uint64_t k = pristine.records_ok / 2;
  Bytes tampered = server_->auditor()->log().bytes();
  tampered[OffsetOf(pristine, k) + 5] ^= 0x01;
  ExpectEarliestBad(
      VerifyAuditLog(server_->auditor()->genesis_key(), tampered), k);
}

}  // namespace
