// Span-tree invariants over the full SFS stack: every operation's
// causal trace must form a well-formed tree whose timing agrees with
// the virtual clock — under stop-and-wait and pipelined windows, on
// clean and seeded-lossy links alike (ISSUE: windows 1/2/4/8, lossy
// profile).  The key property of the single-threaded simulation is
// that every nanosecond the clock advances is charged to exactly one
// TimeCategory, so any span's category buckets must sum exactly to its
// duration; link.transit spans are the one deliberate exception (they
// are interval markers recorded after the fact, docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/nfs/api.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using util::Bytes;

constexpr int kKeyBits = 512;

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

// One client/server pair sharing a registry, with span collection
// wired to the shared virtual clock before the mount happens.
class SpanStack {
 public:
  SpanStack(uint32_t window, sim::Interposer* interposer) {
    registry_.spans().Enable(
        [this] { return clock_.now_ns(); },
        [this](uint64_t out[obs::kTimeCategoryCount]) {
          const sim::Clock::CategorySnapshot& charged = clock_.categories();
          for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
            out[i] = charged.ns[i];
          }
        });

    sfs::SfsServer::Options so;
    so.location = "span.example.org";
    so.key_bits = kKeyBits;
    so.registry = &registry_;
    server_ = std::make_unique<sfs::SfsServer>(&clock_, &costs_, so, &authserver_);
    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    EXPECT_EQ(server_->fs()->SetAttr(server_->fs()->root_handle(), Credentials::User(0),
                                     chmod, &attr),
              Stat::kOk);

    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = kKeyBits;
    co.window = window;
    co.registry = &registry_;
    client_ = std::make_unique<sfs::SfsClient>(
        &clock_, &costs_, [this](const std::string&) { return server_.get(); }, co);
    if (interposer != nullptr) {
      client_->set_interposer(interposer);
    }
  }

  // Dials and certifies the server (the key-exchange half of the
  // protocol, which runs outside any file operation's span).
  sfs::SfsClient::MountPoint* Mount() {
    auto mount = client_->Mount(server_->Path());
    EXPECT_TRUE(mount.ok()) << mount.status().ToString();
    return mount.ok() ? *mount : nullptr;
  }

  // Mixed create/write/read/remove workload through the mount.
  void RunWorkload(int files) {
    sfs::SfsClient::MountPoint* mount = Mount();
    ASSERT_NE(mount, nullptr);
    nfs::FileSystemApi* fs = mount->fs();
    const Credentials cred = Credentials::User(0);
    Fattr attr;
    std::vector<FileHandle> handles;
    for (int i = 0; i < files; ++i) {
      FileHandle fh;
      std::string name = "span-" + std::to_string(i);
      ASSERT_EQ(fs->Create(mount->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr),
                Stat::kOk);
      ASSERT_EQ(fs->Write(fh, cred, 0, BytesOf("contents of " + name), /*stable=*/true,
                          &attr),
                Stat::kOk);
      handles.push_back(fh);
    }
    for (int i = 0; i < files; ++i) {
      Bytes data;
      bool eof = false;
      ASSERT_EQ(fs->Read(handles[static_cast<size_t>(i)], cred, 0, 4096, &data, &eof),
                Stat::kOk);
    }
    for (int i = 0; i < files; i += 2) {
      ASSERT_EQ(fs->Remove(mount->root_fh(), "span-" + std::to_string(i), cred),
                Stat::kOk);
    }
    mount->Drain();
  }

  std::vector<obs::Span> Collect() {
    EXPECT_EQ(registry_.spans().open_count(), 0u)
        << "spans left open after the workload drained";
    EXPECT_EQ(registry_.spans().dropped(), 0u);
    return registry_.spans().TakeFinished();
  }

  obs::Registry registry_;
  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<sfs::SfsServer> server_;
  std::unique_ptr<sfs::SfsClient> client_;
};

// The invariants.  `strict_nesting` additionally requires every child's
// interval to sit inside its parent's — true on a clean link; under
// loss, duplicate frames and DRC hits legitimately land after their
// originating call has completed.
void CheckSpanInvariants(const std::vector<obs::Span>& spans, bool strict_nesting) {
  ASSERT_FALSE(spans.empty());
  std::map<uint64_t, const obs::Span*> by_id;
  for (const obs::Span& span : spans) {
    EXPECT_NE(span.id, 0u);
    EXPECT_TRUE(by_id.emplace(span.id, &span).second) << "duplicate span id " << span.id;
  }

  for (const obs::Span& span : spans) {
    SCOPED_TRACE(span.name + " id=" + std::to_string(span.id));
    EXPECT_GE(span.end_ns, span.start_ns);

    // Exact time attribution: buckets sum to duration for every
    // measured span; transit markers carry no buckets at all.
    if (span.name == "link.transit") {
      EXPECT_EQ(span.CategoryTotalNs(), 0u);
    } else {
      EXPECT_EQ(span.CategoryTotalNs(), span.duration_ns());
    }

    if (span.parent_id == 0) {
      EXPECT_EQ(span.trace_id, span.id) << "root must root its own trace";
      continue;
    }

    // Parent chain: present, same trace, acyclic, ends at a root.
    auto parent_it = by_id.find(span.parent_id);
    ASSERT_NE(parent_it, by_id.end()) << "dangling parent " << span.parent_id;
    const obs::Span* parent = parent_it->second;
    EXPECT_EQ(span.trace_id, parent->trace_id);
    std::set<uint64_t> seen{span.id};
    const obs::Span* node = parent;
    while (node->parent_id != 0) {
      ASSERT_TRUE(seen.insert(node->id).second) << "cycle through span " << node->id;
      auto it = by_id.find(node->parent_id);
      ASSERT_NE(it, by_id.end());
      node = it->second;
    }
    EXPECT_EQ(node->id, span.trace_id) << "parent chain must end at the trace's root";

    if (strict_nesting || (!span.drc_hit && span.name != "link.transit")) {
      EXPECT_GE(span.start_ns, parent->start_ns);
      EXPECT_LE(span.end_ns, parent->end_ns)
          << "child " << span.name << " escapes parent " << parent->name;
    }
  }
}

// Client and server halves of a call must land in one tree even though
// the context crosses the simulated wire inside the sealed channel.
void CheckCrossWireTraces(const std::vector<obs::Span>& spans) {
  std::set<uint64_t> chan_traces, server_traces;
  for (const obs::Span& span : spans) {
    if (std::string(span.layer) == "sfs.chan") {
      chan_traces.insert(span.trace_id);
    } else if (std::string(span.layer) == "server") {
      server_traces.insert(span.trace_id);
    }
  }
  EXPECT_FALSE(chan_traces.empty());
  size_t joined = 0;
  for (uint64_t trace : server_traces) {
    joined += chan_traces.count(trace);
  }
  EXPECT_GT(joined, 0u) << "no server span joined a client-rooted trace";
}

TEST(SpanTreeTest, CleanRunsAreWellFormedAtAllWindows) {
  for (uint32_t window : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    SpanStack stack(window, nullptr);
    stack.RunWorkload(8);
    std::vector<obs::Span> spans = stack.Collect();
    CheckSpanInvariants(spans, /*strict_nesting=*/true);
    CheckCrossWireTraces(spans);
  }
}

TEST(SpanTreeTest, SeededLossyRunsAreWellFormedAtAllWindows) {
  for (uint32_t window : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    // Same profile as fault_test's acceptance configuration.
    sim::LossyInterposer lossy(/*seed=*/42 + window, {.drop = 0.05, .duplicate = 0.02});
    SpanStack stack(window, &lossy);
    stack.RunWorkload(16);
    std::vector<obs::Span> spans = stack.Collect();
    CheckSpanInvariants(spans, /*strict_nesting=*/false);
    CheckCrossWireTraces(spans);

    // The seed deterministically injected faults; the trace must carry
    // their marks without breaking tree shape.
    if (lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates() > 0) {
      bool saw_fault_mark = false;
      for (const obs::Span& span : spans) {
        if (span.retransmits > 0 || span.drc_hit) {
          saw_fault_mark = true;
          break;
        }
      }
      EXPECT_TRUE(saw_fault_mark) << "faults injected but no span recorded them";
    }
  }
}

// Root spans opened around each cache operation split their wall time
// exactly — summing the roots reproduces the clock's ledger over the
// traced interval (the span_report cross-check, as a test).
TEST(SpanTreeTest, RootCriticalPathReproducesClockLedger) {
  SpanStack stack(/*window=*/4, nullptr);
  // Mount first: the key exchange runs outside any operation span, so
  // the ledger snapshot starts after it.  Everything the workload
  // itself charges must then land inside some cache.* root span.
  ASSERT_NE(stack.Mount(), nullptr);
  stack.registry_.spans().ClearFinished();
  // categories() returns a value snapshot (measure frames overlay the
  // global ledger), so take one before and one after the workload.
  const sim::Clock::CategorySnapshot before = stack.clock_.categories();
  stack.RunWorkload(8);
  const sim::Clock::CategorySnapshot charged = stack.clock_.categories();
  std::vector<obs::Span> spans = stack.Collect();

  uint64_t span_cat[obs::kTimeCategoryCount] = {};
  for (const obs::CriticalPathRow& row : obs::CriticalPathByRoot(spans)) {
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      span_cat[i] += row.cat_ns[i];
    }
  }
  for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
    SCOPED_TRACE(obs::TimeCategoryName(static_cast<obs::TimeCategory>(i)));
    EXPECT_EQ(span_cat[i], charged.ns[i] - before.ns[i]);
  }
}

}  // namespace
