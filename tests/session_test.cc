// Focused tests for session-key derivation, AuthInfo construction, and
// channel-cipher behavior under sustained use.
#include <gtest/gtest.h>

#include "src/crypto/prng.h"
#include "src/sfs/pathname.h"
#include "src/sfs/session.h"

namespace {

using crypto::Prng;
using crypto::RabinPrivateKey;
using sfs::ChannelCipher;
using sfs::DeriveSessionKeys;
using sfs::SelfCertifyingPath;
using sfs::SessionKeys;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

struct Inputs {
  RabinPrivateKey server;
  RabinPrivateKey client;
  Bytes kc1, kc2, ks1, ks2;
};

Inputs MakeInputs(uint64_t seed) {
  Prng prng(seed);
  Inputs in{RabinPrivateKey::Generate(&prng, kKeyBits),
            RabinPrivateKey::Generate(&prng, kKeyBits),
            prng.RandomBytes(20), prng.RandomBytes(20), prng.RandomBytes(20),
            prng.RandomBytes(20)};
  return in;
}

SessionKeys Derive(const Inputs& in) {
  return DeriveSessionKeys(in.server.public_key(), in.client.public_key(), in.kc1, in.kc2,
                           in.ks1, in.ks2);
}

TEST(SessionKeysTest, EveryInputAffectsTheKeys) {
  Inputs base = MakeInputs(1);
  SessionKeys reference = Derive(base);

  // Flip each key-half: at least the corresponding directional key moves.
  {
    Inputs m = base;
    m.kc1[0] ^= 1;
    EXPECT_NE(Derive(m).kcs, reference.kcs);
    EXPECT_EQ(Derive(m).ksc, reference.ksc);  // kc1 feeds only kcs.
  }
  {
    Inputs m = base;
    m.kc2[0] ^= 1;
    EXPECT_EQ(Derive(m).kcs, reference.kcs);
    EXPECT_NE(Derive(m).ksc, reference.ksc);
  }
  {
    Inputs m = base;
    m.ks1[0] ^= 1;
    EXPECT_NE(Derive(m).kcs, reference.kcs);
  }
  {
    Inputs m = base;
    m.ks2[0] ^= 1;
    EXPECT_NE(Derive(m).ksc, reference.ksc);
  }
  // Different long-lived keys change everything.
  Inputs other = MakeInputs(2);
  other.kc1 = base.kc1;
  other.kc2 = base.kc2;
  other.ks1 = base.ks1;
  other.ks2 = base.ks2;
  EXPECT_NE(Derive(other).kcs, reference.kcs);
  EXPECT_NE(Derive(other).ksc, reference.ksc);
}

TEST(SessionKeysTest, SessionIdBindsBothDirections) {
  Inputs base = MakeInputs(3);
  SessionKeys keys = Derive(base);
  Bytes id = keys.SessionId();
  EXPECT_EQ(id.size(), 20u);
  SessionKeys swapped;
  swapped.kcs = keys.ksc;
  swapped.ksc = keys.kcs;
  EXPECT_NE(swapped.SessionId(), id);  // Direction labels matter.
}

TEST(SessionKeysTest, AuthInfoBindsPathAndSession) {
  Prng prng(uint64_t{4});
  auto key = RabinPrivateKey::Generate(&prng, kKeyBits);
  SelfCertifyingPath p1 = SelfCertifyingPath::For("a.example.com", key.public_key());
  SelfCertifyingPath p2 = SelfCertifyingPath::For("b.example.com", key.public_key());
  Bytes session1(20, 1);
  Bytes session2(20, 2);
  Bytes info = sfs::MakeAuthInfo(p1, session1);
  EXPECT_NE(sfs::MakeAuthInfo(p2, session1), info);  // Different server...
  EXPECT_NE(sfs::MakeAuthInfo(p1, session2), info);  // ...different session.
  EXPECT_EQ(sfs::MakeAuthId(info).size(), 20u);
  EXPECT_NE(sfs::MakeAuthId(info), sfs::MakeAuthId(sfs::MakeAuthInfo(p1, session2)));
}

TEST(ChannelCipherTest, SustainedTrafficStaysInSync) {
  Prng prng(uint64_t{5});
  Bytes key = prng.RandomBytes(20);
  ChannelCipher sender(key);
  ChannelCipher receiver(key);
  for (int i = 0; i < 500; ++i) {
    Bytes msg = prng.RandomBytes(prng.RandomUint64(300));
    auto opened = receiver.Open(sender.Seal(msg));
    ASSERT_TRUE(opened.ok()) << "message " << i;
    ASSERT_EQ(opened.value(), msg) << "message " << i;
  }
}

TEST(ChannelCipherTest, EmptyMessageRoundTrips) {
  Bytes key(20, 9);
  ChannelCipher sender(key);
  ChannelCipher receiver(key);
  auto opened = receiver.Open(sender.Seal({}));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST(ChannelCipherTest, SkippedMessageDesynchronizes) {
  // Losing one sealed message permanently desynchronizes the stream —
  // the property that makes replay/reorder attacks impossible, at the
  // cost that the session must be re-established after loss (TCP
  // semantics underneath make loss an endpoint failure, not a routine
  // event).
  Bytes key(20, 7);
  ChannelCipher sender(key);
  ChannelCipher receiver(key);
  Bytes m1 = sender.Seal(BytesOf("first"));
  Bytes m2 = sender.Seal(BytesOf("second"));
  (void)m1;  // Dropped in transit.
  EXPECT_FALSE(receiver.Open(m2).ok());
}

TEST(NegotiationTest, WrongSizeServerHalvesRejected) {
  Prng prng(uint64_t{6});
  auto server_key = RabinPrivateKey::Generate(&prng, kKeyBits);
  auto negotiation = sfs::ClientNegotiation::Start(server_key.public_key(), &prng, kKeyBits);
  ASSERT_TRUE(negotiation.ok());
  // The "server" encrypts halves of the wrong size under the ephemeral
  // key; Finish must reject them even though decryption succeeds.
  auto bad_half = negotiation->ephemeral_key.public_key().Encrypt(Bytes(5, 1), &prng);
  ASSERT_TRUE(bad_half.ok());
  auto keys = negotiation->Finish(server_key.public_key(), bad_half.value(),
                                  bad_half.value());
  EXPECT_EQ(keys.status().code(), util::ErrorCode::kSecurityError);
}

TEST(NegotiationTest, ServerRejectsUndecryptableHalves) {
  Prng prng(uint64_t{7});
  auto server_key = RabinPrivateKey::Generate(&prng, kKeyBits);
  auto client_key = RabinPrivateKey::Generate(&prng, kKeyBits);
  size_t k = (server_key.public_key().BitLength() + 7) / 8;
  auto response = sfs::ServerNegotiation::Respond(
      server_key, client_key.public_key().Serialize(), prng.RandomBytes(k),
      prng.RandomBytes(k), &prng);
  EXPECT_FALSE(response.ok());
}

TEST(NegotiationTest, FullExchangeAgreesOnKeys) {
  Prng prng(uint64_t{8});
  auto server_key = RabinPrivateKey::Generate(&prng, kKeyBits);
  auto negotiation = sfs::ClientNegotiation::Start(server_key.public_key(), &prng, kKeyBits);
  ASSERT_TRUE(negotiation.ok());
  auto response = sfs::ServerNegotiation::Respond(
      server_key, negotiation->ephemeral_key.public_key().Serialize(),
      negotiation->enc_kc1, negotiation->enc_kc2, &prng);
  ASSERT_TRUE(response.ok());
  auto client_keys = negotiation->Finish(server_key.public_key(), response->enc_ks1,
                                         response->enc_ks2);
  ASSERT_TRUE(client_keys.ok());
  EXPECT_EQ(client_keys->kcs, response->keys.kcs);
  EXPECT_EQ(client_keys->ksc, response->keys.ksc);
  EXPECT_EQ(client_keys->SessionId(), response->keys.SessionId());
}

}  // namespace
