// Integration tests for the SFS core: self-certifying pathnames, key
// negotiation, the secure channel under an active adversary, user
// authentication, leases, revocation, and the SRP password service.
#include <gtest/gtest.h>

#include <memory>

#include "src/auth/authserver.h"
#include "src/crypto/srp.h"
#include "src/sfs/client.h"
#include "src/sfs/pathname.h"
#include "src/sfs/proto.h"
#include "src/sfs/revocation.h"
#include "src/sfs/server.h"
#include "src/sfs/session.h"
#include "src/xdr/xdr.h"
#include "tests/test_keys.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using sfs::PathRevokeCert;
using sfs::SelfCertifyingPath;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

class SfsTest : public ::testing::Test {
 protected:
  SfsTest() {
    SfsServer::Options server_options;
    server_options.location = "sfs.lcs.mit.edu";
    server_options.key_bits = kKeyBits;
    server_options.allow_cleartext = true;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, server_options, &authserver_);

    SfsClient::Options client_options;
    client_options.ephemeral_key_bits = kKeyBits;
    client_ = std::make_unique<SfsClient>(
        &clock_, &costs_,
        [this](const std::string& location) -> SfsServer* {
          if (location == "sfs.lcs.mit.edu") {
            return server_.get();
          }
          return nullptr;
        },
        client_options);

    // Register a user with the authserver.
    user_key_ = test_keys::CachedTestKey(77, kKeyBits);
    auth::PublicUserRecord record;
    record.name = "kaminsky";
    record.public_key = user_key_.public_key().Serialize();
    record.credentials = Credentials::User(1000, {1000});
    EXPECT_TRUE(authserver_.RegisterUser(record).ok());
  }

  // An agent-style signer holding the registered user's private key.
  SfsClient::AuthSigner UserSigner() {
    return [this](const Bytes& auth_info, uint32_t seqno) -> std::optional<Bytes> {
      Bytes auth_id = sfs::MakeAuthId(auth_info);
      Bytes body = auth::MakeSignedAuthReqBody(auth_id, seqno);
      xdr::Encoder enc;
      enc.PutOpaque(user_key_.public_key().Serialize());
      enc.PutOpaque(user_key_.Sign(body));
      return enc.Take();
    };
  }

  static SfsClient::AuthSigner DecliningSigner() {
    return [](const Bytes&, uint32_t) { return std::nullopt; };
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
  std::unique_ptr<SfsClient> client_;
  crypto::RabinPrivateKey user_key_;
};

TEST_F(SfsTest, PathnameFormatAndParse) {
  SelfCertifyingPath path = server_->Path();
  EXPECT_EQ(path.location, "sfs.lcs.mit.edu");
  EXPECT_EQ(path.host_id.size(), sfs::kHostIdSize);
  std::string component = path.ComponentName();
  auto parsed = SelfCertifyingPath::Parse(component);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == path);
  EXPECT_EQ(path.FullPath(), "/sfs/" + component);
  EXPECT_TRUE(path.Certifies(server_->public_key()));
}

TEST_F(SfsTest, PathnameParseRejectsMalformed) {
  EXPECT_FALSE(SelfCertifyingPath::Parse("nocolon").ok());
  EXPECT_FALSE(SelfCertifyingPath::Parse(":abc").ok());
  EXPECT_FALSE(SelfCertifyingPath::Parse("host:").ok());
  EXPECT_FALSE(SelfCertifyingPath::Parse("host:tooshort").ok());
  EXPECT_FALSE(SelfCertifyingPath::Parse("host:lllllllllllllllllllllllllllllll1").ok());
}

TEST_F(SfsTest, HostIdBindsLocationAndKey) {
  // Same key, different location -> different HostID; and vice versa.
  auto other_key = test_keys::CachedTestKey(5, kKeyBits);
  Bytes id1 = sfs::ComputeHostId("a.example.com", server_->public_key());
  Bytes id2 = sfs::ComputeHostId("b.example.com", server_->public_key());
  Bytes id3 = sfs::ComputeHostId("a.example.com", other_key.public_key());
  EXPECT_NE(id1, id2);
  EXPECT_NE(id1, id3);
}

TEST_F(SfsTest, MountAndReadWrite) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok()) << mount.status().ToString();
  ASSERT_TRUE((*mount)->Authenticate(1000, UserSigner()).ok());

  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "paper.txt", alice, {}, &fh, &attr),
            Stat::kOk);
  ASSERT_EQ((*mount)->fs()->Write(fh, alice, 0, BytesOf("self-certifying"), false, &attr),
            Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ((*mount)->fs()->Read(fh, alice, 0, 100, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "self-certifying");
}

TEST_F(SfsTest, MountIsSharedAcrossUsers) {
  auto m1 = client_->Mount(server_->Path());
  auto m2 = client_->Mount(server_->Path());
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1.value(), m2.value());  // Same cache, same connection.
  EXPECT_EQ(client_->mounts_created(), 1u);
}

TEST_F(SfsTest, MountFailsForWrongHostId) {
  // A path naming the right Location but a different key's HostID must
  // not mount, even though the server is reachable.
  auto other_key = test_keys::CachedTestKey(6, kKeyBits);
  SelfCertifyingPath bogus = SelfCertifyingPath::For("sfs.lcs.mit.edu", other_key.public_key());
  auto mount = client_->Mount(bogus);
  EXPECT_FALSE(mount.ok());
}

TEST_F(SfsTest, MountFailsForUnknownHost) {
  SelfCertifyingPath path = server_->Path();
  path.location = "unreachable.example.com";
  path.host_id = sfs::ComputeHostId(path.location, server_->public_key());
  auto mount = client_->Mount(path);
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kUnavailable);
}

TEST_F(SfsTest, AnonymousAccessIsRestricted) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ASSERT_TRUE((*mount)->Authenticate(555, DecliningSigner()).ok());
  EXPECT_EQ((*mount)->AuthnoFor(555), sfs::kAnonymousAuthno);

  // The anonymous user cannot read a 0600 file created by alice.
  ASSERT_TRUE((*mount)->Authenticate(1000, UserSigner()).ok());
  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  nfs::Sattr sattr;
  sattr.mode = 0600;
  ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "private", alice, sattr, &fh, &attr),
            Stat::kOk);
  Credentials anon = Credentials::User(555);
  Bytes data;
  bool eof = false;
  EXPECT_EQ((*mount)->fs()->Read(fh, anon, 0, 10, &data, &eof), Stat::kAccess);
}

TEST_F(SfsTest, ServerMapsCredentialsFromAuthserverNotWire) {
  // Even though the FileSystemApi carries Credentials, the SFS server
  // derives permissions from the authno mapping.  A user authenticated as
  // uid 1000 claiming uid 0 in the API still acts as 1000.
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ASSERT_TRUE((*mount)->Authenticate(1000, UserSigner()).ok());
  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  nfs::Sattr sattr;
  sattr.mode = 0600;
  ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "victim", alice, sattr, &fh, &attr),
            Stat::kOk);
  // bob has no authno; he forges root credentials at the API layer.  His
  // requests go out with authno 0 (anonymous), so access is denied —
  // unlike the plain-NFS test in nfs_test.cc where the same forgery works.
  Credentials forged_root = Credentials::User(0);
  nfs::Sattr chown;
  chown.uid = 1001;
  EXPECT_NE((*mount)->fs()->SetAttr(fh, forged_root, chown, &attr), Stat::kOk);
}

TEST_F(SfsTest, LoginReplayIsRejected) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  // Sign once, then try to replay the same signed request with the same
  // seqno via a second login.  The server's window must reject it.
  Bytes captured_msg;
  uint32_t captured_seqno = 0;
  auto capturing_signer = [&](const Bytes& auth_info, uint32_t seqno) -> std::optional<Bytes> {
    Bytes auth_id = sfs::MakeAuthId(auth_info);
    Bytes body = auth::MakeSignedAuthReqBody(auth_id, seqno);
    xdr::Encoder enc;
    enc.PutOpaque(user_key_.public_key().Serialize());
    enc.PutOpaque(user_key_.Sign(body));
    captured_msg = enc.data();
    captured_seqno = seqno;
    return enc.Take();
  };
  ASSERT_TRUE((*mount)->Authenticate(1000, capturing_signer).ok());

  // Replay: same AuthMsg, same seqno.
  auto replayer = [&](const Bytes&, uint32_t) -> std::optional<Bytes> {
    return captured_msg;
  };
  // The mount's seqno counter has advanced, so the signed seqno inside no
  // longer matches the outer seqno... craft the replay at the RPC level
  // instead: a second Authenticate with a signer that returns the stale
  // message fails signature validation (seqno mismatch) or the window.
  util::Status status = (*mount)->Authenticate(1001, replayer);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ((*mount)->AuthnoFor(1001), sfs::kAnonymousAuthno);
}

TEST_F(SfsTest, SignatureFromUnknownKeyIsRejected) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  auto rogue = test_keys::CachedTestKey(9, kKeyBits);
  auto rogue_signer = [&](const Bytes& auth_info, uint32_t seqno) -> std::optional<Bytes> {
    Bytes body = auth::MakeSignedAuthReqBody(sfs::MakeAuthId(auth_info), seqno);
    xdr::Encoder enc;
    enc.PutOpaque(rogue.public_key().Serialize());
    enc.PutOpaque(rogue.Sign(body));
    return enc.Take();
  };
  EXPECT_FALSE((*mount)->Authenticate(42, rogue_signer).ok());
  EXPECT_EQ((*mount)->AuthnoFor(42), sfs::kAnonymousAuthno);
}

// --- Active adversary tests -------------------------------------------------

// Flips one bit in every message after the first N.
class TamperInterposer : public sim::Interposer {
 public:
  explicit TamperInterposer(int skip) : skip_(skip) {}
  util::Result<Bytes> OnRequest(Bytes request) override {
    if (count_++ >= skip_ && !request.empty()) {
      request[request.size() / 2] ^= 0x40;
    }
    return request;
  }

 private:
  int skip_;
  int count_ = 0;
};

class ResponseTamperInterposer : public sim::Interposer {
 public:
  explicit ResponseTamperInterposer(int skip) : skip_(skip) {}
  util::Result<Bytes> OnResponse(Bytes response) override {
    if (count_++ >= skip_ && !response.empty()) {
      response[response.size() / 3] ^= 0x01;
    }
    return response;
  }

 private:
  int skip_;
  int count_ = 0;
};

TEST_F(SfsTest, TamperedRequestsAreDetected) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  // Interpose after mount: every subsequent request is corrupted in
  // flight; the server must kill the session rather than act on it.
  TamperInterposer tamper(0);
  (*mount)->link()->set_interposer(&tamper);
  Fattr attr;
  Stat s = (*mount)->fs()->GetAttr((*mount)->root_fh(), &attr);
  EXPECT_EQ(s, Stat::kIo);
  EXPECT_EQ((*mount)->raw_client()->last_transport_error().code(),
            util::ErrorCode::kSecurityError);
}

TEST_F(SfsTest, TamperedResponsesAreDetected) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ResponseTamperInterposer tamper(0);
  (*mount)->link()->set_interposer(&tamper);
  Fattr attr;
  Stat s = (*mount)->fs()->GetAttr((*mount)->root_fh(), &attr);
  EXPECT_EQ(s, Stat::kIo);
  EXPECT_EQ((*mount)->raw_client()->last_transport_error().code(),
            util::ErrorCode::kSecurityError);
}

// Substitutes a different public key during the connect reply — the
// man-in-the-middle a self-certifying pathname must defeat.
class KeySubstitutionInterposer : public sim::Interposer {
 public:
  explicit KeySubstitutionInterposer(const crypto::RabinPublicKey& attacker_key)
      : attacker_key_bytes_(attacker_key.Serialize()) {}
  util::Result<Bytes> OnResponse(Bytes response) override {
    if (first_) {
      first_ = false;
      // Rebuild the connect reply with the attacker's key.
      xdr::Encoder reply;
      reply.PutUint32(sfs::kConnectOk);
      reply.PutOpaque(attacker_key_bytes_);
      xdr::Encoder framed;
      framed.PutUint32(sfs::kMsgConnect);
      framed.PutOpaque(reply.Take());
      return framed.Take();
    }
    return response;
  }

 private:
  Bytes attacker_key_bytes_;
  bool first_ = true;
};

TEST_F(SfsTest, ManInTheMiddleKeySubstitutionFailsCertification) {
  auto attacker_key = test_keys::CachedTestKey(10, kKeyBits);
  KeySubstitutionInterposer mitm(attacker_key.public_key());
  client_->set_interposer(&mitm);
  auto mount = client_->Mount(server_->Path());
  ASSERT_FALSE(mount.ok());
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kSecurityError);
}

// Records the first encrypted request and replays it later.
class ReplayInterposer : public sim::Interposer {
 public:
  util::Result<Bytes> OnRequest(Bytes request) override {
    xdr::Decoder dec(request);
    auto type = dec.GetUint32();
    if (type.ok() && type.value() == sfs::kMsgEncrypted) {
      if (!have_recorded_) {
        recorded_ = request;
        have_recorded_ = true;
      } else if (replay_now_) {
        replay_now_ = false;
        return recorded_;  // Substitute the old message.
      }
    }
    return request;
  }
  void ReplayNext() { replay_now_ = true; }

 private:
  Bytes recorded_;
  bool have_recorded_ = false;
  bool replay_now_ = false;
};

TEST_F(SfsTest, ReplayedChannelMessagesAreDeduplicatedNotReexecuted) {
  // Let the anonymous user create files so a non-idempotent op is
  // available without going through login.
  Fattr attr;
  nfs::Sattr chmod;
  chmod.mode = 0777;
  ASSERT_EQ(server_->fs()->SetAttr(server_->fs()->root_handle(), Credentials::User(0), chmod,
                                   &attr),
            Stat::kOk);

  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  ReplayInterposer replayer;
  (*mount)->link()->set_interposer(&replayer);
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);  // Recorded.
  replayer.ReplayNext();
  uint64_t creates_before = server_->fs()->creates_applied();
  // The attacker substitutes the recorded earlier request for this one.
  // The server recognizes the old wire seqno and replays its cached
  // reply without re-executing anything or advancing either keystream;
  // the client rejects that stale reply (sealed at an earlier stream
  // position, so the MAC cannot verify), retransmits, and the genuine
  // CREATE then executes — exactly once.
  nfs::FileHandle fh;
  Stat s = (*mount)->fs()->Create((*mount)->root_fh(), "replayed-create",
                                  Credentials::User(0), nfs::Sattr{}, &fh, &attr);
  EXPECT_EQ(s, Stat::kOk);
  EXPECT_GT(server_->drc_hits(), 0u);
  EXPECT_GT((*mount)->stale_retries(), 0u);
  EXPECT_EQ(server_->fs()->creates_applied(), creates_before + 1);
}

// --- Secure channel unit behavior -------------------------------------------

TEST(ChannelCipherTest, SealOpenRoundTrip) {
  Bytes key(20, 0x11);
  sfs::ChannelCipher sender(key);
  sfs::ChannelCipher receiver(key);
  for (int i = 0; i < 20; ++i) {
    Bytes msg = BytesOf("message number " + std::to_string(i));
    auto opened = receiver.Open(sender.Seal(msg));
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened.value(), msg);
  }
}

TEST(ChannelCipherTest, CiphertextDiffersFromPlaintextAndVaries) {
  Bytes key(20, 0x22);
  sfs::ChannelCipher sender(key);
  Bytes msg = BytesOf("identical plaintext");
  Bytes c1 = sender.Seal(msg);
  Bytes c2 = sender.Seal(msg);
  EXPECT_NE(c1, c2);  // Stream position differs.
  EXPECT_EQ(std::search(c1.begin(), c1.end(), msg.begin(), msg.end()), c1.end());
}

TEST(ChannelCipherTest, DirectionKeysAreIndependent) {
  // A message sealed for one direction must not open with the other
  // direction's key (reflection attack).
  crypto::Prng prng(uint64_t{12});
  auto server_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  auto client_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  Bytes kc1 = prng.RandomBytes(20);
  Bytes kc2 = prng.RandomBytes(20);
  Bytes ks1 = prng.RandomBytes(20);
  Bytes ks2 = prng.RandomBytes(20);
  sfs::SessionKeys keys = sfs::DeriveSessionKeys(server_key.public_key(),
                                                 client_key.public_key(), kc1, kc2, ks1, ks2);
  EXPECT_NE(keys.kcs, keys.ksc);
  sfs::ChannelCipher c2s(keys.kcs);
  sfs::ChannelCipher reflector(keys.ksc);
  auto opened = reflector.Open(c2s.Seal(BytesOf("reflect me")));
  EXPECT_FALSE(opened.ok());
}

TEST(ChannelCipherTest, TruncationDetected) {
  Bytes key(20, 0x33);
  sfs::ChannelCipher sender(key);
  sfs::ChannelCipher receiver(key);
  Bytes sealed = sender.Seal(BytesOf("truncate me please"));
  sealed.pop_back();
  EXPECT_FALSE(receiver.Open(sealed).ok());
}

TEST(ChannelCipherTest, EverySingleBitFlipDetected) {
  Bytes key(20, 0x44);
  Bytes msg = BytesOf("integrity");
  for (size_t byte = 0; byte < 20; ++byte) {
    sfs::ChannelCipher sender(key);
    sfs::ChannelCipher receiver(key);
    Bytes sealed = sender.Seal(msg);
    sealed[byte % sealed.size()] ^= static_cast<uint8_t>(1 << (byte % 8));
    EXPECT_FALSE(receiver.Open(sealed).ok()) << "byte " << byte;
  }
}

// --- Forward secrecy ---------------------------------------------------------

TEST_F(SfsTest, ForwardSecrecyOfKeyNegotiation) {
  // Record a full negotiation transcript, then "compromise" the server's
  // long-lived key.  The attacker can decrypt the client's key halves but
  // not the server's (sent under the ephemeral client key), so neither
  // session key is recoverable.
  crypto::Prng prng(uint64_t{13});
  auto negotiation = sfs::ClientNegotiation::Start(server_->public_key(), &prng, kKeyBits);
  ASSERT_TRUE(negotiation.ok());
  auto response = sfs::ServerNegotiation::Respond(
      server_->private_key(), negotiation->ephemeral_key.public_key().Serialize(),
      negotiation->enc_kc1, negotiation->enc_kc2, &prng);
  ASSERT_TRUE(response.ok());

  // Attacker with the server's private key reads kc1/kc2 off the wire...
  auto stolen_kc1 = server_->private_key().Decrypt(negotiation->enc_kc1);
  ASSERT_TRUE(stolen_kc1.ok());
  EXPECT_EQ(stolen_kc1.value(), negotiation->kc1);
  // ...but ks1/ks2 were encrypted under the (discarded) ephemeral key;
  // the server's key cannot decrypt them.
  auto stolen_ks1 = server_->private_key().Decrypt(response->enc_ks1);
  EXPECT_FALSE(stolen_ks1.ok());
}

// --- Revocation ---------------------------------------------------------------

TEST_F(SfsTest, RevocationCertificateBlocksMount) {
  SelfCertifyingPath path = server_->Path();
  PathRevokeCert cert = PathRevokeCert::MakeRevocation(server_->private_key(), path.location);
  ASSERT_TRUE(cert.Verify().ok());
  EXPECT_TRUE(cert.RevokedPath() == path);

  ASSERT_TRUE(client_->SubmitRevocation(cert).ok());
  EXPECT_TRUE(client_->IsRevoked(path));
  auto mount = client_->Mount(path);
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kSecurityError);
}

TEST_F(SfsTest, ForgedRevocationCertificateRejected) {
  // Only the key's owner can revoke: a cert signed by a different key
  // for this path must not be accepted.
  auto attacker = test_keys::CachedTestKey(14, kKeyBits);
  PathRevokeCert forged =
      PathRevokeCert::MakeRevocation(attacker, server_->Path().location);
  // The certificate verifies under the attacker's key, but it revokes the
  // *attacker's* path, not the victim's.
  EXPECT_TRUE(forged.Verify().ok());
  EXPECT_FALSE(forged.RevokedPath() == server_->Path());
  ASSERT_TRUE(client_->SubmitRevocation(forged).ok());
  EXPECT_FALSE(client_->IsRevoked(server_->Path()));
  EXPECT_TRUE(client_->Mount(server_->Path()).ok());
}

TEST_F(SfsTest, TamperedRevocationCertificateFailsVerify) {
  PathRevokeCert cert =
      PathRevokeCert::MakeRevocation(server_->private_key(), server_->Path().location);
  Bytes wire = cert.Serialize();
  wire[wire.size() - 5] ^= 1;  // Corrupt the signature.
  auto parsed = PathRevokeCert::Deserialize(wire);
  if (parsed.ok()) {
    EXPECT_FALSE(parsed->Verify().ok());
  }
}

TEST_F(SfsTest, ServerServesRevocationOnConnect) {
  // The server operator installs a revocation for the primary path;
  // clients that connect learn about it immediately.
  SelfCertifyingPath path = server_->Path();
  PathRevokeCert cert = PathRevokeCert::MakeRevocation(server_->private_key(), path.location);
  server_->ServeRevocation(cert);
  auto mount = client_->Mount(path);
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kSecurityError);
  // And the client remembers it (agent-style caching of revocations).
  EXPECT_TRUE(client_->IsRevoked(path));
}

TEST_F(SfsTest, ForwardingPointerCertificate) {
  auto new_key = test_keys::CachedTestKey(15, kKeyBits);
  SelfCertifyingPath new_path = SelfCertifyingPath::For("new.example.com",
                                                        new_key.public_key());
  PathRevokeCert forward = PathRevokeCert::MakeForwardingPointer(
      server_->private_key(), server_->Path().location, new_path);
  ASSERT_TRUE(forward.Verify().ok());
  EXPECT_FALSE(forward.is_revocation());
  ASSERT_TRUE(forward.forward_to().has_value());
  EXPECT_TRUE(*forward.forward_to() == new_path);
  // A forwarding pointer is not accepted as a revocation.
  EXPECT_FALSE(client_->SubmitRevocation(forward).ok());
}

TEST_F(SfsTest, RevokedHostIdRejectedOnNextConnect) {
  // An already-connected client keeps its session, but the *next*
  // connect for the revoked HostID is answered with the certificate.
  auto before = client_->Mount(server_->Path());
  ASSERT_TRUE(before.ok());
  PathRevokeCert cert =
      PathRevokeCert::MakeRevocation(server_->private_key(), server_->Path().location);
  server_->ServeRevocation(cert);

  // A fresh client machine (no cached mount) connects next.
  SfsClient::Options opts;
  opts.ephemeral_key_bits = kKeyBits;
  opts.prng_seed = 98;
  SfsClient fresh(
      &clock_, &costs_, [this](const std::string&) { return server_.get(); }, opts);
  auto mount = fresh.Mount(server_->Path());
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kSecurityError);
  EXPECT_TRUE(fresh.IsRevoked(server_->Path()));
}

TEST_F(SfsTest, ReServingSameRevocationIsIdempotent) {
  PathRevokeCert cert =
      PathRevokeCert::MakeRevocation(server_->private_key(), server_->Path().location);
  server_->ServeRevocation(cert);
  server_->ServeRevocation(cert);  // Operator re-runs the install: no-op.
  auto mount = client_->Mount(server_->Path());
  EXPECT_EQ(mount.status().code(), util::ErrorCode::kSecurityError);
  // Re-serving overwrote the same HostID slot; connects keep being
  // answered with the certificate.
  auto again = client_->Mount(server_->Path());
  EXPECT_EQ(again.status().code(), util::ErrorCode::kSecurityError);
}

TEST_F(SfsTest, ServedRevocationIsJournaled) {
  // The audit journal records both the installation and every connect
  // answered with the certificate (forensics for key compromise).
  PathRevokeCert cert =
      PathRevokeCert::MakeRevocation(server_->private_key(), server_->Path().location);
  server_->ServeRevocation(cert);
  auto mount = client_->Mount(server_->Path());
  EXPECT_FALSE(mount.ok());

  ASSERT_NE(server_->auditor(), nullptr);
  server_->auditor()->Finalize();
  obs::AuditVerifyResult verified = obs::VerifyAuditLog(
      server_->auditor()->genesis_key(), server_->auditor()->log().bytes());
  ASSERT_TRUE(verified.ok) << verified.detail;
  int installed = 0, served = 0;
  for (const obs::AuditRecordInfo& info : verified.records) {
    if (info.record.kind == static_cast<uint32_t>(obs::AuditKind::kRevocationInstalled)) {
      ++installed;
    }
    if (info.record.kind == static_cast<uint32_t>(obs::AuditKind::kRevocationServed)) {
      ++served;
    }
  }
  EXPECT_EQ(installed, 1);
  EXPECT_GE(served, 1);
}

TEST_F(SfsTest, MultipleIdentitiesServeSameFileSystem) {
  // Key rollover: the server adds a second (location, key) identity; both
  // self-certifying pathnames reach the same files.
  auto new_key = test_keys::CachedTestKey(16, kKeyBits);
  server_->AddIdentity(new_key, "sfs.lcs.mit.edu");
  SelfCertifyingPath new_path =
      SelfCertifyingPath::For("sfs.lcs.mit.edu", new_key.public_key());

  auto m1 = client_->Mount(server_->Path());
  ASSERT_TRUE(m1.ok());
  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ((*m1)->fs()->Create((*m1)->root_fh(), "shared-file", alice, {}, &fh, &attr),
            Stat::kOk);

  auto m2 = client_->Mount(new_path);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();
  EXPECT_NE(m1.value(), m2.value());  // Different paths, different mounts...
  FileHandle found;
  ASSERT_EQ((*m2)->fs()->Lookup((*m2)->root_fh(), "shared-file", alice, &found, &attr),
            Stat::kOk);  // ...same file system.
}

// --- Lease-based cache coherence ---------------------------------------------

TEST_F(SfsTest, LeaseCallbackInvalidatesOtherClients) {
  // Two client machines mount the same server.  Client B writes; client
  // A's cached attributes are invalidated by the server callback, so A
  // sees the new size immediately (before any lease expiry).
  SfsClient::Options opts;
  opts.ephemeral_key_bits = kKeyBits;
  opts.prng_seed = 99;
  SfsClient client_b(
      &clock_, &costs_, [this](const std::string&) { return server_.get(); }, opts);

  auto ma = client_->Mount(server_->Path());
  auto mb = client_b.Mount(server_->Path());
  ASSERT_TRUE(ma.ok() && mb.ok());

  Credentials alice = Credentials::User(1000, {1000});
  FileHandle fh_a;
  Fattr attr;
  ASSERT_EQ((*ma)->fs()->Create((*ma)->root_fh(), "coherent", alice, {}, &fh_a, &attr),
            Stat::kOk);
  ASSERT_EQ((*ma)->fs()->Write(fh_a, alice, 0, BytesOf("v1"), false, &attr), Stat::kOk);
  // A caches the attributes.
  ASSERT_EQ((*ma)->fs()->GetAttr(fh_a, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 2u);

  // B looks up the same file (same encrypted handle) and extends it.
  FileHandle fh_b;
  ASSERT_EQ((*mb)->fs()->Lookup((*mb)->root_fh(), "coherent", alice, &fh_b, &attr), Stat::kOk);
  EXPECT_EQ(fh_b, fh_a);
  ASSERT_EQ((*mb)->fs()->Write(fh_b, alice, 0, BytesOf("version2"), false, &attr), Stat::kOk);

  // Without advancing the clock past any lease, A must see the new size.
  ASSERT_EQ((*ma)->fs()->GetAttr(fh_a, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 8u);
}

TEST_F(SfsTest, LeasesReduceRpcTraffic) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  Fattr attr;
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);
  EXPECT_GT(attr.lease_ns, 0u);  // The SFS dialect grants leases.
  uint64_t calls = (*mount)->raw_client()->calls_sent();
  // Repeated stats within the lease hit the cache; advance past the
  // plain-NFS timeout but within the lease.
  clock_.Advance(30'000'000'000);
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), Stat::kOk);
  EXPECT_EQ((*mount)->raw_client()->calls_sent(), calls);
}

// --- SRP password service ----------------------------------------------------

class SrpFlowTest : public SfsTest {
 protected:
  void RegisterSrpUser(const std::string& name, const std::string& password) {
    crypto::Prng prng(uint64_t{21});
    auth::PrivateUserRecord priv;
    priv.srp = crypto::MakeSrpVerifier(crypto::DefaultSrpParams(), password, 2, &prng);
    // Encrypted private key: eksblowfish-derived ARC4 seal of the key.
    priv.encrypted_private_key = BytesOf("ciphertext-of-private-key");
    ASSERT_TRUE(authserver_.UpdatePrivateRecord(name, priv).ok());
  }

  // Drives the sfskey-style SRP exchange against a fresh connection.
  // Returns (server_path, encrypted_key_blob) on success.
  util::Result<std::pair<std::string, Bytes>> RunSrp(const std::string& user,
                                                     const std::string& password) {
    auto accepted = server_->CreateConnection();
    sim::Link link(&clock_, sim::LinkProfile::Tcp(), accepted.connection.get());
    crypto::Prng prng(uint64_t{22});
    crypto::SrpClient srp(crypto::DefaultSrpParams(), &prng);

    xdr::Encoder start;
    start.PutString(user);
    start.PutOpaque(srp.A().ToBytes());
    xdr::Encoder framed;
    framed.PutUint32(sfs::kMsgSrpStart);
    framed.PutOpaque(start.Take());
    ASSIGN_OR_RETURN(Bytes start_raw, link.Roundtrip(framed.Take()));
    xdr::Decoder sdec(start_raw);
    ASSIGN_OR_RETURN(uint32_t stype, sdec.GetUint32());
    if (stype != sfs::kMsgSrpStart) {
      return util::SecurityError("bad SRP framing");
    }
    ASSIGN_OR_RETURN(Bytes spayload, sdec.GetOpaque());
    xdr::Decoder sp(spayload);
    ASSIGN_OR_RETURN(Bytes salt, sp.GetOpaque());
    ASSIGN_OR_RETURN(uint32_t cost, sp.GetUint32());
    ASSIGN_OR_RETURN(Bytes b_bytes, sp.GetOpaque());
    RETURN_IF_ERROR(srp.ProcessServerReply(password, salt, cost,
                                           crypto::BigInt::FromBytes(b_bytes)));

    xdr::Encoder finish;
    finish.PutOpaque(srp.ClientProof());
    xdr::Encoder framed2;
    framed2.PutUint32(sfs::kMsgSrpFinish);
    framed2.PutOpaque(finish.Take());
    ASSIGN_OR_RETURN(Bytes finish_raw, link.Roundtrip(framed2.Take()));
    xdr::Decoder fdec(finish_raw);
    ASSIGN_OR_RETURN(uint32_t ftype, fdec.GetUint32());
    if (ftype != sfs::kMsgSrpFinish) {
      return util::SecurityError("bad SRP framing");
    }
    ASSIGN_OR_RETURN(Bytes fpayload, fdec.GetOpaque());
    xdr::Decoder fp(fpayload);
    ASSIGN_OR_RETURN(Bytes m2, fp.GetOpaque());
    ASSIGN_OR_RETURN(Bytes sealed, fp.GetOpaque());
    RETURN_IF_ERROR(srp.VerifyServerProof(m2));

    sfs::ChannelCipher open_cipher(srp.SessionKey());
    ASSIGN_OR_RETURN(Bytes secret, open_cipher.Open(sealed));
    xdr::Decoder sec(secret);
    ASSIGN_OR_RETURN(std::string path, sec.GetString());
    ASSIGN_OR_RETURN(Bytes enc_key, sec.GetOpaque());
    return std::make_pair(path, enc_key);
  }
};

TEST_F(SrpFlowTest, PasswordDownloadsSelfCertifyingPath) {
  RegisterSrpUser("kaminsky", "davy jones locker");
  auto result = RunSrp("kaminsky", "davy jones locker");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->first, server_->Path().FullPath());
  EXPECT_EQ(util::StringOf(result->second), "ciphertext-of-private-key");
}

TEST_F(SrpFlowTest, WrongPasswordFails) {
  RegisterSrpUser("kaminsky", "davy jones locker");
  auto result = RunSrp("kaminsky", "wrong guess");
  EXPECT_FALSE(result.ok());
}

TEST_F(SrpFlowTest, UnknownUserFails) {
  auto result = RunSrp("nobody", "whatever");
  EXPECT_FALSE(result.ok());
}

}  // namespace
