// Per-process cache of deterministic Rabin test keys.
//
// Many fixtures regenerate the same key — fresh `Prng(seed)`, one
// `Generate` call — in every test's SetUp.  The cache produces exactly
// the bytes that pattern would (same seed, same bits, fresh PRNG), so
// swapping a call site in is behaviour-preserving; it just pays the
// prime search once per binary instead of once per test.
//
// Only use this where the original PRNG was dedicated to the one
// generation: if the test keeps drawing from it afterwards, replacing
// the call would shift that test's randomness.
#ifndef SFS_TESTS_TEST_KEYS_H_
#define SFS_TESTS_TEST_KEYS_H_

#include <cstdint>
#include <map>
#include <utility>

#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"

namespace test_keys {

inline const crypto::RabinPrivateKey& CachedTestKey(uint64_t seed, size_t bits) {
  static auto* cache =
      new std::map<std::pair<uint64_t, size_t>, crypto::RabinPrivateKey>();
  auto key = std::make_pair(seed, bits);
  auto it = cache->find(key);
  if (it == cache->end()) {
    crypto::Prng prng(seed);
    it = cache->emplace(key, crypto::RabinPrivateKey::Generate(&prng, bits)).first;
  }
  return it->second;
}

}  // namespace test_keys

#endif  // SFS_TESTS_TEST_KEYS_H_
