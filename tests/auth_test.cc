// Tests for the authserver, agents (including proxy agents), and the
// sfskey utility.
#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/crypto/prng.h"
#include "src/nfs/memfs.h"
#include "src/sfs/pathname.h"
#include "src/sfs/session.h"
#include "src/sfs/sfskey.h"
#include "src/xdr/xdr.h"
#include "tests/test_keys.h"

namespace {

using agent::Agent;
using agent::ProxyAgent;
using auth::AuthServer;
using auth::PublicUserRecord;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

crypto::RabinPrivateKey MakeKey(uint64_t seed) {
  return test_keys::CachedTestKey(seed, kKeyBits);
}

PublicUserRecord MakeRecord(const std::string& name, const crypto::RabinPrivateKey& key,
                            uint32_t uid) {
  PublicUserRecord r;
  r.name = name;
  r.public_key = key.public_key().Serialize();
  r.credentials = nfs::Credentials::User(uid, {uid});
  return r;
}

// Builds a valid AuthMsg the way an agent does.
Bytes MakeAuthMsg(const crypto::RabinPrivateKey& key, const Bytes& auth_id, uint32_t seqno) {
  Bytes body = auth::MakeSignedAuthReqBody(auth_id, seqno);
  xdr::Encoder enc;
  enc.PutOpaque(key.public_key().Serialize());
  enc.PutOpaque(key.Sign(body));
  return enc.Take();
}

// --- AuthServer -----------------------------------------------------------------

TEST(AuthServerTest, RegisterAndValidate) {
  AuthServer server;
  auto key = MakeKey(1);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  Bytes auth_id(20, 0x42);
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 7), auth_id, 7);
  ASSERT_TRUE(creds.ok());
  EXPECT_EQ(creds->uid, 1000u);
  EXPECT_EQ(server.validations(), 1u);
  EXPECT_EQ(server.failed_validations(), 0u);
}

TEST(AuthServerTest, DuplicateRegistrationsRejected) {
  AuthServer server;
  auto key = MakeKey(2);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  EXPECT_FALSE(server.RegisterUser(MakeRecord("alice", MakeKey(3), 1001)).ok());
  EXPECT_FALSE(server.RegisterUser(MakeRecord("alice2", key, 1002)).ok());
  EXPECT_FALSE(server.RegisterUser(PublicUserRecord{}).ok());
}

TEST(AuthServerTest, WrongAuthIdRejected) {
  AuthServer server;
  auto key = MakeKey(4);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  Bytes auth_id(20, 0x42);
  Bytes other_id(20, 0x43);
  // Signature binds the AuthID: a message for one session fails another.
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 1), other_id, 1);
  EXPECT_EQ(creds.status().code(), util::ErrorCode::kSecurityError);
  EXPECT_EQ(server.failed_validations(), 1u);
}

TEST(AuthServerTest, WrongSeqnoRejected) {
  AuthServer server;
  auto key = MakeKey(5);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  Bytes auth_id(20, 0x42);
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 1), auth_id, 2);
  EXPECT_FALSE(creds.ok());
}

TEST(AuthServerTest, UnknownKeyRejected) {
  AuthServer server;
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", MakeKey(6), 1000)).ok());
  Bytes auth_id(20, 1);
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(MakeKey(7), auth_id, 1), auth_id, 1);
  EXPECT_FALSE(creds.ok());
}

TEST(AuthServerTest, MalformedAuthMsgRejected) {
  AuthServer server;
  Bytes auth_id(20, 1);
  EXPECT_FALSE(server.ValidateAuthMsg(BytesOf("garbage"), auth_id, 1).ok());
  EXPECT_FALSE(server.ValidateAuthMsg({}, auth_id, 1).ok());
}

TEST(AuthServerTest, ChangePublicKey) {
  AuthServer server;
  auto old_key = MakeKey(8);
  auto new_key = MakeKey(9);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", old_key, 1000)).ok());
  ASSERT_TRUE(server.ChangePublicKey("alice", new_key.public_key().Serialize()).ok());
  Bytes auth_id(20, 1);
  EXPECT_FALSE(server.ValidateAuthMsg(MakeAuthMsg(old_key, auth_id, 1), auth_id, 1).ok());
  EXPECT_TRUE(server.ValidateAuthMsg(MakeAuthMsg(new_key, auth_id, 2), auth_id, 2).ok());
  EXPECT_FALSE(server.ChangePublicKey("nobody", new_key.public_key().Serialize()).ok());
}

TEST(AuthServerTest, ImportedPublicDatabase) {
  // The paper's arrangement: a central server exports its public database
  // to separately-administered servers "without trusting them".
  AuthServer central;
  auto key = MakeKey(10);
  ASSERT_TRUE(central.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  crypto::Prng prng(uint64_t{11});
  auth::PrivateUserRecord private_record;
  private_record.srp = crypto::MakeSrpVerifier(crypto::DefaultSrpParams(), "pw", 2, &prng);
  ASSERT_TRUE(central.UpdatePrivateRecord("alice", private_record).ok());

  AuthServer department;
  department.ImportPublicDatabase(&central);
  // Public info flows through the import...
  Bytes auth_id(20, 5);
  auto creds = department.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 1), auth_id, 1);
  ASSERT_TRUE(creds.ok());
  EXPECT_EQ(creds->uid, 1000u);
  EXPECT_TRUE(department.FindByName("alice").has_value());
  // ...but the private database (SRP data) never does.
  EXPECT_FALSE(department.SrpVerifierFor("alice").ok());
  // Local records shadow imports.
  ASSERT_TRUE(department.RegisterUser(MakeRecord("bob", MakeKey(12), 2000)).ok());
  EXPECT_EQ(department.PublicDatabase().size(), 1u);  // Only local records exported.
}

TEST(AuthServerTest, GroupsFoldIntoCredentials) {
  AuthServer server;
  auto key = MakeKey(40);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  ASSERT_TRUE(server.AddGroup("pdos", 4000, {"alice", "bob"}).ok());
  ASSERT_TRUE(server.AddGroup("faculty", 5000, {"frans"}).ok());
  Bytes auth_id(20, 6);
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 1), auth_id, 1);
  ASSERT_TRUE(creds.ok());
  EXPECT_EQ(creds->uid, 1000u);
  EXPECT_TRUE(creds->HasGid(1000));  // Primary group.
  EXPECT_TRUE(creds->HasGid(4000));  // pdos membership.
  EXPECT_FALSE(creds->HasGid(5000));

  // Late membership addition takes effect on the next validation.
  ASSERT_TRUE(server.AddGroupMember("faculty", "alice").ok());
  auto creds2 = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 2), auth_id, 2);
  ASSERT_TRUE(creds2.ok());
  EXPECT_TRUE(creds2->HasGid(5000));
  // Duplicate groups and bad adds are rejected.
  EXPECT_FALSE(server.AddGroup("pdos", 4001, {}).ok());
  EXPECT_FALSE(server.AddGroupMember("nonexistent", "alice").ok());
}

TEST(AuthServerTest, GroupCredentialsAuthorizeGroupFiles) {
  // End-to-end meaning of a group: group-readable files open for members.
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  nfs::MemFs fs(&clock, &disk, nfs::MemFs::Options{});
  nfs::Credentials owner = nfs::Credentials::User(1, {4000});
  nfs::FileHandle fh;
  nfs::Fattr attr;
  nfs::Sattr mode;
  mode.mode = 0640;
  ASSERT_EQ(fs.Create(fs.root_handle(), "shared", owner, mode, &fh, &attr), nfs::Stat::kOk);

  AuthServer server;
  auto key = MakeKey(41);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("member", key, 2000)).ok());
  ASSERT_TRUE(server.AddGroup("pdos", 4000, {"member"}).ok());
  Bytes auth_id(20, 7);
  auto creds = server.ValidateAuthMsg(MakeAuthMsg(key, auth_id, 1), auth_id, 1);
  ASSERT_TRUE(creds.ok());
  Bytes data;
  bool eof = false;
  EXPECT_EQ(fs.Read(fh, creds.value(), 0, 10, &data, &eof), nfs::Stat::kOk);
  // A non-member with the same uid pattern but no group is denied.
  EXPECT_EQ(fs.Read(fh, nfs::Credentials::User(2000, {2000}), 0, 10, &data, &eof),
            nfs::Stat::kAccess);
}

TEST(AuthServerTest, PublicDatabaseContainsNoSecrets) {
  AuthServer server;
  auto key = MakeKey(13);
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  crypto::Prng prng(uint64_t{14});
  ASSERT_TRUE(server
                  .UpdatePrivateRecord("alice", sfs::MakeSrpRecord("secret pw", 2,
                                                                   MakeKey(15), &prng))
                  .ok());
  // The exportable view is names, keys, and credentials only.
  auto db = server.PublicDatabase();
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].name, "alice");
  EXPECT_EQ(db[0].public_key, key.public_key().Serialize());
}

// --- Agent ----------------------------------------------------------------------

TEST(AgentTest, SigningProducesValidAuthMsg) {
  Agent agent("alice");
  auto key = MakeKey(16);
  agent.AddPrivateKey(key);
  AuthServer server;
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());

  Bytes auth_info = BytesOf("pretend-auth-info");
  auto msg = agent.SignAuthRequest(0, auth_info, 3);
  ASSERT_TRUE(msg.has_value());
  Bytes auth_id = sfs::MakeAuthId(auth_info);
  EXPECT_TRUE(server.ValidateAuthMsg(*msg, auth_id, 3).ok());
  ASSERT_EQ(agent.audit_log().size(), 1u);
  EXPECT_NE(agent.audit_log()[0].find("seqno=3"), std::string::npos);
}

TEST(AgentTest, NoKeyMeansDecline) {
  Agent agent("empty");
  EXPECT_FALSE(agent.SignAuthRequest(0, BytesOf("x"), 1).has_value());
  Agent one_key("alice");
  one_key.AddPrivateKey(MakeKey(17));
  EXPECT_TRUE(one_key.SignAuthRequest(0, BytesOf("x"), 1).has_value());
  EXPECT_FALSE(one_key.SignAuthRequest(1, BytesOf("x"), 2).has_value());
}

TEST(AgentTest, DynamicLinks) {
  Agent agent("alice");
  EXPECT_FALSE(agent.LookupLink("mit").has_value());
  agent.AddLink("mit", "/sfs/host:hostid");
  EXPECT_EQ(agent.LookupLink("mit").value(), "/sfs/host:hostid");
  agent.AddLink("mit", "/sfs/other:hostid");  // Replace.
  EXPECT_EQ(agent.LookupLink("mit").value(), "/sfs/other:hostid");
}

TEST(AgentTest, RevocationRequiresValidCertificate) {
  Agent agent("alice");
  auto key = MakeKey(18);
  sfs::PathRevokeCert cert = sfs::PathRevokeCert::MakeRevocation(key, "host.example.com");
  EXPECT_TRUE(agent.AddRevocation(cert).ok());
  sfs::SelfCertifyingPath path =
      sfs::SelfCertifyingPath::For("host.example.com", key.public_key());
  EXPECT_TRUE(agent.IsRevoked(path));
  EXPECT_NE(agent.RevocationFor(path.host_id), nullptr);

  // A forwarding pointer is not a revocation.
  auto target_key = MakeKey(19);
  sfs::PathRevokeCert forward = sfs::PathRevokeCert::MakeForwardingPointer(
      key, "host.example.com",
      sfs::SelfCertifyingPath::For("new.example.com", target_key.public_key()));
  EXPECT_FALSE(agent.AddRevocation(forward).ok());
}

TEST(AgentTest, BlockingIsIndependentOfRevocation) {
  Agent agent("alice");
  auto key = MakeKey(20);
  sfs::SelfCertifyingPath path =
      sfs::SelfCertifyingPath::For("host.example.com", key.public_key());
  EXPECT_FALSE(agent.IsBlocked(path));
  agent.BlockHostId(path.host_id);
  EXPECT_TRUE(agent.IsBlocked(path));
  EXPECT_FALSE(agent.IsRevoked(path));
}

TEST(AgentTest, ProxyAgentForwardsAndAudits) {
  Agent home_agent("alice");
  auto key = MakeKey(21);
  home_agent.AddPrivateKey(key);
  ProxyAgent proxy("gateway.lab.example.com", &home_agent);
  EXPECT_EQ(proxy.owner(), "alice@gateway.lab.example.com");
  EXPECT_EQ(proxy.key_count(), 1u);

  Bytes auth_info = BytesOf("session-info");
  auto msg = proxy.SignAuthRequest(0, auth_info, 9);
  ASSERT_TRUE(msg.has_value());
  // The signature is valid (made by the upstream key)...
  AuthServer server;
  ASSERT_TRUE(server.RegisterUser(MakeRecord("alice", key, 1000)).ok());
  EXPECT_TRUE(server.ValidateAuthMsg(*msg, sfs::MakeAuthId(auth_info), 9).ok());
  // ...and both audit trails record the hop.
  ASSERT_FALSE(proxy.audit_log().empty());
  EXPECT_NE(proxy.audit_log()[0].find("gateway.lab.example.com"), std::string::npos);
  ASSERT_FALSE(home_agent.audit_log().empty());
  EXPECT_NE(home_agent.audit_log()[0].find("seqno=9"), std::string::npos);
}

TEST(AgentTest, ProxyDeclinesWhenUpstreamHasNoKey) {
  Agent empty("bob");
  ProxyAgent proxy("gw", &empty);
  EXPECT_FALSE(proxy.SignAuthRequest(0, BytesOf("x"), 1).has_value());
  EXPECT_EQ(proxy.audit_log().size(), 2u);  // Forward + decline entries.
}

// --- sfskey ----------------------------------------------------------------------

TEST(SfsKeyTest, PrivateKeyEncryptionRoundTrip) {
  crypto::Prng prng(uint64_t{22});
  auto key = MakeKey(23);
  Bytes blob = sfs::EncryptPrivateKey(key, "open sesame", 3, &prng);
  auto restored = sfs::DecryptPrivateKey(blob, "open sesame");
  ASSERT_TRUE(restored.ok());
  Bytes msg = BytesOf("check");
  EXPECT_TRUE(key.public_key().Verify(msg, restored->Sign(msg)).ok());
}

TEST(SfsKeyTest, WrongPasswordFailsCleanly) {
  crypto::Prng prng(uint64_t{24});
  auto key = MakeKey(25);
  Bytes blob = sfs::EncryptPrivateKey(key, "right", 3, &prng);
  auto restored = sfs::DecryptPrivateKey(blob, "wrong");
  EXPECT_EQ(restored.status().code(), util::ErrorCode::kSecurityError);
}

TEST(SfsKeyTest, TamperedBlobDetected) {
  crypto::Prng prng(uint64_t{26});
  auto key = MakeKey(27);
  Bytes blob = sfs::EncryptPrivateKey(key, "pw", 3, &prng);
  for (size_t i : {size_t{21}, blob.size() / 2, blob.size() - 1}) {
    Bytes bad = blob;
    bad[i] ^= 1;
    EXPECT_FALSE(sfs::DecryptPrivateKey(bad, "pw").ok()) << "byte " << i;
  }
}

TEST(SfsKeyTest, SrpRecordHasVerifierAndCiphertext) {
  crypto::Prng prng(uint64_t{28});
  auto key = MakeKey(29);
  auto record = sfs::MakeSrpRecord("pw", 2, key, &prng);
  ASSERT_TRUE(record.srp.has_value());
  EXPECT_EQ(record.srp->cost, 2u);
  EXPECT_FALSE(record.encrypted_private_key.empty());
  auto restored = sfs::DecryptPrivateKey(record.encrypted_private_key, "pw");
  EXPECT_TRUE(restored.ok());
}

}  // namespace
