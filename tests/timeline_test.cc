// The telemetry timeline and the primitives beneath it.
//
// Layer one pins the new obs:: primitives: first-class gauges (rise and
// fall, snapshot inclusion) and histogram snapshot diffs (windowed
// deltas that sum back to the cumulative distribution).  Layer two pins
// the Timeline itself with hand-fed edges: contiguous windows, catch-up
// windows, utilization shares that sum exactly to each window's span,
// and the episode annotator's begin/end placement.  Layer three drives
// a real bounded-queue sim::Host through a shedding burst and checks
// the annotator finds exactly the overload it caused — and nothing in a
// clean run — plus the sampler properties the BENCH baselines rely on:
// edges never move real events, and the polled path closes the same
// windows the event-driven path would.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/event.h"
#include "src/sim/network.h"
#include "src/sim/sampler.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace {

using obs::TimeCategory;
using util::Bytes;

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

// A ledger stand-in for hand-fed edges: all time in one category, so
// util assertions are easy to state.
struct FakeLedger {
  uint64_t ns[obs::kTimeCategoryCount] = {};
  void ChargeCpuUpTo(uint64_t now_ns) {
    uint64_t total = 0;
    for (uint64_t v : ns) {
      total += v;
    }
    ns[static_cast<size_t>(TimeCategory::kCpu)] += now_ns - total;
  }
};

// --- Gauges -----------------------------------------------------------------

TEST(GaugeTest, SetAddAndRegistryLookup) {
  obs::Registry registry;
  obs::Gauge* gauge = registry.GetGauge("test.depth");
  EXPECT_EQ(gauge->value(), 0);
  gauge->Set(7);
  gauge->Add(3);
  gauge->Add(-10);
  EXPECT_EQ(gauge->value(), 0);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), -2);  // Gauges may go negative; counters cannot.
  EXPECT_EQ(registry.GetGauge("test.depth"), gauge);  // Same object on re-get.
  EXPECT_EQ(registry.GaugeValue("test.depth"), -2);
  EXPECT_EQ(registry.GaugeValue("test.absent"), 0);
}

TEST(GaugeTest, SnapshotsIncludeGauges) {
  obs::Registry registry;
  registry.GetGauge("queue.depth")->Set(42);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\": 42"), std::string::npos);
  const std::string text = registry.SnapshotText();
  EXPECT_NE(text.find("queue.depth"), std::string::npos);
  EXPECT_NE(text.find("(gauge)"), std::string::npos);
}

// --- Histogram snapshot diffs ----------------------------------------------

TEST(HistogramSnapshotTest, WindowDeltasSumToCumulative) {
  obs::Registry registry;
  obs::Histogram* hist = registry.GetHistogram("test.latency_ns");

  // Three "windows" of recordings; snapshot at each edge.
  const std::vector<std::vector<uint64_t>> windows = {
      {100, 200, 400}, {1'000'000, 2'000'000}, {50, 16'000'000, 300}};
  obs::HistogramSnapshot edges[4];
  edges[0] = hist->Snapshot();
  obs::HistogramSnapshot sum_of_deltas;  // Zero-initialized.
  for (size_t w = 0; w < windows.size(); ++w) {
    for (uint64_t v : windows[w]) {
      hist->Record(v);
    }
    edges[w + 1] = hist->Snapshot();
    const obs::HistogramSnapshot delta = edges[w + 1].Delta(edges[w]);
    EXPECT_EQ(delta.count, windows[w].size()) << "window " << w;
    for (size_t b = 0; b < obs::HistogramSnapshot::kNumBuckets; ++b) {
      sum_of_deltas.buckets[b] += delta.buckets[b];
    }
    sum_of_deltas.count += delta.count;
    sum_of_deltas.sum_ns += delta.sum_ns;
  }

  // The windows partition the run: their deltas reassemble the
  // cumulative distribution bucket by bucket.
  const obs::HistogramSnapshot final = hist->Snapshot();
  EXPECT_EQ(sum_of_deltas.count, final.count);
  EXPECT_EQ(sum_of_deltas.sum_ns, final.sum_ns);
  for (size_t b = 0; b < obs::HistogramSnapshot::kNumBuckets; ++b) {
    EXPECT_EQ(sum_of_deltas.buckets[b], final.buckets[b]) << "bucket " << b;
  }
}

TEST(HistogramSnapshotTest, WindowedPercentilesAreLocal) {
  obs::Registry registry;
  obs::Histogram* hist = registry.GetHistogram("test.latency_ns");
  for (int i = 0; i < 100; ++i) {
    hist->Record(1'000);  // 1 us era.
  }
  const obs::HistogramSnapshot edge = hist->Snapshot();
  for (int i = 0; i < 100; ++i) {
    hist->Record(8'000'000);  // 8 ms era.
  }
  // The cumulative distribution straddles both eras; the window sees
  // only the slow one, so even its median lands in the slow era's
  // bucket (the estimator interpolates inside the power-of-two bucket,
  // hence the lower bound is the bucket floor, not the exact value).
  const obs::HistogramSnapshot window = hist->Snapshot().Delta(edge);
  EXPECT_EQ(window.count, 100u);
  EXPECT_GE(window.ApproxPercentileNs(0.50), 4'000'000u);
  EXPECT_LT(edge.ApproxPercentileNs(0.99), 4'000'000u);
}

// --- Timeline with hand-fed edges ------------------------------------------

TEST(TimelineTest, WindowsAreContiguousAndRatesAreWindowed) {
  obs::Registry registry;
  obs::Counter* ops = registry.GetCounter("test.ops");
  obs::Timeline timeline(&registry);
  timeline.AddRateTrack("ops", "test.ops");

  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  ops->Increment(10);
  ledger.ChargeCpuUpTo(10'000'000);
  timeline.CloseWindow(10'000'000, ledger.ns);
  ops->Increment(30);
  ledger.ChargeCpuUpTo(20'000'000);
  timeline.CloseWindow(20'000'000, ledger.ns);
  ledger.ChargeCpuUpTo(23'000'000);
  timeline.Finalize(23'000'000, ledger.ns);  // Partial trailing window.

  ASSERT_EQ(timeline.windows().size(), 3u);
  const auto& w = timeline.windows();
  EXPECT_EQ(w[0].begin_ns, 0u);
  EXPECT_EQ(w[0].end_ns, 10'000'000u);
  EXPECT_EQ(w[1].begin_ns, 10'000'000u);  // Contiguous.
  EXPECT_EQ(w[2].end_ns, 23'000'000u);
  EXPECT_EQ(w[0].rates[0].delta, 10u);
  EXPECT_EQ(w[1].rates[0].delta, 30u);
  EXPECT_EQ(w[2].rates[0].delta, 0u);
  EXPECT_DOUBLE_EQ(w[0].rates[0].per_sec, 1000.0);  // 10 per 10 ms.
  EXPECT_DOUBLE_EQ(w[1].rates[0].per_sec, 3000.0);
  // Utilization: all charged as kCpu, so each window's CPU share is 1.
  for (const auto& window : w) {
    EXPECT_EQ(window.util_ns[static_cast<size_t>(TimeCategory::kCpu)],
              window.span_ns());
    uint64_t total = 0;
    for (uint64_t ns : window.util_ns) {
      total += ns;
    }
    EXPECT_EQ(total, window.span_ns());  // Shares sum exactly to the span.
    EXPECT_DOUBLE_EQ(window.UtilShare(static_cast<size_t>(TimeCategory::kCpu)),
                     1.0);
  }
}

TEST(TimelineTest, CatchUpWindowCoversTheWholeGap) {
  obs::Registry registry;
  obs::Timeline timeline(&registry);
  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  ledger.ChargeCpuUpTo(10'000'000);
  timeline.CloseWindow(10'000'000, ledger.ns);
  // The clock jumped 95 ms past the next nominal edge: one variable-
  // length window, still contiguous with its neighbours.
  ledger.ChargeCpuUpTo(105'000'000);
  timeline.CloseWindow(105'000'000, ledger.ns);
  timeline.Finalize(105'000'000, ledger.ns);  // No new partial window.

  ASSERT_EQ(timeline.windows().size(), 2u);
  EXPECT_EQ(timeline.windows()[1].begin_ns, 10'000'000u);
  EXPECT_EQ(timeline.windows()[1].end_ns, 105'000'000u);
  EXPECT_EQ(timeline.windows()[1].span_ns(), 95'000'000u);
}

TEST(TimelineTest, GaugeSampledAtWindowEndAndLatencyWindowed) {
  obs::Registry registry;
  obs::Gauge* depth = registry.GetGauge("test.depth");
  obs::Histogram* lat = registry.GetHistogram("test.lat_ns");
  obs::Timeline timeline(&registry);
  timeline.AddGaugeTrack("depth", "test.depth");
  timeline.AddLatencyTrack("lat", "test.lat_ns");

  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  depth->Set(5);
  lat->Record(1'000);
  lat->Record(1'000);
  ledger.ChargeCpuUpTo(10'000'000);
  timeline.CloseWindow(10'000'000, ledger.ns);
  depth->Set(2);
  lat->Record(4'000'000);
  ledger.ChargeCpuUpTo(20'000'000);
  timeline.Finalize(20'000'000, ledger.ns);

  ASSERT_EQ(timeline.windows().size(), 2u);
  EXPECT_EQ(timeline.windows()[0].gauges[0], 5);  // Value at the edge.
  EXPECT_EQ(timeline.windows()[1].gauges[0], 2);
  EXPECT_EQ(timeline.windows()[0].latency[0].count, 2u);
  EXPECT_EQ(timeline.windows()[1].latency[0].count, 1u);
  EXPECT_GE(timeline.windows()[1].latency[0].p50_ns, 4'000'000u);
  EXPECT_LT(timeline.windows()[0].latency[0].p99_ns, 4'000'000u);
}

// --- Episode annotator with hand-fed edges ---------------------------------

TEST(TimelineEpisodeTest, OverloadEpisodeSpansTheSheddingWindows) {
  obs::Registry registry;
  obs::Counter* shed = registry.GetCounter("server.shed");
  obs::Timeline timeline(&registry);  // Default rules: shed OR p90 >= 1 ms.

  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  auto close_at = [&](uint64_t now) {
    ledger.ChargeCpuUpTo(now);
    timeline.CloseWindow(now, ledger.ns);
  };
  close_at(10'000'000);            // Clean.
  close_at(20'000'000);            // Clean.
  shed->Increment(3);
  close_at(30'000'000);            // Shedding.
  shed->Increment(1);
  close_at(40'000'000);            // Shedding.
  close_at(50'000'000);            // Clean again.
  ledger.ChargeCpuUpTo(60'000'000);
  timeline.Finalize(60'000'000, ledger.ns);

  ASSERT_EQ(timeline.episodes().size(), 1u);
  const obs::Timeline::Episode& episode = timeline.episodes()[0];
  EXPECT_EQ(episode.kind, obs::Timeline::EpisodeKind::kOverload);
  EXPECT_EQ(episode.begin_ns, 20'000'000u);  // Begin of first shed window.
  EXPECT_EQ(episode.end_ns, 40'000'000u);    // End of last shed window.
  EXPECT_EQ(episode.window_count, 2u);
  EXPECT_NE(episode.cause.find("shed"), std::string::npos);
}

TEST(TimelineEpisodeTest, ShortBlipBelowMinWindowsIsNotAnEpisode) {
  obs::Registry registry;
  obs::Counter* shed = registry.GetCounter("server.shed");
  obs::Timeline timeline(&registry);  // overload_min_windows = 2.

  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  ledger.ChargeCpuUpTo(10'000'000);
  timeline.CloseWindow(10'000'000, ledger.ns);
  shed->Increment(1);  // One shedding window, then clean: below min_windows.
  ledger.ChargeCpuUpTo(20'000'000);
  timeline.CloseWindow(20'000'000, ledger.ns);
  ledger.ChargeCpuUpTo(30'000'000);
  timeline.Finalize(30'000'000, ledger.ns);
  EXPECT_TRUE(timeline.episodes().empty());
}

TEST(TimelineEpisodeTest, RetransmitStormAndStallRules) {
  obs::Registry registry;
  obs::Counter* retx = registry.GetCounter("link.retransmissions");
  obs::Gauge* dirty = registry.GetGauge("nfs.cache.dirty_bytes");
  obs::Timeline::Options options;
  options.storm_min_retransmits_per_sec = 100.0;
  options.storm_min_windows = 2;
  options.stall_dirty_bytes_limit = 1'000'000;
  options.stall_min_windows = 2;
  obs::Timeline timeline(&registry, options);

  FakeLedger ledger;
  timeline.Start(0, ledger.ns);
  auto close_at = [&](uint64_t now) {
    ledger.ChargeCpuUpTo(now);
    timeline.CloseWindow(now, ledger.ns);
  };
  close_at(10'000'000);
  // Two windows at 200/s retransmits (2 per 10 ms) with the dirty gauge
  // pinned at the limit: one storm episode and one stall episode.
  retx->Increment(2);
  dirty->Set(1'000'000);
  close_at(20'000'000);
  retx->Increment(2);
  close_at(30'000'000);
  dirty->Set(0);
  close_at(40'000'000);
  ledger.ChargeCpuUpTo(50'000'000);
  timeline.Finalize(50'000'000, ledger.ns);

  ASSERT_EQ(timeline.episodes().size(), 2u);
  bool saw_storm = false;
  bool saw_stall = false;
  for (const obs::Timeline::Episode& episode : timeline.episodes()) {
    if (episode.kind == obs::Timeline::EpisodeKind::kRetransmitStorm) {
      saw_storm = true;
      EXPECT_EQ(episode.begin_ns, 10'000'000u);
      EXPECT_EQ(episode.end_ns, 30'000'000u);
    }
    if (episode.kind == obs::Timeline::EpisodeKind::kStall) {
      saw_stall = true;
    }
  }
  EXPECT_TRUE(saw_storm);
  EXPECT_TRUE(saw_stall);
}

// --- Sampler over the discrete-event core ----------------------------------

TEST(SamplerTest, EdgesNeverMoveRealEvents) {
  sim::Clock clock;
  obs::Registry registry;
  obs::Timeline timeline(&registry);  // 10 ms windows.
  sim::TimelineSampler sampler(&clock, &timeline);
  sampler.Start();

  // Real events at times that do not land on window edges; each must
  // fire at exactly its scheduled instant even though sampler edges
  // interleave.
  std::vector<uint64_t> fired_at;
  for (uint64_t at : {3'000'000u, 17'500'000u, 44'999'999u}) {
    clock.events()->Schedule(at, TimeCategory::kCpu,
                             [&, at] { fired_at.push_back(clock.now_ns()); });
  }
  // Pump until only the sampler's recurring edge remains.
  while (clock.events()->size() > sampler.live_events()) {
    clock.events()->RunOne();
  }
  sampler.Finalize();

  EXPECT_EQ(fired_at,
            (std::vector<uint64_t>{3'000'000u, 17'500'000u, 44'999'999u}));
  // Four full windows elapsed before the last event.
  ASSERT_GE(timeline.windows().size(), 4u);
  EXPECT_EQ(timeline.windows()[0].end_ns, 10'000'000u);
  EXPECT_EQ(timeline.windows()[1].end_ns, 20'000'000u);
  // Every window's ledger diff sums exactly to its span.
  for (const auto& window : timeline.windows()) {
    uint64_t total = 0;
    for (uint64_t ns : window.util_ns) {
      total += ns;
    }
    EXPECT_EQ(total, window.span_ns());
  }
}

TEST(SamplerTest, PollClosesWindowsWithoutAnEventPump) {
  sim::Clock clock;
  obs::Registry registry;
  obs::Timeline timeline(&registry);  // 10 ms windows.
  sim::TimelineSampler sampler(&clock, &timeline);
  sampler.Start();

  // The stop-and-wait path advances the clock directly and never calls
  // RunOne; Poll() must deliver the pending edge by hand.
  clock.Advance(4'000'000, TimeCategory::kCpu);
  sampler.Poll();  // Before the edge: no window yet.
  EXPECT_TRUE(timeline.windows().empty());
  clock.Advance(8'000'000, TimeCategory::kCpu);
  sampler.Poll();  // Past the 10 ms edge: closes [0, 12 ms).
  ASSERT_EQ(timeline.windows().size(), 1u);
  EXPECT_EQ(timeline.windows()[0].end_ns, 12'000'000u);
  clock.Advance(35'000'000, TimeCategory::kDisk);
  sampler.Poll();  // One catch-up window for the whole jump.
  ASSERT_EQ(timeline.windows().size(), 2u);
  EXPECT_EQ(timeline.windows()[1].begin_ns, 12'000'000u);
  EXPECT_EQ(timeline.windows()[1].end_ns, 47'000'000u);
  sampler.Finalize();
  EXPECT_EQ(timeline.windows().size(), 2u);  // Nothing new to close.
}

// --- Episode detection against a real bounded-queue host -------------------

// Runs `calls` echo calls at the given pipeline window against a
// one-slot, one-queue-entry host, with a telemetry timeline attached.
// Returns the finalized timeline.
struct HostRunResult {
  std::vector<obs::Timeline::Episode> episodes;
  uint64_t burst_begin_ns = 0;
  uint64_t burst_end_ns = 0;
  uint64_t sheds = 0;
};

HostRunResult RunHostScenario(bool overload_burst) {
  sim::Clock clock;
  obs::Registry registry;
  rpc::Dispatcher dispatcher(&registry, &clock);
  dispatcher.RegisterProgram(9, [&](uint32_t, const Bytes& args) {
    clock.Advance(500'000, TimeCategory::kCpu);  // 500 us of service.
    return util::Result<Bytes>(args);
  });
  sim::Host::Options host_options;
  host_options.concurrency = 1;
  host_options.queue_depth = 1;
  sim::Host host(&clock, &dispatcher, &registry, host_options);
  sim::Link link(&clock, sim::LinkProfile::Udp(), &host, &registry);
  rpc::LinkTransport transport(&link);
  rpc::Client client(&transport, 9, &registry);

  // One whole phase per window keeps the qualifying windows of a burst
  // consecutive even across retransmission-timer lulls.
  obs::Timeline::Options timeline_options;
  timeline_options.window_ns = 1'000'000'000;
  timeline_options.overload_min_windows = 1;
  obs::Timeline timeline(&registry, timeline_options);
  sim::TimelineSampler sampler(&clock, &timeline);
  sampler.Start();

  auto run_calls = [&](uint64_t calls) {
    uint64_t completions = 0;
    for (uint64_t i = 0; i < calls; ++i) {
      client.CallAsync(1, BytesOf("op " + std::to_string(i)),
                       [&completions](util::Result<Bytes> reply) {
                         ASSERT_TRUE(reply.ok()) << reply.status().ToString();
                         ++completions;
                       });
    }
    client.Drain();
    EXPECT_EQ(completions, calls);
  };

  HostRunResult result;
  // Phase A: sequential, no contention, no sheds.
  client.set_window(1);
  run_calls(4);
  EXPECT_EQ(registry.CounterValue("server.shed"), 0u);
  sampler.Poll();  // Close out phase A's window before the burst.

  result.burst_begin_ns = clock.now_ns();
  if (overload_burst) {
    // Phase B: four nearly simultaneous arrivals against one service
    // slot plus one queue slot must shed; retransmission recovers.
    client.set_window(4);
    run_calls(16);
    EXPECT_GT(registry.CounterValue("server.shed"), 0u);
  }
  result.burst_end_ns = clock.now_ns();
  sampler.Poll();

  // Phase C: sequential again; clean.
  client.set_window(1);
  run_calls(4);
  sampler.Finalize();

  result.episodes = timeline.episodes();
  result.sheds = registry.CounterValue("server.shed");
  return result;
}

TEST(TimelineHostTest, SheddingBurstYieldsExactlyOneOverloadEpisode) {
  const HostRunResult result = RunHostScenario(/*overload_burst=*/true);
  ASSERT_GT(result.sheds, 0u);
  ASSERT_EQ(result.episodes.size(), 1u);
  const obs::Timeline::Episode& episode = result.episodes[0];
  EXPECT_EQ(episode.kind, obs::Timeline::EpisodeKind::kOverload);
  // The episode brackets the burst: it starts at or before the first
  // shed (its window's begin) and ends at or after the burst settled.
  EXPECT_LE(episode.begin_ns, result.burst_begin_ns);
  EXPECT_GE(episode.end_ns, result.burst_end_ns);
  EXPECT_NE(episode.cause.find("shed"), std::string::npos);
}

TEST(TimelineHostTest, CleanRunHasNoEpisodes) {
  const HostRunResult result = RunHostScenario(/*overload_burst=*/false);
  EXPECT_EQ(result.sheds, 0u);
  EXPECT_TRUE(result.episodes.empty());
}

}  // namespace
