// Tests for the NFS substrate: MemFs semantics, the wire program/client
// pair over the simulated network, and the caching layer.
#include <gtest/gtest.h>

#include <memory>

#include "src/nfs/cache.h"
#include "src/nfs/client.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"

namespace {

using nfs::CachingFs;
using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::FileType;
using nfs::MemFs;
using nfs::NfsClient;
using nfs::NfsProgram;
using nfs::Sattr;
using nfs::Stat;
using util::Bytes;
using util::BytesOf;

class MemFsTest : public ::testing::Test {
 protected:
  MemFsTest()
      : disk_(&clock_, sim::DiskProfile::Ibm18Es()), fs_(&clock_, &disk_, MemFs::Options{}) {}

  sim::Clock clock_;
  sim::Disk disk_;
  MemFs fs_;
  Credentials root_ = Credentials::User(0);
  Credentials alice_ = Credentials::User(1000, {1000});
  Credentials bob_ = Credentials::User(1001, {1001});
};

TEST_F(MemFsTest, RootExists) {
  Fattr attr;
  EXPECT_EQ(fs_.GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  EXPECT_EQ(attr.type, FileType::kDirectory);
  EXPECT_EQ(attr.mode, 0777u);
}

TEST_F(MemFsTest, CreateWriteReadRoundTrip) {
  FileHandle fh;
  Fattr attr;
  Sattr sattr;
  sattr.mode = 0644;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "hello.txt", alice_, sattr, &fh, &attr), Stat::kOk);
  EXPECT_EQ(attr.uid, alice_.uid);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("hello, sfs"), false, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 10u);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 0, 100, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "hello, sfs");
  EXPECT_TRUE(eof);
}

TEST_F(MemFsTest, PartialAndOffsetReads) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("0123456789"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = true;
  ASSERT_EQ(fs_.Read(fh, alice_, 2, 5, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "23456");
  EXPECT_FALSE(eof);
  ASSERT_EQ(fs_.Read(fh, alice_, 20, 5, &data, &eof), Stat::kOk);
  EXPECT_TRUE(data.empty());
  EXPECT_TRUE(eof);
}

TEST_F(MemFsTest, SparseFilesReadAsZeros) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "sparse", alice_, {}, &fh, &attr), Stat::kOk);
  Sattr grow;
  grow.size = 100ull << 20;  // 100 MB hole, no memory cost.
  ASSERT_EQ(fs_.SetAttr(fh, alice_, grow, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 100ull << 20);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 50 << 20, 8192, &data, &eof), Stat::kOk);
  ASSERT_EQ(data.size(), 8192u);
  for (uint8_t b : data) {
    ASSERT_EQ(b, 0);
  }
}

TEST_F(MemFsTest, WriteAcrossBlockBoundary) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  Bytes big(20000, 0xab);
  ASSERT_EQ(fs_.Write(fh, alice_, 5000, big, false, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 25000u);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 0, 25000, &data, &eof), Stat::kOk);
  ASSERT_EQ(data.size(), 25000u);
  for (size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(data[i], 0) << i;
  }
  for (size_t i = 5000; i < 25000; ++i) {
    ASSERT_EQ(data[i], 0xab) << i;
  }
}

TEST_F(MemFsTest, PermissionEnforcement) {
  FileHandle fh;
  Fattr attr;
  Sattr sattr;
  sattr.mode = 0600;  // Owner-only.
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "secret", alice_, sattr, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("top secret"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  EXPECT_EQ(fs_.Read(fh, bob_, 0, 10, &data, &eof), Stat::kAccess);
  EXPECT_EQ(fs_.Write(fh, bob_, 0, BytesOf("x"), false, &attr), Stat::kAccess);
  EXPECT_EQ(fs_.Read(fh, root_, 0, 10, &data, &eof), Stat::kOk);  // Root bypasses.
  EXPECT_EQ(fs_.Read(fh, alice_, 0, 10, &data, &eof), Stat::kOk);
}

TEST_F(MemFsTest, GroupPermissions) {
  FileHandle fh;
  Fattr attr;
  Sattr sattr;
  sattr.mode = 0640;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "shared", alice_, sattr, &fh, &attr), Stat::kOk);
  Credentials carol = Credentials::User(1002, {1000});  // In alice's group.
  Bytes data;
  bool eof = false;
  EXPECT_EQ(fs_.Read(fh, carol, 0, 10, &data, &eof), Stat::kOk);
  EXPECT_EQ(fs_.Write(fh, carol, 0, BytesOf("x"), false, &attr), Stat::kAccess);
}

TEST_F(MemFsTest, ChownRequiresRoot) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  Sattr chown;
  chown.uid = 1001;
  EXPECT_EQ(fs_.SetAttr(fh, alice_, chown, &attr), Stat::kPerm);
  EXPECT_EQ(fs_.SetAttr(fh, bob_, chown, &attr), Stat::kPerm);
  EXPECT_EQ(fs_.SetAttr(fh, root_, chown, &attr), Stat::kOk);
  EXPECT_EQ(attr.uid, 1001u);
}

TEST_F(MemFsTest, ChmodOwnerOnly) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  Sattr chmod;
  chmod.mode = 0600;
  EXPECT_EQ(fs_.SetAttr(fh, bob_, chmod, &attr), Stat::kPerm);
  EXPECT_EQ(fs_.SetAttr(fh, alice_, chmod, &attr), Stat::kOk);
  EXPECT_EQ(attr.mode, 0600u);
}

TEST_F(MemFsTest, DirectoryLifecycle) {
  FileHandle dir;
  Fattr attr;
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "sub", alice_, 0755, &dir, &attr), Stat::kOk);
  EXPECT_EQ(attr.type, FileType::kDirectory);
  FileHandle fh;
  ASSERT_EQ(fs_.Create(dir, "inner", alice_, {}, &fh, &attr), Stat::kOk);
  // Non-empty rmdir fails.
  EXPECT_EQ(fs_.Rmdir(fs_.root_handle(), "sub", alice_), Stat::kNotEmpty);
  ASSERT_EQ(fs_.Remove(dir, "inner", alice_), Stat::kOk);
  EXPECT_EQ(fs_.Rmdir(fs_.root_handle(), "sub", alice_), Stat::kOk);
  FileHandle out;
  EXPECT_EQ(fs_.Lookup(fs_.root_handle(), "sub", alice_, &out, &attr), Stat::kNoEnt);
}

TEST_F(MemFsTest, RemoveVsRmdirTypeChecks) {
  FileHandle dir;
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "d", alice_, 0755, &dir, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  EXPECT_EQ(fs_.Remove(fs_.root_handle(), "d", alice_), Stat::kIsDir);
  EXPECT_EQ(fs_.Rmdir(fs_.root_handle(), "f", alice_), Stat::kNotDir);
}

TEST_F(MemFsTest, SymlinkAndReadLink) {
  FileHandle link;
  Fattr attr;
  ASSERT_EQ(fs_.Symlink(fs_.root_handle(), "ln", "/sfs/host:abc/file", alice_, &link, &attr),
            Stat::kOk);
  EXPECT_EQ(attr.type, FileType::kSymlink);
  std::string target;
  ASSERT_EQ(fs_.ReadLink(link, alice_, &target), Stat::kOk);
  EXPECT_EQ(target, "/sfs/host:abc/file");
  FileHandle fh;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  EXPECT_EQ(fs_.ReadLink(fh, alice_, &target), Stat::kInval);
}

TEST_F(MemFsTest, RenameBasicAndOverwrite) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "a", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("A"), false, &attr), Stat::kOk);
  FileHandle fh2;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "b", alice_, {}, &fh2, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Rename(fs_.root_handle(), "a", fs_.root_handle(), "b", alice_), Stat::kOk);
  FileHandle out;
  EXPECT_EQ(fs_.Lookup(fs_.root_handle(), "a", alice_, &out, &attr), Stat::kNoEnt);
  ASSERT_EQ(fs_.Lookup(fs_.root_handle(), "b", alice_, &out, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(out, alice_, 0, 10, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "A");
}

TEST_F(MemFsTest, RenameAcrossDirectories) {
  FileHandle d1;
  FileHandle d2;
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "d1", alice_, 0755, &d1, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "d2", alice_, 0755, &d2, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Create(d1, "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Rename(d1, "f", d2, "g", alice_), Stat::kOk);
  FileHandle out;
  EXPECT_EQ(fs_.Lookup(d1, "f", alice_, &out, &attr), Stat::kNoEnt);
  EXPECT_EQ(fs_.Lookup(d2, "g", alice_, &out, &attr), Stat::kOk);
}

TEST_F(MemFsTest, ReadDirPagination) {
  for (int i = 0; i < 10; ++i) {
    FileHandle fh;
    Fattr attr;
    ASSERT_EQ(fs_.Create(fs_.root_handle(), "f" + std::to_string(i), alice_, {}, &fh, &attr),
              Stat::kOk);
  }
  std::vector<nfs::DirEntry> entries;
  bool eof = true;
  ASSERT_EQ(fs_.ReadDir(fs_.root_handle(), alice_, 0, 4, &entries, &eof), Stat::kOk);
  EXPECT_EQ(entries.size(), 4u);
  EXPECT_FALSE(eof);
  uint64_t cookie = entries.back().cookie;
  size_t total = entries.size();
  while (!eof) {
    ASSERT_EQ(fs_.ReadDir(fs_.root_handle(), alice_, cookie, 4, &entries, &eof), Stat::kOk);
    total += entries.size();
    if (!entries.empty()) {
      cookie = entries.back().cookie;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST_F(MemFsTest, DuplicateCreateFails) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  EXPECT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kExist);
  EXPECT_EQ(fs_.Mkdir(fs_.root_handle(), "f", alice_, 0755, &fh, &attr), Stat::kExist);
}

TEST_F(MemFsTest, BadNamesRejected) {
  FileHandle fh;
  Fattr attr;
  EXPECT_EQ(fs_.Create(fs_.root_handle(), "", alice_, {}, &fh, &attr), Stat::kInval);
  EXPECT_EQ(fs_.Create(fs_.root_handle(), ".", alice_, {}, &fh, &attr), Stat::kInval);
  EXPECT_EQ(fs_.Create(fs_.root_handle(), "..", alice_, {}, &fh, &attr), Stat::kInval);
  EXPECT_EQ(fs_.Create(fs_.root_handle(), "a/b", alice_, {}, &fh, &attr), Stat::kInval);
  EXPECT_EQ(fs_.Create(fs_.root_handle(), std::string(300, 'x'), alice_, {}, &fh, &attr),
            Stat::kNameTooLong);
}

TEST_F(MemFsTest, StaleHandleDetection) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  fs_.InvalidateHandles(fh);
  EXPECT_EQ(fs_.GetAttr(fh, &attr), Stat::kStale);
  // Forged handles (wrong secret) are also stale.
  FileHandle forged(nfs::kFileHandleSize, 0x00);
  EXPECT_EQ(fs_.GetAttr(forged, &attr), Stat::kStale);
}

TEST_F(MemFsTest, TruncateShrinksAndZeroes) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("0123456789"), false, &attr), Stat::kOk);
  Sattr trunc;
  trunc.size = 4;
  ASSERT_EQ(fs_.SetAttr(fh, alice_, trunc, &attr), Stat::kOk);
  EXPECT_EQ(attr.size, 4u);
  // Growing again exposes zeros, not the old data.
  Sattr grow;
  grow.size = 10;
  ASSERT_EQ(fs_.SetAttr(fh, alice_, grow, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 0, 10, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data).substr(0, 4), "0123");
  for (size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(data[i], 0) << i;
  }
}

TEST_F(MemFsTest, ColdFilesChargeDisk) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.AddColdFile(fs_.root_handle(), "cold", Bytes(16384, 0x5a)), Stat::kOk);
  ASSERT_EQ(fs_.Lookup(fs_.root_handle(), "cold", root_, &fh, &attr), Stat::kOk);
  uint64_t before = clock_.now_ns();
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, root_, 0, 16384, &data, &eof), Stat::kOk);
  uint64_t first_read = clock_.now_ns() - before;
  EXPECT_GT(first_read, 1'000'000u);  // Paid at least a seek.
  before = clock_.now_ns();
  ASSERT_EQ(fs_.Read(fh, root_, 0, 16384, &data, &eof), Stat::kOk);
  EXPECT_EQ(clock_.now_ns() - before, 0u);  // Buffer cache hit.
  EXPECT_EQ(data, Bytes(16384, 0x5a));
}

TEST_F(MemFsTest, StableWritesCostMoreThanUnstable) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  uint64_t t0 = clock_.now_ns();
  ASSERT_EQ(fs_.Write(fh, alice_, 0, Bytes(8192, 1), /*stable=*/false, &attr), Stat::kOk);
  uint64_t unstable_cost = clock_.now_ns() - t0;
  t0 = clock_.now_ns();
  ASSERT_EQ(fs_.Write(fh, alice_, 8192, Bytes(8192, 1), /*stable=*/true, &attr), Stat::kOk);
  uint64_t stable_cost = clock_.now_ns() - t0;
  EXPECT_GT(stable_cost, unstable_cost);
}

TEST_F(MemFsTest, HardLinkSharesInode) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "orig", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("shared bytes"), false, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Link(fh, fs_.root_handle(), "alias", alice_), Stat::kOk);

  FileHandle alias_fh;
  ASSERT_EQ(fs_.Lookup(fs_.root_handle(), "alias", alice_, &alias_fh, &attr), Stat::kOk);
  EXPECT_EQ(alias_fh, fh);  // Same inode, same handle.
  EXPECT_EQ(attr.nlink, 2u);

  // Writes through one name are visible through the other.
  ASSERT_EQ(fs_.Write(alias_fh, alice_, 0, BytesOf("SHARED"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 0, 6, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "SHARED");
}

TEST_F(MemFsTest, HardLinkUnlinkSemantics) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "orig", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Write(fh, alice_, 0, BytesOf("persistent"), false, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Link(fh, fs_.root_handle(), "alias", alice_), Stat::kOk);
  // Removing the original name leaves the file alive under the alias.
  ASSERT_EQ(fs_.Remove(fs_.root_handle(), "orig", alice_), Stat::kOk);
  ASSERT_EQ(fs_.GetAttr(fh, &attr), Stat::kOk);
  EXPECT_EQ(attr.nlink, 1u);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(fs_.Read(fh, alice_, 0, 100, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "persistent");
  // Removing the last name destroys the inode.
  ASSERT_EQ(fs_.Remove(fs_.root_handle(), "alias", alice_), Stat::kOk);
  EXPECT_EQ(fs_.GetAttr(fh, &attr), Stat::kStale);
}

TEST_F(MemFsTest, HardLinkRestrictions) {
  FileHandle dir;
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "d", alice_, 0755, &dir, &attr), Stat::kOk);
  ASSERT_EQ(fs_.Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  // No hard links to directories.
  EXPECT_EQ(fs_.Link(dir, fs_.root_handle(), "dirlink", alice_), Stat::kIsDir);
  // Existing names rejected.
  EXPECT_EQ(fs_.Link(fh, fs_.root_handle(), "f", alice_), Stat::kExist);
  // Write permission on the directory required.
  Sattr lockdown;
  lockdown.mode = 0555;
  FileHandle d2;
  ASSERT_EQ(fs_.Mkdir(fs_.root_handle(), "ro", alice_, 0555, &d2, &attr), Stat::kOk);
  EXPECT_EQ(fs_.Link(fh, d2, "nope", bob_), Stat::kAccess);
}

TEST_F(MemFsTest, ReadOnlyFsRejectsMutation) {
  MemFs::Options opts;
  opts.read_only = true;
  MemFs ro(&clock_, &disk_, opts);
  FileHandle fh;
  Fattr attr;
  EXPECT_EQ(ro.Create(ro.root_handle(), "f", root_, {}, &fh, &attr), Stat::kReadOnlyFs);
  EXPECT_EQ(ro.Mkdir(ro.root_handle(), "d", root_, 0755, &fh, &attr), Stat::kReadOnlyFs);
}

// ---------------------------------------------------------------------------
// Wire round-trip: NfsClient -> rpc -> NfsProgram -> MemFs over a
// simulated UDP link.

class NfsWireTest : public ::testing::Test {
 protected:
  NfsWireTest()
      : disk_(&clock_, sim::DiskProfile::Ibm18Es()),
        fs_(&clock_, &disk_, MemFs::Options{}),
        program_(&fs_, &clock_, &costs_) {
    dispatcher_.RegisterProgram(
        nfs::kNfsProgram,
        [this](uint32_t proc, const Bytes& args) { return program_.HandleWire(proc, args); },
        [](uint32_t proc) { return std::string(nfs::ProcName(proc)); });
    link_ = std::make_unique<sim::Link>(&clock_, sim::LinkProfile::Udp(), &dispatcher_);
    transport_ = std::make_unique<rpc::LinkTransport>(link_.get());
    rpc_client_ = std::make_unique<rpc::Client>(transport_.get(), nfs::kNfsProgram);
    client_ = std::make_unique<NfsClient>(
        [this](uint32_t proc, const Bytes& args) { return rpc_client_->Call(proc, args); },
        NfsClient::WireCredentialsEncoder());
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  sim::Disk disk_;
  MemFs fs_;
  NfsProgram program_;
  rpc::Dispatcher dispatcher_;
  std::unique_ptr<sim::Link> link_;
  std::unique_ptr<rpc::LinkTransport> transport_;
  std::unique_ptr<rpc::Client> rpc_client_;
  std::unique_ptr<NfsClient> client_;
  Credentials alice_ = Credentials::User(1000, {1000});
};

TEST_F(NfsWireTest, EndToEndFileOperations) {
  FileHandle root = fs_.root_handle();
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(client_->Create(root, "wire.txt", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(client_->Write(fh, alice_, 0, BytesOf("over the wire"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(client_->Read(fh, alice_, 0, 100, &data, &eof), Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "over the wire");
  EXPECT_TRUE(eof);
  EXPECT_EQ(client_->Remove(root, "wire.txt", alice_), Stat::kOk);
}

TEST_F(NfsWireTest, ErrorsPropagate) {
  FileHandle root = fs_.root_handle();
  FileHandle out;
  Fattr attr;
  EXPECT_EQ(client_->Lookup(root, "missing", alice_, &out, &attr), Stat::kNoEnt);
  FileHandle forged(nfs::kFileHandleSize, 0xff);
  EXPECT_EQ(client_->GetAttr(forged, &attr), Stat::kStale);
}

TEST_F(NfsWireTest, RpcChargesVirtualTime) {
  Fattr attr;
  uint64_t t0 = clock_.now_ns();
  ASSERT_EQ(client_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  uint64_t elapsed = clock_.now_ns() - t0;
  // Two one-way transits + server op: roughly 200us on the UDP profile.
  EXPECT_GT(elapsed, 150'000u);
  EXPECT_LT(elapsed, 300'000u);
}

TEST_F(NfsWireTest, WireCredentialsAreTrusted) {
  // The classic plain-NFS weakness: a client claiming uid 0 gets root.
  FileHandle root = fs_.root_handle();
  FileHandle fh;
  Fattr attr;
  Sattr sattr;
  sattr.mode = 0600;
  ASSERT_EQ(client_->Create(root, "victim", alice_, sattr, &fh, &attr), Stat::kOk);
  Credentials forged_root = Credentials::User(0);
  Bytes data;
  bool eof = false;
  EXPECT_EQ(client_->Read(fh, forged_root, 0, 10, &data, &eof), Stat::kOk);
}

TEST_F(NfsWireTest, ReadDirOverWire) {
  FileHandle root = fs_.root_handle();
  FileHandle fh;
  Fattr attr;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(client_->Create(root, "e" + std::to_string(i), alice_, {}, &fh, &attr), Stat::kOk);
  }
  std::vector<nfs::DirEntry> entries;
  bool eof = false;
  ASSERT_EQ(client_->ReadDir(root, alice_, 0, 100, &entries, &eof), Stat::kOk);
  EXPECT_EQ(entries.size(), 5u);
  EXPECT_TRUE(eof);
}

// ---------------------------------------------------------------------------
// Caching layer.

class CacheTest : public NfsWireTest {
 protected:
  CacheTest() {
    nfs::CacheOptions opts;
    opts.attr_timeout_ns = 5'000'000'000;
    cached_ = std::make_unique<CachingFs>(client_.get(), &clock_, opts);
  }
  std::unique_ptr<CachingFs> cached_;
};

TEST_F(CacheTest, AttrCacheSuppressesRpcs) {
  Fattr attr;
  ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  uint64_t calls = client_->calls_sent();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  }
  EXPECT_EQ(client_->calls_sent(), calls);  // All hits.
  EXPECT_GE(cached_->attr_hits(), 10u);
}

TEST_F(CacheTest, AttrCacheExpires) {
  Fattr attr;
  ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  clock_.Advance(6'000'000'000);  // Past the 5 s timeout.
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls + 1);
}

TEST_F(CacheTest, DataCacheServesRereads) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(cached_->Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(cached_->Write(fh, alice_, 0, BytesOf("cached content"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(cached_->Read(fh, alice_, 0, 100, &data, &eof), Stat::kOk);
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(cached_->Read(fh, alice_, 0, 100, &data, &eof), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls);
  EXPECT_EQ(util::StringOf(data), "cached content");
  EXPECT_GE(cached_->data_hits(), 1u);
}

TEST_F(CacheTest, InvalidationCallbackForcesRefetch) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(cached_->Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(cached_->GetAttr(fh, &attr), Stat::kOk);
  cached_->InvalidateHandle(fh);
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(cached_->GetAttr(fh, &attr), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls + 1);
}

TEST_F(CacheTest, WriteUpdatesCachedData) {
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(cached_->Create(fs_.root_handle(), "f", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(cached_->Write(fh, alice_, 0, BytesOf("AAAA"), false, &attr), Stat::kOk);
  ASSERT_EQ(cached_->Write(fh, alice_, 2, BytesOf("BB"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(cached_->Read(fh, alice_, 0, 4, &data, &eof), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls);  // Served from cache.
  EXPECT_EQ(util::StringOf(data), "AABB");
}

TEST_F(CacheTest, AccessCacheSuppressesRpcs) {
  uint32_t allowed = 0;
  ASSERT_EQ(cached_->Access(fs_.root_handle(), alice_, nfs::kAccessRead, &allowed), Stat::kOk);
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(cached_->Access(fs_.root_handle(), alice_, nfs::kAccessRead, &allowed), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls);
  // Different uid misses.
  Credentials bob = Credentials::User(7);
  ASSERT_EQ(cached_->Access(fs_.root_handle(), bob, nfs::kAccessRead, &allowed), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls + 1);
}

TEST_F(CacheTest, DataCacheRespectsModeBits) {
  // A cached 0600 file must not be served to another user from the data
  // cache: the miss path reaches the server, which denies.
  FileHandle fh;
  Fattr attr;
  nfs::Sattr mode;
  mode.mode = 0600;
  ASSERT_EQ(cached_->Create(fs_.root_handle(), "private", alice_, mode, &fh, &attr),
            Stat::kOk);
  ASSERT_EQ(cached_->Write(fh, alice_, 0, BytesOf("secret"), false, &attr), Stat::kOk);
  Bytes data;
  bool eof = false;
  // Alice hits the cache.
  ASSERT_EQ(cached_->Read(fh, alice_, 0, 10, &data, &eof), Stat::kOk);
  // Bob (uid 1001) is pushed through to the server and denied.
  Credentials bob = Credentials::User(1001, {1001});
  EXPECT_EQ(cached_->Read(fh, bob, 0, 10, &data, &eof), Stat::kAccess);
  // Group member with 0640 reads fine from cache after a mode change.
  nfs::Sattr open_up;
  open_up.mode = 0640;
  ASSERT_EQ(cached_->SetAttr(fh, alice_, open_up, &attr), Stat::kOk);
  Credentials carol = Credentials::User(1002, {1000});
  EXPECT_EQ(cached_->Read(fh, carol, 0, 10, &data, &eof), Stat::kOk);
}

TEST_F(CacheTest, LeaseModeRetainsOwnParentDirAttrs) {
  nfs::CacheOptions opts;
  opts.use_leases = true;
  CachingFs leased(client_.get(), &clock_, opts);
  Fattr attr;
  // Prime the parent's attributes (plain NFS program grants no lease, so
  // the fallback timeout applies — still cached).
  ASSERT_EQ(leased.GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  uint64_t calls = client_->calls_sent();
  FileHandle fh;
  ASSERT_EQ(leased.Create(fs_.root_handle(), "kid", alice_, {}, &fh, &attr), Stat::kOk);
  // In lease mode our own create did not evict the parent attrs...
  ASSERT_EQ(leased.GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls + 1);  // Only the CREATE went out.
  // ...whereas the plain-timeout cache refetches after its own mutation.
  ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  uint64_t calls2 = client_->calls_sent();
  ASSERT_EQ(cached_->Create(fs_.root_handle(), "kid2", alice_, {}, &fh, &attr), Stat::kOk);
  ASSERT_EQ(cached_->GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls2 + 2);  // CREATE + parent GETATTR.
}

TEST_F(CacheTest, LeaseModeHonorsServerLease) {
  nfs::CacheOptions opts;
  opts.use_leases = true;
  CachingFs leased(client_.get(), &clock_, opts);
  Fattr attr;
  ASSERT_EQ(leased.GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  // Server granted no lease here (plain NFS program), so the fallback
  // timeout applies; past it we refetch.
  clock_.Advance(6'000'000'000);
  uint64_t calls = client_->calls_sent();
  ASSERT_EQ(leased.GetAttr(fs_.root_handle(), &attr), Stat::kOk);
  EXPECT_EQ(client_->calls_sent(), calls + 1);
}

}  // namespace
