// Fault injection: the transport must mask loss, duplication, and
// reordering below the application.  A full SFS mount plus a small-file
// workload runs through a seeded LossyInterposer at 1-10% fault rates
// with zero application-visible errors, and non-idempotent operations
// (CREATE, REMOVE) execute exactly once — retransmitted copies are
// answered from the server's duplicate-request cache, never re-executed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/nfs/cache.h"
#include "src/obs/metrics.h"
#include "src/rpc/rpc.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/xdr/xdr.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() {
    SfsServer::Options server_options;
    server_options.location = "faulty.example.org";
    server_options.key_bits = kKeyBits;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, server_options, &authserver_);

    // Anonymous users may mutate the exported tree: the workload then
    // needs no login, keeping the op counts easy to reason about.
    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    EXPECT_EQ(server_->fs()->SetAttr(server_->fs()->root_handle(), Credentials::User(0),
                                     chmod, &attr),
              Stat::kOk);

    SfsClient::Options client_options;
    client_options.ephemeral_key_bits = kKeyBits;
    client_ = std::make_unique<SfsClient>(
        &clock_, &costs_,
        [this](const std::string&) { return server_.get(); }, client_options);
  }

  // Small-file workload (fig5 flavor): create, write, read back, verify,
  // remove half.  Every operation must succeed; returns the mount so
  // callers can inspect counters.
  SfsClient::MountPoint* RunWorkload(int files) {
    auto mount = client_->Mount(server_->Path());
    EXPECT_TRUE(mount.ok()) << mount.status().ToString();
    if (!mount.ok()) {
      return nullptr;
    }
    nfs::FileSystemApi* fs = (*mount)->fs();
    const Credentials cred = Credentials::User(0);
    Fattr attr;
    std::vector<FileHandle> handles;
    for (int i = 0; i < files; ++i) {
      FileHandle fh;
      std::string name = "file-" + std::to_string(i);
      EXPECT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr), Stat::kOk)
          << name;
      Bytes content = BytesOf("contents of " + name);
      EXPECT_EQ(fs->Write(fh, cred, 0, content, /*stable=*/true, &attr), Stat::kOk) << name;
      handles.push_back(fh);
    }
    for (int i = 0; i < files; ++i) {
      Bytes data;
      bool eof = false;
      EXPECT_EQ(fs->Read(handles[static_cast<size_t>(i)], cred, 0, 4096, &data, &eof), Stat::kOk);
      EXPECT_EQ(data, BytesOf("contents of file-" + std::to_string(i)));
    }
    for (int i = 0; i < files; i += 2) {
      EXPECT_EQ(fs->Remove((*mount)->root_fh(), "file-" + std::to_string(i), cred), Stat::kOk);
    }
    return *mount;
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
  std::unique_ptr<SfsClient> client_;
};

TEST_F(FaultTest, CleanRunHasZeroRetransmissions) {
  // No interposer: the retry machinery must be invisible on the clean
  // path — no retransmissions, no duplicate-cache hits, no stale retries.
  SfsClient::MountPoint* mount = RunWorkload(8);
  ASSERT_NE(mount, nullptr);
  EXPECT_EQ(mount->link()->retransmissions(), 0u);
  EXPECT_EQ(mount->stale_retries(), 0u);
  EXPECT_EQ(server_->drc_hits(), 0u);
  EXPECT_EQ(server_->fs()->creates_applied(), 8u);
  EXPECT_EQ(server_->fs()->removes_applied(), 4u);
}

TEST_F(FaultTest, AcceptanceProfileDropAndDuplicate) {
  // The ISSUE acceptance configuration: seeded 5% drop + 2% duplicate.
  sim::LossyInterposer lossy(/*seed=*/42, {.drop = 0.05, .duplicate = 0.02});
  client_->set_interposer(&lossy);
  SfsClient::MountPoint* mount = RunWorkload(16);
  ASSERT_NE(mount, nullptr);
  // The seed is fixed, so the run deterministically saw faults...
  EXPECT_GT(lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates(), 0u);
  EXPECT_GT(mount->link()->retransmissions(), 0u);
  EXPECT_GT(server_->drc_hits(), 0u);
  // ...yet every non-idempotent op executed exactly once (a re-executed
  // CREATE would also have surfaced as kExist above).
  EXPECT_EQ(server_->fs()->creates_applied(), 16u);
  EXPECT_EQ(server_->fs()->removes_applied(), 8u);
}

TEST_F(FaultTest, SweepOfLossRatesCompletesWithoutErrors) {
  // 1%..10% drop with duplication and reordering mixed in; each rate gets
  // a fresh client+server pair so the counters are per-configuration.
  for (int percent = 1; percent <= 10; percent += 3) {
    SfsServer::Options so;
    so.location = "sweep.example.org";
    so.key_bits = kKeyBits;
    SfsServer server(&clock_, &costs_, so, &authserver_);
    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    ASSERT_EQ(server.fs()->SetAttr(server.fs()->root_handle(), Credentials::User(0), chmod,
                                   &attr),
              Stat::kOk);
    SfsClient::Options co;
    co.ephemeral_key_bits = kKeyBits;
    SfsClient client(&clock_, &costs_, [&](const std::string&) { return &server; }, co);
    sim::LossyInterposer lossy(/*seed=*/1000 + static_cast<uint64_t>(percent),
                               {.drop = percent / 100.0,
                                .duplicate = percent / 200.0,
                                .reorder = percent / 400.0});
    client.set_interposer(&lossy);

    auto mount = client.Mount(server.Path());
    ASSERT_TRUE(mount.ok()) << "rate " << percent << "%: " << mount.status().ToString();
    nfs::FileSystemApi* fs = (*mount)->fs();
    const Credentials cred = Credentials::User(0);
    for (int i = 0; i < 10; ++i) {
      FileHandle fh;
      std::string name = "f" + std::to_string(i);
      ASSERT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr),
                Stat::kOk)
          << "rate " << percent << "%, " << name;
      ASSERT_EQ(fs->Write(fh, cred, 0, BytesOf(name), /*stable=*/true, &attr), Stat::kOk);
      ASSERT_EQ(fs->Remove((*mount)->root_fh(), name, cred), Stat::kOk);
    }
    EXPECT_EQ(server.fs()->creates_applied(), 10u) << "rate " << percent << "%";
    EXPECT_EQ(server.fs()->removes_applied(), 10u) << "rate " << percent << "%";
  }
}

// Duplicates every single request: the strongest exactly-once stress —
// the server sees each message twice and must deduplicate all of them.
TEST_F(FaultTest, EveryRequestDuplicatedExecutesExactlyOnce) {
  sim::LossyInterposer lossy(/*seed=*/7, {.duplicate = 1.0});
  client_->set_interposer(&lossy);
  SfsClient::MountPoint* mount = RunWorkload(6);
  ASSERT_NE(mount, nullptr);
  EXPECT_GT(lossy.duplicates(), 0u);
  EXPECT_EQ(server_->drc_hits(), lossy.duplicates());
  EXPECT_EQ(server_->fs()->creates_applied(), 6u);
  EXPECT_EQ(server_->fs()->removes_applied(), 3u);
}

// --- Write-behind commit pipeline under faults -----------------------------

// Drops the next N server->client responses when armed; used to lose
// COMMIT replies specifically (armed while nothing else is in flight).
class DropNextResponsesInterposer : public sim::Interposer {
 public:
  util::Result<Bytes> OnResponse(Bytes response) override {
    if (drop_remaining_ > 0) {
      --drop_remaining_;
      ++dropped_;
      return util::Unavailable("interposer: response dropped");
    }
    return response;
  }
  void Arm(int n) { drop_remaining_ = n; }
  uint64_t dropped() const { return dropped_; }

 private:
  int drop_remaining_ = 0;
  uint64_t dropped_ = 0;
};

TEST_F(FaultTest, ServerRestartMidStreamForcesVerifierReplay) {
  obs::Registry registry;
  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.write_behind = true;
  co.registry = &registry;
  SfsClient client(&clock_, &costs_, [this](const std::string&) { return server_.get(); },
                   co);
  auto mount = client.Mount(server_->Path());
  ASSERT_TRUE(mount.ok()) << mount.status().ToString();
  nfs::FileSystemApi* fs = (*mount)->fs();
  const Credentials cred = Credentials::User(0);
  Fattr attr;
  FileHandle fh;
  ASSERT_EQ(fs->Create((*mount)->root_fh(), "wb", cred, nfs::Sattr{}, &fh, &attr), Stat::kOk);

  const Bytes first(8192, 0xa1);
  const Bytes second(8192, 0xb2);
  uint64_t writes_before = server_->fs()->writes_applied();

  // Buffer the first extent, then force a read-barrier flush (attribute
  // miss after an invalidation): the extent reaches the server as
  // WRITE(UNSTABLE) with no COMMIT behind it — mid-stream.
  ASSERT_EQ(fs->Write(fh, cred, 0, first, /*stable=*/false, &attr), Stat::kOk);
  (*mount)->cache()->InvalidateAll();
  ASSERT_EQ(fs->GetAttr(fh, &attr), Stat::kOk);
  EXPECT_EQ(server_->fs()->unstable_bytes(), first.size());
  // The extent is on the wire but not yet durable: the not-yet-committed
  // gauge still covers it until COMMIT succeeds.
  EXPECT_EQ((*mount)->cache()->dirty_bytes(), first.size());

  // The server reboots: unstable data is gone (zeroed) and the write
  // verifier changes.
  server_->fs()->SimulateRestart();
  EXPECT_EQ(server_->fs()->restarts(), 1u);
  EXPECT_EQ(server_->fs()->unstable_bytes(), 0u);

  // Buffer a second extent and commit.  The COMMIT returns the new
  // boot's verifier, which does not match the first extent's WRITE-time
  // verifier — the client must replay it and commit again.
  ASSERT_EQ(fs->Write(fh, cred, 8192, second, /*stable=*/false, &attr), Stat::kOk);
  ASSERT_EQ(fs->Commit(fh), Stat::kOk);
  EXPECT_GE((*mount)->cache()->commit_replays(), 1u);

  // No data loss: both extents are committed server-side, and the writes
  // were first + (second, first-replayed) = 3 total — no spurious replay.
  EXPECT_EQ(server_->fs()->unstable_bytes(), 0u);
  EXPECT_EQ((*mount)->cache()->dirty_bytes(), 0u);
  EXPECT_EQ(server_->fs()->writes_applied() - writes_before, 3u);
  (*mount)->cache()->InvalidateAll();
  Bytes out;
  bool eof = false;
  ASSERT_EQ(fs->Read(fh, cred, 0, 8192, &out, &eof), Stat::kOk);
  EXPECT_EQ(out, first);
  ASSERT_EQ(fs->Read(fh, cred, 8192, 8192, &out, &eof), Stat::kOk);
  EXPECT_EQ(out, second);
}

TEST_F(FaultTest, DroppedCommitRepliesRetransmitExactlyOnce) {
  obs::Registry registry;
  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.write_behind = true;
  co.registry = &registry;
  DropNextResponsesInterposer dropper;
  SfsClient client(&clock_, &costs_, [this](const std::string&) { return server_.get(); },
                   co);
  client.set_interposer(&dropper);
  auto mount = client.Mount(server_->Path());
  ASSERT_TRUE(mount.ok()) << mount.status().ToString();
  nfs::FileSystemApi* fs = (*mount)->fs();
  const Credentials cred = Credentials::User(0);
  Fattr attr;
  FileHandle fh;
  ASSERT_EQ(fs->Create((*mount)->root_fh(), "cd", cred, nfs::Sattr{}, &fh, &attr), Stat::kOk);

  const Bytes data(8192, 0xc3);
  ASSERT_EQ(fs->Write(fh, cred, 0, data, /*stable=*/false, &attr), Stat::kOk);
  // Flush the extent first (read-barrier), so the Commit below sends a
  // lone COMMIT RPC and the armed drops hit exactly its replies.
  (*mount)->cache()->InvalidateAll();
  ASSERT_EQ(fs->GetAttr(fh, &attr), Stat::kOk);
  EXPECT_EQ(server_->fs()->unstable_bytes(), data.size());

  uint64_t commits_before = server_->fs()->commits_applied();
  uint64_t retrans_before = (*mount)->link()->retransmissions();
  dropper.Arm(2);  // Lose the next two COMMIT replies.
  ASSERT_EQ(fs->Commit(fh), Stat::kOk);

  // Both drops happened; the retransmission timer masked them; the
  // retransmitted copies were answered from the server's reply cache —
  // the COMMIT executed exactly once, not three times.
  EXPECT_EQ(dropper.dropped(), 2u);
  EXPECT_GE((*mount)->link()->retransmissions() - retrans_before, 2u);
  EXPECT_GT(server_->drc_hits(), 0u);
  EXPECT_EQ(server_->fs()->commits_applied() - commits_before, 1u);
  EXPECT_EQ(server_->fs()->unstable_bytes(), 0u);
  EXPECT_EQ((*mount)->cache()->commit_replays(), 0u);

  Bytes out;
  bool eof = false;
  (*mount)->cache()->InvalidateAll();
  ASSERT_EQ(fs->Read(fh, cred, 0, 8192, &out, &eof), Stat::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(FaultTest, WriteBehindWorkloadSurvivesSeededLoss) {
  // A lossy run of buffered writes + commits: every extent the pipeline
  // sent must execute exactly once at the server (DRC dedupes the
  // retransmitted copies), and nothing is left unstable.
  obs::Registry registry;
  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.write_behind = true;
  co.registry = &registry;
  sim::LossyInterposer lossy(/*seed=*/2026, {.drop = 0.10, .duplicate = 0.05});
  SfsClient client(&clock_, &costs_, [this](const std::string&) { return server_.get(); },
                   co);
  client.set_interposer(&lossy);
  auto mount = client.Mount(server_->Path());
  ASSERT_TRUE(mount.ok()) << mount.status().ToString();
  nfs::FileSystemApi* fs = (*mount)->fs();
  const Credentials cred = Credentials::User(0);
  Fattr attr;
  uint64_t writes_before = server_->fs()->writes_applied();

  std::vector<FileHandle> handles;
  for (int i = 0; i < 24; ++i) {
    FileHandle fh;
    std::string name = "wbl-" + std::to_string(i);
    ASSERT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr), Stat::kOk);
    ASSERT_EQ(fs->Write(fh, cred, 0, BytesOf("payload " + name), /*stable=*/false, &attr),
              Stat::kOk);
    ASSERT_EQ(fs->Commit(fh), Stat::kOk);
    handles.push_back(fh);
  }

  // The seed deterministically injected faults and the stack masked them.
  EXPECT_GT(lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates(), 0u);
  EXPECT_GT((*mount)->link()->retransmissions() + server_->drc_hits(), 0u);
  // Exactly-once: server-side WRITE executions match the extents the
  // pipeline sent (a re-executed retransmit would double-count).
  EXPECT_EQ(server_->fs()->writes_applied() - writes_before,
            registry.CounterValue("commit.batched_writes"));
  EXPECT_EQ(server_->fs()->unstable_bytes(), 0u);
  for (int i = 0; i < 24; ++i) {
    Bytes out;
    bool eof = false;
    ASSERT_EQ(fs->Read(handles[static_cast<size_t>(i)], cred, 0, 4096, &out, &eof), Stat::kOk);
    EXPECT_EQ(out, BytesOf("payload wbl-" + std::to_string(i)));
  }
}

// --- Plain RPC layer (no cipher): Dispatcher DRC + Client retransmit -------

TEST(RpcFaultTest, LossyLinkMasksFaultsWithExactlyOnceDispatch) {
  sim::Clock clock;
  rpc::Dispatcher dispatcher;
  uint64_t executions = 0;
  dispatcher.RegisterProgram(9, [&executions](uint32_t, const Bytes& args) {
    ++executions;
    return util::Result<Bytes>(args);
  });
  sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher);
  sim::LossyInterposer lossy(/*seed=*/99, {.drop = 0.05, .duplicate = 0.05});
  link.set_interposer(&lossy);
  rpc::LinkTransport transport(&link);
  rpc::Client client(&transport, 9);

  constexpr uint64_t kCalls = 200;
  for (uint64_t i = 0; i < kCalls; ++i) {
    auto reply = client.Call(1, BytesOf("payload " + std::to_string(i)));
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status().ToString();
    EXPECT_EQ(reply.value(), BytesOf("payload " + std::to_string(i)));
  }
  // Faults occurred, retransmission masked them, and the handler still
  // ran exactly once per call.
  EXPECT_GT(link.retransmissions(), 0u);
  EXPECT_GT(dispatcher.drc_hits(), 0u);
  EXPECT_EQ(executions, kCalls);
}

// Sliding-window client under loss and duplication: every outstanding
// xid completes exactly once, in whatever order replies arrive, and the
// handler still executes exactly once per distinct payload.
TEST(RpcFaultTest, PipelinedWindowSweepMasksFaultsExactlyOnce) {
  for (uint32_t window : {2u, 4u, 8u}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    sim::Clock clock;
    rpc::Dispatcher dispatcher;
    std::map<std::string, uint64_t> executions;
    dispatcher.RegisterProgram(9, [&executions](uint32_t, const Bytes& args) {
      ++executions[util::StringOf(args)];
      return util::Result<Bytes>(args);
    });
    sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher);
    sim::LossyInterposer lossy(/*seed=*/500 + window, {.drop = 0.05, .duplicate = 0.05});
    link.set_interposer(&lossy);
    rpc::LinkTransport transport(&link);
    rpc::Client client(&transport, 9);
    client.set_window(window);
    ASSERT_EQ(client.window(), window);

    constexpr uint64_t kCalls = 200;
    std::map<std::string, uint64_t> completions;
    for (uint64_t i = 0; i < kCalls; ++i) {
      std::string payload = "payload " + std::to_string(i);
      client.CallAsync(1, BytesOf(payload),
                       [payload, &completions](util::Result<Bytes> reply) {
                         EXPECT_TRUE(reply.ok())
                             << payload << ": " << reply.status().ToString();
                         if (reply.ok()) {
                           EXPECT_EQ(reply.value(), BytesOf(payload)) << payload;
                         }
                         ++completions[payload];
                       });
      EXPECT_LE(client.in_flight(), window);
    }
    client.Drain();
    EXPECT_EQ(client.in_flight(), 0u);

    // Exactly one completion per call and one execution per payload —
    // duplicates were answered from the DRC, not re-executed.
    EXPECT_EQ(completions.size(), kCalls);
    for (const auto& [payload, n] : completions) {
      EXPECT_EQ(n, 1u) << payload;
    }
    EXPECT_EQ(executions.size(), kCalls);
    for (const auto& [payload, n] : executions) {
      EXPECT_EQ(n, 1u) << payload;
    }
    // The seed deterministically injected faults and the window machinery
    // masked them.
    EXPECT_GT(lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates(), 0u);
    EXPECT_GT(link.retransmissions() + dispatcher.drc_hits(), 0u);
  }
}

TEST(RpcFaultTest, CleanLinkNeverRetransmits) {
  sim::Clock clock;
  rpc::Dispatcher dispatcher;
  dispatcher.RegisterProgram(9, [](uint32_t, const Bytes& args) {
    return util::Result<Bytes>(args);
  });
  sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher);
  rpc::LinkTransport transport(&link);
  rpc::Client client(&transport, 9);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Call(1, BytesOf("x")).ok());
  }
  EXPECT_EQ(link.retransmissions(), 0u);
  EXPECT_EQ(client.retransmissions(), 0u);
  EXPECT_EQ(dispatcher.drc_hits(), 0u);
}

}  // namespace
