// The discrete-event core and the timing bugs it was built to kill.
//
// Layer one pins the EventQueue itself: deterministic FIFO among equal
// timestamps and cancellation that neither runs nor charges.  Layer two
// pins the Host admission pipeline (bounded queue, shedding, retransmit
// recovery) and the sim::Link regressions fixed alongside it: error
// verdicts that used to skip the downlink leg, duplicate deliveries that
// used to ride the server for free, transit_info entries that used to be
// size-pruned while their tokens were still in flight, and reorder-held
// responses that used to vanish from the accounting at end of run.  A
// differential test checks the event core against the inline watermark
// model (Roundtrip) at window=1 — same timeline, same ledger, to the
// nanosecond — and every scenario re-checks the ledger invariant: the
// per-category totals sum exactly to now_ns().
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/event.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace {

using obs::TimeCategory;
using util::Bytes;

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

// The ledger invariant under test everywhere: every charged nanosecond
// lands in exactly one category, so the totals reconstruct the clock.
void ExpectLedgerBalanced(const sim::Clock& clock) {
  const sim::Clock::CategorySnapshot snapshot = clock.categories();
  uint64_t total = 0;
  for (uint64_t ns : snapshot.ns) {
    total += ns;
  }
  EXPECT_EQ(total, clock.now_ns()) << "ledger does not sum to now_ns";
}

// --- EventQueue ------------------------------------------------------------

TEST(EventQueueTest, EqualTimestampsDispatchInScheduleOrder) {
  sim::Clock clock;
  sim::EventQueue* events = clock.events();
  std::vector<int> order;
  // Three events at the same instant, plus one earlier and one later,
  // scheduled in shuffled order: dispatch must be (time, schedule order).
  events->Schedule(100, TimeCategory::kWait, [&] { order.push_back(2); });
  events->Schedule(50, TimeCategory::kWait, [&] { order.push_back(1); });
  events->Schedule(100, TimeCategory::kWait, [&] { order.push_back(3); });
  events->Schedule(200, TimeCategory::kWait, [&] { order.push_back(5); });
  events->Schedule(100, TimeCategory::kWait, [&] { order.push_back(4); });
  while (events->RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(clock.now_ns(), 200u);
  EXPECT_EQ(events->dispatched(), 5u);
  ExpectLedgerBalanced(clock);
}

TEST(EventQueueTest, CancelledEventNeitherRunsNorCharges) {
  sim::Clock clock;
  sim::EventQueue* events = clock.events();
  bool cancelled_ran = false;
  bool live_ran = false;
  // The cancelled timer is the *earlier* one: popping it must not drag
  // the clock to t=50 or charge its kWait gap — the next live event's
  // attribution covers the whole bridge to t=100.
  const sim::EventQueue::EventId timer =
      events->Schedule(50, TimeCategory::kWait, [&] { cancelled_ran = true; });
  events->Schedule(100, TimeCategory::kCpu, [&] { live_ran = true; });
  EXPECT_TRUE(events->Cancel(timer));
  EXPECT_FALSE(events->Cancel(timer)) << "double-cancel must report dead";
  while (events->RunOne()) {
  }
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(live_ran);
  EXPECT_EQ(events->cancelled(), 1u);
  EXPECT_EQ(events->dispatched(), 1u);
  EXPECT_EQ(clock.now_ns(), 100u);
  EXPECT_EQ(clock.charged_ns(TimeCategory::kWait), 0u);
  EXPECT_EQ(clock.charged_ns(TimeCategory::kCpu), 100u);
  ExpectLedgerBalanced(clock);
}

// --- Host admission queue --------------------------------------------------

TEST(HostTest, BoundedQueueShedsAndRetransmissionRecovers) {
  sim::Clock clock;
  obs::Registry registry;
  rpc::Dispatcher dispatcher(&registry, &clock);
  uint64_t executions = 0;
  dispatcher.RegisterProgram(9, [&](uint32_t, const Bytes& args) {
    ++executions;
    clock.Advance(500'000, TimeCategory::kCpu);  // 500 us of service.
    return util::Result<Bytes>(args);
  });
  // One service slot, one queue slot: a window of four nearly
  // simultaneous arrivals must shed at least one.
  sim::Host::Options options;
  options.concurrency = 1;
  options.queue_depth = 1;
  sim::Host host(&clock, &dispatcher, &registry, options);
  sim::Link link(&clock, sim::LinkProfile::Udp(), &host, &registry);
  rpc::LinkTransport transport(&link);
  rpc::Client client(&transport, 9, &registry);
  client.set_window(4);

  constexpr uint64_t kCalls = 16;
  uint64_t completions = 0;
  for (uint64_t i = 0; i < kCalls; ++i) {
    const std::string payload = "op " + std::to_string(i);
    client.CallAsync(1, BytesOf(payload),
                     [payload, &completions](util::Result<Bytes> reply) {
                       ASSERT_TRUE(reply.ok()) << payload << ": "
                                               << reply.status().ToString();
                       EXPECT_EQ(reply.value(), BytesOf(payload)) << payload;
                       ++completions;
                     });
  }
  client.Drain();

  // Shedding happened, produced no reply (only the retransmission timer
  // recovers a shed request), and every call still completed.
  EXPECT_GT(host.shed_count(), 0u);
  EXPECT_GE(link.retransmissions(), host.shed_count());
  EXPECT_EQ(completions, kCalls);
  EXPECT_EQ(client.in_flight(), 0u);
  EXPECT_EQ(registry.CounterValue("server.shed"), host.shed_count());
  // The DRC absorbed retransmissions of requests that did get through.
  EXPECT_GE(executions, kCalls);
  EXPECT_EQ(host.queue_length(), 0u);
  EXPECT_EQ(host.in_service(), 0u);
  ExpectLedgerBalanced(clock);
}

// --- Differential: event core vs the inline watermark model ---------------

// A fixed-cost echo: the same 70 us of kCpu whether it runs inline
// (Roundtrip) or in a measure frame at its service-start event.
class FixedCostEcho : public sim::Service {
 public:
  FixedCostEcho(sim::Clock* clock, uint64_t service_ns)
      : clock_(clock), service_ns_(service_ns) {}
  util::Result<Bytes> Handle(const Bytes& request) override {
    clock_->Advance(service_ns_, TimeCategory::kCpu);
    return util::Result<Bytes>(request);
  }

 private:
  sim::Clock* clock_;
  uint64_t service_ns_;
};

TEST(DifferentialTest, EventCoreMatchesWatermarkModelAtWindowOne) {
  // Stop-and-wait on a loss-free link is the one regime where the old
  // inline model (charge uplink, run handler, charge downlink) was
  // correct.  The event core must reproduce its timeline exactly:
  // same elapsed time, same per-category ledger, for the same calls.
  constexpr uint64_t kServiceNs = 70'000;
  constexpr int kCalls = 8;

  sim::Clock inline_clock;
  obs::Registry inline_registry;
  FixedCostEcho inline_echo(&inline_clock, kServiceNs);
  sim::Link inline_link(&inline_clock, sim::LinkProfile::Udp(), &inline_echo,
                        &inline_registry);

  sim::Clock event_clock;
  obs::Registry event_registry;
  FixedCostEcho event_echo(&event_clock, kServiceNs);
  sim::Link event_link(&event_clock, sim::LinkProfile::Udp(), &event_echo,
                       &event_registry);

  for (int i = 0; i < kCalls; ++i) {
    const Bytes payload = BytesOf("differential " + std::to_string(i));

    auto inline_reply = inline_link.Roundtrip(payload);
    ASSERT_TRUE(inline_reply.ok());
    EXPECT_EQ(inline_reply.value(), payload);

    const uint64_t token = event_link.Submit(payload);
    auto delivery = event_link.AwaitNext(UINT64_MAX);
    ASSERT_TRUE(delivery.has_value());
    EXPECT_EQ(delivery->token, token);
    ASSERT_TRUE(delivery->status.ok());
    EXPECT_EQ(delivery->response, payload);

    EXPECT_EQ(event_clock.now_ns(), inline_clock.now_ns())
        << "timelines diverged at call " << i;
  }

  const sim::Clock::CategorySnapshot inline_ledger = inline_clock.categories();
  const sim::Clock::CategorySnapshot event_ledger = event_clock.categories();
  for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
    EXPECT_EQ(event_ledger.ns[i], inline_ledger.ns[i])
        << "category " << obs::TimeCategoryName(static_cast<TimeCategory>(i));
  }
  EXPECT_EQ(inline_link.messages_sent(), event_link.messages_sent());
  EXPECT_EQ(inline_link.bytes_sent(), event_link.bytes_sent());
  ExpectLedgerBalanced(inline_clock);
  ExpectLedgerBalanced(event_clock);
}

// --- Link timing regressions ----------------------------------------------

// Success with an empty body, or an error verdict, depending on the
// request — both replies have zero payload bytes on the wire.
class VerdictService : public sim::Service {
 public:
  explicit VerdictService(sim::Clock* clock) : clock_(clock) {}
  util::Result<Bytes> Handle(const Bytes& request) override {
    clock_->Advance(100'000, TimeCategory::kCpu);
    if (util::StringOf(request) == "fail") {
      return util::Unavailable("connection torn down");
    }
    return util::Result<Bytes>(Bytes{});
  }

 private:
  sim::Clock* clock_;
};

TEST(LinkTimingTest, ErrorVerdictTakesTheFullDownlinkLeg) {
  // Regression: error verdicts used to surface instantly, skipping the
  // downlink and the wire-message count — an error was cheaper than the
  // empty success reply carrying the same zero-byte body.  Timed on two
  // fresh links, the verdicts must be indistinguishable on the wire.
  auto timed_delivery = [](const std::string& request, bool expect_ok) {
    sim::Clock clock;
    obs::Registry registry;
    VerdictService service(&clock);
    sim::Link link(&clock, sim::LinkProfile::Udp(), &service, &registry);
    link.Submit(BytesOf(request));
    auto delivery = link.AwaitNext(UINT64_MAX);
    EXPECT_TRUE(delivery.has_value());
    EXPECT_EQ(delivery->status.ok(), expect_ok);
    EXPECT_EQ(link.messages_sent(), 2u) << "request + reply, success or not";
    ExpectLedgerBalanced(clock);
    return clock.now_ns();
  };
  const uint64_t success_ns = timed_delivery("pass", /*expect_ok=*/true);
  const uint64_t error_ns = timed_delivery("fail", /*expect_ok=*/false);
  EXPECT_EQ(error_ns, success_ns)
      << "error verdicts must ride the same downlink as success replies";
}

// Duplicates exactly the first request it sees.
class DuplicateFirstRequest : public sim::Interposer {
 public:
  bool DuplicateRequest() override {
    if (fired_) {
      return false;
    }
    fired_ = true;
    return true;
  }

 private:
  bool fired_ = false;
};

TEST(LinkTimingTest, DuplicateDeliveryOccupiesTheSerialServer) {
  // Regression: a network-duplicated request used to be answered without
  // occupying the server, so overload experiments undercounted offered
  // load.  With a serial host and no dedup layer, the duplicate of A
  // must push B's completion back by one full service time.
  constexpr uint64_t kServiceNs = 500'000;
  auto run = [&](sim::Interposer* interposer) {
    sim::Clock clock;
    obs::Registry registry;
    FixedCostEcho echo(&clock, kServiceNs);
    sim::Link link(&clock, sim::LinkProfile::Udp(), &echo, &registry);
    link.set_interposer(interposer);
    link.Submit(BytesOf("request A"));
    link.Submit(BytesOf("request B"));
    for (int deliveries = 0; deliveries < 2; ++deliveries) {
      auto delivery = link.AwaitNext(UINT64_MAX);
      EXPECT_TRUE(delivery.has_value());
      EXPECT_TRUE(delivery->status.ok());
    }
    ExpectLedgerBalanced(clock);
    struct Outcome {
      uint64_t elapsed_ns;
      uint64_t messages;
      uint64_t duplicates;
      uint64_t arrivals;
    };
    return Outcome{clock.now_ns(), link.messages_sent(),
                   link.duplicates_delivered(), link.host()->arrivals()};
  };

  const auto plain = run(nullptr);
  DuplicateFirstRequest interposer;
  const auto duplicated = run(&interposer);

  EXPECT_EQ(duplicated.duplicates, 1u);
  EXPECT_EQ(duplicated.arrivals, plain.arrivals + 1)
      << "the duplicate is an ordinary arrival at the host";
  EXPECT_EQ(duplicated.messages, plain.messages + 1)
      << "the duplicate occupies the uplink as a real wire message";
  EXPECT_EQ(duplicated.elapsed_ns, plain.elapsed_ns + kServiceNs)
      << "the duplicate must hold the serial server for a full service time";
}

// --- transit_info_ lifetime ------------------------------------------------

// Drops every request on the floor.
class DropAllRequests : public sim::Interposer {
 public:
  util::Result<Bytes> OnRequest(Bytes) override {
    return util::Unavailable("black hole");
  }
};

TEST(TransitInfoTest, EntriesLiveExactlyAsLongAsTheirTokens) {
  // Regression: transit_info_ was size-capped, so a fleet-scale burst
  // evicted live tokens and orphaned their spans.  Entries must survive
  // any number of in-flight tokens and be erased exactly at delivery,
  // drop, or shed — never by pruning.
  sim::Clock clock;
  obs::Registry registry;
  registry.spans().Enable(
      [&clock] { return clock.now_ns(); },
      [&clock](uint64_t out[obs::kTimeCategoryCount]) {
        const sim::Clock::CategorySnapshot charged = clock.categories();
        for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
          out[i] = charged.ns[i];
        }
      });
  FixedCostEcho echo(&clock, 10'000);
  sim::Link link(&clock, sim::LinkProfile::Udp(), &echo, &registry);

  // Far more in-flight tokens than the old cap tolerated: all live, all
  // tracked.
  constexpr uint64_t kInFlight = 512;
  for (uint64_t i = 0; i < kInFlight; ++i) {
    link.Submit(BytesOf("burst " + std::to_string(i)));
  }
  EXPECT_EQ(link.transit_info_size(), kInFlight)
      << "live tokens must never be evicted";
  for (uint64_t i = 0; i < kInFlight; ++i) {
    auto delivery = link.AwaitNext(UINT64_MAX);
    ASSERT_TRUE(delivery.has_value());
  }
  EXPECT_EQ(link.transit_info_size(), 0u) << "delivery erases the entry";

  // A request dropped in transit dies with its bookkeeping.
  DropAllRequests black_hole;
  link.set_interposer(&black_hole);
  link.Submit(BytesOf("doomed"));
  EXPECT_EQ(link.transit_info_size(), 0u) << "drop erases the entry";
  EXPECT_EQ(link.drops_observed(), 1u);
  link.set_interposer(nullptr);
  ExpectLedgerBalanced(clock);
}

TEST(TransitInfoTest, ShedArrivalsPruneTheirEntries) {
  sim::Clock clock;
  obs::Registry registry;
  registry.spans().Enable(
      [&clock] { return clock.now_ns(); },
      [&clock](uint64_t out[obs::kTimeCategoryCount]) {
        const sim::Clock::CategorySnapshot charged = clock.categories();
        for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
          out[i] = charged.ns[i];
        }
      });
  FixedCostEcho echo(&clock, 500'000);
  sim::Host::Options options;
  options.concurrency = 1;
  options.queue_depth = 0;  // No queue: anything beyond the slot is shed.
  sim::Host host(&clock, &echo, &registry, options);
  sim::Link link(&clock, sim::LinkProfile::Udp(), &host, &registry);

  // Three near-simultaneous arrivals: one serves, two are shed.
  link.Submit(BytesOf("request 1"));
  link.Submit(BytesOf("request 2"));
  link.Submit(BytesOf("request 3"));
  auto delivery = link.AwaitNext(UINT64_MAX);
  ASSERT_TRUE(delivery.has_value());
  clock.events()->RunUntil(UINT64_MAX);  // Drain any remaining events.
  EXPECT_EQ(host.shed_count(), 2u);
  EXPECT_EQ(link.transit_info_size(), 0u)
      << "a shed token's bookkeeping dies at the admission decision";
  ExpectLedgerBalanced(clock);
}

// --- LossyInterposer held-response reconciliation ---------------------------

TEST(LossyTest, FlushHeldReclassifiesTheHeldResponseAsADrop) {
  // reorder=1.0 makes the hold deterministic: the first response is held
  // back, and every later one is swapped for the one in the hold slot —
  // the receiver always sees the previous (stale) message, and exactly
  // one response is still held when the run ends.
  sim::LossyInterposer lossy(/*seed=*/7, {.reorder = 1.0});
  auto r1 = lossy.OnResponse(BytesOf("reply 1"));
  EXPECT_FALSE(r1.ok()) << "first response is held, not delivered";
  EXPECT_TRUE(lossy.has_held());
  auto r2 = lossy.OnResponse(BytesOf("reply 2"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), BytesOf("reply 1")) << "stale delivery in place of fresh";
  auto r3 = lossy.OnResponse(BytesOf("reply 3"));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value(), BytesOf("reply 2")) << "the hold slot always lags by one";
  ASSERT_TRUE(lossy.has_held());

  // End of run: the held message never reached anyone.  Flushing books
  // it as a drop so sent = delivered + dropped balances.
  EXPECT_EQ(lossy.responses_dropped(), 0u);
  EXPECT_EQ(lossy.FlushHeld(), 1u);
  EXPECT_FALSE(lossy.has_held());
  EXPECT_EQ(lossy.responses_dropped(), 1u);
  EXPECT_EQ(lossy.held_flushed(), 1u);
  EXPECT_EQ(lossy.FlushHeld(), 0u) << "nothing held, nothing to flush";
  EXPECT_EQ(lossy.held_flushed(), 1u);
}

// Counts responses through a LossyInterposer so the end-of-run balance
// can be checked: everything the server sent was either delivered or is
// in a drop counter — nothing vanishes.
class CountingLossy : public sim::Interposer {
 public:
  CountingLossy(uint64_t seed, sim::LossyInterposer::Profile profile)
      : inner_(seed, profile) {}

  util::Result<Bytes> OnRequest(Bytes request) override {
    return inner_.OnRequest(std::move(request));
  }
  util::Result<Bytes> OnResponse(Bytes response) override {
    ++responses_in_;
    auto result = inner_.OnResponse(std::move(response));
    if (result.ok()) {
      ++responses_out_;
    }
    return result;
  }
  bool DuplicateRequest() override { return inner_.DuplicateRequest(); }

  sim::LossyInterposer* inner() { return &inner_; }
  uint64_t responses_in() const { return responses_in_; }
  uint64_t responses_out() const { return responses_out_; }

 private:
  sim::LossyInterposer inner_;
  uint64_t responses_in_ = 0;
  uint64_t responses_out_ = 0;
};

TEST(LossyTest, SeededLossyRunReconcilesAfterFlush) {
  // Sweep seeds until a run ends with a response still held back for
  // reordering (most reordering runs do), then check the books: before
  // the flush the held message is missing from both the delivered and
  // the dropped column; after it, sent = delivered + dropped exactly.
  bool found_held_run = false;
  for (uint64_t seed = 1; seed <= 32 && !found_held_run; ++seed) {
    sim::Clock clock;
    obs::Registry registry;
    rpc::Dispatcher dispatcher(&registry, &clock);
    dispatcher.RegisterProgram(9, [](uint32_t, const Bytes& args) {
      return util::Result<Bytes>(args);
    });
    sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher, &registry);
    CountingLossy lossy(seed, {.drop = 0.05, .duplicate = 0.05, .reorder = 0.25});
    link.set_interposer(&lossy);
    rpc::LinkTransport transport(&link);
    rpc::Client client(&transport, 9, &registry);
    client.set_window(2);

    constexpr uint64_t kCalls = 40;
    uint64_t completions = 0;
    for (uint64_t i = 0; i < kCalls; ++i) {
      client.CallAsync(1, BytesOf("op " + std::to_string(i)),
                       [&completions](util::Result<Bytes> reply) {
                         EXPECT_TRUE(reply.ok()) << reply.status().ToString();
                         ++completions;
                       });
    }
    client.Drain();
    EXPECT_EQ(completions, kCalls);
    ExpectLedgerBalanced(clock);

    sim::LossyInterposer* inner = lossy.inner();
    const uint64_t imbalance =
        lossy.responses_in() - lossy.responses_out() - inner->responses_dropped();
    if (inner->has_held()) {
      found_held_run = true;
      EXPECT_EQ(imbalance, 1u) << "exactly the held message is unaccounted";
      EXPECT_EQ(inner->FlushHeld(), 1u);
      EXPECT_EQ(inner->held_flushed(), 1u);
    } else {
      EXPECT_EQ(imbalance, 0u);
    }
    // After reconciliation every response the server sent is either
    // delivered or counted as dropped.
    EXPECT_EQ(lossy.responses_in(),
              lossy.responses_out() + inner->responses_dropped());
  }
  EXPECT_TRUE(found_held_run)
      << "no seed in [1,32] left a held response; weaken the sweep";
}

// --- Ledger at fleet scale -------------------------------------------------

TEST(LedgerTest, MultiClientEventDrivenRunSumsExactlyToNow) {
  // Many event-driven clients over one shared serial host, driven by a
  // single top-level event loop — the fleet_scaling topology in
  // miniature.  However the gaps interleave (transit, service frames,
  // queue waits, retransmission timers), every nanosecond lands in
  // exactly one category.
  sim::Clock clock;
  obs::Registry registry;
  sim::Host::Options options;
  options.concurrency = 1;
  options.queue_depth = 8;
  sim::Host host(&clock, /*service=*/nullptr, &registry, options);

  constexpr int kClients = 24;
  constexpr uint64_t kOpsPerClient = 8;
  struct ClientStack {
    std::unique_ptr<rpc::Dispatcher> dispatcher;
    std::unique_ptr<sim::Link> link;
    std::unique_ptr<rpc::LinkTransport> transport;
    std::unique_ptr<rpc::Client> client;
  };
  std::vector<ClientStack> stacks;
  uint64_t completions = 0;
  for (int i = 0; i < kClients; ++i) {
    ClientStack stack;
    // Per-connection dispatcher: the duplicate-request cache is keyed by
    // this connection's seqnos (see src/sim/network.h, Host::Arrive).
    stack.dispatcher = std::make_unique<rpc::Dispatcher>(&registry, &clock);
    stack.dispatcher->RegisterProgram(9, [&clock](uint32_t, const Bytes& args) {
      clock.Advance(70'000, TimeCategory::kCpu);
      return util::Result<Bytes>(args);
    });
    stack.link = std::make_unique<sim::Link>(&clock, sim::LinkProfile::Udp(),
                                             &host, &registry,
                                             stack.dispatcher.get());
    stack.transport = std::make_unique<rpc::LinkTransport>(stack.link.get());
    stack.client = std::make_unique<rpc::Client>(stack.transport.get(), 9, &registry);
    stack.client->set_window(4);
    stack.client->EnableEventDriven();
    stacks.push_back(std::move(stack));
  }
  for (int i = 0; i < kClients; ++i) {
    for (uint64_t op = 0; op < kOpsPerClient; ++op) {
      const std::string payload =
          "client " + std::to_string(i) + " op " + std::to_string(op);
      stacks[i].client->CallAsync(
          1, BytesOf(payload), [payload, &completions](util::Result<Bytes> reply) {
            EXPECT_TRUE(reply.ok()) << payload << ": " << reply.status().ToString();
            ++completions;
          });
    }
  }
  while (completions < static_cast<uint64_t>(kClients) * kOpsPerClient) {
    ASSERT_TRUE(clock.events()->RunOne()) << "event queue drained early";
  }
  clock.events()->RunUntil(UINT64_MAX);

  EXPECT_GT(clock.now_ns(), 0u);
  // The acceptance criterion: the clock ledger sums exactly to now_ns
  // at multi-client, event-driven scale.
  const sim::Clock::CategorySnapshot snapshot = clock.categories();
  uint64_t total = 0;
  for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
    total += snapshot.ns[i];
  }
  ASSERT_EQ(total, clock.now_ns());
  // The serial server occupied the timeline for a full 70 us per
  // executed op, so the run cannot be faster than ops * service.  (The
  // kCpu *category* can total less: a service frame's charge covers only
  // the gap to its completion event, and link-transit events landing
  // inside that gap take their slice as kLink — overlap never
  // double-charges the shared timeline.)
  EXPECT_GE(clock.now_ns(),
            static_cast<uint64_t>(kClients) * kOpsPerClient * 70'000u);
  EXPECT_GT(snapshot.ns[static_cast<size_t>(TimeCategory::kCpu)], 0u);
}

}  // namespace
