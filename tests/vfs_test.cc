// Tests for the VFS layer and the paper's key-management idioms built on
// symbolic links: manual key distribution, secure links, certification
// authorities, certification paths, secure bookmarks, per-agent /sfs
// views, and revocation surfacing.
#include <gtest/gtest.h>

#include <memory>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/vfs/vfs.h"
#include "tests/test_keys.h"

namespace {

using agent::Agent;
using nfs::Credentials;
using nfs::FileType;
using sfs::SelfCertifyingPath;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;
using vfs::OpenFlags;
using vfs::UserContext;
using vfs::Vfs;

constexpr size_t kKeyBits = 512;

class VfsTest : public ::testing::Test {
 protected:
  VfsTest()
      : local_disk_(&clock_, sim::DiskProfile::Ibm18Es()),
        local_fs_(&clock_, &local_disk_, nfs::MemFs::Options{/*fsid=*/7}),
        vfs_(&clock_, &costs_) {
    // Two independent SFS servers ("MIT" and "Verisign the CA").
    mit_ = MakeServer("sfs.lcs.mit.edu", 1);
    ca_ = MakeServer("sfs.verisign.com", 2);

    SfsClient::Options copts;
    copts.ephemeral_key_bits = kKeyBits;
    client_ = std::make_unique<SfsClient>(
        &clock_, &costs_,
        [this](const std::string& location) -> SfsServer* {
          if (location == "sfs.lcs.mit.edu") {
            return mit_.get();
          }
          if (location == "sfs.verisign.com") {
            return ca_.get();
          }
          return nullptr;
        },
        copts);

    vfs_.MountRoot(&local_fs_, local_fs_.root_handle());
    vfs_.EnableSfs(client_.get());

    // A user with an agent and a registered key on the MIT server.
    user_key_ = test_keys::CachedTestKey(88, kKeyBits);
    auth::PublicUserRecord record;
    record.name = "dm";
    record.public_key = user_key_.public_key().Serialize();
    record.credentials = Credentials::User(1000, {1000});
    EXPECT_TRUE(mit_auth_.RegisterUser(record).ok());
    alice_agent_ = std::make_unique<Agent>("dm");
    alice_agent_->AddPrivateKey(user_key_);
    alice_ = UserContext::For(1000, alice_agent_.get());
  }

  std::unique_ptr<SfsServer> MakeServer(const std::string& location, uint64_t fsid) {
    SfsServer::Options options;
    options.location = location;
    options.key_bits = kKeyBits;
    options.fsid = fsid;
    options.prng_seed = fsid * 31;
    auth::AuthServer* authsrv = location == "sfs.lcs.mit.edu" ? &mit_auth_ : &ca_auth_;
    return std::make_unique<SfsServer>(&clock_, &costs_, options, authsrv);
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  sim::Disk local_disk_;
  nfs::MemFs local_fs_;
  auth::AuthServer mit_auth_;
  auth::AuthServer ca_auth_;
  std::unique_ptr<SfsServer> mit_;
  std::unique_ptr<SfsServer> ca_;
  std::unique_ptr<SfsClient> client_;
  Vfs vfs_;
  crypto::RabinPrivateKey user_key_;
  std::unique_ptr<Agent> alice_agent_;
  UserContext alice_;
};

TEST_F(VfsTest, LocalFileLifecycle) {
  auto file = vfs_.Open(alice_, "/hello.txt", OpenFlags::CreateRw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->Write(BytesOf("local data")).ok());
  ASSERT_TRUE(file->Close().ok());

  auto read_back = vfs_.Open(alice_, "/hello.txt", OpenFlags::ReadOnly());
  ASSERT_TRUE(read_back.ok());
  auto data = read_back->Read(100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(util::StringOf(*data), "local data");
}

TEST_F(VfsTest, DirectoriesAndListing) {
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/dir").ok());
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/dir/sub").ok());
  auto f = vfs_.Open(alice_, "/dir/sub/file", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  auto listing = vfs_.ListDir(alice_, "/dir/sub");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0], "file");
  // Root listing includes the virtual /sfs entry.
  auto root = vfs_.ListDir(alice_, "/");
  ASSERT_TRUE(root.ok());
  EXPECT_NE(std::find(root->begin(), root->end(), "sfs"), root->end());
}

TEST_F(VfsTest, SymlinkResolution) {
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/real").ok());
  auto f = vfs_.Open(alice_, "/real/file", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("via link")).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, "/real", "/alias").ok());

  auto through = vfs_.Open(alice_, "/alias/file", OpenFlags::ReadOnly());
  ASSERT_TRUE(through.ok());
  auto data = through->Read(100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(util::StringOf(*data), "via link");

  auto lstat = vfs_.Lstat(alice_, "/alias");
  ASSERT_TRUE(lstat.ok());
  EXPECT_EQ(lstat->type, FileType::kSymlink);
  auto stat = vfs_.Stat(alice_, "/alias");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kDirectory);
  auto target = vfs_.ReadLink(alice_, "/alias");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/real");
}

TEST_F(VfsTest, RelativeSymlinksAndDotDot) {
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/a").ok());
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/a/b").ok());
  auto f = vfs_.Open(alice_, "/a/target", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("X")).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, "../target", "/a/b/rel").ok());
  auto stat = vfs_.Stat(alice_, "/a/b/rel");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 1u);
  auto real = vfs_.Realpath(alice_, "/a/b/../../a/b/rel");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, "/a/target");
}

TEST_F(VfsTest, SymlinkLoopDetected) {
  ASSERT_TRUE(vfs_.Symlink(alice_, "/loop2", "/loop1").ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, "/loop1", "/loop2").ok());
  auto stat = vfs_.Stat(alice_, "/loop1");
  EXPECT_FALSE(stat.ok());
}

TEST_F(VfsTest, SelfCertifyingPathnameAutomounts) {
  // The paper's core flow: referencing /sfs/Location:HostID mounts the
  // remote file system transparently.
  std::string remote = mit_->Path().FullPath();
  auto file = vfs_.Open(alice_, remote + "/remote.txt", OpenFlags::CreateRw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->Write(BytesOf("remote bytes")).ok());
  ASSERT_TRUE(file->Close().ok());
  auto stat = vfs_.Stat(alice_, remote + "/remote.txt");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 12u);
  EXPECT_EQ(client_->mounts_created(), 1u);
}

TEST_F(VfsTest, WrongHostIdDoesNotMount) {
  auto fake = test_keys::CachedTestKey(99, kKeyBits);
  SelfCertifyingPath bogus = SelfCertifyingPath::For("sfs.lcs.mit.edu", fake.public_key());
  auto stat = vfs_.Stat(alice_, bogus.FullPath());
  EXPECT_FALSE(stat.ok());
}

TEST_F(VfsTest, ManualKeyDistribution) {
  // Administrators install a symlink on the local disk (paper §2.4):
  //   /mit -> /sfs/sfs.lcs.mit.edu:HostID
  ASSERT_TRUE(vfs_.Symlink(alice_, mit_->Path().FullPath(), "/mit").ok());
  auto file = vfs_.Open(alice_, "/mit/readme", OpenFlags::CreateRw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->Write(BytesOf("hi")).ok());
  ASSERT_TRUE(file->Close().ok());
  // The file is really on the MIT server.
  auto stat = vfs_.Stat(alice_, mit_->Path().FullPath() + "/readme");
  ASSERT_TRUE(stat.ok());
}

TEST_F(VfsTest, SecureLinksAcrossServers) {
  // A symlink stored on one SFS server points at another's
  // self-certifying pathname — following it is certified end-to-end.
  UserContext root_user = UserContext::For(0, alice_agent_.get());
  std::string ca_path = ca_->Path().FullPath();
  std::string mit_path = mit_->Path().FullPath();
  ASSERT_TRUE(vfs_.Symlink(root_user, mit_path, ca_path + "/mit-link").ok());
  auto f = vfs_.Open(alice_, mit_path + "/linked-file", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  auto stat = vfs_.Stat(alice_, ca_path + "/mit-link/linked-file");
  ASSERT_TRUE(stat.ok()) << stat.status().ToString();
  EXPECT_EQ(client_->mounts_created(), 2u);
}

TEST_F(VfsTest, CertificationAuthorityViaCertPath) {
  // Verisign-as-CA (paper §2.4): the CA's file system holds symlinks to
  // customer servers; the user's agent searches it via the certification
  // path, so "/sfs/mit" works with no raw HostIDs.
  UserContext ca_admin = UserContext::For(0, alice_agent_.get());
  ASSERT_TRUE(
      vfs_.Symlink(ca_admin, mit_->Path().FullPath(), ca_->Path().FullPath() + "/mit").ok());
  alice_agent_->AddCertPathDir(ca_->Path().FullPath());

  auto file = vfs_.Open(alice_, "/sfs/mit/from-ca", OpenFlags::CreateRw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->Close().ok());
  // The on-the-fly link was recorded in the agent.
  EXPECT_TRUE(alice_agent_->LookupLink("mit").has_value());
  // And the file landed on the MIT server.
  auto stat = vfs_.Stat(alice_, mit_->Path().FullPath() + "/from-ca");
  ASSERT_TRUE(stat.ok());
}

TEST_F(VfsTest, CertPathSearchedInOrder) {
  // Two directories in the certification path both define "fileserver";
  // the first must win (paper: "the agent maps the name by looking in
  // each directory of the certification path in sequence").
  UserContext admin = UserContext::For(0, alice_agent_.get());
  ASSERT_TRUE(vfs_.Mkdir(admin, "/cp1").ok());
  ASSERT_TRUE(vfs_.Mkdir(admin, "/cp2").ok());
  ASSERT_TRUE(vfs_.Symlink(admin, mit_->Path().FullPath(), "/cp1/fileserver").ok());
  ASSERT_TRUE(vfs_.Symlink(admin, ca_->Path().FullPath(), "/cp2/fileserver").ok());
  alice_agent_->AddCertPathDir("/cp1");
  alice_agent_->AddCertPathDir("/cp2");
  auto real = vfs_.Realpath(alice_, "/sfs/fileserver");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, mit_->Path().FullPath());
}

TEST_F(VfsTest, SecureBookmarks) {
  // The bookmark idiom: pwd returns the full self-certifying pathname;
  // the bookmark is an agent link Location -> /sfs/Location:HostID.
  std::string remote = mit_->Path().FullPath();
  ASSERT_TRUE(vfs_.Mkdir(alice_, remote + "/projects").ok());
  auto real = vfs_.Realpath(alice_, remote + "/projects");
  ASSERT_TRUE(real.ok());
  // Extract Location:HostID from the canonical path, as the 10-line
  // bookmark script does.
  std::string component = real->substr(5, real->find('/', 5) - 5);
  alice_agent_->AddLink("mit-projects", "/sfs/" + component + "/projects");
  auto stat = vfs_.Stat(alice_, "/sfs/mit-projects");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kDirectory);
}

TEST_F(VfsTest, PerAgentSfsViews) {
  // Alice accesses MIT; Bob (different agent) must not see it in his
  // /sfs listing — the defense against HostID-completion tricks.
  Agent bob_agent("bob");
  UserContext bob = UserContext::For(2000, &bob_agent);

  ASSERT_TRUE(vfs_.Stat(alice_, mit_->Path().FullPath()).ok());
  auto alice_view = vfs_.ListDir(alice_, "/sfs");
  ASSERT_TRUE(alice_view.ok());
  EXPECT_EQ(alice_view->size(), 1u);

  auto bob_view = vfs_.ListDir(bob, "/sfs");
  ASSERT_TRUE(bob_view.ok());
  EXPECT_TRUE(bob_view->empty());
}

TEST_F(VfsTest, AgentLinksArePerAgent) {
  Agent bob_agent("bob");
  UserContext bob = UserContext::For(2000, &bob_agent);
  alice_agent_->AddLink("mit", mit_->Path().FullPath());
  EXPECT_TRUE(vfs_.Stat(alice_, "/sfs/mit").ok());
  EXPECT_FALSE(vfs_.Stat(bob, "/sfs/mit").ok());
}

TEST_F(VfsTest, UsersShareMountCache) {
  // Alice and Bob both resolve the same self-certifying path: one mount,
  // one connection (the AFS-conundrum fix, §5.1).
  Agent bob_agent("bob");
  UserContext bob = UserContext::For(2000, &bob_agent);
  ASSERT_TRUE(vfs_.Stat(alice_, mit_->Path().FullPath()).ok());
  ASSERT_TRUE(vfs_.Stat(bob, mit_->Path().FullPath()).ok());
  EXPECT_EQ(client_->mounts_created(), 1u);
}

TEST_F(VfsTest, AuthenticatedUserGetsHerCredentials) {
  std::string remote = mit_->Path().FullPath();
  // Alice (registered) creates a 0600 file; the server must record her
  // authserver-mapped uid 1000, so Bob (anonymous) cannot read it.
  auto f = vfs_.Open(alice_, remote + "/secret", OpenFlags::CreateRw(0600));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("classified")).ok());
  ASSERT_TRUE(f->Close().ok());
  auto stat = vfs_.Stat(alice_, remote + "/secret");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->uid, 1000u);

  Agent bob_agent("bob");  // No keys: anonymous on the server.
  UserContext bob = UserContext::For(2000, &bob_agent);
  auto denied = vfs_.Open(bob, remote + "/secret", OpenFlags::ReadOnly());
  EXPECT_FALSE(denied.ok());
}

TEST_F(VfsTest, RevokedPathIsUnreachable) {
  sfs::PathRevokeCert cert =
      sfs::PathRevokeCert::MakeRevocation(mit_->private_key(), "sfs.lcs.mit.edu");
  ASSERT_TRUE(alice_agent_->AddRevocation(cert).ok());
  auto stat = vfs_.Stat(alice_, mit_->Path().FullPath());
  ASSERT_FALSE(stat.ok());
  EXPECT_EQ(stat.status().code(), util::ErrorCode::kSecurityError);
  // The error surfaces the :REVOKED: marker for users who investigate.
  EXPECT_NE(stat.status().message().find(sfs::kRevokedLinkTarget), std::string::npos);
}

TEST_F(VfsTest, HostIdBlockingIsPerAgent) {
  // Alice blocks the CA; Bob is unaffected (paper §2.6: blocking "does
  // not affect any other users").
  alice_agent_->BlockHostId(ca_->Path().host_id);
  EXPECT_FALSE(vfs_.Stat(alice_, ca_->Path().FullPath()).ok());
  Agent bob_agent("bob");
  UserContext bob = UserContext::For(2000, &bob_agent);
  EXPECT_TRUE(vfs_.Stat(bob, ca_->Path().FullPath()).ok());
}

TEST_F(VfsTest, ForwardingPointerAsRootSymlink) {
  // Old server replaces its root content with a symlink to the new
  // self-certifying pathname (paper §2.4 "Forwarding pointers").
  UserContext admin = UserContext::For(0, alice_agent_.get());
  ASSERT_TRUE(
      vfs_.Symlink(admin, ca_->Path().FullPath(), mit_->Path().FullPath() + "/moved").ok());
  auto real = vfs_.Realpath(alice_, mit_->Path().FullPath() + "/moved");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, ca_->Path().FullPath());
}

TEST_F(VfsTest, RenameAndUnlinkThroughVfs) {
  auto f = vfs_.Open(alice_, "/f1", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.Rename(alice_, "/f1", "/f2").ok());
  EXPECT_FALSE(vfs_.Stat(alice_, "/f1").ok());
  EXPECT_TRUE(vfs_.Stat(alice_, "/f2").ok());
  ASSERT_TRUE(vfs_.Unlink(alice_, "/f2").ok());
  EXPECT_FALSE(vfs_.Stat(alice_, "/f2").ok());
}

TEST_F(VfsTest, OpenFlagsSemantics) {
  auto f = vfs_.Open(alice_, "/x", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("0123456789")).ok());
  ASSERT_TRUE(f->Close().ok());

  OpenFlags excl = OpenFlags::CreateRw();
  excl.exclusive = true;
  EXPECT_FALSE(vfs_.Open(alice_, "/x", excl).ok());

  // O_TRUNC empties the file.
  auto t = vfs_.Open(alice_, "/x", OpenFlags::CreateRw());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->Close().ok());
  auto stat = vfs_.Stat(alice_, "/x");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 0u);

  // Write through a read-only descriptor fails.
  auto ro = vfs_.Open(alice_, "/x", OpenFlags::ReadOnly());
  ASSERT_TRUE(ro.ok());
  EXPECT_FALSE(ro->Write(BytesOf("nope")).ok());
}

TEST_F(VfsTest, PermissionDeniedOnOpen) {
  auto f = vfs_.Open(alice_, "/private", OpenFlags::CreateRw(0600));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  UserContext bob = UserContext::For(2001);
  EXPECT_FALSE(vfs_.Open(bob, "/private", OpenFlags::ReadOnly()).ok());
}

TEST_F(VfsTest, SfsDirIsNotWritable) {
  EXPECT_FALSE(vfs_.Mkdir(alice_, "/sfs/newdir").ok());
  EXPECT_FALSE(vfs_.Open(alice_, "/sfs/newfile", OpenFlags::CreateRw()).ok());
}

TEST_F(VfsTest, WriteGatheringFlushesOnOverlapAndClose) {
  // The OpenFile write-behind buffer must never let a read observe stale
  // data, for the same or for a different descriptor after close.
  auto f = vfs_.Open(alice_, "/wb", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Pwrite(0, BytesOf("AAAA")).ok());      // Buffered.
  ASSERT_TRUE(f->Pwrite(4, BytesOf("BBBB")).ok());      // Gathered.
  auto overlap = f->Pread(2, 4);                        // Forces a flush.
  ASSERT_TRUE(overlap.ok());
  EXPECT_EQ(util::StringOf(*overlap), "AABB");
  ASSERT_TRUE(f->Pwrite(100, BytesOf("CC")).ok());      // Non-contiguous: new buffer.
  ASSERT_TRUE(f->Close().ok());
  auto stat = vfs_.Stat(alice_, "/wb");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 102u);
}

TEST_F(VfsTest, ReadAheadStaysCoherentWithOwnWrites) {
  auto f = vfs_.Open(alice_, "/ra", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  util::Bytes big(100000, 'x');
  ASSERT_TRUE(f->Pwrite(0, big).ok());
  // Sequential read primes the read-ahead window...
  auto first = f->Pread(0, 8192);
  ASSERT_TRUE(first.ok());
  // ...a write invalidates it...
  ASSERT_TRUE(f->Pwrite(8192, BytesOf("YY")).ok());
  // ...so the next read must see the new bytes.
  auto second = f->Pread(8192, 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(util::StringOf(*second), "YY");
  ASSERT_TRUE(f->Close().ok());
}

TEST_F(VfsTest, SequentialReadHelperWalksWholeFile) {
  auto f = vfs_.Open(alice_, "/seq", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  util::Bytes content;
  for (int i = 0; i < 1000; ++i) {
    content.push_back(static_cast<uint8_t>(i * 7));
  }
  ASSERT_TRUE(f->Write(content).ok());
  ASSERT_TRUE(f->Close().ok());
  auto r = vfs_.Open(alice_, "/seq", OpenFlags::ReadOnly());
  ASSERT_TRUE(r.ok());
  util::Bytes assembled;
  for (;;) {
    auto chunk = r->Read(333);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) {
      break;
    }
    util::Append(&assembled, *chunk);
  }
  EXPECT_EQ(assembled, content);
}

TEST_F(VfsTest, DeepDirectoryTree) {
  std::string path;
  for (int depth = 0; depth < 24; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(vfs_.Mkdir(alice_, path).ok()) << path;
  }
  auto f = vfs_.Open(alice_, path + "/leaf", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  auto real = vfs_.Realpath(alice_, path + "/leaf");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, path + "/leaf");
}

TEST_F(VfsTest, ChainOfSymlinksIntoSfs) {
  // local link -> local link -> self-certifying path -> file.
  std::string remote = mit_->Path().FullPath();
  auto f = vfs_.Open(alice_, remote + "/deep-target", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, remote, "/hop2").ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, "/hop2", "/hop1").ok());
  EXPECT_TRUE(vfs_.Stat(alice_, "/hop1/deep-target").ok());
}

TEST_F(VfsTest, ChmodAndTruncateThroughVfs) {
  auto f = vfs_.Open(alice_, "/attrs", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("0123456789")).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.Chmod(alice_, "/attrs", 0640).ok());
  ASSERT_TRUE(vfs_.Truncate(alice_, "/attrs", 4).ok());
  auto stat = vfs_.Stat(alice_, "/attrs");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->mode, 0640u);
  EXPECT_EQ(stat->size, 4u);
  // Non-owner cannot chmod.
  UserContext bob = UserContext::For(2000);
  EXPECT_FALSE(vfs_.Chmod(bob, "/attrs", 0777).ok());
}

TEST_F(VfsTest, RelativePathsRejected) {
  EXPECT_FALSE(vfs_.Stat(alice_, "relative/path").ok());
  EXPECT_FALSE(vfs_.Stat(alice_, "").ok());
  EXPECT_FALSE(vfs_.Mkdir(alice_, "x").ok());
}

TEST_F(VfsTest, DotAndDotDotNormalization) {
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/n1").ok());
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/n1/n2").ok());
  auto f = vfs_.Open(alice_, "/n1/n2/./../n2/file", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_TRUE(vfs_.Stat(alice_, "/n1/n2/file").ok());
  // ".." above root stays at root.
  EXPECT_TRUE(vfs_.Stat(alice_, "/../../n1").ok());
}

TEST_F(VfsTest, StatFsReportsUsage) {
  auto before = vfs_.StatFs(alice_, "/");
  ASSERT_TRUE(before.ok());
  auto f = vfs_.Open(alice_, "/chunky", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(util::Bytes(64 * 1024, 0x77)).ok());
  ASSERT_TRUE(f->Close().ok());
  auto after = vfs_.StatFs(alice_, "/");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->used_bytes, before->used_bytes);
  EXPECT_EQ(after->total_bytes, before->total_bytes);
  // Remote file systems answer too.
  auto remote = vfs_.StatFs(alice_, mit_->Path().FullPath());
  ASSERT_TRUE(remote.ok());
  // But the virtual /sfs directory is not a file system.
  EXPECT_FALSE(vfs_.StatFs(alice_, "/sfs").ok());
}

TEST_F(VfsTest, DirectoryNlinkCountsSubdirectories) {
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/p").ok());
  auto base = vfs_.Stat(alice_, "/p");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->nlink, 2u);  // "." and the parent entry.
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/p/a").ok());
  ASSERT_TRUE(vfs_.Mkdir(alice_, "/p/b").ok());
  auto grown = vfs_.Stat(alice_, "/p");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->nlink, 4u);  // +1 per child's "..".
  ASSERT_TRUE(vfs_.Rmdir(alice_, "/p/a").ok());
  auto shrunk = vfs_.Stat(alice_, "/p");
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(shrunk->nlink, 3u);
}

TEST_F(VfsTest, HardLinksThroughVfs) {
  auto f = vfs_.Open(alice_, "/orig", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("linked")).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.HardLink(alice_, "/orig", "/alias").ok());
  auto stat = vfs_.Stat(alice_, "/alias");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 2u);
  ASSERT_TRUE(vfs_.Unlink(alice_, "/orig").ok());
  auto read_back = vfs_.Open(alice_, "/alias", OpenFlags::ReadOnly());
  ASSERT_TRUE(read_back.ok());
  auto data = read_back->Read(100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(util::StringOf(*data), "linked");
}

TEST_F(VfsTest, HardLinkOnSfsMount) {
  // Links work over the wire + handle encryption + leases too.
  std::string remote = mit_->Path().FullPath();
  auto f = vfs_.Open(alice_, remote + "/hl", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("X")).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(vfs_.HardLink(alice_, remote + "/hl", remote + "/hl2").ok());
  auto stat = vfs_.Stat(alice_, remote + "/hl2");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 2u);
  // Cross-filesystem hard links rejected.
  EXPECT_FALSE(vfs_.HardLink(alice_, remote + "/hl", "/local-alias").ok());
}

TEST_F(VfsTest, RenameAcrossFileSystemsRejected) {
  auto f = vfs_.Open(alice_, "/local-file", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  std::string remote = mit_->Path().FullPath();
  EXPECT_FALSE(vfs_.Rename(alice_, "/local-file", remote + "/moved").ok());
}

TEST_F(VfsTest, RealpathOfSelfCertifyingMount) {
  // pwd inside an SFS mount returns the full self-certifying pathname —
  // the property the bookmark idiom depends on.
  std::string remote = mit_->Path().FullPath();
  ASSERT_TRUE(vfs_.Mkdir(alice_, remote + "/deep").ok());
  ASSERT_TRUE(vfs_.Symlink(alice_, remote + "/deep", "/shortcut").ok());
  auto real = vfs_.Realpath(alice_, "/shortcut");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, remote + "/deep");
}

}  // namespace
