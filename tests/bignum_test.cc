// Unit + property tests for the bignum library.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/crypto/bignum.h"
#include "src/crypto/prng.h"

namespace {

using crypto::BigInt;
using crypto::Prng;

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(0).ToDecimal(), "0");
  EXPECT_EQ(BigInt(1).ToDecimal(), "1");
  EXPECT_EQ(BigInt(-1).ToDecimal(), "-1");
  EXPECT_EQ(BigInt(int64_t{-1234567890123}).ToDecimal(), "-1234567890123");
  EXPECT_EQ(BigInt(uint64_t{0xffffffffffffffffULL}).ToDecimal(), "18446744073709551615");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* kValues[] = {"0", "1", "99999999999999999999999999999",
                           "-340282366920938463463374607431768211456"};
  for (const char* v : kValues) {
    auto parsed = BigInt::FromDecimal(v);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->ToDecimal(), v);
  }
}

TEST(BigIntTest, BytesRoundTrip) {
  Prng prng(uint64_t{3});
  for (size_t len : {1, 4, 5, 16, 31, 64, 129}) {
    util::Bytes b = prng.RandomBytes(len);
    b[0] |= 1;  // Avoid leading zero ambiguity.
    BigInt v = BigInt::FromBytes(b);
    EXPECT_EQ(v.ToBytes(), b);
    EXPECT_EQ(BigInt::FromBytes(v.ToBytesPadded(len + 7)), v);
  }
}

TEST(BigIntTest, AdditionCommutesAndAssociates) {
  Prng prng(uint64_t{4});
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Random(&prng, 200);
    BigInt b = BigInt::Random(&prng, 150);
    BigInt c = BigInt::Random(&prng, 250);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(BigIntTest, SubtractionInvertsAddition) {
  Prng prng(uint64_t{5});
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Random(&prng, 300);
    BigInt b = BigInt::Random(&prng, 200);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
    EXPECT_EQ(a - a, BigInt(0));
  }
}

TEST(BigIntTest, SignedArithmetic) {
  BigInt a(100);
  BigInt b(-30);
  EXPECT_EQ((a + b).ToDecimal(), "70");
  EXPECT_EQ((b - a).ToDecimal(), "-130");
  EXPECT_EQ((a * b).ToDecimal(), "-3000");
  EXPECT_EQ((b * b).ToDecimal(), "900");
}

TEST(BigIntTest, MultiplicationDistributes) {
  Prng prng(uint64_t{6});
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::Random(&prng, 180);
    BigInt b = BigInt::Random(&prng, 220);
    BigInt c = BigInt::Random(&prng, 160);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(BigIntTest, DivModIdentity) {
  // The central division property: a == q*b + r with |r| < |b|.
  Prng prng(uint64_t{7});
  for (int i = 0; i < 200; ++i) {
    size_t abits = 32 + prng.RandomUint64(480);
    size_t bbits = 32 + prng.RandomUint64(240);
    BigInt a = BigInt::Random(&prng, abits);
    BigInt b = BigInt::Random(&prng, bbits);
    BigInt q;
    BigInt r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
  }
}

TEST(BigIntTest, DivModKnuthAddBackCase) {
  // A divisor engineered to trigger the rare "add back" correction path.
  auto a = BigInt::FromHex("7fffffff800000010000000000000000");
  auto b = BigInt::FromHex("800000008000000200000005");
  ASSERT_TRUE(a.ok() && b.ok());
  BigInt q;
  BigInt r;
  BigInt::DivMod(*a, *b, &q, &r);
  EXPECT_EQ(q * (*b) + r, *a);
  EXPECT_TRUE(r < *b);
}

TEST(BigIntTest, DivisionBySingleLimb) {
  auto a = BigInt::FromDecimal("123456789012345678901234567890");
  ASSERT_TRUE(a.ok());
  BigInt q = *a / BigInt(7);
  BigInt r = *a % BigInt(7);
  EXPECT_EQ(q * BigInt(7) + r, *a);
  EXPECT_EQ(r.ToDecimal(), "0");  // 1234...890 is divisible by 7.
}

TEST(BigIntTest, TruncatedDivisionSigns) {
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToDecimal(), "-1");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToDecimal(), "1");
  EXPECT_EQ(BigInt(-7).Mod(BigInt(2)).ToDecimal(), "1");
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ((one << 100) >> 100, one);
  EXPECT_EQ((one << 64).ToHex(), "10000000000000000");
  Prng prng(uint64_t{8});
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::Random(&prng, 100);
    size_t s = prng.RandomUint64(90);
    EXPECT_EQ((a << s) >> s, a);
    EXPECT_EQ(a << s, a * BigInt::ModExp(BigInt(2), BigInt(static_cast<uint64_t>(s)),
                                         BigInt(1) << 200));
  }
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  BigInt v = BigInt(1) << 77;
  EXPECT_EQ(v.BitLength(), 78u);
  EXPECT_TRUE(v.Bit(77));
  EXPECT_FALSE(v.Bit(76));
  EXPECT_FALSE(v.Bit(200));
}

TEST(BigIntTest, ModExpMatchesNaive) {
  Prng prng(uint64_t{9});
  for (int i = 0; i < 20; ++i) {
    BigInt base = BigInt::Random(&prng, 40);
    uint64_t exp = prng.RandomUint64(20);
    BigInt m = BigInt::Random(&prng, 50);
    BigInt naive(1);
    for (uint64_t k = 0; k < exp; ++k) {
      naive = (naive * base).Mod(m);
    }
    EXPECT_EQ(BigInt::ModExp(base, BigInt(exp), m), naive);
  }
}

TEST(BigIntTest, FermatLittleTheorem) {
  // For prime p and gcd(a,p)=1: a^(p-1) ≡ 1 (mod p).
  auto p = BigInt::FromDecimal("2305843009213693951");  // Mersenne prime 2^61-1.
  ASSERT_TRUE(p.ok());
  Prng prng(uint64_t{10});
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(&prng, *p - BigInt(2)) + BigInt(1);
    EXPECT_EQ(BigInt::ModExp(a, *p - BigInt(1), *p), BigInt(1));
  }
}

TEST(BigIntTest, GcdAndModInverse) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(31)), BigInt(1));
  Prng prng(uint64_t{11});
  BigInt m = BigInt::GeneratePrime(&prng, 64);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(&prng, m - BigInt(1)) + BigInt(1);
    auto inv = BigInt::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ((a * inv.value()).Mod(m), BigInt(1));
  }
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
}

TEST(BigIntTest, JacobiSymbol) {
  // Known small values: (a/7) for a = 1..6 is 1,1,-1,1,-1,-1.
  int expected[] = {1, 1, -1, 1, -1, -1};
  for (int a = 1; a <= 6; ++a) {
    EXPECT_EQ(BigInt::Jacobi(BigInt(a), BigInt(7)), expected[a - 1]) << a;
  }
  // (a/p) matches Euler's criterion for an odd prime.
  Prng prng(uint64_t{12});
  BigInt p = BigInt::GeneratePrime(&prng, 48);
  BigInt exp = (p - BigInt(1)) >> 1;
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::RandomBelow(&prng, p - BigInt(1)) + BigInt(1);
    BigInt euler = BigInt::ModExp(a, exp, p);
    int expected_j = euler == BigInt(1) ? 1 : -1;
    EXPECT_EQ(BigInt::Jacobi(a, p), expected_j);
  }
}

TEST(BigIntTest, MillerRabinKnownValues) {
  Prng prng(uint64_t{13});
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2), &prng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(3), &prng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(1), &prng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), &prng));   // Carmichael.
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(8911), &prng));  // Carmichael.
  auto mersenne = BigInt::FromDecimal("2305843009213693951");
  ASSERT_TRUE(mersenne.ok());
  EXPECT_TRUE(BigInt::IsProbablePrime(*mersenne, &prng));
  auto composite = BigInt::FromDecimal("2305843009213693953");
  ASSERT_TRUE(composite.ok());
  EXPECT_FALSE(BigInt::IsProbablePrime(*composite, &prng));
}

TEST(BigIntTest, GeneratePrimeRespectsResidue) {
  Prng prng(uint64_t{14});
  BigInt p = BigInt::GeneratePrime(&prng, 128, 3, 8);
  EXPECT_EQ(p.BitLength(), 128u);
  EXPECT_EQ((p % BigInt(8)).Low64(), 3u);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, &prng));

  BigInt q = BigInt::GeneratePrime(&prng, 129, 7, 8);
  EXPECT_EQ(q.BitLength(), 129u);
  EXPECT_EQ((q % BigInt(8)).Low64(), 7u);
}

TEST(BigIntTest, RandomHasExactBitLength) {
  Prng prng(uint64_t{15});
  for (size_t bits : {17, 64, 65, 333}) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(BigInt::Random(&prng, bits).BitLength(), bits);
    }
  }
}

TEST(BigIntTest, RandomBelowIsBelow) {
  Prng prng(uint64_t{16});
  BigInt bound = BigInt::Random(&prng, 100);
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(&prng, bound);
    EXPECT_TRUE(v < bound);
    EXPECT_FALSE(v.is_negative());
  }
}

TEST(BigIntTest, LimbBoundaryPatterns) {
  // Arithmetic across 32-bit limb boundaries: carries, borrows, and the
  // all-ones patterns that break naive implementations.
  auto ones64 = BigInt(uint64_t{0xffffffffffffffffULL});
  EXPECT_EQ((ones64 + BigInt(1)).ToHex(), "10000000000000000");
  EXPECT_EQ(((ones64 + BigInt(1)) - BigInt(1)), ones64);

  auto ones32 = BigInt(uint64_t{0xffffffffULL});
  EXPECT_EQ((ones32 * ones32).ToHex(), "fffffffe00000001");

  // (2^256 - 1)^2 = 2^512 - 2^257 + 1.
  BigInt big = (BigInt(1) << 256) - BigInt(1);
  BigInt sq = big * big;
  EXPECT_EQ(sq, (BigInt(1) << 512) - (BigInt(1) << 257) + BigInt(1));

  // Division by all-ones divisors.
  BigInt q;
  BigInt r;
  BigInt::DivMod(sq, big, &q, &r);
  EXPECT_EQ(q, big);
  EXPECT_EQ(r, BigInt(0));
}

TEST(BigIntTest, ShiftsByLimbMultiples) {
  Prng prng(uint64_t{17});
  BigInt v = BigInt::Random(&prng, 100);
  for (size_t s : {32, 64, 96, 128}) {
    EXPECT_EQ((v << s) >> s, v) << s;
    EXPECT_EQ((v << s).BitLength(), v.BitLength() + s);
  }
  EXPECT_EQ(v >> 200, BigInt(0));
}

TEST(BigIntTest, ToBytesPaddedTruncatesHighBytes) {
  auto v = BigInt::FromHex("0102030405");
  ASSERT_TRUE(v.ok());
  // Exact and padded lengths.
  EXPECT_EQ(util::HexEncode(v->ToBytesPadded(5)), "0102030405");
  EXPECT_EQ(util::HexEncode(v->ToBytesPadded(7)), "00000102030405");
  // Shorter than the value: keeps the low-order bytes (caller beware,
  // used only with known-size values).
  EXPECT_EQ(util::HexEncode(v->ToBytesPadded(3)), "030405");
}

TEST(BigIntTest, ModExpEdgeCases) {
  BigInt m(97);
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(0), m), BigInt(1));  // x^0 = 1.
  EXPECT_EQ(BigInt::ModExp(BigInt(0), BigInt(5), m), BigInt(0));  // 0^x = 0.
  EXPECT_EQ(BigInt::ModExp(BigInt(1), BigInt(1) << 200, m), BigInt(1));
  EXPECT_EQ(BigInt::ModExp(BigInt(96), BigInt(2), m), BigInt(1));  // (-1)^2.
}

TEST(BigIntTest, DecimalParseRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12a4").ok());
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
  EXPECT_TRUE(BigInt::FromHex("abc").ok());  // Odd-length hex is padded.
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  BigInt a(5);
  BigInt z = a - a;
  EXPECT_FALSE(z.is_negative());
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ((-z).ToDecimal(), "0");
}

TEST(BigIntTest, HexRoundTrip) {
  auto v = BigInt::FromHex("deadbeef0123456789abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "deadbeef0123456789abcdef");
  EXPECT_EQ(BigInt(0).ToHex(), "0");
}

// --- 64-bit limb kernel -------------------------------------------------
//
// The kernel stores uint64 limbs but keeps the 32-bit view shim for the
// frozen ref32 differential oracle; these tests pin the shim, the wide
// decimal chunks, and ModU64 against independently computed answers.

TEST(BigIntTest, Limbs32ViewRoundTrips) {
  crypto::Prng prng(uint64_t{8801});
  for (size_t bits : {1, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1024}) {
    BigInt x = BigInt::Random(&prng, bits);
    EXPECT_EQ(BigInt::FromLimbs32(x.Limbs32()), x) << "bits=" << bits;
  }
  EXPECT_TRUE(BigInt::FromLimbs32(BigInt(0).Limbs32()).is_zero());
  // The 32-bit view splits each 64-bit limb little-endian.
  BigInt v(uint64_t{0x0123456789abcdefULL});
  auto limbs32 = v.Limbs32();
  ASSERT_EQ(limbs32.size(), 2u);
  EXPECT_EQ(limbs32[0], 0x89abcdefu);
  EXPECT_EQ(limbs32[1], 0x01234567u);
}

TEST(BigIntTest, ModU64MatchesDivMod) {
  crypto::Prng prng(uint64_t{8802});
  for (uint64_t d : {uint64_t{1}, uint64_t{2}, uint64_t{10},
                     uint64_t{0xffffffffULL}, uint64_t{0x100000000ULL},
                     uint64_t{0xfffffffffffffffbULL}}) {
    for (size_t bits : {16, 64, 65, 512}) {
      BigInt x = BigInt::Random(&prng, bits);
      BigInt expected = x % BigInt(d);
      EXPECT_EQ(BigInt(x.ModU64(d)), expected) << "d=" << d << " bits=" << bits;
      EXPECT_EQ(x.ModU32(999999937u), x.ModU64(999999937u));
    }
  }
}

TEST(BigIntTest, DecimalChunksCrossLimbBoundaries) {
  // Decimal conversion now works in base 10^18 chunks; exercise values
  // straddling chunk and limb boundaries in both directions.
  for (const char* dec : {"999999999999999999", "1000000000000000000",
                          "1000000000000000001", "18446744073709551615",
                          "18446744073709551616",
                          "340282366920938463463374607431768211456"}) {
    auto v = BigInt::FromDecimal(dec);
    ASSERT_TRUE(v.ok()) << dec;
    EXPECT_EQ(v->ToDecimal(), dec);
  }
  crypto::Prng prng(uint64_t{8803});
  for (int i = 0; i < 8; ++i) {
    BigInt x = BigInt::Random(&prng, 700);
    auto back = BigInt::FromDecimal(x.ToDecimal());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, x);
  }
}

}  // namespace
