// Pipelined RPC on a clean link: the sliding window must actually
// overlap round trips (the whole point of the feature), publish the
// occupancy/queue-wait metrics that prove it, and leave the exactly-once
// machinery invisible — zero retransmissions, zero unmatched replies.
// Also covers the CachingFs asynchronous read-ahead and batched prefetch
// paths against a scripted async backend, where delivery timing is under
// test control.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/nfs/cache.h"
#include "src/nfs/memfs.h"
#include "src/obs/metrics.h"
#include "src/rpc/rpc.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;

// --- Raw rpc::Client over a clean simulated link -----------------------------

struct RpcStack {
  sim::Clock clock;
  obs::Registry registry;
  rpc::Dispatcher dispatcher;
  std::unique_ptr<sim::Link> link;
  std::unique_ptr<rpc::LinkTransport> transport;
  std::unique_ptr<rpc::Client> client;

  explicit RpcStack(uint32_t window) : dispatcher(&registry, &clock) {
    dispatcher.RegisterProgram(9, [](uint32_t, const Bytes& args) {
      return util::Result<Bytes>(args);
    });
    link = std::make_unique<sim::Link>(&clock, sim::LinkProfile::Udp(), &dispatcher,
                                       &registry);
    transport = std::make_unique<rpc::LinkTransport>(link.get());
    client = std::make_unique<rpc::Client>(transport.get(), 9, &registry);
    client->set_window(window);
  }

  // Issues `n` echo calls and waits for all replies; returns the elapsed
  // virtual time.
  uint64_t Run(uint32_t n) {
    const uint64_t start = clock.now_ns();
    for (uint32_t i = 0; i < n; ++i) {
      Bytes payload = BytesOf("echo " + std::to_string(i));
      if (client->window() > 1) {
        client->CallAsync(1, payload, [payload](util::Result<Bytes> reply) {
          EXPECT_TRUE(reply.ok());
          if (reply.ok()) {
            EXPECT_EQ(reply.value(), payload);
          }
        });
      } else {
        auto reply = client->Call(1, payload);
        EXPECT_TRUE(reply.ok());
      }
    }
    client->Drain();
    return clock.now_ns() - start;
  }
};

TEST(PipelineTest, WindowEightIsAtLeastTwiceStopAndWait) {
  // The ISSUE acceptance bar: on the default latency profile, a window of
  // 8 must finish the same call batch at least twice as fast as
  // stop-and-wait.  The echo handler is nearly free, so the round trip
  // dominates and the window overlaps it.
  RpcStack stop_and_wait(1);
  RpcStack pipelined(8);
  const uint64_t t1 = stop_and_wait.Run(64);
  const uint64_t t8 = pipelined.Run(64);
  EXPECT_GE(t1, 2 * t8) << "window=8 took " << t8 << "ns vs " << t1
                        << "ns stop-and-wait";
}

TEST(PipelineTest, CleanWindowRunPublishesOccupancyAndQueueWait) {
  RpcStack stack(4);
  constexpr uint32_t kCalls = 64;
  stack.Run(kCalls);
  EXPECT_EQ(stack.client->in_flight(), 0u);
  EXPECT_EQ(stack.client->unmatched_replies(), 0u);
  EXPECT_EQ(stack.link->retransmissions(), 0u);
  EXPECT_EQ(stack.registry.CounterValue("rpc.client.unmatched_replies"), 0u);
  EXPECT_EQ(stack.registry.CounterValue("link.retransmissions"), 0u);

  // Occupancy is sampled once per submitted call; with 64 calls pushed
  // through a 4-slot window the mean occupancy must exceed one call.
  const uint64_t samples = stack.registry.CounterValue("rpc.client.window_samples");
  const uint64_t occupancy_sum =
      stack.registry.CounterValue("rpc.client.window_occupancy_sum");
  ASSERT_EQ(samples, kCalls);
  EXPECT_GT(occupancy_sum, samples);
  EXPECT_LE(occupancy_sum, static_cast<uint64_t>(samples) * 4u);

  // Every call records its wait for a window slot; once the window fills,
  // later calls genuinely waited.
  const obs::Histogram* wait = stack.registry.FindHistogram("rpc.client.queue_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count(), kCalls);
  EXPECT_GT(wait->sum_ns(), 0u);
}

TEST(PipelineTest, WindowIsClampedToMaximum) {
  RpcStack stack(1);
  stack.client->set_window(1'000'000);
  EXPECT_EQ(stack.client->window(), rpc::kMaxSendWindow);
}

// --- CachingFs read-ahead / prefetch against a scripted async backend --------

// Queues every async request; Deliver() answers them from the MemFs in
// FIFO order.  This pins down the cache's re-validation behavior without
// a full simulated channel.
class ScriptedAsyncOps : public nfs::AsyncFileOps {
 public:
  explicit ScriptedAsyncOps(nfs::MemFs* fs) : fs_(fs) {}

  void ReadAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                 uint32_t count, ReadCallback done) override {
    ++reads_;
    pending_.push_back([this, fh, cred, offset, count, done = std::move(done)] {
      Bytes data;
      bool eof = false;
      Stat stat = fs_->Read(fh, cred, offset, count, &data, &eof);
      done(stat, std::move(data), eof);
    });
  }
  void LookupAsync(const FileHandle& dir, const std::string& name,
                   const Credentials& cred, LookupCallback done) override {
    ++lookups_;
    pending_.push_back([this, dir, name, cred, done = std::move(done)] {
      FileHandle fh;
      Fattr attr;
      Stat stat = fs_->Lookup(dir, name, cred, &fh, &attr);
      done(stat, fh, attr);
    });
  }
  void GetAttrAsync(const FileHandle& fh, AttrCallback done) override {
    ++getattrs_;
    pending_.push_back([this, fh, done = std::move(done)] {
      Fattr attr;
      Stat stat = fs_->GetAttr(fh, &attr);
      done(stat, attr);
    });
  }
  void WriteAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                  const Bytes& data, bool stable, WriteCallback done) override {
    ++writes_;
    pending_.push_back([this, fh, cred, offset, data, stable, done = std::move(done)] {
      Fattr attr;
      Stat stat = fs_->Write(fh, cred, offset, data, stable, &attr);
      done(stat, attr, fs_->WriteVerf());
    });
  }

  void Deliver() {
    std::vector<std::function<void()>> batch;
    batch.swap(pending_);
    for (auto& thunk : batch) {
      thunk();
    }
  }

  uint64_t reads() const { return reads_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t getattrs() const { return getattrs_; }
  uint64_t writes() const { return writes_; }

 private:
  nfs::MemFs* fs_;
  std::vector<std::function<void()>> pending_;
  uint64_t reads_ = 0;
  uint64_t lookups_ = 0;
  uint64_t getattrs_ = 0;
  uint64_t writes_ = 0;
};

class ReadAheadTest : public ::testing::Test {
 protected:
  ReadAheadTest()
      : disk_(&clock_, sim::DiskProfile::Ibm18Es()),
        fs_(&clock_, &disk_, nfs::MemFs::Options{}),
        async_ops_(&fs_) {
    nfs::CacheOptions options;
    options.read_ahead_chunks = 2;
    cache_ = std::make_unique<nfs::CachingFs>(&fs_, &clock_, options);
    cache_->set_async_ops(&async_ops_);
  }

  FileHandle CreateFile(const std::string& name, const Bytes& content) {
    FileHandle fh;
    Fattr attr;
    EXPECT_EQ(fs_.Create(fs_.root_handle(), name, cred_, nfs::Sattr{}, &fh, &attr),
              Stat::kOk);
    EXPECT_EQ(fs_.Write(fh, cred_, 0, content, /*stable=*/true, &attr), Stat::kOk);
    return fh;
  }

  sim::Clock clock_;
  sim::Disk disk_;
  nfs::MemFs fs_;
  ScriptedAsyncOps async_ops_;
  std::unique_ptr<nfs::CachingFs> cache_;
  const Credentials cred_ = Credentials::User(0);
};

TEST_F(ReadAheadTest, SequentialMissPrefetchesFollowingChunks) {
  constexpr uint32_t kChunk = 16;
  Bytes content;
  for (int i = 0; i < 64; ++i) {
    content.push_back(static_cast<uint8_t>(i));
  }
  FileHandle fh = CreateFile("seq", content);
  // Read-ahead needs the cached size to know where the file ends, so warm
  // the attribute cache the way a real access pattern (lookup, then read)
  // would.
  Fattr warm;
  ASSERT_EQ(cache_->GetAttr(fh, &warm), Stat::kOk);

  // First chunk misses and schedules read-ahead for the next two.
  Bytes data;
  bool eof = false;
  ASSERT_EQ(cache_->Read(fh, cred_, 0, kChunk, &data, &eof), Stat::kOk);
  EXPECT_EQ(cache_->read_aheads_issued(), 2u);
  EXPECT_EQ(async_ops_.reads(), 2u);
  async_ops_.Deliver();
  EXPECT_EQ(cache_->read_ahead_fills(), 2u);

  // Chunks 2 and 3 are already cached: rewrite the backing file and the
  // cache must still serve the *original* bytes (hits, not refetches).
  const uint64_t hits_before = cache_->data_hits();
  Fattr attr;
  ASSERT_EQ(fs_.Write(fh, cred_, 0, Bytes(64, 0xff), /*stable=*/true, &attr), Stat::kOk);
  for (uint64_t offset : {uint64_t{kChunk}, uint64_t{2 * kChunk}}) {
    ASSERT_EQ(cache_->Read(fh, cred_, offset, kChunk, &data, &eof), Stat::kOk);
    EXPECT_EQ(data, Bytes(content.begin() + static_cast<long>(offset),
                          content.begin() + static_cast<long>(offset + kChunk)));
  }
  EXPECT_EQ(cache_->data_hits(), hits_before + 2);
}

TEST_F(ReadAheadTest, InvalidatedEntryDiscardsInFlightReadAhead) {
  constexpr uint32_t kChunk = 16;
  FileHandle fh = CreateFile("stale", Bytes(64, 0x11));
  Fattr warm;
  ASSERT_EQ(cache_->GetAttr(fh, &warm), Stat::kOk);

  Bytes data;
  bool eof = false;
  ASSERT_EQ(cache_->Read(fh, cred_, 0, kChunk, &data, &eof), Stat::kOk);
  ASSERT_EQ(cache_->read_aheads_issued(), 2u);

  // A server lease callback lands while the read-ahead replies are in
  // flight (paper §3.3): the completion must find the entry gone and
  // drop the bytes, not resurrect a cache the server just invalidated.
  cache_->InvalidateHandle(fh);
  async_ops_.Deliver();
  EXPECT_EQ(cache_->read_ahead_fills(), 0u);
}

TEST_F(ReadAheadTest, PrefetchLookupsWarmsNameCache) {
  FileHandle a = CreateFile("a", BytesOf("aaaa"));
  CreateFile("b", BytesOf("bbbb"));

  cache_->PrefetchLookups(fs_.root_handle(), {"a", "b"}, cred_);
  EXPECT_EQ(cache_->prefetches_issued(), 2u);
  EXPECT_EQ(async_ops_.lookups(), 2u);
  async_ops_.Deliver();

  // Fresh entries are not re-requested.
  cache_->PrefetchLookups(fs_.root_handle(), {"a", "b"}, cred_);
  EXPECT_EQ(async_ops_.lookups(), 2u);

  // The name cache is warm: remove "a" from the backend and the cached
  // binding still resolves (plain-NFS attribute-timeout semantics).
  ASSERT_EQ(fs_.Remove(fs_.root_handle(), "a", cred_), Stat::kOk);
  FileHandle fh;
  Fattr attr;
  EXPECT_EQ(cache_->Lookup(fs_.root_handle(), "a", cred_, &fh, &attr), Stat::kOk);
  EXPECT_EQ(fh, a);
}

TEST_F(ReadAheadTest, PrefetchAttrsSkipsFreshAndWarmsStale) {
  FileHandle fh = CreateFile("attrs", BytesOf("xxxx"));

  cache_->PrefetchAttrs({fh});
  EXPECT_EQ(async_ops_.getattrs(), 1u);
  async_ops_.Deliver();
  // Fresh now: a second prefetch issues nothing.
  cache_->PrefetchAttrs({fh});
  EXPECT_EQ(async_ops_.getattrs(), 1u);

  // Served from cache: the backend's file can grow without the cached
  // attributes noticing until the timeout.
  Fattr attr;
  ASSERT_EQ(fs_.Write(fh, cred_, 0, Bytes(100, 0x33), /*stable=*/true, &attr), Stat::kOk);
  Fattr cached;
  ASSERT_EQ(cache_->GetAttr(fh, &cached), Stat::kOk);
  EXPECT_EQ(cached.size, 4u);
}

// --- SFS channel: clean pipelined mounts ------------------------------------

TEST(SfsPipelineTest, CleanPipelinedWorkloadLeavesNoRetryResidue) {
  for (uint32_t window : {2u, 8u}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    sim::Clock clock;
    sim::CostModel costs;
    auth::AuthServer authserver;
    SfsServer::Options so;
    so.location = "pipeline.example.org";
    so.key_bits = 512;
    sfs::SfsServer server(&clock, &costs, so, &authserver);
    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    ASSERT_EQ(server.fs()->SetAttr(server.fs()->root_handle(), Credentials::User(0),
                                   chmod, &attr),
              Stat::kOk);
    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = 512;
    co.window = window;
    sfs::SfsClient client(&clock, &costs, [&](const std::string&) { return &server; }, co);

    auto mount = client.Mount(server.Path());
    ASSERT_TRUE(mount.ok()) << mount.status().ToString();
    EXPECT_EQ((*mount)->window(), window);

    nfs::FileSystemApi* fs = (*mount)->fs();
    const Credentials cred = Credentials::User(0);
    for (int i = 0; i < 8; ++i) {
      FileHandle fh;
      std::string name = "clean-" + std::to_string(i);
      ASSERT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr),
                Stat::kOk);
      ASSERT_EQ(fs->Write(fh, cred, 0, BytesOf(name), /*stable=*/true, &attr), Stat::kOk);
      Bytes data;
      bool eof = false;
      ASSERT_EQ(fs->Read(fh, cred, 0, 4096, &data, &eof), Stat::kOk);
      EXPECT_EQ(data, BytesOf(name));
    }
    (*mount)->Drain();

    // The retry/dedup machinery stayed invisible on the clean path.
    EXPECT_EQ((*mount)->in_flight(), 0u);
    EXPECT_EQ((*mount)->unmatched_replies(), 0u);
    EXPECT_EQ((*mount)->stale_retries(), 0u);
    EXPECT_EQ((*mount)->link()->retransmissions(), 0u);
    EXPECT_EQ(server.drc_hits(), 0u);
    EXPECT_EQ(server.fs()->creates_applied(), 8u);
  }
}

}  // namespace
