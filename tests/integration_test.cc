// End-to-end integration tests: the new key-management mechanisms wired
// through the whole stack (revocation directories, static read-only
// mounts, proxy agents, ssu), plus failure injection (message loss,
// server death, stale handles).
#include <gtest/gtest.h>

#include <memory>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/readonly/readonly.h"
#include "src/sfs/client.h"
#include "src/sfs/idmap.h"
#include "src/sfs/server.h"
#include "src/sfs/sfskey.h"
#include "src/vfs/vfs.h"
#include "tests/test_keys.h"

namespace {

using agent::Agent;
using nfs::Credentials;
using sfs::SelfCertifyingPath;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;
using vfs::OpenFlags;
using vfs::UserContext;
using vfs::Vfs;

constexpr size_t kKeyBits = 512;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : local_disk_(&clock_, sim::DiskProfile::Ibm18Es()),
        local_fs_(&clock_, &local_disk_, nfs::MemFs::Options{/*fsid=*/9}),
        vfs_(&clock_, &costs_) {
    SfsServer::Options so;
    so.location = "files.example.org";
    so.key_bits = kKeyBits;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, so, &authserver_);

    SfsClient::Options co;
    co.ephemeral_key_bits = kKeyBits;
    client_ = std::make_unique<SfsClient>(
        &clock_, &costs_,
        [this](const std::string& location) -> SfsServer* {
          if (location == "files.example.org" && !server_down_) {
            return server_.get();
          }
          return nullptr;
        },
        co);
    vfs_.MountRoot(&local_fs_, local_fs_.root_handle());
    vfs_.EnableSfs(client_.get());

    user_key_ = test_keys::CachedTestKey(400, kKeyBits);
    auth::PublicUserRecord record;
    record.name = "alice";
    record.public_key = user_key_.public_key().Serialize();
    record.credentials = Credentials::User(1000, {1000});
    EXPECT_TRUE(authserver_.RegisterUser(record).ok());
    alice_agent_ = std::make_unique<Agent>("alice");
    alice_agent_->AddPrivateKey(user_key_);
    alice_ = UserContext::For(1000, alice_agent_.get());
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  sim::Disk local_disk_;
  nfs::MemFs local_fs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
  std::unique_ptr<SfsClient> client_;
  Vfs vfs_;
  crypto::RabinPrivateKey user_key_;
  std::unique_ptr<Agent> alice_agent_;
  UserContext alice_;
  bool server_down_ = false;
};

TEST_F(IntegrationTest, RevocationDirectoryCheckedAtMountTime) {
  // Install a revocation certificate file, named by base-32 HostID, in a
  // local directory the agent watches (the Verisign idiom of §2.6).
  sfs::PathRevokeCert cert =
      sfs::PathRevokeCert::MakeRevocation(server_->private_key(), "files.example.org");
  UserContext admin = UserContext::For(0);
  ASSERT_TRUE(vfs_.Mkdir(admin, "/revocations").ok());
  std::string cert_name = util::Base32Encode(server_->Path().host_id);
  auto f = vfs_.Open(admin, "/revocations/" + cert_name, OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(cert.Serialize()).ok());
  ASSERT_TRUE(f->Close().ok());

  alice_agent_->AddRevocationDir("/revocations");
  auto stat = vfs_.Stat(alice_, server_->Path().FullPath());
  ASSERT_FALSE(stat.ok());
  EXPECT_EQ(stat.status().code(), util::ErrorCode::kSecurityError);
  EXPECT_TRUE(alice_agent_->IsRevoked(server_->Path()));

  // A user without that revocation dir still mounts fine.
  Agent bob_agent("bob");
  UserContext bob = UserContext::For(2000, &bob_agent);
  EXPECT_TRUE(vfs_.Stat(bob, server_->Path().FullPath()).ok());
}

TEST_F(IntegrationTest, GarbageInRevocationDirectoryIsIgnored) {
  UserContext admin = UserContext::For(0);
  ASSERT_TRUE(vfs_.Mkdir(admin, "/revocations").ok());
  std::string cert_name = util::Base32Encode(server_->Path().host_id);
  auto f = vfs_.Open(admin, "/revocations/" + cert_name, OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Write(BytesOf("this is not a certificate")).ok());
  ASSERT_TRUE(f->Close().ok());
  alice_agent_->AddRevocationDir("/revocations");
  // Garbage cannot revoke anyone.
  EXPECT_TRUE(vfs_.Stat(alice_, server_->Path().FullPath()).ok());
}

TEST_F(IntegrationTest, StaticReadOnlyMountUnderSfs) {
  // A verified read-only CA appears at /sfs/verisign for every user.
  auto ca_key = test_keys::CachedTestKey(410, kKeyBits);
  readonly::ImageBuilder builder;
  ASSERT_TRUE(
      builder.AddSymlink(builder.RootDir(), "files", server_->Path().FullPath()).ok());
  ASSERT_TRUE(builder.AddFile(builder.RootDir(), "policy.txt", BytesOf("be excellent")).ok());
  readonly::SignedImage image = builder.Build(ca_key, "ca.example.org", 3);
  readonly::ReplicaServer replica(&clock_, &costs_, image);
  sim::Link link(&clock_, sim::LinkProfile::Tcp(), &replica);
  readonly::ReadOnlyClient ca(&link, SelfCertifyingPath::For("ca.example.org",
                                                             ca_key.public_key()));
  ASSERT_TRUE(ca.Connect().ok());
  vfs_.AddStaticSfsMount("verisign", &ca, ca.root_fh());

  // Read a file off the CA through the VFS.
  auto policy = vfs_.Open(alice_, "/sfs/verisign/policy.txt", OpenFlags::ReadOnly());
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  auto content = policy->Read(100);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(util::StringOf(*content), "be excellent");

  // Follow the CA's symlink to the read-write server.
  auto file = vfs_.Open(alice_, "/sfs/verisign/files/hello", OpenFlags::CreateRw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->Close().ok());
  EXPECT_TRUE(vfs_.Stat(alice_, server_->Path().FullPath() + "/hello").ok());

  // Writes into the read-only mount fail.
  EXPECT_FALSE(vfs_.Open(alice_, "/sfs/verisign/newfile", OpenFlags::CreateRw()).ok());
  EXPECT_FALSE(vfs_.Mkdir(alice_, "/sfs/verisign/dir").ok());
}

TEST_F(IntegrationTest, ProxyAgentLogin) {
  // Alice logs into a gateway machine; the gateway's proxy agent forwards
  // signing requests to her home agent.  She gets her own credentials on
  // the server, and her home agent's audit log shows the operation.
  agent::ProxyAgent proxy("gateway.example.org", alice_agent_.get());
  UserContext alice_remote = UserContext::For(1000, &proxy);

  std::string home = server_->Path().FullPath();
  auto f = vfs_.Open(alice_remote, home + "/via-proxy", OpenFlags::CreateRw(0600));
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE(f->Close().ok());
  auto stat = vfs_.Stat(alice_remote, home + "/via-proxy");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->uid, 1000u);  // Authserver-mapped, via the proxy chain.
  EXPECT_FALSE(proxy.audit_log().empty());
  EXPECT_FALSE(alice_agent_->audit_log().empty());
}

TEST_F(IntegrationTest, SsuKeepsUsersAgent) {
  // Root shell via ssu: uid 0 locally, but /sfs view and keys are the
  // invoking user's.
  alice_agent_->AddLink("work", server_->Path().FullPath());
  UserContext root_shell = UserContext::Ssu(alice_agent_.get());
  EXPECT_TRUE(vfs_.Stat(root_shell, "/sfs/work").ok());
  // A plain root context (no agent) has no such view.
  UserContext bare_root = UserContext::For(0);
  EXPECT_FALSE(vfs_.Stat(bare_root, "/sfs/work").ok());
}

// --- Failure injection -----------------------------------------------------------

class FlakyNetwork : public sim::Interposer {
 public:
  explicit FlakyNetwork(int drop_every) : drop_every_(drop_every) {}
  util::Result<Bytes> OnRequest(Bytes request) override {
    if (++count_ % drop_every_ == 0) {
      return util::Unavailable("packet dropped");
    }
    return request;
  }

 private:
  int drop_every_;
  int count_ = 0;
};

TEST_F(IntegrationTest, DroppedMessagesSurfaceAsIoErrors) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  FlakyNetwork flaky(1);  // Drop everything from now on.
  (*mount)->link()->set_interposer(&flaky);
  nfs::Fattr attr;
  nfs::Stat s = (*mount)->fs()->GetAttr((*mount)->root_fh(), &attr);
  EXPECT_EQ(s, nfs::Stat::kIo);
  EXPECT_EQ((*mount)->raw_client()->last_transport_error().code(),
            util::ErrorCode::kUnavailable);
  // The paper's guarantee: attackers "can do no worse than delay the file
  // system's operation" — a drop is unavailability, never bad data.
}

TEST_F(IntegrationTest, ServerUnreachableAtMountTime) {
  server_down_ = true;
  auto stat = vfs_.Stat(alice_, server_->Path().FullPath());
  ASSERT_FALSE(stat.ok());
  EXPECT_EQ(stat.status().code(), util::ErrorCode::kUnavailable);
  // Once the server is back, the same pathname works — no state to fix.
  server_down_ = false;
  EXPECT_TRUE(vfs_.Stat(alice_, server_->Path().FullPath()).ok());
}

TEST_F(IntegrationTest, StaleHandleAfterServerSideInvalidation) {
  std::string home = server_->Path().FullPath();
  auto f = vfs_.Open(alice_, home + "/doomed", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Close().ok());
  // The server invalidates handles out from under the client (restart
  // with new generation numbers).
  nfs::FileHandle server_fh;
  nfs::Fattr attr;
  Credentials root_creds = Credentials::User(0);
  ASSERT_EQ(server_->fs()->Lookup(server_->fs()->root_handle(), "doomed", root_creds,
                                  &server_fh, &attr),
            nfs::Stat::kOk);
  server_->fs()->InvalidateHandles(server_fh);
  // The client's cached handle now yields stale errors on uncached ops.
  auto reopen = vfs_.Open(alice_, home + "/doomed", OpenFlags::ReadOnly());
  if (reopen.ok()) {
    auto data = reopen->Read(10);
    // Either the open or the read surfaces the staleness.
    EXPECT_FALSE(data.ok());
  }
}

TEST_F(IntegrationTest, AnonymousServerAccessWithoutAuthserver) {
  // A server with no authserver still serves anonymous traffic (public
  // file systems); logins fail gracefully.
  SfsServer::Options so;
  so.location = "public.example.org";
  so.key_bits = kKeyBits;
  so.prng_seed = 77;
  SfsServer public_server(&clock_, &costs_, so, /*authserver=*/nullptr);
  nfs::FileHandle fh;
  nfs::Fattr attr;
  Credentials root_creds = Credentials::User(0);
  nfs::Sattr sattr;
  sattr.mode = 0644;
  ASSERT_EQ(public_server.fs()->Create(public_server.fs()->root_handle(), "index.html",
                                       root_creds, sattr, &fh, &attr),
            nfs::Stat::kOk);

  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.prng_seed = 55;
  SfsClient anon_client(
      &clock_, &costs_, [&](const std::string&) { return &public_server; }, co);
  auto mount = anon_client.Mount(public_server.Path());
  ASSERT_TRUE(mount.ok());
  // Login attempt fails (no authserver), leaving anonymous access.
  util::Status login = (*mount)->Authenticate(
      1000, [this](const Bytes& info, uint32_t seqno) {
        return alice_agent_->SignAuthRequest(0, info, seqno);
      });
  EXPECT_FALSE(login.ok());
  // Note: `fh` above is the server's *internal* handle; clients only ever
  // see encrypted handles, so look the file up through the mount.
  nfs::FileHandle client_fh;
  ASSERT_EQ((*mount)->fs()->Lookup((*mount)->root_fh(), "index.html",
                                   Credentials::User(1000), &client_fh, &attr),
            nfs::Stat::kOk);
  EXPECT_NE(client_fh, fh);  // Handle encryption at work.
  Bytes data;
  bool eof = false;
  EXPECT_EQ((*mount)->fs()->Read(client_fh, Credentials::User(1000), 0, 10, &data, &eof),
            nfs::Stat::kOk);
}

TEST_F(IntegrationTest, ManyServersManyMounts) {
  // A client can hold many independent mounts simultaneously — the
  // "access all servers from any client" property.
  std::vector<std::unique_ptr<SfsServer>> servers;
  std::vector<std::unique_ptr<auth::AuthServer>> auths;
  for (int i = 0; i < 6; ++i) {
    auths.push_back(std::make_unique<auth::AuthServer>());
    SfsServer::Options so;
    so.location = "host" + std::to_string(i) + ".example.org";
    so.key_bits = kKeyBits;
    so.prng_seed = 1000 + static_cast<uint64_t>(i);
    servers.push_back(
        std::make_unique<SfsServer>(&clock_, &costs_, so, auths.back().get()));
  }
  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.prng_seed = 66;
  SfsClient client(
      &clock_, &costs_,
      [&](const std::string& location) -> SfsServer* {
        for (auto& s : servers) {
          if (s->Path().location == location) {
            return s.get();
          }
        }
        return nullptr;
      },
      co);
  Credentials user = Credentials::User(1000, {1000});
  for (auto& s : servers) {
    auto mount = client.Mount(s->Path());
    ASSERT_TRUE(mount.ok());
    nfs::FileHandle fh;
    nfs::Fattr attr;
    ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "tag", user, {}, &fh, &attr),
              nfs::Stat::kOk);
    ASSERT_EQ((*mount)
                  ->fs()
                  ->Write(fh, user, 0, BytesOf(s->Path().location), false, &attr),
              nfs::Stat::kOk);
  }
  EXPECT_EQ(client.mounts_created(), 6u);
  // Each mount still reads its own data back.
  for (auto& s : servers) {
    auto mount = client.Mount(s->Path());
    ASSERT_TRUE(mount.ok());
    nfs::FileHandle fh;
    nfs::Fattr attr;
    ASSERT_EQ((*mount)->fs()->Lookup((*mount)->root_fh(), "tag", user, &fh, &attr),
              nfs::Stat::kOk);
    Bytes data;
    bool eof = false;
    ASSERT_EQ((*mount)->fs()->Read(fh, user, 0, 200, &data, &eof), nfs::Stat::kOk);
    EXPECT_EQ(util::StringOf(data), s->Path().location);
  }
}

TEST_F(IntegrationTest, EphemeralKeyRotationKeepsExistingMounts) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  nfs::Fattr attr;
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), nfs::Stat::kOk);
  client_->RotateEphemeralKey();  // sfscd does this hourly.
  // The established session continues (its keys were derived at mount).
  ASSERT_EQ((*mount)->fs()->GetAttr((*mount)->root_fh(), &attr), nfs::Stat::kOk);
  // And new mounts use the fresh key.
  SfsServer::Options so;
  so.location = "files.example.org";
  so.key_bits = kKeyBits;
  so.prng_seed = 99;
  // (A second identity on the same server provides a distinct path.)
  auto second_key = test_keys::CachedTestKey(500, kKeyBits);
  server_->AddIdentity(second_key, "files.example.org");
  auto mount2 =
      client_->Mount(SelfCertifyingPath::For("files.example.org", second_key.public_key()));
  EXPECT_TRUE(mount2.ok());
}

TEST_F(IntegrationTest, ReadOnlyDialectAutomounts) {
  // The server also hosts a signed read-only image (the certification-
  // authority deployment): its self-certifying pathname automounts
  // through /sfs with the dialect hand-off, no key negotiation.
  auto ca_key = test_keys::CachedTestKey(900, kKeyBits);
  readonly::ImageBuilder builder;
  ASSERT_TRUE(builder.AddFile(builder.RootDir(), "catalog", BytesOf("signed offline")).ok());
  ASSERT_TRUE(
      builder.AddSymlink(builder.RootDir(), "files", server_->Path().FullPath()).ok());
  // The image's Location matches the hosting server so the dialer works.
  readonly::SignedImage image = builder.Build(ca_key, "files.example.org", 1);
  SelfCertifyingPath ro_path = server_->ServeReadOnlyImage(std::move(image));
  EXPECT_NE(ro_path.host_id, server_->Path().host_id);

  // Read through the VFS at the read-only self-certifying pathname.
  auto f = vfs_.Open(alice_, ro_path.FullPath() + "/catalog", OpenFlags::ReadOnly());
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto content = f->Read(100);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(util::StringOf(*content), "signed offline");

  // Mutations are structurally impossible.
  EXPECT_FALSE(vfs_.Open(alice_, ro_path.FullPath() + "/new", OpenFlags::CreateRw()).ok());
  EXPECT_FALSE(vfs_.Mkdir(alice_, ro_path.FullPath() + "/dir").ok());

  // A secure link from the read-only CA to the read-write server works:
  // /sfs/<ro>/files/... lands on the rw mount.
  auto rw = vfs_.Open(alice_, ro_path.FullPath() + "/files/from-ca", OpenFlags::CreateRw());
  ASSERT_TRUE(rw.ok()) << rw.status().ToString();
  ASSERT_TRUE(rw->Close().ok());
  EXPECT_TRUE(vfs_.Stat(alice_, server_->Path().FullPath() + "/from-ca").ok());
}

TEST_F(IntegrationTest, ReadOnlyDialectMountRejectsWrongHostId) {
  crypto::Prng prng(uint64_t{901});
  auto ca_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  readonly::ImageBuilder builder;
  ASSERT_TRUE(builder.AddFile(builder.RootDir(), "x", BytesOf("y")).ok());
  server_->ServeReadOnlyImage(builder.Build(ca_key, "files.example.org", 1));
  // A different key's HostID at the same location must not mount.
  auto other_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  SelfCertifyingPath bogus =
      SelfCertifyingPath::For("files.example.org", other_key.public_key());
  EXPECT_FALSE(vfs_.Stat(alice_, bogus.FullPath()).ok());
}

TEST_F(IntegrationTest, ReadOnlyDialectCachesAggressively) {
  auto ca_key = test_keys::CachedTestKey(902, kKeyBits);
  readonly::ImageBuilder builder;
  ASSERT_TRUE(builder.AddFile(builder.RootDir(), "hot", BytesOf("cached content")).ok());
  SelfCertifyingPath ro_path =
      server_->ServeReadOnlyImage(builder.Build(ca_key, "files.example.org", 1));
  // First read fetches; repeats are free (content-addressed => immutable).
  ASSERT_TRUE(vfs_.Stat(alice_, ro_path.FullPath() + "/hot").ok());
  uint64_t before = clock_.now_ns();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(vfs_.Stat(alice_, ro_path.FullPath() + "/hot").ok());
  }
  uint64_t per_stat = (clock_.now_ns() - before) / 20;
  EXPECT_LT(per_stat, 100'000u);  // Syscall cost only, no wire traffic.
}

TEST_F(IntegrationTest, IdMappingQueries) {
  // libsfs-style queries (paper §3.3): the client asks the server for its
  // notion of uids and names.
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  EXPECT_EQ((*mount)->RemoteUserName(1000).value_or("?"), "alice");
  EXPECT_EQ((*mount)->RemoteUid("alice").value_or(0), 1000u);
  EXPECT_FALSE((*mount)->RemoteUserName(9999).has_value());
  EXPECT_FALSE((*mount)->RemoteUid("nobody-here").has_value());
}

TEST_F(IntegrationTest, PercentConventionFormatting) {
  auto mount = client_->Mount(server_->Path());
  ASSERT_TRUE(mount.ok());
  sfs::RemoteIdLookup remote = [&](uint32_t uid) { return (*mount)->RemoteUserName(uid); };

  sfs::LocalIdTable local;
  local.Add(1000, "alice");  // Same name + uid locally: no percent.
  local.Add(3000, "carol");

  EXPECT_EQ(sfs::FormatRemoteUser(1000, local, remote), "alice");
  // Remote knows uid 1000 as alice, but a local machine where alice has a
  // different uid must show the server-relative form.
  sfs::LocalIdTable other_local;
  other_local.Add(555, "alice");
  EXPECT_EQ(sfs::FormatRemoteUser(1000, other_local, remote), "%alice");
  // Unmapped uid: plain number.
  EXPECT_EQ(sfs::FormatRemoteUser(4242, local, remote), "4242");
}

TEST_F(IntegrationTest, SfsKeyChangePassword) {
  crypto::Prng prng(uint64_t{940});
  ASSERT_TRUE(authserver_
                  .UpdatePrivateRecord("alice",
                                       sfs::MakeSrpRecord("old pw", 2, user_key_, &prng))
                  .ok());
  ASSERT_TRUE(sfs::SrpChangePassword(&clock_, server_.get(), sim::LinkProfile::Tcp(),
                                     "alice", "old pw", "new pw", 2, &prng)
                  .ok());
  // Old password no longer works; new one fetches the same key.
  EXPECT_FALSE(sfs::SrpFetchKey(&clock_, server_.get(), sim::LinkProfile::Tcp(), "alice",
                                "old pw", &prng)
                   .ok());
  auto fetch = sfs::SrpFetchKey(&clock_, server_.get(), sim::LinkProfile::Tcp(), "alice",
                                "new pw", &prng);
  ASSERT_TRUE(fetch.ok());
  Bytes msg = BytesOf("same key after rotation");
  EXPECT_TRUE(user_key_.public_key().Verify(msg, fetch->private_key.Sign(msg)).ok());
  // Changing with a wrong old password fails and changes nothing.
  EXPECT_FALSE(sfs::SrpChangePassword(&clock_, server_.get(), sim::LinkProfile::Tcp(),
                                      "alice", "bogus", "evil pw", 2, &prng)
                   .ok());
  EXPECT_TRUE(sfs::SrpFetchKey(&clock_, server_.get(), sim::LinkProfile::Tcp(), "alice",
                               "new pw", &prng)
                  .ok());
}

TEST_F(IntegrationTest, BootstrapChainOfKeyManagementMechanisms) {
  // The paper's composition claim: "people can bootstrap one key
  // management mechanism using another."  Chain three mechanisms:
  //   1. SRP (password) -> home server's self-certifying path + key;
  //   2. the home server hosts a read-only CA image (dialect hand-off);
  //   3. the CA, added to the agent's certification path, resolves a
  //      third server by short name.
  crypto::Prng prng(uint64_t{950});

  // A third, unrelated server the CA vouches for.
  auth::AuthServer third_auth;
  SfsServer::Options so;
  so.location = "third.example.org";
  so.key_bits = kKeyBits;
  so.prng_seed = 31;
  SfsServer third(&clock_, &costs_, so, &third_auth);

  // Teach the dialer about it.
  // (The fixture dialer only knows files.example.org; wrap mounts through
  // a second client dedicated to this test.)
  SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  co.prng_seed = 32;
  SfsClient client(
      &clock_, &costs_,
      [&](const std::string& location) -> SfsServer* {
        if (location == "files.example.org") {
          return server_.get();
        }
        if (location == "third.example.org") {
          return &third;
        }
        return nullptr;
      },
      co);
  vfs::Vfs vfs(&clock_, &costs_);
  vfs.MountRoot(&local_fs_, local_fs_.root_handle());
  vfs.EnableSfs(&client);

  // Step 1: SRP with only a password.
  ASSERT_TRUE(
      authserver_
          .UpdatePrivateRecord("alice", sfs::MakeSrpRecord("tr4vel", 2, user_key_, &prng))
          .ok());
  auto fetch = sfs::SrpFetchKey(&clock_, server_.get(), sim::LinkProfile::Tcp(), "alice",
                                "tr4vel", &prng);
  ASSERT_TRUE(fetch.ok());

  // Step 2: the home server hosts the CA image with a link to `third`.
  auto ca_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  readonly::ImageBuilder builder;
  ASSERT_TRUE(builder.AddSymlink(builder.RootDir(), "third", third.Path().FullPath()).ok());
  SelfCertifyingPath ca_path =
      server_->ServeReadOnlyImage(builder.Build(ca_key, "files.example.org", 1));

  // Step 3: fresh agent, wired only from the SRP result.
  Agent agent("alice-roaming");
  agent.AddPrivateKey(fetch->private_key);
  agent.AddLink("home", fetch->self_certifying_path);
  agent.AddCertPathDir(ca_path.FullPath());  // CA by its own pathname.
  UserContext alice = UserContext::For(1000, &agent);

  // "/sfs/third" resolves through: agent cert path -> read-only CA
  // (dialect hand-off, signature verified) -> symlink -> third server
  // (key negotiation, HostID certified).
  auto f = vfs.Open(alice, "/sfs/third/proof", OpenFlags::CreateRw());
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE(f->Close().ok());
  auto real = vfs.Realpath(alice, "/sfs/third");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(*real, third.Path().FullPath());
}

TEST_F(IntegrationTest, SfsKeyEndToEndThroughVfs) {
  // Full circle: register with a password, fetch key+path via SRP, wire
  // the agent, and access files through the VFS.
  crypto::Prng prng(uint64_t{600});
  ASSERT_TRUE(
      authserver_.UpdatePrivateRecord("alice", sfs::MakeSrpRecord("pw!", 2, user_key_, &prng))
          .ok());
  auto fetch = sfs::SrpFetchKey(&clock_, server_.get(), sim::LinkProfile::Tcp(), "alice",
                                "pw!", &prng);
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();

  Agent roaming_agent("alice-roaming");
  roaming_agent.AddPrivateKey(fetch->private_key);
  roaming_agent.AddLink("home", fetch->self_certifying_path);
  UserContext roaming = UserContext::For(1000, &roaming_agent);
  auto f = vfs_.Open(roaming, "/sfs/home/roamed-in", OpenFlags::CreateRw(0600));
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_TRUE(f->Close().ok());
  auto stat = vfs_.Stat(roaming, "/sfs/home/roamed-in");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->uid, 1000u);
}

}  // namespace
