// Known-answer tests pinning the crypto primitives to published vectors.
//
// The round-trip tests elsewhere prove the implementations are
// self-consistent; only vectors from the defining documents prove they
// compute the *standard* functions.  That matters here because SFS's
// security argument leans on the published strength of these exact
// algorithms (paper §3.1.3): a self-consistent-but-wrong SHA-1 would
// still pass every protocol test while voiding the HostID and MAC
// guarantees.
//
// Sources: SHA-1 from FIPS 180-1 appendix A/B; HMAC-SHA-1 from RFC 2202;
// RC4 from the Kaukonen–Thayer draft test vectors; Blowfish from
// Schneier's published vector set; SRP-6a from RFC 5054 appendix B.
#include <gtest/gtest.h>

#include <string>

#include "src/crypto/arc4.h"
#include "src/crypto/bignum.h"
#include "src/crypto/blowfish.h"
#include "src/crypto/sha1.h"
#include "src/crypto/srp.h"
#include "src/util/bytes.h"

namespace {

using crypto::Arc4;
using crypto::BigInt;
using crypto::Blowfish;
using crypto::Sha1;
using util::Bytes;

Bytes FromHex(const std::string& hex) {
  auto r = util::HexDecode(hex);
  EXPECT_TRUE(r.ok()) << hex;
  return r.value();
}

// --- SHA-1 (FIPS 180-1) ---------------------------------------------------

TEST(Sha1Kat, Fips180Vectors) {
  EXPECT_EQ(util::HexEncode(crypto::Sha1Digest(std::string(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(util::HexEncode(crypto::Sha1Digest(std::string("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(util::HexEncode(crypto::Sha1Digest(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Kat, MillionAs) {
  // FIPS 180-1's long-message vector, fed incrementally in uneven chunks
  // to also exercise the buffering path.
  Sha1 h;
  const std::string chunk(4093, 'a');  // Prime-ish length straddles blocks.
  size_t remaining = 1'000'000;
  while (remaining > 0) {
    size_t n = remaining < chunk.size() ? remaining : chunk.size();
    h.Update(std::string(chunk, 0, n));
    remaining -= n;
  }
  EXPECT_EQ(util::HexEncode(h.Digest()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Kat, HmacRfc2202) {
  EXPECT_EQ(util::HexEncode(crypto::HmacSha1(Bytes(20, 0x0b),
                                             util::BytesOf("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(util::HexEncode(crypto::HmacSha1(
                util::BytesOf("Jefe"),
                util::BytesOf("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  EXPECT_EQ(util::HexEncode(crypto::HmacSha1(Bytes(20, 0xaa), Bytes(50, 0xdd))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

// --- RC4 ------------------------------------------------------------------

TEST(Arc4Kat, PublishedVectors) {
  // 8-byte (64-bit) keys run the key schedule exactly once, so the
  // classic vectors apply unchanged despite the paper's multi-spin rule
  // for longer keys.
  struct Vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
  };
  const Vector kVectors[] = {
      {"0123456789abcdef", "0123456789abcdef", "75b7878099e0c596"},
      {"0123456789abcdef", "0000000000000000", "7494c2e7104b0879"},
      {"0000000000000000", "0000000000000000", "de188941a3375d3a"},
  };
  for (const auto& v : kVectors) {
    Arc4 cipher(FromHex(v.key));
    Bytes data = FromHex(v.plaintext);
    cipher.Crypt(&data);
    EXPECT_EQ(util::HexEncode(data), v.ciphertext) << "key " << v.key;
  }
}

// --- Blowfish -------------------------------------------------------------

TEST(BlowfishKat, SchneierVectors) {
  // Schneier's published ECB vector set.  These exercise both the
  // pi-digit initial state (computed, not embedded — blowfish.h) and the
  // key schedule across distinct key patterns.
  struct Vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
  };
  const Vector kVectors[] = {
      {"0000000000000000", "0000000000000000", "4ef997456198dd78"},
      {"ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"},
      {"3000000000000000", "1000000000000001", "7d856f9a613063f2"},
      {"1111111111111111", "1111111111111111", "2466dd878b963c9d"},
      {"0123456789abcdef", "1111111111111111", "61f9c3802281b096"},
      {"1111111111111111", "0123456789abcdef", "7d0cc630afda1ec7"},
      {"fedcba9876543210", "0123456789abcdef", "0aceab0fc6a0a28d"},
      {"7ca110454a1a6e57", "01a1d6d039776742", "59c68245eb05282b"},
      {"0131d9619dc1376e", "5cd54ca83def57da", "b1b8cc0b250f09a0"},
  };
  for (const auto& v : kVectors) {
    Blowfish bf(FromHex(v.key));
    Bytes pt = FromHex(v.plaintext);
    uint32_t l = (uint32_t(pt[0]) << 24) | (uint32_t(pt[1]) << 16) |
                 (uint32_t(pt[2]) << 8) | uint32_t(pt[3]);
    uint32_t r = (uint32_t(pt[4]) << 24) | (uint32_t(pt[5]) << 16) |
                 (uint32_t(pt[6]) << 8) | uint32_t(pt[7]);
    bf.EncryptBlock(&l, &r);
    char out[17];
    snprintf(out, sizeof(out), "%08x%08x", l, r);
    EXPECT_EQ(std::string(out), v.ciphertext) << "key " << v.key;
    // And the inverse permutation round-trips.
    bf.DecryptBlock(&l, &r);
    uint32_t pl = (uint32_t(pt[0]) << 24) | (uint32_t(pt[1]) << 16) |
                  (uint32_t(pt[2]) << 8) | uint32_t(pt[3]);
    EXPECT_EQ(l, pl);
  }
}

// --- SRP-6a (RFC 5054 appendix B) -----------------------------------------

// The repo's SrpClient hardens x with eksblowfish (paper §2.5.2), so the
// full protocol cannot match RFC 5054's SHA1-based x.  This test instead
// drives the underlying group arithmetic — the part SRP's security rests
// on — through the RFC's appendix-B exchange with its exact x, a, b, and
// checks every published intermediate value.
TEST(SrpKat, Rfc5054AppendixB) {
  const crypto::SrpParams& params = crypto::DefaultSrpParams();
  // The default group must be the RFC 5054 1024-bit group, g = 2.
  BigInt n_expected =
      BigInt::FromHex(
          "EEAF0AB9ADB38DD69C33F80AFA8FC5E86072618775FF3C0B9EA2314C9C256576"
          "D674DF7496EA81D3383B4813D692C6E0E0D5D8E250B98BE48E495C1D6089DAD1"
          "5DC7D7B46154D6B6CE8EF4AD69B15D4982559B297BCF1885C529F566660E57EC"
          "68EDBC3C05726CC02FD4CBF4976EAA9AFD5138FE8376435B9FC61D2FC0EB06E3")
          .value();
  ASSERT_EQ(params.n, n_expected);
  ASSERT_EQ(params.g, BigInt(2));
  const size_t len = 128;  // |N| in bytes; PAD() width.

  // k = SHA1(N | PAD(g)).
  Sha1 hk;
  hk.Update(params.n.ToBytes());
  hk.Update(params.g.ToBytesPadded(len));
  BigInt k = BigInt::FromBytes(hk.Digest());
  EXPECT_EQ(k, BigInt::FromHex("7556AA045AEF2CDD07ABAF0F665C3E818913186F").value());

  // x = SHA1(s | SHA1(I ":" P)) with I="alice", P="password123".
  Sha1 hip;
  hip.Update(std::string("alice:password123"));
  Sha1 hx;
  hx.Update(FromHex("beb25379d1a8581eb5a727673a2441ee"));
  hx.Update(hip.Digest());
  BigInt x = BigInt::FromBytes(hx.Digest());
  EXPECT_EQ(x, BigInt::FromHex("94B7555AABE9127CC58CCF4993DB6CF84D16C124").value());

  // v = g^x.
  BigInt v = BigInt::ModExp(params.g, x, params.n);
  EXPECT_EQ(
      v,
      BigInt::FromHex(
          "7E273DE8696FFC4F4E337D05B4B375BEB0DDE1569E8FA00A9886D8129BADA1F1"
          "822223CA1A605B530E379BA4729FDC59F105B4787E5186F5C671085A1447B52A"
          "48CF1970B4FB6F8400BBF4CEBFBB168152E08AB5EA53D15C1AFF87B2B9DA6E04"
          "E058AD51CC72BFC9033B564E26480D78E955A5E29E7AB245DB2BE315E2099AFB")
          .value());

  // A = g^a with the RFC's fixed ephemeral a.
  BigInt a = BigInt::FromHex(
                 "60975527035CF2AD1989806F0407210BC81EDC04E2762A56AFD529DDDA2D4393")
                 .value();
  BigInt a_pub = BigInt::ModExp(params.g, a, params.n);
  EXPECT_EQ(
      a_pub,
      BigInt::FromHex(
          "61D5E490F6F1B79547B0704C436F523DD0E560F0C64115BB72557EC44352E890"
          "3211C04692272D8B2D1A5358A2CF1B6E0BFCF99F921530EC8E39356179EAE45E"
          "42BA92AEACED825171E1E8B9AF6D9C03E1327F44BE087EF06530E69F66615261"
          "EEF54073CA11CF5858F0EDFDFE15EFEAB349EF5D76988A3672FAC47B0769447B")
          .value());

  // B = k*v + g^b.
  BigInt b = BigInt::FromHex(
                 "E487CB59D31AC550471E81F00F6928E01DDA08E974A004F49E61F5D105284D20")
                 .value();
  BigInt b_pub = (k * v + BigInt::ModExp(params.g, b, params.n)).Mod(params.n);
  EXPECT_EQ(
      b_pub,
      BigInt::FromHex(
          "BD0C61512C692C0CB6D041FA01BB152D4916A1E77AF46AE105393011BAF38964"
          "DC46A0670DD125B95A981652236F99D9B681CBF87837EC996C6DA04453728610"
          "D0C6DDB58B318885D7D82C7F8DEB75CE7BD4FBAA37089E6F9C6059F388838E7A"
          "00030B331EB76840910440B1B27AAEAEEB4012B7D7665238A8E3FB004B117B58")
          .value());

  // u = SHA1(PAD(A) | PAD(B)).
  Sha1 hu;
  hu.Update(a_pub.ToBytesPadded(len));
  hu.Update(b_pub.ToBytesPadded(len));
  BigInt u = BigInt::FromBytes(hu.Digest());
  EXPECT_EQ(u, BigInt::FromHex("CE38B9593487DA98554ED47D70A7AE5F462EF019").value());

  // Premaster secret, computed both ways.
  BigInt s_expected =
      BigInt::FromHex(
          "B0DC82BABCF30674AE450C0287745E7990A3381F63B387AAF271A10D233861E3"
          "59B48220F7C4693C9AE12B0A6F67809F0876E2D013800D6C41BB59B6D5979B5C"
          "00A172B4A2A5903A0BDCAF8A709585EB2AFAFA8F3499B200210DCC1F10EB3394"
          "3CD67FC88A2F39A4BE5BEC4EC0A3212DC346D7E474B29EDE8A469FFECA686E5A")
          .value();
  // Client: S = (B - k*g^x) ^ (a + u*x).
  BigInt gx = BigInt::ModExp(params.g, x, params.n);
  BigInt client_s =
      BigInt::ModExp((b_pub - k * gx).Mod(params.n), a + u * x, params.n);
  EXPECT_EQ(client_s, s_expected);
  // Server: S = (A * v^u) ^ b.
  BigInt server_s = BigInt::ModExp(
      (a_pub * BigInt::ModExp(v, u, params.n)).Mod(params.n), b, params.n);
  EXPECT_EQ(server_s, s_expected);
}

}  // namespace
