// Property-based tests (parameterized gtest sweeps) on system invariants:
// MemFs vs a reference model under random operation sequences, secure
// channel tamper detection at every position, Rabin over multiple key
// sizes, XDR robustness under truncation/corruption, and strong cache
// coherence between clients under lease callbacks.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/proto.h"
#include "src/sfs/server.h"
#include "src/sfs/session.h"
#include "src/xdr/xdr.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::MemFs;
using nfs::Stat;
using util::Bytes;
using util::BytesOf;

// --- MemFs vs reference model --------------------------------------------------

// A trivial model: flat namespace of files with contents, plus dirs.
struct Model {
  std::map<std::string, Bytes> files;
  std::map<std::string, bool> dirs;  // name -> exists
};

class MemFsModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemFsModelTest, RandomOperationsMatchModel) {
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  MemFs fs(&clock, &disk, MemFs::Options{});
  Credentials user = Credentials::User(1000, {1000});
  crypto::Prng prng(GetParam());

  Model model;
  FileHandle root = fs.root_handle();
  auto name_for = [&](uint64_t i) { return "f" + std::to_string(i % 12); };

  for (int step = 0; step < 400; ++step) {
    uint64_t op = prng.RandomUint64(6);
    std::string name = name_for(prng.RandomUint64(12));
    switch (op) {
      case 0: {  // Create.
        FileHandle fh;
        Fattr attr;
        Stat s = fs.Create(root, name, user, {}, &fh, &attr);
        bool exists = model.files.count(name) != 0 || model.dirs.count(name) != 0;
        EXPECT_EQ(s == Stat::kOk, !exists) << "step " << step;
        if (s == Stat::kOk) {
          model.files[name] = {};
        }
        break;
      }
      case 1: {  // Write at random offset.
        if (model.files.count(name) == 0) {
          break;
        }
        FileHandle fh;
        Fattr attr;
        ASSERT_EQ(fs.Lookup(root, name, user, &fh, &attr), Stat::kOk);
        uint64_t offset = prng.RandomUint64(10000);
        Bytes data = prng.RandomBytes(1 + prng.RandomUint64(5000));
        ASSERT_EQ(fs.Write(fh, user, offset, data, false, &attr), Stat::kOk);
        Bytes& content = model.files[name];
        if (content.size() < offset + data.size()) {
          content.resize(offset + data.size(), 0);
        }
        std::copy(data.begin(), data.end(), content.begin() + static_cast<long>(offset));
        break;
      }
      case 2: {  // Read a random range and compare with the model.
        if (model.files.count(name) == 0) {
          break;
        }
        FileHandle fh;
        Fattr attr;
        ASSERT_EQ(fs.Lookup(root, name, user, &fh, &attr), Stat::kOk);
        const Bytes& content = model.files[name];
        EXPECT_EQ(attr.size, content.size());
        uint64_t offset = prng.RandomUint64(content.size() + 100);
        uint32_t count = static_cast<uint32_t>(1 + prng.RandomUint64(6000));
        Bytes data;
        bool eof = false;
        ASSERT_EQ(fs.Read(fh, user, offset, count, &data, &eof), Stat::kOk);
        uint64_t expected_len =
            offset >= content.size()
                ? 0
                : std::min<uint64_t>(count, content.size() - offset);
        ASSERT_EQ(data.size(), expected_len) << "step " << step;
        for (size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], content[offset + i]) << "step " << step << " byte " << i;
        }
        break;
      }
      case 3: {  // Remove.
        Stat s = fs.Remove(root, name, user);
        if (model.files.count(name) != 0) {
          EXPECT_EQ(s, Stat::kOk);
          model.files.erase(name);
        } else if (model.dirs.count(name) != 0) {
          EXPECT_EQ(s, Stat::kIsDir);
        } else {
          EXPECT_EQ(s, Stat::kNoEnt);
        }
        break;
      }
      case 4: {  // Truncate/grow.
        if (model.files.count(name) == 0) {
          break;
        }
        FileHandle fh;
        Fattr attr;
        ASSERT_EQ(fs.Lookup(root, name, user, &fh, &attr), Stat::kOk);
        nfs::Sattr sattr;
        uint64_t new_size = prng.RandomUint64(12000);
        sattr.size = new_size;
        ASSERT_EQ(fs.SetAttr(fh, user, sattr, &attr), Stat::kOk);
        model.files[name].resize(new_size, 0);
        break;
      }
      case 5: {  // Rename.
        std::string to = name_for(prng.RandomUint64(12));
        Stat s = fs.Rename(root, name, root, to, user);
        bool from_file = model.files.count(name) != 0;
        bool from_dir = model.dirs.count(name) != 0;
        bool to_dir = model.dirs.count(to) != 0;
        if (!from_file && !from_dir) {
          EXPECT_EQ(s, Stat::kNoEnt);
        } else if (name == to) {
          EXPECT_EQ(s, Stat::kOk);
        } else if (from_file && !to_dir) {
          EXPECT_EQ(s, Stat::kOk);
          model.files[to] = model.files[name];
          model.files.erase(name);
        }
        break;
      }
    }
  }

  // Final sweep: every model file matches byte for byte.
  for (const auto& [name, content] : model.files) {
    FileHandle fh;
    Fattr attr;
    ASSERT_EQ(fs.Lookup(root, name, user, &fh, &attr), Stat::kOk) << name;
    Bytes data;
    bool eof = false;
    ASSERT_EQ(fs.Read(fh, user, 0, static_cast<uint32_t>(content.size() + 1), &data, &eof),
              Stat::kOk);
    EXPECT_EQ(data, content) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemFsModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Channel tamper sweep --------------------------------------------------------

class ChannelTamperTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChannelTamperTest, AnyCorruptionAtEveryPositionDetected) {
  size_t msg_len = GetParam();
  crypto::Prng prng(uint64_t{msg_len});
  Bytes key = prng.RandomBytes(20);
  Bytes msg = prng.RandomBytes(msg_len);
  // For each byte position, corrupt and verify rejection.
  Bytes reference_sealed;
  {
    sfs::ChannelCipher sender(key);
    reference_sealed = sender.Seal(msg);
  }
  for (size_t pos = 0; pos < reference_sealed.size(); ++pos) {
    sfs::ChannelCipher receiver(key);
    Bytes bad = reference_sealed;
    bad[pos] ^= static_cast<uint8_t>(1 + prng.RandomUint64(255));
    auto opened = receiver.Open(bad);
    ASSERT_FALSE(opened.ok()) << "undetected corruption at byte " << pos;
  }
  // And the untampered message still opens.
  sfs::ChannelCipher receiver(key);
  auto opened = receiver.Open(reference_sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelTamperTest, ::testing::Values(0, 1, 13, 64, 200));

// --- Rabin key-size sweep ----------------------------------------------------------

class RabinSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RabinSweepTest, SignVerifyEncryptDecryptAcrossKeySizes) {
  crypto::Prng prng(GetParam());
  auto key = crypto::RabinPrivateKey::Generate(&prng, GetParam());
  EXPECT_GE(key.public_key().BitLength(), GetParam() - 2);
  for (int i = 0; i < 5; ++i) {
    Bytes msg = prng.RandomBytes(1 + prng.RandomUint64(100));
    Bytes sig = key.Sign(msg);
    EXPECT_TRUE(key.public_key().Verify(msg, sig).ok());
    Bytes bad = sig;
    bad[2 + prng.RandomUint64(bad.size() - 2)] ^= 1;
    EXPECT_FALSE(key.public_key().Verify(msg, bad).ok());

    Bytes plain = prng.RandomBytes(1 + prng.RandomUint64(key.public_key().MaxPlaintextBytes()));
    auto ct = key.public_key().Encrypt(plain, &prng);
    ASSERT_TRUE(ct.ok());
    auto pt = key.Decrypt(ct.value());
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(pt.value(), plain);
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RabinSweepTest, ::testing::Values(384, 512, 768));

// --- XDR robustness ------------------------------------------------------------------

class XdrFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XdrFuzzTest, RandomCorruptionNeverCrashesDecoder) {
  crypto::Prng prng(GetParam());
  // Build a structured message.
  xdr::Encoder enc;
  enc.PutUint32(static_cast<uint32_t>(prng.RandomUint64(0)));
  enc.PutString("structured");
  enc.PutOpaque(prng.RandomBytes(prng.RandomUint64(64)));
  enc.PutUint64(prng.RandomUint64(0));
  enc.PutBool(true);
  Bytes wire = enc.Take();

  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = wire;
    // Random truncation and/or byte flips.
    if (prng.RandomUint64(2) == 0 && !mutated.empty()) {
      mutated.resize(prng.RandomUint64(mutated.size()));
    }
    for (uint64_t flips = prng.RandomUint64(4); flips > 0 && !mutated.empty(); --flips) {
      mutated[prng.RandomUint64(mutated.size())] ^=
          static_cast<uint8_t>(prng.RandomUint64(256));
    }
    // Decoding must either succeed or fail cleanly — never crash or read
    // out of bounds (exercised under the harness's normal build; the
    // assertions in Decoder are bounds checks).
    xdr::Decoder dec(std::move(mutated));
    auto a = dec.GetUint32();
    if (!a.ok()) {
      continue;
    }
    auto b = dec.GetString();
    if (!b.ok()) {
      continue;
    }
    auto c = dec.GetOpaque();
    if (!c.ok()) {
      continue;
    }
    auto d = dec.GetUint64();
    if (!d.ok()) {
      continue;
    }
    (void)dec.GetBool();
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, XdrFuzzTest, ::testing::Values(100, 200, 300));

// --- Pipelined framing robustness ----------------------------------------------------

#include "src/rpc/rpc.h"

// With a sliding send window, the server sees call frames out of order
// and redelivered, and the client sees reply frames out of order and
// corrupted.  Neither side may crash or violate at-most-once, whatever
// the stream looks like.
class PipelinedFramingFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Fisher-Yates using the test's PRNG, so every seed sweeps a different
  // delivery order.
  template <typename T>
  static void Shuffle(std::vector<T>* v, crypto::Prng* prng) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[prng->RandomUint64(i)]);
    }
  }

  static Bytes CallFrame(uint32_t xid, uint32_t seqno, uint32_t prog, uint32_t proc,
                         const Bytes& args) {
    xdr::Encoder enc;
    enc.PutUint32(xid);
    enc.PutUint32(seqno);
    enc.PutUint32(prog);
    enc.PutUint32(proc);
    enc.PutOpaque(args);
    return enc.Take();
  }

  static Bytes Mutate(Bytes frame, crypto::Prng* prng) {
    if (prng->RandomUint64(2) == 0 && !frame.empty()) {
      frame.resize(prng->RandomUint64(frame.size()));
    }
    for (uint64_t flips = prng->RandomUint64(4); flips > 0 && !frame.empty(); --flips) {
      frame[prng->RandomUint64(frame.size())] ^=
          static_cast<uint8_t>(prng->RandomUint64(256));
    }
    return frame;
  }
};

TEST_P(PipelinedFramingFuzzTest, ReorderedAndCorruptCallStreamsKeepAtMostOnce) {
  crypto::Prng prng(GetParam());
  sim::Clock clock;
  obs::Registry registry;
  rpc::Dispatcher dispatcher(&registry, &clock);
  constexpr uint32_t kProg = 77;
  std::map<std::string, int> executions;
  dispatcher.RegisterProgram(kProg, [&](uint32_t, const Bytes& args) -> util::Result<Bytes> {
    ++executions[util::StringOf(args)];
    return args;
  });

  // A window's worth of valid call frames, as the pipelined client seals
  // them: consecutive seqnos, distinct payloads.
  constexpr uint32_t kBatch = 16;
  std::vector<Bytes> frames;
  std::vector<Bytes> replies(kBatch);
  for (uint32_t i = 0; i < kBatch; ++i) {
    frames.push_back(
        CallFrame(/*xid=*/100 + i, /*seqno=*/1 + i, kProg, /*proc=*/1,
                  BytesOf("call-" + std::to_string(i))));
  }

  // Out-of-order first delivery: every frame accepted, every payload
  // executed exactly once.
  std::vector<uint32_t> order(kBatch);
  for (uint32_t i = 0; i < kBatch; ++i) {
    order[i] = i;
  }
  Shuffle(&order, &prng);
  for (uint32_t i : order) {
    auto reply = dispatcher.Handle(frames[i]);
    ASSERT_TRUE(reply.ok()) << "frame " << i << ": " << reply.status().message();
    replies[i] = reply.value();
  }
  EXPECT_EQ(executions.size(), kBatch);
  for (const auto& [payload, count] : executions) {
    EXPECT_EQ(count, 1) << payload;
  }

  // Shuffled redelivery (retransmitted copies): the DRC replays each
  // reply byte-identical, with no re-execution.
  Shuffle(&order, &prng);
  for (uint32_t i : order) {
    auto replay = dispatcher.Handle(frames[i]);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value(), replies[i]) << "DRC replay differs for frame " << i;
  }
  for (const auto& [payload, count] : executions) {
    EXPECT_EQ(count, 1) << "redelivery re-executed " << payload;
  }

  // Corruption sweep: truncated/flipped frames must decode cleanly or
  // fail cleanly — never crash the dispatcher.  The replies it produced
  // get the same treatment through the client's reply-decode sequence.
  for (int trial = 0; trial < 200; ++trial) {
    Bytes call = Mutate(frames[prng.RandomUint64(kBatch)], &prng);
    (void)dispatcher.Handle(call);

    xdr::Decoder dec(Mutate(replies[prng.RandomUint64(kBatch)], &prng));
    auto xid = dec.GetUint32();
    auto status = dec.GetUint32();
    if (!xid.ok() || !status.ok()) {
      continue;
    }
    if (status.value() == 0) {
      (void)dec.GetOpaque();
    } else {
      auto code = dec.GetUint32();
      if (code.ok()) {
        (void)dec.GetString();
      }
    }
  }
  SUCCEED();
}

TEST_P(PipelinedFramingFuzzTest, ReorderedAndCorruptReplyStreamsDecodeOrFailCleanly) {
  crypto::Prng prng(GetParam());
  Bytes key = prng.RandomBytes(20);

  // Seal a window of replies the way the pipelined server connection
  // does: positional channel cipher, then a cleartext seqno echo, then
  // the {type, payload} connection frame.
  constexpr uint32_t kBatch = 12;
  std::vector<Bytes> messages;
  std::vector<Bytes> wire_frames;
  {
    sfs::ChannelCipher sender(key);
    for (uint32_t i = 0; i < kBatch; ++i) {
      messages.push_back(prng.RandomBytes(1 + prng.RandomUint64(400)));
      xdr::Encoder inner;
      inner.PutUint32(1 + i);  // Echoed wire seqno.
      inner.PutOpaque(sender.Seal(messages.back()));
      xdr::Encoder outer;
      outer.PutUint32(sfs::kMsgEncrypted);
      outer.PutOpaque(inner.Take());
      wire_frames.push_back(outer.Take());
    }
  }

  // Decode one delivery exactly as the client's pipelined path does:
  // unframe, read the seqno echo, extract the sealed body.  Returns
  // false for any malformed stage.
  auto decode = [](const Bytes& delivery, uint32_t* seqno, Bytes* sealed) {
    xdr::Decoder outer(delivery);
    auto type = outer.GetUint32();
    auto payload = outer.GetOpaque();
    if (!type.ok() || !payload.ok() || type.value() != sfs::kMsgEncrypted ||
        !outer.AtEnd()) {
      return false;
    }
    xdr::Decoder inner(payload.value());
    auto echo = inner.GetUint32();
    auto body = inner.GetOpaque();
    if (!echo.ok() || !body.ok() || !inner.AtEnd()) {
      return false;
    }
    *seqno = echo.value();
    *sealed = body.value();
    return true;
  };

  // Reordered (but intact) delivery: the reorder buffer admits frames in
  // any arrival order, and in-seqno-order opening recovers every message
  // against the positional keystream.
  std::vector<uint32_t> order(kBatch);
  for (uint32_t i = 0; i < kBatch; ++i) {
    order[i] = i;
  }
  Shuffle(&order, &prng);
  {
    sfs::ChannelCipher receiver(key);
    std::map<uint32_t, Bytes> reorder;
    uint32_t next_open = 1;
    uint32_t opened = 0;
    for (uint32_t i : order) {
      uint32_t seqno = 0;
      Bytes sealed;
      ASSERT_TRUE(decode(wire_frames[i], &seqno, &sealed)) << "frame " << i;
      ASSERT_EQ(seqno, 1 + i);
      reorder[seqno] = sealed;
      for (auto it = reorder.find(next_open); it != reorder.end();
           it = reorder.find(next_open)) {
        auto open = receiver.Open(it->second);
        ASSERT_TRUE(open.ok()) << "seqno " << next_open;
        EXPECT_EQ(open.value(), messages[next_open - 1]);
        reorder.erase(it);
        ++next_open;
        ++opened;
      }
    }
    EXPECT_EQ(opened, kBatch);
  }

  // Corruption sweep on the first frame (the only one a fresh receiver's
  // keystream position can open): every stage either rejects cleanly or,
  // if the sealed body survived intact, opens to exactly the original
  // message.  Tampered bodies must never open.
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = Mutate(wire_frames[0], &prng);
    uint32_t seqno = 0;
    Bytes sealed;
    if (!decode(mutated, &seqno, &sealed)) {
      continue;  // Malformed framing: discarded, counted as unmatched.
    }
    if (seqno != 1) {
      continue;  // No outstanding call for this seqno: discarded.
    }
    sfs::ChannelCipher receiver(key);
    auto open = receiver.Open(sealed);
    if (open.ok()) {
      EXPECT_EQ(open.value(), messages[0]) << "tampered frame opened to wrong bytes";
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedFramingFuzzTest,
                         ::testing::Values(41, 42, 43, 44));

// --- Cache transparency ----------------------------------------------------------------

#include "src/nfs/cache.h"

class CacheTransparencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheTransparencyTest, CachedViewMatchesBackendExactly) {
  // Single-writer invariant: with one client, every read through the
  // caching layer returns exactly what an uncached read would — caching
  // must be semantically invisible.
  sim::Clock clock;
  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  MemFs fs(&clock, &disk, MemFs::Options{});
  nfs::CacheOptions opts;
  opts.use_leases = true;
  nfs::CachingFs cached(&fs, &clock, opts);
  Credentials user = Credentials::User(1000, {1000});
  crypto::Prng prng(GetParam());

  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(cached.Create(fs.root_handle(), "f", user, {}, &fh, &attr), Stat::kOk);

  for (int step = 0; step < 300; ++step) {
    uint64_t op = prng.RandomUint64(4);
    switch (op) {
      case 0: {  // Write through the cache.
        uint64_t offset = prng.RandomUint64(20000);
        ASSERT_EQ(cached.Write(fh, user, offset, prng.RandomBytes(1 + prng.RandomUint64(3000)),
                               false, &attr),
                  Stat::kOk);
        break;
      }
      case 1: {  // Truncate through the cache.
        nfs::Sattr sattr;
        sattr.size = prng.RandomUint64(25000);
        ASSERT_EQ(cached.SetAttr(fh, user, sattr, &attr), Stat::kOk);
        break;
      }
      case 2: {  // Compare a ranged read, cached vs direct.
        uint64_t offset = prng.RandomUint64(25000);
        uint32_t count = static_cast<uint32_t>(1 + prng.RandomUint64(4000));
        Bytes via_cache;
        Bytes direct;
        bool eof1 = false;
        bool eof2 = false;
        ASSERT_EQ(cached.Read(fh, user, offset, count, &via_cache, &eof1), Stat::kOk);
        ASSERT_EQ(fs.Read(fh, user, offset, count, &direct, &eof2), Stat::kOk);
        ASSERT_EQ(via_cache, direct) << "step " << step;
        ASSERT_EQ(eof1, eof2) << "step " << step;
        break;
      }
      case 3: {  // Compare attributes (size is the load-bearing field).
        Fattr via_cache;
        Fattr direct;
        ASSERT_EQ(cached.GetAttr(fh, &via_cache), Stat::kOk);
        ASSERT_EQ(fs.GetAttr(fh, &direct), Stat::kOk);
        ASSERT_EQ(via_cache.size, direct.size) << "step " << step;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheTransparencyTest, ::testing::Values(11, 22, 33));

// --- Cross-client coherence under lease callbacks -------------------------------------

class CoherenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr size_t kKeyBits = 512;
};

TEST_P(CoherenceTest, TwoClientsAlwaysSeeServerTruth) {
  // Invariant: with lease callbacks, any client's GetAttr/Read observes
  // the result of every previously completed mutation by either client
  // (strong coherence, which the paper's design approximates by
  // invalidating before replying to the writer is not required — our
  // callbacks are synchronous in-process, hence exact).
  sim::Clock clock;
  sim::CostModel costs;
  auth::AuthServer authserver;
  sfs::SfsServer::Options so;
  so.location = "coherence.test";
  so.key_bits = kKeyBits;
  sfs::SfsServer server(&clock, &costs, so, &authserver);

  auto make_client = [&](uint64_t seed) {
    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = kKeyBits;
    co.prng_seed = seed;
    return std::make_unique<sfs::SfsClient>(
        &clock, &costs, [&](const std::string&) { return &server; }, co);
  };
  auto client_a = make_client(1);
  auto client_b = make_client(2);
  auto mount_a = client_a->Mount(server.Path());
  auto mount_b = client_b->Mount(server.Path());
  ASSERT_TRUE(mount_a.ok() && mount_b.ok());
  sfs::SfsClient::MountPoint* mounts[2] = {mount_a.value(), mount_b.value()};

  Credentials user = Credentials::User(1000, {1000});
  crypto::Prng prng(GetParam());

  // One shared file.
  FileHandle fh;
  Fattr attr;
  ASSERT_EQ(mounts[0]->fs()->Create(mounts[0]->root_fh(), "shared", user, {}, &fh, &attr),
            Stat::kOk);
  Bytes truth;  // What the file must contain.

  for (int step = 0; step < 120; ++step) {
    int actor = static_cast<int>(prng.RandomUint64(2));
    nfs::FileSystemApi* fs = mounts[actor]->fs();
    if (prng.RandomUint64(2) == 0) {
      // Write: extend or overwrite.
      uint64_t offset = prng.RandomUint64(truth.size() + 1);
      Bytes data = prng.RandomBytes(1 + prng.RandomUint64(2000));
      ASSERT_EQ(fs->Write(fh, user, offset, data, false, &attr), Stat::kOk);
      if (truth.size() < offset + data.size()) {
        truth.resize(offset + data.size(), 0);
      }
      std::copy(data.begin(), data.end(), truth.begin() + static_cast<long>(offset));
    } else {
      // The *other* client validates size and a random range.
      nfs::FileSystemApi* other = mounts[1 - actor]->fs();
      Fattr check;
      ASSERT_EQ(other->GetAttr(fh, &check), Stat::kOk);
      ASSERT_EQ(check.size, truth.size()) << "step " << step;
      if (!truth.empty()) {
        uint64_t offset = prng.RandomUint64(truth.size());
        uint32_t count = static_cast<uint32_t>(1 + prng.RandomUint64(1000));
        Bytes data;
        bool eof = false;
        ASSERT_EQ(other->Read(fh, user, offset, count, &data, &eof), Stat::kOk);
        size_t expected = std::min<size_t>(count, truth.size() - offset);
        ASSERT_EQ(data.size(), expected);
        for (size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], truth[offset + i]) << "step " << step;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceTest, ::testing::Values(7, 77, 777));

// --- The paper's §2.1.2 guarantee, as a property ----------------------------------

// Corrupts one randomly chosen byte in every message starting at the k-th
// (both directions), with a per-message coin flip.
class RandomCorruptor : public sim::Interposer {
 public:
  RandomCorruptor(uint64_t seed, int start_at) : prng_(seed), start_at_(start_at) {}

  util::Result<Bytes> OnRequest(Bytes request) override { return MaybeCorrupt(request); }
  util::Result<Bytes> OnResponse(Bytes response) override { return MaybeCorrupt(response); }

 private:
  util::Result<Bytes> MaybeCorrupt(Bytes msg) {
    if (count_++ < start_at_ || msg.empty() || prng_.RandomUint64(2) == 0) {
      return msg;
    }
    msg[prng_.RandomUint64(msg.size())] ^= static_cast<uint8_t>(1 + prng_.RandomUint64(255));
    return msg;
  }

  crypto::Prng prng_;
  int start_at_;
  int count_ = 0;
};

class AdversaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdversaryPropertyTest, ReadsReturnCorrectDataOrFailClosed) {
  // "Under these assumptions, SFS ensures that attackers can do no worse
  // than delay the file system's operation" — concretely: once files are
  // written, no amount of traffic corruption can make a read that
  // *succeeds* return the wrong bytes.
  sim::Clock clock;
  sim::CostModel costs;
  auth::AuthServer authserver;
  sfs::SfsServer::Options so;
  so.location = "victim.example.org";
  so.key_bits = 512;
  sfs::SfsServer server(&clock, &costs, so, &authserver);

  sfs::SfsClient::Options co;
  co.ephemeral_key_bits = 512;
  co.prng_seed = GetParam();
  sfs::SfsClient client(&clock, &costs, [&](const std::string&) { return &server; }, co);

  // Clean phase: mount and write known content.
  auto mount = client.Mount(server.Path());
  ASSERT_TRUE(mount.ok());
  Credentials user = Credentials::User(1000, {1000});
  crypto::Prng content_prng(uint64_t{123});  // Same content for every seed.
  std::vector<std::pair<FileHandle, Bytes>> files;
  for (int i = 0; i < 4; ++i) {
    FileHandle fh;
    Fattr attr;
    Bytes content = content_prng.RandomBytes(2000 + 1000 * static_cast<size_t>(i));
    ASSERT_EQ((*mount)->fs()->Create((*mount)->root_fh(), "f" + std::to_string(i), user, {},
                                     &fh, &attr),
              Stat::kOk);
    ASSERT_EQ((*mount)->fs()->Write(fh, user, 0, content, false, &attr), Stat::kOk);
    files.emplace_back(fh, std::move(content));
  }
  (*mount)->cache()->InvalidateAll();  // Force reads onto the wire.

  // Attack phase: corrupt traffic with seed-dependent timing.
  RandomCorruptor corruptor(GetParam(), static_cast<int>(GetParam() % 7));
  (*mount)->link()->set_interposer(&corruptor);

  int successes = 0;
  int failures = 0;
  for (int round = 0; round < 50; ++round) {
    const auto& [fh, expected] = files[static_cast<size_t>(round) % files.size()];
    uint64_t offset = (static_cast<uint64_t>(round) * 397) % expected.size();
    uint32_t count = 512;
    Bytes data;
    bool eof = false;
    Stat s = (*mount)->fs()->Read(fh, user, offset, count, &data, &eof);
    if (s == Stat::kOk) {
      ++successes;
      size_t len = std::min<size_t>(count, expected.size() - offset);
      ASSERT_EQ(data.size(), len) << "round " << round;
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(data[i], expected[offset + i])
            << "WRONG DATA round " << round << " byte " << i;
      }
    } else {
      ++failures;
    }
  }
  // The attacker certainly caused failures; it must never have caused
  // wrong data (the ASSERTs above).
  EXPECT_GT(failures, 0);
  (void)successes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
