// Tests for the read-only dialect: offline signing, untrusted replicas,
// tamper detection, and rollback protection.
#include <gtest/gtest.h>

#include <memory>

#include "src/crypto/prng.h"
#include "src/obs/metrics.h"
#include "src/readonly/readonly.h"
#include "tests/test_keys.h"

namespace {

using readonly::ImageBuilder;
using readonly::ReadOnlyClient;
using readonly::ReplicaServer;
using readonly::SignedImage;
using sfs::SelfCertifyingPath;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

class ReadOnlyTest : public ::testing::Test {
 protected:
  ReadOnlyTest() {
    key_ = test_keys::CachedTestKey(51, kKeyBits);
    path_ = SelfCertifyingPath::For("ca.example.org", key_.public_key());

    ImageBuilder builder;
    auto certs = builder.AddDir(builder.RootDir(), "certs");
    EXPECT_TRUE(builder.AddSymlink(certs, "mit", "/sfs/mit.example.org:xxxx").ok());
    EXPECT_TRUE(builder.AddFile(builder.RootDir(), "README", BytesOf("public data")).ok());
    big_content_ = crypto::Prng(uint64_t{52}).RandomBytes(3 * readonly::kChunkSize + 100);
    EXPECT_TRUE(builder.AddFile(builder.RootDir(), "big.bin", big_content_).ok());
    image_ = builder.Build(key_, "ca.example.org", /*version=*/1);

    server_ = std::make_unique<ReplicaServer>(&clock_, &costs_, image_);
    link_ = std::make_unique<sim::Link>(&clock_, sim::LinkProfile::Tcp(), server_.get());
    client_ = std::make_unique<ReadOnlyClient>(link_.get(), path_);
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  crypto::RabinPrivateKey key_;
  SelfCertifyingPath path_;
  Bytes big_content_;
  SignedImage image_;
  std::unique_ptr<ReplicaServer> server_;
  std::unique_ptr<sim::Link> link_;
  std::unique_ptr<ReadOnlyClient> client_;
  nfs::Credentials anon_ = nfs::Credentials::Anonymous();
};

TEST_F(ReadOnlyTest, ConnectVerifiesSignature) {
  EXPECT_TRUE(client_->Connect().ok());
  EXPECT_EQ(client_->version(), 1u);
}

TEST_F(ReadOnlyTest, ConnectRejectsWrongHostId) {
  auto other = test_keys::CachedTestKey(53, kKeyBits);
  SelfCertifyingPath wrong = SelfCertifyingPath::For("ca.example.org", other.public_key());
  ReadOnlyClient client(link_.get(), wrong);
  EXPECT_EQ(client.Connect().code(), util::ErrorCode::kSecurityError);
}

TEST_F(ReadOnlyTest, ReadFileVerified) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(client_->Lookup(client_->root_fh(), "README", anon_, &fh, &attr), nfs::Stat::kOk);
  EXPECT_EQ(attr.size, 11u);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(client_->Read(fh, anon_, 0, 100, &data, &eof), nfs::Stat::kOk);
  EXPECT_EQ(util::StringOf(data), "public data");
}

TEST_F(ReadOnlyTest, MultiChunkFileReadsCorrectly) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(client_->Lookup(client_->root_fh(), "big.bin", anon_, &fh, &attr), nfs::Stat::kOk);
  EXPECT_EQ(attr.size, big_content_.size());
  // Sequential full read.
  Bytes assembled;
  uint64_t offset = 0;
  bool eof = false;
  while (!eof) {
    Bytes data;
    ASSERT_EQ(client_->Read(fh, anon_, offset, 8192, &data, &eof), nfs::Stat::kOk);
    util::Append(&assembled, data);
    offset += data.size();
  }
  EXPECT_EQ(assembled, big_content_);
  // Random mid-file read crossing a chunk boundary.
  Bytes data;
  ASSERT_EQ(client_->Read(fh, anon_, readonly::kChunkSize - 10, 20, &data, &eof),
            nfs::Stat::kOk);
  Bytes expected(big_content_.begin() + static_cast<long>(readonly::kChunkSize - 10),
                 big_content_.begin() + static_cast<long>(readonly::kChunkSize + 10));
  EXPECT_EQ(data, expected);
}

TEST_F(ReadOnlyTest, DirectoryAndSymlinkNodes) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle certs;
  nfs::Fattr attr;
  ASSERT_EQ(client_->Lookup(client_->root_fh(), "certs", anon_, &certs, &attr), nfs::Stat::kOk);
  EXPECT_EQ(attr.type, nfs::FileType::kDirectory);
  nfs::FileHandle link;
  ASSERT_EQ(client_->Lookup(certs, "mit", anon_, &link, &attr), nfs::Stat::kOk);
  EXPECT_EQ(attr.type, nfs::FileType::kSymlink);
  std::string target;
  ASSERT_EQ(client_->ReadLink(link, anon_, &target), nfs::Stat::kOk);
  EXPECT_EQ(target, "/sfs/mit.example.org:xxxx");
  std::vector<nfs::DirEntry> entries;
  bool eof = false;
  ASSERT_EQ(client_->ReadDir(client_->root_fh(), anon_, 0, 10, &entries, &eof), nfs::Stat::kOk);
  EXPECT_EQ(entries.size(), 3u);
}

TEST_F(ReadOnlyTest, TamperedContentDetected) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(client_->Lookup(client_->root_fh(), "README", anon_, &fh, &attr), nfs::Stat::kOk);
  // The replica corrupts the file's chunk; reading must fail, not return
  // bad data.  (fh is the file node; find its chunk via a fresh client so
  // the cache does not mask the corruption.)
  for (auto& [hash_str, blob] : server_->image().nodes) {
    (void)blob;
  }
  // Corrupt every node on the replica; a fresh client must detect it.
  SignedImage corrupted = image_;
  for (auto& [hash_str, blob] : corrupted.nodes) {
    if (!blob.empty()) {
      blob[0] ^= 0x01;
    }
  }
  server_->ReplaceImage(corrupted);
  ReadOnlyClient fresh(link_.get(), path_);
  // Root record still verifies (signature covers the root hash value),
  // but the root node itself no longer matches its hash.
  ASSERT_TRUE(fresh.Connect().ok());
  nfs::FileHandle out;
  EXPECT_EQ(fresh.Lookup(fresh.root_fh(), "README", anon_, &out, &attr), nfs::Stat::kStale);
}

TEST_F(ReadOnlyTest, ReplicaCannotForgeNewImage) {
  // The replica builds its own image (it has no private key) and tries to
  // serve it with the old signature.
  ImageBuilder evil;
  EXPECT_TRUE(evil.AddFile(evil.RootDir(), "README", BytesOf("evil data")).ok());
  auto evil_key = test_keys::CachedTestKey(54, kKeyBits);
  SignedImage forged = evil.Build(evil_key, "ca.example.org", /*version=*/2);
  forged.public_key = image_.public_key;  // Claim the real key...
  forged.signature = image_.signature;    // ...with the old signature.
  server_->ReplaceImage(forged);
  ReadOnlyClient fresh(link_.get(), path_);
  EXPECT_EQ(fresh.Connect().code(), util::ErrorCode::kSecurityError);
}

TEST_F(ReadOnlyTest, RollbackDetected) {
  // Publisher releases version 2; a replica that then serves version 1
  // again is detected by a client that saw version 2.
  ImageBuilder v2;
  EXPECT_TRUE(v2.AddFile(v2.RootDir(), "README", BytesOf("version two")).ok());
  SignedImage image_v2 = v2.Build(key_, "ca.example.org", /*version=*/2);
  server_->ReplaceImage(image_v2);
  ASSERT_TRUE(client_->Connect().ok());
  EXPECT_EQ(client_->version(), 2u);
  server_->ReplaceImage(image_);  // Roll back to v1.
  EXPECT_EQ(client_->Connect().code(), util::ErrorCode::kSecurityError);
}

TEST_F(ReadOnlyTest, MutationsAreRejected) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle out;
  nfs::Fattr attr;
  EXPECT_EQ(client_->Create(client_->root_fh(), "new", anon_, {}, &out, &attr),
            nfs::Stat::kReadOnlyFs);
  EXPECT_EQ(client_->Remove(client_->root_fh(), "README", anon_), nfs::Stat::kReadOnlyFs);
  EXPECT_EQ(client_->Write(client_->root_fh(), anon_, 0, BytesOf("x"), false, &attr),
            nfs::Stat::kReadOnlyFs);
}

TEST_F(ReadOnlyTest, VerifiedNodesAreCached) {
  ASSERT_TRUE(client_->Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(client_->Lookup(client_->root_fh(), "README", anon_, &fh, &attr), nfs::Stat::kOk);
  uint64_t fetched = client_->nodes_fetched();
  // Repeat lookups hit the verified cache: no new fetches.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(client_->Lookup(client_->root_fh(), "README", anon_, &fh, &attr), nfs::Stat::kOk);
  }
  EXPECT_EQ(client_->nodes_fetched(), fetched);
}

TEST_F(ReadOnlyTest, VerifiedCacheIsBoundedByLru) {
  // A replica serving a huge image must not let the verified-node cache
  // grow without bound.  Cap it at two nodes and stream the multi-chunk
  // file: evictions happen, the cache stays at its cap, and every read
  // still verifies correctly after re-fetching evicted nodes.
  obs::Registry registry;
  ReadOnlyClient small(link_.get(), path_, /*cache_capacity=*/2, &registry);
  ASSERT_TRUE(small.Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(small.Lookup(small.root_fh(), "big.bin", anon_, &fh, &attr), nfs::Stat::kOk);
  Bytes assembled;
  uint64_t offset = 0;
  bool eof = false;
  while (!eof) {
    Bytes data;
    ASSERT_EQ(small.Read(fh, anon_, offset, 8192, &data, &eof), nfs::Stat::kOk);
    util::Append(&assembled, data);
    offset += data.size();
  }
  EXPECT_EQ(assembled, big_content_);
  EXPECT_LE(small.cache_size(), 2u);
  EXPECT_GT(small.cache_evictions(), 0u);
  EXPECT_EQ(registry.CounterValue("readonly.cache.evictions"), small.cache_evictions());

  // Re-reading the start of the file re-fetches evicted chunks and still
  // verifies; recently used nodes are retained (hits on back-to-back reads).
  uint64_t fetched_before = small.nodes_fetched();
  Bytes head;
  ASSERT_EQ(small.Read(fh, anon_, 0, 100, &head, &eof), nfs::Stat::kOk);
  EXPECT_GT(small.nodes_fetched(), fetched_before);
  uint64_t hits_before = small.cache_hits();
  Bytes again;
  ASSERT_EQ(small.Read(fh, anon_, 0, 100, &again, &eof), nfs::Stat::kOk);
  EXPECT_GT(small.cache_hits(), hits_before);
  EXPECT_EQ(registry.CounterValue("readonly.cache.hits"), small.cache_hits());
  EXPECT_EQ(head, again);
}

TEST_F(ReadOnlyTest, IncrementalUpdateSharesUnchangedNodes) {
  // The paper ties read-only server crypto to the file system's "rate of
  // change".  Content addressing delivers that: re-publishing an image
  // with one file changed re-uses every unchanged node blob, so a replica
  // can fetch (and the publisher re-sign) only the delta.
  auto build = [&](const char* readme) {
    ImageBuilder b;
    auto certs = b.AddDir(b.RootDir(), "certs");
    EXPECT_TRUE(b.AddSymlink(certs, "mit", "/sfs/mit.example.org:xxxx").ok());
    EXPECT_TRUE(b.AddFile(b.RootDir(), "README", BytesOf(readme)).ok());
    EXPECT_TRUE(b.AddFile(b.RootDir(), "big.bin", big_content_).ok());
    return b;
  };
  SignedImage v1 = build("version one").Build(key_, "ca.example.org", 1);
  SignedImage v2 = build("version two!").Build(key_, "ca.example.org", 2);

  size_t shared = 0;
  for (const auto& [hash, blob] : v2.nodes) {
    if (v1.nodes.count(hash) != 0) {
      ++shared;
    }
  }
  // Everything except the changed README chunk, its file node, and the
  // root directory node is shared.
  EXPECT_EQ(v2.nodes.size() - shared, 3u);
  EXPECT_GT(shared, v2.nodes.size() / 2);
  // And the signatures differ (fresh root, fresh version).
  EXPECT_NE(v1.signature, v2.signature);
  EXPECT_NE(v1.root_hash, v2.root_hash);
}

TEST_F(ReadOnlyTest, EmptyFileAndEmptyDirectory) {
  ImageBuilder b;
  EXPECT_TRUE(b.AddFile(b.RootDir(), "empty", {}).ok());
  b.AddDir(b.RootDir(), "hollow");
  SignedImage image = b.Build(key_, "ca.example.org", 1);
  ReplicaServer replica(&clock_, &costs_, image);
  sim::Link link(&clock_, sim::LinkProfile::Tcp(), &replica);
  ReadOnlyClient client(&link, path_);
  ASSERT_TRUE(client.Connect().ok());
  nfs::FileHandle fh;
  nfs::Fattr attr;
  ASSERT_EQ(client.Lookup(client.root_fh(), "empty", anon_, &fh, &attr), nfs::Stat::kOk);
  EXPECT_EQ(attr.size, 0u);
  Bytes data;
  bool eof = false;
  ASSERT_EQ(client.Read(fh, anon_, 0, 100, &data, &eof), nfs::Stat::kOk);
  EXPECT_TRUE(data.empty());
  EXPECT_TRUE(eof);
  ASSERT_EQ(client.Lookup(client.root_fh(), "hollow", anon_, &fh, &attr), nfs::Stat::kOk);
  std::vector<nfs::DirEntry> entries;
  ASSERT_EQ(client.ReadDir(fh, anon_, 0, 10, &entries, &eof), nfs::Stat::kOk);
  EXPECT_TRUE(entries.empty());
}

TEST_F(ReadOnlyTest, DuplicateNamesRejectedByBuilder) {
  ImageBuilder b;
  EXPECT_TRUE(b.AddFile(b.RootDir(), "x", BytesOf("1")).ok());
  EXPECT_FALSE(b.AddFile(b.RootDir(), "x", BytesOf("2")).ok());
  EXPECT_FALSE(b.AddSymlink(b.RootDir(), "x", "/elsewhere").ok());
}

TEST_F(ReadOnlyTest, NoPrivateKeyOnReplica) {
  // Structural check of the paper's claim: the image contains only the
  // public key; signing a new root with image data alone is impossible
  // (here: the forged-image test above), and the publisher's signing work
  // is proportional to image size, not client count — serve many clients
  // from one signature.
  for (int i = 0; i < 5; ++i) {
    ReadOnlyClient c(link_.get(), path_);
    EXPECT_TRUE(c.Connect().ok());
  }
  // The image is self-contained: its bytes hold no private material.
  EXPECT_EQ(image_.public_key, key_.public_key().Serialize());
}

}  // namespace
