// Multi-client shared-file consistency: the write-behind commit
// pipeline must preserve close-to-open semantics (NFS's contract, which
// the paper's SFS client inherits through its NFS loopback mounts).
//
// Several independent SFS clients — each its own mount, secure channel,
// and cache stack — edit overlapping files on one server.  The harness
// proves:
//   * close-to-open visibility: a reader that opens after a writer's
//     close observes the written bytes, even with lease callbacks off
//     and an effectively infinite attribute timeout (the open-time
//     revalidation is the only freshness mechanism);
//   * flush-on-close ordering: buffered UNSTABLE data is invisible to
//     the server (and other clients) until Close, which flushes and
//     COMMITs before returning;
//   * a seeded linearizable-per-file oracle over randomized
//     interleavings of open/write/close/read sessions across clients.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/nfs/cache.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/util/bytes.h"
#include "src/vfs/vfs.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::Stat;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;

constexpr size_t kKeyBits = 512;
constexpr size_t kFileBytes = 2 * 8192;  // Two cache chunks per file.

// Deterministic whole-file content for a (file, version) pair; every
// byte depends on the version so a torn or stale read cannot match.
Bytes VersionContent(int file, uint64_t version, size_t size = kFileBytes) {
  Bytes out(size);
  uint64_t state = version * 2654435761u + static_cast<uint64_t>(file) + 1;
  for (size_t i = 0; i < out.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<uint8_t>(state >> 56);
  }
  return out;
}

// Create-without-truncate: all versions of a file are the same length,
// and a truncate at open would be a write-through metadata op visible
// before close (outside the close-to-open contract this test pins down).
vfs::OpenFlags CreateNoTrunc() {
  vfs::OpenFlags f;
  f.write = true;
  f.create = true;
  return f;
}

class ConsistencyTest : public ::testing::Test {
 protected:
  // One SFS client with its own VFS.  Lease callbacks are off and the
  // attribute timeout is effectively infinite, so nothing but the
  // open-time revalidation can make another client's writes visible.
  struct Node {
    std::unique_ptr<SfsClient> client;
    std::unique_ptr<sim::Disk> disk;
    std::unique_ptr<nfs::MemFs> local_fs;  // VFS root; workload lives on SFS.
    std::unique_ptr<vfs::Vfs> vfs;
    vfs::UserContext user;
  };

  ConsistencyTest() {
    SfsServer::Options server_options;
    server_options.location = "shared.example.org";
    server_options.key_bits = kKeyBits;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, server_options, &authserver_);

    // Anonymous users may mutate the exported tree (same discipline as
    // fault_test: no login keeps the RPC counts easy to reason about).
    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    EXPECT_EQ(server_->fs()->SetAttr(server_->fs()->root_handle(), Credentials::User(0),
                                     chmod, &attr),
              Stat::kOk);
  }

  Node MakeNode(uint64_t seed) {
    Node node;
    SfsClient::Options options;
    options.ephemeral_key_bits = kKeyBits;
    options.enhanced_caching = false;  // No lease callbacks.
    options.attr_timeout_ns = 1'000'000'000'000'000;  // ~11.6 virtual days.
    options.write_behind = true;
    options.prng_seed = seed;
    node.client = std::make_unique<SfsClient>(
        &clock_, &costs_, [this](const std::string&) { return server_.get(); }, options);
    node.disk = std::make_unique<sim::Disk>(&clock_, sim::DiskProfile::Ibm18Es());
    node.local_fs = std::make_unique<nfs::MemFs>(&clock_, node.disk.get(),
                                                 nfs::MemFs::Options{});
    node.vfs = std::make_unique<vfs::Vfs>(&clock_, &costs_);
    node.vfs->MountRoot(node.local_fs.get(), node.local_fs->root_handle());
    node.vfs->EnableSfs(node.client.get());
    node.user = vfs::UserContext::For(0);
    return node;
  }

  nfs::CachingFs* CacheOf(Node* node) {
    auto mount = node->client->Mount(server_->Path());
    EXPECT_TRUE(mount.ok()) << mount.status().ToString();
    return mount.ok() ? (*mount)->cache() : nullptr;
  }

  std::string FilePath(int file) {
    return server_->Path().FullPath() + "/shared" + std::to_string(file);
  }

  // One full writer session: open, rewrite the whole file, close
  // (flush + COMMIT under write-behind).
  void WriteClose(Node* node, int file, uint64_t version, size_t size = kFileBytes) {
    auto open = node->vfs->Open(node->user, FilePath(file), CreateNoTrunc());
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    ASSERT_TRUE(open->Pwrite(0, VersionContent(file, version, size)).ok());
    ASSERT_TRUE(open->Close().ok());
  }

  // One full reader session: open, read to EOF, close.
  Bytes ReadSession(Node* node, int file) {
    auto open = node->vfs->Open(node->user, FilePath(file), vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(open.ok()) << open.status().ToString();
    if (!open.ok()) {
      return {};
    }
    Bytes all;
    for (;;) {
      auto chunk = open->Read(8192);
      EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (!chunk.ok() || chunk->empty()) {
        break;
      }
      util::Append(&all, *chunk);
    }
    EXPECT_TRUE(open->Close().ok());
    return all;
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
};

TEST_F(ConsistencyTest, CloseToOpenVisibilityAcrossClients) {
  Node a = MakeNode(11);
  Node b = MakeNode(12);

  WriteClose(&a, 0, 1);
  EXPECT_EQ(ReadSession(&b, 0), VersionContent(0, 1));

  // Rewrite from A; B's attribute cache is still warm (infinite timeout,
  // no callbacks), so only B's open-time revalidation can notice.
  WriteClose(&a, 0, 2);
  EXPECT_EQ(ReadSession(&b, 0), VersionContent(0, 2));

  nfs::CachingFs* b_cache = CacheOf(&b);
  ASSERT_NE(b_cache, nullptr);
  EXPECT_GT(b_cache->open_revalidations(), 0u);
}

TEST_F(ConsistencyTest, FlushOnCloseOrderingAndInvisibilityUntilClose) {
  // Larger than the VFS handle's 32 KB gather window, so the Pwrite
  // below lands in the cache layer's dirty pool immediately and the
  // buffering under test is the commit pipeline's, not the handle's.
  constexpr size_t kBig = 40960;
  Node a = MakeNode(21);
  Node b = MakeNode(22);
  nfs::MemFs* server_fs = server_->fs();

  WriteClose(&a, 0, 1, kBig);
  ASSERT_EQ(ReadSession(&b, 0), VersionContent(0, 1, kBig));

  // A buffers a rewrite but does not close: no WRITE reaches the
  // server, and B (a fresh open) still reads version 1.
  uint64_t writes_before = server_fs->writes_applied();
  uint64_t commits_before = server_fs->commits_applied();
  auto open = a.vfs->Open(a.user, FilePath(0), CreateNoTrunc());
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->Pwrite(0, VersionContent(0, 2, kBig)).ok());
  EXPECT_EQ(server_fs->writes_applied(), writes_before);
  nfs::CachingFs* a_cache = CacheOf(&a);
  ASSERT_NE(a_cache, nullptr);
  EXPECT_EQ(a_cache->dirty_bytes(), kBig);
  EXPECT_EQ(ReadSession(&b, 0), VersionContent(0, 1, kBig));

  // Close publishes: the flush lands WRITE(UNSTABLE) batches plus a
  // COMMIT before Close returns, leaving nothing unstable server-side.
  ASSERT_TRUE(open->Close().ok());
  EXPECT_GT(server_fs->writes_applied(), writes_before);
  EXPECT_GT(server_fs->commits_applied(), commits_before);
  EXPECT_EQ(server_fs->unstable_bytes(), 0u);
  EXPECT_EQ(a_cache->dirty_bytes(), 0u);
  EXPECT_EQ(ReadSession(&b, 0), VersionContent(0, 2, kBig));
}

// Seeded randomized interleavings of writer and reader sessions over a
// small set of shared files, checked against a linearizable-per-file
// oracle: a read observes the pending (buffered) version if and only if
// it goes through the client holding the file open for write; every
// other read observes exactly the last closed version.
TEST_F(ConsistencyTest, RandomizedInterleavingsLinearizablePerFile) {
  constexpr int kNodes = 3;
  constexpr int kFiles = 3;
  constexpr int kSteps = 120;

  std::vector<Node> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(MakeNode(100 + static_cast<uint64_t>(i)));
  }

  struct PendingWrite {
    int node = 0;
    uint64_t version = 0;
    vfs::OpenFile handle;
  };
  std::vector<uint64_t> committed(kFiles, 0);
  std::vector<std::optional<PendingWrite>> pending(kFiles);

  // Baseline: version 0 of every file, written and closed.
  for (int f = 0; f < kFiles; ++f) {
    WriteClose(&nodes[0], f, 0);
  }

  uint64_t rng = 0x5eed20260808ull;  // Splitmix64 stream; fixed seed.
  auto next = [&rng](uint64_t bound) {
    uint64_t z = (rng += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return (z ^ (z >> 31)) % bound;
  };

  uint64_t next_version = 1;
  int reads_checked = 0;
  int pending_reads_checked = 0;
  for (int step = 0; step < kSteps; ++step) {
    int f = static_cast<int>(next(kFiles));
    int n = static_cast<int>(next(kNodes));
    switch (next(3)) {
      case 0: {  // Begin a write session (one open writer per file).
        if (pending[f].has_value()) {
          break;
        }
        uint64_t version = next_version++;
        const Bytes content = VersionContent(f, version);
        auto open = nodes[n].vfs->Open(nodes[n].user, FilePath(f), CreateNoTrunc());
        ASSERT_TRUE(open.ok()) << open.status().ToString();
        ASSERT_TRUE(open->Pwrite(0, content).ok());
        // Push the handle's gather buffer into the shared cache layer
        // (the read must observe the buffered bytes, forcing the VFS
        // flush); served from the freshly folded data cache, so nothing
        // reaches the wire and the data stays unflushed client-side.
        auto peek = open->Pread(0, 16);
        ASSERT_TRUE(peek.ok()) << peek.status().ToString();
        ASSERT_EQ(*peek, Bytes(content.begin(), content.begin() + 16));
        pending[f].emplace(PendingWrite{n, version, std::move(open.value())});
        break;
      }
      case 1: {  // End the write session: close commits the version.
        if (!pending[f].has_value()) {
          break;
        }
        ASSERT_TRUE(pending[f]->handle.Close().ok());
        committed[f] = pending[f]->version;
        pending[f].reset();
        break;
      }
      case 2: {  // Reader session; the oracle picks the visible version.
        uint64_t expect = committed[f];
        if (pending[f].has_value() && pending[f]->node == n) {
          expect = pending[f]->version;  // Own buffered data.
          ++pending_reads_checked;
        }
        ASSERT_EQ(ReadSession(&nodes[n], f), VersionContent(f, expect))
            << "step " << step << " file " << f << " node " << n;
        ++reads_checked;
        break;
      }
    }
  }

  // Quiesce: close every open writer, then every node must read every
  // file's final committed version.
  for (int f = 0; f < kFiles; ++f) {
    if (pending[f].has_value()) {
      ASSERT_TRUE(pending[f]->handle.Close().ok());
      committed[f] = pending[f]->version;
      pending[f].reset();
    }
  }
  for (int f = 0; f < kFiles; ++f) {
    for (int n = 0; n < kNodes; ++n) {
      EXPECT_EQ(ReadSession(&nodes[n], f), VersionContent(f, committed[f]))
          << "final file " << f << " node " << n;
    }
  }
  EXPECT_EQ(server_->fs()->unstable_bytes(), 0u);
  // The fixed seed deterministically exercised both oracle branches.
  EXPECT_GT(reads_checked, 10);
  EXPECT_GT(pending_reads_checked, 0);
}

}  // namespace
