// Tests for Blowfish, the computed pi tables, CBC mode, and eksblowfish.
#include <gtest/gtest.h>

#include <chrono>

#include "src/crypto/blowfish.h"
#include "src/crypto/prng.h"
#include "src/util/bytes.h"

namespace {

using crypto::Blowfish;
using crypto::BlowfishInitialState;
using crypto::EksBlowfishHash;
using crypto::Prng;
using util::Bytes;
using util::BytesOf;

TEST(BlowfishTest, PiTablesMatchPublishedConstants) {
  // The first P-array words are the leading fractional hex digits of pi.
  const auto& st = BlowfishInitialState();
  EXPECT_EQ(st.p[0], 0x243F6A88u);
  EXPECT_EQ(st.p[1], 0x85A308D3u);
  EXPECT_EQ(st.p[2], 0x13198A2Eu);
  EXPECT_EQ(st.p[3], 0x03707344u);
  EXPECT_EQ(st.p[4], 0xA4093822u);
  EXPECT_EQ(st.p[5], 0x299F31D0u);
}

TEST(BlowfishTest, KnownVectorAllZeros) {
  // Eric Young's reference vector: key=0^8, plaintext=0^8.
  Bytes key(8, 0x00);
  Blowfish bf(key);
  uint32_t l = 0;
  uint32_t r = 0;
  bf.EncryptBlock(&l, &r);
  EXPECT_EQ(l, 0x4EF99745u);
  EXPECT_EQ(r, 0x6198DD78u);
}

TEST(BlowfishTest, KnownVectorAllOnes) {
  Bytes key(8, 0xFF);
  Blowfish bf(key);
  uint32_t l = 0xFFFFFFFFu;
  uint32_t r = 0xFFFFFFFFu;
  bf.EncryptBlock(&l, &r);
  EXPECT_EQ(l, 0x51866FD5u);
  EXPECT_EQ(r, 0xB85ECB8Au);
}

TEST(BlowfishTest, BlockRoundTrip) {
  Prng prng(uint64_t{21});
  Blowfish bf(prng.RandomBytes(20));
  for (int i = 0; i < 100; ++i) {
    uint32_t l0 = static_cast<uint32_t>(prng.RandomUint64(0));
    uint32_t r0 = static_cast<uint32_t>(prng.RandomUint64(0));
    uint32_t l = l0;
    uint32_t r = r0;
    bf.EncryptBlock(&l, &r);
    EXPECT_FALSE(l == l0 && r == r0);
    bf.DecryptBlock(&l, &r);
    EXPECT_EQ(l, l0);
    EXPECT_EQ(r, r0);
  }
}

TEST(BlowfishTest, CbcRoundTrip) {
  Prng prng(uint64_t{22});
  Blowfish bf(prng.RandomBytes(20));
  Bytes iv = prng.RandomBytes(8);
  Bytes plaintext = prng.RandomBytes(32);  // SFS file-handle size.
  auto ct = bf.EncryptCbc(plaintext, iv);
  ASSERT_TRUE(ct.ok());
  EXPECT_NE(ct.value(), plaintext);
  auto pt = bf.DecryptCbc(ct.value(), iv);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), plaintext);
}

TEST(BlowfishTest, CbcChainsBlocks) {
  // Identical plaintext blocks must produce different ciphertext blocks.
  Prng prng(uint64_t{23});
  Blowfish bf(prng.RandomBytes(20));
  Bytes iv(8, 0);
  Bytes plaintext(24, 0x42);
  auto ct = bf.EncryptCbc(plaintext, iv);
  ASSERT_TRUE(ct.ok());
  Bytes b0(ct->begin(), ct->begin() + 8);
  Bytes b1(ct->begin() + 8, ct->begin() + 16);
  Bytes b2(ct->begin() + 16, ct->begin() + 24);
  EXPECT_NE(b0, b1);
  EXPECT_NE(b1, b2);
}

TEST(BlowfishTest, CbcRejectsBadInputs) {
  Prng prng(uint64_t{24});
  Blowfish bf(prng.RandomBytes(20));
  EXPECT_FALSE(bf.EncryptCbc(Bytes(7, 0), Bytes(8, 0)).ok());
  EXPECT_FALSE(bf.EncryptCbc(Bytes(16, 0), Bytes(4, 0)).ok());
  EXPECT_FALSE(bf.DecryptCbc(Bytes(9, 0), Bytes(8, 0)).ok());
}

TEST(EksBlowfishTest, DeterministicAndSaltSensitive) {
  Bytes salt1(16, 0x01);
  Bytes salt2(16, 0x02);
  Bytes pw = BytesOf("correct horse battery staple");
  EXPECT_EQ(EksBlowfishHash(4, salt1, pw), EksBlowfishHash(4, salt1, pw));
  EXPECT_NE(EksBlowfishHash(4, salt1, pw), EksBlowfishHash(4, salt2, pw));
  EXPECT_NE(EksBlowfishHash(4, salt1, pw), EksBlowfishHash(5, salt1, pw));
  EXPECT_NE(EksBlowfishHash(4, salt1, pw), EksBlowfishHash(4, salt1, BytesOf("wrong")));
  EXPECT_EQ(EksBlowfishHash(4, salt1, pw).size(), 24u);
}

TEST(EksBlowfishTest, CostScalesWork) {
  // 2^c iterations: cost 8 must take measurably longer than cost 2.  We
  // only check monotonic growth, not absolute time.
  Bytes salt(16, 0x07);
  Bytes pw = BytesOf("pw");
  auto time_cost = [&](unsigned cost) {
    auto start = std::chrono::steady_clock::now();
    EksBlowfishHash(cost, salt, pw);
    return std::chrono::steady_clock::now() - start;
  };
  auto low = time_cost(2);
  auto high = time_cost(8);
  EXPECT_GT(high, low);
}

}  // namespace
