// FixedBaseCtx must be a pure reschedule of MontgomeryCtx::ModExp: same
// arithmetic, different operation order, bit-identical results — on
// every exponent shape SRP can produce plus the widths it can't (the
// fallback path).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/crypto/bignum.h"
#include "src/crypto/fixedbase.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/prng.h"
#include "src/crypto/srp.h"

namespace {

using crypto::BigInt;
using crypto::FixedBaseCtx;
using crypto::MontgomeryCtx;
using crypto::Prng;

std::shared_ptr<const MontgomeryCtx> RandomOddCtx(Prng* prng, size_t bits) {
  BigInt m = BigInt::Random(prng, bits);
  if (m.is_even()) {
    m = m + BigInt(1);
  }
  return std::make_shared<const MontgomeryCtx>(m);
}

TEST(FixedBaseTest, ExpMatchesGenericKernelAcrossSizes) {
  Prng prng(uint64_t{3001});
  for (size_t bits : {65, 160, 512, 1024}) {
    auto ctx = RandomOddCtx(&prng, bits);
    BigInt base = BigInt::Random(&prng, bits - 1);
    FixedBaseCtx fb(ctx, base, bits);
    for (int i = 0; i < 6; ++i) {
      BigInt exp = BigInt::Random(&prng, bits);
      EXPECT_EQ(fb.Exp(exp), ctx->ModExp(base, exp)) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(FixedBaseTest, ExpEdgeExponents) {
  Prng prng(uint64_t{3002});
  auto ctx = RandomOddCtx(&prng, 512);
  BigInt base = BigInt::Random(&prng, 500);
  FixedBaseCtx fb(ctx, base, 512);
  EXPECT_EQ(fb.Exp(BigInt(0)), BigInt(1));
  EXPECT_EQ(fb.Exp(BigInt(1)), base.Mod(ctx->modulus()));
  BigInt top = ctx->modulus() - BigInt(1);
  EXPECT_EQ(fb.Exp(top), ctx->ModExp(base, top));
}

TEST(FixedBaseTest, BaseLargerThanModulusReducesFirst) {
  Prng prng(uint64_t{3003});
  auto ctx = RandomOddCtx(&prng, 256);
  BigInt base = BigInt::Random(&prng, 400);  // base >= m.
  FixedBaseCtx fb(ctx, base, 256);
  BigInt exp = BigInt::Random(&prng, 200);
  EXPECT_EQ(fb.Exp(exp), ctx->ModExp(base, exp));
}

TEST(FixedBaseTest, OverWideExponentFallsBackToGenericKernel) {
  Prng prng(uint64_t{3004});
  auto ctx = RandomOddCtx(&prng, 384);
  BigInt base = BigInt::Random(&prng, 380);
  FixedBaseCtx fb(ctx, base, 160);  // Covers only 160-bit exponents.
  EXPECT_GE(fb.max_exp_bits(), 160u);
  // In range: table path.
  BigInt in_range = BigInt::Random(&prng, 160);
  EXPECT_EQ(fb.Exp(in_range), ctx->ModExp(base, in_range));
  // Past the covered width: must still be correct via the fallback.
  BigInt wide = BigInt::Random(&prng, fb.max_exp_bits() + 100);
  EXPECT_EQ(fb.Exp(wide), ctx->ModExp(base, wide));
}

TEST(FixedBaseTest, TableGeometryCoversRequestedWidth) {
  Prng prng(uint64_t{3005});
  auto ctx = RandomOddCtx(&prng, 1024);
  FixedBaseCtx fb(ctx, BigInt(2), 1024);
  EXPECT_GE(fb.window(), 1u);
  EXPECT_GE(fb.max_exp_bits(), 1024u);
  EXPECT_EQ(fb.table_entries() * fb.window(), fb.max_exp_bits());
  EXPECT_FALSE(fb.secret());
  FixedBaseCtx secret_fb(ctx, BigInt(3), 256, /*secret=*/true);
  EXPECT_TRUE(secret_fb.secret());
}

TEST(FixedBaseTest, Rfc5054GeneratorContextMatchesGroupExp) {
  // The context SrpParams actually carries: g = 2 in the RFC 5054
  // 1024-bit group, covering full-width exponents.
  const crypto::SrpParams& params = crypto::DefaultSrpParams();
  ASSERT_NE(params.g_ctx, nullptr);
  EXPECT_EQ(params.g_ctx->base(), params.g);
  Prng prng(uint64_t{3006});
  for (int i = 0; i < 4; ++i) {
    BigInt exp = BigInt::Random(&prng, 512 + static_cast<size_t>(i) * 128);
    EXPECT_EQ(params.g_ctx->Exp(exp),
              BigInt::ModExpNaive(params.g, exp, params.n));
  }
}

TEST(FixedBaseTest, VerifierContextIsSecretAndCoversScrambler) {
  crypto::Prng prng(uint64_t{3007});
  const crypto::SrpParams& params = crypto::DefaultSrpParams();
  auto verifier = crypto::MakeSrpVerifier(params, "pw", 2, &prng);
  ASSERT_NE(verifier.v_ctx, nullptr);
  EXPECT_TRUE(verifier.v_ctx->secret());
  EXPECT_EQ(verifier.v_ctx->base(), verifier.v);
  // u is a 160-bit SHA-1 derived scrambler; the table must cover it.
  EXPECT_GE(verifier.v_ctx->max_exp_bits(), 160u);
  BigInt u = BigInt::Random(&prng, 160);
  EXPECT_EQ(verifier.v_ctx->Exp(u), params.ctx->ModExp(verifier.v, u));
}

}  // namespace
