// Protocol state-machine hardening: a ServerConnection must fail closed
// on out-of-order, malformed, or hostile connection-level messages —
// "attackers can ... inject new packets onto the network" (§2.1.2).
#include <gtest/gtest.h>

#include <memory>

#include "src/auth/authserver.h"
#include "src/crypto/prng.h"
#include "src/sfs/client.h"
#include "src/sfs/proto.h"
#include "src/sfs/server.h"
#include "src/sfs/session.h"
#include "src/xdr/xdr.h"

namespace {

using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    SfsServer::Options so;
    so.location = "proto.test";
    so.key_bits = kKeyBits;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, so, &authserver_);
  }

  // A fresh raw connection (no SfsClient in the way).
  std::unique_ptr<sim::Service> Connect() {
    return std::move(server_->CreateConnection().connection);
  }

  static Bytes Frame(uint32_t type, const Bytes& payload) {
    xdr::Encoder enc;
    enc.PutUint32(type);
    enc.PutOpaque(payload);
    return enc.Take();
  }

  // A channel frame: the wire seqno travels outside the sealed body so
  // the server can deduplicate retransmits without opening the cipher.
  static Bytes EncFrame(uint32_t seqno, const Bytes& sealed) {
    xdr::Encoder enc;
    enc.PutUint32(seqno);
    enc.PutOpaque(sealed);
    return Frame(sfs::kMsgEncrypted, enc.Take());
  }

  Bytes ValidHello() {
    xdr::Encoder hello;
    hello.PutUint32(static_cast<uint32_t>(sfs::ServiceType::kFileServer));
    hello.PutString(server_->Path().location);
    hello.PutOpaque(server_->Path().host_id);
    hello.PutString("");
    return Frame(sfs::kMsgConnect, hello.Take());
  }

  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
};

TEST_F(ProtocolTest, GarbageConnectionMessageKillsConnection) {
  auto conn = Connect();
  EXPECT_FALSE(conn->Handle(BytesOf("not even framed")).ok());
  // Dead connection rejects even a valid hello afterwards.
  EXPECT_FALSE(conn->Handle(ValidHello()).ok());
}

TEST_F(ProtocolTest, UnknownMessageTypeRejected) {
  auto conn = Connect();
  EXPECT_FALSE(conn->Handle(Frame(999, {})).ok());
}

TEST_F(ProtocolTest, NegotiateBeforeConnectRejected) {
  auto conn = Connect();
  xdr::Encoder neg;
  neg.PutOpaque(Bytes(64, 1));
  neg.PutOpaque(Bytes(64, 2));
  neg.PutOpaque(Bytes(64, 3));
  neg.PutBool(false);
  auto reply = conn->Handle(Frame(sfs::kMsgNegotiate, neg.Take()));
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ProtocolTest, EncryptedBeforeNegotiateRejected) {
  auto conn = Connect();
  ASSERT_TRUE(conn->Handle(ValidHello()).ok());
  auto reply = conn->Handle(Frame(sfs::kMsgEncrypted, Bytes(64, 0xaa)));
  EXPECT_EQ(reply.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ProtocolTest, DoubleConnectRejected) {
  auto conn = Connect();
  auto first = conn->Handle(ValidHello());
  ASSERT_TRUE(first.ok());
  // A byte-identical second copy is a retransmitted duplicate: the
  // server replays its recorded reply instead of re-running the state
  // machine (which would kill the connection).
  auto replay = conn->Handle(ValidHello());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value(), first.value());
  // A *different* connect after the handshake began is still a protocol
  // violation.
  xdr::Encoder hello;
  hello.PutUint32(static_cast<uint32_t>(sfs::ServiceType::kFileServer));
  hello.PutString(server_->Path().location);
  hello.PutOpaque(server_->Path().host_id);
  hello.PutString("different-extensions");
  EXPECT_FALSE(conn->Handle(Frame(sfs::kMsgConnect, hello.Take())).ok());
}

TEST_F(ProtocolTest, MalformedNegotiatePayloadKillsConnection) {
  auto conn = Connect();
  ASSERT_TRUE(conn->Handle(ValidHello()).ok());
  EXPECT_FALSE(conn->Handle(Frame(sfs::kMsgNegotiate, BytesOf("trash"))).ok());
}

TEST_F(ProtocolTest, BogusKeyHalvesRejected) {
  auto conn = Connect();
  ASSERT_TRUE(conn->Handle(ValidHello()).ok());
  // Well-formed XDR, but the "ciphertexts" are random bytes the server's
  // key cannot decrypt to valid OAEP.
  crypto::Prng prng(uint64_t{3});
  auto client_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  size_t k = (server_->public_key().BitLength() + 7) / 8;
  xdr::Encoder neg;
  neg.PutOpaque(client_key.public_key().Serialize());
  neg.PutOpaque(prng.RandomBytes(k));
  neg.PutOpaque(prng.RandomBytes(k));
  neg.PutBool(false);
  auto reply = conn->Handle(Frame(sfs::kMsgNegotiate, neg.Take()));
  EXPECT_FALSE(reply.ok());
}

TEST_F(ProtocolTest, SrpOnFileServerConnectionAfterHelloRejected) {
  auto conn = Connect();
  ASSERT_TRUE(conn->Handle(ValidHello()).ok());
  xdr::Encoder srp;
  srp.PutString("alice");
  srp.PutOpaque(Bytes(16, 1));
  EXPECT_FALSE(conn->Handle(Frame(sfs::kMsgSrpStart, srp.Take())).ok());
}

TEST_F(ProtocolTest, SrpFinishWithoutStartRejected) {
  auto conn = Connect();
  xdr::Encoder fin;
  fin.PutOpaque(Bytes(20, 0));
  EXPECT_FALSE(conn->Handle(Frame(sfs::kMsgSrpFinish, fin.Take())).ok());
}

TEST_F(ProtocolTest, HelloForWrongLocationRejected) {
  auto conn = Connect();
  xdr::Encoder hello;
  hello.PutUint32(static_cast<uint32_t>(sfs::ServiceType::kFileServer));
  hello.PutString("someone-else.example.org");  // Right HostID, wrong Location.
  hello.PutOpaque(server_->Path().host_id);
  hello.PutString("");
  auto reply = conn->Handle(Frame(sfs::kMsgConnect, hello.Take()));
  ASSERT_TRUE(reply.ok());
  xdr::Decoder dec(reply.value());
  ASSERT_TRUE(dec.GetUint32().ok());
  xdr::Decoder payload(dec.GetOpaque().value());
  EXPECT_EQ(payload.GetUint32().value(), static_cast<uint32_t>(sfs::kConnectUnknown));
}

TEST_F(ProtocolTest, FullHandshakeThenDesyncKillsSession) {
  // Drive a complete handshake by hand, then send a garbage encrypted
  // frame: the server's stream desynchronizes and the session dies —
  // subsequent *valid* traffic cannot resurrect it.
  auto conn = Connect();
  auto hello_reply = conn->Handle(ValidHello());
  ASSERT_TRUE(hello_reply.ok());

  crypto::Prng prng(uint64_t{4});
  auto negotiation =
      sfs::ClientNegotiation::Start(server_->public_key(), &prng, kKeyBits);
  ASSERT_TRUE(negotiation.ok());
  xdr::Encoder neg;
  neg.PutOpaque(negotiation->ephemeral_key.public_key().Serialize());
  neg.PutOpaque(negotiation->enc_kc1);
  neg.PutOpaque(negotiation->enc_kc2);
  neg.PutBool(false);
  auto neg_reply = conn->Handle(Frame(sfs::kMsgNegotiate, neg.Take()));
  ASSERT_TRUE(neg_reply.ok());
  xdr::Decoder nd(neg_reply.value());
  ASSERT_TRUE(nd.GetUint32().ok());
  xdr::Decoder np(nd.GetOpaque().value());
  ASSERT_FALSE(np.GetBool().value());  // Not cleartext.
  Bytes enc_ks1 = np.GetOpaque().value();
  Bytes enc_ks2 = np.GetOpaque().value();
  auto keys = negotiation->Finish(server_->public_key(), enc_ks1, enc_ks2);
  ASSERT_TRUE(keys.ok());

  sfs::ChannelCipher out(keys->kcs);
  sfs::ChannelCipher in(keys->ksc);

  // One good RPC (control program: get root).
  xdr::Encoder rpc;
  rpc.PutUint32(1);  // xid
  rpc.PutUint32(sfs::kSfsCtlProgram);
  rpc.PutUint32(sfs::kCtlGetRoot);
  rpc.PutOpaque({});
  auto good = conn->Handle(EncFrame(1, out.Seal(rpc.Take())));
  ASSERT_TRUE(good.ok());

  // Inject garbage under a fresh seqno; the server must kill the session...
  EXPECT_FALSE(conn->Handle(EncFrame(2, Bytes(80, 0x5c))).ok());
  // ...and refuse even a correctly sealed follow-up.
  xdr::Encoder rpc2;
  rpc2.PutUint32(2);
  rpc2.PutUint32(sfs::kSfsCtlProgram);
  rpc2.PutUint32(sfs::kCtlGetRoot);
  rpc2.PutOpaque({});
  EXPECT_FALSE(conn->Handle(EncFrame(3, out.Seal(rpc2.Take()))).ok());
}

TEST_F(ProtocolTest, SequenceNumberWindowEnforced) {
  // Drive the login procedure directly to exercise the out-of-order
  // window (§3.1.2 footnote 4: "the server accepts out-of-order sequence
  // numbers within a reasonable window").
  crypto::Prng prng(uint64_t{20});
  auto user_key = crypto::RabinPrivateKey::Generate(&prng, kKeyBits);
  auth::PublicUserRecord rec;
  rec.name = "alice";
  rec.public_key = user_key.public_key().Serialize();
  rec.credentials = nfs::Credentials::User(1000, {1000});
  ASSERT_TRUE(authserver_.RegisterUser(rec).ok());

  sfs::SfsClient::Options co;
  co.ephemeral_key_bits = kKeyBits;
  sfs::SfsClient client(&clock_, &costs_, [&](const std::string&) { return server_.get(); },
                        co);
  auto mount = client.Mount(server_->Path());
  ASSERT_TRUE(mount.ok());

  // Probe: several successful logins advance max_seqno; a replayed
  // (duplicate) signature for an already-used seqno must fail.  The
  // capturing signer records one message, replays it later.
  Bytes captured;
  uint32_t captured_seqno = 0;
  for (int i = 0; i < 3; ++i) {
    auto signer = [&](const Bytes& info, uint32_t seqno) -> std::optional<Bytes> {
      Bytes body = auth::MakeSignedAuthReqBody(sfs::MakeAuthId(info), seqno);
      xdr::Encoder msg;
      msg.PutOpaque(user_key.public_key().Serialize());
      msg.PutOpaque(user_key.Sign(body));
      if (i == 0) {
        captured = msg.data();
        captured_seqno = seqno;
      }
      return msg.Take();
    };
    ASSERT_TRUE((*mount)->Authenticate(static_cast<uint32_t>(100 + i), signer).ok());
    EXPECT_NE((*mount)->AuthnoFor(static_cast<uint32_t>(100 + i)), sfs::kAnonymousAuthno);
  }
  // Replay of the captured message: the mount's counter has moved on, so
  // the transmitted seqno mismatches the signed one — and even a
  // same-seqno replay would hit the used-seqno set.
  auto replayer = [&](const Bytes&, uint32_t) -> std::optional<Bytes> { return captured; };
  EXPECT_FALSE((*mount)->Authenticate(999, replayer).ok());
  EXPECT_GT(captured_seqno, 0u);
}

TEST_F(ProtocolTest, CleartextRefusedUnlessConfigured) {
  // Server not configured for cleartext: a client asking for it still
  // gets an encrypted channel (the reply's cleartext flag is false).
  auto conn = Connect();
  ASSERT_TRUE(conn->Handle(ValidHello()).ok());
  crypto::Prng prng(uint64_t{5});
  auto negotiation =
      sfs::ClientNegotiation::Start(server_->public_key(), &prng, kKeyBits);
  ASSERT_TRUE(negotiation.ok());
  xdr::Encoder neg;
  neg.PutOpaque(negotiation->ephemeral_key.public_key().Serialize());
  neg.PutOpaque(negotiation->enc_kc1);
  neg.PutOpaque(negotiation->enc_kc2);
  neg.PutBool(true);  // Request cleartext.
  auto reply = conn->Handle(Frame(sfs::kMsgNegotiate, neg.Take()));
  ASSERT_TRUE(reply.ok());
  xdr::Decoder dec(reply.value());
  ASSERT_TRUE(dec.GetUint32().ok());
  xdr::Decoder payload(dec.GetOpaque().value());
  EXPECT_FALSE(payload.GetBool().value());
}

}  // namespace
