// Tests for the SRP-6a implementation.
#include <gtest/gtest.h>

#include "src/crypto/bignum.h"
#include "src/crypto/prng.h"
#include "src/crypto/srp.h"

namespace {

using crypto::BigInt;
using crypto::DefaultSrpParams;
using crypto::MakeSrpVerifier;
using crypto::Prng;
using crypto::SrpClient;
using crypto::SrpServer;
using crypto::SrpVerifier;

constexpr unsigned kTestCost = 2;  // Low eksblowfish cost for test speed.

TEST(SrpParamsTest, GroupIsASafePrime) {
  // N must be prime and (N-1)/2 prime for the SRP security argument.
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{41});
  EXPECT_EQ(params.n.BitLength(), 1024u);
  EXPECT_TRUE(BigInt::IsProbablePrime(params.n, &prng, 10));
  BigInt q = (params.n - BigInt(1)) >> 1;
  EXPECT_TRUE(BigInt::IsProbablePrime(q, &prng, 10));
  EXPECT_EQ(params.g, BigInt(2));
}

TEST(SrpTest, SuccessfulMutualAuthentication) {
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{42});
  SrpVerifier verifier = MakeSrpVerifier(params, "kaminsky's password", kTestCost, &prng);

  SrpClient client(params, &prng);
  SrpServer server(params, verifier, &prng);

  auto b_pub = server.ProcessClientHello(client.A());
  ASSERT_TRUE(b_pub.ok());
  ASSERT_TRUE(client
                  .ProcessServerReply("kaminsky's password", server.Salt(), server.Cost(),
                                      b_pub.value())
                  .ok());
  EXPECT_TRUE(server.VerifyClientProof(client.ClientProof()).ok());
  EXPECT_TRUE(client.VerifyServerProof(server.ServerProof()).ok());
  EXPECT_EQ(client.SessionKey(), server.SessionKey());
  EXPECT_EQ(client.SessionKey().size(), 20u);
}

TEST(SrpTest, WrongPasswordFailsClientProof) {
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{43});
  SrpVerifier verifier = MakeSrpVerifier(params, "right password", kTestCost, &prng);

  SrpClient client(params, &prng);
  SrpServer server(params, verifier, &prng);
  auto b_pub = server.ProcessClientHello(client.A());
  ASSERT_TRUE(b_pub.ok());
  ASSERT_TRUE(client.ProcessServerReply("wrong password", server.Salt(), server.Cost(),
                                        b_pub.value())
                  .ok());
  EXPECT_FALSE(server.VerifyClientProof(client.ClientProof()).ok());
  EXPECT_NE(client.SessionKey(), server.SessionKey());
}

TEST(SrpTest, ServerRejectsDegenerateA) {
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{44});
  SrpVerifier verifier = MakeSrpVerifier(params, "pw", kTestCost, &prng);
  SrpServer server(params, verifier, &prng);
  EXPECT_FALSE(server.ProcessClientHello(BigInt(0)).ok());
  SrpServer server2(params, verifier, &prng);
  EXPECT_FALSE(server2.ProcessClientHello(params.n).ok());
  SrpServer server3(params, verifier, &prng);
  EXPECT_FALSE(server3.ProcessClientHello(params.n * BigInt(3)).ok());
}

TEST(SrpTest, ClientRejectsDegenerateB) {
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{45});
  SrpClient client(params, &prng);
  util::Bytes salt(16, 1);
  EXPECT_FALSE(client.ProcessServerReply("pw", salt, kTestCost, BigInt(0)).ok());
  SrpClient client2(params, &prng);
  EXPECT_FALSE(client2.ProcessServerReply("pw", salt, kTestCost, params.n).ok());
}

TEST(SrpTest, SessionKeysDifferAcrossRuns) {
  // Fresh ephemerals every run: an eavesdropper replaying old transcripts
  // learns nothing about new sessions.
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{46});
  SrpVerifier verifier = MakeSrpVerifier(params, "pw", kTestCost, &prng);
  util::Bytes key1;
  util::Bytes key2;
  for (util::Bytes* key : {&key1, &key2}) {
    SrpClient client(params, &prng);
    SrpServer server(params, verifier, &prng);
    auto b_pub = server.ProcessClientHello(client.A());
    ASSERT_TRUE(b_pub.ok());
    ASSERT_TRUE(client.ProcessServerReply("pw", server.Salt(), server.Cost(), b_pub.value()).ok());
    ASSERT_TRUE(server.VerifyClientProof(client.ClientProof()).ok());
    *key = client.SessionKey();
  }
  EXPECT_NE(key1, key2);
}

TEST(SrpTest, VerifierIsNotPasswordEquivalent) {
  // Structural check on the paper's claim: what the server stores (salt,
  // cost, v = g^x) differs from anything the client derives directly from
  // the password, and two users with the same password get different
  // verifiers thanks to the salt.
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{47});
  SrpVerifier v1 = MakeSrpVerifier(params, "shared password", kTestCost, &prng);
  SrpVerifier v2 = MakeSrpVerifier(params, "shared password", kTestCost, &prng);
  EXPECT_NE(v1.salt, v2.salt);
  EXPECT_NE(v1.v, v2.v);
}

TEST(SrpTest, ProofsAreTranscriptBound) {
  const auto& params = DefaultSrpParams();
  Prng prng(uint64_t{48});
  SrpVerifier verifier = MakeSrpVerifier(params, "pw", kTestCost, &prng);
  SrpClient client(params, &prng);
  SrpServer server(params, verifier, &prng);
  auto b_pub = server.ProcessClientHello(client.A());
  ASSERT_TRUE(b_pub.ok());
  ASSERT_TRUE(client.ProcessServerReply("pw", server.Salt(), server.Cost(), b_pub.value()).ok());
  // A bit-flipped proof must not verify.
  util::Bytes bad = client.ClientProof();
  bad[0] ^= 1;
  EXPECT_FALSE(server.VerifyClientProof(bad).ok());
  util::Bytes bad2 = server.ServerProof();
  bad2[19] ^= 1;
  EXPECT_FALSE(client.VerifyServerProof(bad2).ok());
}

}  // namespace
