// Observability subsystem: the metrics registry, the per-procedure
// families, and — the important part — the RPC trace layer.  A full SFS
// mount runs through a seeded LossyInterposer and the ring-buffer trace
// must *show* exactly-once application-level delivery: a retransmitted
// xid appears once (and only once) as a kClientReply, every wire seqno
// is dispatched to a handler exactly once, and the extra copies surface
// as kServerDrcHit events.  Counter equality alone would not distinguish
// "deduplicated" from "never duplicated"; the trace does.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"

namespace {

using nfs::Credentials;
using nfs::Fattr;
using nfs::FileHandle;
using nfs::Stat;
using sfs::SfsClient;
using sfs::SfsServer;
using util::Bytes;
using util::BytesOf;

constexpr size_t kKeyBits = 512;

// --- Minimal JSON parser (validation only) -----------------------------------
//
// Enough of RFC 8259 to round-trip SnapshotJson() through a structural
// check: objects, arrays, strings with escapes, numbers, literals.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Peek(':')) {
        return false;
      }
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek('}')) {
        return true;
      }
      if (!Peek(',')) {
        return false;
      }
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) {
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(']')) {
        return true;
      }
      if (!Peek(',')) {
        return false;
      }
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// --- Fixture: full SFS stack publishing into a private registry --------------

class ObsTest : public ::testing::Test {
 protected:
  ObsTest() : sink_(/*capacity=*/1 << 16) {
    registry_.tracer().AddSink(&sink_);

    SfsServer::Options server_options;
    server_options.location = "obs.example.org";
    server_options.key_bits = kKeyBits;
    server_options.registry = &registry_;
    server_ = std::make_unique<SfsServer>(&clock_, &costs_, server_options, &authserver_);

    Fattr attr;
    nfs::Sattr chmod;
    chmod.mode = 0777;
    EXPECT_EQ(server_->fs()->SetAttr(server_->fs()->root_handle(), Credentials::User(0),
                                     chmod, &attr),
              Stat::kOk);

    SfsClient::Options client_options;
    client_options.ephemeral_key_bits = kKeyBits;
    client_options.registry = &registry_;
    client_ = std::make_unique<SfsClient>(
        &clock_, &costs_,
        [this](const std::string&) { return server_.get(); }, client_options);
  }

  // Create/write/read/remove through the mount; every op must succeed.
  SfsClient::MountPoint* RunWorkload(int files) {
    auto mount = client_->Mount(server_->Path());
    EXPECT_TRUE(mount.ok()) << mount.status().ToString();
    if (!mount.ok()) {
      return nullptr;
    }
    nfs::FileSystemApi* fs = (*mount)->fs();
    const Credentials cred = Credentials::User(0);
    Fattr attr;
    std::vector<FileHandle> handles;
    for (int i = 0; i < files; ++i) {
      FileHandle fh;
      std::string name = "file-" + std::to_string(i);
      EXPECT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr),
                Stat::kOk)
          << name;
      Bytes content = BytesOf("contents of " + name);
      EXPECT_EQ(fs->Write(fh, cred, 0, content, /*stable=*/true, &attr), Stat::kOk) << name;
      handles.push_back(fh);
    }
    for (int i = 0; i < files; ++i) {
      Bytes data;
      bool eof = false;
      EXPECT_EQ(fs->Read(handles[static_cast<size_t>(i)], cred, 0, 4096, &data, &eof),
                Stat::kOk);
    }
    for (int i = 0; i < files; i += 2) {
      EXPECT_EQ(fs->Remove((*mount)->root_fh(), "file-" + std::to_string(i), cred), Stat::kOk);
    }
    return *mount;
  }

  // Secure-channel events only (the SFS client/server layers).
  std::vector<obs::TraceEvent> ChanEvents() {
    std::vector<obs::TraceEvent> out;
    for (const obs::TraceEvent& event : sink_.Events()) {
      if (std::string(event.layer) == "sfs.chan") {
        out.push_back(event);
      }
    }
    return out;
  }

  obs::Registry registry_;
  obs::RingBufferSink sink_;
  sim::Clock clock_;
  sim::CostModel costs_;
  auth::AuthServer authserver_;
  std::unique_ptr<SfsServer> server_;
  std::unique_ptr<SfsClient> client_;
};

// --- Registry unit behavior --------------------------------------------------

TEST(RegistryTest, CountersAndHistograms) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(registry.GetCounter("test.counter"), c);  // Stable get-or-create.
  EXPECT_EQ(registry.CounterValue("test.counter"), 42u);
  EXPECT_EQ(registry.CounterValue("never.created"), 0u);

  obs::Histogram* h = registry.GetHistogram("test.latency_ns");
  h->Record(500);        // <= 1us bucket.
  h->Record(1'500);      // <= 2us bucket.
  h->Record(3'000'000);  // <= 4ms bucket.
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum_ns(), 3'001'500u + 500u);
  EXPECT_GT(h->MeanNs(), 0.0);
  // The max percentile lands in the bucket holding the largest sample.
  EXPECT_GE(h->ApproxPercentileNs(1.0), 3'000'000u);
  EXPECT_LE(h->ApproxPercentileNs(0.0), 1'000u);

  std::string text = registry.SnapshotText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("test.latency_ns"), std::string::npos);
}

TEST(TracerTest, InactiveWithoutSinksAndPrettyPrinterFormats) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.active());
  obs::RingBufferSink sink(4);
  tracer.AddSink(&sink);
  EXPECT_TRUE(tracer.active());

  obs::TraceEvent event;
  event.kind = obs::TraceEvent::Kind::kClientRetransmit;
  event.layer = "rpc";
  event.proc_name = "LOOKUP";
  event.xid = 7;
  event.seqno = 9;
  event.attempt = 2;
  for (int i = 0; i < 6; ++i) {  // Overflow a 4-slot ring.
    tracer.Emit(event);
  }
  EXPECT_EQ(sink.total_events(), 6u);
  EXPECT_EQ(sink.Events().size(), 4u);
  EXPECT_EQ(sink.dropped(), 2u);

  std::string line = obs::PrettyPrintSink::Format(event);
  EXPECT_NE(line.find("LOOKUP"), std::string::npos);
  EXPECT_NE(line.find("xid=7"), std::string::npos);
  EXPECT_NE(line.find("retransmit"), std::string::npos);

  tracer.RemoveSink(&sink);
  EXPECT_FALSE(tracer.active());
}

// --- Clean run: every call traced, no retransmission noise -------------------

TEST_F(ObsTest, CleanRunTracesEveryCallExactlyOnce) {
  ASSERT_NE(RunWorkload(4), nullptr);
  std::map<uint32_t, int> calls, replies, retransmits;
  for (const obs::TraceEvent& event : ChanEvents()) {
    switch (event.kind) {
      case obs::TraceEvent::Kind::kClientCall:
        ++calls[event.xid];
        break;
      case obs::TraceEvent::Kind::kClientReply:
        ++replies[event.xid];
        break;
      case obs::TraceEvent::Kind::kClientRetransmit:
        ++retransmits[event.xid];
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(calls.empty());
  EXPECT_TRUE(retransmits.empty());
  for (const auto& [xid, n] : calls) {
    EXPECT_EQ(n, 1) << "xid " << xid << " sent twice on a clean link";
    EXPECT_EQ(replies[xid], 1) << "xid " << xid;
  }
  // Per-procedure families populated under the canonical names.
  const obs::Histogram* create_latency =
      registry_.FindHistogram("rpc.client.NFS3.CREATE.latency_ns");
  ASSERT_NE(create_latency, nullptr);
  EXPECT_EQ(create_latency->count(), 4u);
  EXPECT_EQ(registry_.CounterValue("rpc.client.NFS3.CREATE.calls"), 4u);
  EXPECT_EQ(registry_.CounterValue("server.NFS3.CREATE.calls"), 4u);
  EXPECT_GT(registry_.CounterValue("link.messages"), 0u);
  EXPECT_EQ(registry_.CounterValue("link.retransmissions"), 0u);
  EXPECT_EQ(registry_.CounterValue("server.drc_hits"), 0u);
}

// --- The acceptance test: exactly-once by trace inspection -------------------

TEST_F(ObsTest, LossyRunShowsExactlyOnceDeliveryInTrace) {
  // The ISSUE acceptance profile: seeded 5% drop + 2% duplicate.
  sim::LossyInterposer lossy(/*seed=*/42, {.drop = 0.05, .duplicate = 0.02});
  client_->set_interposer(&lossy);
  SfsClient::MountPoint* mount = RunWorkload(16);
  ASSERT_NE(mount, nullptr);
  ASSERT_GT(lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates(), 0u);
  ASSERT_EQ(sink_.dropped(), 0u) << "ring too small: trace incomplete";

  std::map<uint32_t, int> replies, retransmits;
  std::map<uint32_t, int> dispatches_by_seqno;  // Handler executions.
  bool saw_server_drc_hit = false;
  for (const obs::TraceEvent& event : ChanEvents()) {
    switch (event.kind) {
      case obs::TraceEvent::Kind::kClientReply:
        ++replies[event.xid];
        break;
      case obs::TraceEvent::Kind::kClientRetransmit:
        ++retransmits[event.xid];
        break;
      case obs::TraceEvent::Kind::kServerDispatch:
        ++dispatches_by_seqno[event.seqno];
        break;
      case obs::TraceEvent::Kind::kServerDrcHit:
        saw_server_drc_hit = true;
        EXPECT_TRUE(event.drc_hit);
        break;
      default:
        break;
    }
  }

  // The server deduplicated at least one redelivered request, and the
  // trace says so explicitly.
  EXPECT_TRUE(saw_server_drc_hit);

  // A retransmitted xid reached the application exactly once: stale-reply
  // resends at the channel layer never surface twice above it.
  ASSERT_FALSE(replies.empty());
  for (const auto& [xid, n] : retransmits) {
    EXPECT_GT(n, 0);
    EXPECT_EQ(replies[xid], 1)
        << "xid " << xid << " was retransmitted " << n
        << " times but delivered " << replies[xid] << " times to the application";
  }
  for (const auto& [xid, n] : replies) {
    EXPECT_EQ(n, 1) << "xid " << xid << " delivered " << n << " times";
  }

  // Every wire seqno hit a handler exactly once — duplicates were
  // answered from the reply cache, never re-executed.
  for (const auto& [seqno, n] : dispatches_by_seqno) {
    EXPECT_EQ(n, 1) << "seqno " << seqno << " dispatched " << n << " times";
  }

  // The dedup plumbing shims agree with the registry aggregates.
  EXPECT_EQ(registry_.CounterValue("server.drc_hits"), server_->drc_hits());
  EXPECT_EQ(mount->link()->retransmissions(),
            registry_.CounterValue("link.retransmissions"));
  EXPECT_EQ(mount->stale_retries(), registry_.CounterValue("rpc.client.stale_retries"));
}

// --- Pipelined channel: exactly-once at every swept window size --------------

TEST_F(ObsTest, PipelinedLossyRunShowsExactlyOnceAtEverySweptWindow) {
  // Same acceptance profile as above, but with a sliding send window
  // keeping several calls in flight.  Out-of-order completion, timer
  // retransmissions, and DRC replays must still collapse to exactly one
  // application-level reply per xid and one dispatch per seqno — and the
  // ring-buffer trace, not just counters, must prove it per window size.
  for (uint32_t window : {2u, 4u, 8u}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    SfsClient::Options options;
    options.ephemeral_key_bits = kKeyBits;
    options.registry = &registry_;
    options.window = window;
    SfsClient client(&clock_, &costs_,
                     [this](const std::string&) { return server_.get(); }, options);
    sim::LossyInterposer lossy(/*seed=*/1000 + window, {.drop = 0.05, .duplicate = 0.02});
    client.set_interposer(&lossy);

    const size_t skip = sink_.Events().size();
    auto mount = client.Mount(server_->Path());
    ASSERT_TRUE(mount.ok()) << mount.status().ToString();
    EXPECT_EQ((*mount)->window(), window);

    nfs::FileSystemApi* fs = (*mount)->fs();
    const Credentials cred = Credentials::User(0);
    Fattr attr;
    for (int i = 0; i < 12; ++i) {
      FileHandle fh;
      std::string name = "pipelined-" + std::to_string(i);
      ASSERT_EQ(fs->Create((*mount)->root_fh(), name, cred, nfs::Sattr{}, &fh, &attr),
                Stat::kOk)
          << name;
      ASSERT_EQ(fs->Write(fh, cred, 0, BytesOf(name), /*stable=*/true, &attr), Stat::kOk);
      Bytes data;
      bool eof = false;
      ASSERT_EQ(fs->Read(fh, cred, 0, 4096, &data, &eof), Stat::kOk);
      EXPECT_EQ(data, BytesOf(name));
      ASSERT_EQ(fs->Remove((*mount)->root_fh(), name, cred), Stat::kOk);
    }
    (*mount)->Drain();
    EXPECT_EQ((*mount)->in_flight(), 0u);

    // This window's slice of the trace (the ring is large enough that
    // nothing from this run has been evicted).
    ASSERT_EQ(sink_.dropped(), 0u) << "ring too small: trace incomplete";
    std::vector<obs::TraceEvent> events = sink_.Events();
    ASSERT_GE(events.size(), skip);
    std::map<uint32_t, int> calls, replies, retransmits;
    std::map<uint32_t, int> dispatches_by_seqno;
    std::map<uint32_t, int> drc_hits_by_seqno;
    for (size_t i = skip; i < events.size(); ++i) {
      const obs::TraceEvent& event = events[i];
      if (std::string(event.layer) != "sfs.chan") {
        continue;
      }
      switch (event.kind) {
        case obs::TraceEvent::Kind::kClientCall:
          ++calls[event.xid];
          break;
        case obs::TraceEvent::Kind::kClientReply:
          ++replies[event.xid];
          break;
        case obs::TraceEvent::Kind::kClientRetransmit:
          ++retransmits[event.xid];
          break;
        case obs::TraceEvent::Kind::kServerDispatch:
          ++dispatches_by_seqno[event.seqno];
          break;
        case obs::TraceEvent::Kind::kServerDrcHit:
          ++drc_hits_by_seqno[event.seqno];
          break;
        default:
          break;
      }
    }

    // The seed deterministically injected faults, so the masking machinery
    // demonstrably ran at this window size.
    EXPECT_GT(lossy.requests_dropped() + lossy.responses_dropped() + lossy.duplicates(), 0u);
    EXPECT_FALSE(retransmits.empty());

    // Exactly-once, by trace: one application reply per xid...
    ASSERT_FALSE(calls.empty());
    for (const auto& [xid, n] : calls) {
      EXPECT_EQ(n, 1) << "xid " << xid << " entered the window twice";
      EXPECT_EQ(replies[xid], 1) << "xid " << xid;
    }
    for (const auto& [xid, n] : replies) {
      EXPECT_EQ(n, 1) << "xid " << xid << " delivered " << n << " times";
    }
    // ...one handler execution per seqno, and every DRC hit names a seqno
    // that genuinely was dispatched once before (a hit for a never-seen
    // seqno would mean the cache is answering requests it never executed).
    for (const auto& [seqno, n] : dispatches_by_seqno) {
      EXPECT_EQ(n, 1) << "seqno " << seqno << " dispatched " << n << " times";
    }
    for (const auto& [seqno, n] : drc_hits_by_seqno) {
      EXPECT_GT(n, 0);
      EXPECT_EQ(dispatches_by_seqno.count(seqno), 1u)
          << "DRC hit for seqno " << seqno << " that was never dispatched";
    }
  }
}

// --- Snapshot round-trip -----------------------------------------------------

TEST_F(ObsTest, SnapshotJsonParsesAndCarriesTimeSplit) {
  ASSERT_NE(RunWorkload(4), nullptr);
  clock_.ExportTimeCounters(&registry_);
  std::string json = registry_.SnapshotJson();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.client.NFS3.CREATE.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"time.total_ns\""), std::string::npos);

  // The clock's category ledger must account for every nanosecond.
  uint64_t sum = 0;
  for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
    sum += clock_.charged_ns(static_cast<obs::TimeCategory>(i));
  }
  EXPECT_EQ(sum, clock_.now_ns());
  EXPECT_EQ(clock_.charged_ns(obs::TimeCategory::kUntracked), 0u);
  EXPECT_GT(clock_.charged_ns(obs::TimeCategory::kLink), 0u);
  EXPECT_GT(clock_.charged_ns(obs::TimeCategory::kCrypto), 0u);
  EXPECT_GT(clock_.charged_ns(obs::TimeCategory::kDisk), 0u);
}

// --- SpanCollector unit behavior ---------------------------------------------

// A hand-cranked clock + ledger pair for driving the collector without a
// simulation: Tick() advances time and charges one category.
struct FakeLedger {
  uint64_t now = 0;
  uint64_t charged[obs::kTimeCategoryCount] = {};

  void Tick(obs::TimeCategory category, uint64_t ns) {
    now += ns;
    charged[static_cast<size_t>(category)] += ns;
  }
  void Wire(obs::SpanCollector* spans, size_t capacity = 1 << 10) {
    spans->Enable([this] { return now; },
                  [this](uint64_t out[obs::kTimeCategoryCount]) {
                    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
                      out[i] = charged[i];
                    }
                  },
                  capacity);
  }
};

TEST(SpanCollectorTest, DisabledCollectorIsFreeAndInert) {
  obs::SpanCollector spans;
  EXPECT_FALSE(spans.enabled());
  EXPECT_EQ(spans.Begin("op", "test"), 0u);
  spans.End(0);  // No-op, must not crash.
  {
    obs::ScopedSpan scoped(&spans, "op", "test");
    EXPECT_EQ(scoped.id(), 0u);
    EXPECT_EQ(scoped.span(), nullptr);
  }
  EXPECT_FALSE(spans.current().valid());
  EXPECT_TRUE(spans.finished().empty());
}

TEST(SpanCollectorTest, AmbientStackBuildsTreeAndSplitsLedger) {
  obs::SpanCollector spans;
  FakeLedger ledger;
  ledger.Wire(&spans);

  uint64_t root = spans.Begin("vfs.open", "vfs");
  spans.Push(root);
  ledger.Tick(obs::TimeCategory::kSyscall, 10);
  uint64_t child = spans.Begin("rpc.call", "rpc");  // Ambient parent: root.
  spans.Push(child);
  ledger.Tick(obs::TimeCategory::kLink, 100);
  spans.Pop(child);
  spans.End(child);
  ledger.Tick(obs::TimeCategory::kCpu, 5);
  spans.Pop(root);
  spans.End(root);

  ASSERT_EQ(spans.finished().size(), 2u);
  const obs::Span& c = spans.finished()[0];
  const obs::Span& r = spans.finished()[1];
  EXPECT_EQ(r.parent_id, 0u);
  EXPECT_EQ(r.trace_id, r.id);
  EXPECT_EQ(c.parent_id, r.id);
  EXPECT_EQ(c.trace_id, r.trace_id);

  // Intervals nest and the ledger split is exact at both levels: the
  // child saw only the link time, the root the whole 115ns.
  EXPECT_LE(r.start_ns, c.start_ns);
  EXPECT_GE(r.end_ns, c.end_ns);
  EXPECT_EQ(c.duration_ns(), 100u);
  EXPECT_EQ(c.CategoryTotalNs(), c.duration_ns());
  EXPECT_EQ(c.cat_ns[static_cast<size_t>(obs::TimeCategory::kLink)], 100u);
  EXPECT_EQ(r.duration_ns(), 115u);
  EXPECT_EQ(r.CategoryTotalNs(), r.duration_ns());
  EXPECT_EQ(r.cat_ns[static_cast<size_t>(obs::TimeCategory::kSyscall)], 10u);
  EXPECT_EQ(r.cat_ns[static_cast<size_t>(obs::TimeCategory::kLink)], 100u);
  EXPECT_EQ(r.cat_ns[static_cast<size_t>(obs::TimeCategory::kCpu)], 5u);
}

TEST(SpanCollectorTest, ExplicitParentWinsOverAmbientStack) {
  obs::SpanCollector spans;
  FakeLedger ledger;
  ledger.Wire(&spans);

  uint64_t root_a = spans.Begin("op.a", "test");
  obs::SpanContext ctx_a = spans.Find(root_a)->context();
  spans.End(root_a);

  // An unrelated ambient span is open, but the explicit context (as
  // carried across the wire) must take precedence.
  uint64_t root_b = spans.Begin("op.b", "test");
  spans.Push(root_b);
  uint64_t child = spans.Begin("server.dispatch", "server", ctx_a);
  spans.End(child);
  spans.Pop(root_b);
  spans.End(root_b);

  std::vector<obs::Span> finished = spans.TakeFinished();
  ASSERT_EQ(finished.size(), 3u);
  const obs::Span& dispatch = finished[1];
  EXPECT_EQ(dispatch.name, "server.dispatch");
  EXPECT_EQ(dispatch.parent_id, root_a);
  EXPECT_EQ(dispatch.trace_id, root_a);
}

TEST(SpanCollectorTest, RecordClosedAssignsIdsAndCapacityDropsCount) {
  obs::SpanCollector spans;
  FakeLedger ledger;
  ledger.Wire(&spans, /*capacity=*/2);

  uint64_t root = spans.Begin("op", "test");
  obs::SpanContext ctx = spans.Find(root)->context();

  // A pipelined link transit is measured externally and recorded whole.
  obs::Span transit;
  transit.name = "link.transit";
  transit.layer = "sim.link";
  transit.start_ns = 1;
  transit.end_ns = 4;
  spans.RecordClosed(transit, ctx);
  ASSERT_EQ(spans.finished().size(), 1u);
  EXPECT_EQ(spans.finished()[0].parent_id, root);
  EXPECT_EQ(spans.finished()[0].trace_id, root);
  EXPECT_NE(spans.finished()[0].id, 0u);

  spans.End(root);  // Fills the 2-slot store.
  EXPECT_EQ(spans.dropped(), 0u);
  uint64_t extra = spans.Begin("overflow", "test");
  spans.End(extra);
  EXPECT_EQ(spans.finished().size(), 2u);
  EXPECT_EQ(spans.dropped(), 1u);
}

TEST(SpanCollectorTest, SlowOpLogFiresOnThresholdAndOnDrcHit) {
  obs::SpanCollector spans;
  FakeLedger ledger;
  ledger.Wire(&spans);
  std::vector<std::string> dumps;
  spans.EnableSlowOpLog(1'000, [&dumps](const std::string& d) { dumps.push_back(d); });

  // Fast and clean: not logged.
  uint64_t fast = spans.Begin("fast.op", "test");
  ledger.Tick(obs::TimeCategory::kCpu, 10);
  spans.End(fast);
  EXPECT_EQ(dumps.size(), 0u);

  // Over threshold: logged with the whole tree in the dump.
  uint64_t slow = spans.Begin("slow.op", "test");
  spans.Push(slow);
  uint64_t child = spans.Begin("slow.child", "test");
  ledger.Tick(obs::TimeCategory::kLink, 5'000);
  spans.End(child);
  spans.Pop(slow);
  spans.End(slow);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("slow.op"), std::string::npos);
  EXPECT_NE(dumps[0].find("slow.child"), std::string::npos);

  // Fast but answered from the duplicate-request cache: still logged.
  uint64_t dup = spans.Begin("dup.op", "test");
  if (obs::Span* s = spans.Find(dup)) {
    s->drc_hit = true;
  }
  spans.End(dup);
  EXPECT_EQ(dumps.size(), 2u);
  EXPECT_EQ(spans.slow_ops_logged(), 2u);
}

TEST(SpanAnalysisTest, CriticalPathTablesAndChromeExport) {
  obs::SpanCollector spans;
  FakeLedger ledger;
  ledger.Wire(&spans);

  for (int i = 0; i < 3; ++i) {
    uint64_t root = spans.Begin("vfs.read", "vfs");
    spans.Push(root);
    ledger.Tick(obs::TimeCategory::kSyscall, 10);
    uint64_t call = spans.Begin("rpc.call.READ", "rpc");
    ledger.Tick(obs::TimeCategory::kLink, 200);
    spans.End(call);
    spans.Pop(root);
    spans.End(root);
  }
  std::vector<obs::Span> finished = spans.TakeFinished();

  std::vector<obs::CriticalPathRow> roots = obs::CriticalPathByRoot(finished);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "vfs.read");
  EXPECT_EQ(roots[0].count, 3u);
  EXPECT_EQ(roots[0].total_ns, 3u * 210u);
  EXPECT_EQ(roots[0].cat_ns[static_cast<size_t>(obs::TimeCategory::kLink)], 600u);
  EXPECT_EQ(roots[0].cat_ns[static_cast<size_t>(obs::TimeCategory::kSyscall)], 30u);

  std::vector<obs::CriticalPathRow> rpc = obs::CriticalPathByName(finished, "rpc");
  ASSERT_EQ(rpc.size(), 1u);
  EXPECT_EQ(rpc[0].name, "rpc.call.READ");
  EXPECT_EQ(rpc[0].count, 3u);

  std::string json = obs::ExportChromeTrace(finished);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"vfs.read\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  std::string tree = obs::FormatSpanTree(finished, finished[1].trace_id);
  EXPECT_NE(tree.find("vfs.read"), std::string::npos);
  EXPECT_NE(tree.find("rpc.call.READ"), std::string::npos);
}

}  // namespace
