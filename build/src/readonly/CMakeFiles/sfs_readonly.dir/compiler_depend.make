# Empty compiler generated dependencies file for sfs_readonly.
# This may be replaced when dependencies are built.
