file(REMOVE_RECURSE
  "CMakeFiles/sfs_readonly.dir/readonly.cc.o"
  "CMakeFiles/sfs_readonly.dir/readonly.cc.o.d"
  "libsfs_readonly.a"
  "libsfs_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
