file(REMOVE_RECURSE
  "libsfs_readonly.a"
)
