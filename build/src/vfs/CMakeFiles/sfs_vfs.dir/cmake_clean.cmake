file(REMOVE_RECURSE
  "CMakeFiles/sfs_vfs.dir/vfs.cc.o"
  "CMakeFiles/sfs_vfs.dir/vfs.cc.o.d"
  "libsfs_vfs.a"
  "libsfs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
