file(REMOVE_RECURSE
  "libsfs_vfs.a"
)
