# Empty compiler generated dependencies file for sfs_vfs.
# This may be replaced when dependencies are built.
