# Empty dependencies file for sfs_xdr.
# This may be replaced when dependencies are built.
