file(REMOVE_RECURSE
  "libsfs_xdr.a"
)
