file(REMOVE_RECURSE
  "CMakeFiles/sfs_xdr.dir/xdr.cc.o"
  "CMakeFiles/sfs_xdr.dir/xdr.cc.o.d"
  "libsfs_xdr.a"
  "libsfs_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
