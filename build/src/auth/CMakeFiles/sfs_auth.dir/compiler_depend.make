# Empty compiler generated dependencies file for sfs_auth.
# This may be replaced when dependencies are built.
