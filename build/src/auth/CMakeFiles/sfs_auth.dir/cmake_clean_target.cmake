file(REMOVE_RECURSE
  "libsfs_auth.a"
)
