file(REMOVE_RECURSE
  "CMakeFiles/sfs_auth.dir/authserver.cc.o"
  "CMakeFiles/sfs_auth.dir/authserver.cc.o.d"
  "libsfs_auth.a"
  "libsfs_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
