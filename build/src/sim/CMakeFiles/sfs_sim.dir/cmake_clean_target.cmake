file(REMOVE_RECURSE
  "libsfs_sim.a"
)
