# Empty compiler generated dependencies file for sfs_sim.
# This may be replaced when dependencies are built.
