file(REMOVE_RECURSE
  "CMakeFiles/sfs_sim.dir/disk.cc.o"
  "CMakeFiles/sfs_sim.dir/disk.cc.o.d"
  "CMakeFiles/sfs_sim.dir/network.cc.o"
  "CMakeFiles/sfs_sim.dir/network.cc.o.d"
  "libsfs_sim.a"
  "libsfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
