file(REMOVE_RECURSE
  "CMakeFiles/sfs_util.dir/bytes.cc.o"
  "CMakeFiles/sfs_util.dir/bytes.cc.o.d"
  "CMakeFiles/sfs_util.dir/log.cc.o"
  "CMakeFiles/sfs_util.dir/log.cc.o.d"
  "CMakeFiles/sfs_util.dir/status.cc.o"
  "CMakeFiles/sfs_util.dir/status.cc.o.d"
  "libsfs_util.a"
  "libsfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
