file(REMOVE_RECURSE
  "libsfs_util.a"
)
