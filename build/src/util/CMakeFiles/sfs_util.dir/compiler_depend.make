# Empty compiler generated dependencies file for sfs_util.
# This may be replaced when dependencies are built.
