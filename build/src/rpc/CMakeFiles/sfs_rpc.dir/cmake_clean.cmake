file(REMOVE_RECURSE
  "CMakeFiles/sfs_rpc.dir/rpc.cc.o"
  "CMakeFiles/sfs_rpc.dir/rpc.cc.o.d"
  "libsfs_rpc.a"
  "libsfs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
