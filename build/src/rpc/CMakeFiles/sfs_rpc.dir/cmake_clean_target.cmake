file(REMOVE_RECURSE
  "libsfs_rpc.a"
)
