# Empty compiler generated dependencies file for sfs_rpc.
# This may be replaced when dependencies are built.
