file(REMOVE_RECURSE
  "libsfs_agent.a"
)
