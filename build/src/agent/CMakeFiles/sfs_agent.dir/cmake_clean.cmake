file(REMOVE_RECURSE
  "CMakeFiles/sfs_agent.dir/agent.cc.o"
  "CMakeFiles/sfs_agent.dir/agent.cc.o.d"
  "libsfs_agent.a"
  "libsfs_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
