# Empty dependencies file for sfs_agent.
# This may be replaced when dependencies are built.
