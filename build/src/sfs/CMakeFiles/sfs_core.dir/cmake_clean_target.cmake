file(REMOVE_RECURSE
  "libsfs_core.a"
)
