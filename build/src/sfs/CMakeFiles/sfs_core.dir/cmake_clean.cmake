file(REMOVE_RECURSE
  "CMakeFiles/sfs_core.dir/client.cc.o"
  "CMakeFiles/sfs_core.dir/client.cc.o.d"
  "CMakeFiles/sfs_core.dir/handle_crypt.cc.o"
  "CMakeFiles/sfs_core.dir/handle_crypt.cc.o.d"
  "CMakeFiles/sfs_core.dir/idmap.cc.o"
  "CMakeFiles/sfs_core.dir/idmap.cc.o.d"
  "CMakeFiles/sfs_core.dir/server.cc.o"
  "CMakeFiles/sfs_core.dir/server.cc.o.d"
  "CMakeFiles/sfs_core.dir/session.cc.o"
  "CMakeFiles/sfs_core.dir/session.cc.o.d"
  "CMakeFiles/sfs_core.dir/sfskey.cc.o"
  "CMakeFiles/sfs_core.dir/sfskey.cc.o.d"
  "libsfs_core.a"
  "libsfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
