# Empty dependencies file for sfs_core.
# This may be replaced when dependencies are built.
