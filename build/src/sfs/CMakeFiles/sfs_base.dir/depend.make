# Empty dependencies file for sfs_base.
# This may be replaced when dependencies are built.
