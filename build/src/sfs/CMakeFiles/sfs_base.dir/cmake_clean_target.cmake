file(REMOVE_RECURSE
  "libsfs_base.a"
)
