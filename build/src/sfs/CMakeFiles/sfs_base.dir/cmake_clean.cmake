file(REMOVE_RECURSE
  "CMakeFiles/sfs_base.dir/pathname.cc.o"
  "CMakeFiles/sfs_base.dir/pathname.cc.o.d"
  "CMakeFiles/sfs_base.dir/revocation.cc.o"
  "CMakeFiles/sfs_base.dir/revocation.cc.o.d"
  "libsfs_base.a"
  "libsfs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
