
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/arc4.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/arc4.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/arc4.cc.o.d"
  "/root/repo/src/crypto/bignum.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/bignum.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/bignum.cc.o.d"
  "/root/repo/src/crypto/blowfish.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/blowfish.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/blowfish.cc.o.d"
  "/root/repo/src/crypto/prng.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/prng.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/prng.cc.o.d"
  "/root/repo/src/crypto/rabin.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/rabin.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/rabin.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/sha1.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/sha1.cc.o.d"
  "/root/repo/src/crypto/srp.cc" "src/crypto/CMakeFiles/sfs_crypto.dir/srp.cc.o" "gcc" "src/crypto/CMakeFiles/sfs_crypto.dir/srp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
