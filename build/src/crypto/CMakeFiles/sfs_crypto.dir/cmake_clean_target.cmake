file(REMOVE_RECURSE
  "libsfs_crypto.a"
)
