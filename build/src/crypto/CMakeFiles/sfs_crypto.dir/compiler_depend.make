# Empty compiler generated dependencies file for sfs_crypto.
# This may be replaced when dependencies are built.
