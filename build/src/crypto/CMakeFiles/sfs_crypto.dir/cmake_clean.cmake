file(REMOVE_RECURSE
  "CMakeFiles/sfs_crypto.dir/arc4.cc.o"
  "CMakeFiles/sfs_crypto.dir/arc4.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/bignum.cc.o"
  "CMakeFiles/sfs_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/blowfish.cc.o"
  "CMakeFiles/sfs_crypto.dir/blowfish.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/prng.cc.o"
  "CMakeFiles/sfs_crypto.dir/prng.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/rabin.cc.o"
  "CMakeFiles/sfs_crypto.dir/rabin.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/sha1.cc.o"
  "CMakeFiles/sfs_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/sfs_crypto.dir/srp.cc.o"
  "CMakeFiles/sfs_crypto.dir/srp.cc.o.d"
  "libsfs_crypto.a"
  "libsfs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
