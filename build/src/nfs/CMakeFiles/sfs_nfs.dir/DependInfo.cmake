
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/cache.cc" "src/nfs/CMakeFiles/sfs_nfs.dir/cache.cc.o" "gcc" "src/nfs/CMakeFiles/sfs_nfs.dir/cache.cc.o.d"
  "/root/repo/src/nfs/client.cc" "src/nfs/CMakeFiles/sfs_nfs.dir/client.cc.o" "gcc" "src/nfs/CMakeFiles/sfs_nfs.dir/client.cc.o.d"
  "/root/repo/src/nfs/memfs.cc" "src/nfs/CMakeFiles/sfs_nfs.dir/memfs.cc.o" "gcc" "src/nfs/CMakeFiles/sfs_nfs.dir/memfs.cc.o.d"
  "/root/repo/src/nfs/program.cc" "src/nfs/CMakeFiles/sfs_nfs.dir/program.cc.o" "gcc" "src/nfs/CMakeFiles/sfs_nfs.dir/program.cc.o.d"
  "/root/repo/src/nfs/types.cc" "src/nfs/CMakeFiles/sfs_nfs.dir/types.cc.o" "gcc" "src/nfs/CMakeFiles/sfs_nfs.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/sfs_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/sfs_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
