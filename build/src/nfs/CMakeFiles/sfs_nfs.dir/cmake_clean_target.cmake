file(REMOVE_RECURSE
  "libsfs_nfs.a"
)
