# Empty dependencies file for sfs_nfs.
# This may be replaced when dependencies are built.
