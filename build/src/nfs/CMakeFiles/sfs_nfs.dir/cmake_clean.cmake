file(REMOVE_RECURSE
  "CMakeFiles/sfs_nfs.dir/cache.cc.o"
  "CMakeFiles/sfs_nfs.dir/cache.cc.o.d"
  "CMakeFiles/sfs_nfs.dir/client.cc.o"
  "CMakeFiles/sfs_nfs.dir/client.cc.o.d"
  "CMakeFiles/sfs_nfs.dir/memfs.cc.o"
  "CMakeFiles/sfs_nfs.dir/memfs.cc.o.d"
  "CMakeFiles/sfs_nfs.dir/program.cc.o"
  "CMakeFiles/sfs_nfs.dir/program.cc.o.d"
  "CMakeFiles/sfs_nfs.dir/types.cc.o"
  "CMakeFiles/sfs_nfs.dir/types.cc.o.d"
  "libsfs_nfs.a"
  "libsfs_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfs_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
