# Empty dependencies file for blowfish_test.
# This may be replaced when dependencies are built.
