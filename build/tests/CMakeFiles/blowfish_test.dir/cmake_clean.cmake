file(REMOVE_RECURSE
  "CMakeFiles/blowfish_test.dir/blowfish_test.cc.o"
  "CMakeFiles/blowfish_test.dir/blowfish_test.cc.o.d"
  "blowfish_test"
  "blowfish_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blowfish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
