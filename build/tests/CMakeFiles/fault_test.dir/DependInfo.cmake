
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/fault_test.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/fault_test.dir/fault_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfs/CMakeFiles/sfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/sfs_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/sfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/sfs_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/readonly/CMakeFiles/sfs_readonly.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfs/CMakeFiles/sfs_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/sfs_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sfs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
