file(REMOVE_RECURSE
  "CMakeFiles/rabin_test.dir/rabin_test.cc.o"
  "CMakeFiles/rabin_test.dir/rabin_test.cc.o.d"
  "rabin_test"
  "rabin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
