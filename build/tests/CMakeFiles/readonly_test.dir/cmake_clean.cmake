file(REMOVE_RECURSE
  "CMakeFiles/readonly_test.dir/readonly_test.cc.o"
  "CMakeFiles/readonly_test.dir/readonly_test.cc.o.d"
  "readonly_test"
  "readonly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readonly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
