file(REMOVE_RECURSE
  "CMakeFiles/srp_test.dir/srp_test.cc.o"
  "CMakeFiles/srp_test.dir/srp_test.cc.o.d"
  "srp_test"
  "srp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
