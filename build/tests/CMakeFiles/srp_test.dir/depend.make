# Empty dependencies file for srp_test.
# This may be replaced when dependencies are built.
