# Empty dependencies file for dorm_server.
# This may be replaced when dependencies are built.
