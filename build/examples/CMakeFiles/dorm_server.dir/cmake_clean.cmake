file(REMOVE_RECURSE
  "CMakeFiles/dorm_server.dir/dorm_server.cpp.o"
  "CMakeFiles/dorm_server.dir/dorm_server.cpp.o.d"
  "dorm_server"
  "dorm_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dorm_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
