# Empty dependencies file for nfs_weakness.
# This may be replaced when dependencies are built.
