file(REMOVE_RECURSE
  "CMakeFiles/nfs_weakness.dir/nfs_weakness.cpp.o"
  "CMakeFiles/nfs_weakness.dir/nfs_weakness.cpp.o.d"
  "nfs_weakness"
  "nfs_weakness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_weakness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
