# Empty dependencies file for password_roaming.
# This may be replaced when dependencies are built.
