file(REMOVE_RECURSE
  "CMakeFiles/password_roaming.dir/password_roaming.cpp.o"
  "CMakeFiles/password_roaming.dir/password_roaming.cpp.o.d"
  "password_roaming"
  "password_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/password_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
