file(REMOVE_RECURSE
  "CMakeFiles/fig9_lfs_large.dir/fig9_lfs_large.cc.o"
  "CMakeFiles/fig9_lfs_large.dir/fig9_lfs_large.cc.o.d"
  "fig9_lfs_large"
  "fig9_lfs_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_lfs_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
