# Empty compiler generated dependencies file for fig9_lfs_large.
# This may be replaced when dependencies are built.
