file(REMOVE_RECURSE
  "CMakeFiles/fig8_lfs_small.dir/fig8_lfs_small.cc.o"
  "CMakeFiles/fig8_lfs_small.dir/fig8_lfs_small.cc.o.d"
  "fig8_lfs_small"
  "fig8_lfs_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lfs_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
