# Empty dependencies file for fig8_lfs_small.
# This may be replaced when dependencies are built.
