file(REMOVE_RECURSE
  "CMakeFiles/fig7_compile.dir/fig7_compile.cc.o"
  "CMakeFiles/fig7_compile.dir/fig7_compile.cc.o.d"
  "fig7_compile"
  "fig7_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
