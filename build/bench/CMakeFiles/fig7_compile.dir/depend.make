# Empty dependencies file for fig7_compile.
# This may be replaced when dependencies are built.
