# Empty dependencies file for fig6_mab.
# This may be replaced when dependencies are built.
