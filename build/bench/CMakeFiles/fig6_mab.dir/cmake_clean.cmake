file(REMOVE_RECURSE
  "CMakeFiles/fig6_mab.dir/fig6_mab.cc.o"
  "CMakeFiles/fig6_mab.dir/fig6_mab.cc.o.d"
  "fig6_mab"
  "fig6_mab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
