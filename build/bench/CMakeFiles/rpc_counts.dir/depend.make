# Empty dependencies file for rpc_counts.
# This may be replaced when dependencies are built.
