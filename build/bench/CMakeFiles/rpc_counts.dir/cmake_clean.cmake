file(REMOVE_RECURSE
  "CMakeFiles/rpc_counts.dir/rpc_counts.cc.o"
  "CMakeFiles/rpc_counts.dir/rpc_counts.cc.o.d"
  "rpc_counts"
  "rpc_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
