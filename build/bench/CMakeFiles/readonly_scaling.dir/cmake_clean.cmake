file(REMOVE_RECURSE
  "CMakeFiles/readonly_scaling.dir/readonly_scaling.cc.o"
  "CMakeFiles/readonly_scaling.dir/readonly_scaling.cc.o.d"
  "readonly_scaling"
  "readonly_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readonly_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
