file(REMOVE_RECURSE
  "CMakeFiles/fig5_micro.dir/fig5_micro.cc.o"
  "CMakeFiles/fig5_micro.dir/fig5_micro.cc.o.d"
  "fig5_micro"
  "fig5_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
