# Empty dependencies file for crypto_prims.
# This may be replaced when dependencies are built.
