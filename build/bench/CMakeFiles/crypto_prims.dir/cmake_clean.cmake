file(REMOVE_RECURSE
  "CMakeFiles/crypto_prims.dir/crypto_prims.cc.o"
  "CMakeFiles/crypto_prims.dir/crypto_prims.cc.o.d"
  "crypto_prims"
  "crypto_prims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_prims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
