// Figure 6: the Modified Andrew Benchmark, per phase.
//
// Paper (wall-clock seconds; total in parentheses): Local fastest except
// compile; SFS ~11% (0.6 s) slower than NFS 3/UDP overall thanks to its
// more aggressive attribute/access caching; each phase appears as a
// counter on the benchmark below.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_Fig6_Mab(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    bench::MabResult result = bench::RunMab(&tb);
    state.SetIterationTime(result.total());
    state.counters["directories_s"] = result.directories;
    state.counters["copy_s"] = result.copy;
    state.counters["attributes_s"] = result.attributes;
    state.counters["search_s"] = result.search;
    state.counters["compile_s"] = result.compile;
    state.counters["total_s"] = result.total();
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_Fig6_Mab)
    ->Arg(static_cast<int>(Config::kLocal))
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig6_mab")
