// Ablation D: wire-message counts under MAB.
//
// The paper's caching argument (§4.2–4.3) is fundamentally about RPC
// counts: "SFS's enhanced caching improves performance by reducing the
// number of RPCs that need to travel over the network", and "without
// enhanced caching, MAB takes ... 0.7 seconds slower".  This benchmark
// reports the actual number of messages crossing the simulated wire for
// the MAB workload in each remote configuration, plus the retransmission
// and duplicate-request-cache counters: on a clean link both must be
// zero (the loss-masking machinery costs nothing), and on a lossy link
// they show how much traffic the at-most-once transport absorbed.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"
#include "src/sim/network.h"

namespace {

using bench::Config;
using bench::Testbed;

// Surfaces the per-procedure registry families for the hot NFS
// procedures as benchmark counters: how many calls each procedure made,
// how many were resent stale, and the mean virtual latency.
void ReportPerProc(benchmark::State& state, Testbed& tb) {
  for (const char* proc : {"LOOKUP", "GETATTR", "READ", "WRITE"}) {
    const std::string prefix = std::string("rpc.client.NFS3.") + proc;
    uint64_t calls = tb.registry()->CounterValue(prefix + ".calls");
    if (calls == 0) {
      continue;
    }
    state.counters[std::string(proc) + "_calls"] = static_cast<double>(calls);
    state.counters[std::string(proc) + "_retrans"] =
        static_cast<double>(tb.registry()->CounterValue(prefix + ".retransmits"));
    if (const obs::Histogram* latency = tb.registry()->FindHistogram(prefix + ".latency_ns");
        latency != nullptr && latency->count() > 0) {
      state.counters[std::string(proc) + "_mean_us"] = latency->MeanNs() / 1000.0;
    }
  }
}

void BM_RpcCounts_Mab(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    uint64_t before = tb.WireMessages();
    bench::MabResult result = bench::RunMab(&tb);
    uint64_t messages = tb.WireMessages() - before;
    state.SetIterationTime(result.total());
    state.counters["wire_messages"] = static_cast<double>(messages);
    state.counters["rpcs"] = static_cast<double>(messages) / 2.0;  // Call + reply.
    // Clean link: both stay zero, or the retry machinery is misfiring.
    state.counters["retransmissions"] = static_cast<double>(tb.Retransmissions());
    state.counters["drc_hits"] = static_cast<double>(tb.DrcHits());
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

// Same workload over a faulty wire (seeded 5% drop + 2% duplicate): the
// run must still complete, with the masked loss visible in the counters.
void BM_RpcCounts_MabLossy(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    sim::LossyInterposer lossy(/*seed=*/42, {.drop = 0.05, .duplicate = 0.02});
    tb.InstallInterposer(&lossy);
    uint64_t before = tb.WireMessages();
    bench::MabResult result = bench::RunMab(&tb);
    uint64_t messages = tb.WireMessages() - before;
    state.SetIterationTime(result.total());
    state.counters["wire_messages"] = static_cast<double>(messages);
    state.counters["retransmissions"] = static_cast<double>(tb.Retransmissions());
    state.counters["drc_hits"] = static_cast<double>(tb.DrcHits());
    state.counters["dropped"] =
        static_cast<double>(lossy.requests_dropped() + lossy.responses_dropped());
    state.counters["duplicated"] = static_cast<double>(lossy.duplicates());
    // Per-procedure attribution of the masked loss: which procedures
    // absorbed the retransmissions and what they cost in latency.
    ReportPerProc(state, tb);
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_RpcCounts_Mab)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCache))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_RpcCounts_MabLossy)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("rpc_counts")
