// Ablation D: wire-message counts under MAB.
//
// The paper's caching argument (§4.2–4.3) is fundamentally about RPC
// counts: "SFS's enhanced caching improves performance by reducing the
// number of RPCs that need to travel over the network", and "without
// enhanced caching, MAB takes ... 0.7 seconds slower".  This benchmark
// reports the actual number of messages crossing the simulated wire for
// the MAB workload in each remote configuration.
#include <benchmark/benchmark.h>

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_RpcCounts_Mab(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    uint64_t before = tb.WireMessages();
    bench::MabResult result = bench::RunMab(&tb);
    uint64_t messages = tb.WireMessages() - before;
    state.SetIterationTime(result.total());
    state.counters["wire_messages"] = static_cast<double>(messages);
    state.counters["rpcs"] = static_cast<double>(messages) / 2.0;  // Call + reply.
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_RpcCounts_Mab)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCache))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
