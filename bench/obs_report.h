// Shared observability-report workload: one testbed, a small mixed
// workload that exercises the common NFS procedures (LOOKUP, GETATTR,
// READ, WRITE, CREATE), then the registry's full JSON snapshot.
//
// Used by the standalone bench/obs_report binary and by fig5_micro's
// --obs flag, so both emit the same per-procedure breakdown shape.
#ifndef SFS_BENCH_OBS_REPORT_H_
#define SFS_BENCH_OBS_REPORT_H_

#include <string>

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace bench {

// Runs the mixed workload on a fresh testbed of `config` and returns
// Testbed::ObsSnapshotJson() — counters, per-procedure histograms, and
// the time.<category>_ns split refreshed from the clock's ledger.
// `text` swaps the JSON snapshot for the human-readable SnapshotText().
inline std::string RunObsWorkload(Config config, bool text = false) {
  Testbed tb(config);
  std::string dir = tb.WorkDir();

  // Write phase: CREATE + WRITE (+ the LOOKUPs of path resolution).
  const util::Bytes content = Content(32 * 1024, /*seed=*/99);
  for (int i = 0; i < 8; ++i) {
    WriteFile(&tb, dir + "/f" + std::to_string(i), content);
  }

  // Cold-cache read phase: LOOKUP + GETATTR + READ against the server.
  tb.DropClientCaches();
  for (int i = 0; i < 8; ++i) {
    std::string path = dir + "/f" + std::to_string(i);
    CheckResult(tb.vfs()->Stat(tb.user(), path), "stat");
    ReadFile(&tb, path);
  }
  // GETATTR phase: fstat an already-open handle after the attribute
  // lease/timeout expires, so revalidation needs a bare GETATTR (a
  // path stat would re-LOOKUP instead).
  auto probe = CheckResult(
      tb.vfs()->Open(tb.user(), dir + "/f0", vfs::OpenFlags::ReadOnly()), "open probe");
  for (int i = 0; i < 4; ++i) {
    tb.clock()->Advance(61'000'000'000, obs::TimeCategory::kApp);  // > lease + timeout.
    CheckResult(probe.Stat(), "fstat");
  }

  if (text) {
    tb.clock()->ExportTimeCounters(tb.registry());
    return tb.registry()->SnapshotText();
  }
  return tb.ObsSnapshotJson();
}

// Emits {"config_name": <snapshot>, ...} for each named configuration.
inline std::string ObsReportJson() {
  std::string out = "{\n";
  bool first = true;
  for (Config config : {Config::kNfsUdp, Config::kSfs, Config::kSfsNoCrypt}) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "\"";
    out += ConfigName(config);
    out += "\": ";
    out += RunObsWorkload(config);
  }
  out += "\n}\n";
  return out;
}

}  // namespace bench

#endif  // SFS_BENCH_OBS_REPORT_H_
