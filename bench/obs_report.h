// Shared observability-report workload: one testbed, a small mixed
// workload that exercises the common NFS procedures (LOOKUP, GETATTR,
// READ, WRITE, CREATE), then the registry's full JSON snapshot.
//
// Used by the standalone bench/obs_report binary and by fig5_micro's
// --obs flag, so both emit the same per-procedure breakdown shape.
#ifndef SFS_BENCH_OBS_REPORT_H_
#define SFS_BENCH_OBS_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace bench {

// Runs the mixed workload on a fresh testbed of `config` and returns
// Testbed::ObsSnapshotJson() — counters, per-procedure histograms, and
// the time.<category>_ns split refreshed from the clock's ledger.
// `text` swaps the JSON snapshot for the human-readable SnapshotText().
// `elapsed_virtual_ns`, when non-null, receives the workload's total
// virtual duration (for the BENCH_obs_report.json rows).
// `timeline_text`, when non-null, enables the testbed telemetry
// timeline (100 ms virtual windows) and receives its ToText rendering
// (obs_report --timeline).  Text mode attaches a small registry-backed
// trace ring so the footer can report overwrite pressure
// (trace.ring.dropped) alongside the gauges.
inline std::string RunObsWorkload(Config config, bool text = false,
                                  uint64_t* elapsed_virtual_ns = nullptr,
                                  std::string* timeline_text = nullptr) {
  Testbed tb(config);
  std::string dir = tb.WorkDir();
  if (timeline_text != nullptr) {
    tb.EnableTimeline(100'000'000);
  }
  std::unique_ptr<obs::RingBufferSink> ring;
  if (text) {
    ring = std::make_unique<obs::RingBufferSink>(256, tb.registry());
    tb.registry()->tracer().AddSink(ring.get());
  }
  const uint64_t workload_start_ns = tb.clock()->now_ns();

  // Write phase: CREATE + WRITE (+ the LOOKUPs of path resolution).
  const util::Bytes content = Content(32 * 1024, /*seed=*/99);
  for (int i = 0; i < 8; ++i) {
    WriteFile(&tb, dir + "/f" + std::to_string(i), content);
    tb.PollTimeline();
  }

  // Cold-cache read phase: LOOKUP + GETATTR + READ against the server.
  tb.DropClientCaches();
  for (int i = 0; i < 8; ++i) {
    std::string path = dir + "/f" + std::to_string(i);
    CheckResult(tb.vfs()->Stat(tb.user(), path), "stat");
    ReadFile(&tb, path);
    tb.PollTimeline();
  }
  // GETATTR phase: fstat an already-open handle after the attribute
  // lease/timeout expires, so revalidation needs a bare GETATTR (a
  // path stat would re-LOOKUP instead).
  auto probe = CheckResult(
      tb.vfs()->Open(tb.user(), dir + "/f0", vfs::OpenFlags::ReadOnly()), "open probe");
  for (int i = 0; i < 4; ++i) {
    tb.clock()->Advance(61'000'000'000, obs::TimeCategory::kApp);  // > lease + timeout.
    CheckResult(probe.Stat(), "fstat");
    tb.PollTimeline();
  }

  if (elapsed_virtual_ns != nullptr) {
    *elapsed_virtual_ns = tb.clock()->now_ns() - workload_start_ns;
  }
  if (timeline_text != nullptr) {
    *timeline_text = tb.FinalizeTimeline()->ToText();
  }
  if (text) {
    tb.clock()->ExportTimeCounters(tb.registry());
    std::string out = tb.registry()->SnapshotText();
    // Footer: trace-ring pressure.  The counter only counts overwrites,
    // so a run whose events fit the ring reports 0 dropped.
    tb.registry()->tracer().RemoveSink(ring.get());
    char footer[128];
    std::snprintf(footer, sizeof(footer),
                  "trace ring: %llu events seen (capacity 256), %llu dropped\n",
                  static_cast<unsigned long long>(ring->total_events()),
                  static_cast<unsigned long long>(
                      tb.registry()->CounterValue("trace.ring.dropped")));
    out += footer;
    return out;
  }
  return tb.ObsSnapshotJson();
}

// Emits {"config_name": <snapshot>, ...} for each named configuration.
// `report`, when non-null, gains one row per configuration carrying the
// workload's virtual elapsed time.
inline std::string ObsReportJson(class BenchReport* report = nullptr);

// --- Machine-readable benchmark results ---------------------------------
//
// Every bench/ binary writes BENCH_<name>.json next to its console
// output so tools/bench_compare.py can diff two checkouts without
// scraping tables.  Google-benchmark binaries capture their runs
// through JsonCaptureReporter; custom-main tools (obs_report,
// span_report) add rows by hand with BenchReport::Add.

struct BenchRun {
  std::string name;
  double real_time_s = 0.0;
  double cpu_time_s = 0.0;
  uint64_t iterations = 0;
  std::string label;
  bool error = false;
  std::vector<std::pair<std::string, double>> counters;
};

inline std::string BenchJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(BenchRun run) { runs_.push_back(std::move(run)); }

  // Attaches an obs::Timeline::ToJson() blob under `run_name` in the
  // report's top-level "timelines" section (docs/OBSERVABILITY.md §8).
  // A second timeline for the same run name replaces the first, so a
  // re-iterated benchmark keeps its last run's timeline.
  void AddTimeline(const std::string& run_name, std::string timeline_json) {
    for (auto& [name, json] : timelines_) {
      if (name == run_name) {
        json = std::move(timeline_json);
        return;
      }
    }
    timelines_.emplace_back(run_name, std::move(timeline_json));
  }

  const std::string& name() const { return name_; }
  bool empty() const { return runs_.empty(); }

  // Which sim::CostModel profile the runs were produced under
  // ("p3-550" or "calibrated"); emitted so compared results are known
  // to share a profile.
  void set_profile(std::string profile) { profile_ = std::move(profile); }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + BenchJsonEscape(name_) + "\",\n";
    out += "  \"schema\": 1,\n";
    if (!profile_.empty()) {
      out += "  \"profile\": \"" + BenchJsonEscape(profile_) + "\",\n";
    }
    out += "  \"runs\": [";
    bool first = true;
    for (const BenchRun& run : runs_) {
      out += first ? "\n" : ",\n";
      first = false;
      char buf[64];
      out += "    {\"name\": \"" + BenchJsonEscape(run.name) + "\"";
      std::snprintf(buf, sizeof(buf), ", \"real_time_s\": %.9g", run.real_time_s);
      out += buf;
      std::snprintf(buf, sizeof(buf), ", \"cpu_time_s\": %.9g", run.cpu_time_s);
      out += buf;
      std::snprintf(buf, sizeof(buf), ", \"iterations\": %llu",
                    static_cast<unsigned long long>(run.iterations));
      out += buf;
      out += std::string(", \"error\": ") + (run.error ? "true" : "false");
      if (!run.label.empty()) {
        out += ", \"label\": \"" + BenchJsonEscape(run.label) + "\"";
      }
      if (!run.counters.empty()) {
        out += ", \"counters\": {";
        bool first_counter = true;
        for (const auto& [counter_name, value] : run.counters) {
          if (!first_counter) {
            out += ", ";
          }
          first_counter = false;
          out += "\"" + BenchJsonEscape(counter_name) + "\": ";
          std::snprintf(buf, sizeof(buf), "%.9g", value);
          out += buf;
        }
        out += "}";
      }
      out += "}";
    }
    out += "\n  ]";
    if (!timelines_.empty()) {
      out += ",\n  \"timelines\": {";
      bool first_tl = true;
      for (const auto& [run_name, json] : timelines_) {
        out += first_tl ? "\n" : ",\n";
        first_tl = false;
        // `json` is already a serialized JSON object (Timeline::ToJson).
        out += "    \"" + BenchJsonEscape(run_name) + "\": " + json;
      }
      out += "\n  }";
    }
    out += "\n}\n";
    return out;
  }

  // Writes BENCH_<name>.json into `dir`; returns false (with a note on
  // stderr) if the file cannot be created.
  bool WriteTo(const std::string& dir = ".") const {
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string profile_;
  std::vector<BenchRun> runs_;
  std::vector<std::pair<std::string, std::string>> timelines_;
};

// Staging area for timelines produced inside google-benchmark run
// bodies, which have no handle on the BenchReport: a BM function calls
// RecordTimeline(run_name, timeline.ToJson()) and BenchJsonMain drains
// the pending set into the report after the run.
inline std::vector<std::pair<std::string, std::string>>& PendingTimelines() {
  static std::vector<std::pair<std::string, std::string>> pending;
  return pending;
}

inline void RecordTimeline(std::string run_name, std::string timeline_json) {
  PendingTimelines().emplace_back(std::move(run_name),
                                  std::move(timeline_json));
}

inline std::string ObsReportJson(BenchReport* report) {
  std::string out = "{\n";
  bool first = true;
  for (Config config : {Config::kNfsUdp, Config::kSfs, Config::kSfsNoCrypt}) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "\"";
    out += ConfigName(config);
    out += "\": ";
    uint64_t elapsed_ns = 0;
    out += RunObsWorkload(config, /*text=*/false, &elapsed_ns);
    if (report != nullptr) {
      BenchRun run;
      run.name = std::string("ObsWorkload/") + ConfigName(config);
      run.real_time_s = static_cast<double>(elapsed_ns) * 1e-9;
      run.iterations = 1;
      report->Add(std::move(run));
    }
  }
  out += "\n}\n";
  return out;
}

// Console reporter that also captures each run into a BenchReport, so
// the binary keeps its human-readable table and gains the JSON file.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) {
        continue;  // Skip aggregate (mean/stddev) synthetic rows.
      }
      BenchRun r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<uint64_t>(run.iterations);
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      r.real_time_s = run.real_accumulated_time / iters;
      r.cpu_time_s = run.cpu_accumulated_time / iters;
      r.label = run.report_label;
      r.error = run.error_occurred;
      for (const auto& [counter_name, counter] : run.counters) {
        r.counters.emplace_back(counter_name, static_cast<double>(counter.value));
      }
      report_->Add(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

// Drop-in replacement for BENCHMARK_MAIN(): runs the registered
// benchmarks with console output, then writes BENCH_<bench_name>.json.
// Two extra flags are stripped before google-benchmark sees the
// argument list: --bench_json_dir=<dir> picks the output directory
// (default "."), and --sfs_cost_model=<profile> selects the cost model
// ("p3-550" or "calibrated") by setting SFS_COST_MODEL before the
// first testbed is built.
inline int BenchJsonMain(int argc, char** argv, const char* bench_name) {
  std::string out_dir = ".";
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    constexpr const char kDirFlag[] = "--bench_json_dir=";
    constexpr const char kCostFlag[] = "--sfs_cost_model=";
    if (std::strncmp(argv[i], kDirFlag, sizeof(kDirFlag) - 1) == 0) {
      out_dir = argv[i] + sizeof(kDirFlag) - 1;
    } else if (std::strncmp(argv[i], kCostFlag, sizeof(kCostFlag) - 1) == 0) {
      setenv("SFS_COST_MODEL", argv[i] + sizeof(kCostFlag) - 1, /*overwrite=*/1);
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) {
    return 1;
  }
  BenchReport report(bench_name);
  report.set_profile(ActiveCostModel().profile);
  JsonCaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  for (auto& [run_name, json] : PendingTimelines()) {
    report.AddTimeline(run_name, std::move(json));
  }
  PendingTimelines().clear();
  report.WriteTo(out_dir);
  return 0;
}

#define SFS_BENCH_JSON_MAIN(bench_name)                         \
  int main(int argc, char** argv) {                             \
    return bench::BenchJsonMain(argc, argv, bench_name);        \
  }

}  // namespace bench

#endif  // SFS_BENCH_OBS_REPORT_H_
