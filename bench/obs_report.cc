// Standalone observability report: runs the mixed workload on the main
// remote configurations and dumps each testbed's full registry snapshot
// as JSON — per-procedure latency histograms, byte counters, and the
// link/crypto/disk/CPU time split (docs/OBSERVABILITY.md).
//
// Usage: obs_report [--text] [--timeline]
//   --text      human-readable SnapshotText() instead of JSON, with a
//               gauge section and a trace-ring footer.
//   --timeline  append the windowed telemetry timeline (virtual-time
//               tracks + episode annotations) for each configuration;
//               implies the text rendering for the timeline itself.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/obs_report.h"

int main(int argc, char** argv) {
  bool text = false;
  bool timeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else {
      std::fprintf(stderr, "usage: %s [--text] [--timeline]\n", argv[0]);
      return 2;
    }
  }

  if (!text && !timeline) {
    bench::BenchReport report("obs_report");
    std::fputs(bench::ObsReportJson(&report).c_str(), stdout);
    report.WriteTo();
    return 0;
  }
  for (bench::Config config :
       {bench::Config::kNfsUdp, bench::Config::kSfs, bench::Config::kSfsNoCrypt}) {
    std::string timeline_text;
    std::string snapshot =
        bench::RunObsWorkload(config, text, /*elapsed_virtual_ns=*/nullptr,
                              timeline ? &timeline_text : nullptr);
    if (text) {
      std::printf("=== %s ===\n%s\n", bench::ConfigName(config), snapshot.c_str());
    }
    if (timeline) {
      std::printf("=== %s timeline ===\n%s\n", bench::ConfigName(config),
                  timeline_text.c_str());
    }
  }
  return 0;
}
