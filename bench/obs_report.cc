// Standalone observability report: runs the mixed workload on the main
// remote configurations and dumps each testbed's full registry snapshot
// as JSON — per-procedure latency histograms, byte counters, and the
// link/crypto/disk/CPU time split (docs/OBSERVABILITY.md).
//
// Usage: obs_report [--text]
//   --text   human-readable SnapshotText() instead of JSON.
#include <cstdio>
#include <cstring>

#include "bench/obs_report.h"

int main(int argc, char** argv) {
  bool text = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else {
      std::fprintf(stderr, "usage: %s [--text]\n", argv[0]);
      return 2;
    }
  }

  if (!text) {
    bench::BenchReport report("obs_report");
    std::fputs(bench::ObsReportJson(&report).c_str(), stdout);
    report.WriteTo();
    return 0;
  }
  for (bench::Config config :
       {bench::Config::kNfsUdp, bench::Config::kSfs, bench::Config::kSfsNoCrypt}) {
    std::printf("=== %s ===\n%s\n", bench::ConfigName(config),
                bench::RunObsWorkload(config, /*text=*/true).c_str());
  }
  return 0;
}
