// Per-procedure critical-path report over the causal span traces
// (docs/OBSERVABILITY.md §Spans).  Runs a fig5- or fig7-style workload
// on the full SFS configuration with span collection enabled, prints
// critical-path tables for the root operations and the rpc / secure
// channel layers, and cross-checks the root table against the
// sim::Clock ledger: in the single-threaded simulation every
// nanosecond the workload advances the clock must land in exactly one
// TimeCategory bucket of exactly one root span, so the table's totals
// and the ledger must agree (the tool fails if they diverge by more
// than 1%).
//
// Usage: span_report [--workload fig5|fig7] [--export <trace.json>]
//                    [--slow-ns <n>] [--tree] [--bench_json_dir=<dir>]
//   --export    writes the collected spans as Chrome trace-event JSON,
//               loadable in Perfetto (ui.perfetto.dev).
//   --slow-ns   slow-op log threshold in virtual ns (default 5ms; 0
//               keeps only the retransmit/DRC triggers).
//   --tree      dumps the first trace's span tree (debugging aid).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/obs_report.h"
#include "bench/testbed.h"
#include "bench/workloads.h"
#include "src/obs/span.h"

namespace {

using bench::Config;
using bench::Testbed;

// Fig5-style microbenchmark mix: operations that always require a
// remote RPC.  A hundred denied fchowns (never cached) plus a
// sequential sparse-file read.
void RunFig5Workload(Testbed* tb, const std::string& dir) {
  auto target = bench::CheckResult(
      tb->vfs()->Open(tb->user(), dir + "/target", vfs::OpenFlags::CreateRw()), "create");
  nfs::Sattr chown;
  chown.uid = 4242;  // Requires superuser: always denied, never cached.
  for (int i = 0; i < 100; ++i) {
    util::Status status = target.SetAttr(chown);
    if (status.ok()) {
      bench::Check(util::InvalidArgument("unauthorized chown succeeded"), "fchown");
    }
  }
  bench::Check(target.Close(), "close");

  const uint64_t kFileSize = 4u << 20;  // Sparse: no server disk activity.
  bench::Check(
      tb->vfs()->Open(tb->user(), dir + "/sparse", vfs::OpenFlags::CreateRw()).status(),
      "create sparse");
  bench::Check(tb->vfs()->Truncate(tb->user(), dir + "/sparse", kFileSize), "truncate");
  tb->DropClientCaches();
  auto sparse = bench::CheckResult(
      tb->vfs()->Open(tb->user(), dir + "/sparse", vfs::OpenFlags::ReadOnly()), "open sparse");
  for (uint64_t off = 0; off < kFileSize; off += 8192) {
    bench::CheckResult(sparse.Pread(off, 8192), "pread");
  }
}

// Fig7-style miniature compile: read each source plus a shared header
// set, burn compile CPU, write the object file.
void RunFig7Workload(Testbed* tb, const std::string& dir) {
  constexpr int kSources = 20;
  constexpr int kHeaders = 5;
  constexpr uint64_t kCompileCpuNs = 10'000'000;  // 10 ms per unit.
  for (int h = 0; h < kHeaders; ++h) {
    bench::WriteFile(tb, dir + "/hdr" + std::to_string(h) + ".h",
                     bench::Content(16 * 1024, /*seed=*/500 + h));
  }
  for (int s = 0; s < kSources; ++s) {
    bench::WriteFile(tb, dir + "/unit" + std::to_string(s) + ".c",
                     bench::Content(24 * 1024, /*seed=*/600 + s));
  }
  tb->DropClientCaches();
  for (int s = 0; s < kSources; ++s) {
    bench::ReadFile(tb, dir + "/unit" + std::to_string(s) + ".c");
    for (int h = 0; h < kHeaders; ++h) {
      bench::ReadFile(tb, dir + "/hdr" + std::to_string(h) + ".h");
    }
    tb->clock()->Advance(kCompileCpuNs, obs::TimeCategory::kApp);
    bench::WriteFile(tb, dir + "/unit" + std::to_string(s) + ".o",
                     bench::Content(32 * 1024, /*seed=*/700 + s));
  }
}

void PrintTable(const char* title, const std::vector<obs::CriticalPathRow>& rows) {
  if (rows.empty()) {
    return;  // Layer unused by this configuration (e.g. plain rpc under SFS).
  }
  std::printf("\n%s\n", title);
  std::printf("  %-28s %8s %14s", "name", "count", "total_ms");
  for (size_t c = 0; c < obs::kTimeCategoryCount; ++c) {
    std::printf(" %9s", obs::TimeCategoryName(static_cast<obs::TimeCategory>(c)));
  }
  std::printf("\n");
  for (const obs::CriticalPathRow& row : rows) {
    std::printf("  %-28s %8llu %14.3f", row.name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<double>(row.total_ns) / 1e6);
    for (size_t c = 0; c < obs::kTimeCategoryCount; ++c) {
      std::printf(" %9.3f", static_cast<double>(row.cat_ns[c]) / 1e6);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "fig5";
  std::string export_path;
  std::string json_dir = ".";
  uint64_t slow_ns = 5'000'000;
  bool dump_tree = false;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kDirFlag[] = "--bench_json_dir=";
    if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-ns") == 0 && i + 1 < argc) {
      slow_ns = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      dump_tree = true;
    } else if (std::strncmp(argv[i], kDirFlag, sizeof(kDirFlag) - 1) == 0) {
      json_dir = argv[i] + sizeof(kDirFlag) - 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload fig5|fig7] [--export <trace.json>] "
                   "[--slow-ns <n>] [--tree] [--bench_json_dir=<dir>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (workload != "fig5" && workload != "fig7") {
    std::fprintf(stderr, "unknown workload %s (expected fig5 or fig7)\n", workload.c_str());
    return 2;
  }

  Testbed tb(Config::kSfs);
  std::string dir = tb.WorkDir();
  tb.EnableSpans();
  uint64_t slow_op_dumps = 0;
  tb.registry()->spans().EnableSlowOpLog(
      slow_ns, [&slow_op_dumps](const std::string& dump) {
        ++slow_op_dumps;
        if (slow_op_dumps <= 3) {  // Keep the report readable.
          std::fprintf(stderr, "slow op:\n%s", dump.c_str());
        }
      });

  // Direct ledger reading around the workload — the reference the span
  // tables are checked against.
  obs::SpanCollector* spans = &tb.registry()->spans();
  uint64_t ledger_before[obs::kTimeCategoryCount];
  uint64_t ledger_after[obs::kTimeCategoryCount];
  for (size_t c = 0; c < obs::kTimeCategoryCount; ++c) {
    ledger_before[c] = tb.clock()->categories().ns[c];
  }
  const uint64_t start_ns = tb.clock()->now_ns();

  if (workload == "fig5") {
    RunFig5Workload(&tb, dir);
  } else {
    RunFig7Workload(&tb, dir);
  }

  const uint64_t elapsed_ns = tb.clock()->now_ns() - start_ns;
  for (size_t c = 0; c < obs::kTimeCategoryCount; ++c) {
    ledger_after[c] = tb.clock()->categories().ns[c];
  }

  std::vector<obs::Span> collected = spans->TakeFinished();
  std::printf("span_report: workload=%s config=%s spans=%zu dropped=%llu "
              "slow_ops=%llu virtual_elapsed_ms=%.3f\n",
              workload.c_str(), bench::ConfigName(tb.config()), collected.size(),
              static_cast<unsigned long long>(spans->dropped()),
              static_cast<unsigned long long>(slow_op_dumps),
              static_cast<double>(elapsed_ns) / 1e6);

  std::vector<obs::CriticalPathRow> by_root = obs::CriticalPathByRoot(collected);
  PrintTable("critical path by root operation (ms)", by_root);
  PrintTable("rpc layer by procedure (ms)", obs::CriticalPathByName(collected, "rpc"));
  PrintTable("secure channel by procedure (ms)",
             obs::CriticalPathByName(collected, "sfs.chan"));
  PrintTable("server dispatch by procedure (ms)",
             obs::CriticalPathByName(collected, "server"));

  if (dump_tree && !collected.empty()) {
    std::printf("\nfirst trace:\n%s",
                obs::FormatSpanTree(collected, collected.front().trace_id).c_str());
  }

  // Cross-check: per category, the root table's total must match the
  // clock ledger's charge over the same interval within 1%.  Time the
  // workload spends outside any root span (e.g. fig7's compile-CPU
  // bursts between file operations) is legitimately absent from the
  // table, so the check is one-sided: spans must never claim *more*
  // than the ledger, and the per-category shortfall must itself be
  // attributable (tracked, for the wire/crypto/disk categories every
  // charge of which happens inside some traced operation).
  std::printf("\nledger cross-check (ms):\n  %-10s %12s %12s %9s\n", "category",
              "ledger", "spans", "delta");
  bool ok = true;
  for (size_t c = 0; c < obs::kTimeCategoryCount; ++c) {
    const uint64_t ledger_ns = ledger_after[c] - ledger_before[c];
    uint64_t span_ns = 0;
    for (const obs::CriticalPathRow& row : by_root) {
      span_ns += row.cat_ns[c];
    }
    const double delta =
        ledger_ns == 0 ? (span_ns == 0 ? 0.0 : 1.0)
                       : (static_cast<double>(span_ns) - static_cast<double>(ledger_ns)) /
                             static_cast<double>(ledger_ns);
    // kLink, kCrypto, kDisk and kSyscall charges only ever happen inside
    // a traced operation, so for those the match must be two-sided.
    const auto category = static_cast<obs::TimeCategory>(c);
    const bool strict = category == obs::TimeCategory::kLink ||
                        category == obs::TimeCategory::kCrypto ||
                        category == obs::TimeCategory::kDisk ||
                        category == obs::TimeCategory::kSyscall;
    const bool bad = strict ? (delta > 0.01 || delta < -0.01) : delta > 0.01;
    if (bad) {
      ok = false;
    }
    std::printf("  %-10s %12.3f %12.3f %+8.2f%%%s\n", obs::TimeCategoryName(category),
                static_cast<double>(ledger_ns) / 1e6, static_cast<double>(span_ns) / 1e6,
                delta * 100.0, bad ? "  MISMATCH" : "");
  }
  std::printf("ledger cross-check: %s\n", ok ? "OK (within 1%)" : "FAILED");

  if (!export_path.empty()) {
    if (!obs::WriteChromeTrace(export_path, collected)) {
      std::fprintf(stderr, "error: cannot write %s\n", export_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans; load at ui.perfetto.dev)\n", export_path.c_str(),
                collected.size());
  }

  bench::BenchReport report("span_report");
  bench::BenchRun run;
  run.name = "SpanReport/" + workload;
  run.real_time_s = static_cast<double>(elapsed_ns) * 1e-9;
  run.iterations = 1;
  run.error = !ok;
  run.counters.emplace_back("spans", static_cast<double>(collected.size()));
  run.counters.emplace_back("slow_ops", static_cast<double>(slow_op_dumps));
  report.Add(std::move(run));
  report.WriteTo(json_dir);

  return ok ? 0 : 1;
}
