// Figure 7: compiling the GENERIC FreeBSD 3.3 kernel.
//
// Paper (system time, seconds): Local 140, NFS3/UDP 178, NFS3/TCP 207,
// SFS 197.  SFS lands between the two NFS transports; disabling
// encryption bought only ~1.5%.
//
// Substitution: the kernel tree is modeled as `kSourceFiles` cold source
// files plus a set of shared headers; each compilation unit reads its
// source and the headers, burns fixed CPU, and writes an object file.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

constexpr int kSourceFiles = 300;
constexpr int kSharedHeaders = 20;
constexpr size_t kSourceSize = 24 * 1024;
constexpr size_t kHeaderSize = 16 * 1024;
constexpr size_t kObjectSize = 32 * 1024;
// Per compilation unit.  Chosen so CPU and I/O contribute in roughly the
// paper's proportion (the GENERIC kernel's system time was ~25% above
// local when compiled over NFS).
constexpr uint64_t kCompileCpuNs = 80'000'000;

void BM_Fig7_KernelCompile(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    std::string dir = tb.WorkDir();
    auto* vfs = tb.vfs();

    // Lay out the source tree cold on the server disk.
    nfs::MemFs* server = tb.server_fs();
    nfs::FileHandle src_dir;
    nfs::Fattr attr;
    bench::Check(vfs->Mkdir(tb.user(), dir + "/sys"), "mkdir sys");
    bench::Check(vfs->Mkdir(tb.user(), dir + "/obj"), "mkdir obj");
    // Resolve the server-side handle for cold-file injection.
    {
      nfs::FileHandle root = server->root_handle();
      nfs::FileHandle bench_dir;
      nfs::Credentials root_cred = nfs::Credentials::User(0);
      bench::Check(nfs::ToStatus(
                       server->Lookup(root, "bench", root_cred, &bench_dir, &attr), "lookup"),
                   "bench dir");
      bench::Check(
          nfs::ToStatus(server->Lookup(bench_dir, "sys", root_cred, &src_dir, &attr), "lookup"),
          "sys dir");
      for (int h = 0; h < kSharedHeaders; ++h) {
        bench::Check(
            nfs::ToStatus(server->AddColdFile(src_dir, "hdr" + std::to_string(h) + ".h",
                                              bench::Content(kHeaderSize, 100 + h)),
                          "cold header"),
            "header");
      }
      for (int f = 0; f < kSourceFiles; ++f) {
        bench::Check(
            nfs::ToStatus(server->AddColdFile(src_dir, "unit" + std::to_string(f) + ".c",
                                              bench::Content(kSourceSize, 200 + f)),
                          "cold source"),
            "source");
      }
    }
    tb.DropClientCaches();

    sim::Stopwatch watch(tb.clock());
    util::Bytes object = bench::Content(kObjectSize, 999);
    for (int f = 0; f < kSourceFiles; ++f) {
      bench::ReadFile(&tb, dir + "/sys/unit" + std::to_string(f) + ".c");
      // Headers: the first unit pulls them over the wire; later units hit
      // the client cache — the combined-cache effect the paper notes.
      for (int h = 0; h < kSharedHeaders; ++h) {
        bench::ReadFile(&tb, dir + "/sys/hdr" + std::to_string(h) + ".h");
      }
      tb.clock()->Advance(kCompileCpuNs, obs::TimeCategory::kApp);
      bench::WriteFile(&tb, dir + "/obj/unit" + std::to_string(f) + ".o", object);
    }
    double seconds = watch.elapsed_seconds();
    state.SetIterationTime(seconds);
    state.counters["total_s"] = seconds;
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_Fig7_KernelCompile)
    ->Arg(static_cast<int>(Config::kLocal))
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCrypt))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig7_compile")
