// Ablation C: read-only dialect server scaling (paper §2.4).
//
// "This dialect makes the amount of cryptographic computation required
// from read-only servers proportional to the file system's size and rate
// of change, rather than to the number of clients connecting.  It also
// frees read-only servers from the need to keep any on-line copies of
// their private keys."
//
// We measure, as a function of the number of connecting clients, the
// virtual time the *server machine* spends on a read-write SFS server
// (one Figure-3 negotiation per client: two public-key decryptions and
// two encryptions each) versus a read-only replica (zero public-key
// operations ever — the one signature was computed offline).
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"
#include "src/readonly/readonly.h"

namespace {

void BM_ReadWriteServerPerClientCrypto(benchmark::State& state) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Clock clock;
    sim::CostModel costs;
    auth::AuthServer authserver;
    sfs::SfsServer::Options so;
    so.location = "rw.example.org";
    so.key_bits = 512;
    sfs::SfsServer server(&clock, &costs, so, &authserver);

    sim::Stopwatch watch(&clock);
    for (int i = 0; i < clients; ++i) {
      sfs::SfsClient::Options co;
      co.ephemeral_key_bits = 512;
      co.prng_seed = 10'000 + static_cast<uint64_t>(i);
      sfs::SfsClient client(
          &clock, &costs, [&](const std::string&) { return &server; }, co);
      auto mount = client.Mount(server.Path());
      if (!mount.ok()) {
        state.SkipWithError("mount failed");
        return;
      }
      nfs::Fattr attr;
      (*mount)->fs()->GetAttr((*mount)->root_fh(), &attr);
    }
    state.SetIterationTime(watch.elapsed_seconds());
    state.counters["per_client_ms"] = watch.elapsed_seconds() * 1e3 / clients;
  }
  state.SetLabel("read-write (per-client key negotiation)");
}

void BM_ReadOnlyServerPerClientCrypto(benchmark::State& state) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Clock clock;
    sim::CostModel costs;
    crypto::Prng prng(uint64_t{1});
    auto key = crypto::RabinPrivateKey::Generate(&prng, 512);
    readonly::ImageBuilder builder;
    bench::Check(builder.AddFile(builder.RootDir(), "catalog",
                                 bench::Content(64 * 1024, 5)),
                 "image");
    readonly::SignedImage image = builder.Build(key, "ro.example.org", 1);
    readonly::ReplicaServer replica(&clock, &costs, std::move(image));
    sfs::SelfCertifyingPath path =
        sfs::SelfCertifyingPath::For("ro.example.org", key.public_key());

    sim::Stopwatch watch(&clock);
    for (int i = 0; i < clients; ++i) {
      sim::Link link(&clock, sim::LinkProfile::Tcp(), &replica);
      readonly::ReadOnlyClient client(&link, path);
      if (!client.Connect().ok()) {
        state.SkipWithError("connect failed");
        return;
      }
      nfs::Fattr attr;
      client.GetAttr(client.root_fh(), &attr);
    }
    state.SetIterationTime(watch.elapsed_seconds());
    state.counters["per_client_ms"] = watch.elapsed_seconds() * 1e3 / clients;
  }
  state.SetLabel("read-only (precomputed signature)");
}

}  // namespace

BENCHMARK(BM_ReadWriteServerPerClientCrypto)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_ReadOnlyServerPerClientCrypto)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("readonly_scaling")
