// Fleet-scale discrete-event simulation: thousands of pipelined NFS
// clients against one serial server machine, all on a single virtual
// clock (the sim::EventQueue makes this one process, one thread).
//
// Each simulated client runs a closed loop of open/close "sessions":
// LOOKUP a file chosen by Zipfian popularity, issue a burst of
// GETATTR/READ operations against the handle (the workload mix sets
// the read fraction), then think for a few hundred microseconds and
// open the next file.  Clients self-limit to their send window, so the
// offered load rises with the client count and the rows trace out the
// latency-vs-throughput knee of the shared sim::Host admission queue:
// below saturation p99 tracks the wire, past it queueing delay takes
// over while throughput flattens at the server's service rate.
//
// Per-row counters carry the knee curve (p50/p90/p99 of
// fleet.op_latency_ns, ops/s over virtual time) plus the server-side
// evidence (server.queue_wait_ns percentiles, shed count) and a ledger
// cross-check that every virtual nanosecond is still attributed to
// exactly one TimeCategory at fleet scale.  BM_FleetKnee_Attribution
// re-runs a saturated point with span collection on and reports where
// the knee's time actually goes (link transit vs queue wait vs
// service), both from the clock ledger and from the span tree.
//
// BM_FleetSmoke_* rows are small deterministic configurations for the
// fleet_smoke regression gate (virtual time is exactly reproducible,
// so tools/bench_compare.py flags any timing-model drift).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/obs_report.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/nfs/types.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/event.h"
#include "src/sim/network.h"
#include "src/sim/sampler.h"
#include "src/xdr/xdr.h"

namespace {

// Deterministic per-client RNG (splitmix64): the whole fleet run is a
// pure function of the configuration, so BENCH json rows are exactly
// reproducible across checkouts.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * (1.0 / 9007199254740992.0);
}

struct FleetOptions {
  uint32_t clients = 64;
  uint32_t window = 8;
  uint32_t read_pct = 50;        // % of session ops that are READs (rest GETATTR).
  uint32_t sessions = 2;         // open/close churn: sessions per client.
  uint32_t ops_per_session = 3;  // data ops after each session's LOOKUP.
  sim::Host::Options host;       // concurrency / queue depth of the server machine.
  bool spans = false;            // collect spans (attribution rows only).
  bool timeline = true;          // windowed telemetry (obs::Timeline).
  uint64_t timeline_window_ns = 10'000'000;  // 10 ms virtual.
};

constexpr uint32_t kFleetFiles = 256;
constexpr uint32_t kFileBytes = 8 * 1024;
constexpr uint32_t kReadBytes = 4 * 1024;
constexpr double kZipfSkew = 0.99;

// One server machine (MemFs + NfsProgram behind a shared sim::Host)
// and `clients` independent event-driven rpc::Client stacks, all in
// one process on one virtual clock.
class Fleet {
 public:
  explicit Fleet(const FleetOptions& opt) : opt_(opt) {
    if (opt_.spans) {
      registry_.spans().Enable(
          [this] { return clock_.now_ns(); },
          [this](uint64_t out[obs::kTimeCategoryCount]) {
            const sim::Clock::CategorySnapshot charged = clock_.categories();
            for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
              out[i] = charged.ns[i];
            }
          },
          /*capacity=*/1 << 17);
    }
    disk_ = std::make_unique<sim::Disk>(&clock_, sim::DiskProfile::Ibm18Es());
    memfs_ = std::make_unique<nfs::MemFs>(&clock_, disk_.get(), nfs::MemFs::Options{});
    program_ = std::make_unique<nfs::NfsProgram>(memfs_.get(), &clock_, &costs_);
    dispatcher_ = std::make_unique<rpc::Dispatcher>(&registry_, &clock_);
    RegisterNfs(dispatcher_.get());
    host_ = std::make_unique<sim::Host>(&clock_, dispatcher_.get(), &registry_, opt_.host);

    // Server-side setup: the popularity-ranked file set, created before
    // any wire traffic so the measured run sees only client operations.
    const nfs::Credentials root = nfs::Credentials::User(0);
    nfs::Fattr attr;
    nfs::Sattr world;
    world.mode = 0777;
    memfs_->SetAttr(memfs_->root_handle(), root, world, &attr);
    const util::Bytes content(kFileBytes, 0x5a);
    for (uint32_t i = 0; i < kFleetFiles; ++i) {
      nfs::Sattr file_mode;
      file_mode.mode = 0666;
      nfs::FileHandle fh;
      memfs_->Create(memfs_->root_handle(), FileName(i), root, file_mode, &fh, &attr);
      memfs_->Write(fh, root, 0, content, /*stable=*/true, &attr);
    }

    // Zipfian popularity CDF over the file ranks (s = 0.99, the usual
    // web/file-trace skew): a handful of hot files absorb most opens.
    zipf_cdf_.resize(kFleetFiles);
    double mass = 0.0;
    for (uint32_t i = 0; i < kFleetFiles; ++i) {
      mass += 1.0 / std::pow(static_cast<double>(i + 1), kZipfSkew);
      zipf_cdf_[i] = mass;
    }
    for (double& c : zipf_cdf_) {
      c /= mass;
    }

    latency_ = registry_.GetHistogram("fleet.op_latency_ns");
    m_ops_ = registry_.GetCounter("fleet.ops");
    stacks_.reserve(opt_.clients);
    drivers_.resize(opt_.clients);
    for (uint32_t i = 0; i < opt_.clients; ++i) {
      auto stack = std::make_unique<ClientStack>();
      // Per-connection Dispatcher over the shared NfsProgram: each
      // client's duplicate-request cache follows its own seqno stream
      // (sharing one DRC across clients would alias their seqnos and
      // replay one client's replies to another).  The Host still
      // serializes every connection through the one machine.
      stack->dispatcher = std::make_unique<rpc::Dispatcher>(&registry_, &clock_);
      RegisterNfs(stack->dispatcher.get());
      stack->link = std::make_unique<sim::Link>(&clock_, sim::LinkProfile::Udp(),
                                               host_.get(), &registry_,
                                               stack->dispatcher.get());
      stack->transport = std::make_unique<rpc::LinkTransport>(stack->link.get());
      stack->client = std::make_unique<rpc::Client>(
          stack->transport.get(), nfs::kNfsProgram, &registry_, "NFS3",
          [](uint32_t proc) { return std::string(nfs::ProcName(proc)); });
      stack->client->set_window(opt_.window);
      stack->client->EnableEventDriven();
      stacks_.push_back(std::move(stack));

      Driver& d = drivers_[i];
      d.rpc = stacks_.back()->client.get();
      d.rng = 0x5eed5eedULL + 0x9e3779b9ULL * (i + 1);
      d.sessions_left = opt_.sessions;
    }
    total_ops_ = static_cast<uint64_t>(opt_.clients) * opt_.sessions *
                 (1 + opt_.ops_per_session);

    if (opt_.timeline) {
      // Windowed telemetry over the measured run.  The origin is pinned
      // here, after server-side setup, so window 0 starts at the first
      // client operation; the overload rule keys on sheds and on
      // sustained windowed queue-wait p90 (the sweep's default queue is
      // unbounded, so queueing delay, not shedding, marks the knee).
      obs::Timeline::Options topt;
      topt.window_ns = opt_.timeline_window_ns;
      timeline_ = std::make_unique<obs::Timeline>(&registry_, topt);
      timeline_->AddRateTrack("ops", "fleet.ops");
      timeline_->AddRateTrack("msgs", "link.messages");
      timeline_->AddGaugeTrack("queue_len", "server.queue_len");
      timeline_->AddGaugeTrack("in_service", "server.in_service");
      timeline_->AddGaugeTrack("in_flight", "rpc.client.in_flight");
      timeline_->AddLatencyTrack("op", "fleet.op_latency_ns");
      sampler_ = std::make_unique<sim::TimelineSampler>(&clock_, timeline_.get());
      sampler_->Start();
    }
  }

  // Runs the whole fleet to completion on the shared event loop and
  // returns elapsed virtual nanoseconds.
  uint64_t Run() {
    const uint64_t start_ns = clock_.now_ns();
    for (Driver& d : drivers_) {
      StartSession(&d);
    }
    while (ops_done_ < total_ops_) {
      // Deadlock check: the sampler keeps one recurring edge in the
      // queue forever, so "no real work left" means only its event
      // remains.
      const size_t sampler_events = sampler_ != nullptr ? sampler_->live_events() : 0;
      if (clock_.events()->size() <= sampler_events) {
        std::fprintf(stderr, "fleet deadlock: %llu/%llu ops done\n",
                     static_cast<unsigned long long>(ops_done_),
                     static_cast<unsigned long long>(total_ops_));
        std::abort();
      }
      clock_.events()->RunOne();
    }
    return clock_.now_ns() - start_ns;
  }

  uint64_t total_ops() const { return total_ops_; }

  // Closes the trailing window and runs the episode annotator; null
  // when the row was configured without a timeline.
  obs::Timeline* FinalizeTimeline() {
    if (sampler_ != nullptr) {
      sampler_->Finalize();
    }
    return timeline_.get();
  }
  obs::Timeline* timeline() { return timeline_.get(); }

  uint64_t op_errors() const { return op_errors_; }
  const obs::Histogram* latency() const { return latency_; }
  obs::Registry* registry() { return &registry_; }
  sim::Clock* clock() { return &clock_; }

  // True when every charged nanosecond across all categories sums back
  // to the clock's position — the ledger invariant at fleet scale.
  bool LedgerBalanced() const {
    const sim::Clock::CategorySnapshot charged = clock_.categories();
    uint64_t sum = 0;
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      sum += charged.ns[i];
    }
    return sum == clock_.now_ns();
  }

 private:
  struct ClientStack {
    std::unique_ptr<rpc::Dispatcher> dispatcher;
    std::unique_ptr<sim::Link> link;
    std::unique_ptr<rpc::LinkTransport> transport;
    std::unique_ptr<rpc::Client> client;
  };

  void RegisterNfs(rpc::Dispatcher* dispatcher) {
    dispatcher->RegisterProgram(
        nfs::kNfsProgram,
        [this](uint32_t proc, const util::Bytes& args) {
          return program_->HandleWire(proc, args);
        },
        [](uint32_t proc) { return std::string(nfs::ProcName(proc)); }, "NFS3");
  }

  struct Driver {
    rpc::Client* rpc = nullptr;
    uint64_t rng = 0;
    uint32_t in_flight = 0;
    uint32_t sessions_left = 0;
    uint32_t session_ops_left = 0;  // Data ops not yet issued this session.
    nfs::FileHandle fh;             // Current session's handle (post-LOOKUP).
  };

  static std::string FileName(uint32_t i) { return "f" + std::to_string(i); }

  uint32_t SampleZipf(uint64_t* rng) {
    const double u = UnitUniform(rng);
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return static_cast<uint32_t>(it - zipf_cdf_.begin());
  }

  util::Bytes LookupArgs(uint32_t file) {
    xdr::Encoder enc;
    cred_.Encode(&enc);
    enc.PutOpaque(memfs_->root_handle());
    enc.PutString(FileName(file));
    return enc.Take();
  }

  util::Bytes GetAttrArgs(const nfs::FileHandle& fh) {
    xdr::Encoder enc;
    cred_.Encode(&enc);
    enc.PutOpaque(fh);
    return enc.Take();
  }

  util::Bytes ReadArgs(const nfs::FileHandle& fh, uint64_t offset) {
    xdr::Encoder enc;
    cred_.Encode(&enc);
    enc.PutOpaque(fh);
    enc.PutUint64(offset);
    enc.PutUint32(kReadBytes);
    return enc.Take();
  }

  // Session open: LOOKUP the Zipf-chosen file; data ops start when the
  // handle comes back (real open/close churn serializes on the open).
  void StartSession(Driver* d) {
    const uint32_t file = SampleZipf(&d->rng);
    Issue(d, nfs::kProcLookup, LookupArgs(file), /*is_lookup=*/true);
  }

  // Fills the client's window with this session's remaining data ops.
  void IssueSessionOps(Driver* d) {
    while (d->session_ops_left > 0 && d->in_flight < opt_.window) {
      d->session_ops_left--;
      if (UnitUniform(&d->rng) * 100.0 < static_cast<double>(opt_.read_pct)) {
        const uint64_t offset =
            (SplitMix64(&d->rng) % (kFileBytes / kReadBytes)) * kReadBytes;
        Issue(d, nfs::kProcRead, ReadArgs(d->fh, offset), /*is_lookup=*/false);
      } else {
        Issue(d, nfs::kProcGetAttr, GetAttrArgs(d->fh), /*is_lookup=*/false);
      }
    }
  }

  void Issue(Driver* d, uint32_t proc, util::Bytes args, bool is_lookup) {
    d->in_flight++;
    const uint64_t t0 = clock_.now_ns();
    // in_flight < window always holds here, so CallAsync never blocks
    // on a full window (which would pump the event loop reentrantly
    // under thousands of peers).
    d->rpc->CallAsync(proc, args, [this, d, t0, is_lookup](util::Result<util::Bytes> reply) {
      OnOpDone(d, t0, is_lookup, std::move(reply));
    });
  }

  void OnOpDone(Driver* d, uint64_t t0, bool is_lookup, util::Result<util::Bytes> reply) {
    latency_->Record(clock_.now_ns() - t0);
    m_ops_->Increment();
    ops_done_++;
    d->in_flight--;
    if (!reply.ok()) {
      // Retry budget exhausted (possible under a bounded admission
      // queue when every copy was shed): the op still completes.  A
      // failed open aborts its session, so the data ops it would have
      // issued count as skipped — otherwise Run() would wait forever.
      op_errors_++;
      if (is_lookup) {
        ops_done_ += opt_.ops_per_session;
      }
    } else if (is_lookup) {
      xdr::Decoder dec(*reply);
      auto stat = dec.GetUint32();
      if (stat.ok() && *stat == static_cast<uint32_t>(nfs::Stat::kOk)) {
        if (auto fh = dec.GetOpaque(); fh.ok()) {
          d->fh = *fh;
        }
      }
    }
    if (is_lookup && reply.ok()) {
      d->session_ops_left = opt_.ops_per_session;
    }
    if (d->session_ops_left > 0) {
      IssueSessionOps(d);
      return;
    }
    if (d->in_flight > 0) {
      return;  // Session tail still in flight.
    }
    // Session closed: think, then open the next file (or finish).
    d->sessions_left--;
    if (d->sessions_left == 0) {
      return;
    }
    const uint64_t think_ns = 100'000 + (SplitMix64(&d->rng) & 0x3ffff);
    clock_.events()->Schedule(clock_.now_ns() + think_ns, obs::TimeCategory::kWait,
                              [this, d] { StartSession(d); });
  }

  FleetOptions opt_;
  obs::Registry registry_;
  sim::Clock clock_;
  sim::CostModel costs_ = bench::ActiveCostModel();
  std::unique_ptr<sim::Disk> disk_;
  std::unique_ptr<nfs::MemFs> memfs_;
  std::unique_ptr<nfs::NfsProgram> program_;
  std::unique_ptr<rpc::Dispatcher> dispatcher_;
  std::unique_ptr<sim::Host> host_;
  std::vector<std::unique_ptr<ClientStack>> stacks_;
  std::vector<Driver> drivers_;
  std::vector<double> zipf_cdf_;
  const nfs::Credentials cred_ = nfs::Credentials::User(1000, {1000});
  obs::Histogram* latency_ = nullptr;
  obs::Counter* m_ops_ = nullptr;
  // Declared after clock_: the sampler cancels its pending edge before
  // the event queue dies.
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<sim::TimelineSampler> sampler_;
  uint64_t total_ops_ = 0;
  uint64_t ops_done_ = 0;
  uint64_t op_errors_ = 0;
};

void ReportFleetCounters(benchmark::State& state, Fleet* fleet, uint64_t elapsed_ns) {
  state.SetIterationTime(static_cast<double>(elapsed_ns) * 1e-9);
  state.counters["ops_per_sec"] = static_cast<double>(fleet->total_ops()) * 1e9 /
                                  static_cast<double>(elapsed_ns);
  state.counters["p50_us"] =
      static_cast<double>(fleet->latency()->ApproxPercentileNs(0.50)) / 1000.0;
  state.counters["p90_us"] =
      static_cast<double>(fleet->latency()->ApproxPercentileNs(0.90)) / 1000.0;
  state.counters["p99_us"] =
      static_cast<double>(fleet->latency()->ApproxPercentileNs(0.99)) / 1000.0;
  obs::Registry* registry = fleet->registry();
  if (const obs::Histogram* qw = registry->FindHistogram("server.queue_wait_ns");
      qw != nullptr && qw->count() > 0) {
    state.counters["queue_wait_p50_us"] =
        static_cast<double>(qw->ApproxPercentileNs(0.50)) / 1000.0;
    state.counters["queue_wait_p99_us"] =
        static_cast<double>(qw->ApproxPercentileNs(0.99)) / 1000.0;
  }
  state.counters["shed"] = static_cast<double>(registry->CounterValue("server.shed"));
  state.counters["retransmissions"] =
      static_cast<double>(registry->CounterValue("link.retransmissions"));
  state.counters["op_errors"] = static_cast<double>(fleet->op_errors());
  state.counters["ops"] = static_cast<double>(registry->CounterValue("fleet.ops"));
  state.counters["unmatched_replies"] =
      static_cast<double>(registry->CounterValue("rpc.client.unmatched_replies"));
  // Ledger invariant at fleet scale: categories sum exactly to now_ns.
  state.counters["ledger_ok"] = fleet->LedgerBalanced() ? 1.0 : 0.0;
}

// Finalizes the fleet's timeline and stages it for the BENCH json
// "timelines" section under the row's base name (google-benchmark
// appends /iterations:1/manual_time to the reported run name; the
// tools match by prefix).
void RecordFleetTimeline(const std::string& row_name, Fleet* fleet) {
  if (obs::Timeline* timeline = fleet->FinalizeTimeline()) {
    bench::RecordTimeline(row_name, timeline->ToJson());
  }
}

// The knee sweep: client count is the offered load, window the per-
// client pipelining, read_pct the workload mix.
void BM_FleetScaling_Knee(benchmark::State& state) {
  FleetOptions opt;
  opt.clients = static_cast<uint32_t>(state.range(0));
  opt.window = static_cast<uint32_t>(state.range(1));
  opt.read_pct = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    Fleet fleet(opt);
    const uint64_t elapsed_ns = fleet.Run();
    ReportFleetCounters(state, &fleet, elapsed_ns);
    RecordFleetTimeline("BM_FleetScaling_Knee/" + std::to_string(opt.clients) +
                            "/" + std::to_string(opt.window) + "/" +
                            std::to_string(opt.read_pct),
                        &fleet);
    state.SetLabel("clients=" + std::to_string(opt.clients) +
                   " window=" + std::to_string(opt.window) +
                   " read%=" + std::to_string(opt.read_pct));
  }
}

// A small deterministic knee series for the fleet_smoke gate: window=1
// clients sweep against the serial server, so the first rows are
// clearly below saturation (queue-wait ~ one service time) and the
// last is deep past it.  tools/fleet_smoke.py measures the knee from
// ops_per_sec and asserts the timeline annotator agrees: zero overload
// episodes strictly before the knee, at least one in the saturated
// tail row.
void BM_FleetKnee_Smoke(benchmark::State& state) {
  FleetOptions opt;
  opt.clients = static_cast<uint32_t>(state.range(0));
  opt.window = 8;
  opt.read_pct = 50;
  // These rows finish in single-digit virtual milliseconds; 2 ms
  // windows give the annotator several windows per row.
  opt.timeline_window_ns = 2'000'000;
  for (auto _ : state) {
    Fleet fleet(opt);
    const uint64_t elapsed_ns = fleet.Run();
    ReportFleetCounters(state, &fleet, elapsed_ns);
    RecordFleetTimeline("BM_FleetKnee_Smoke/" + std::to_string(opt.clients),
                        &fleet);
    state.SetLabel("clients=" + std::to_string(opt.clients) +
                   " window=8 knee series");
  }
}

// A saturated point rerun with span collection: where does the knee's
// time go?  Reported two ways that must agree in shape — the clock
// ledger's category split over the run (virtual time is single-
// threaded, so the ledger IS the critical path), and the span tree's
// per-layer aggregation (server queue wait and handler service).
// Destination for the merged Perfetto trace (spans + timeline counter
// tracks + episode slices) written by BM_FleetKnee_Attribution; set by
// the --timeline_trace=<path> flag in main.
std::string g_timeline_trace_path;

void BM_FleetKnee_Attribution(benchmark::State& state) {
  FleetOptions opt;
  opt.clients = 1024;
  opt.window = 8;
  opt.read_pct = 50;
  opt.spans = true;
  for (auto _ : state) {
    Fleet fleet(opt);
    const sim::Clock::CategorySnapshot before = fleet.clock()->categories();
    const uint64_t elapsed_ns = fleet.Run();
    const sim::Clock::CategorySnapshot after = fleet.clock()->categories();
    ReportFleetCounters(state, &fleet, elapsed_ns);
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      const double frac = static_cast<double>(after.ns[i] - before.ns[i]) /
                          static_cast<double>(elapsed_ns);
      if (frac > 0.0) {
        state.counters[std::string("time.") +
                       obs::TimeCategoryName(static_cast<obs::TimeCategory>(i))] = frac;
      }
    }
    obs::Timeline* timeline = fleet.FinalizeTimeline();
    if (timeline != nullptr) {
      bench::RecordTimeline("BM_FleetKnee_Attribution", timeline->ToJson());
    }
    std::vector<obs::Span> spans = fleet.registry()->spans().TakeFinished();
    if (!g_timeline_trace_path.empty()) {
      if (obs::WriteChromeTrace(g_timeline_trace_path, spans, timeline)) {
        std::fprintf(stderr, "wrote %s\n", g_timeline_trace_path.c_str());
      }
    }
    for (const char* layer : {"sim.host", "server"}) {
      for (const obs::CriticalPathRow& row : obs::CriticalPathByName(spans, layer)) {
        state.counters["span." + row.name + ".total_ms"] =
            static_cast<double>(row.total_ns) * 1e-6;
      }
    }
    state.counters["span.dropped"] =
        static_cast<double>(fleet.registry()->spans().dropped());
    state.SetLabel("clients=1024 window=8 read%=50 (spans on)");
  }
}

// Small deterministic rows for the fleet_smoke regression gate.  The
// bounded row runs the admission queue at a shallow depth so shedding and the
// retransmission recovery path stay covered by the gate.
void BM_FleetSmoke_Open(benchmark::State& state) {
  FleetOptions opt;
  opt.clients = 32;
  opt.window = 8;
  opt.read_pct = 50;
  for (auto _ : state) {
    Fleet fleet(opt);
    const uint64_t elapsed_ns = fleet.Run();
    ReportFleetCounters(state, &fleet, elapsed_ns);
    RecordFleetTimeline("BM_FleetSmoke_Open", &fleet);
    state.SetLabel("clients=32 window=8 unbounded queue");
  }
}

void BM_FleetSmoke_BoundedQueue(benchmark::State& state) {
  FleetOptions opt;
  opt.clients = 48;
  opt.window = 8;
  opt.read_pct = 50;
  opt.host.queue_depth = 16;
  for (auto _ : state) {
    Fleet fleet(opt);
    const uint64_t elapsed_ns = fleet.Run();
    ReportFleetCounters(state, &fleet, elapsed_ns);
    RecordFleetTimeline("BM_FleetSmoke_BoundedQueue", &fleet);
    state.SetLabel("clients=48 window=8 queue_depth=16");
  }
}

}  // namespace

BENCHMARK(BM_FleetScaling_Knee)
    ->ArgsProduct({{2, 8, 32, 128, 1024, 10240}, {4, 16}, {20, 80}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_FleetKnee_Attribution)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_FleetKnee_Smoke)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_FleetSmoke_Open)->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FleetSmoke_BoundedQueue)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Custom main: strips --timeline_trace=<path> (the merged Perfetto
// trace destination used by CI) before delegating to the shared
// BENCH-json main.
int main(int argc, char** argv) {
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    constexpr const char kTraceFlag[] = "--timeline_trace=";
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      g_timeline_trace_path = argv[i] + sizeof(kTraceFlag) - 1;
    } else {
      pass.push_back(argv[i]);
    }
  }
  return bench::BenchJsonMain(static_cast<int>(pass.size()), pass.data(),
                              "fleet_scaling");
}
