// Ablation B: real (host) speed of the cryptographic primitives.
//
// Supports the §4.2 analysis — software encryption costs CPU per byte
// (ARC4 + the re-keyed SHA-1 MAC), public-key operations cost
// milliseconds, and eksblowfish's cost parameter scales password-guessing
// work exponentially.  These run in *real time* on the host, unlike the
// figure benchmarks, which charge the era-calibrated simulated rates.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "src/crypto/arc4.h"
#include "src/crypto/blowfish.h"
#include "src/crypto/fixedbase.h"
#include "src/crypto/kernel32.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/crypto/sha1.h"
#include "src/crypto/srp.h"
#include "src/sfs/session.h"

namespace {

void BM_Sha1(benchmark::State& state) {
  crypto::Prng prng(uint64_t{1});
  util::Bytes data = prng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_Arc4Stream(benchmark::State& state) {
  crypto::Prng prng(uint64_t{2});
  crypto::Arc4 cipher(prng.RandomBytes(20));
  util::Bytes data = prng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    cipher.Crypt(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_ChannelSealOpen(benchmark::State& state) {
  // The full per-message channel cost: ARC4 + rekeyed HMAC-SHA-1, both
  // directions (what "SFS w/o encryption" saves).
  crypto::Prng prng(uint64_t{3});
  util::Bytes key = prng.RandomBytes(20);
  sfs::ChannelCipher seal(key);
  sfs::ChannelCipher open(key);
  util::Bytes payload = prng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto opened = open.Open(seal.Seal(payload));
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_ModExp(benchmark::State& state) {
  // The public-key inner loop: one full-width modular exponentiation with
  // an odd modulus (what every SRP exchange and Rabin square root pays).
  crypto::Prng prng(uint64_t{10});
  size_t bits = static_cast<size_t>(state.range(0));
  crypto::BigInt m = crypto::BigInt::Random(&prng, bits);
  if (m.is_even()) {
    m = m + crypto::BigInt(1);
  }
  crypto::BigInt base = crypto::BigInt::Random(&prng, bits - 1);
  crypto::BigInt exp = crypto::BigInt::Random(&prng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::ModExp(base, exp, m));
  }
}

void BM_ModExp32(benchmark::State& state) {
  // The retained 32-bit reference kernel (crypto::ref32) on the same
  // inputs as BM_ModExp: the 64-vs-32-limb comparison row.  Not on any
  // production path — this is the differential-test oracle, kept
  // benchmarked so the speedup claim in docs/CRYPTO_PERF.md stays
  // measured rather than remembered.
  crypto::Prng prng(uint64_t{10});
  size_t bits = static_cast<size_t>(state.range(0));
  crypto::BigInt m = crypto::BigInt::Random(&prng, bits);
  if (m.is_even()) {
    m = m + crypto::BigInt(1);
  }
  crypto::BigInt base = crypto::BigInt::Random(&prng, bits - 1);
  crypto::BigInt exp = crypto::BigInt::Random(&prng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ref32::ModExp32(base, exp, m));
  }
}

void BM_FixedBaseExp(benchmark::State& state) {
  // Fixed-base exponentiation through the precomputed comb table, the
  // path every SRP g^x and v^u takes (table build cost excluded: it is
  // paid once per group or per account record).
  crypto::Prng prng(uint64_t{10});
  size_t bits = static_cast<size_t>(state.range(0));
  crypto::BigInt m = crypto::BigInt::Random(&prng, bits);
  if (m.is_even()) {
    m = m + crypto::BigInt(1);
  }
  crypto::BigInt base = crypto::BigInt::Random(&prng, bits - 1);
  auto ctx = std::make_shared<const crypto::MontgomeryCtx>(m);
  crypto::FixedBaseCtx fb(ctx, base, bits);
  crypto::BigInt exp = crypto::BigInt::Random(&prng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fb.Exp(exp));
  }
}

void BM_GeneratePrime(benchmark::State& state) {
  // Key-generation cost: a random prime in the Williams residue class
  // (half of a Rabin modulus of twice this size).
  crypto::Prng prng(uint64_t{11});
  size_t bits = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::GeneratePrime(&prng, bits, 3, 8));
  }
}

void BM_RabinSign(benchmark::State& state) {
  crypto::Prng prng(uint64_t{4});
  auto key = crypto::RabinPrivateKey::Generate(&prng, static_cast<size_t>(state.range(0)));
  util::Bytes msg = prng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Sign(msg));
  }
}

void BM_RabinVerify(benchmark::State& state) {
  crypto::Prng prng(uint64_t{5});
  auto key = crypto::RabinPrivateKey::Generate(&prng, static_cast<size_t>(state.range(0)));
  util::Bytes msg = prng.RandomBytes(64);
  util::Bytes sig = key.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.public_key().Verify(msg, sig));
  }
}

void BM_RabinEncrypt(benchmark::State& state) {
  crypto::Prng prng(uint64_t{6});
  auto key = crypto::RabinPrivateKey::Generate(&prng, static_cast<size_t>(state.range(0)));
  util::Bytes msg = prng.RandomBytes(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.public_key().Encrypt(msg, &prng));
  }
}

void BM_RabinDecrypt(benchmark::State& state) {
  crypto::Prng prng(uint64_t{7});
  auto key = crypto::RabinPrivateKey::Generate(&prng, static_cast<size_t>(state.range(0)));
  util::Bytes msg = prng.RandomBytes(20);
  auto ct = key.public_key().Encrypt(msg, &prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Decrypt(ct.value()));
  }
}

void BM_EksBlowfishCost(benchmark::State& state) {
  // The adjustable work factor: each +1 in cost doubles the time, the
  // property that keeps password guessing expensive "even as hardware
  // improves" (§2.5.2).
  util::Bytes salt(16, 0x42);
  util::Bytes pw = util::BytesOf("hunter2");
  unsigned cost = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::EksBlowfishHash(cost, salt, pw));
  }
}

void BM_SrpExchange(benchmark::State& state) {
  // One full SRP mutual authentication (sfskey's per-login cost).
  crypto::Prng prng(uint64_t{8});
  const auto& params = crypto::DefaultSrpParams();
  auto verifier = crypto::MakeSrpVerifier(params, "pw", 2, &prng);
  for (auto _ : state) {
    crypto::SrpClient client(params, &prng);
    crypto::SrpServer server(params, verifier, &prng);
    auto b = server.ProcessClientHello(client.A());
    auto st = client.ProcessServerReply("pw", server.Salt(), server.Cost(), b.value());
    benchmark::DoNotOptimize(server.VerifyClientProof(client.ClientProof()));
    benchmark::DoNotOptimize(st);
  }
}

void BM_KeyNegotiation(benchmark::State& state) {
  // The Figure 3 handshake, both sides (per-mount cost).
  crypto::Prng prng(uint64_t{9});
  auto server_key = crypto::RabinPrivateKey::Generate(&prng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto neg = sfs::ClientNegotiation::Start(server_key.public_key(), &prng,
                                             static_cast<size_t>(state.range(0)));
    auto resp = sfs::ServerNegotiation::Respond(server_key,
                                                neg->ephemeral_key.public_key().Serialize(),
                                                neg->enc_kc1, neg->enc_kc2, &prng);
    benchmark::DoNotOptimize(neg->Finish(server_key.public_key(), resp->enc_ks1,
                                         resp->enc_ks2));
  }
}

}  // namespace

BENCHMARK(BM_Sha1)->Arg(64)->Arg(8192)->Arg(1 << 20);
BENCHMARK(BM_Arc4Stream)->Arg(8192)->Arg(1 << 20);
BENCHMARK(BM_ChannelSealOpen)->Arg(128)->Arg(8192);
BENCHMARK(BM_ModExp)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModExp32)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FixedBaseExp)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GeneratePrime)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RabinSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RabinVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RabinEncrypt)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RabinDecrypt)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EksBlowfishCost)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SrpExchange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KeyNegotiation)->Arg(512)->Unit(benchmark::kMillisecond);

SFS_BENCH_JSON_MAIN("crypto_prims")
