// Figure 9: Sprite LFS large-file benchmark — a 40,000 KB file written
// and read sequentially and randomly in 8 KB chunks.
//
// Paper shape: SFS pays for its user-level implementation and software
// encryption on the streaming phases (44% slower sequential write, 145%
// slower sequential read vs NFS3/UDP); with encryption disabled most of
// the gap closes (17% / 31%).
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_Fig9_LfsLarge(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    bench::LfsLargeResult result = bench::RunLfsLarge(&tb, /*file_mb=*/40);
    state.SetIterationTime(result.seq_write + result.seq_read + result.rand_write +
                           result.rand_read + result.seq_read2);
    state.counters["seq_write_s"] = result.seq_write;
    state.counters["seq_read_s"] = result.seq_read;
    state.counters["rand_write_s"] = result.rand_write;
    state.counters["rand_read_s"] = result.rand_read;
    state.counters["seq_read2_s"] = result.seq_read2;
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_Fig9_LfsLarge)
    ->Arg(static_cast<int>(Config::kLocal))
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCrypt))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig9_lfs_large")
