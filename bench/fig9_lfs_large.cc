// Figure 9: Sprite LFS large-file benchmark — a 40,000 KB file written
// and read sequentially and randomly in 8 KB chunks.
//
// Paper shape: SFS pays for its user-level implementation and software
// encryption on the streaming phases (44% slower sequential write, 145%
// slower sequential read vs NFS3/UDP); with encryption disabled most of
// the gap closes (17% / 31%).
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

// range(0) = Config, range(1) = write-behind ablation (0 keeps the
// seed's write-through discipline, 1 buffers unstable writes and
// commits at close).
void BM_Fig9_LfsLarge(benchmark::State& state) {
  for (auto _ : state) {
    bench::Testbed::CacheKnobs cache;
    cache.write_behind = state.range(1) != 0;
    Testbed tb(static_cast<Config>(state.range(0)), cache);
    bench::LfsLargeResult result = bench::RunLfsLarge(&tb, /*file_mb=*/40);
    state.SetIterationTime(result.seq_write + result.seq_read + result.rand_write +
                           result.rand_read + result.seq_read2);
    state.counters["seq_write_s"] = result.seq_write;
    state.counters["seq_read_s"] = result.seq_read;
    state.counters["rand_write_s"] = result.rand_write;
    state.counters["rand_read_s"] = result.rand_read;
    state.counters["seq_read2_s"] = result.seq_read2;
    state.counters["commit_calls"] =
        static_cast<double>(tb.registry()->CounterValue("commit.calls"));
    state.counters["batched_writes"] =
        static_cast<double>(tb.registry()->CounterValue("commit.batched_writes"));
    std::string label = bench::ConfigName(tb.config());
    if (cache.write_behind) {
      label += " + write-behind";
    }
    state.SetLabel(label);
  }
}

}  // namespace

BENCHMARK(BM_Fig9_LfsLarge)
    ->Args({static_cast<int>(Config::kLocal), 0})
    ->Args({static_cast<int>(Config::kNfsUdp), 0})
    ->Args({static_cast<int>(Config::kNfsTcp), 0})
    ->Args({static_cast<int>(Config::kSfs), 0})
    ->Args({static_cast<int>(Config::kSfsNoCrypt), 0})
    ->Args({static_cast<int>(Config::kNfsUdp), 1})
    ->Args({static_cast<int>(Config::kSfs), 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig9_lfs_large")
