// Pipelined-RPC scaling: throughput versus send-window size and client
// count over the simulated 100 Mbit/s link.
//
// A stop-and-wait client pays one full round trip per RPC; the paper's
// user-level daemons amortize that by keeping several calls in flight.
// This benchmark sweeps the sliding send window (1 = the original
// stop-and-wait discipline) and the number of concurrent clients, and
// reports virtual-time throughput plus the observability counters that
// prove the window is actually being used: mean window occupancy,
// time spent queue-waiting for a free slot, and the unmatched-reply and
// retransmission counts (both must stay zero on a clean link).
//
// Each configuration also runs the identical workload at window 1 in a
// fresh environment, so every row carries its own speedup_vs_w1.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include <memory>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/nfs/cache.h"
#include "src/nfs/client.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/obs/metrics.h"
#include "src/rpc/rpc.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"
#include "src/xdr/xdr.h"

namespace {

// One NFS3 server with `nclients` independent pipelined rpc::Clients,
// each over its own link, all sharing one virtual clock and registry.
struct RpcEnv {
  sim::Clock clock;
  sim::CostModel costs = sim::CostModel::PentiumIII550();
  obs::Registry registry;
  std::unique_ptr<sim::Disk> disk;
  std::unique_ptr<nfs::MemFs> memfs;
  std::unique_ptr<nfs::NfsProgram> program;
  std::unique_ptr<rpc::Dispatcher> dispatcher;
  std::unique_ptr<sim::Host> host;
  struct ClientStack {
    std::unique_ptr<rpc::Dispatcher> dispatcher;
    std::unique_ptr<sim::Link> link;
    std::unique_ptr<rpc::LinkTransport> transport;
    std::unique_ptr<rpc::Client> client;
  };
  std::vector<ClientStack> clients;

  RpcEnv(uint32_t window, uint32_t nclients) {
    disk = std::make_unique<sim::Disk>(&clock, sim::DiskProfile::Ibm18Es());
    memfs = std::make_unique<nfs::MemFs>(&clock, disk.get(), nfs::MemFs::Options{});
    program = std::make_unique<nfs::NfsProgram>(memfs.get(), &clock, &costs);
    dispatcher = std::make_unique<rpc::Dispatcher>(&registry, &clock);
    dispatcher->RegisterProgram(
        nfs::kNfsProgram,
        [this](uint32_t proc, const util::Bytes& args) {
          return program->HandleWire(proc, args);
        },
        [](uint32_t proc) { return std::string(nfs::ProcName(proc)); }, "NFS3");
    // One server machine: every client link feeds the same admission
    // queue and serial executor instead of a private per-link watermark.
    host = std::make_unique<sim::Host>(&clock, dispatcher.get(), &registry);
    clients.resize(nclients);
    for (auto& stack : clients) {
      // Per-connection Dispatcher: each client's duplicate-request
      // cache follows its own seqno stream (a shared DRC would alias
      // seqnos across clients and replay one client's replies to
      // another).  The shared Host still serializes the machine.
      stack.dispatcher = std::make_unique<rpc::Dispatcher>(&registry, &clock);
      stack.dispatcher->RegisterProgram(
          nfs::kNfsProgram,
          [this](uint32_t proc, const util::Bytes& args) {
            return program->HandleWire(proc, args);
          },
          [](uint32_t proc) { return std::string(nfs::ProcName(proc)); }, "NFS3");
      stack.link = std::make_unique<sim::Link>(&clock, sim::LinkProfile::Udp(),
                                               host.get(), &registry,
                                               stack.dispatcher.get());
      stack.transport = std::make_unique<rpc::LinkTransport>(stack.link.get());
      stack.client = std::make_unique<rpc::Client>(
          stack.transport.get(), nfs::kNfsProgram, &registry, "NFS3",
          [](uint32_t proc) { return std::string(nfs::ProcName(proc)); });
      stack.client->set_window(window);
    }
  }

  util::Bytes GetAttrArgs() {
    xdr::Encoder enc;
    nfs::Credentials::Anonymous().Encode(&enc);
    enc.PutOpaque(memfs->root_handle());
    return enc.Take();
  }

  // Issues `total` GETATTRs round-robin across the clients and drains
  // every window.  Returns elapsed virtual nanoseconds.
  uint64_t Run(uint32_t total) {
    const util::Bytes args = GetAttrArgs();
    const uint64_t start = clock.now_ns();
    for (uint32_t i = 0; i < total; ++i) {
      rpc::Client* client = clients[i % clients.size()].client.get();
      if (client->window() > 1) {
        client->CallAsync(nfs::kProcGetAttr, args, [](util::Result<util::Bytes> reply) {
          benchmark::DoNotOptimize(reply.ok());
        });
      } else {
        auto reply = client->Call(nfs::kProcGetAttr, args);
        benchmark::DoNotOptimize(reply.ok());
      }
    }
    for (auto& stack : clients) {
      stack.client->Drain();
    }
    return clock.now_ns() - start;
  }
};

void ReportWindowCounters(benchmark::State& state, obs::Registry* registry) {
  const uint64_t samples = registry->CounterValue("rpc.client.window_samples");
  if (samples > 0) {
    state.counters["occupancy_mean"] =
        static_cast<double>(registry->CounterValue("rpc.client.window_occupancy_sum")) /
        static_cast<double>(samples);
  }
  if (const obs::Histogram* wait = registry->FindHistogram("rpc.client.queue_wait_ns");
      wait != nullptr && wait->count() > 0) {
    state.counters["queue_wait_mean_us"] = wait->MeanNs() / 1000.0;
  }
  state.counters["unmatched_replies"] =
      static_cast<double>(registry->CounterValue("rpc.client.unmatched_replies"));
  state.counters["retransmissions"] =
      static_cast<double>(registry->CounterValue("link.retransmissions"));
}

void BM_PipelineScaling_RpcWindow(benchmark::State& state) {
  const auto window = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kCalls = 64;
  for (auto _ : state) {
    RpcEnv baseline(/*window=*/1, /*nclients=*/1);
    const uint64_t base_ns = baseline.Run(kCalls);
    RpcEnv env(window, /*nclients=*/1);
    const uint64_t elapsed_ns = env.Run(kCalls);
    state.SetIterationTime(static_cast<double>(elapsed_ns) * 1e-9);
    state.counters["ops_per_sec"] =
        static_cast<double>(kCalls) * 1e9 / static_cast<double>(elapsed_ns);
    state.counters["speedup_vs_w1"] =
        static_cast<double>(base_ns) / static_cast<double>(elapsed_ns);
    ReportWindowCounters(state, &env.registry);
    state.SetLabel("window=" + std::to_string(window));
  }
}

void BM_PipelineScaling_WindowByClients(benchmark::State& state) {
  const auto window = static_cast<uint32_t>(state.range(0));
  const auto nclients = static_cast<uint32_t>(state.range(1));
  constexpr uint32_t kCallsPerClient = 32;
  const uint32_t total = kCallsPerClient * nclients;
  for (auto _ : state) {
    RpcEnv baseline(/*window=*/1, nclients);
    const uint64_t base_ns = baseline.Run(total);
    RpcEnv env(window, nclients);
    const uint64_t elapsed_ns = env.Run(total);
    state.SetIterationTime(static_cast<double>(elapsed_ns) * 1e-9);
    state.counters["ops_per_sec"] =
        static_cast<double>(total) * 1e9 / static_cast<double>(elapsed_ns);
    state.counters["speedup_vs_w1"] =
        static_cast<double>(base_ns) / static_cast<double>(elapsed_ns);
    ReportWindowCounters(state, &env.registry);
    state.SetLabel("window=" + std::to_string(window) +
                   " clients=" + std::to_string(nclients));
  }
}

// One SFS server + client pair at a given channel window; the workload
// file is created server-side so setup stays off the measured wire.
struct SfsEnv {
  sim::Clock clock;
  sim::CostModel costs = sim::CostModel::PentiumIII550();
  obs::Registry registry;
  auth::AuthServer authserver;
  std::unique_ptr<sfs::SfsServer> server;
  std::unique_ptr<sfs::SfsClient> client;
  sfs::SfsClient::MountPoint* mount = nullptr;
  nfs::FileHandle file;

  explicit SfsEnv(uint32_t window, uint32_t file_bytes, uint32_t chunk) {
    sfs::SfsServer::Options so;
    so.location = "pipeline.bench";
    so.key_bits = 512;
    so.registry = &registry;
    server = std::make_unique<sfs::SfsServer>(&clock, &costs, so, &authserver);

    const nfs::Credentials root = nfs::Credentials::User(0);
    nfs::Fattr attr;
    nfs::Sattr world;
    world.mode = 0777;
    server->fs()->SetAttr(server->fs()->root_handle(), root, world, &attr);
    nfs::Sattr file_mode;
    file_mode.mode = 0666;
    server->fs()->Create(server->fs()->root_handle(), "data", root, file_mode, &file, &attr);
    const util::Bytes block(chunk, 0x5a);
    for (uint32_t offset = 0; offset < file_bytes; offset += chunk) {
      server->fs()->Write(file, root, offset, block, true, &attr);
    }

    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = 512;
    co.registry = &registry;
    co.window = window;
    client = std::make_unique<sfs::SfsClient>(
        &clock, &costs, [this](const std::string&) { return server.get(); }, co);
    mount = client->Mount(server->Path()).value();
  }

  // Sequential whole-file read through the cache (read-ahead active at
  // window > 1).  Returns elapsed virtual nanoseconds.
  uint64_t Run(uint32_t file_bytes, uint32_t chunk) {
    const nfs::Credentials cred = nfs::Credentials::User(1000, {1000});
    nfs::FileHandle fh;
    nfs::Fattr attr;
    mount->fs()->Lookup(mount->root_fh(), "data", cred, &fh, &attr);
    const uint64_t start = clock.now_ns();
    util::Bytes data;
    bool eof = false;
    for (uint32_t offset = 0; offset < file_bytes; offset += chunk) {
      mount->fs()->Read(fh, cred, offset, chunk, &data, &eof);
      benchmark::DoNotOptimize(data.size());
    }
    mount->Drain();
    return clock.now_ns() - start;
  }
};

void BM_PipelineScaling_SfsChannelRead(benchmark::State& state) {
  const auto window = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kFileBytes = 256 * 1024;
  constexpr uint32_t kChunk = 8 * 1024;
  for (auto _ : state) {
    SfsEnv baseline(/*window=*/1, kFileBytes, kChunk);
    const uint64_t base_ns = baseline.Run(kFileBytes, kChunk);
    SfsEnv env(window, kFileBytes, kChunk);
    const uint64_t elapsed_ns = env.Run(kFileBytes, kChunk);
    state.SetIterationTime(static_cast<double>(elapsed_ns) * 1e-9);
    state.counters["mb_per_sec"] =
        static_cast<double>(kFileBytes) / 1048576.0 * 1e9 / static_cast<double>(elapsed_ns);
    state.counters["speedup_vs_w1"] =
        static_cast<double>(base_ns) / static_cast<double>(elapsed_ns);
    state.counters["read_aheads"] =
        static_cast<double>(env.mount->cache()->read_aheads_issued());
    state.counters["read_ahead_fills"] =
        static_cast<double>(env.mount->cache()->read_ahead_fills());
    ReportWindowCounters(state, &env.registry);
    state.SetLabel("window=" + std::to_string(window));
  }
}

}  // namespace

BENCHMARK(BM_PipelineScaling_RpcWindow)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_PipelineScaling_WindowByClients)
    ->Args({1, 2})
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({4, 4})
    ->Args({8, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_PipelineScaling_SfsChannelRead)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("pipeline_scaling")
