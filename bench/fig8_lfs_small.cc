// Figure 8: Sprite LFS small-file benchmark — create, read, and unlink
// 1,000 1 KB files.
//
// Paper shape: create — SFS about the same as NFS3/UDP (attribute
// caching compensates for latency); read — SFS ~3x slower (latency
// bound); unlink — all file systems roughly equal (synchronous disk
// writes dominate).
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_Fig8_LfsSmall(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    bench::LfsSmallResult result = bench::RunLfsSmall(&tb);
    state.SetIterationTime(result.create + result.read + result.unlink);
    state.counters["create_s"] = result.create;
    state.counters["read_s"] = result.read;
    state.counters["unlink_s"] = result.unlink;
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_Fig8_LfsSmall)
    ->Arg(static_cast<int>(Config::kLocal))
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig8_lfs_small")
