// Figure 8: Sprite LFS small-file benchmark — create, read, and unlink
// 1,000 1 KB files.
//
// Paper shape: create — SFS about the same as NFS3/UDP (attribute
// caching compensates for latency); read — SFS ~3x slower (latency
// bound); unlink — all file systems roughly equal (synchronous disk
// writes dominate).
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

// range(0) = Config, range(1) = write-behind ablation (0 keeps the
// seed's write-through discipline, 1 buffers unstable writes and
// commits at close).
void BM_Fig8_LfsSmall(benchmark::State& state) {
  for (auto _ : state) {
    bench::Testbed::CacheKnobs cache;
    cache.write_behind = state.range(1) != 0;
    Testbed tb(static_cast<Config>(state.range(0)), cache);
    bench::LfsSmallResult result = bench::RunLfsSmall(&tb);
    state.SetIterationTime(result.create + result.read + result.unlink);
    state.counters["create_s"] = result.create;
    state.counters["read_s"] = result.read;
    state.counters["unlink_s"] = result.unlink;
    state.counters["commit_calls"] =
        static_cast<double>(tb.registry()->CounterValue("commit.calls"));
    state.counters["stable_writes"] =
        static_cast<double>(tb.registry()->CounterValue("commit.stable_writes"));
    std::string label = bench::ConfigName(tb.config());
    if (cache.write_behind) {
      label += " + write-behind";
    }
    state.SetLabel(label);
  }
}

}  // namespace

BENCHMARK(BM_Fig8_LfsSmall)
    ->Args({static_cast<int>(Config::kLocal), 0})
    ->Args({static_cast<int>(Config::kNfsUdp), 0})
    ->Args({static_cast<int>(Config::kNfsTcp), 0})
    ->Args({static_cast<int>(Config::kSfs), 0})
    ->Args({static_cast<int>(Config::kNfsUdp), 1})
    ->Args({static_cast<int>(Config::kSfs), 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("fig8_lfs_small")
