// Key-negotiation scaling: how many cold-start key negotiations per
// second can one server machine sustain, and at what point does
// handshake CPU starve the NFS data path?
//
// The paper separates key management from file system security exactly
// so that the expensive public-key work (SRP login through sfskey, the
// Rabin session-key agreement of §3.2.1) can be charged where it
// belongs: on the server's CPU, in competition with ordinary NFS
// service.  This bench puts both on one sim::Host (one serial machine,
// discrete-event virtual time):
//
//  * H "handshake clients" each run a closed loop of cold-start
//    negotiations — an SRP verifier-side exchange plus the Rabin
//    session-key decryption and server-authentication signature —
//    separated by ~2 s of think time (a user re-keying, an agent
//    re-connecting).  The per-negotiation service time comes from the
//    sim::CostModel (srp_server_ns + pk_decrypt_ns + pk_sign_ns plus
//    two user-level crossings), so re-calibrating the model after a
//    crypto-kernel change moves these rows the honest way.
//
//  * A small fixed population of data clients GETATTR-polls the same
//    host with millisecond think times, standing in for the NFS data
//    path that shares the machine.
//
// Sweeping H traces the knee: negotiations/sec rises linearly while
// crypto CPU is slack, then flattens as cost-model-charged crypto
// utilization dominates the ledger (the event loop charges each
// inter-event gap exactly once, so interleaved timer and wire events
// keep the reported share below the service-side busy fraction even at
// saturation) — and the data path's p99 shows the head-of-line damage,
// since a GETATTR arriving behind a negotiation waits out a ~250 ms
// (paper profile) service slot.  Every row reports
// negotiations/sec, crypto/CPU utilization from the clock's category
// ledger, handshake and data-op latency percentiles, and the ledger
// invariant.
//
// All rows are pure virtual time — a deterministic function of the
// cost model — so the committed BENCH_negotiation_scaling.json is
// reproduced exactly by honest refactors (tools/negotiation_smoke.py
// is the gate, 10% threshold only to absorb deliberate retuning).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/obs_report.h"
#include "src/obs/metrics.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/event.h"
#include "src/sim/network.h"

namespace {

// Deterministic per-client RNG (splitmix64), as in fleet_scaling: the
// run is a pure function of the configuration.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct NegotiationOptions {
  uint32_t handshake_clients = 8;
  uint32_t data_clients = 4;
  uint32_t negotiations_per_client = 4;
  // Mean think times (jittered per client below).
  uint64_t handshake_think_ns = 1'500'000'000;  // + up to ~1.07 s jitter.
  uint64_t data_think_ns = 1'000'000;           // + up to ~0.52 ms jitter.
};

// Wire sizes: an SRP/Rabin negotiation carries group elements and key
// halves (~0.5 KB each way); a GETATTR is a small fixed RPC.
constexpr size_t kNegotiateRequestBytes = 512;
constexpr size_t kNegotiateReplyBytes = 512;
constexpr size_t kDataRequestBytes = 128;
constexpr size_t kDataReplyBytes = 112;

// Server side of one cold-start negotiation, charged from the cost
// model: the SRP verifier exchange (B = kv + g^b, v^u, S = (A v^u)^b),
// the Rabin decryption of the client's session-key half, and the
// server-authentication signature, plus the user-level daemon
// crossings of the auth path.
class NegotiateService : public sim::Service {
 public:
  NegotiateService(sim::Clock* clock, const sim::CostModel* costs)
      : clock_(clock), costs_(costs) {}

  util::Result<util::Bytes> Handle(const util::Bytes& request) override {
    (void)request;
    clock_->Advance(costs_->srp_server_ns + costs_->pk_decrypt_ns + costs_->pk_sign_ns,
                    obs::TimeCategory::kCrypto);
    costs_->ChargeCrossing(clock_, 2);
    return util::Bytes(kNegotiateReplyBytes, 0xa5);
  }

 private:
  sim::Clock* clock_;
  const sim::CostModel* costs_;
};

// The data path sharing the machine: per-request NFS server processing.
class DataService : public sim::Service {
 public:
  DataService(sim::Clock* clock, const sim::CostModel* costs)
      : clock_(clock), costs_(costs) {}

  util::Result<util::Bytes> Handle(const util::Bytes& request) override {
    (void)request;
    clock_->Advance(costs_->nfs_server_op_ns, obs::TimeCategory::kCpu);
    return util::Bytes(kDataReplyBytes, 0x5a);
  }

 private:
  sim::Clock* clock_;
  const sim::CostModel* costs_;
};

// One server machine, H handshake links and D data links feeding it,
// all on one virtual clock.
class NegotiationRig {
 public:
  explicit NegotiationRig(const NegotiationOptions& opt)
      : opt_(opt),
        negotiate_service_(&clock_, &costs_),
        data_service_(&clock_, &costs_) {
    host_ = std::make_unique<sim::Host>(&clock_, &data_service_, &registry_,
                                        sim::Host::Options{});
    neg_latency_ = registry_.GetHistogram("neg.latency_ns");
    data_latency_ = registry_.GetHistogram("neg.data_latency_ns");

    handshakers_.resize(opt_.handshake_clients);
    for (uint32_t i = 0; i < opt_.handshake_clients; ++i) {
      Peer& p = handshakers_[i];
      p.link = std::make_unique<sim::Link>(&clock_, sim::LinkProfile::Tcp(),
                                           host_.get(), &registry_,
                                           &negotiate_service_);
      p.rng = 0x6e6567ULL + 0x9e3779b9ULL * (i + 1);
      p.remaining = opt_.negotiations_per_client;
      Peer* peer = &p;
      p.link->set_delivery_sink(
          [this, peer](sim::Delivery d) { OnNegotiationDone(peer, std::move(d)); });
    }

    data_peers_.resize(opt_.data_clients);
    for (uint32_t i = 0; i < opt_.data_clients; ++i) {
      Peer& p = data_peers_[i];
      p.link = std::make_unique<sim::Link>(&clock_, sim::LinkProfile::Udp(),
                                           host_.get(), &registry_, nullptr);
      p.rng = 0xda7aULL + 0x9e3779b9ULL * (i + 1);
      Peer* peer = &p;
      p.link->set_delivery_sink(
          [this, peer](sim::Delivery d) { OnDataDone(peer, std::move(d)); });
    }

    target_ = static_cast<uint64_t>(opt_.handshake_clients) *
              opt_.negotiations_per_client;
  }

  uint64_t Run() {
    const uint64_t start_ns = clock_.now_ns();
    // Stagger the first negotiations across one think interval so row 0
    // of the sweep doesn't begin with H synchronized arrivals.
    for (Peer& p : handshakers_) {
      const uint64_t stagger = SplitMix64(&p.rng) % opt_.handshake_think_ns;
      SchedulePeer(&p, stagger, /*data=*/false);
    }
    for (Peer& p : data_peers_) {
      const uint64_t stagger = SplitMix64(&p.rng) % opt_.data_think_ns;
      SchedulePeer(&p, stagger, /*data=*/true);
    }
    while (negotiations_done_ < target_) {
      if (clock_.events()->size() == 0) {
        std::fprintf(stderr, "negotiation rig deadlock: %llu/%llu done\n",
                     static_cast<unsigned long long>(negotiations_done_),
                     static_cast<unsigned long long>(target_));
        std::abort();
      }
      clock_.events()->RunOne();
    }
    return clock_.now_ns() - start_ns;
  }

  uint64_t negotiations() const { return negotiations_done_; }
  uint64_t data_ops() const { return data_ops_; }
  const obs::Histogram* neg_latency() const { return neg_latency_; }
  const obs::Histogram* data_latency() const { return data_latency_; }
  obs::Registry* registry() { return &registry_; }
  sim::Clock* clock() { return &clock_; }

  bool LedgerBalanced() const {
    const sim::Clock::CategorySnapshot charged = clock_.categories();
    uint64_t sum = 0;
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      sum += charged.ns[i];
    }
    return sum == clock_.now_ns();
  }

 private:
  struct Peer {
    std::unique_ptr<sim::Link> link;
    uint64_t rng = 0;
    uint32_t remaining = 0;   // Handshake clients: negotiations left.
    uint64_t issued_ns = 0;   // Submit time of the in-flight request.
  };

  void SchedulePeer(Peer* p, uint64_t delay_ns, bool data) {
    clock_.events()->Schedule(clock_.now_ns() + delay_ns, obs::TimeCategory::kWait,
                              [this, p, data] {
                                p->issued_ns = clock_.now_ns();
                                p->link->Submit(util::Bytes(
                                    data ? kDataRequestBytes : kNegotiateRequestBytes,
                                    data ? 0x11 : 0x22));
                              });
  }

  void OnNegotiationDone(Peer* p, sim::Delivery d) {
    (void)d;
    neg_latency_->Record(clock_.now_ns() - p->issued_ns);
    ++negotiations_done_;
    if (--p->remaining == 0) {
      return;
    }
    const uint64_t think =
        opt_.handshake_think_ns + (SplitMix64(&p->rng) & 0x3fffffff);
    SchedulePeer(p, think, /*data=*/false);
  }

  void OnDataDone(Peer* p, sim::Delivery d) {
    (void)d;
    data_latency_->Record(clock_.now_ns() - p->issued_ns);
    ++data_ops_;
    if (negotiations_done_ >= target_) {
      return;  // Sweep complete: stop offering data load.
    }
    const uint64_t think = opt_.data_think_ns + (SplitMix64(&p->rng) & 0xfffff);
    SchedulePeer(p, think, /*data=*/true);
  }

  NegotiationOptions opt_;
  obs::Registry registry_;
  sim::Clock clock_;
  sim::CostModel costs_ = bench::ActiveCostModel();
  NegotiateService negotiate_service_;
  DataService data_service_;
  std::unique_ptr<sim::Host> host_;
  std::vector<Peer> handshakers_;
  std::vector<Peer> data_peers_;
  obs::Histogram* neg_latency_ = nullptr;
  obs::Histogram* data_latency_ = nullptr;
  uint64_t target_ = 0;
  uint64_t negotiations_done_ = 0;
  uint64_t data_ops_ = 0;
};

void ReportNegotiationCounters(benchmark::State& state, NegotiationRig* rig,
                               uint64_t elapsed_ns) {
  state.SetIterationTime(static_cast<double>(elapsed_ns) * 1e-9);
  const double elapsed = static_cast<double>(elapsed_ns);
  state.counters["negotiations"] = static_cast<double>(rig->negotiations());
  state.counters["negotiations_per_sec"] =
      static_cast<double>(rig->negotiations()) * 1e9 / elapsed;
  // Cost-model-charged saturation, straight from the clock's category
  // ledger: crypto is the handshake work, cpu adds crossings and the
  // data path's server processing.
  const sim::Clock::CategorySnapshot charged = rig->clock()->categories();
  const double crypto_ns =
      static_cast<double>(charged.ns[static_cast<size_t>(obs::TimeCategory::kCrypto)]);
  const double cpu_ns =
      static_cast<double>(charged.ns[static_cast<size_t>(obs::TimeCategory::kCpu)]);
  state.counters["crypto_util"] = crypto_ns / elapsed;
  state.counters["server_util"] = (crypto_ns + cpu_ns) / elapsed;
  state.counters["neg_p50_ms"] =
      static_cast<double>(rig->neg_latency()->ApproxPercentileNs(0.50)) * 1e-6;
  state.counters["neg_p99_ms"] =
      static_cast<double>(rig->neg_latency()->ApproxPercentileNs(0.99)) * 1e-6;
  state.counters["data_ops"] = static_cast<double>(rig->data_ops());
  if (rig->data_latency()->count() > 0) {
    state.counters["data_p50_us"] =
        static_cast<double>(rig->data_latency()->ApproxPercentileNs(0.50)) / 1000.0;
    state.counters["data_p99_us"] =
        static_cast<double>(rig->data_latency()->ApproxPercentileNs(0.99)) / 1000.0;
  }
  obs::Registry* registry = rig->registry();
  if (const obs::Histogram* qw = registry->FindHistogram("server.queue_wait_ns");
      qw != nullptr && qw->count() > 0) {
    state.counters["queue_wait_p99_ms"] =
        static_cast<double>(qw->ApproxPercentileNs(0.99)) * 1e-6;
  }
  state.counters["shed"] = static_cast<double>(registry->CounterValue("server.shed"));
  state.counters["ledger_ok"] = rig->LedgerBalanced() ? 1.0 : 0.0;
}

// The knee sweep: handshake-client count is the offered negotiation
// load; the data population stays fixed so its latency rows isolate
// the starvation effect.
void BM_NegotiationKnee(benchmark::State& state) {
  NegotiationOptions opt;
  opt.handshake_clients = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    NegotiationRig rig(opt);
    const uint64_t elapsed_ns = rig.Run();
    ReportNegotiationCounters(state, &rig, elapsed_ns);
    state.SetLabel("handshakers=" + std::to_string(opt.handshake_clients) +
                   " data_clients=" + std::to_string(opt.data_clients));
  }
}

}  // namespace

BENCHMARK(BM_NegotiationKnee)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("negotiation_scaling")
