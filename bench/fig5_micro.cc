// Figure 5: micro-benchmarks for basic operations.
//
// Paper table (550 MHz P-III, 100 Mbit Ethernet):
//   File system          Latency (us)   Throughput (MB/s)
//   NFS 3 (UDP)               200             9.3
//   NFS 3 (TCP)               220             7.6
//   SFS                       790             4.1
//   SFS w/o encryption        770             7.1
//
// Latency: an operation that always requires a remote RPC but never a
// disk access — an unauthorized fchown.  Throughput: sequentially reading
// a large sparse file (holes, so no server disk activity).
//
// --obs: instead of the benchmark tables, run the shared observability
// workload and emit each configuration's full registry snapshot as JSON
// (per-procedure latency histograms + link/crypto/disk time split).
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/obs_report.h"
#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_Fig5_Latency(benchmark::State& state) {
  Testbed tb(static_cast<Config>(state.range(0)));
  std::string dir = tb.WorkDir();
  // A root-owned file the benchmark user cannot chown.
  auto file = bench::CheckResult(
      tb.vfs()->Open(tb.user(), dir + "/target", vfs::OpenFlags::CreateRw()), "create");

  nfs::Sattr chown;
  chown.uid = 4242;  // Requires superuser: always denied, never cached.
  for (auto _ : state) {
    sim::Stopwatch watch(tb.clock());
    util::Status status = file.SetAttr(chown);
    benchmark::DoNotOptimize(status);
    state.SetIterationTime(watch.elapsed_seconds());
  }
  state.SetLabel(bench::ConfigName(tb.config()));
}

void BM_Fig5_Throughput(benchmark::State& state) {
  Testbed tb(static_cast<Config>(state.range(0)));
  std::string dir = tb.WorkDir();
  const uint64_t kFileSize = 256ull << 20;  // Sparse; the paper used 1,000 MB.

  // Create the sparse file.
  bench::Check(tb.vfs()->Open(tb.user(), dir + "/sparse", vfs::OpenFlags::CreateRw()).status(),
               "create");
  bench::Check(tb.vfs()->Truncate(tb.user(), dir + "/sparse", kFileSize), "truncate");

  for (auto _ : state) {
    tb.DropClientCaches();
    auto file = bench::CheckResult(
        tb.vfs()->Open(tb.user(), dir + "/sparse", vfs::OpenFlags::ReadOnly()), "open");
    sim::Stopwatch watch(tb.clock());
    for (uint64_t off = 0; off < kFileSize; off += 8192) {
      auto data = file.Pread(off, 8192);
      benchmark::DoNotOptimize(data);
    }
    state.SetIterationTime(watch.elapsed_seconds());
  }
  state.SetBytesProcessed(static_cast<int64_t>(kFileSize) * state.iterations());
  state.SetLabel(bench::ConfigName(tb.config()));
}

}  // namespace

BENCHMARK(BM_Fig5_Latency)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCrypt))
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

BENCHMARK(BM_Fig5_Throughput)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kNfsTcp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCrypt))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") == 0) {
      std::fputs(bench::ObsReportJson().c_str(), stdout);
      return 0;
    }
  }
  return bench::BenchJsonMain(argc, argv, "fig5_micro");
}
