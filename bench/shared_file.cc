// Shared-file two-fleet scenario: a writer fleet and a reader fleet of
// independent SFS clients churn a small set of shared files on one
// server, every client its own mount (own secure channel, own cache
// stack) on one virtual clock.
//
// The access pattern is the close-to-open handoff NFS semantics are
// designed around: a writer opens a shared file, rewrites it, and
// closes (flush + COMMIT); the readers then open the same file and must
// observe the new contents.  Rows compare the seed's write-through
// discipline against the write-behind commit pipeline — write-behind
// collapses each writer session's per-chunk synchronous WRITEs into
// UNSTABLE batches plus one COMMIT at close, which shows up as fewer
// wire messages and a shorter virtual runtime at identical observed
// contents (the workload asserts every read-back).
#include <benchmark/benchmark.h>

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/obs_report.h"
#include "bench/testbed.h"
#include "bench/workloads.h"
#include "src/obs/timeline.h"
#include "src/sim/sampler.h"

namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kFiles = 8;
constexpr int kRounds = 4;
// Each writer session rewrites the file as four 32 KB chunks: exactly
// one VFS gather buffer each, so write-through pays four synchronous
// WRITE round trips per session while write-behind coalesces them into
// one 128 KB extent sent at close ahead of the COMMIT.
constexpr size_t kChunk = 32768;
constexpr size_t kChunksPerWrite = 4;

// One mounted client: its own SfsClient (distinct ephemeral-key seed)
// and its own VFS, sharing the fleet's clock, cost model, and registry.
struct FleetNode {
  std::unique_ptr<sfs::SfsClient> client;
  std::unique_ptr<sim::Disk> disk;
  std::unique_ptr<nfs::MemFs> local_fs;  // VFS root; workload lives on SFS.
  std::unique_ptr<vfs::Vfs> vfs;
  vfs::UserContext user;
};

struct SharedFileResult {
  double seconds = 0;
  uint64_t wire_messages = 0;
  uint64_t commit_calls = 0;
  uint64_t batched_writes = 0;
  std::string timeline_json;
};

SharedFileResult RunSharedFile(bool write_behind) {
  obs::Registry registry;
  sim::Clock clock;
  const sim::CostModel& costs = bench::ActiveCostModel();

  // Telemetry timeline: the scenario runs ~3.6 virtual seconds, so
  // 100 ms windows give ~36 readings.  The stall rule is armed at the
  // write-behind backpressure limit — the handoff pattern commits at
  // every close, so the dirty track must stay bounded and no stall (or
  // overload) episode may appear; Finalize asserts both.
  obs::Timeline::Options timeline_options;
  timeline_options.window_ns = 100'000'000;
  timeline_options.stall_dirty_bytes_limit = 4 << 20;  // cache.h default.
  obs::Timeline timeline(&registry, timeline_options);
  timeline.AddRateTrack("msgs", "link.messages");
  timeline.AddRateTrack("commits", "commit.calls");
  timeline.AddGaugeTrack("dirty_bytes", "nfs.cache.dirty_bytes");
  timeline.AddLatencyTrack("rpc", "rpc.client.queue_wait_ns");
  sim::TimelineSampler sampler(&clock, &timeline);
  sampler.Start();

  auto authserver = std::make_unique<auth::AuthServer>();
  sfs::SfsServer::Options server_options;
  server_options.location = "server.bench";
  server_options.key_bits = 512;
  server_options.registry = &registry;
  auto server = std::make_unique<sfs::SfsServer>(&clock, &costs, server_options,
                                                 authserver.get());

  const crypto::RabinPrivateKey& user_key = bench::BenchUserKey();
  auth::PublicUserRecord record;
  record.name = "bench";
  record.public_key = user_key.public_key().Serialize();
  record.credentials = nfs::Credentials::User(1000, {1000});
  authserver->RegisterUser(record);
  agent::Agent agent("bench");
  agent.AddPrivateKey(user_key);

  auto make_node = [&](int seed) {
    FleetNode node;
    sfs::SfsClient::Options options;
    options.ephemeral_key_bits = 512;
    options.write_behind = write_behind;
    options.registry = &registry;
    options.prng_seed = 100 + static_cast<uint64_t>(seed);
    node.client = std::make_unique<sfs::SfsClient>(
        &clock, &costs, [&server](const std::string&) { return server.get(); },
        options);
    node.disk = std::make_unique<sim::Disk>(&clock, sim::DiskProfile::Ibm18Es());
    node.local_fs =
        std::make_unique<nfs::MemFs>(&clock, node.disk.get(), nfs::MemFs::Options{});
    node.vfs = std::make_unique<vfs::Vfs>(&clock, &costs, &registry);
    node.vfs->MountRoot(node.local_fs.get(), node.local_fs->root_handle());
    node.vfs->EnableSfs(node.client.get());
    node.user = vfs::UserContext::For(1000, &agent);
    return node;
  };
  std::vector<FleetNode> writers;
  std::vector<FleetNode> readers;
  for (int i = 0; i < kWriters; ++i) {
    writers.push_back(make_node(i));
  }
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(make_node(kWriters + i));
  }

  const std::string base = server->Path().FullPath() + "/shared";
  bench::Check(writers[0].vfs->Mkdir(writers[0].user, base), "mkdir shared");
  auto file_path = [&](int f) { return base + "/f" + std::to_string(f); };

  sim::Stopwatch watch(&clock);
  for (int round = 0; round < kRounds; ++round) {
    for (int f = 0; f < kFiles; ++f) {
      // Version the content per round so a reader observing stale data
      // fails the assert rather than silently passing.
      util::Bytes chunk =
          bench::Content(kChunk, static_cast<uint64_t>(round * kFiles + f + 1));
      FleetNode& w = writers[static_cast<size_t>(round * kFiles + f) % writers.size()];
      {
        auto file = bench::CheckResult(
            w.vfs->Open(w.user, file_path(f), vfs::OpenFlags::CreateRw()),
            "writer open");
        for (size_t c = 0; c < kChunksPerWrite; ++c) {
          bench::Check(file.Pwrite(c * kChunk, chunk), "writer pwrite");
          // This scenario is pure stop-and-wait (no event pump), so the
          // sampler's edges are delivered by polling; between the
          // buffered writes the dirty-bytes gauge is visibly nonzero.
          sampler.Poll();
        }
        bench::Check(file.Close(), "writer close");  // Flush + COMMIT.
      }
      sampler.Poll();
      // Close-to-open handoff: every reader opens after the writer's
      // close and must see this round's bytes.
      for (FleetNode& r : readers) {
        auto file = bench::CheckResult(
            r.vfs->Open(r.user, file_path(f), vfs::OpenFlags::ReadOnly()),
            "reader open");
        util::Bytes got = bench::CheckResult(file.Pread(0, kChunk), "reader pread");
        if (got != chunk) {
          std::fprintf(stderr, "shared_file: reader saw stale data (round %d file %d)\n",
                       round, f);
          std::abort();
        }
        bench::Check(file.Close(), "reader close");
        sampler.Poll();
      }
    }
  }

  sampler.Finalize();
  // Close-to-open handoff keeps backpressure invisible: the writer
  // commits at close, so dirty bytes never pin at the limit and the
  // serial access pattern never overloads the server.
  for (const obs::Timeline::Episode& episode : timeline.episodes()) {
    if (episode.kind == obs::Timeline::EpisodeKind::kOverload ||
        episode.kind == obs::Timeline::EpisodeKind::kStall) {
      std::fprintf(stderr, "shared_file: unexpected %s episode [%llu, %llu): %s\n",
                   obs::Timeline::EpisodeKindName(episode.kind),
                   static_cast<unsigned long long>(episode.begin_ns),
                   static_cast<unsigned long long>(episode.end_ns),
                   episode.cause.c_str());
      std::abort();
    }
  }
  for (const obs::Timeline::Window& window : timeline.windows()) {
    if (!window.gauges.empty() && window.gauges[0] > (4 << 20)) {
      std::fprintf(stderr, "shared_file: dirty bytes %lld above write-behind limit\n",
                   static_cast<long long>(window.gauges[0]));
      std::abort();
    }
  }

  SharedFileResult result;
  result.seconds = watch.elapsed_seconds();
  result.wire_messages = registry.CounterValue("link.messages");
  result.commit_calls = registry.CounterValue("commit.calls");
  result.batched_writes = registry.CounterValue("commit.batched_writes");
  result.timeline_json = timeline.ToJson();
  return result;
}

// range(0) = write-behind ablation.
void BM_SharedFile(benchmark::State& state) {
  for (auto _ : state) {
    bool write_behind = state.range(0) != 0;
    SharedFileResult result = RunSharedFile(write_behind);
    state.SetIterationTime(result.seconds);
    state.counters["wire_messages"] = static_cast<double>(result.wire_messages);
    state.counters["commit_calls"] = static_cast<double>(result.commit_calls);
    state.counters["batched_writes"] = static_cast<double>(result.batched_writes);
    state.SetLabel(write_behind ? "SFS + write-behind" : "SFS write-through");
    bench::RecordTimeline("BM_SharedFile/" + std::to_string(state.range(0)),
                          result.timeline_json);
  }
}

}  // namespace

BENCHMARK(BM_SharedFile)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("shared_file")
