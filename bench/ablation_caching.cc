// Ablation A: the design choices called out in §4.3.
//
//   * Enhanced caching: "Without enhanced caching, MAB takes a total of
//     6.6 seconds, 0.7 seconds slower than with caching and 1.3 seconds
//     slower than NFS 3 over UDP."
//   * Encryption: "We disabled encryption in SFS and observed only an
//     0.2 second performance improvement" on MAB.
//
// This binary runs MAB under SFS, SFS w/o enhanced caching, and SFS w/o
// encryption, plus NFS3/UDP as the baseline.
#include <benchmark/benchmark.h>

#include "bench/obs_report.h"

#include "bench/testbed.h"
#include "bench/workloads.h"

namespace {

using bench::Config;
using bench::Testbed;

void BM_Ablation_MabCaching(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(static_cast<Config>(state.range(0)));
    bench::MabResult result = bench::RunMab(&tb);
    state.SetIterationTime(result.total());
    state.counters["total_s"] = result.total();
    state.counters["attributes_s"] = result.attributes;
    state.counters["search_s"] = result.search;
    state.SetLabel(bench::ConfigName(tb.config()));
  }
}

}  // namespace

BENCHMARK(BM_Ablation_MabCaching)
    ->Arg(static_cast<int>(Config::kNfsUdp))
    ->Arg(static_cast<int>(Config::kSfs))
    ->Arg(static_cast<int>(Config::kSfsNoCache))
    ->Arg(static_cast<int>(Config::kSfsNoCrypt))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SFS_BENCH_JSON_MAIN("ablation_caching")
