// Audit-journal overhead on the paper's write-path benchmarks.
//
// Runs the fig8 (Sprite LFS small-file) and fig9 (large-file) workloads
// on the SFS configuration with the journal off (batch=0), per-record
// sealing (batch=1, the unamortized worst case), and the default
// batched MAC (batch=64).  All time is virtual and deterministic, so
// the committed BENCH_audit_overhead.json is an exact baseline;
// tools/audit_smoke.py diffs against it and asserts the batched
// overhead stays under 3% (ISSUE 7 acceptance).
//
// The binary doubles as the forensic-artifact generator for the smoke
// gate: --audit_emit=<dir> runs a small traced workload and writes
//   <dir>/audit.log    the finalized journal bytes
//   <dir>/audit.key    the genesis key (hex)
//   <dir>/trace.json   the Perfetto export of the same run
// so the tamper scenarios and the trace-id cross-link run offline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/obs_report.h"
#include "bench/testbed.h"
#include "bench/workloads.h"
#include "src/obs/auditlog.h"
#include "src/obs/span.h"
#include "src/sfs/audit.h"
#include "src/util/bytes.h"

namespace {

using bench::Config;
using bench::Testbed;

Testbed::AuditKnobs KnobsFor(int batch) {
  Testbed::AuditKnobs knobs;
  knobs.enabled = batch > 0;
  knobs.batch_records = batch > 0 ? static_cast<uint32_t>(batch) : 64;
  return knobs;
}

void AddAuditCounters(benchmark::State& state, Testbed& tb) {
  state.counters["audit_records"] =
      static_cast<double>(tb.registry()->CounterValue("audit.records"));
  state.counters["audit_batches"] =
      static_cast<double>(tb.registry()->CounterValue("audit.batches"));
  state.counters["audit_bytes"] =
      static_cast<double>(tb.registry()->CounterValue("audit.bytes"));
}

// Fig8 write path: create/read/unlink 1,000 1 KB files over SFS.
void BM_Fig8Audit(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(Config::kSfs, KnobsFor(static_cast<int>(state.range(0))));
    bench::LfsSmallResult result = bench::RunLfsSmall(&tb);
    state.SetIterationTime(result.create + result.read + result.unlink);
    state.counters["create_s"] = result.create;
    state.counters["read_s"] = result.read;
    state.counters["unlink_s"] = result.unlink;
    AddAuditCounters(state, tb);
    state.SetLabel(state.range(0) == 0
                       ? "audit off"
                       : "batch=" + std::to_string(state.range(0)));
  }
}

// Fig9 write path: 8 MB sequential/random write + read phases over SFS.
void BM_Fig9Audit(benchmark::State& state) {
  for (auto _ : state) {
    Testbed tb(Config::kSfs, KnobsFor(static_cast<int>(state.range(0))));
    bench::LfsLargeResult result = bench::RunLfsLarge(&tb, /*file_mb=*/8);
    state.SetIterationTime(result.seq_write + result.seq_read + result.rand_write +
                           result.rand_read + result.seq_read2);
    state.counters["seq_write_s"] = result.seq_write;
    state.counters["seq_read_s"] = result.seq_read;
    state.counters["rand_write_s"] = result.rand_write;
    state.counters["rand_read_s"] = result.rand_read;
    state.counters["seq_read2_s"] = result.seq_read2;
    AddAuditCounters(state, tb);
    state.SetLabel(state.range(0) == 0
                       ? "audit off"
                       : "batch=" + std::to_string(state.range(0)));
  }
}

// Forensic-artifact mode: a small traced SFS workload, journal
// finalized and exported together with its genesis key and trace.
int EmitForensicArtifacts(const std::string& dir) {
  Testbed tb(Config::kSfs, Testbed::AuditKnobs{true, /*batch_records=*/8});
  tb.EnableSpans();
  bench::RunLfsSmall(&tb, /*num_files=*/40, /*file_size=*/1024);

  sfs::ServerAuditor* auditor = tb.sfs_server()->auditor();
  auditor->Finalize();
  const obs::AuditLog& log = auditor->log();
  if (!log.WriteTo(dir + "/audit.log")) {
    std::fprintf(stderr, "audit_overhead: cannot write %s/audit.log\n", dir.c_str());
    return 1;
  }
  std::FILE* kf = std::fopen((dir + "/audit.key").c_str(), "w");
  if (kf == nullptr) {
    std::fprintf(stderr, "audit_overhead: cannot write %s/audit.key\n", dir.c_str());
    return 1;
  }
  std::fprintf(kf, "%s\n", util::HexEncode(auditor->genesis_key()).c_str());
  std::fclose(kf);
  if (!obs::WriteChromeTrace(dir + "/trace.json", tb.registry()->spans().finished())) {
    std::fprintf(stderr, "audit_overhead: cannot write %s/trace.json\n", dir.c_str());
    return 1;
  }
  std::printf("audit_overhead: %llu records, %llu batches, %zu log bytes -> %s\n",
              static_cast<unsigned long long>(log.next_seqno()),
              static_cast<unsigned long long>(log.batches_sealed()),
              log.bytes().size(), dir.c_str());
  return 0;
}

}  // namespace

BENCHMARK(BM_Fig8Audit)
    ->Arg(0)
    ->Arg(1)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_Fig9Audit)
    ->Arg(0)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  constexpr const char kEmitFlag[] = "--audit_emit=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kEmitFlag, sizeof(kEmitFlag) - 1) == 0) {
      return EmitForensicArtifacts(argv[i] + sizeof(kEmitFlag) - 1);
    }
  }
  return bench::BenchJsonMain(argc, argv, "audit_overhead");
}
