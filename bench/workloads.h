// Workload generators for the paper's benchmarks (§4.3–4.4).
#ifndef SFS_BENCH_WORKLOADS_H_
#define SFS_BENCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "bench/testbed.h"
#include "src/crypto/prng.h"

namespace bench {

// Deterministic file content.
inline util::Bytes Content(size_t len, uint64_t seed) {
  crypto::Prng prng(seed);
  return prng.RandomBytes(len);
}

inline void Check(const util::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup/run failed at %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckResult(util::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark setup/run failed at %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

// Writes a file in 8 KB chunks through the VFS and closes it (flushing).
inline void WriteFile(Testbed* tb, const std::string& path, const util::Bytes& content) {
  auto file = CheckResult(tb->vfs()->Open(tb->user(), path, vfs::OpenFlags::CreateRw()),
                          "create");
  size_t off = 0;
  while (off < content.size()) {
    size_t n = std::min<size_t>(8192, content.size() - off);
    Check(file.Write(util::Bytes(content.begin() + static_cast<long>(off),
                                 content.begin() + static_cast<long>(off + n))),
          "write");
    off += n;
  }
  Check(file.Close(), "close");
}

// Reads a whole file in 8 KB chunks; returns bytes read.
inline uint64_t ReadFile(Testbed* tb, const std::string& path) {
  auto file = CheckResult(tb->vfs()->Open(tb->user(), path, vfs::OpenFlags::ReadOnly()),
                          "open");
  uint64_t total = 0;
  for (;;) {
    auto data = CheckResult(file.Read(8192), "read");
    if (data.empty()) {
      break;
    }
    total += data.size();
  }
  Check(file.Close(), "close");
  return total;
}

// --- Modified Andrew Benchmark (§4.3) ----------------------------------------
//
// Five phases over a source tree of `kMabFiles` small files: (1) create
// directories, (2) copy the files in, (3) stat every file, (4) grep
// through every file, (5) compile.  Phase times are returned in seconds
// of virtual time.
struct MabResult {
  double directories = 0;
  double copy = 0;
  double attributes = 0;
  double search = 0;
  double compile = 0;
  double total() const { return directories + copy + attributes + search + compile; }
};

inline constexpr int kMabDirs = 8;
inline constexpr int kMabFiles = 70;
inline constexpr size_t kMabFileSize = 8 * 1024;

inline MabResult RunMab(Testbed* tb, uint64_t compile_cpu_per_file_ns = 50'000'000) {
  const std::string base = tb->WorkDir();
  auto* vfs = tb->vfs();
  const auto& user = tb->user();
  MabResult result;
  sim::Stopwatch watch(tb->clock());

  // Phase 1: directories.
  for (int d = 0; d < kMabDirs; ++d) {
    Check(vfs->Mkdir(user, base + "/dir" + std::to_string(d)), "mab mkdir");
  }
  result.directories = watch.elapsed_seconds();
  watch.Reset();

  // Phase 2: copy (small files: data movement + metadata updates).
  std::vector<std::string> files;
  for (int f = 0; f < kMabFiles; ++f) {
    std::string path =
        base + "/dir" + std::to_string(f % kMabDirs) + "/src" + std::to_string(f) + ".c";
    WriteFile(tb, path, Content(kMabFileSize, 9000 + static_cast<uint64_t>(f)));
    files.push_back(path);
  }
  result.copy = watch.elapsed_seconds();
  watch.Reset();

  // Phase 3: attributes (stat every file).
  for (const std::string& f : files) {
    CheckResult(vfs->Stat(user, f), "mab stat");
  }
  result.attributes = watch.elapsed_seconds();
  watch.Reset();

  // Phase 4: search (grep for a string that does not appear).
  for (const std::string& f : files) {
    ReadFile(tb, f);
  }
  result.search = watch.elapsed_seconds();
  watch.Reset();

  // Phase 5: compile (read source, burn CPU, write object).
  for (const std::string& f : files) {
    ReadFile(tb, f);
    tb->clock()->Advance(compile_cpu_per_file_ns, obs::TimeCategory::kApp);
    WriteFile(tb, f + ".o", Content(kMabFileSize / 2, 777));
  }
  result.compile = watch.elapsed_seconds();
  return result;
}

// --- Sprite LFS small-file benchmark (§4.4) ----------------------------------
struct LfsSmallResult {
  double create = 0;
  double read = 0;
  double unlink = 0;
};

inline LfsSmallResult RunLfsSmall(Testbed* tb, int num_files = 1000, size_t file_size = 1024) {
  const std::string base = tb->WorkDir();
  auto* vfs = tb->vfs();
  const auto& user = tb->user();
  LfsSmallResult result;
  util::Bytes content = Content(file_size, 4242);
  sim::Stopwatch watch(tb->clock());

  for (int i = 0; i < num_files; ++i) {
    WriteFile(tb, base + "/small" + std::to_string(i), content);
  }
  result.create = watch.elapsed_seconds();

  // Phase separation: FreeBSD's buffer cache did not retain these small
  // files across the phase boundary; model that by dropping client-side
  // caches (server buffer cache stays warm).
  tb->DropClientCaches();
  watch.Reset();
  for (int i = 0; i < num_files; ++i) {
    ReadFile(tb, base + "/small" + std::to_string(i));
  }
  result.read = watch.elapsed_seconds();

  tb->DropClientCaches();
  watch.Reset();
  for (int i = 0; i < num_files; ++i) {
    Check(vfs->Unlink(user, base + "/small" + std::to_string(i)), "lfs unlink");
  }
  result.unlink = watch.elapsed_seconds();
  return result;
}

// --- Sprite LFS large-file benchmark (§4.4) ----------------------------------
struct LfsLargeResult {
  double seq_write = 0;
  double seq_read = 0;
  double rand_write = 0;
  double rand_read = 0;
  double seq_read2 = 0;
};

inline LfsLargeResult RunLfsLarge(Testbed* tb, size_t file_mb = 40) {
  const std::string base = tb->WorkDir();
  const std::string path = base + "/large.bin";
  auto* vfs = tb->vfs();
  const size_t chunk = 8192;
  const size_t total = file_mb << 20;
  util::Bytes block = Content(chunk, 31337);
  LfsLargeResult result;
  sim::Stopwatch watch(tb->clock());

  // Sequential write.
  {
    auto file = CheckResult(vfs->Open(tb->user(), path, vfs::OpenFlags::CreateRw()),
                            "large create");
    for (size_t off = 0; off < total; off += chunk) {
      Check(file.Pwrite(off, block), "seq write");
    }
    Check(file.Close(), "close");
  }
  result.seq_write = watch.elapsed_seconds();

  tb->DropClientCaches();
  watch.Reset();
  // Sequential read.
  {
    auto file = CheckResult(vfs->Open(tb->user(), path, vfs::OpenFlags::ReadOnly()), "open");
    for (size_t off = 0; off < total; off += chunk) {
      CheckResult(file.Pread(off, chunk), "seq read");
    }
    Check(file.Close(), "close");
  }
  result.seq_read = watch.elapsed_seconds();

  // Random write (deterministic permutation of chunk indices).
  tb->DropClientCaches();
  watch.Reset();
  {
    auto flags = vfs::OpenFlags::WriteOnly();
    auto file = CheckResult(vfs->Open(tb->user(), path, flags), "open w");
    crypto::Prng prng(uint64_t{555});
    size_t nchunks = total / chunk;
    for (size_t i = 0; i < nchunks; ++i) {
      size_t target = prng.RandomUint64(nchunks);
      Check(file.Pwrite(target * chunk, block), "rand write");
    }
    Check(file.Close(), "close");
  }
  result.rand_write = watch.elapsed_seconds();

  // Random read.
  tb->DropClientCaches();
  watch.Reset();
  {
    auto file = CheckResult(vfs->Open(tb->user(), path, vfs::OpenFlags::ReadOnly()), "open");
    crypto::Prng prng(uint64_t{556});
    size_t nchunks = total / chunk;
    for (size_t i = 0; i < nchunks; ++i) {
      size_t target = prng.RandomUint64(nchunks);
      CheckResult(file.Pread(target * chunk, chunk), "rand read");
    }
    Check(file.Close(), "close");
  }
  result.rand_read = watch.elapsed_seconds();

  // Sequential re-read.
  tb->DropClientCaches();
  watch.Reset();
  {
    auto file = CheckResult(vfs->Open(tb->user(), path, vfs::OpenFlags::ReadOnly()), "open");
    for (size_t off = 0; off < total; off += chunk) {
      CheckResult(file.Pread(off, chunk), "seq read 2");
    }
    Check(file.Close(), "close");
  }
  result.seq_read2 = watch.elapsed_seconds();
  return result;
}

}  // namespace bench

#endif  // SFS_BENCH_WORKLOADS_H_
