// Shared benchmark testbed: reconstructs the paper's §4.1 experimental
// setup as simulated machines — one client, one server, 100 Mbit/s
// switched Ethernet — in each of the measured configurations:
//
//   Local        the server's local FFS (no network)
//   NFS3/UDP     plain NFS 3 over the UDP profile
//   NFS3/TCP     plain NFS 3 over the TCP profile
//   SFS          full SFS: secure channel, leases, user-level daemons
//   SFS w/o enc  SFS negotiated down to a cleartext channel (§4.2)
//   SFS w/o cache SFS with enhanced caching disabled (§4.3 ablation)
//
// All time is virtual (sim::Clock); see src/sim/cost_model.h for the
// constants and their derivation from the paper's own numbers.
#ifndef SFS_BENCH_TESTBED_H_
#define SFS_BENCH_TESTBED_H_

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/cache.h"
#include "src/obs/metrics.h"
#include "src/nfs/client.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/rpc/rpc.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/obs/timeline.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"
#include "src/sim/sampler.h"
#include "src/vfs/vfs.h"

namespace bench {

enum class Config {
  kLocal,
  kNfsUdp,
  kNfsTcp,
  kSfs,
  kSfsNoCrypt,
  kSfsNoCache,
};

inline const char* ConfigName(Config c) {
  switch (c) {
    case Config::kLocal:
      return "Local";
    case Config::kNfsUdp:
      return "NFS 3 (UDP)";
    case Config::kNfsTcp:
      return "NFS 3 (TCP)";
    case Config::kSfs:
      return "SFS";
    case Config::kSfsNoCrypt:
      return "SFS w/o encryption";
    case Config::kSfsNoCache:
      return "SFS w/o enhanced caching";
  }
  return "?";
}

// The cost model every testbed runs under.  Defaults to the paper's
// Pentium III profile; SFS_COST_MODEL=calibrated (set directly or via
// the --sfs_cost_model= flag of BenchJsonMain) times this build's real
// crypto primitives on the host CPU instead.  Calibration runs once and
// is cached — it costs a few hundred ms.
inline const sim::CostModel& ActiveCostModel() {
  static const sim::CostModel kModel = [] {
    const char* env = std::getenv("SFS_COST_MODEL");
    if (env != nullptr && std::strcmp(env, "calibrated") == 0) {
      return sim::CostModel::CalibrateFromPrimitives();
    }
    return sim::CostModel::PentiumIII550();
  }();
  return kModel;
}

// The benchmark user's 512-bit Rabin key.  Deterministic (fixed seed)
// and generated once per process: every Testbed shares it, which keeps
// per-testbed setup out of measured benchmark time.
inline const crypto::RabinPrivateKey& BenchUserKey() {
  static const crypto::RabinPrivateKey kKey = [] {
    crypto::Prng prng(uint64_t{7001});
    return crypto::RabinPrivateKey::Generate(&prng, 512);
  }();
  return kKey;
}

// One fully wired client/server pair.  All members share one virtual
// clock; workloads measure with sim::Stopwatch over `clock`.
class Testbed {
 public:
  // Audit-journal knobs for the SFS configurations (bench/audit_overhead
  // sweeps these; everything else runs the server default).
  struct AuditKnobs {
    bool enabled = true;
    uint32_t batch_records = 64;
  };

  // Client cache-layer knobs (bench ablations).  write_behind turns on
  // the WRITE(UNSTABLE)+COMMIT pipeline plus close-to-open consistency
  // in whichever cache stack the config builds (NFS3 or SFS); off keeps
  // the seed's write-through discipline.
  struct CacheKnobs {
    bool write_behind = false;
  };

  explicit Testbed(Config config) : Testbed(config, AuditKnobs()) {}
  Testbed(Config config, AuditKnobs audit) : Testbed(config, audit, CacheKnobs()) {}
  Testbed(Config config, CacheKnobs cache) : Testbed(config, AuditKnobs(), cache) {}

  Testbed(Config config, AuditKnobs audit, CacheKnobs cache)
      : config_(config), costs_(ActiveCostModel()) {
    vfs_ = std::make_unique<vfs::Vfs>(&clock_, &costs_, &registry_);

    switch (config) {
      case Config::kLocal: {
        // Client-local file system; syscalls + disk only.
        disk_ = std::make_unique<sim::Disk>(&clock_, sim::DiskProfile::Ibm18Es(), &registry_);
        memfs_ = std::make_unique<nfs::MemFs>(&clock_, disk_.get(), nfs::MemFs::Options{});
        vfs_->MountRoot(memfs_.get(), memfs_->root_handle());
        server_fs_ = memfs_.get();
        break;
      }
      case Config::kNfsUdp:
      case Config::kNfsTcp: {
        disk_ = std::make_unique<sim::Disk>(&clock_, sim::DiskProfile::Ibm18Es(), &registry_);
        memfs_ = std::make_unique<nfs::MemFs>(&clock_, disk_.get(), nfs::MemFs::Options{});
        program_ = std::make_unique<nfs::NfsProgram>(memfs_.get(), &clock_, &costs_);
        dispatcher_ = std::make_unique<rpc::Dispatcher>(&registry_, &clock_);
        dispatcher_->RegisterProgram(
            nfs::kNfsProgram,
            [this](uint32_t proc, const util::Bytes& args) {
              return program_->HandleWire(proc, args);
            },
            [](uint32_t proc) { return std::string(nfs::ProcName(proc)); }, "NFS3");
        // The server machine is explicit: an admission/execution Host
        // the link (and any additional fleet links) schedules into.
        host_ = std::make_unique<sim::Host>(&clock_, dispatcher_.get(), &registry_);
        link_ = std::make_unique<sim::Link>(&clock_,
                                            config == Config::kNfsUdp
                                                ? sim::LinkProfile::Udp()
                                                : sim::LinkProfile::NfsTcpKernel(),
                                            host_.get(), &registry_);
        transport_ = std::make_unique<rpc::LinkTransport>(link_.get());
        rpc_client_ = std::make_unique<rpc::Client>(
            transport_.get(), nfs::kNfsProgram, &registry_, "NFS3",
            [](uint32_t proc) { return std::string(nfs::ProcName(proc)); });
        nfs_client_ = std::make_unique<nfs::NfsClient>(
            [this](uint32_t proc, const util::Bytes& args) {
              return rpc_client_->Call(proc, args);
            },
            nfs::NfsClient::WireCredentialsEncoder());
        nfs::CacheOptions cache_options;  // Plain NFS3 attribute timeouts.
        cache_options.registry = &registry_;
        cache_options.write_behind = cache.write_behind;
        cache_options.close_to_open = cache.write_behind;
        cached_ = std::make_unique<nfs::CachingFs>(nfs_client_.get(), &clock_, cache_options);
        vfs_->MountRoot(cached_.get(), memfs_->root_handle());
        server_fs_ = memfs_.get();
        break;
      }
      case Config::kSfs:
      case Config::kSfsNoCrypt:
      case Config::kSfsNoCache: {
        // Client keeps a (rarely used) local root; the workload lives on
        // the SFS server.
        disk_ = std::make_unique<sim::Disk>(&clock_, sim::DiskProfile::Ibm18Es(), &registry_);
        memfs_ = std::make_unique<nfs::MemFs>(&clock_, disk_.get(), nfs::MemFs::Options{});
        vfs_->MountRoot(memfs_.get(), memfs_->root_handle());

        authserver_ = std::make_unique<auth::AuthServer>();
        sfs::SfsServer::Options server_options;
        server_options.location = "server.bench";
        server_options.key_bits = 512;
        server_options.allow_cleartext = config == Config::kSfsNoCrypt;
        server_options.registry = &registry_;
        server_options.audit = audit.enabled;
        server_options.audit_batch_records = audit.batch_records;
        sfs_server_ = std::make_unique<sfs::SfsServer>(&clock_, &costs_, server_options,
                                                       authserver_.get());
        server_fs_ = sfs_server_->fs();

        sfs::SfsClient::Options client_options;
        client_options.ephemeral_key_bits = 512;
        client_options.encrypt = config != Config::kSfsNoCrypt;
        client_options.enhanced_caching = config != Config::kSfsNoCache;
        client_options.write_behind = cache.write_behind;
        client_options.registry = &registry_;
        sfs_client_ = std::make_unique<sfs::SfsClient>(
            &clock_, &costs_,
            [this](const std::string&) { return sfs_server_.get(); }, client_options);
        vfs_->EnableSfs(sfs_client_.get());

        // Register the benchmark user and give her agent the key.
        user_key_ = BenchUserKey();
        auth::PublicUserRecord record;
        record.name = "bench";
        record.public_key = user_key_.public_key().Serialize();
        record.credentials = nfs::Credentials::User(1000, {1000});
        authserver_->RegisterUser(record);
        agent_ = std::make_unique<agent::Agent>("bench");
        agent_->AddPrivateKey(user_key_);
        break;
      }
    }
    user_ = vfs::UserContext::For(1000, agent_.get());
  }

  // Absolute path of the working directory for workloads, created here.
  std::string WorkDir() {
    std::string base = IsSfs() ? sfs_server_->Path().FullPath() + "/bench" : "/bench";
    vfs_->Mkdir(user_, base);
    // Exclude mount/auth setup cost from workload timing: benchmarks
    // measure steady-state operation, as the paper does.
    return base;
  }

  // Drops client-side caches (phase separation in the LFS benchmarks);
  // the server's buffer cache stays warm.  No-op for the local config,
  // whose only cache *is* the buffer cache.
  void DropClientCaches() {
    if (cached_ != nullptr) {
      cached_->InvalidateAll();
    }
    if (sfs_client_ != nullptr) {
      auto mount = sfs_client_->Mount(sfs_server_->Path());
      if (mount.ok()) {
        (*mount)->cache()->InvalidateAll();
      }
    }
  }

  // Messages that actually crossed the wire (both directions).  All
  // links publish into this testbed's registry, so one counter covers
  // every configuration.
  uint64_t WireMessages() { return registry_.CounterValue("link.messages"); }

  // Fault injector for lossy-network benchmarks.  Must be called before
  // the first operation (the SFS mount link is created lazily).
  void InstallInterposer(sim::Interposer* interposer) {
    if (link_ != nullptr) {
      link_->set_interposer(interposer);
    }
    if (sfs_client_ != nullptr) {
      sfs_client_->set_interposer(interposer);
    }
  }

  // Timer-driven resends (transit loss) plus stale-reply resends.  These
  // used to be hand-summed from three per-component counters; every
  // layer now also publishes into the registry, which is authoritative.
  uint64_t Retransmissions() {
    return registry_.CounterValue("link.retransmissions") +
           registry_.CounterValue("rpc.client.stale_retries");
  }

  // Requests the server answered from its duplicate-request cache
  // (rpc::Dispatcher's DRC or sfs::ServerConnection's reply cache).
  uint64_t DrcHits() { return registry_.CounterValue("server.drc_hits"); }

  bool IsSfs() const {
    return config_ == Config::kSfs || config_ == Config::kSfsNoCrypt ||
           config_ == Config::kSfsNoCache;
  }

  Config config() const { return config_; }
  sim::Clock* clock() { return &clock_; }
  // The NFS server machine (null for local/SFS configs, which own their
  // service pipelines elsewhere).
  sim::Host* host() { return host_.get(); }
  // This testbed's private metrics registry; every component publishes
  // here, so concurrent testbeds never share counters.
  obs::Registry* registry() { return &registry_; }

  // Turns on span collection for this testbed, wiring the collector to
  // the shared virtual clock.  Call before running a workload; collected
  // spans are at registry()->spans().
  void EnableSpans(size_t capacity = 1 << 20) {
    registry_.spans().Enable(
        [this] { return clock_.now_ns(); },
        [this](uint64_t out[obs::kTimeCategoryCount]) {
          const sim::Clock::CategorySnapshot& charged = clock_.categories();
          for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
            out[i] = charged.ns[i];
          }
        },
        capacity);
  }

  // Turns on windowed telemetry for this testbed: an obs::Timeline with
  // the standard track set, sampled by a recurring event on the shared
  // clock.  Call before running a workload; FinalizeTimeline() (or the
  // testbed's destruction order) closes the trailing window and runs
  // the episode annotator.  The testbed's workloads advance the clock
  // in large kApp jumps (lease expiries), so the default window here is
  // 1 s virtual rather than the Timeline's 10 ms — jumps collapse into
  // single catch-up windows either way.
  obs::Timeline* EnableTimeline(uint64_t window_ns = 1'000'000'000) {
    if (timeline_ != nullptr) {
      return timeline_.get();
    }
    obs::Timeline::Options opts;
    opts.window_ns = window_ns;
    timeline_ = std::make_unique<obs::Timeline>(&registry_, opts);
    timeline_->AddRateTrack("msgs", "link.messages");
    timeline_->AddGaugeTrack("in_flight", "rpc.client.in_flight");
    timeline_->AddGaugeTrack("dirty_bytes", "nfs.cache.dirty_bytes");
    timeline_->AddLatencyTrack("rpc", "rpc.client.queue_wait_ns");
    sampler_ = std::make_unique<sim::TimelineSampler>(&clock_, timeline_.get());
    sampler_->Start();
    return timeline_.get();
  }

  // Delivers any pending window edge by polling (testbed workloads run
  // the synchronous stop-and-wait path, which never pumps the event
  // queue); call between workload phases.
  void PollTimeline() {
    if (sampler_ != nullptr) {
      sampler_->Poll();
    }
  }

  // Closes the trailing window and runs the episode annotator; safe to
  // call repeatedly (later calls no-op).
  obs::Timeline* FinalizeTimeline() {
    if (sampler_ != nullptr) {
      sampler_->Finalize();
    }
    return timeline_.get();
  }

  obs::Timeline* timeline() { return timeline_.get(); }

  // Full machine-readable dump: refreshes the time.<category>_ns
  // counters from the clock's ledger, then snapshots every metric.
  std::string ObsSnapshotJson() {
    clock_.ExportTimeCounters(&registry_);
    return registry_.SnapshotJson();
  }
  vfs::Vfs* vfs() { return vfs_.get(); }
  // The SFS server (null for non-SFS configs); audit_overhead uses it
  // to finalize and export the journal.
  sfs::SfsServer* sfs_server() { return sfs_server_.get(); }
  const vfs::UserContext& user() const { return user_; }
  // The server-side file store (for cold-file setup and cache drops).
  nfs::MemFs* server_fs() { return server_fs_; }

 private:
  Config config_;
  // Declared before the components so it outlives them (they cache
  // pointers to its counters).
  obs::Registry registry_;
  sim::Clock clock_;
  sim::CostModel costs_;
  // Windowed telemetry (EnableTimeline); declared after the clock so the
  // sampler can cancel its pending edge before the event queue dies.
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<sim::TimelineSampler> sampler_;
  std::unique_ptr<vfs::Vfs> vfs_;
  vfs::UserContext user_;

  std::unique_ptr<sim::Disk> disk_;
  std::unique_ptr<nfs::MemFs> memfs_;
  nfs::MemFs* server_fs_ = nullptr;

  // Plain NFS pieces.
  std::unique_ptr<nfs::NfsProgram> program_;
  std::unique_ptr<rpc::Dispatcher> dispatcher_;
  std::unique_ptr<sim::Host> host_;
  std::unique_ptr<sim::Link> link_;
  std::unique_ptr<rpc::LinkTransport> transport_;
  std::unique_ptr<rpc::Client> rpc_client_;
  std::unique_ptr<nfs::NfsClient> nfs_client_;
  std::unique_ptr<nfs::CachingFs> cached_;

  // SFS pieces.
  std::unique_ptr<auth::AuthServer> authserver_;
  std::unique_ptr<sfs::SfsServer> sfs_server_;
  std::unique_ptr<sfs::SfsClient> sfs_client_;
  crypto::RabinPrivateKey user_key_;
  std::unique_ptr<agent::Agent> agent_;
};

}  // namespace bench

#endif  // SFS_BENCH_TESTBED_H_
