#include "src/agent/agent.h"

#include "src/auth/authserver.h"
#include "src/crypto/sha1.h"
#include "src/sfs/session.h"
#include "src/xdr/xdr.h"

namespace agent {

std::optional<util::Bytes> Agent::SignAuthRequest(size_t key_index,
                                                  const util::Bytes& auth_info,
                                                  uint32_t seqno) {
  if (key_index >= keys_.size()) {
    return std::nullopt;
  }
  const crypto::RabinPrivateKey& key = keys_[key_index];
  util::Bytes auth_id = sfs::MakeAuthId(auth_info);
  util::Bytes body = auth::MakeSignedAuthReqBody(auth_id, seqno);

  xdr::Encoder msg;
  msg.PutOpaque(key.public_key().Serialize());
  msg.PutOpaque(key.Sign(body));

  // Audit every private-key operation (paper §2.5.1: the agent "can keep
  // a full audit trail of every private key operation it performs").
  Audit("sign auth-req key=" + std::to_string(key_index) +
        " authid=" + util::HexEncode(auth_id).substr(0, 16) +
        " seqno=" + std::to_string(seqno));
  return msg.Take();
}

std::optional<util::Bytes> ProxyAgent::SignAuthRequest(size_t key_index,
                                                       const util::Bytes& auth_info,
                                                       uint32_t seqno) {
  // Forward to the machine that actually holds the keys; the audit path
  // records the hop ("requests contain a field reserved for the path of
  // processes and machines through which the request arrived").
  Audit("forward auth-req via " + host_ + " seqno=" + std::to_string(seqno));
  auto result = upstream_->SignAuthRequest(key_index, auth_info, seqno);
  if (!result.has_value()) {
    Audit("upstream declined seqno=" + std::to_string(seqno));
  }
  return result;
}

std::optional<std::string> Agent::LookupLink(const std::string& name) const {
  auto it = links_.find(name);
  if (it == links_.end()) {
    return std::nullopt;
  }
  return it->second;
}

util::Status Agent::AddRevocation(const sfs::PathRevokeCert& cert) {
  RETURN_IF_ERROR(cert.Verify());
  if (!cert.is_revocation()) {
    return util::InvalidArgument("forwarding pointer is not a revocation certificate");
  }
  revocations_[util::StringOf(cert.RevokedPath().host_id)] = cert;
  return util::OkStatus();
}

void Agent::BlockHostId(const util::Bytes& host_id) {
  blocked_host_ids_.insert(util::StringOf(host_id));
}

bool Agent::IsRevoked(const sfs::SelfCertifyingPath& path) const {
  return revocations_.count(util::StringOf(path.host_id)) != 0;
}

bool Agent::IsBlocked(const sfs::SelfCertifyingPath& path) const {
  return blocked_host_ids_.count(util::StringOf(path.host_id)) != 0;
}

const sfs::PathRevokeCert* Agent::RevocationFor(const util::Bytes& host_id) const {
  auto it = revocations_.find(util::StringOf(host_id));
  return it == revocations_.end() ? nullptr : &it->second;
}

}  // namespace agent
