// The SFS user agent ("sfsagent", paper §2.3, §2.5.1).
//
// Every user runs an unprivileged agent of her choice.  The agent:
//   * holds the user's private keys and signs authentication requests
//     (it can decline, leaving the user anonymous);
//   * controls the user's view of /sfs: dynamic symbolic links visible
//     only to this agent's processes (secure bookmarks, manual key
//     distribution, on-the-fly links from certification paths);
//   * keeps an ordered certification path — directories searched for
//     symlinks when the user names a non-self-certifying name in /sfs;
//   * decides revocation: it records verified revocation certificates and
//     can block HostIDs unilaterally (HostID blocking affects only this
//     agent's owner, §2.6);
//   * keeps an audit trail of every private-key operation it performs.
#ifndef SFS_SRC_AGENT_AGENT_H_
#define SFS_SRC_AGENT_AGENT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/rabin.h"
#include "src/sfs/pathname.h"
#include "src/sfs/revocation.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace agent {

class Agent {
 public:
  explicit Agent(std::string owner) : owner_(std::move(owner)) {}
  virtual ~Agent() = default;

  const std::string& owner() const { return owner_; }

  // --- User authentication ---
  void AddPrivateKey(crypto::RabinPrivateKey key) { keys_.push_back(std::move(key)); }
  virtual size_t key_count() const { return keys_.size(); }

  // Signs an authentication request with key `index` (agents try their
  // keys in succession against a server).  Records the operation in the
  // audit trail.  Returns nullopt if the agent has no such key.
  virtual std::optional<util::Bytes> SignAuthRequest(size_t key_index,
                                                     const util::Bytes& auth_info,
                                                     uint32_t seqno);

  // --- Dynamic /sfs links (per-agent namespace) ---
  // Maps a human-readable name under /sfs to a target path.
  void AddLink(const std::string& name, const std::string& target) {
    links_[name] = target;
  }
  std::optional<std::string> LookupLink(const std::string& name) const;

  // --- Certification paths (§2.4) ---
  void AddCertPathDir(const std::string& dir) { cert_path_.push_back(dir); }
  const std::vector<std::string>& cert_path() const { return cert_path_; }

  // --- Revocation directories (§2.6) ---
  // Directories of revocation certificates named by base-32 HostID
  // ("Verisign decides to maintain a directory called revocations/...
  // Whenever a user accesses a new file system, his agent checks the
  // revocation directory").  The VFS consults these at mount time.
  void AddRevocationDir(const std::string& dir) { revocation_dirs_.push_back(dir); }
  const std::vector<std::string>& revocation_dirs() const { return revocation_dirs_; }

  // --- Revocation and HostID blocking (§2.6) ---
  // Accepts a certificate only if it verifies; returns its status.
  util::Status AddRevocation(const sfs::PathRevokeCert& cert);
  // Unilateral block: no certificate required, affects only this agent.
  void BlockHostId(const util::Bytes& host_id);
  bool IsRevoked(const sfs::SelfCertifyingPath& path) const;
  bool IsBlocked(const sfs::SelfCertifyingPath& path) const;
  const sfs::PathRevokeCert* RevocationFor(const util::Bytes& host_id) const;

  // --- Audit trail (§2.5.1) ---
  const std::vector<std::string>& audit_log() const { return audit_log_; }

 protected:
  void Audit(std::string entry) { audit_log_.push_back(std::move(entry)); }
  const crypto::RabinPrivateKey* key(size_t index) const {
    return index < keys_.size() ? &keys_[index] : nullptr;
  }

 private:
  std::string owner_;
  std::vector<crypto::RabinPrivateKey> keys_;
  std::map<std::string, std::string> links_;
  std::vector<std::string> cert_path_;
  std::vector<std::string> revocation_dirs_;
  std::map<std::string, sfs::PathRevokeCert> revocations_;  // By HostID bytes.
  std::set<std::string> blocked_host_ids_;
  std::vector<std::string> audit_log_;
};

// A proxy agent (§2.5.1): forwards signing requests to an upstream agent
// — the shape of an ssh-style remote login helper, where the user's keys
// stay on her own machine and the remote host only relays requests.  The
// proxy appends itself to the audit path, so the upstream agent's log
// shows every machine a request traveled through.
class ProxyAgent : public Agent {
 public:
  ProxyAgent(std::string host, Agent* upstream)
      : Agent(upstream->owner() + "@" + host), host_(std::move(host)), upstream_(upstream) {}

  size_t key_count() const override { return upstream_->key_count(); }

  std::optional<util::Bytes> SignAuthRequest(size_t key_index, const util::Bytes& auth_info,
                                             uint32_t seqno) override;

 private:
  std::string host_;
  Agent* upstream_;
};

}  // namespace agent

#endif  // SFS_SRC_AGENT_AGENT_H_
