#include "src/util/status.h"

namespace util {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kSecurityError:
      return "SECURITY_ERROR";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace util
