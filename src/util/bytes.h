// Byte-string helpers shared across the SFS tree.
//
// All binary data in SFS (keys, hashes, MACs, XDR buffers, file contents)
// is carried as util::Bytes.  The helpers here cover the encodings the
// paper relies on: hex for debugging, and SFS's base-32 HostID encoding
// whose alphabet deliberately omits the confusable characters
// "l" (lower-case L), "1", "0", and "o" (paper §2.2).
#ifndef SFS_SRC_UTIL_BYTES_H_
#define SFS_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace util {

using Bytes = std::vector<uint8_t>;

// Construct Bytes from a string's raw characters.
Bytes BytesOf(const std::string& s);

// Interpret Bytes as a string (may contain NULs).
std::string StringOf(const Bytes& b);

// Append src to dst.
void Append(Bytes* dst, const Bytes& src);
void Append(Bytes* dst, const std::string& src);

// Lower-case hex encoding ("deadbeef").
std::string HexEncode(const Bytes& b);
Result<Bytes> HexDecode(const std::string& hex);

// SFS base-32: 32-character alphabet of digits and lower-case letters
// omitting "l", "1", "0", "o".  Encodes 5 bits per character, most
// significant bits first; a 20-byte HostID encodes to 32 characters.
std::string Base32Encode(const Bytes& b);

// Decodes a base-32 string produced by Base32Encode.  The byte length is
// len*5/8 (trailing sub-byte bits must be zero).
Result<Bytes> Base32Decode(const std::string& s);

// Constant-time equality for secrets (MACs, keys).
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

}  // namespace util

#endif  // SFS_SRC_UTIL_BYTES_H_
