#include "src/util/bytes.h"

#include <array>

namespace util {
namespace {

// Digits and lower-case letters with "0", "1", "l", "o" removed (paper §2.2).
constexpr char kBase32Alphabet[] = "23456789abcdefghijkmnpqrstuvwxyz";
static_assert(sizeof(kBase32Alphabet) == 33, "alphabet must have 32 characters");

std::array<int8_t, 256> BuildBase32Reverse() {
  std::array<int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 32; ++i) {
    rev[static_cast<uint8_t>(kBase32Alphabet[i])] = static_cast<int8_t>(i);
  }
  return rev;
}

const std::array<int8_t, 256>& Base32Reverse() {
  static const std::array<int8_t, 256> kRev = BuildBase32Reverse();
  return kRev;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Bytes BytesOf(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string StringOf(const Bytes& b) { return std::string(b.begin(), b.end()); }

void Append(Bytes* dst, const Bytes& src) { dst->insert(dst->end(), src.begin(), src.end()); }

void Append(Bytes* dst, const std::string& src) { dst->insert(dst->end(), src.begin(), src.end()); }

std::string HexEncode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xf]);
  }
  return out;
}

Result<Bytes> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("invalid hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string Base32Encode(const Bytes& b) {
  std::string out;
  out.reserve((b.size() * 8 + 4) / 5);
  uint32_t accum = 0;
  int bits = 0;
  for (uint8_t byte : b) {
    accum = (accum << 8) | byte;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32Alphabet[(accum >> bits) & 0x1f]);
    }
  }
  if (bits > 0) {
    out.push_back(kBase32Alphabet[(accum << (5 - bits)) & 0x1f]);
  }
  return out;
}

Result<Bytes> Base32Decode(const std::string& s) {
  const auto& rev = Base32Reverse();
  Bytes out;
  out.reserve(s.size() * 5 / 8);
  uint32_t accum = 0;
  int bits = 0;
  for (char c : s) {
    int8_t v = rev[static_cast<uint8_t>(c)];
    if (v < 0) {
      return InvalidArgument("invalid base32 character");
    }
    accum = (accum << 5) | static_cast<uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>((accum >> bits) & 0xff));
    }
  }
  if (bits > 0 && (accum & ((1u << bits) - 1)) != 0) {
    return InvalidArgument("nonzero trailing bits in base32 string");
  }
  return out;
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace util
