// Lightweight Status / Result<T> error handling used across the SFS tree.
//
// SFS modules do not throw exceptions across module boundaries; fallible
// operations return util::Status (or util::Result<T> when they also produce
// a value).  This mirrors the style of other os-systems codebases where
// error propagation must be explicit and cheap.
#ifndef SFS_SRC_UTIL_STATUS_H_
#define SFS_SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace util {

// Broad error categories.  SFS maps protocol-level failures (bad MAC, bad
// signature, revoked HostID, ...) onto these so callers can react uniformly.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad pathname, bad XDR, ...)
  kNotFound,          // no such file/server/key
  kPermissionDenied,  // access control said no
  kSecurityError,     // cryptographic verification failed (MAC, signature, HostID)
  kUnavailable,       // server unreachable / connection torn down
  kAlreadyExists,     // create on an existing name
  kOutOfRange,        // offset/length outside object
  kFailedPrecondition,// operation not valid in current state
  kInternal,          // invariant violation; indicates a bug
};

// Human-readable name for an ErrorCode ("OK", "SECURITY_ERROR", ...).
const char* ErrorCodeName(ErrorCode code);

// A Status is either OK or an (ErrorCode, message) pair.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "SECURITY_ERROR: mac check failed".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status SecurityError(std::string msg) {
  return Status(ErrorCode::kSecurityError, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return util::NotFound("...");`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(value_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(value_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace util

// Propagate a non-OK Status from an expression.
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::util::Status _status = (expr);           \
    if (!_status.ok()) {                       \
      return _status;                          \
    }                                          \
  } while (0)

// Evaluate a Result-returning expression; bind the value or propagate.
#define ASSIGN_OR_RETURN(lhs, rexpr)           \
  ASSIGN_OR_RETURN_IMPL(                       \
      SFS_STATUS_CONCAT(_result, __LINE__), lhs, rexpr)
#define ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                          \
  if (!result.ok()) {                             \
    return result.status();                       \
  }                                               \
  lhs = std::move(result).value()
#define SFS_STATUS_CONCAT_INNER(a, b) a##b
#define SFS_STATUS_CONCAT(a, b) SFS_STATUS_CONCAT_INNER(a, b)

#endif  // SFS_SRC_UTIL_STATUS_H_
