// Minimal leveled logging for the SFS daemons.
//
// The paper stresses debuggability ("Our RPC library can pretty-print RPC
// traffic...").  This logger is the sink those hooks write to.  Logging is
// off by default so tests and benchmarks stay quiet; flip the level to
// kDebug to watch RPC traffic.
#ifndef SFS_SRC_UTIL_LOG_H_
#define SFS_SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emit one log line (adds level prefix and newline).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace util

#define SFS_LOG(level)                                        \
  if (::util::GetLogLevel() > ::util::LogLevel::level) {      \
  } else                                                      \
    ::util::internal::LogLine(::util::LogLevel::level)

#endif  // SFS_SRC_UTIL_LOG_H_
