// ARC4 stream cipher ("alleged RC4", Kaukonen–Thayer draft).
//
// SFS encrypts all read-write file system traffic with ARC4 and keeps the
// stream running for the duration of a session (paper §3.1.3).  The
// implementation follows the paper's two non-standard choices:
//   * 20-byte keys, handled by "spinning the ARC4 key schedule once for
//     each 128 bits of key data";
//   * keystream bytes are also drawn off to re-key the per-message MAC
//     (the channel pulls 32 bytes per message that are never used for
//     encryption).
#ifndef SFS_SRC_CRYPTO_ARC4_H_
#define SFS_SRC_CRYPTO_ARC4_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace crypto {

class Arc4 {
 public:
  // Keys up to 256 bytes.  Runs the key schedule ceil(key_bits/128) times,
  // per the paper, so the usual 20-byte (160-bit) session keys spin it
  // twice.
  explicit Arc4(const util::Bytes& key);

  // Next keystream byte.
  uint8_t NextByte();

  // Fills out[0..len) with keystream.
  util::Bytes NextBytes(size_t len);

  // XORs data in place with the keystream (encrypt == decrypt).
  void Crypt(uint8_t* data, size_t len);
  void Crypt(util::Bytes* data) { Crypt(data->data(), data->size()); }

 private:
  void KeyScheduleRound(const util::Bytes& key);

  uint8_t s_[256];
  uint8_t i_;
  uint8_t j_;
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_ARC4_H_
