// Arbitrary-precision integers for SFS's public-key cryptography.
//
// Everything the paper's crypto needs is here: multiplication/division for
// Rabin–Williams, modular exponentiation for SRP, Jacobi symbols and
// Miller–Rabin with congruence constraints for Rabin key generation, and
// enough precision to compute Blowfish's pi-digit tables from scratch.
//
// Representation: sign + magnitude, little-endian vector of 64-bit limbs,
// normalized (no high zero limbs; zero has an empty limb vector and
// positive sign).  Limb products use `unsigned __int128`, so a 1024-bit
// operand is 16 limbs instead of the 32 it was at 32-bit width — the
// schoolbook/CIOS inner loops do a quarter of the word multiplies (see
// docs/CRYPTO_PERF.md).  A 32-bit *view* of the magnitude (Limbs32 /
// FromLimbs32) is kept as a shim for the retained 32-bit reference kernel
// and the differential tests that diff the two limb widths.
#ifndef SFS_SRC_CRYPTO_BIGNUM_H_
#define SFS_SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/prng.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace crypto {

class BigInt {
 public:
  BigInt() : negative_(false) {}
  BigInt(int64_t v);          // NOLINT(runtime/explicit)
  BigInt(uint64_t v);         // NOLINT(runtime/explicit)
  BigInt(int v) : BigInt(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)

  // Big-endian unsigned byte-string conversions (the XDR wire format for
  // public keys and protocol values).
  static BigInt FromBytes(const util::Bytes& bytes);
  util::Bytes ToBytes() const;                 // Minimal length; empty for 0.
  util::Bytes ToBytesPadded(size_t len) const; // Left-padded with zeros.

  static util::Result<BigInt> FromDecimal(const std::string& s);
  static util::Result<BigInt> FromHex(const std::string& s);
  std::string ToDecimal() const;
  std::string ToHex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  // Number of significant bits (0 for zero).
  size_t BitLength() const;
  // Bit i (0 = least significant).
  bool Bit(size_t i) const;

  // Value of the low 64 bits of the magnitude (sign ignored).
  uint64_t Low64() const;

  // Remainder of the magnitude modulo a small divisor (sign ignored);
  // d > 0.  One pass over the limbs — much cheaper than `% BigInt(d)`.
  // Native on the 64-bit limbs: each step folds a full limb with one
  // 128-by-64 division, no 32-bit round-trip.
  uint32_t ModU32(uint32_t d) const;
  uint64_t ModU64(uint64_t d) const;

  // Read-only view of the little-endian 64-bit limb vector (normalized:
  // no high zero limbs; empty for zero).  The Montgomery kernel operates
  // directly on this representation.
  const std::vector<uint64_t>& limbs() const { return limbs_; }
  // Non-negative value from a little-endian limb vector (normalizes).
  static BigInt FromLimbs(std::vector<uint64_t> limbs);

  // 32-bit view shim: the magnitude as little-endian 32-bit limbs, and
  // its inverse.  Kept for the retained 32-bit reference kernel
  // (src/crypto/kernel32.h) and the limb-width differential tests.
  std::vector<uint32_t> Limbs32() const;
  static BigInt FromLimbs32(const std::vector<uint32_t>& limbs);

  // Comparison of signed values: -1, 0, +1.
  int Compare(const BigInt& other) const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  // Truncated division (C semantics): quotient rounds toward zero;
  // remainder has the dividend's sign.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient, BigInt* remainder);

  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  // Non-negative remainder in [0, m); m > 0.
  BigInt Mod(const BigInt& m) const;

  // (base^exp) mod m;  exp >= 0, m > 0.  Odd moduli are routed through
  // the Montgomery kernel (src/crypto/montgomery.h); even moduli fall
  // back to ModExpNaive.
  static BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);

  // Textbook square-and-multiply with a division per step.  Reference
  // implementation: the fallback for even moduli and the oracle the
  // Montgomery property tests compare against.
  static BigInt ModExpNaive(const BigInt& base, const BigInt& exp, const BigInt& m);

  // Greatest common divisor of |a| and |b|.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  // Multiplicative inverse of a mod m, if gcd(a, m) == 1.
  static util::Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  // Jacobi symbol (a/n); n positive odd.  Returns -1, 0, or 1.
  static int Jacobi(const BigInt& a, const BigInt& n);

  // Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt Random(Prng* prng, size_t bits);
  // Uniform in [0, bound).
  static BigInt RandomBelow(Prng* prng, const BigInt& bound);

  // Miller–Rabin probabilistic primality test.  One witness runs first
  // as a cheap filter (it kills nearly every sieved composite); the
  // remaining witnesses — which only survivors ever reach — share one
  // compiled window schedule of the common exponent d through
  // MontgomeryCtx::ExpBatch.
  static bool IsProbablePrime(const BigInt& n, Prng* prng, int rounds = 20);

  // Random prime with exactly `bits` bits satisfying p % modulus == residue.
  // modulus == 0 means unconstrained.
  static BigInt GeneratePrime(Prng* prng, size_t bits, uint32_t residue = 0,
                              uint32_t modulus = 0);

 private:
  void Normalize();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  // Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);

  std::vector<uint64_t> limbs_;  // Little-endian.
  bool negative_;
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_BIGNUM_H_
