// SHA-1 (FIPS 180-1) and an HMAC-SHA-1 message authentication code.
//
// SFS bases everything on SHA-1 (paper §3.1.3): HostIDs, session-key
// derivation, the per-message MAC on file system traffic, the DSS-style
// pseudo-random generator, and AuthIDs.  This is a from-scratch
// implementation with an incremental interface.
#ifndef SFS_SRC_CRYPTO_SHA1_H_
#define SFS_SRC_CRYPTO_SHA1_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace crypto {

inline constexpr size_t kSha1DigestSize = 20;
inline constexpr size_t kSha1BlockSize = 64;

// Incremental SHA-1.  Usage: Update(...)* then Digest().
class Sha1 {
 public:
  Sha1();

  void Update(const uint8_t* data, size_t len);
  void Update(const util::Bytes& data) { Update(data.data(), data.size()); }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  // Finalizes and returns the 20-byte digest.  The object may not be
  // updated afterwards; construct a new one for a new message.
  util::Bytes Digest();

 private:
  void ProcessBlock(const uint8_t block[kSha1BlockSize]);

  uint32_t state_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[kSha1BlockSize];
  size_t buffer_len_;
  bool finalized_;
};

// One-shot convenience.
util::Bytes Sha1Digest(const util::Bytes& data);
util::Bytes Sha1Digest(const std::string& data);

// HMAC-SHA-1 (RFC 2104).  Used as SFS's per-message MAC; the channel
// re-keys it for every RPC with bytes pulled from the ARC4 stream
// (paper §3.1.3).
util::Bytes HmacSha1(const util::Bytes& key, const util::Bytes& message);

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_SHA1_H_
