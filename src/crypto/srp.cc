#include "src/crypto/srp.h"

#include <cassert>

#include "src/crypto/blowfish.h"
#include "src/crypto/rabin.h"  // Mgf1Sha1
#include "src/crypto/sha1.h"

namespace crypto {
namespace {

// RFC 5054 appendix A, 1024-bit group.
constexpr char kGroup1024Hex[] =
    "EEAF0AB9ADB38DD69C33F80AFA8FC5E86072618775FF3C0B9EA2314C9C256576"
    "D674DF7496EA81D3383B4813D692C6E0E0D5D8E250B98BE48E495C1D6089DAD1"
    "5DC7D7B46154D6B6CE8EF4AD69B15D4982559B297BCF1885C529F566660E57EC"
    "68EDBC3C05726CC02FD4CBF4976EAA9AFD5138FE8376435B9FC61D2FC0EB06E3";

util::Bytes PadTo(const BigInt& v, size_t len) { return v.ToBytesPadded(len); }

// base^exp mod N: the generator's fixed-base table when the base is g,
// else the group's shared Montgomery context when present, else the
// generic path.  All three produce bit-identical results.
BigInt GroupExp(const SrpParams& params, const BigInt& base, const BigInt& exp) {
  if (params.g_ctx && base == params.g) {
    return params.g_ctx->Exp(exp);
  }
  if (params.ctx) {
    return params.ctx->ModExp(base, exp);
  }
  return BigInt::ModExp(base, exp, params.n);
}

// The scrambler u = H(PAD(A) || PAD(B)) is a SHA-1 digest, so verifier
// fixed-base tables only need to cover 160-bit exponents.
constexpr size_t kScramblerBits = 160;

size_t GroupBytes(const SrpParams& params) { return (params.n.BitLength() + 7) / 8; }

// k = H(N || PAD(g)), the SRP-6a multiplier.
BigInt Multiplier(const SrpParams& params) {
  Sha1 h;
  h.Update(params.n.ToBytes());
  h.Update(PadTo(params.g, GroupBytes(params)));
  return BigInt::FromBytes(h.Digest());
}

// u = H(PAD(A) || PAD(B)), the scrambling parameter.
BigInt Scrambler(const SrpParams& params, const BigInt& a_pub, const BigInt& b_pub) {
  Sha1 h;
  size_t len = GroupBytes(params);
  h.Update(PadTo(a_pub, len));
  h.Update(PadTo(b_pub, len));
  return BigInt::FromBytes(h.Digest());
}

util::Bytes ComputeM1(const SrpParams& params, const BigInt& a_pub, const BigInt& b_pub,
                      const util::Bytes& key) {
  Sha1 h;
  size_t len = GroupBytes(params);
  h.Update(PadTo(a_pub, len));
  h.Update(PadTo(b_pub, len));
  h.Update(key);
  return h.Digest();
}

util::Bytes ComputeM2(const SrpParams& params, const BigInt& a_pub, const util::Bytes& m1,
                      const util::Bytes& key) {
  Sha1 h;
  h.Update(PadTo(a_pub, GroupBytes(params)));
  h.Update(m1);
  h.Update(key);
  return h.Digest();
}

}  // namespace

const SrpParams& DefaultSrpParams() {
  static const SrpParams kParams = [] {
    auto n = BigInt::FromHex(kGroup1024Hex);
    assert(n.ok());
    auto ctx = std::make_shared<const MontgomeryCtx>(n.value());
    auto g_ctx = std::make_shared<const FixedBaseCtx>(ctx, BigInt(2),
                                                      n.value().BitLength());
    return SrpParams{n.value(), BigInt(2), std::move(ctx), std::move(g_ctx)};
  }();
  return kParams;
}

BigInt SrpPrivateExponent(const SrpParams& params, const std::string& password,
                          const util::Bytes& salt, unsigned cost) {
  util::Bytes hardened = EksBlowfishHash(cost, salt, util::BytesOf(password));
  // Stretch to the group size via MGF1 so x covers the full exponent range.
  util::Bytes expanded = Mgf1Sha1(hardened, GroupBytes(params));
  return BigInt::FromBytes(expanded).Mod(params.n);
}

SrpVerifier MakeSrpVerifier(const SrpParams& params, const std::string& password,
                            unsigned cost, Prng* prng) {
  SrpVerifier out;
  out.salt = prng->RandomBytes(16);
  out.cost = cost;
  BigInt x = SrpPrivateExponent(params, password, out.salt, cost);
  out.v = GroupExp(params, params.g, x);
  if (params.ctx) {
    // One-time table for the account's long-lived base: every later
    // exchange computes v^u against it.  Password-derived, so secret.
    out.v_ctx = std::make_shared<const FixedBaseCtx>(params.ctx, out.v,
                                                     kScramblerBits,
                                                     /*secret=*/true);
  }
  return out;
}

SrpClient::SrpClient(const SrpParams& params, Prng* prng) : params_(params) {
  a_priv_ = BigInt::RandomBelow(prng, params_.n - BigInt(2)) + BigInt(1);
  a_pub_ = GroupExp(params_, params_.g, a_priv_);
}

util::Status SrpClient::ProcessServerReply(const std::string& password,
                                           const util::Bytes& salt, unsigned cost,
                                           const BigInt& b_pub) {
  if (b_pub.Mod(params_.n).is_zero()) {
    return util::SecurityError("degenerate SRP server value B");
  }
  BigInt u = Scrambler(params_, a_pub_, b_pub);
  if (u.is_zero()) {
    return util::SecurityError("degenerate SRP scrambler");
  }
  BigInt x = SrpPrivateExponent(params_, password, salt, cost);
  BigInt k = Multiplier(params_);
  // S = (B - k*g^x) ^ (a + u*x) mod N.
  BigInt gx = GroupExp(params_, params_.g, x);
  BigInt base = (b_pub - k * gx).Mod(params_.n);
  BigInt exp = a_priv_ + u * x;
  BigInt s = GroupExp(params_, base, exp);
  session_key_ = Sha1Digest(PadTo(s, GroupBytes(params_)));
  m1_ = ComputeM1(params_, a_pub_, b_pub, session_key_);
  m2_expected_ = ComputeM2(params_, a_pub_, m1_, session_key_);
  return util::OkStatus();
}

util::Status SrpClient::VerifyServerProof(const util::Bytes& m2) const {
  if (m2_expected_.empty()) {
    return util::FailedPrecondition("SRP exchange not completed");
  }
  if (!util::ConstantTimeEquals(m2, m2_expected_)) {
    return util::SecurityError("SRP server proof mismatch");
  }
  return util::OkStatus();
}

SrpServer::SrpServer(const SrpParams& params, SrpVerifier verifier, Prng* prng)
    : params_(params), verifier_(std::move(verifier)) {
  b_priv_ = BigInt::RandomBelow(prng, params_.n - BigInt(2)) + BigInt(1);
}

util::Result<BigInt> SrpServer::ProcessClientHello(const BigInt& a_pub) {
  if (a_pub.Mod(params_.n).is_zero()) {
    return util::SecurityError("degenerate SRP client value A");
  }
  a_pub_ = a_pub;
  BigInt k = Multiplier(params_);
  b_pub_ = (k * verifier_.v + GroupExp(params_, params_.g, b_priv_)).Mod(params_.n);
  BigInt u = Scrambler(params_, a_pub_, b_pub_);
  // S = (A * v^u) ^ b mod N; v^u through the verifier's fixed-base
  // table when the account record carries one.
  BigInt vu = verifier_.v_ctx ? verifier_.v_ctx->Exp(u)
                              : GroupExp(params_, verifier_.v, u);
  BigInt base = (a_pub_ * vu).Mod(params_.n);
  BigInt s = GroupExp(params_, base, b_priv_);
  session_key_ = Sha1Digest(PadTo(s, GroupBytes(params_)));
  m1_expected_ = ComputeM1(params_, a_pub_, b_pub_, session_key_);
  m2_ = ComputeM2(params_, a_pub_, m1_expected_, session_key_);
  return b_pub_;
}

util::Status SrpServer::VerifyClientProof(const util::Bytes& m1) const {
  if (m1_expected_.empty()) {
    return util::FailedPrecondition("SRP exchange not started");
  }
  if (!util::ConstantTimeEquals(m1, m1_expected_)) {
    return util::SecurityError("SRP client proof mismatch (wrong password?)");
  }
  return util::OkStatus();
}

}  // namespace crypto
