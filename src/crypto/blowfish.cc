#include "src/crypto/blowfish.h"

#include <cassert>

#include "src/crypto/bignum.h"

namespace crypto {
namespace {

// Number of 32-bit words of pi digits the cipher state needs.
constexpr size_t kPiWords = (kBlowfishRounds + 2) + 4 * 256;  // 1042

// Fixed-point arctan(1/x) scaled by 2^frac_bits, by the alternating
// Gregory series.  x*x must fit in 32 bits for the fast division path.
BigInt ArctanInverse(uint32_t x, size_t frac_bits) {
  BigInt scale = BigInt(1) << frac_bits;
  BigInt term = scale / BigInt(static_cast<uint64_t>(x));
  BigInt x2(static_cast<uint64_t>(x) * x);
  BigInt sum = term;
  bool subtract = true;
  for (uint64_t k = 3;; k += 2, subtract = !subtract) {
    term = term / x2;
    if (term.is_zero()) {
      break;
    }
    BigInt contribution = term / BigInt(k);
    if (contribution.is_zero()) {
      break;  // All later contributions are zero too.
    }
    if (subtract) {
      sum = sum - contribution;
    } else {
      sum = sum + contribution;
    }
  }
  return sum;
}

// Computes the first kPiWords 32-bit words of pi's fractional hex digits.
std::array<uint32_t, kPiWords> ComputePiWords() {
  // Guard bits absorb series truncation error.
  const size_t frac_bits = kPiWords * 32 + 64;
  // Machin: pi = 16*atan(1/5) - 4*atan(1/239).
  BigInt pi = (ArctanInverse(5, frac_bits) << 4) - (ArctanInverse(239, frac_bits) << 2);
  // Remove the integer part (3) to keep just the fraction.
  BigInt frac = pi - (BigInt(3) << frac_bits);
  assert(!frac.is_negative());
  // Top kPiWords*32 bits of the fraction, as big-endian words.
  util::Bytes bytes = frac.ToBytesPadded(frac_bits / 8);
  std::array<uint32_t, kPiWords> words;
  for (size_t i = 0; i < kPiWords; ++i) {
    words[i] = (static_cast<uint32_t>(bytes[i * 4]) << 24) |
               (static_cast<uint32_t>(bytes[i * 4 + 1]) << 16) |
               (static_cast<uint32_t>(bytes[i * 4 + 2]) << 8) |
               static_cast<uint32_t>(bytes[i * 4 + 3]);
  }
  return words;
}

BlowfishState BuildInitialState() {
  std::array<uint32_t, kPiWords> pi = ComputePiWords();
  // Cross-check against the published first P-array entry.
  assert(pi[0] == 0x243F6A88u && "pi digit computation is wrong");
  BlowfishState st;
  size_t idx = 0;
  for (size_t i = 0; i < st.p.size(); ++i) {
    st.p[i] = pi[idx++];
  }
  for (auto& box : st.s) {
    for (auto& word : box) {
      word = pi[idx++];
    }
  }
  return st;
}

uint32_t LoadWord(const util::Bytes& b, size_t offset) {
  return (static_cast<uint32_t>(b[offset]) << 24) |
         (static_cast<uint32_t>(b[offset + 1]) << 16) |
         (static_cast<uint32_t>(b[offset + 2]) << 8) |
         static_cast<uint32_t>(b[offset + 3]);
}

void StoreWord(util::Bytes* b, size_t offset, uint32_t v) {
  (*b)[offset] = static_cast<uint8_t>(v >> 24);
  (*b)[offset + 1] = static_cast<uint8_t>(v >> 16);
  (*b)[offset + 2] = static_cast<uint8_t>(v >> 8);
  (*b)[offset + 3] = static_cast<uint8_t>(v);
}

}  // namespace

const BlowfishState& BlowfishInitialState() {
  static const BlowfishState kState = BuildInitialState();
  return kState;
}

uint32_t Blowfish::F(uint32_t x) const {
  uint32_t h = state_.s[0][x >> 24] + state_.s[1][(x >> 16) & 0xff];
  return (h ^ state_.s[2][(x >> 8) & 0xff]) + state_.s[3][x & 0xff];
}

void Blowfish::EncryptBlock(uint32_t* left, uint32_t* right) const {
  uint32_t l = *left;
  uint32_t r = *right;
  for (size_t i = 0; i < kBlowfishRounds; ++i) {
    l ^= state_.p[i];
    r ^= F(l);
    uint32_t tmp = l;
    l = r;
    r = tmp;
  }
  // Undo the final swap, then apply the last two subkeys.
  uint32_t tmp = l;
  l = r;
  r = tmp;
  r ^= state_.p[kBlowfishRounds];
  l ^= state_.p[kBlowfishRounds + 1];
  *left = l;
  *right = r;
}

void Blowfish::DecryptBlock(uint32_t* left, uint32_t* right) const {
  uint32_t l = *left;
  uint32_t r = *right;
  for (size_t i = kBlowfishRounds + 1; i > 1; --i) {
    l ^= state_.p[i];
    r ^= F(l);
    uint32_t tmp = l;
    l = r;
    r = tmp;
  }
  uint32_t tmp = l;
  l = r;
  r = tmp;
  r ^= state_.p[1];
  l ^= state_.p[0];
  *left = l;
  *right = r;
}

void Blowfish::ExpandKey(const util::Bytes& key, const uint32_t* salt_words) {
  // XOR the key cyclically into the P-array.
  if (!key.empty()) {
    size_t pos = 0;
    for (auto& p : state_.p) {
      uint32_t word = 0;
      for (int b = 0; b < 4; ++b) {
        word = (word << 8) | key[pos];
        pos = (pos + 1) % key.size();
      }
      p ^= word;
    }
  }
  // Re-derive P and S by repeated encryption, with optional 128-bit salt
  // XORed into the chaining value (eksblowfish; zero salt gives the
  // standard Blowfish schedule).
  uint32_t l = 0;
  uint32_t r = 0;
  size_t salt_pos = 0;
  auto chain = [&] {
    if (salt_words != nullptr) {
      l ^= salt_words[salt_pos % 4];
      r ^= salt_words[(salt_pos + 1) % 4];
      salt_pos = (salt_pos + 2) % 4;
    }
    EncryptBlock(&l, &r);
  };
  for (size_t i = 0; i < state_.p.size(); i += 2) {
    chain();
    state_.p[i] = l;
    state_.p[i + 1] = r;
  }
  for (auto& box : state_.s) {
    for (size_t i = 0; i < box.size(); i += 2) {
      chain();
      box[i] = l;
      box[i + 1] = r;
    }
  }
}

Blowfish::Blowfish(const util::Bytes& key) : state_(BlowfishInitialState()) {
  assert(key.size() >= 4 && key.size() <= 56);
  ExpandKey(key, nullptr);
}

Blowfish::Blowfish(const util::Bytes& key, const util::Bytes& salt16, unsigned cost)
    : state_(BlowfishInitialState()) {
  assert(!key.empty() && salt16.size() == 16 && cost <= 32);
  uint32_t salt_words[4];
  for (int i = 0; i < 4; ++i) {
    salt_words[i] = LoadWord(salt16, static_cast<size_t>(i) * 4);
  }
  ExpandKey(key, salt_words);
  uint64_t iterations = uint64_t{1} << cost;
  for (uint64_t i = 0; i < iterations; ++i) {
    ExpandKey(key, nullptr);
    ExpandKey(salt16, nullptr);
  }
}

util::Result<util::Bytes> Blowfish::EncryptCbc(const util::Bytes& plaintext,
                                               const util::Bytes& iv) const {
  if (plaintext.size() % kBlowfishBlockSize != 0) {
    return util::InvalidArgument("CBC input not block-aligned");
  }
  if (iv.size() != kBlowfishBlockSize) {
    return util::InvalidArgument("IV must be 8 bytes");
  }
  util::Bytes out = plaintext;
  uint32_t prev_l = LoadWord(iv, 0);
  uint32_t prev_r = LoadWord(iv, 4);
  for (size_t off = 0; off < out.size(); off += kBlowfishBlockSize) {
    uint32_t l = LoadWord(out, off) ^ prev_l;
    uint32_t r = LoadWord(out, off + 4) ^ prev_r;
    EncryptBlock(&l, &r);
    StoreWord(&out, off, l);
    StoreWord(&out, off + 4, r);
    prev_l = l;
    prev_r = r;
  }
  return out;
}

util::Result<util::Bytes> Blowfish::DecryptCbc(const util::Bytes& ciphertext,
                                               const util::Bytes& iv) const {
  if (ciphertext.size() % kBlowfishBlockSize != 0) {
    return util::InvalidArgument("CBC input not block-aligned");
  }
  if (iv.size() != kBlowfishBlockSize) {
    return util::InvalidArgument("IV must be 8 bytes");
  }
  util::Bytes out = ciphertext;
  uint32_t prev_l = LoadWord(iv, 0);
  uint32_t prev_r = LoadWord(iv, 4);
  for (size_t off = 0; off < out.size(); off += kBlowfishBlockSize) {
    uint32_t cl = LoadWord(out, off);
    uint32_t cr = LoadWord(out, off + 4);
    uint32_t l = cl;
    uint32_t r = cr;
    DecryptBlock(&l, &r);
    StoreWord(&out, off, l ^ prev_l);
    StoreWord(&out, off + 4, r ^ prev_r);
    prev_l = cl;
    prev_r = cr;
  }
  return out;
}

util::Bytes EksBlowfishHash(unsigned cost, const util::Bytes& salt16,
                            const util::Bytes& password) {
  Blowfish cipher(password, salt16, cost);
  // bcrypt magic: "OrpheanBeholderScryDoubt", encrypted 64 times in ECB.
  uint32_t block[6] = {0x4F727068, 0x65616E42, 0x65686F6C,
                       0x64657253, 0x63727944, 0x6F756274};
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 6; i += 2) {
      cipher.EncryptBlock(&block[i], &block[i + 1]);
    }
  }
  util::Bytes out(24);
  for (int i = 0; i < 6; ++i) {
    StoreWord(&out, static_cast<size_t>(i) * 4, block[i]);
  }
  return out;
}

}  // namespace crypto
