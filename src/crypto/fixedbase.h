// Fixed-base modular exponentiation with one-time precomputation.
//
// SRP's per-handshake exponentiations nearly all share a handful of
// long-lived bases: the group generator g (client A = g^a, server
// g^b, the verifier computation g^x) and each account's stored verifier
// v (server-side v^u).  For a fixed base the powers base^(2^(iw)) can be
// computed once and reused forever, turning every later exponentiation
// from ~L squarings + L/5 multiplies into ~L/w + 2^(w+1) multiplies and
// *zero* squarings — the BGMW/Yao bucket method.  At L = 1024, w = 5
// that is ~270 Montgomery multiplies instead of ~1230, a 3-4x drop on
// exactly the operations a loaded server repeats per connection.
//
// The table lives in the Montgomery domain of a shared MontgomeryCtx
// (SrpParams carries one per group), so a FixedBaseCtx costs
// d = ceil(L/w) residues of memory (~26 KB for a 1024-bit group) and
// ~L squarings to build.  Exponents longer than the covered width
// (never produced by SRP, whose exponents are reduced below the group
// order) fall back to the generic sliding-window kernel.
//
// Tables built from private key material — an account's verifier v is
// password-derived — are constructed with `secret = true` and wiped on
// destruction, matching the audit-log key-hygiene convention
// (src/obs/auditlog.cc).
#ifndef SFS_SRC_CRYPTO_FIXEDBASE_H_
#define SFS_SRC_CRYPTO_FIXEDBASE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/crypto/bignum.h"
#include "src/crypto/montgomery.h"

namespace crypto {

class FixedBaseCtx {
 public:
  // Precomputes the powers of `base` needed to cover exponents up to
  // `max_exp_bits` bits.  `ctx` must outlive this object (shared
  // ownership); `secret` wipes the table on destruction.
  FixedBaseCtx(std::shared_ptr<const MontgomeryCtx> ctx, const BigInt& base,
               size_t max_exp_bits, bool secret = false);
  ~FixedBaseCtx();
  FixedBaseCtx(const FixedBaseCtx&) = delete;
  FixedBaseCtx& operator=(const FixedBaseCtx&) = delete;

  // base^exp mod m; exp >= 0.  Bit-identical to
  // MontgomeryCtx::ModExp(base, exp) — same exact arithmetic, different
  // operation schedule.  Exponents wider than max_exp_bits() take the
  // generic kernel.
  BigInt Exp(const BigInt& exp) const;

  const BigInt& base() const { return base_; }
  const std::shared_ptr<const MontgomeryCtx>& ctx() const { return ctx_; }
  size_t max_exp_bits() const { return covered_bits_; }
  size_t window() const { return window_; }
  size_t table_entries() const { return table_.size(); }
  bool secret() const { return secret_; }

 private:
  std::shared_ptr<const MontgomeryCtx> ctx_;
  BigInt base_;
  size_t window_ = 0;         // Digit width w in bits.
  size_t covered_bits_ = 0;   // table_.size() * window_.
  bool secret_ = false;
  // table_[i] = base^(2^(i*w)) in Montgomery form.
  std::vector<MontgomeryCtx::Residue> table_;
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_FIXEDBASE_H_
