#include "src/crypto/sha1.h"

#include <cassert>
#include <cstring>

namespace crypto {
namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Sha1::Sha1() : total_bytes_(0), buffer_len_(0), finalized_(false) {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
}

void Sha1::ProcessBlock(const uint8_t block[kSha1BlockSize]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];
  uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const uint8_t* data, size_t len) {
  assert(!finalized_);
  total_bytes_ += len;
  while (len > 0) {
    size_t take = kSha1BlockSize - buffer_len_;
    if (take > len) {
      take = len;
    }
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kSha1BlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

util::Bytes Sha1::Digest() {
  assert(!finalized_);
  finalized_ = true;

  uint64_t bit_len = total_bytes_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    while (buffer_len_ < kSha1BlockSize) {
      buffer_[buffer_len_++] = 0;
    }
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  while (buffer_len_ < 56) {
    buffer_[buffer_len_++] = 0;
  }
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  ProcessBlock(buffer_);

  util::Bytes out(kSha1DigestSize);
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

util::Bytes Sha1Digest(const util::Bytes& data) {
  Sha1 h;
  h.Update(data);
  return h.Digest();
}

util::Bytes Sha1Digest(const std::string& data) {
  Sha1 h;
  h.Update(data);
  return h.Digest();
}

util::Bytes HmacSha1(const util::Bytes& key, const util::Bytes& message) {
  util::Bytes k = key;
  if (k.size() > kSha1BlockSize) {
    k = Sha1Digest(k);
  }
  k.resize(kSha1BlockSize, 0);

  util::Bytes ipad(kSha1BlockSize);
  util::Bytes opad(kSha1BlockSize);
  for (size_t i = 0; i < kSha1BlockSize; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }

  Sha1 inner;
  inner.Update(ipad);
  inner.Update(message);
  util::Bytes inner_digest = inner.Digest();

  Sha1 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Digest();
}

}  // namespace crypto
