// Rabin–Williams public-key cryptosystem (Williams 1980), as used by SFS
// for all encryption and signing (paper §3.1.3).
//
// The modulus N = p*q with p ≡ 3 (mod 8) and q ≡ 7 (mod 8).  With these
// residues, for any h coprime to N exactly one of {h, -h, 2h, -2h} is a
// quadratic residue mod N, so every value can be "tweaked" to have a
// square root.  Security reduces to factoring, which is why the paper
// calls Rabin "no less secure in the random oracle model than
// cryptosystems based on the better-known RSA problem"; like low-exponent
// RSA, verification and encryption are cheap (one squaring).
//
//  * Signatures: full-domain hash (SHA-1/MGF1) of the message, tweaked by
//    (e, f) ∈ {1,-1} x {1,2}, square-rooted via CRT.  A signature is
//    (e, f, s).
//  * Encryption: OAEP-style padding with SHA-1/MGF1 (plaintext-aware in
//    the random-oracle model), then one squaring.  Decryption computes all
//    four roots and the OAEP redundancy identifies the right one.
#ifndef SFS_SRC_CRYPTO_RABIN_H_
#define SFS_SRC_CRYPTO_RABIN_H_

#include <cstdint>
#include <memory>

#include "src/crypto/bignum.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/prng.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace crypto {

// MGF1 mask generation (PKCS#1) with SHA-1: deterministic expansion of a
// seed to `len` bytes.  Shared by OAEP and the signature FDH.
util::Bytes Mgf1Sha1(const util::Bytes& seed, size_t len);

// Public half of a Rabin key: just the modulus.
class RabinPublicKey {
 public:
  RabinPublicKey() = default;
  explicit RabinPublicKey(BigInt n) : n_(std::move(n)) {}

  const BigInt& n() const { return n_; }
  size_t BitLength() const { return n_.BitLength(); }

  // Wire form: big-endian bytes of N.
  util::Bytes Serialize() const { return n_.ToBytes(); }
  static util::Result<RabinPublicKey> Deserialize(const util::Bytes& bytes);

  // Verifies `signature` over `message`.  Returns SecurityError on any
  // mismatch.
  util::Status Verify(const util::Bytes& message, const util::Bytes& signature) const;

  // OAEP-pads and squares.  `prng` supplies the OAEP seed.  The message
  // must fit: len <= ModulusBytes() - 42.
  util::Result<util::Bytes> Encrypt(const util::Bytes& plaintext, Prng* prng) const;

  size_t ModulusBytes() const { return (n_.BitLength() + 7) / 8; }
  // Largest plaintext Encrypt() accepts.
  size_t MaxPlaintextBytes() const;

  bool operator==(const RabinPublicKey& other) const { return n_ == other.n_; }

 private:
  BigInt n_;
};

// Full private key.
class RabinPrivateKey {
 public:
  RabinPrivateKey() = default;

  // Generates a fresh key whose modulus has roughly `modulus_bits` bits.
  // SFS server keys default to 1024 bits; tests use smaller keys.
  static RabinPrivateKey Generate(Prng* prng, size_t modulus_bits);

  const RabinPublicKey& public_key() const { return public_key_; }

  // Signs the SHA-1/MGF1 full-domain hash of `message`.
  util::Bytes Sign(const util::Bytes& message) const;

  // Inverts Encrypt().
  util::Result<util::Bytes> Decrypt(const util::Bytes& ciphertext) const;

  // Private serialization (p || q with length prefixes) for the agent's
  // encrypted-key storage.
  util::Bytes Serialize() const;
  static util::Result<RabinPrivateKey> Deserialize(const util::Bytes& bytes);

 private:
  RabinPrivateKey(BigInt p, BigInt q);

  // CRT combine: the x in [0, n) with x ≡ xp (mod p), x ≡ xq (mod q).
  BigInt CrtCombine(const BigInt& xp, const BigInt& xq) const;
  // CRT-combined square root mod n of a QR `a`.
  BigInt SqrtModN(const BigInt& a) const;

  BigInt p_;
  BigInt q_;
  BigInt q_inv_p_;  // q^{-1} mod p, cached for CRT.
  RabinPublicKey public_key_;

  // Montgomery contexts for the two primes, shared across copies of the
  // key: sign/decrypt run the CRT square roots entirely through them.
  std::shared_ptr<const MontgomeryCtx> ctx_p_;
  std::shared_ptr<const MontgomeryCtx> ctx_q_;
  BigInt sqrt_exp_p_;  // (p+1)/4: QR square-root exponent mod p.
  BigInt sqrt_exp_q_;  // (q+1)/4.
  MontgomeryCtx::Residue q_inv_p_mont_;  // q^{-1} mod p in Montgomery form.

  // Precompiled window schedules for the two fixed square-root exponents:
  // every Sign/Decrypt replays them against a fresh base instead of
  // re-walking the exponent bits.  Derived from the private primes, so
  // compiled `secret` — the schedule wipes itself on destruction.
  std::shared_ptr<const ExpSchedule> sqrt_sched_p_;
  std::shared_ptr<const ExpSchedule> sqrt_sched_q_;
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_RABIN_H_
