#include "src/crypto/prng.h"

#include <chrono>
#include <cstring>

#include "src/crypto/sha1.h"

namespace crypto {

Prng::Prng(const util::Bytes& seed) : out_pos_(20) {
  // Expand the seed into 64 bytes of state with counter-mode SHA-1.
  for (int i = 0; i < 4; ++i) {
    Sha1 h;
    uint8_t counter = static_cast<uint8_t>(i);
    h.Update(&counter, 1);
    h.Update(seed);
    util::Bytes d = h.Digest();
    size_t off = static_cast<size_t>(i) * 16;
    std::memcpy(state_ + off, d.data(), 16);
  }
}

Prng::Prng(uint64_t seed) : Prng([&] {
        util::Bytes b(8);
        for (int i = 0; i < 8; ++i) {
          b[i] = static_cast<uint8_t>(seed >> (56 - 8 * i));
        }
        return b;
      }()) {}

void Prng::Step() {
  util::Bytes state_bytes(state_, state_ + 64);
  util::Bytes digest = Sha1Digest(state_bytes);
  std::memcpy(out_, digest.data(), 20);
  out_pos_ = 0;

  // state = (state + output + 1) mod 2^512, big-endian arithmetic.
  // The +1 guarantees the state always changes; the one-way SHA-1 output
  // makes the update irreversible.
  unsigned carry = 1;
  for (int i = 63; i >= 0; --i) {
    unsigned add = carry;
    if (i >= 44) {  // Align the 20-byte output with the low-order bytes.
      add += digest[static_cast<size_t>(i) - 44];
    }
    unsigned sum = state_[i] + add;
    state_[i] = static_cast<uint8_t>(sum);
    carry = sum >> 8;
  }
}

util::Bytes Prng::RandomBytes(size_t len) {
  util::Bytes out;
  out.reserve(len);
  while (out.size() < len) {
    if (out_pos_ >= 20) {
      Step();
    }
    out.push_back(out_[out_pos_++]);
  }
  return out;
}

uint64_t Prng::RandomUint64(uint64_t bound) {
  // Rejection sampling for uniformity.
  uint64_t limit = bound == 0 ? 0 : (~uint64_t{0} - (~uint64_t{0} % bound));
  for (;;) {
    util::Bytes b = RandomBytes(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | b[static_cast<size_t>(i)];
    }
    if (bound == 0) {
      return v;
    }
    if (v < limit) {
      return v % bound;
    }
  }
}

void Prng::AddEntropy(const util::Bytes& data) {
  Sha1 h;
  h.Update(util::Bytes(state_, state_ + 64));
  h.Update(data);
  util::Bytes d = h.Digest();
  for (int i = 0; i < 20; ++i) {
    state_[44 + i] ^= d[static_cast<size_t>(i)];
  }
  out_pos_ = 20;  // Discard buffered output.
}

util::Bytes EnvironmentSeed() {
  Sha1 h;
  auto now = std::chrono::high_resolution_clock::now().time_since_epoch().count();
  h.Update(reinterpret_cast<const uint8_t*>(&now), sizeof(now));
  auto steady = std::chrono::steady_clock::now().time_since_epoch().count();
  h.Update(reinterpret_cast<const uint8_t*>(&steady), sizeof(steady));
  static int counter = 0;
  ++counter;
  h.Update(reinterpret_cast<const uint8_t*>(&counter), sizeof(counter));
  const void* stack_probe = &counter;
  h.Update(reinterpret_cast<const uint8_t*>(&stack_probe), sizeof(stack_probe));
  return h.Digest();
}

}  // namespace crypto
