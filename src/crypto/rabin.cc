#include "src/crypto/rabin.h"

#include <cassert>

#include "src/crypto/sha1.h"

namespace crypto {
namespace {

constexpr size_t kHashLen = kSha1DigestSize;  // 20

// OAEP overhead: one zero byte + seed + lHash + 0x01 separator.
constexpr size_t kOaepOverhead = 2 * kHashLen + 2;

const util::Bytes& EmptyLabelHash() {
  static const util::Bytes kHash = Sha1Digest(util::Bytes{});
  return kHash;
}

void XorInto(util::Bytes* dst, const util::Bytes& mask) {
  assert(dst->size() == mask.size());
  for (size_t i = 0; i < dst->size(); ++i) {
    (*dst)[i] ^= mask[i];
  }
}

// Full-domain hash of a message into [0, n): MGF1 expansion of the SHA-1
// digest, reduced mod n.
BigInt FullDomainHash(const util::Bytes& message, const BigInt& n) {
  util::Bytes digest = Sha1Digest(message);
  size_t k = (n.BitLength() + 7) / 8;
  util::Bytes expanded = Mgf1Sha1(digest, k + 8);  // +8 for negligible mod bias.
  return BigInt::FromBytes(expanded).Mod(n);
}

}  // namespace

util::Bytes Mgf1Sha1(const util::Bytes& seed, size_t len) {
  util::Bytes out;
  out.reserve(len + kHashLen);
  uint32_t counter = 0;
  while (out.size() < len) {
    Sha1 h;
    h.Update(seed);
    uint8_t c[4] = {static_cast<uint8_t>(counter >> 24), static_cast<uint8_t>(counter >> 16),
                    static_cast<uint8_t>(counter >> 8), static_cast<uint8_t>(counter)};
    h.Update(c, 4);
    util::Bytes block = h.Digest();
    util::Append(&out, block);
    ++counter;
  }
  out.resize(len);
  return out;
}

util::Result<RabinPublicKey> RabinPublicKey::Deserialize(const util::Bytes& bytes) {
  if (bytes.empty()) {
    return util::InvalidArgument("empty public key");
  }
  BigInt n = BigInt::FromBytes(bytes);
  if (n.BitLength() < 256) {
    return util::InvalidArgument("public key modulus too small");
  }
  return RabinPublicKey(std::move(n));
}

size_t RabinPublicKey::MaxPlaintextBytes() const {
  size_t k = ModulusBytes();
  return k > kOaepOverhead ? k - kOaepOverhead : 0;
}

util::Status RabinPublicKey::Verify(const util::Bytes& message,
                                    const util::Bytes& signature) const {
  size_t k = ModulusBytes();
  if (signature.size() != k + 2) {
    return util::SecurityError("bad signature length");
  }
  uint8_t e_byte = signature[0];
  uint8_t f_byte = signature[1];
  if (e_byte > 1 || (f_byte != 1 && f_byte != 2)) {
    return util::SecurityError("bad signature tweak");
  }
  BigInt s = BigInt::FromBytes(util::Bytes(signature.begin() + 2, signature.end()));
  if (s >= n_) {
    return util::SecurityError("signature value out of range");
  }
  BigInt h = FullDomainHash(message, n_);
  BigInt expected = (h * BigInt(static_cast<uint64_t>(f_byte))).Mod(n_);
  if (e_byte == 1) {
    expected = (n_ - expected).Mod(n_);
  }
  // Plain square-and-divide: at full-modulus width one product plus one
  // division beats two Montgomery reduce passes, so Verify stays on the
  // schoolbook path (results are identical either way).
  BigInt u = (s * s).Mod(n_);
  if (u != expected) {
    return util::SecurityError("signature verification failed");
  }
  return util::OkStatus();
}

util::Result<util::Bytes> RabinPublicKey::Encrypt(const util::Bytes& plaintext,
                                                  Prng* prng) const {
  size_t k = ModulusBytes();
  if (plaintext.size() > MaxPlaintextBytes()) {
    return util::InvalidArgument("plaintext too long for modulus");
  }
  // RSAES-OAEP-style encoding: EM = 0x00 || maskedSeed || maskedDB.
  size_t db_len = k - kHashLen - 1;
  util::Bytes db = EmptyLabelHash();
  db.resize(db_len - plaintext.size() - 1, 0);  // lHash || PS (zeros)
  db.push_back(0x01);
  util::Append(&db, plaintext);
  assert(db.size() == db_len);

  util::Bytes seed = prng->RandomBytes(kHashLen);
  XorInto(&db, Mgf1Sha1(seed, db_len));
  XorInto(&seed, Mgf1Sha1(db, kHashLen));

  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  util::Append(&em, seed);
  util::Append(&em, db);

  BigInt m = BigInt::FromBytes(em);
  BigInt c = (m * m).Mod(n_);  // Same full-width tradeoff as Verify.
  return c.ToBytesPadded(k);
}

RabinPrivateKey::RabinPrivateKey(BigInt p, BigInt q) : p_(std::move(p)), q_(std::move(q)) {
  auto inv = BigInt::ModInverse(q_, p_);
  assert(inv.ok());
  q_inv_p_ = inv.value();
  public_key_ = RabinPublicKey(p_ * q_);
  ctx_p_ = std::make_shared<const MontgomeryCtx>(p_);
  ctx_q_ = std::make_shared<const MontgomeryCtx>(q_);
  sqrt_exp_p_ = (p_ + BigInt(1)) >> 2;
  sqrt_exp_q_ = (q_ + BigInt(1)) >> 2;
  q_inv_p_mont_ = ctx_p_->ToMont(q_inv_p_);
  sqrt_sched_p_ = std::make_shared<const ExpSchedule>(
      MontgomeryCtx::CompileExp(sqrt_exp_p_, /*secret=*/true));
  sqrt_sched_q_ = std::make_shared<const ExpSchedule>(
      MontgomeryCtx::CompileExp(sqrt_exp_q_, /*secret=*/true));
}

RabinPrivateKey RabinPrivateKey::Generate(Prng* prng, size_t modulus_bits) {
  assert(modulus_bits >= 256);
  size_t half = modulus_bits / 2;
  // p ≡ 3 (mod 8), q ≡ 7 (mod 8): the Williams residue classes that make
  // the {±1, ±2} tweak set work.
  BigInt p = BigInt::GeneratePrime(prng, half, /*residue=*/3, /*modulus=*/8);
  BigInt q = BigInt::GeneratePrime(prng, modulus_bits - half, /*residue=*/7, /*modulus=*/8);
  return RabinPrivateKey(std::move(p), std::move(q));
}

BigInt RabinPrivateKey::CrtCombine(const BigInt& xp, const BigInt& xq) const {
  // x ≡ xp (mod p), x ≡ xq (mod q): x = xq + q * ((xp - xq) * q^{-1} mod p),
  // with the inner product done in Montgomery form against the cached
  // residue of q^{-1}.
  BigInt diff = (xp - xq).Mod(p_);
  BigInt h = ctx_p_->FromMont(ctx_p_->Mul(ctx_p_->ToMont(diff), q_inv_p_mont_));
  return (xq + q_ * h).Mod(public_key_.n());
}

BigInt RabinPrivateKey::SqrtModN(const BigInt& a) const {
  // p, q ≡ 3 (mod 4): square root of a QR is a^((p+1)/4) mod p.  The
  // exponents are fixed per key, so replay the precompiled schedules.
  BigInt rp = ctx_p_->FromMont(ctx_p_->Exp(ctx_p_->ToMont(a), *sqrt_sched_p_));
  BigInt rq = ctx_q_->FromMont(ctx_q_->Exp(ctx_q_->ToMont(a), *sqrt_sched_q_));
  return CrtCombine(rp, rq);
}

util::Bytes RabinPrivateKey::Sign(const util::Bytes& message) const {
  const BigInt& n = public_key_.n();
  BigInt h = FullDomainHash(message, n);
  // Find the tweak (e, f) making u = e*f*h a QR mod both primes.
  for (uint8_t f = 1; f <= 2; ++f) {
    for (uint8_t e = 0; e <= 1; ++e) {
      BigInt u = (h * BigInt(static_cast<uint64_t>(f))).Mod(n);
      if (e == 1) {
        u = (n - u).Mod(n);
      }
      int jp = BigInt::Jacobi(u, p_);
      int jq = BigInt::Jacobi(u, q_);
      if (jp < 0 || jq < 0) {
        continue;
      }
      BigInt s = SqrtModN(u);
      if ((s * s).Mod(n) != u) {
        continue;  // Jacobi 0 edge case (h shares a factor with n).
      }
      util::Bytes sig;
      sig.push_back(e);
      sig.push_back(f);
      util::Bytes s_bytes = s.ToBytesPadded(public_key_.ModulusBytes());
      util::Append(&sig, s_bytes);
      return sig;
    }
  }
  // Unreachable for a well-formed key: one tweak always works.
  assert(false && "no Rabin tweak produced a quadratic residue");
  return {};
}

util::Result<util::Bytes> RabinPrivateKey::Decrypt(const util::Bytes& ciphertext) const {
  size_t k = public_key_.ModulusBytes();
  if (ciphertext.size() != k) {
    return util::SecurityError("bad ciphertext length");
  }
  BigInt c = BigInt::FromBytes(ciphertext);
  const BigInt& n = public_key_.n();
  if (c >= n) {
    return util::SecurityError("ciphertext out of range");
  }
  BigInt rp = ctx_p_->FromMont(ctx_p_->Exp(ctx_p_->ToMont(c), *sqrt_sched_p_));
  BigInt rq = ctx_q_->FromMont(ctx_q_->Exp(ctx_q_->ToMont(c), *sqrt_sched_q_));
  if (ctx_p_->ModSquare(rp) != c.Mod(p_) || ctx_q_->ModSquare(rq) != c.Mod(q_)) {
    return util::SecurityError("ciphertext is not a quadratic residue");
  }

  // The four square roots: (±rp, ±rq) CRT combinations.
  for (int sign_p = 0; sign_p < 2; ++sign_p) {
    for (int sign_q = 0; sign_q < 2; ++sign_q) {
      BigInt xp = sign_p == 0 ? rp : (p_ - rp).Mod(p_);
      BigInt xq = sign_q == 0 ? rq : (q_ - rq).Mod(q_);
      BigInt root = CrtCombine(xp, xq);

      util::Bytes em = root.ToBytesPadded(k);
      if (em[0] != 0x00) {
        continue;
      }
      util::Bytes seed(em.begin() + 1, em.begin() + 1 + kHashLen);
      util::Bytes db(em.begin() + 1 + kHashLen, em.end());
      XorInto(&seed, Mgf1Sha1(db, kHashLen));
      XorInto(&db, Mgf1Sha1(seed, db.size()));

      // Check lHash || PS || 0x01 || M structure.
      if (!std::equal(EmptyLabelHash().begin(), EmptyLabelHash().end(), db.begin())) {
        continue;
      }
      size_t pos = kHashLen;
      while (pos < db.size() && db[pos] == 0x00) {
        ++pos;
      }
      if (pos >= db.size() || db[pos] != 0x01) {
        continue;
      }
      return util::Bytes(db.begin() + static_cast<long>(pos) + 1, db.end());
    }
  }
  return util::SecurityError("OAEP decoding failed");
}

util::Bytes RabinPrivateKey::Serialize() const {
  util::Bytes p_bytes = p_.ToBytes();
  util::Bytes q_bytes = q_.ToBytes();
  util::Bytes out;
  auto put_u32 = [&out](uint32_t v) {
    out.push_back(static_cast<uint8_t>(v >> 24));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
  };
  put_u32(static_cast<uint32_t>(p_bytes.size()));
  util::Append(&out, p_bytes);
  put_u32(static_cast<uint32_t>(q_bytes.size()));
  util::Append(&out, q_bytes);
  return out;
}

util::Result<RabinPrivateKey> RabinPrivateKey::Deserialize(const util::Bytes& bytes) {
  size_t pos = 0;
  auto get_u32 = [&](uint32_t* v) -> bool {
    if (pos + 4 > bytes.size()) {
      return false;
    }
    *v = (static_cast<uint32_t>(bytes[pos]) << 24) |
         (static_cast<uint32_t>(bytes[pos + 1]) << 16) |
         (static_cast<uint32_t>(bytes[pos + 2]) << 8) | bytes[pos + 3];
    pos += 4;
    return true;
  };
  uint32_t p_len = 0;
  if (!get_u32(&p_len) || pos + p_len > bytes.size()) {
    return util::InvalidArgument("truncated private key");
  }
  BigInt p = BigInt::FromBytes(util::Bytes(bytes.begin() + static_cast<long>(pos),
                                           bytes.begin() + static_cast<long>(pos + p_len)));
  pos += p_len;
  uint32_t q_len = 0;
  if (!get_u32(&q_len) || pos + q_len > bytes.size()) {
    return util::InvalidArgument("truncated private key");
  }
  BigInt q = BigInt::FromBytes(util::Bytes(bytes.begin() + static_cast<long>(pos),
                                           bytes.begin() + static_cast<long>(pos + q_len)));
  if ((p.Low64() & 7) != 3 || (q.Low64() & 7) != 7) {
    return util::InvalidArgument("private key primes have wrong residues");
  }
  return RabinPrivateKey(std::move(p), std::move(q));
}

}  // namespace crypto
