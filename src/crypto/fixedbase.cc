#include "src/crypto/fixedbase.h"

#include <algorithm>
#include <cassert>

namespace crypto {

FixedBaseCtx::FixedBaseCtx(std::shared_ptr<const MontgomeryCtx> ctx,
                           const BigInt& base, size_t max_exp_bits, bool secret)
    : ctx_(std::move(ctx)), base_(base), secret_(secret) {
  assert(ctx_ != nullptr);
  assert(max_exp_bits > 0);

  // Pick the digit width minimizing the per-exponentiation multiply
  // count d*(1 - 2^-w) + 2^(w+1): wider digits mean fewer table rows to
  // fold but more bucket-collapse multiplies.  At 1024 bits this lands
  // on w = 5 (~270 multiplies); tiny exponents get narrower windows.
  size_t best_w = 2;
  double best_cost = 0;
  for (size_t w = 2; w <= 8; ++w) {
    const double d = static_cast<double>((max_exp_bits + w - 1) / w);
    const double cost =
        d * (1.0 - 1.0 / static_cast<double>(size_t{1} << w)) +
        static_cast<double>(size_t{1} << (w + 1));
    if (best_cost == 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  window_ = best_w;
  const size_t d = (max_exp_bits + window_ - 1) / window_;
  covered_bits_ = d * window_;

  // table_[i] = base^(2^(i*w)): each row is the previous one squared w
  // times.  One-time cost ~covered_bits_ squarings, amortized over every
  // later Exp.
  table_.reserve(d);
  table_.push_back(ctx_->ToMont(base_));
  for (size_t i = 1; i < d; ++i) {
    MontgomeryCtx::Residue row = table_.back();
    for (size_t s = 0; s < window_; ++s) {
      row = ctx_->Mul(row, row);
    }
    table_.push_back(std::move(row));
  }
}

FixedBaseCtx::~FixedBaseCtx() {
  if (secret_) {
    // Powers of a password-derived base are key material; scrub them
    // like the audit log scrubs its batch keys.
    for (MontgomeryCtx::Residue& row : table_) {
      std::fill(row.begin(), row.end(), uint64_t{0});
      row.clear();
    }
    table_.clear();
  }
}

BigInt FixedBaseCtx::Exp(const BigInt& exp) const {
  assert(!exp.is_negative());
  if (exp.is_zero()) {
    return BigInt(1);  // Matches MontgomeryCtx::ModExp's convention.
  }
  if (exp.BitLength() > covered_bits_) {
    // Wider than the precomputed coverage (never the case for SRP
    // exponents, which are below the group order): generic kernel.
    return ctx_->ModExp(base_, exp);
  }

  // BGMW bucket accumulation.  With digits e_i of exp base 2^w,
  //   base^exp = prod_i table_[i]^{e_i}
  //            = prod_{j=max..1} (prod_{i : e_i = j} table_[i])^j,
  // evaluated by folding each bucket into a running accumulator `acc`
  // and multiplying `acc` into the result once per digit value j —
  // each table row multiplied into acc once, acc into result max-digit
  // times, and no squarings at all.
  const size_t d = table_.size();
  std::vector<uint32_t> digits(d, 0);
  uint32_t max_digit = 0;
  for (size_t i = 0; i < d; ++i) {
    uint32_t digit = 0;
    for (size_t b = 0; b < window_; ++b) {
      if (exp.Bit(i * window_ + b)) {
        digit |= uint32_t{1} << b;
      }
    }
    digits[i] = digit;
    max_digit = std::max(max_digit, digit);
  }

  MontgomeryCtx::Residue acc = ctx_->One();
  MontgomeryCtx::Residue result = ctx_->One();
  for (uint32_t j = max_digit; j >= 1; --j) {
    for (size_t i = 0; i < d; ++i) {
      if (digits[i] == j) {
        acc = ctx_->Mul(acc, table_[i]);
      }
    }
    result = ctx_->Mul(result, acc);
  }
  return ctx_->FromMont(result);
}

}  // namespace crypto
