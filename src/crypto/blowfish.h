// Blowfish block cipher (Schneier 1993) and the eksblowfish variant
// (Provos–Mazières 1999, "A future-adaptable password scheme").
//
// SFS uses Blowfish in CBC mode with a 20-byte key to encrypt NFS file
// handles (paper §3.3), and eksblowfish's cost-parameterised key schedule
// to make password-guessing attacks against SRP data and encrypted
// private keys expensive (paper §2.5.2).
//
// Blowfish's initial P-array and S-boxes are the hexadecimal digits of pi.
// Rather than embedding 4 KB of magic constants, this implementation
// *computes* pi to 33,408 fractional bits with the bignum library
// (Machin's formula) at first use and verifies the first word against the
// published value 0x243F6A88.
#ifndef SFS_SRC_CRYPTO_BLOWFISH_H_
#define SFS_SRC_CRYPTO_BLOWFISH_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace crypto {

inline constexpr size_t kBlowfishRounds = 16;
inline constexpr size_t kBlowfishBlockSize = 8;

// The pi-digit initial cipher state: P[18] then S[4][256].
struct BlowfishState {
  std::array<uint32_t, kBlowfishRounds + 2> p;
  std::array<std::array<uint32_t, 256>, 4> s;
};

// Returns the canonical pi-digit initial state (computed once, cached).
const BlowfishState& BlowfishInitialState();

class Blowfish {
 public:
  // Standard Blowfish key schedule.  Key length 4..56 bytes.
  explicit Blowfish(const util::Bytes& key);

  // eksblowfish: cost-parameterised schedule over (key, 16-byte salt);
  // the schedule runs 2^cost extra ExpandKey passes.
  Blowfish(const util::Bytes& key, const util::Bytes& salt16, unsigned cost);

  void EncryptBlock(uint32_t* left, uint32_t* right) const;
  void DecryptBlock(uint32_t* left, uint32_t* right) const;

  // CBC mode over whole blocks (callers pad; SFS file handles are a fixed
  // 32 bytes).  `iv` is 8 bytes.
  util::Result<util::Bytes> EncryptCbc(const util::Bytes& plaintext,
                                       const util::Bytes& iv) const;
  util::Result<util::Bytes> DecryptCbc(const util::Bytes& ciphertext,
                                       const util::Bytes& iv) const;

 private:
  void ExpandKey(const util::Bytes& key, const uint32_t* salt_words);
  uint32_t F(uint32_t x) const;

  BlowfishState state_;
};

// bcrypt-style password hash: eksblowfish setup with (password, salt,
// cost), then 64 ECB encryptions of the 24-byte magic value.  Returns the
// 24-byte result.  SFS feeds passwords through this before SRP and before
// private-key encryption so "guessing attacks should continue to take
// almost a full second of CPU time" (paper §2.5.2) at an appropriate cost
// setting.
util::Bytes EksBlowfishHash(unsigned cost, const util::Bytes& salt16,
                            const util::Bytes& password);

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_BLOWFISH_H_
