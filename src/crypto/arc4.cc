#include "src/crypto/arc4.h"

#include <cassert>

namespace crypto {

Arc4::Arc4(const util::Bytes& key) : i_(0), j_(0) {
  assert(!key.empty() && key.size() <= 256);
  for (int i = 0; i < 256; ++i) {
    s_[i] = static_cast<uint8_t>(i);
  }
  // One key-schedule pass per 128 bits of key material (paper §3.1.3).
  size_t rounds = (key.size() * 8 + 127) / 128;
  for (size_t r = 0; r < rounds; ++r) {
    KeyScheduleRound(key);
  }
  // The schedule borrows j_ as its accumulator; the PRGA starts from zero.
  i_ = 0;
  j_ = 0;
}

void Arc4::KeyScheduleRound(const util::Bytes& key) {
  uint8_t j = j_;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s_[i] + key[i % key.size()]);
    uint8_t tmp = s_[i];
    s_[i] = s_[j];
    s_[j] = tmp;
  }
  j_ = j;
}

uint8_t Arc4::NextByte() {
  i_ = static_cast<uint8_t>(i_ + 1);
  j_ = static_cast<uint8_t>(j_ + s_[i_]);
  uint8_t tmp = s_[i_];
  s_[i_] = s_[j_];
  s_[j_] = tmp;
  return s_[static_cast<uint8_t>(s_[i_] + s_[j_])];
}

util::Bytes Arc4::NextBytes(size_t len) {
  util::Bytes out(len);
  for (size_t k = 0; k < len; ++k) {
    out[k] = NextByte();
  }
  return out;
}

void Arc4::Crypt(uint8_t* data, size_t len) {
  for (size_t k = 0; k < len; ++k) {
    data[k] ^= NextByte();
  }
}

}  // namespace crypto
