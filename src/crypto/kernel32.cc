#include "src/crypto/kernel32.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace crypto {
namespace ref32 {
namespace {

// ---------------------------------------------------------------------------
// Frozen copies of the 32-bit-limb primitives exactly as they shipped in
// the pre-64-bit kernel, operating on BigInt's 32-bit view (Limbs32 /
// FromLimbs32).  Do not "improve" these: their value is that they are a
// fixed, independent implementation.
// ---------------------------------------------------------------------------

// out[0..an+bn) += a[0..an) * b[0..bn), schoolbook on 32-bit limbs.
void MulSchoolbook32(const uint32_t* a, size_t an, const uint32_t* b, size_t bn,
                     uint32_t* out) {
  for (size_t i = 0; i < an; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < bn; ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + bn;
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
}

// Inverse of an odd x mod 2^32 by Newton–Hensel lifting.
uint32_t InverseMod32(uint32_t x) {
  assert(x & 1);
  uint32_t inv = x;
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

// The 32-bit CIOS Montgomery context (one modulus, R = 2^(32s)).
class Montgomery32 {
 public:
  using Residue = std::vector<uint32_t>;

  explicit Montgomery32(const BigInt& modulus) : m_(modulus) {
    assert(m_.is_odd() && !m_.is_negative());
    n_ = m_.Limbs32();
    n0inv_ = 0u - InverseMod32(n_[0]);
    const size_t s = n_.size();
    BigInt r1 = (BigInt(1) << (32 * s)).Mod(m_);
    BigInt r2 = (BigInt(1) << (64 * s)).Mod(m_);
    r1_ = r1.Limbs32();
    r1_.resize(s, 0);
    r2_ = r2.Limbs32();
    r2_.resize(s, 0);
  }

  Residue ToMont(const BigInt& x) const {
    const size_t s = n_.size();
    Residue a = x.Mod(m_).Limbs32();
    a.resize(s, 0);
    Residue out(s);
    std::vector<uint32_t> t(s + 2);
    Cios(a.data(), r2_.data(), out.data(), t.data());
    return out;
  }

  BigInt FromMont(const Residue& a) const {
    const size_t s = n_.size();
    Residue one(s, 0);
    one[0] = 1;
    Residue out(s);
    std::vector<uint32_t> t(s + 2);
    Cios(a.data(), one.data(), out.data(), t.data());
    return BigInt::FromLimbs32(out);
  }

  Residue Exp(const Residue& base, const BigInt& exp) const {
    const size_t s = n_.size();
    Residue result = r1_;
    const size_t bits = exp.BitLength();
    if (bits == 0) {
      return result;
    }
    std::vector<uint32_t> t(s + 2);
    Residue sq(s);
    Cios(base.data(), base.data(), sq.data(), t.data());
    Residue table[8];
    table[0] = base;
    for (int k = 1; k < 8; ++k) {
      table[k].resize(s);
      Cios(table[k - 1].data(), sq.data(), table[k].data(), t.data());
    }
    size_t i = bits;
    while (i > 0) {
      if (!exp.Bit(i - 1)) {
        Cios(result.data(), result.data(), result.data(), t.data());
        --i;
        continue;
      }
      size_t low = i >= 4 ? i - 4 : 0;
      while (!exp.Bit(low)) {
        ++low;
      }
      uint32_t w = 0;
      for (size_t j = i; j-- > low;) {
        w = (w << 1) | (exp.Bit(j) ? 1u : 0u);
        Cios(result.data(), result.data(), result.data(), t.data());
      }
      Cios(result.data(), table[w >> 1].data(), result.data(), t.data());
      i = low;
    }
    return result;
  }

 private:
  void Cios(const uint32_t* a, const uint32_t* b, uint32_t* out,
            uint32_t* t) const {
    const size_t s = n_.size();
    const uint32_t* n = n_.data();
    std::fill(t, t + s + 2, 0u);
    for (size_t i = 0; i < s; ++i) {
      const uint64_t bi = b[i];
      uint64_t carry = 0;
      for (size_t j = 0; j < s; ++j) {
        uint64_t cur = t[j] + a[j] * bi + carry;
        t[j] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      uint64_t cur = t[s] + carry;
      t[s] = static_cast<uint32_t>(cur);
      t[s + 1] = static_cast<uint32_t>(cur >> 32);

      const uint64_t mi = static_cast<uint32_t>(t[0] * n0inv_);
      cur = t[0] + mi * n[0];
      carry = cur >> 32;
      for (size_t j = 1; j < s; ++j) {
        cur = t[j] + mi * n[j] + carry;
        t[j - 1] = static_cast<uint32_t>(cur);
        carry = cur >> 32;
      }
      cur = static_cast<uint64_t>(t[s]) + carry;
      t[s - 1] = static_cast<uint32_t>(cur);
      t[s] = t[s + 1] + static_cast<uint32_t>(cur >> 32);
    }

    bool ge = t[s] != 0;
    if (!ge) {
      ge = true;
      for (size_t j = s; j-- > 0;) {
        if (t[j] != n[j]) {
          ge = t[j] > n[j];
          break;
        }
      }
    }
    if (ge) {
      uint64_t borrow = 0;
      for (size_t j = 0; j < s; ++j) {
        uint64_t diff = static_cast<uint64_t>(t[j]) - n[j] - borrow;
        out[j] = static_cast<uint32_t>(diff);
        borrow = (diff >> 32) & 1;
      }
    } else {
      std::copy(t, t + s, out);
    }
  }

  BigInt m_;
  std::vector<uint32_t> n_;
  uint32_t n0inv_ = 0;
  Residue r1_;
  Residue r2_;
};

}  // namespace

BigInt Mul32(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) {
    return BigInt();
  }
  std::vector<uint32_t> al = a.Limbs32();
  std::vector<uint32_t> bl = b.Limbs32();
  std::vector<uint32_t> out(al.size() + bl.size(), 0);
  MulSchoolbook32(al.data(), al.size(), bl.data(), bl.size(), out.data());
  BigInt result = BigInt::FromLimbs32(out);
  if (a.is_negative() != b.is_negative()) {
    result = -result;
  }
  return result;
}

BigInt ModExp32(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.is_negative());
  if (!m.is_odd()) {
    return BigInt::ModExpNaive(base, exp, m);
  }
  if (exp.is_zero()) {
    return BigInt(1);
  }
  Montgomery32 ctx(m);
  return ctx.FromMont(ctx.Exp(ctx.ToMont(base), exp));
}

}  // namespace ref32
}  // namespace crypto
