// Montgomery-form modular arithmetic: the kernel under every modular
// exponentiation in SFS's public-key hot path (SRP-6a exchanges, Rabin
// square roots, Miller–Rabin witnesses).
//
// For an odd modulus m of s 32-bit limbs, values are kept as residues
// x*R mod m with R = 2^(32s).  The Montgomery product of two residues
// — one CIOS (coarsely integrated operand scanning) pass interleaving
// word-level multiply and reduce — costs 2s^2 + s single-word multiplies
// and *no* division, replacing the schoolbook multiply + full Knuth
// algorithm-D division the textbook path pays per step.
//
// Exponentiation uses a fixed 4-bit sliding window over a table of the
// eight odd powers base^1, base^3, ..., base^15, cutting the number of
// non-squaring multiplies from ~bits/2 to ~bits/5.
//
// Even moduli cannot be represented (R must be invertible mod m);
// BigInt::ModExp falls back to the naive path for them.
#ifndef SFS_SRC_CRYPTO_MONTGOMERY_H_
#define SFS_SRC_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "src/crypto/bignum.h"

namespace crypto {

class MontgomeryCtx {
 public:
  // A residue in Montgomery form: exactly limbs() little-endian words,
  // value < modulus.  Opaque to callers; convert with ToMont/FromMont.
  using Residue = std::vector<uint32_t>;

  // Requires modulus odd and >= 1.  Precomputes n' = -m^{-1} mod 2^32
  // and R^2 mod m; build once per modulus and reuse (RabinPrivateKey
  // caches one per prime, SrpParams shares one for the group N).
  explicit MontgomeryCtx(const BigInt& modulus);

  const BigInt& modulus() const { return m_; }
  size_t limbs() const { return n_.size(); }

  // x*R mod m (x is reduced mod m first; negative x handled).
  Residue ToMont(const BigInt& x) const;
  // a*R^{-1} mod m: back to a plain integer.
  BigInt FromMont(const Residue& a) const;
  // The residue of 1 (R mod m).
  const Residue& One() const { return r1_; }

  // Montgomery product a*b*R^{-1} mod m of two residues.
  Residue Mul(const Residue& a, const Residue& b) const;

  // base^exp in Montgomery form; base a residue, exp plain and >= 0.
  // exp == 0 yields One() (even when modulus == 1, where One() is 0).
  Residue Exp(const Residue& base, const BigInt& exp) const;

  // Convenience wrappers for callers with plain-integer operands.
  // ModExp matches BigInt::ModExpNaive bit-for-bit, including the
  // convention that exp == 0 returns 1 regardless of the modulus.
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;
  BigInt ModMul(const BigInt& a, const BigInt& b) const;
  BigInt ModSquare(const BigInt& a) const;

 private:
  // One CIOS pass: out = a*b*R^{-1} mod m.  `a`, `b`, `out` are
  // limbs()-word arrays; `t` is scratch of limbs()+2 words.  `out` may
  // alias `a` or `b` (the accumulator is `t`).
  void Cios(const uint32_t* a, const uint32_t* b, uint32_t* out, uint32_t* t) const;

  BigInt m_;                    // The modulus.
  std::vector<uint32_t> n_;     // Its limbs (size s, top limb nonzero).
  uint32_t n0inv_ = 0;          // -m^{-1} mod 2^32.
  Residue r1_;                  // R mod m.
  Residue r2_;                  // R^2 mod m (the ToMont multiplier).
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_MONTGOMERY_H_
