// Montgomery-form modular arithmetic: the kernel under every modular
// exponentiation in SFS's public-key hot path (SRP-6a exchanges, Rabin
// square roots, Miller–Rabin witnesses).
//
// For an odd modulus m of s 64-bit limbs, values are kept as residues
// x*R mod m with R = 2^(64s).  The Montgomery product of two residues
// — one CIOS (coarsely integrated operand scanning) pass interleaving
// word-level multiply and reduce — costs 2s^2 + s single-word multiplies
// and *no* division, replacing the schoolbook multiply + full Knuth
// algorithm-D division the textbook path pays per step.  Moving from
// 32-bit to 64-bit limbs halves s, so the quadratic CIOS pass does a
// quarter of the word multiplies; each word multiply is an
// `unsigned __int128` product, which the hardware provides directly.
// n' = -m^{-1} mod 2^64 comes from Newton–Hensel lifting (inv = x is
// correct mod 8; five squared-precision iterations reach >= 64 bits).
//
// Exponentiation uses a fixed 4-bit sliding window over a table of the
// eight odd powers base^1, base^3, ..., base^15, cutting the number of
// non-squaring multiplies from ~bits/2 to ~bits/5.  The window walk over
// a given exponent is deterministic, so it can be compiled once into an
// ExpSchedule and replayed for many bases: Miller–Rabin witnesses (one
// shared exponent d, twenty bases) batch through ExpBatch, and
// RabinPrivateKey caches the schedules of its fixed square-root
// exponents (p+1)/4 and (q+1)/4 across decrypt/sign calls.  A schedule
// is a function of the exponent's bits, so schedules of private
// exponents are wiped on destruction (`secret`), matching the audit-log
// key-hygiene convention.
//
// Even moduli cannot be represented (R must be invertible mod m);
// BigInt::ModExp falls back to the naive path for them.
#ifndef SFS_SRC_CRYPTO_MONTGOMERY_H_
#define SFS_SRC_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "src/crypto/bignum.h"

namespace crypto {

// The precompiled window walk of one exponent: a replay list of
// "square k times, then (optionally) multiply by odd power base^(2t+1)"
// steps.  Compile with MontgomeryCtx::CompileExp; replay with
// MontgomeryCtx::Exp against any base (and any context — the schedule
// depends only on the exponent).  Move-only: a secret schedule wipes its
// ops on destruction, and accidental copies would defeat that.
class ExpSchedule {
 public:
  struct Op {
    uint32_t squarings;   // Squarings to apply before the multiply.
    int32_t table_index;  // Odd-power index t (base^(2t+1)), or -1: none.
  };

  ExpSchedule() = default;
  ~ExpSchedule();
  ExpSchedule(ExpSchedule&&) = default;
  ExpSchedule& operator=(ExpSchedule&&) = default;
  ExpSchedule(const ExpSchedule&) = delete;
  ExpSchedule& operator=(const ExpSchedule&) = delete;

  // True for the zero exponent (replay yields One()).
  bool zero() const { return zero_; }
  const std::vector<Op>& ops() const { return ops_; }
  bool secret() const { return secret_; }

 private:
  friend class MontgomeryCtx;
  std::vector<Op> ops_;
  bool zero_ = true;
  bool secret_ = false;
};

class MontgomeryCtx {
 public:
  // A residue in Montgomery form: exactly limbs() little-endian words,
  // value < modulus.  Opaque to callers; convert with ToMont/FromMont.
  using Residue = std::vector<uint64_t>;

  // Requires modulus odd and >= 1.  Precomputes n' = -m^{-1} mod 2^64
  // and R^2 mod m; build once per modulus and reuse (RabinPrivateKey
  // caches one per prime, SrpParams shares one for the group N).
  explicit MontgomeryCtx(const BigInt& modulus);

  const BigInt& modulus() const { return m_; }
  size_t limbs() const { return n_.size(); }

  // x*R mod m (x is reduced mod m first; negative x handled).
  Residue ToMont(const BigInt& x) const;
  // a*R^{-1} mod m: back to a plain integer.
  BigInt FromMont(const Residue& a) const;
  // The residue of 1 (R mod m).
  const Residue& One() const { return r1_; }

  // Montgomery product a*b*R^{-1} mod m of two residues.
  Residue Mul(const Residue& a, const Residue& b) const;

  // base^exp in Montgomery form; base a residue, exp plain and >= 0.
  // exp == 0 yields One() (even when modulus == 1, where One() is 0).
  Residue Exp(const Residue& base, const BigInt& exp) const;

  // The window walk of `exp`, precompiled for replay against many bases
  // or many calls.  `secret` wipes the ops on destruction (the schedule
  // reveals the exponent's bits).
  static ExpSchedule CompileExp(const BigInt& exp, bool secret = false);
  // Replay a compiled schedule: identical result to Exp(base, exp).
  Residue Exp(const Residue& base, const ExpSchedule& schedule) const;
  // base^exp for every base, compiling the shared exponent's schedule
  // once (Miller–Rabin witness batching).
  std::vector<Residue> ExpBatch(const std::vector<Residue>& bases,
                                const BigInt& exp) const;

  // Convenience wrappers for callers with plain-integer operands.
  // ModExp matches BigInt::ModExpNaive bit-for-bit, including the
  // convention that exp == 0 returns 1 regardless of the modulus.
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;
  BigInt ModMul(const BigInt& a, const BigInt& b) const;
  BigInt ModSquare(const BigInt& a) const;

 private:
  // One CIOS pass: out = a*b*R^{-1} mod m.  `a`, `b`, `out` are
  // limbs()-word arrays; `t` is scratch of limbs()+2 words.  `out` may
  // alias `a` or `b` (the accumulator is `t`).
  void Cios(const uint64_t* a, const uint64_t* b, uint64_t* out, uint64_t* t) const;

  BigInt m_;                    // The modulus.
  std::vector<uint64_t> n_;     // Its limbs (size s, top limb nonzero).
  uint64_t n0inv_ = 0;          // -m^{-1} mod 2^64.
  Residue r1_;                  // R mod m.
  Residue r2_;                  // R^2 mod m (the ToMont multiplier).
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_MONTGOMERY_H_
