// DSS-style SHA-1 pseudo-random generator (FIPS 186 appendix 3).
//
// SFS chose this generator "both because it is based on SHA-1 and because
// it cannot be run backwards in the event that its state gets compromised"
// (paper §3.1.3).  State update: state = (state + output + 1) mod 2^512.
//
// The generator is explicitly seedable so tests are deterministic; the
// SeedFromEnvironment() helper mimics SFS's practice of hashing many
// entropy sources through SHA-1 into a 512-bit seed.
#ifndef SFS_SRC_CRYPTO_PRNG_H_
#define SFS_SRC_CRYPTO_PRNG_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace crypto {

class Prng {
 public:
  // Seeds with SHA-1 expansion of `seed` into the 64-byte state.
  explicit Prng(const util::Bytes& seed);
  explicit Prng(uint64_t seed);

  // Returns `len` pseudo-random bytes.
  util::Bytes RandomBytes(size_t len);

  // Uniform in [0, bound); bound > 0.
  uint64_t RandomUint64(uint64_t bound);

  // Mixes additional entropy into the state (keystroke timings etc.).
  void AddEntropy(const util::Bytes& data);

 private:
  void Step();  // Produces 20 bytes into out_, advances state.

  uint8_t state_[64];  // 512-bit state, big-endian.
  uint8_t out_[20];
  size_t out_pos_;  // Next unconsumed byte in out_; 20 = empty.
};

// Builds a seed the way sfs does: hash together timers, pid-like values
// and any caller-provided strings.  Not deterministic.
util::Bytes EnvironmentSeed();

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_PRNG_H_
