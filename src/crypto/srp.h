// SRP-6a, the Secure Remote Password protocol (Wu 1998).
//
// SFS's sfskey/authserv pair uses SRP to let a user with only a password
// securely download a server's self-certifying pathname and an encrypted
// copy of her private key (paper §2.4 "Password authentication").  SRP
// lets two parties sharing a weak secret negotiate a strong session key
// without exposing the secret to off-line guessing; the server stores a
// verifier, never anything password-equivalent.
//
// Passwords are hardened with eksblowfish before entering the protocol,
// so each guess also costs an attacker a configurable amount of CPU
// (paper §2.5.2).
#ifndef SFS_SRC_CRYPTO_SRP_H_
#define SFS_SRC_CRYPTO_SRP_H_

#include <memory>
#include <string>

#include "src/crypto/bignum.h"
#include "src/crypto/fixedbase.h"
#include "src/crypto/montgomery.h"
#include "src/crypto/prng.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace crypto {

// Group parameters: a safe prime N and generator g.  `ctx` is the shared
// Montgomery context for N — one per group, reused by every client,
// server, and verifier computation.  `g_ctx` is the fixed-base table for
// the generator: of the exchange's exponentiations, A = g^a, B's g^b,
// and the verifier path's g^x all share base g, so one precomputation
// per group accelerates most of every handshake (docs/CRYPTO_PERF.md).
// Both may be null (e.g. for hand-built params); exponentiations then
// fall back to the generic paths.
struct SrpParams {
  BigInt n;
  BigInt g;
  std::shared_ptr<const MontgomeryCtx> ctx;
  std::shared_ptr<const FixedBaseCtx> g_ctx;
};

// The standard 1024-bit group (RFC 5054 appendix A), g = 2.
const SrpParams& DefaultSrpParams();

// What the server stores per user: random salt, eksblowfish cost, and the
// verifier v = g^x.  Knowing v does not let anyone impersonate the user or
// check password guesses faster than eksblowfish allows.
//
// `v_ctx` is the fixed-base table for v: the account's verifier is a
// long-lived server-side base (AuthServer keeps it for every login),
// and each exchange computes v^u against it.  It is password-derived
// key material, so the table is built `secret` and wiped on destruction.
// Null for hand-built verifiers; v^u then takes the generic kernel.
struct SrpVerifier {
  util::Bytes salt;  // 16 bytes
  unsigned cost = 0;
  BigInt v;
  std::shared_ptr<const FixedBaseCtx> v_ctx;
};

// x = eksblowfish(cost, salt, password) interpreted as an integer.
BigInt SrpPrivateExponent(const SrpParams& params, const std::string& password,
                          const util::Bytes& salt, unsigned cost);

// Builds a fresh verifier for (password) with a random salt.
SrpVerifier MakeSrpVerifier(const SrpParams& params, const std::string& password,
                            unsigned cost, Prng* prng);

// Client side of one SRP exchange.
class SrpClient {
 public:
  SrpClient(const SrpParams& params, Prng* prng);

  // Message 1: the client's ephemeral public value A = g^a.
  const BigInt& A() const { return a_pub_; }

  // Processes the server's reply (salt, cost, B); computes the shared
  // session key and the client proof M1.  Fails if B is degenerate.
  util::Status ProcessServerReply(const std::string& password, const util::Bytes& salt,
                                  unsigned cost, const BigInt& b_pub);

  const util::Bytes& SessionKey() const { return session_key_; }
  const util::Bytes& ClientProof() const { return m1_; }

  // Verifies the server's proof M2, completing mutual authentication.
  util::Status VerifyServerProof(const util::Bytes& m2) const;

 private:
  SrpParams params_;
  BigInt a_priv_;
  BigInt a_pub_;
  util::Bytes session_key_;
  util::Bytes m1_;
  util::Bytes m2_expected_;
};

// Server side of one SRP exchange.
class SrpServer {
 public:
  SrpServer(const SrpParams& params, SrpVerifier verifier, Prng* prng);

  // Processes the client's A and produces B.  Fails if A ≡ 0 (mod N).
  util::Result<BigInt> ProcessClientHello(const BigInt& a_pub);

  const util::Bytes& Salt() const { return verifier_.salt; }
  unsigned Cost() const { return verifier_.cost; }

  // Checks the client's proof M1.  On success the session key is agreed.
  util::Status VerifyClientProof(const util::Bytes& m1) const;

  const util::Bytes& SessionKey() const { return session_key_; }
  const util::Bytes& ServerProof() const { return m2_; }

 private:
  SrpParams params_;
  SrpVerifier verifier_;
  BigInt b_priv_;
  BigInt a_pub_;
  BigInt b_pub_;
  util::Bytes session_key_;
  util::Bytes m1_expected_;
  util::Bytes m2_;
};

}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_SRP_H_
