#include "src/crypto/montgomery.h"

#include <algorithm>
#include <cassert>

namespace crypto {
namespace {

// Inverse of an odd x mod 2^32 by Newton–Hensel lifting: inv = x is
// correct mod 8, and each iteration doubles the number of correct bits.
uint32_t InverseMod32(uint32_t x) {
  assert(x & 1);
  uint32_t inv = x;
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : m_(modulus) {
  assert(m_.is_odd() && !m_.is_negative());
  n_ = m_.limbs();
  n0inv_ = 0u - InverseMod32(n_[0]);
  const size_t s = n_.size();
  BigInt r1 = (BigInt(1) << (32 * s)).Mod(m_);
  BigInt r2 = (BigInt(1) << (64 * s)).Mod(m_);
  r1_ = r1.limbs();
  r1_.resize(s, 0);
  r2_ = r2.limbs();
  r2_.resize(s, 0);
}

void MontgomeryCtx::Cios(const uint32_t* a, const uint32_t* b, uint32_t* out,
                         uint32_t* t) const {
  const size_t s = n_.size();
  const uint32_t* n = n_.data();
  std::fill(t, t + s + 2, 0u);
  for (size_t i = 0; i < s; ++i) {
    // t += a * b[i].
    const uint64_t bi = b[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < s; ++j) {
      uint64_t cur = t[j] + a[j] * bi + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[s] + carry;
    t[s] = static_cast<uint32_t>(cur);
    t[s + 1] = static_cast<uint32_t>(cur >> 32);

    // t += (t[0] * n') * m, making t[0] zero, then drop one word: the
    // interleaved reduce that keeps t below 2m throughout.
    const uint64_t mi = static_cast<uint32_t>(t[0] * n0inv_);
    cur = t[0] + mi * n[0];
    carry = cur >> 32;
    for (size_t j = 1; j < s; ++j) {
      cur = t[j] + mi * n[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<uint32_t>(cur);
    t[s] = t[s + 1] + static_cast<uint32_t>(cur >> 32);
  }

  // Final conditional subtraction: t is in [0, 2m).
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t j = s; j-- > 0;) {
      if (t[j] != n[j]) {
        ge = t[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t j = 0; j < s; ++j) {
      uint64_t diff = static_cast<uint64_t>(t[j]) - n[j] - borrow;
      out[j] = static_cast<uint32_t>(diff);
      borrow = (diff >> 32) & 1;
    }
  } else {
    std::copy(t, t + s, out);
  }
}

MontgomeryCtx::Residue MontgomeryCtx::ToMont(const BigInt& x) const {
  const size_t s = n_.size();
  Residue a = x.Mod(m_).limbs();
  a.resize(s, 0);
  Residue out(s);
  std::vector<uint32_t> t(s + 2);
  Cios(a.data(), r2_.data(), out.data(), t.data());
  return out;
}

BigInt MontgomeryCtx::FromMont(const Residue& a) const {
  const size_t s = n_.size();
  assert(a.size() == s);
  Residue one(s, 0);
  one[0] = 1;
  Residue out(s);
  std::vector<uint32_t> t(s + 2);
  Cios(a.data(), one.data(), out.data(), t.data());
  return BigInt::FromLimbs(std::move(out));
}

MontgomeryCtx::Residue MontgomeryCtx::Mul(const Residue& a, const Residue& b) const {
  const size_t s = n_.size();
  assert(a.size() == s && b.size() == s);
  Residue out(s);
  std::vector<uint32_t> t(s + 2);
  Cios(a.data(), b.data(), out.data(), t.data());
  return out;
}

MontgomeryCtx::Residue MontgomeryCtx::Exp(const Residue& base, const BigInt& exp) const {
  assert(!exp.is_negative());
  const size_t s = n_.size();
  assert(base.size() == s);
  Residue result = r1_;
  const size_t bits = exp.BitLength();
  if (bits == 0) {
    return result;
  }

  // Odd-power table: table[k] = base^(2k+1) in Montgomery form.
  std::vector<uint32_t> t(s + 2);
  Residue sq(s);
  Cios(base.data(), base.data(), sq.data(), t.data());
  Residue table[8];
  table[0] = base;
  for (int k = 1; k < 8; ++k) {
    table[k].resize(s);
    Cios(table[k - 1].data(), sq.data(), table[k].data(), t.data());
  }

  // Left-to-right with 4-bit windows anchored on set bits: zeros cost
  // one squaring each; a window of width d costs d squarings plus one
  // table multiply.
  size_t i = bits;
  while (i > 0) {
    if (!exp.Bit(i - 1)) {
      Cios(result.data(), result.data(), result.data(), t.data());
      --i;
      continue;
    }
    size_t low = i >= 4 ? i - 4 : 0;  // Window spans bits [low, i).
    while (!exp.Bit(low)) {
      ++low;
    }
    uint32_t w = 0;
    for (size_t j = i; j-- > low;) {
      w = (w << 1) | (exp.Bit(j) ? 1u : 0u);
      Cios(result.data(), result.data(), result.data(), t.data());
    }
    Cios(result.data(), table[w >> 1].data(), result.data(), t.data());
    i = low;
  }
  return result;
}

BigInt MontgomeryCtx::ModExp(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) {
    return BigInt(1);  // x^0 = 1 by convention, matching ModExpNaive.
  }
  return FromMont(Exp(ToMont(base), exp));
}

BigInt MontgomeryCtx::ModMul(const BigInt& a, const BigInt& b) const {
  return FromMont(Mul(ToMont(a), ToMont(b)));
}

BigInt MontgomeryCtx::ModSquare(const BigInt& a) const {
  // Asymmetric trick: Cios(x, y) = x*y*R^{-1}, so multiplying the plain
  // value by its own Montgomery form gives a * (a*R) * R^{-1} = a^2 mod m
  // in two passes instead of ToMont/Mul/FromMont's three.
  const size_t s = n_.size();
  Residue plain = a.Mod(m_).limbs();
  plain.resize(s, 0);
  Residue am = ToMont(a);
  Residue out(s);
  std::vector<uint32_t> t(s + 2);
  Cios(plain.data(), am.data(), out.data(), t.data());
  return BigInt::FromLimbs(std::move(out));
}

}  // namespace crypto
