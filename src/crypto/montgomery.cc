#include "src/crypto/montgomery.h"

#include <algorithm>
#include <cassert>

namespace crypto {
namespace {
using u128 = unsigned __int128;

// Inverse of an odd x mod 2^64 by Newton–Hensel lifting: inv = x is
// correct mod 8 (x * x ≡ 1 mod 8 for odd x), and each iteration doubles
// the number of correct bits: 3 → 6 → 12 → 24 → 48 → 96 >= 64.
uint64_t InverseMod64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

}  // namespace

ExpSchedule::~ExpSchedule() {
  if (secret_) {
    // The schedule is a transcript of the exponent's bits; scrub it like
    // any other key material (obs::AuditLog batch keys do the same).
    std::fill(ops_.begin(), ops_.end(), Op{0, 0});
    ops_.clear();
  }
}

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : m_(modulus) {
  assert(m_.is_odd() && !m_.is_negative());
  n_ = m_.limbs();
  n0inv_ = 0u - InverseMod64(n_[0]);
  const size_t s = n_.size();
  BigInt r1 = (BigInt(1) << (64 * s)).Mod(m_);
  BigInt r2 = (BigInt(1) << (128 * s)).Mod(m_);
  r1_ = r1.limbs();
  r1_.resize(s, 0);
  r2_ = r2.limbs();
  r2_.resize(s, 0);
}

void MontgomeryCtx::Cios(const uint64_t* a, const uint64_t* b, uint64_t* out,
                         uint64_t* t) const {
  const size_t s = n_.size();
  const uint64_t* n = n_.data();
  std::fill(t, t + s + 2, uint64_t{0});
  for (size_t i = 0; i < s; ++i) {
    // t += a * b[i].  Each 128-bit accumulation fits exactly:
    // t[j] + a[j]*b[i] + carry <= (2^64-1) + (2^64-1)^2 + (2^64-1) = 2^128-1.
    const uint64_t bi = b[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < s; ++j) {
      u128 cur = t[j] + static_cast<u128>(a[j]) * bi + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[s]) + carry;
    t[s] = static_cast<uint64_t>(cur);
    t[s + 1] = static_cast<uint64_t>(cur >> 64);

    // t += (t[0] * n') * m, making t[0] zero, then drop one word: the
    // interleaved reduce that keeps t below 2m throughout.
    const uint64_t mi = t[0] * n0inv_;
    cur = t[0] + static_cast<u128>(mi) * n[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < s; ++j) {
      cur = t[j] + static_cast<u128>(mi) * n[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    cur = static_cast<u128>(t[s]) + carry;
    t[s - 1] = static_cast<uint64_t>(cur);
    t[s] = t[s + 1] + static_cast<uint64_t>(cur >> 64);
  }

  // Final conditional subtraction: t is in [0, 2m).
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t j = s; j-- > 0;) {
      if (t[j] != n[j]) {
        ge = t[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t j = 0; j < s; ++j) {
      u128 diff = static_cast<u128>(t[j]) - n[j] - borrow;
      out[j] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
  } else {
    std::copy(t, t + s, out);
  }
}

MontgomeryCtx::Residue MontgomeryCtx::ToMont(const BigInt& x) const {
  const size_t s = n_.size();
  Residue a = x.Mod(m_).limbs();
  a.resize(s, 0);
  Residue out(s);
  std::vector<uint64_t> t(s + 2);
  Cios(a.data(), r2_.data(), out.data(), t.data());
  return out;
}

BigInt MontgomeryCtx::FromMont(const Residue& a) const {
  const size_t s = n_.size();
  assert(a.size() == s);
  Residue one(s, 0);
  one[0] = 1;
  Residue out(s);
  std::vector<uint64_t> t(s + 2);
  Cios(a.data(), one.data(), out.data(), t.data());
  return BigInt::FromLimbs(std::move(out));
}

MontgomeryCtx::Residue MontgomeryCtx::Mul(const Residue& a, const Residue& b) const {
  const size_t s = n_.size();
  assert(a.size() == s && b.size() == s);
  Residue out(s);
  std::vector<uint64_t> t(s + 2);
  Cios(a.data(), b.data(), out.data(), t.data());
  return out;
}

ExpSchedule MontgomeryCtx::CompileExp(const BigInt& exp, bool secret) {
  assert(!exp.is_negative());
  ExpSchedule sched;
  sched.secret_ = secret;
  const size_t bits = exp.BitLength();
  if (bits == 0) {
    return sched;
  }
  sched.zero_ = false;
  sched.ops_.reserve(bits / 4 + 2);

  // The same left-to-right walk Exp always did — 4-bit windows anchored
  // on set bits, zeros as bare squarings — recorded instead of executed.
  uint32_t pending = 0;  // Squarings owed before the next multiply.
  size_t i = bits;
  while (i > 0) {
    if (!exp.Bit(i - 1)) {
      ++pending;
      --i;
      continue;
    }
    size_t low = i >= 4 ? i - 4 : 0;  // Window spans bits [low, i).
    while (!exp.Bit(low)) {
      ++low;
    }
    uint32_t w = 0;
    for (size_t j = i; j-- > low;) {
      w = (w << 1) | (exp.Bit(j) ? 1u : 0u);
      ++pending;
    }
    sched.ops_.push_back({pending, static_cast<int32_t>(w >> 1)});
    pending = 0;
    i = low;
  }
  if (pending != 0) {
    sched.ops_.push_back({pending, -1});
  }
  return sched;
}

MontgomeryCtx::Residue MontgomeryCtx::Exp(const Residue& base,
                                          const ExpSchedule& schedule) const {
  const size_t s = n_.size();
  assert(base.size() == s);
  Residue result = r1_;
  if (schedule.zero()) {
    return result;
  }

  // Odd-power table: table[k] = base^(2k+1) in Montgomery form.
  std::vector<uint64_t> t(s + 2);
  Residue sq(s);
  Cios(base.data(), base.data(), sq.data(), t.data());
  Residue table[8];
  table[0] = base;
  for (int k = 1; k < 8; ++k) {
    table[k].resize(s);
    Cios(table[k - 1].data(), sq.data(), table[k].data(), t.data());
  }

  for (const ExpSchedule::Op& op : schedule.ops()) {
    for (uint32_t q = 0; q < op.squarings; ++q) {
      Cios(result.data(), result.data(), result.data(), t.data());
    }
    if (op.table_index >= 0) {
      Cios(result.data(), table[op.table_index].data(), result.data(), t.data());
    }
  }
  return result;
}

MontgomeryCtx::Residue MontgomeryCtx::Exp(const Residue& base, const BigInt& exp) const {
  return Exp(base, CompileExp(exp));
}

std::vector<MontgomeryCtx::Residue> MontgomeryCtx::ExpBatch(
    const std::vector<Residue>& bases, const BigInt& exp) const {
  const ExpSchedule schedule = CompileExp(exp);
  std::vector<Residue> out;
  out.reserve(bases.size());
  for (const Residue& base : bases) {
    out.push_back(Exp(base, schedule));
  }
  return out;
}

BigInt MontgomeryCtx::ModExp(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) {
    return BigInt(1);  // x^0 = 1 by convention, matching ModExpNaive.
  }
  return FromMont(Exp(ToMont(base), exp));
}

BigInt MontgomeryCtx::ModMul(const BigInt& a, const BigInt& b) const {
  return FromMont(Mul(ToMont(a), ToMont(b)));
}

BigInt MontgomeryCtx::ModSquare(const BigInt& a) const {
  // Asymmetric trick: Cios(x, y) = x*y*R^{-1}, so multiplying the plain
  // value by its own Montgomery form gives a * (a*R) * R^{-1} = a^2 mod m
  // in two passes instead of ToMont/Mul/FromMont's three.
  const size_t s = n_.size();
  Residue plain = a.Mod(m_).limbs();
  plain.resize(s, 0);
  Residue am = ToMont(a);
  Residue out(s);
  std::vector<uint64_t> t(s + 2);
  Cios(plain.data(), am.data(), out.data(), t.data());
  return BigInt::FromLimbs(std::move(out));
}

}  // namespace crypto
