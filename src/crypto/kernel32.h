// The retained 32-bit-limb reference kernel.
//
// When BigInt moved to 64-bit limbs the previous 32-bit schoolbook
// multiply and 32-bit CIOS Montgomery exponentiation were kept here,
// frozen, as the differential oracle: the tests diff every 64-bit hot
// path (CIOS multiply-reduce, fixed-base exponentiation, batched
// Miller–Rabin powers) bit-for-bit against these functions, and
// bench/crypto_prims.cc reports 64-vs-32-limb ModExp side by side so the
// limb-width win stays measured rather than assumed.
//
// This code is deliberately NOT on any production path — it exists so a
// bug in the 64-bit kernel cannot hide behind itself.
#ifndef SFS_SRC_CRYPTO_KERNEL32_H_
#define SFS_SRC_CRYPTO_KERNEL32_H_

#include "src/crypto/bignum.h"

namespace crypto {
namespace ref32 {

// a * b via 32-bit-limb schoolbook multiplication.
BigInt Mul32(const BigInt& a, const BigInt& b);

// (base^exp) mod m via the 32-bit CIOS Montgomery kernel (odd m) or the
// naive square-and-multiply fallback (even m); exp >= 0, m > 0.  Matches
// BigInt::ModExp bit-for-bit, including exp == 0 -> 1.
BigInt ModExp32(const BigInt& base, const BigInt& exp, const BigInt& m);

}  // namespace ref32
}  // namespace crypto

#endif  // SFS_SRC_CRYPTO_KERNEL32_H_
