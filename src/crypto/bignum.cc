#include "src/crypto/bignum.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/crypto/montgomery.h"

namespace crypto {

namespace {
using u128 = unsigned __int128;

// Below this many 64-bit limbs in the smaller operand, schoolbook
// multiplication beats Karatsuba's extra passes and temporaries.  At
// 64-bit width the schoolbook inner loop does a quarter of the word
// multiplies it did at 32 bits, so the crossover sits at roughly the
// same *bit* size as the old 130-limb (4160-bit) threshold: re-measured
// for this implementation the two curves cross between 64 and 96 limbs
// (~5000 bits), with Karatsuba clearly ahead from 96 limbs up.
// Key-sized (<= 2048-bit) operands always take the schoolbook path
// (see docs/CRYPTO_PERF.md).  Overridable for re-measurement harnesses.
#ifdef SFS_KARATSUBA_THRESHOLD
constexpr size_t kKaratsubaThresholdLimbs = SFS_KARATSUBA_THRESHOLD;
#else
constexpr size_t kKaratsubaThresholdLimbs = 80;
#endif

// out[0..an+bn) += a[0..an) * b[0..bn), schoolbook.  out must have room
// for the carry to propagate (an + bn limbs, pre-zeroed by the caller).
// The 128-bit accumulator fits exactly: out + a*b + carry is at most
// (2^64-1) + (2^64-1)^2 + (2^64-1) = 2^128 - 1.
void MulSchoolbook(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                   uint64_t* out) {
  for (size_t i = 0; i < an; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < bn; ++j) {
      u128 cur = out[i + j] + static_cast<u128>(ai) * b[j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t k = i + bn;
    while (carry) {
      u128 cur = static_cast<u128>(out[k]) + carry;
      out[k] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++k;
    }
  }
}
}  // namespace

BigInt::BigInt(int64_t v) : negative_(v < 0) {
  uint64_t mag = negative_ ? (~static_cast<uint64_t>(v) + 1) : static_cast<uint64_t>(v);
  if (mag != 0) {
    limbs_.push_back(mag);
  }
}

BigInt::BigInt(uint64_t v) : negative_(false) {
  if (v != 0) {
    limbs_.push_back(v);
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
  if (limbs_.empty()) {
    negative_ = false;
  }
}

BigInt BigInt::FromBytes(const util::Bytes& bytes) {
  BigInt out;
  out.limbs_.reserve((bytes.size() + 7) / 8);
  // bytes are big-endian; build limbs from the tail.
  size_t n = bytes.size();
  for (size_t off = 0; off < n; off += 8) {
    uint64_t limb = 0;
    for (size_t k = 0; k < 8 && off + k < n; ++k) {
      limb |= static_cast<uint64_t>(bytes[n - 1 - off - k]) << (8 * k);
    }
    out.limbs_.push_back(limb);
  }
  out.Normalize();
  return out;
}

util::Bytes BigInt::ToBytes() const {
  util::Bytes out;
  size_t bits = BitLength();
  size_t len = (bits + 7) / 8;
  out = ToBytesPadded(len);
  return out;
}

util::Bytes BigInt::ToBytesPadded(size_t len) const {
  util::Bytes out(len, 0);
  for (size_t i = 0; i < len; ++i) {
    size_t byte_index = i;  // From least significant.
    size_t limb = byte_index / 8;
    size_t shift = (byte_index % 8) * 8;
    uint8_t v = 0;
    if (limb < limbs_.size()) {
      v = static_cast<uint8_t>(limbs_[limb] >> shift);
    }
    out[len - 1 - i] = v;
  }
  return out;
}

util::Result<BigInt> BigInt::FromDecimal(const std::string& s) {
  size_t pos = 0;
  bool neg = false;
  if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
    neg = s[pos] == '-';
    ++pos;
  }
  if (pos == s.size()) {
    return util::InvalidArgument("empty decimal string");
  }
  // Base-10^18 chunking: one bignum multiply-add per eighteen digits —
  // the largest power of ten that fits a 64-bit limb.
  constexpr uint64_t kChunkBase = 1'000'000'000'000'000'000ull;
  constexpr size_t kChunkDigits = 18;
  BigInt out;
  uint64_t chunk = 0;
  size_t chunk_digits = (s.size() - pos) % kChunkDigits;
  if (chunk_digits == 0) {
    chunk_digits = kChunkDigits;
  }
  size_t in_chunk = 0;
  for (; pos < s.size(); ++pos) {
    if (s[pos] < '0' || s[pos] > '9') {
      return util::InvalidArgument("invalid decimal digit");
    }
    chunk = chunk * 10 + static_cast<uint64_t>(s[pos] - '0');
    if (++in_chunk == chunk_digits) {
      out = out * BigInt(kChunkBase) + BigInt(chunk);
      chunk = 0;
      in_chunk = 0;
      chunk_digits = kChunkDigits;
    }
  }
  out.negative_ = neg && !out.is_zero();
  return out;
}

util::Result<BigInt> BigInt::FromHex(const std::string& s) {
  std::string padded = s;
  if (padded.size() % 2 != 0) {
    padded.insert(padded.begin(), '0');
  }
  ASSIGN_OR_RETURN(util::Bytes bytes, util::HexDecode(padded));
  return FromBytes(bytes);
}

std::string BigInt::ToDecimal() const {
  if (is_zero()) {
    return "0";
  }
  // Divide by 10^18 in place, peeling eighteen digits per pass over the
  // limbs; the 128-by-64 step division works on whole limbs directly.
  constexpr uint64_t kChunkBase = 1'000'000'000'000'000'000ull;
  std::vector<uint64_t> v = limbs_;
  std::vector<uint64_t> chunks;
  while (!v.empty()) {
    uint64_t rem = 0;
    for (size_t i = v.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | v[i];
      v[i] = static_cast<uint64_t>(cur / kChunkBase);
      rem = static_cast<uint64_t>(cur % kChunkBase);
    }
    while (!v.empty() && v.back() == 0) {
      v.pop_back();
    }
    chunks.push_back(rem);
  }
  std::string digits;
  if (negative_) {
    digits.push_back('-');
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(chunks.back()));
  digits += buf;
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%018llu",
                  static_cast<unsigned long long>(chunks[i]));
    digits += buf;
  }
  return digits;
}

std::string BigInt::ToHex() const {
  if (is_zero()) {
    return "0";
  }
  std::string out = util::HexEncode(ToBytes());
  // Trim one leading zero nibble if present.
  if (out.size() > 1 && out[0] == '0') {
    out.erase(out.begin());
  }
  if (negative_) {
    out.insert(out.begin(), '-');
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return limbs_.size() * 64 -
         static_cast<size_t>(__builtin_clzll(limbs_.back()));
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 64)) & 1;
}

uint64_t BigInt::Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

uint32_t BigInt::ModU32(uint32_t d) const {
  return static_cast<uint32_t>(ModU64(d));
}

uint64_t BigInt::ModU64(uint64_t d) const {
  assert(d != 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    u128 cur = (static_cast<u128>(rem) << 64) | limbs_[i];
    rem = static_cast<uint64_t>(cur % d);
  }
  return rem;
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

std::vector<uint32_t> BigInt::Limbs32() const {
  std::vector<uint32_t> out;
  out.reserve(limbs_.size() * 2);
  for (uint64_t limb : limbs_) {
    out.push_back(static_cast<uint32_t>(limb));
    out.push_back(static_cast<uint32_t>(limb >> 32));
  }
  while (!out.empty() && out.back() == 0) {
    out.pop_back();
  }
  return out;
}

BigInt BigInt::FromLimbs32(const std::vector<uint32_t>& limbs) {
  BigInt out;
  out.limbs_.reserve((limbs.size() + 1) / 2);
  for (size_t i = 0; i < limbs.size(); i += 2) {
    uint64_t limb = limbs[i];
    if (i + 1 < limbs.size()) {
      limb |= static_cast<uint64_t>(limbs[i + 1]) << 32;
    }
    out.limbs_.push_back(limb);
  }
  out.Normalize();
  return out;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) {
    return negative_ ? -1 : 1;
  }
  int mag = CompareMagnitude(*this, other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) {
    out.negative_ = !out.negative_;
  }
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.Normalize();
  return out;
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  assert(CompareMagnitude(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 diff = static_cast<u128>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) != 0 ? 1 : 0;  // Wrapped past zero.
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    BigInt out = AddMagnitude(*this, other);
    out.negative_ = negative_ && !out.is_zero();
    return out;
  }
  int mag = CompareMagnitude(*this, other);
  if (mag == 0) {
    return BigInt();
  }
  if (mag > 0) {
    BigInt out = SubMagnitude(*this, other);
    out.negative_ = negative_ && !out.is_zero();
    return out;
  }
  BigInt out = SubMagnitude(other, *this);
  out.negative_ = other.negative_ && !out.is_zero();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_zero() || other.is_zero()) {
    return BigInt();
  }
  const size_t an = limbs_.size();
  const size_t bn = other.limbs_.size();
  if (std::min(an, bn) >= kKaratsubaThresholdLimbs) {
    // Karatsuba: split both magnitudes at half the larger operand and
    // trade one of the four half-products for additions.
    const size_t half = (std::max(an, bn) + 1) / 2;
    BigInt a0;
    BigInt a1;
    BigInt b0;
    BigInt b1;
    a0.limbs_.assign(limbs_.begin(),
                     limbs_.begin() + static_cast<long>(std::min(half, an)));
    if (an > half) {
      a1.limbs_.assign(limbs_.begin() + static_cast<long>(half), limbs_.end());
    }
    b0.limbs_.assign(other.limbs_.begin(),
                     other.limbs_.begin() + static_cast<long>(std::min(half, bn)));
    if (bn > half) {
      b1.limbs_.assign(other.limbs_.begin() + static_cast<long>(half),
                       other.limbs_.end());
    }
    a0.Normalize();
    b0.Normalize();
    BigInt z0 = a0 * b0;
    BigInt z2 = a1 * b1;
    BigInt z1 = (a0 + a1) * (b0 + b1) - z0 - z2;
    BigInt out = z0 + (z1 << (64 * half)) + (z2 << (128 * half));
    out.negative_ = negative_ != other.negative_;
    return out;
  }
  BigInt out;
  out.limbs_.assign(an + bn, 0);
  MulSchoolbook(limbs_.data(), an, other.limbs_.data(), bn, out.limbs_.data());
  out.negative_ = negative_ != other.negative_;
  out.Normalize();
  return out;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (is_zero() || bits == 0) {
    return *this;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u128 v = static_cast<u128>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint64_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint64_t>(v >> 64);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (is_zero() || bits == 0) {
    return *this;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) {
    return BigInt();
  }
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.Normalize();
  return out;
}

// Knuth algorithm D (vol. 2, 4.3.1) on 64-bit limbs; the q_hat estimate
// and refinement use 128-bit intermediates where the 32-bit version used
// 64-bit ones.
void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient, BigInt* remainder) {
  assert(!b.is_zero() && "division by zero");
  int mag = CompareMagnitude(a, b);
  if (mag < 0) {
    if (quotient) {
      *quotient = BigInt();
    }
    if (remainder) {
      *remainder = a;
    }
    return;
  }

  // Fast path: single-limb divisor.
  if (b.limbs_.size() == 1) {
    uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    q.negative_ = a.negative_ != b.negative_;
    q.Normalize();
    BigInt r(rem);
    r.negative_ = a.negative_ && !r.is_zero();
    if (quotient) {
      *quotient = q;
    }
    if (remainder) {
      *remainder = r;
    }
    return;
  }

  // Normalize: shift so that the top limb of the divisor has its high bit set.
  size_t shift = static_cast<size_t>(__builtin_clzll(b.limbs_.back()));
  BigInt u = a.Abs() << shift;
  BigInt v = b.Abs() << shift;
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has n + m + 1 limbs.

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1], clamped to B-1 so
    // the two-limb refinement below cannot overflow 128 bits.
    const uint64_t vtop = v.limbs_[n - 1];
    u128 numerator =
        (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    uint64_t q_hat;
    u128 r_hat;
    if (u.limbs_[j + n] >= vtop) {
      q_hat = ~uint64_t{0};
      r_hat = numerator - static_cast<u128>(q_hat) * vtop;
    } else {
      q_hat = static_cast<uint64_t>(numerator / vtop);
      r_hat = numerator % vtop;
    }
    while ((r_hat >> 64) == 0 &&
           static_cast<u128>(q_hat) * v.limbs_[n - 2] >
               ((r_hat << 64) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += vtop;
    }

    // u[j..j+n] -= q_hat * v.
    uint64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 product = static_cast<u128>(q_hat) * v.limbs_[i] + carry;
      carry = static_cast<uint64_t>(product >> 64);
      u128 diff = static_cast<u128>(u.limbs_[i + j]) -
                  static_cast<uint64_t>(product) - borrow;
      u.limbs_[i + j] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
    u128 diff = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    bool negative = (diff >> 64) != 0;
    u.limbs_[j + n] = static_cast<uint64_t>(diff);

    if (negative) {
      // q_hat was one too large: add back v.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<uint64_t>(sum);
        add_carry = static_cast<uint64_t>(sum >> 64);
      }
      u.limbs_[j + n] += add_carry;
    }
    q.limbs_[j] = q_hat;
  }

  u.limbs_.resize(n);
  u.Normalize();
  BigInt r = u >> shift;

  q.negative_ = a.negative_ != b.negative_;
  q.Normalize();
  r.negative_ = a.negative_ && !r.is_zero();
  if (quotient) {
    *quotient = q;
  }
  if (remainder) {
    *remainder = r;
  }
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

BigInt BigInt::Mod(const BigInt& m) const {
  assert(!m.is_negative() && !m.is_zero());
  BigInt r = *this % m;
  if (r.is_negative()) {
    r = r + m;
  }
  return r;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.is_negative());
  if (m.is_odd()) {
    return MontgomeryCtx(m).ModExp(base, exp);
  }
  return ModExpNaive(base, exp, m);
}

BigInt BigInt::ModExpNaive(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.is_negative());
  BigInt result(1);
  BigInt b = base.Mod(m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.Bit(i)) {
      result = (result * b) % m;
    }
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  // Binary GCD: only shifts and subtractions, no DivMod per step.
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  if (x.is_zero()) {
    return y;
  }
  if (y.is_zero()) {
    return x;
  }
  auto trailing_zeros = [](const BigInt& v) {
    size_t bits = 0;
    size_t limb = 0;
    while (v.limbs_[limb] == 0) {
      ++limb;
      bits += 64;
    }
    return bits + static_cast<size_t>(__builtin_ctzll(v.limbs_[limb]));
  };
  const size_t xz = trailing_zeros(x);
  const size_t yz = trailing_zeros(y);
  const size_t common = std::min(xz, yz);
  x = x >> xz;
  y = y >> yz;
  // Both odd from here on; gcd(x, y) = gcd(|x - y| / 2^k, min(x, y)).
  for (;;) {
    if (CompareMagnitude(x, y) < 0) {
      std::swap(x, y);
    }
    x = SubMagnitude(x, y);
    if (x.is_zero()) {
      return y << common;
    }
    x = x >> trailing_zeros(x);
  }
}

util::Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid on (a mod m, m).
  BigInt r0 = m;
  BigInt r1 = a.Mod(m);
  BigInt t0(0);
  BigInt t1(1);
  while (!r1.is_zero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = r1;
    r1 = r2;
    BigInt t2 = t0 - q * t1;
    t0 = t1;
    t1 = t2;
  }
  if (r0 != BigInt(1)) {
    return util::InvalidArgument("not invertible");
  }
  return t0.Mod(m);
}

int BigInt::Jacobi(const BigInt& a_in, const BigInt& n_in) {
  assert(n_in > BigInt(0) && n_in.is_odd());
  BigInt a = a_in.Mod(n_in);
  BigInt n = n_in;
  int result = 1;
  while (!a.is_zero()) {
    while (a.is_even()) {
      a = a >> 1;
      uint64_t n_mod8 = n.Low64() & 7;
      if (n_mod8 == 3 || n_mod8 == 5) {
        result = -result;
      }
    }
    std::swap(a, n);
    if ((a.Low64() & 3) == 3 && (n.Low64() & 3) == 3) {
      result = -result;
    }
    a = a.Mod(n);
  }
  if (n == BigInt(1)) {
    return result;
  }
  return 0;
}

BigInt BigInt::Random(Prng* prng, size_t bits) {
  assert(bits > 0);
  size_t bytes = (bits + 7) / 8;
  util::Bytes raw = prng->RandomBytes(bytes);
  // Clear excess top bits, then set the top bit for exact width.
  size_t excess = bytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> excess);
  raw[0] |= static_cast<uint8_t>(1 << ((bits - 1) % 8));
  return FromBytes(raw);
}

BigInt BigInt::RandomBelow(Prng* prng, const BigInt& bound) {
  assert(bound > BigInt(0));
  size_t bits = bound.BitLength();
  for (;;) {
    size_t bytes = (bits + 7) / 8;
    util::Bytes raw = prng->RandomBytes(bytes);
    size_t excess = bytes * 8 - bits;
    raw[0] &= static_cast<uint8_t>(0xff >> excess);
    BigInt v = FromBytes(raw);
    if (v < bound) {
      return v;
    }
  }
}

namespace {

// Primes below 4096, for sieving candidate increments (built on first use).
const std::vector<uint32_t>& SievePrimes() {
  static const std::vector<uint32_t>* primes = [] {
    constexpr uint32_t kLimit = 4096;
    std::vector<bool> composite(kLimit, false);
    auto* out = new std::vector<uint32_t>();
    for (uint32_t i = 2; i < kLimit; ++i) {
      if (composite[i]) {
        continue;
      }
      out->push_back(i);
      for (uint32_t j = i * i; j < kLimit; j += i) {
        composite[j] = true;
      }
    }
    return out;
  }();
  return *primes;
}

// a^{-1} mod p for prime p and a not divisible by p (Fermat).
uint32_t InverseModPrime(uint32_t a, uint32_t p) {
  uint64_t result = 1;
  uint64_t base = a % p;
  uint32_t e = p - 2;
  while (e) {
    if (e & 1) {
      result = result * base % p;
    }
    base = base * base % p;
    e >>= 1;
  }
  return static_cast<uint32_t>(result);
}

}  // namespace

bool BigInt::IsProbablePrime(const BigInt& n, Prng* prng, int rounds) {
  if (n < BigInt(2)) {
    return false;
  }
  static const uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31,
                                          37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                                          83, 89, 97, 101, 103, 107, 109, 113};
  for (uint32_t p : kSmallPrimes) {
    if (n.limbs_.size() == 1 && n.limbs_[0] == p) {
      return true;
    }
    if (n.ModU32(p) == 0) {
      return false;
    }
  }

  // n - 1 = d * 2^s with d odd.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }

  // n is odd here (2 is in the trial-division list), so all the witness
  // exponentiations can share one Montgomery context.
  MontgomeryCtx ctx(n);
  const MontgomeryCtx::Residue& one = ctx.One();
  const MontgomeryCtx::Residue minus_one = ctx.ToMont(n_minus_1);
  // x = a^d already computed; finish the round: square up to s-1 times
  // looking for -1.  Returns true if a witnesses n composite.
  auto is_witness = [&](MontgomeryCtx::Residue x) {
    if (x == one || x == minus_one) {
      return false;
    }
    for (size_t i = 1; i < s; ++i) {
      x = ctx.Mul(x, x);
      if (x == minus_one) {
        return false;
      }
    }
    return true;
  };

  // First witness alone: it kills essentially every composite the sieve
  // let through, so the batch below only ever runs for actual primes.
  BigInt a = RandomBelow(prng, n - BigInt(3)) + BigInt(2);  // a in [2, n-2].
  if (is_witness(ctx.Exp(ctx.ToMont(a), d))) {
    return false;
  }
  if (rounds <= 1) {
    return true;
  }

  // Remaining witnesses share the exponent d: compile its window
  // schedule once and replay it per base (MontgomeryCtx::ExpBatch).
  std::vector<MontgomeryCtx::Residue> bases;
  bases.reserve(static_cast<size_t>(rounds - 1));
  for (int round = 1; round < rounds; ++round) {
    BigInt w = RandomBelow(prng, n - BigInt(3)) + BigInt(2);
    bases.push_back(ctx.ToMont(w));
  }
  for (MontgomeryCtx::Residue& x : ctx.ExpBatch(bases, d)) {
    if (is_witness(std::move(x))) {
      return false;
    }
  }
  return true;
}

BigInt BigInt::GeneratePrime(Prng* prng, size_t bits, uint32_t residue, uint32_t modulus) {
  assert(bits >= 16);
  const std::vector<uint32_t>& primes = SievePrimes();
  const uint32_t step = modulus != 0 ? modulus : 2;
  constexpr size_t kSpan = 1024;  // Candidates sieved per random base.
  for (;;) {
    BigInt candidate = Random(prng, bits);
    if (modulus != 0) {
      // Adjust to the requested residue class.
      uint64_t current = candidate.ModU32(modulus);
      uint64_t delta = (residue + modulus - current) % modulus;
      candidate = candidate + BigInt(delta);
    } else if (candidate.is_even()) {
      candidate = candidate + BigInt(1);
    }
    if (candidate.BitLength() != bits) {
      continue;
    }

    // Sieve the arithmetic progression candidate + k*step: one small
    // division per prime replaces a trial-division pass per candidate,
    // so Miller–Rabin only ever sees survivors.
    std::vector<bool> composite(kSpan, false);
    bool base_dead = false;
    for (uint32_t p : primes) {
      const uint32_t r = candidate.ModU32(p);
      const uint32_t sp = step % p;
      if (sp == 0) {
        // Every candidate in the progression has the same residue mod p.
        if (r == 0) {
          base_dead = true;
          break;
        }
        continue;
      }
      const auto k0 = static_cast<uint32_t>(
          (static_cast<uint64_t>(p - r) * InverseModPrime(sp, p)) % p);
      for (size_t k = k0; k < kSpan; k += p) {
        composite[k] = true;
      }
    }
    if (base_dead) {
      continue;
    }

    for (size_t k = 0; k < kSpan; ++k) {
      if (composite[k]) {
        continue;
      }
      BigInt cand = candidate + BigInt(static_cast<uint64_t>(k) * step);
      if (cand.BitLength() != bits) {
        break;  // Ran past the requested width; draw a fresh base.
      }
      if (IsProbablePrime(cand, prng)) {
        return cand;
      }
    }
  }
}

}  // namespace crypto
