#include "src/sfs/audit.h"

#include "src/obs/span.h"
#include "src/xdr/xdr.h"

namespace sfs {

ServerAuditor::ServerAuditor(sim::Clock* clock, const sim::CostModel* costs,
                             obs::Registry* registry, Options options)
    : clock_(clock),
      costs_(costs),
      registry_(registry),
      options_(std::move(options)),
      log_(options_.genesis_key, obs::AuditLog::Options{options_.batch_records}),
      log_disk_(clock, sim::DiskProfile::Ibm18Es(), registry),
      m_records_(registry->GetCounter("audit.records")),
      m_batches_(registry->GetCounter("audit.batches")),
      m_bytes_(registry->GetCounter("audit.bytes")),
      m_seal_ns_(registry->GetHistogram("audit.seal_ns")) {}

void ServerAuditor::Record(obs::AuditKind kind, uint64_t connection_id,
                           uint32_t wire_seqno, uint32_t proc, uint32_t verdict,
                           uint64_t fh_digest) {
  obs::AuditRecord record;
  record.time_ns = clock_->now_ns();
  record.connection_id = connection_id;
  record.wire_seqno = wire_seqno;
  record.kind = static_cast<uint32_t>(kind);
  record.proc = proc;
  record.verdict = verdict;
  record.fh_digest = fh_digest;
  obs::SpanContext ctx = registry_->spans().current();
  record.trace_id = ctx.trace_id;
  record.span_id = ctx.span_id;
  obs::AuditLog::AppendInfo info = log_.Append(record);
  m_records_->Increment();
  // Folding the record into the running inner hash is pure SHA-1
  // streaming; the per-message MAC overhead is paid once per batch, at
  // seal (that amortization is the whole point of batching).
  clock_->Advance(info.hashed_bytes * 1'000'000'000 / costs_->crypto_bytes_per_sec,
                  obs::TimeCategory::kCrypto);
  if (log_.open_records() >= options_.batch_records) {
    SealAccounted(/*finalize=*/false);
  }
}

void ServerAuditor::SealAccounted(bool finalize) {
  const uint64_t start_ns = clock_->now_ns();
  const uint64_t batches_before = log_.batches_sealed();
  obs::AuditLog::SealInfo info = finalize ? log_.Finalize() : log_.Seal();
  if (info.sealed_bytes == 0) {
    return;
  }
  // One HMAC finalization for the whole batch...
  clock_->Advance(costs_->crypto_per_message_ns, obs::TimeCategory::kCrypto);
  const uint64_t crypto_end_ns = clock_->now_ns();
  // ...then the sealed batch goes to the journal's disk durably.
  log_disk_.ChargeAppend(info.sealed_bytes);
  const uint64_t end_ns = clock_->now_ns();

  m_batches_->Increment(log_.batches_sealed() - batches_before);
  m_bytes_->Increment(info.sealed_bytes);
  m_seal_ns_->Record(end_ns - start_ns);
  obs::SpanCollector& spans = registry_->spans();
  if (spans.enabled() && end_ns != start_ns) {
    obs::Span span;
    span.name = "audit.seal";
    span.layer = "server";
    span.start_ns = start_ns;
    span.end_ns = end_ns;
    span.cat_ns[static_cast<size_t>(obs::TimeCategory::kCrypto)] =
        crypto_end_ns - start_ns;
    span.cat_ns[static_cast<size_t>(obs::TimeCategory::kDisk)] = end_ns - crypto_end_ns;
    span.wire_bytes = info.sealed_bytes;
    spans.RecordClosed(std::move(span), spans.current());
  }
}

void ServerAuditor::Flush() { SealAccounted(/*finalize=*/false); }

void ServerAuditor::Finalize() {
  if (!log_.finalized()) {
    SealAccounted(/*finalize=*/true);
  }
}

uint64_t AuditFhDigestOfNfsArgs(const util::Bytes& args) {
  xdr::Decoder dec(args);
  auto authno = dec.GetUint32();
  if (!authno.ok()) {
    return 0;
  }
  auto fh = dec.GetOpaque();
  if (!fh.ok() || fh.value().empty()) {
    return 0;
  }
  return obs::AuditDigest(fh.value());
}

bool AuditNfsWriteIsStable(const util::Bytes& args) {
  xdr::Decoder dec(args);
  auto authno = dec.GetUint32();
  if (!authno.ok()) {
    return false;
  }
  auto fh = dec.GetOpaque();
  if (!fh.ok()) {
    return false;
  }
  auto offset = dec.GetUint64();
  if (!offset.ok()) {
    return false;
  }
  auto stable = dec.GetBool();
  return stable.ok() && stable.value();
}

}  // namespace sfs
