#include "src/sfs/revocation.h"

#include "src/xdr/xdr.h"

namespace sfs {

util::Bytes PathRevokeCert::SignedBody(const std::string& location,
                                       const std::optional<SelfCertifyingPath>& forward_to) {
  xdr::Encoder enc;
  enc.PutString("PathRevoke");
  enc.PutString(location);
  enc.PutBool(forward_to.has_value());  // NULL marker distinguishes revocations.
  if (forward_to.has_value()) {
    enc.PutString(forward_to->location);
    enc.PutOpaque(forward_to->host_id);
  }
  return enc.Take();
}

PathRevokeCert PathRevokeCert::MakeRevocation(const crypto::RabinPrivateKey& key,
                                              const std::string& location) {
  PathRevokeCert cert;
  cert.key_ = key.public_key();
  cert.location_ = location;
  cert.signature_ = key.Sign(SignedBody(location, std::nullopt));
  return cert;
}

PathRevokeCert PathRevokeCert::MakeForwardingPointer(const crypto::RabinPrivateKey& key,
                                                     const std::string& location,
                                                     const SelfCertifyingPath& target) {
  PathRevokeCert cert;
  cert.key_ = key.public_key();
  cert.location_ = location;
  cert.forward_to_ = target;
  cert.signature_ = key.Sign(SignedBody(location, cert.forward_to_));
  return cert;
}

util::Status PathRevokeCert::Verify() const {
  if (location_.empty()) {
    return util::SecurityError("revocation certificate has no location");
  }
  return key_.Verify(SignedBody(location_, forward_to_), signature_);
}

SelfCertifyingPath PathRevokeCert::RevokedPath() const {
  return SelfCertifyingPath::For(location_, key_);
}

util::Bytes PathRevokeCert::Serialize() const {
  xdr::Encoder enc;
  enc.PutOpaque(key_.Serialize());
  enc.PutString(location_);
  enc.PutBool(forward_to_.has_value());
  if (forward_to_.has_value()) {
    enc.PutString(forward_to_->location);
    enc.PutOpaque(forward_to_->host_id);
  }
  enc.PutOpaque(signature_);
  return enc.Take();
}

util::Result<PathRevokeCert> PathRevokeCert::Deserialize(const util::Bytes& bytes) {
  xdr::Decoder dec(bytes);
  PathRevokeCert cert;
  ASSIGN_OR_RETURN(util::Bytes key_bytes, dec.GetOpaque());
  ASSIGN_OR_RETURN(cert.key_, crypto::RabinPublicKey::Deserialize(key_bytes));
  ASSIGN_OR_RETURN(cert.location_, dec.GetString());
  ASSIGN_OR_RETURN(bool has_target, dec.GetBool());
  if (has_target) {
    SelfCertifyingPath target;
    ASSIGN_OR_RETURN(target.location, dec.GetString());
    ASSIGN_OR_RETURN(target.host_id, dec.GetOpaque());
    if (target.host_id.size() != kHostIdSize) {
      return util::InvalidArgument("forwarding target HostID has wrong length");
    }
    cert.forward_to_ = std::move(target);
  }
  ASSIGN_OR_RETURN(cert.signature_, dec.GetOpaque());
  if (!dec.AtEnd()) {
    return util::InvalidArgument("trailing bytes in revocation certificate");
  }
  return cert;
}

}  // namespace sfs
