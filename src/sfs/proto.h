// SFS connection-level protocol constants.
//
// A connection carries framed messages {type, payload}.  File-server
// connections run: Connect -> Negotiate -> a stream of Encrypted messages
// (each a sealed RPC).  Authserver connections (sfskey's SRP password
// protocol, §2.4) run: SrpStart -> SrpFinish.  The server master hands
// each connection to the right subsystem by ServiceType, mirroring sfssd
// (§3.2).
#ifndef SFS_SRC_SFS_PROTO_H_
#define SFS_SRC_SFS_PROTO_H_

#include <cstdint>

namespace sfs {

enum class ServiceType : uint32_t {
  kFileServer = 1,
  kAuthServer = 2,
};

enum MsgType : uint32_t {
  kMsgConnect = 1,
  kMsgNegotiate = 2,
  kMsgEncrypted = 3,
  kMsgSrpStart = 4,
  kMsgSrpFinish = 5,
};

enum ConnectResult : uint32_t {
  kConnectOk = 0,
  kConnectRevoked = 1,   // Reply carries a self-authenticating certificate.
  kConnectUnknown = 2,   // Server does not serve this (Location, HostID).
};

// Protocol dialect served for a (Location, HostID), announced in the
// connect reply.  sfssd hands connections to the matching subsidiary
// daemon (paper §3.2: "one can add new file system protocols to SFS
// without changing any of the existing software").
enum Dialect : uint32_t {
  kDialectReadWrite = 1,
  kDialectReadOnly = 2,
};

// The control program multiplexed on the secure channel alongside NFS.
inline constexpr uint32_t kSfsCtlProgram = 344400;
enum CtlProc : uint32_t {
  kCtlGetRoot = 1,  // {} -> {encrypted root file handle}
  kCtlLogin = 2,    // {seqno, AuthMsg} -> {authno}
};

// Names for the control program's procedures, for metric names and the
// RPC trace pretty-printer.  Covers the libsfs ID-mapping procedures
// declared in idmap.h (numbers 10/11) without depending on that header.
inline const char* CtlProcName(uint32_t proc) {
  switch (proc) {
    case kCtlGetRoot:
      return "GETROOT";
    case kCtlLogin:
      return "LOGIN";
    case 10:  // kCtlIdToName (idmap.h)
      return "IDTONAME";
    case 11:  // kCtlNameToId (idmap.h)
      return "NAMETOID";
    default:
      return "UNKNOWN";
  }
}

// Authentication number reserved for anonymous access (paper §3.1.2).
inline constexpr uint32_t kAnonymousAuthno = 0;

// Sequence numbers more than this far behind the maximum seen are
// rejected ("the server accepts out-of-order sequence numbers within a
// reasonable window").
inline constexpr uint32_t kSeqnoWindow = 64;

// Replies the server connection retains for at-most-once execution of
// retransmitted channel requests (keyed by the wire-level sequence number
// that prefixes each kMsgEncrypted payload).  With a synchronous client
// only the most recent entry is ever replayed, but a window keeps the
// discipline robust to future pipelining.
inline constexpr uint32_t kDrcWindow = 64;

}  // namespace sfs

#endif  // SFS_SRC_SFS_PROTO_H_
