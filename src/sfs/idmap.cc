#include "src/sfs/idmap.h"

namespace sfs {

std::string FormatRemoteUser(uint32_t uid, const LocalIdTable& local,
                             const RemoteIdLookup& remote) {
  std::optional<std::string> remote_name = remote(uid);
  if (!remote_name.has_value()) {
    return std::to_string(uid);
  }
  // Same name and same uid on both sides: no qualifier needed.
  auto local_uid = local.UidFor(*remote_name);
  if (local_uid.has_value() && *local_uid == uid) {
    return *remote_name;
  }
  return "%" + *remote_name;
}

}  // namespace sfs
