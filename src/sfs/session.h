// SFS secure-channel cryptography: the key-negotiation protocol of
// Figure 3 and the per-message seal/open discipline of §3.1.3.
//
// Negotiation (client C, server S, Location/HostID from the pathname):
//   1. C -> S: Location, HostID                  (connect request)
//   2. S -> C: K_S                               (public key; C checks HostID)
//   3. C -> S: K_C, {kc1}_KS, {kc2}_KS           (K_C short-lived, anonymous)
//   4. S -> C: {ks1}_KC, {ks2}_KC
// Session keys (quoted strings are XDR-marshaled constants):
//   kcs = SHA-1("KCS", K_S, kc1, K_C, ks1)       (client->server direction)
//   ksc = SHA-1("KSC", K_S, kc2, K_C, ks2)       (server->client direction)
//
// Forward secrecy: the server's key halves travel under the ephemeral
// K_C, which clients "discard and regenerate at regular intervals", so a
// later compromise of K_S's private half cannot decrypt recorded traffic.
//
// Channel discipline: each direction runs one ARC4 stream keyed by its
// session key.  Per message, 32 bytes are drawn from the stream to key a
// SHA-1 MAC (never used as encryption keystream); the MAC covers length
// and plaintext; then length || plaintext || MAC are all encrypted.
#ifndef SFS_SRC_SFS_SESSION_H_
#define SFS_SRC_SFS_SESSION_H_

#include <memory>
#include <string>

#include "src/crypto/arc4.h"
#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/sfs/pathname.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sfs {

// One direction of the secure channel.
class ChannelCipher {
 public:
  explicit ChannelCipher(const util::Bytes& session_key);

  // Seals one message: draws the per-message MAC key, MACs length +
  // plaintext, encrypts everything.
  util::Bytes Seal(const util::Bytes& plaintext);

  // Opens a sealed message; tampering, truncation, replay, or reordering
  // breaks the MAC and yields kSecurityError.  A failed Open restores the
  // stream to its prior position, so the caller may discard the bad
  // message and open a later (retransmitted) copy of the expected one —
  // required for loss masking, where a stale reply must not poison the
  // channel.  Whether a failure is fatal is the caller's policy: the
  // server still kills the connection on any bad message.
  util::Result<util::Bytes> Open(const util::Bytes& sealed);

 private:
  crypto::Arc4 stream_;
};

// Both directions plus the session identity material.
struct SessionKeys {
  util::Bytes kcs;  // client -> server
  util::Bytes ksc;  // server -> client

  // SessionID = SHA-1("SessionInfo", ksc, kcs), paper §3.1.2.
  util::Bytes SessionId() const;
};

// AuthInfo/AuthID for user authentication (paper §3.1.2):
//   AuthInfo = {"AuthInfo", "FS", Location, HostID, SessionID}
//   AuthID   = SHA-1(AuthInfo)
util::Bytes MakeAuthInfo(const SelfCertifyingPath& path, const util::Bytes& session_id);
util::Bytes MakeAuthId(const util::Bytes& auth_info);

// Derives both session keys from the four exchanged key halves.
SessionKeys DeriveSessionKeys(const crypto::RabinPublicKey& server_key,
                              const crypto::RabinPublicKey& client_key,
                              const util::Bytes& kc1, const util::Bytes& kc2,
                              const util::Bytes& ks1, const util::Bytes& ks2);

// Client side of the Figure 3 negotiation, computed against a server
// public key that has already been checked against the HostID.
struct ClientNegotiation {
  crypto::RabinPrivateKey ephemeral_key;  // K_C
  util::Bytes kc1;
  util::Bytes kc2;
  util::Bytes enc_kc1;  // {kc1}_KS
  util::Bytes enc_kc2;  // {kc2}_KS

  static util::Result<ClientNegotiation> Start(const crypto::RabinPublicKey& server_key,
                                               crypto::Prng* prng, size_t ephemeral_bits);

  // Step 4: decrypt the server's halves and derive session keys.
  util::Result<SessionKeys> Finish(const crypto::RabinPublicKey& server_key,
                                   const util::Bytes& enc_ks1,
                                   const util::Bytes& enc_ks2) const;
};

// Server side: processes step 3, produces step 4.
struct ServerNegotiation {
  SessionKeys keys;
  util::Bytes enc_ks1;
  util::Bytes enc_ks2;

  static util::Result<ServerNegotiation> Respond(const crypto::RabinPrivateKey& server_key,
                                                 const util::Bytes& client_pubkey_bytes,
                                                 const util::Bytes& enc_kc1,
                                                 const util::Bytes& enc_kc2,
                                                 crypto::Prng* prng);
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_SESSION_H_
