// ServerAuditor: wires the tamper-evident journal (src/obs/auditlog.h)
// into the SFS server's virtual-time and observability machinery.
//
// Every dispatched RPC, connect verdict, and revocation event appends
// one record carrying the current obs::SpanContext, so a surviving
// record is forensically attributable to its Perfetto trace.  Costs are
// honest: each record charges the crypto category for the bytes folded
// into the running MAC, and each seal charges one HMAC finalization
// plus a durable sequential append on a disk dedicated to the journal
// (batching keeps the fig8/fig9 write-path overhead under a few
// percent; bench/audit_overhead proves it).
#ifndef SFS_SRC_SFS_AUDIT_H_
#define SFS_SRC_SFS_AUDIT_H_

#include <cstdint>
#include <memory>

#include "src/obs/auditlog.h"
#include "src/obs/metrics.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/util/bytes.h"

namespace sfs {

class ServerAuditor {
 public:
  struct Options {
    uint32_t batch_records = 64;  // Ratchet step (SealFS nratchet).
    util::Bytes genesis_key;      // Seeds the key ratchet; the verifier
                                  // replays from these bytes.
  };

  ServerAuditor(sim::Clock* clock, const sim::CostModel* costs,
                obs::Registry* registry, Options options);

  // Appends one record stamped with the virtual clock and the ambient
  // span context; seals automatically every batch_records records.
  void Record(obs::AuditKind kind, uint64_t connection_id, uint32_t wire_seqno,
              uint32_t proc, uint32_t verdict, uint64_t fh_digest);

  // Explicit flush: seals the open batch (connection teardown / epoch
  // close).  No-op when the batch is empty.
  void Flush();

  // Seals and appends the terminal batch, closing the journal for
  // offline verification (artifact emission / shutdown).
  void Finalize();

  const obs::AuditLog& log() const { return log_; }
  const util::Bytes& genesis_key() const { return options_.genesis_key; }

 private:
  void SealAccounted(bool finalize);

  sim::Clock* clock_;
  const sim::CostModel* costs_;
  obs::Registry* registry_;
  Options options_;
  obs::AuditLog log_;
  sim::Disk log_disk_;  // The journal's own spindle: appends stream.

  obs::Counter* m_records_;
  obs::Counter* m_batches_;
  obs::Counter* m_bytes_;
  obs::Histogram* m_seal_ns_;
};

// FNV-1a digest of the file handle inside SFS-dialect NFS args (the
// authno-prefixed opaque); 0 when the args carry no handle.
uint64_t AuditFhDigestOfNfsArgs(const util::Bytes& args);

// High bit of an audit record's verdict field: set on WRITE records
// whose arguments requested stable (FILE_SYNC) semantics and on every
// COMMIT record.  The offline verifier can thus separate durable
// commitments from write-behind UNSTABLE traffic without a journal
// layout change; the low 31 bits still carry the status code.
inline constexpr uint32_t kAuditVerdictStableBit = 0x80000000u;

// True when SFS-dialect NFS WRITE args carry stable=true.  (Args are
// authno, fh, offset, stable, data — only called for kProcWrite.)
bool AuditNfsWriteIsStable(const util::Bytes& args);

}  // namespace sfs

#endif  // SFS_SRC_SFS_AUDIT_H_
