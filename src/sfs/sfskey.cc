#include "src/sfs/sfskey.h"

#include "src/crypto/blowfish.h"
#include "src/crypto/srp.h"
#include "src/sfs/proto.h"
#include "src/sfs/session.h"
#include "src/xdr/xdr.h"

namespace sfs {
namespace {

util::Bytes SealKeyFor(const std::string& password, const util::Bytes& salt, unsigned cost) {
  // 24-byte eksblowfish output keys the sealing cipher directly.
  return crypto::EksBlowfishHash(cost, salt, util::BytesOf(password));
}

}  // namespace

util::Bytes EncryptPrivateKey(const crypto::RabinPrivateKey& key, const std::string& password,
                              unsigned cost, crypto::Prng* prng) {
  util::Bytes salt = prng->RandomBytes(16);
  ChannelCipher seal(SealKeyFor(password, salt, cost));
  xdr::Encoder out;
  out.PutFixedOpaque(salt);
  out.PutUint32(cost);
  out.PutOpaque(seal.Seal(key.Serialize()));
  return out.Take();
}

util::Result<crypto::RabinPrivateKey> DecryptPrivateKey(const util::Bytes& blob,
                                                        const std::string& password) {
  xdr::Decoder dec(blob);
  ASSIGN_OR_RETURN(util::Bytes salt, dec.GetFixedOpaque(16));
  ASSIGN_OR_RETURN(uint32_t cost, dec.GetUint32());
  if (cost > 31) {
    return util::InvalidArgument("implausible eksblowfish cost");
  }
  ASSIGN_OR_RETURN(util::Bytes sealed, dec.GetOpaque());
  ChannelCipher open(SealKeyFor(password, salt, cost));
  auto plain = open.Open(sealed);
  if (!plain.ok()) {
    return util::SecurityError("wrong password (private key MAC mismatch)");
  }
  return crypto::RabinPrivateKey::Deserialize(plain.value());
}

auth::PrivateUserRecord MakeSrpRecord(const std::string& password, unsigned cost,
                                      const crypto::RabinPrivateKey& key,
                                      crypto::Prng* prng) {
  auth::PrivateUserRecord record;
  record.srp = crypto::MakeSrpVerifier(crypto::DefaultSrpParams(), password, cost, prng);
  record.encrypted_private_key = EncryptPrivateKey(key, password, cost, prng);
  return record;
}

util::Result<SfsKeyFetch> SrpFetchKey(sim::Clock* clock, SfsServer* server,
                                      sim::LinkProfile profile, const std::string& user,
                                      const std::string& password, crypto::Prng* prng) {
  SfsServer::Accepted accepted = server->CreateConnection();
  sim::Link link(clock, profile, accepted.connection.get());
  crypto::SrpClient srp(crypto::DefaultSrpParams(), prng);

  // Message 1: user name + SRP A.
  xdr::Encoder start;
  start.PutString(user);
  start.PutOpaque(srp.A().ToBytes());
  xdr::Encoder framed1;
  framed1.PutUint32(kMsgSrpStart);
  framed1.PutOpaque(start.Take());
  ASSIGN_OR_RETURN(util::Bytes reply1, link.Roundtrip(framed1.Take()));

  xdr::Decoder dec1(reply1);
  ASSIGN_OR_RETURN(uint32_t type1, dec1.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes payload1, dec1.GetOpaque());
  if (type1 != kMsgSrpStart) {
    return util::SecurityError("unexpected SRP reply");
  }
  xdr::Decoder p1(payload1);
  ASSIGN_OR_RETURN(util::Bytes salt, p1.GetOpaque());
  ASSIGN_OR_RETURN(uint32_t cost, p1.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes b_bytes, p1.GetOpaque());
  RETURN_IF_ERROR(
      srp.ProcessServerReply(password, salt, cost, crypto::BigInt::FromBytes(b_bytes)));

  // Message 2: client proof; reply carries server proof + sealed secrets.
  xdr::Encoder finish;
  finish.PutOpaque(srp.ClientProof());
  xdr::Encoder framed2;
  framed2.PutUint32(kMsgSrpFinish);
  framed2.PutOpaque(finish.Take());
  ASSIGN_OR_RETURN(util::Bytes reply2, link.Roundtrip(framed2.Take()));

  xdr::Decoder dec2(reply2);
  ASSIGN_OR_RETURN(uint32_t type2, dec2.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes payload2, dec2.GetOpaque());
  if (type2 != kMsgSrpFinish) {
    return util::SecurityError("unexpected SRP reply");
  }
  xdr::Decoder p2(payload2);
  ASSIGN_OR_RETURN(util::Bytes m2, p2.GetOpaque());
  ASSIGN_OR_RETURN(util::Bytes sealed, p2.GetOpaque());
  RETURN_IF_ERROR(srp.VerifyServerProof(m2));

  ChannelCipher open(srp.SessionKey());
  ASSIGN_OR_RETURN(util::Bytes secret, open.Open(sealed));
  xdr::Decoder sec(secret);
  SfsKeyFetch out;
  ASSIGN_OR_RETURN(out.self_certifying_path, sec.GetString());
  ASSIGN_OR_RETURN(util::Bytes encrypted_key, sec.GetOpaque());
  ASSIGN_OR_RETURN(out.private_key, DecryptPrivateKey(encrypted_key, password));
  return out;
}

util::Status SrpChangePassword(sim::Clock* clock, SfsServer* server, sim::LinkProfile profile,
                               const std::string& user, const std::string& old_password,
                               const std::string& new_password, unsigned cost,
                               crypto::Prng* prng) {
  // Prove the old password and recover the private key in one step.
  ASSIGN_OR_RETURN(SfsKeyFetch fetch,
                   SrpFetchKey(clock, server, profile, user, old_password, prng));
  // Derive everything fresh from the new password.  In the real system
  // this update travels over the SRP-negotiated channel; the in-process
  // authserver call models the server side of that RPC.
  return server->authserver()->UpdatePrivateRecord(
      user, MakeSrpRecord(new_password, cost, fetch.private_key, prng));
}

}  // namespace sfs
