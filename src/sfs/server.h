// The SFS server: sfssd (connection hand-off) + sfsrwsd (the read-write
// file server) in one object, per Figure 2 of the paper.
//
// Each accepted connection is a ServerConnection state machine:
//   Connect    — client names a (Location, HostID); the server answers
//                with its public key, or a revocation certificate.
//   Negotiate  — Figure 3 key exchange; establishes the session ciphers.
//   Encrypted  — sealed RPCs: the NFS3 dialect (handles encrypted, every
//                attribute carrying a lease) and the control program
//                (root handle, user login).
// Authserver-service connections instead speak the SRP password protocol
// on behalf of sfskey (§2.4).
//
// A server may hold several identities (Location, private key) at once,
// which is how the paper serves "two copies of the same file system under
// different self-certifying pathnames" during a key or name transition.
#ifndef SFS_SRC_SFS_SERVER_H_
#define SFS_SRC_SFS_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/auth/authserver.h"
#include "src/crypto/prng.h"
#include "src/readonly/readonly.h"
#include "src/crypto/rabin.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/obs/span.h"
#include "src/sfs/audit.h"
#include "src/sfs/handle_crypt.h"
#include "src/sfs/pathname.h"
#include "src/sfs/proto.h"
#include "src/sfs/revocation.h"
#include "src/sfs/session.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/disk.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"

namespace sfs {

class ServerConnection;

class SfsServer {
 public:
  struct Options {
    std::string location;
    size_t key_bits = 512;               // Rabin modulus; SFS deploys 1024+.
    uint64_t lease_ns = 60'000'000'000;  // Attribute lease granted to clients.
    bool allow_cleartext = false;        // Accept "no encryption" negotiation
                                         // (benchmarks only).
    uint64_t fsid = 1;
    uint64_t prng_seed = 1;
    // Receives server.* counters, per-procedure server metrics and trace
    // events; nullptr selects obs::Registry::Default().
    obs::Registry* registry = nullptr;
    // Tamper-evident operation journal (docs/OBSERVABILITY.md §Audit
    // log).  Every dispatched RPC, connect verdict, and revocation event
    // is recorded; per-batch MAC keys ratchet forward through the SHA-1
    // PRNG.  An empty genesis key derives one deterministically from
    // prng_seed.
    bool audit = true;
    uint32_t audit_batch_records = 64;
    util::Bytes audit_genesis_key;
  };

  SfsServer(sim::Clock* clock, const sim::CostModel* costs, Options options,
            auth::AuthServer* authserver);

  // The exported file system (for test/bench setup).
  nfs::MemFs* fs() { return &memfs_; }
  sim::Disk* disk() { return &disk_; }

  const crypto::RabinPublicKey& public_key() const;
  const crypto::RabinPrivateKey& private_key() const;
  SelfCertifyingPath Path() const;

  // Adds a secondary identity (extra Location and/or key) under which the
  // same file system is served.
  void AddIdentity(crypto::RabinPrivateKey key, const std::string& location);

  // Serves `cert` in response to connect requests for its revoked path.
  void ServeRevocation(PathRevokeCert cert);

  // Serves a signed read-only image under an additional identity derived
  // from the image's own key/location.  Connections naming that HostID
  // are handed to the read-only dialect (no key negotiation — contents
  // are proven by the offline signature).  Returns the image's
  // self-certifying path.
  SelfCertifyingPath ServeReadOnlyImage(readonly::SignedImage image);

  // Accepts one "TCP connection": the returned Service is the server end.
  struct Accepted {
    std::unique_ptr<sim::Service> connection;
    uint64_t connection_id;
  };
  Accepted CreateConnection();

  // Lease-invalidation callbacks: a mounted client registers its cache;
  // mutations arriving on *other* connections invalidate the handle.
  using InvalidateFn = std::function<void(const nfs::FileHandle&)>;
  void RegisterCacheCallback(uint64_t connection_id, InvalidateFn fn);
  void UnregisterCacheCallback(uint64_t connection_id);

  auth::AuthServer* authserver() { return authserver_; }

  uint64_t connections_accepted() const { return next_connection_id_ - 1; }

  // Channel requests answered from a connection's duplicate-request
  // cache (retransmits deduplicated; the handler did not run again).
  // Per-instance shim; the registry's server.drc_hits counter aggregates
  // the same events.
  uint64_t drc_hits() const { return drc_hits_; }

  obs::Registry* registry() { return registry_; }

  // The tamper-evident operation journal; nullptr when Options::audit is
  // off.  Callers Finalize() it before handing the log bytes to
  // obs::VerifyAuditLog / tools/audit_verify.
  ServerAuditor* auditor() { return auditor_.get(); }

 private:
  friend class ServerConnection;

  struct Identity {
    std::string location;
    crypto::RabinPrivateKey key;
    util::Bytes host_id;
  };

  const Identity* FindIdentity(const std::string& location, const util::Bytes& host_id) const;
  void NotifyMutation(const nfs::FileHandle& fh, uint64_t originating_connection);

  sim::Clock* clock_;
  const sim::CostModel* costs_;
  Options options_;
  crypto::Prng prng_;
  std::vector<Identity> identities_;
  sim::Disk disk_;
  nfs::MemFs memfs_;
  HandleCryptFs crypt_fs_;
  nfs::NfsProgram nfs_program_;
  auth::AuthServer* authserver_;
  std::map<std::string, PathRevokeCert> revocations_;  // Keyed by raw HostID bytes.
  // Read-only images served under their own HostIDs (keyed by raw bytes).
  std::map<std::string, std::unique_ptr<readonly::ReplicaServer>> ro_replicas_;
  std::map<uint64_t, InvalidateFn> cache_callbacks_;
  uint64_t next_connection_id_ = 1;
  uint64_t drc_hits_ = 0;
  std::unique_ptr<ServerAuditor> auditor_;

  // Observability: shared across connections so the per-procedure server
  // metrics aggregate the whole server (prefixes match the plain-RPC
  // Dispatcher's, so NFS3 and SFS stacks report under the same names).
  obs::Registry* registry_;
  obs::Tracer* tracer_;
  obs::SpanCollector* spans_;
  obs::Counter* m_drc_hits_;
  obs::ProcMetricsTable nfs_metrics_;  // "server.NFS3"
  obs::ProcMetricsTable ctl_metrics_;  // "server.SFSCTL"
};

// One accepted connection (one client <-> server TCP stream).
class ServerConnection : public sim::Service {
 public:
  ServerConnection(SfsServer* server, uint64_t id);
  // Connection teardown seals the open audit batch: the journal's
  // per-connection epoch closes with the stream.
  ~ServerConnection() override;

  util::Result<util::Bytes> Handle(const util::Bytes& request) override;

 private:
  enum class State { kAwaitConnect, kAwaitNegotiate, kEstablished, kDead };

  util::Result<util::Bytes> HandleConnect(const util::Bytes& payload);
  util::Result<util::Bytes> HandleNegotiate(const util::Bytes& payload);
  util::Result<util::Bytes> HandleEncrypted(const util::Bytes& payload);
  util::Result<util::Bytes> HandleSrpStart(const util::Bytes& payload);
  util::Result<util::Bytes> HandleSrpFinish(const util::Bytes& payload);

  // Dispatches one plaintext RPC (NFS or control program).  `wire_seqno`
  // identifies the channel frame in trace events.
  util::Result<util::Bytes> DispatchRpc(const util::Bytes& rpc_message,
                                        uint32_t wire_seqno);
  util::Result<util::Bytes> HandleNfs(uint32_t proc, const util::Bytes& args);
  util::Result<util::Bytes> HandleCtl(uint32_t proc, const util::Bytes& args);

  util::Status CheckSeqno(uint32_t seqno);

  SfsServer* server_;
  uint64_t id_;
  State state_ = State::kAwaitConnect;
  const SfsServer::Identity* identity_ = nullptr;
  readonly::ReplicaServer* ro_delegate_ = nullptr;  // Read-only dialect hand-off.
  bool cleartext_ = false;

  std::unique_ptr<ChannelCipher> cipher_in_;   // Opens client->server traffic.
  std::unique_ptr<ChannelCipher> cipher_out_;  // Seals server->client traffic.
  util::Bytes session_id_;

  std::map<uint32_t, nfs::Credentials> authno_to_creds_;
  uint32_t next_authno_ = 1;
  std::set<uint32_t> seqnos_seen_;
  uint32_t max_seqno_ = 0;

  // Duplicate-request cache for the secure channel: wire seqno -> the
  // complete framed (sealed) reply.  Replaying the cached bytes keeps
  // both keystreams untouched, so a retransmitted request advances
  // neither cipher (see docs/PROTOCOL.md).
  std::map<uint32_t, util::Bytes> reply_cache_;
  uint32_t reply_cache_max_seqno_ = 0;
  // Trace context of the request that produced each cached reply: a DRC
  // hit records its span into the *original* call's trace (the
  // retransmitted frame carries the same sealed bytes, so the context is
  // unreadable at hit time — the cipher must not run twice).  Pruned in
  // lockstep with reply_cache_.
  std::map<uint32_t, obs::SpanContext> ctx_cache_;

  // Handshake messages have no seqno; a redelivered copy is recognized by
  // byte identity and answered with the recorded reply instead of hitting
  // the state machine (which would treat it as a protocol violation).
  util::Bytes last_handshake_request_;
  util::Bytes last_handshake_reply_;

  // SRP service state (authserver connections).
  std::unique_ptr<crypto::SrpServer> srp_;
  std::string srp_user_;
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_SERVER_H_
