// File-handle encryption (paper §3.3).
//
// Plain NFS file handles must stay secret: "an attacker who learns the
// file handle of even a single directory can access any part of the file
// system as any user."  SFS servers, in contrast, hand their handles to
// anonymous clients, so sfsrwsd "generates its file handles by adding
// redundancy to NFS handles and encrypting them in CBC mode with a
// 20-byte Blowfish key."  HandleCryptFs is that layer, as a FileSystemApi
// decorator: inbound handles are decrypted (garbage decrypts fail the
// inner server's redundancy check and surface as stale), outbound handles
// are encrypted.
#ifndef SFS_SRC_SFS_HANDLE_CRYPT_H_
#define SFS_SRC_SFS_HANDLE_CRYPT_H_

#include <optional>

#include "src/crypto/blowfish.h"
#include "src/nfs/api.h"

namespace sfs {

class HandleCryptFs : public nfs::FileSystemApi {
 public:
  // `key` is the server's handle-encryption key (20 bytes).
  HandleCryptFs(nfs::FileSystemApi* inner, const util::Bytes& key);

  nfs::FileHandle EncryptHandle(const nfs::FileHandle& fh) const;
  // Returns nullopt for structurally invalid (wrong-size) handles.
  std::optional<nfs::FileHandle> DecryptHandle(const nfs::FileHandle& fh) const;

  nfs::Stat GetAttr(const nfs::FileHandle& fh, nfs::Fattr* attr) override;
  nfs::Stat SetAttr(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                    const nfs::Sattr& sattr, nfs::Fattr* attr) override;
  nfs::Stat Lookup(const nfs::FileHandle& dir, const std::string& name,
                   const nfs::Credentials& cred, nfs::FileHandle* out,
                   nfs::Fattr* attr) override;
  nfs::Stat Access(const nfs::FileHandle& fh, const nfs::Credentials& cred, uint32_t want,
                   uint32_t* allowed) override;
  nfs::Stat ReadLink(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                     std::string* target) override;
  nfs::Stat Read(const nfs::FileHandle& fh, const nfs::Credentials& cred, uint64_t offset,
                 uint32_t count, util::Bytes* data, bool* eof) override;
  nfs::Stat Write(const nfs::FileHandle& fh, const nfs::Credentials& cred, uint64_t offset,
                  const util::Bytes& data, bool stable, nfs::Fattr* attr) override;
  nfs::Stat Create(const nfs::FileHandle& dir, const std::string& name,
                   const nfs::Credentials& cred, const nfs::Sattr& sattr, nfs::FileHandle* out,
                   nfs::Fattr* attr) override;
  nfs::Stat Mkdir(const nfs::FileHandle& dir, const std::string& name,
                  const nfs::Credentials& cred, uint32_t mode, nfs::FileHandle* out,
                  nfs::Fattr* attr) override;
  nfs::Stat Symlink(const nfs::FileHandle& dir, const std::string& name,
                    const std::string& target, const nfs::Credentials& cred,
                    nfs::FileHandle* out, nfs::Fattr* attr) override;
  nfs::Stat Remove(const nfs::FileHandle& dir, const std::string& name,
                   const nfs::Credentials& cred) override;
  nfs::Stat Rmdir(const nfs::FileHandle& dir, const std::string& name,
                  const nfs::Credentials& cred) override;
  nfs::Stat Rename(const nfs::FileHandle& from_dir, const std::string& from_name,
                   const nfs::FileHandle& to_dir, const std::string& to_name,
                   const nfs::Credentials& cred) override;
  nfs::Stat Link(const nfs::FileHandle& target, const nfs::FileHandle& dir,
                 const std::string& name, const nfs::Credentials& cred) override;
  nfs::Stat ReadDir(const nfs::FileHandle& dir, const nfs::Credentials& cred, uint64_t cookie,
                    uint32_t max_entries, std::vector<nfs::DirEntry>* entries,
                    bool* eof) override;
  nfs::Stat FsStat(const nfs::FileHandle& fh, uint64_t* total_bytes,
                   uint64_t* used_bytes) override;
  nfs::Stat Commit(const nfs::FileHandle& fh) override;
  uint64_t WriteVerf() const override { return inner_->WriteVerf(); }

 private:
  nfs::FileSystemApi* inner_;
  crypto::Blowfish cipher_;
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_HANDLE_CRYPT_H_
