#include "src/sfs/client.h"

#include <algorithm>
#include <vector>

#include "src/obs/span.h"
#include "src/sfs/idmap.h"
#include "src/util/log.h"
#include "src/xdr/xdr.h"

namespace sfs {
namespace {

// Records one already-elapsed all-kCrypto interval (a seal or open of the
// channel cipher) as a child of `parent`.
void RecordCryptoSpan(obs::SpanCollector* spans, const char* name, uint64_t start_ns,
                      uint64_t end_ns, uint64_t bytes, obs::SpanContext parent) {
  if (spans == nullptr || !spans->enabled() || end_ns == start_ns) {
    return;
  }
  obs::Span span;
  span.name = name;
  span.layer = "sfs.chan";
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.cat_ns[static_cast<size_t>(obs::TimeCategory::kCrypto)] = end_ns - start_ns;
  span.wire_bytes = bytes;
  spans->RecordClosed(std::move(span), parent);
}

util::Bytes FrameMessage(uint32_t type, const util::Bytes& payload) {
  xdr::Encoder enc;
  enc.PutUint32(type);
  enc.PutOpaque(payload);
  return enc.Take();
}

// Unframes a reply, checking the echoed message type.
util::Result<util::Bytes> Unframe(uint32_t expected_type, const util::Bytes& message) {
  xdr::Decoder dec(message);
  ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes payload, dec.GetOpaque());
  if (type != expected_type || !dec.AtEnd()) {
    return util::SecurityError("unexpected reply framing");
  }
  return payload;
}

// One handshake roundtrip with stale-reply tolerance: the link masks
// transit loss, and a reply with unexpected framing (a reordered, stale
// message) is discarded and the request retransmitted — the server
// recognizes the redelivered handshake bytes and replays its reply.
util::Result<util::Bytes> HandshakeRoundtrip(sim::Link* link, uint32_t type,
                                             const util::Bytes& payload) {
  const util::Bytes request = FrameMessage(type, payload);
  const sim::RetryPolicy& policy = link->retry_policy();
  uint32_t attempts = policy.max_transmissions == 0 ? 1 : policy.max_transmissions;
  util::Status last_error = util::Unavailable("no valid handshake reply");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      link->clock()->Advance(policy.initial_rto_ns, obs::TimeCategory::kWait);
    }
    auto raw = link->Roundtrip(request);
    if (!raw.ok()) {
      return raw.status();
    }
    auto reply = Unframe(type, raw.value());
    if (reply.ok()) {
      return reply;
    }
    last_error = reply.status();
  }
  return last_error;
}

}  // namespace

SfsClient::SfsClient(sim::Clock* clock, const sim::CostModel* costs, Dialer dialer,
                     Options options)
    : clock_(clock),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::Registry::Default()),
      costs_(costs),
      dialer_(std::move(dialer)),
      options_(options),
      prng_(options.prng_seed),
      ephemeral_key_(crypto::RabinPrivateKey::Generate(&prng_, options.ephemeral_key_bits)) {}

SfsClient::~SfsClient() {
  for (auto& [name, mount] : mounts_) {
    if (mount->server_ != nullptr) {
      mount->server_->UnregisterCacheCallback(mount->connection_id_);
    }
  }
}

void SfsClient::RotateEphemeralKey() {
  ephemeral_key_ = crypto::RabinPrivateKey::Generate(&prng_, options_.ephemeral_key_bits);
}

util::Status SfsClient::SubmitRevocation(const PathRevokeCert& cert) {
  RETURN_IF_ERROR(cert.Verify());
  if (!cert.is_revocation()) {
    return util::InvalidArgument("forwarding pointer is not a revocation");
  }
  SelfCertifyingPath revoked = cert.RevokedPath();
  revocations_[util::StringOf(revoked.host_id)] = cert;
  // Tear down any existing mount of the revoked path.
  auto it = mounts_.find(revoked.FullPath());
  if (it != mounts_.end()) {
    if (it->second->server_ != nullptr) {
      it->second->server_->UnregisterCacheCallback(it->second->connection_id_);
    }
    mounts_.erase(it);
  }
  return util::OkStatus();
}

bool SfsClient::IsRevoked(const SelfCertifyingPath& path) const {
  return revocations_.count(util::StringOf(path.host_id)) != 0;
}

util::Result<SfsClient::MountPoint*> SfsClient::Mount(const SelfCertifyingPath& path) {
  if (IsRevoked(path)) {
    return util::SecurityError("HostID has been revoked: " + path.ComponentName());
  }
  auto existing = mounts_.find(path.FullPath());
  if (existing != mounts_.end()) {
    return existing->second.get();
  }

  SfsServer* server = dialer_(path.location);
  if (server == nullptr) {
    return util::Unavailable("cannot reach host: " + path.location);
  }

  auto mount = std::make_unique<MountPoint>();
  mount->client_ = this;
  mount->path_ = path;
  mount->server_ = server;
  SfsServer::Accepted accepted = server->CreateConnection();
  mount->connection_ = std::move(accepted.connection);
  mount->connection_id_ = accepted.connection_id;
  mount->link_ = std::make_unique<sim::Link>(clock_, options_.profile,
                                             mount->connection_.get(), registry_);
  if (interposer_ != nullptr) {
    mount->link_->set_interposer(interposer_);
  }
  mount->tracer_ = &registry_->tracer();
  mount->spans_ = &registry_->spans();
  mount->m_stale_retries_ = registry_->GetCounter("rpc.client.stale_retries");
  mount->m_unmatched_replies_ = registry_->GetCounter("rpc.client.unmatched_replies");
  mount->m_window_occupancy_sum_ = registry_->GetCounter("rpc.client.window_occupancy_sum");
  mount->m_window_samples_ = registry_->GetCounter("rpc.client.window_samples");
  mount->g_in_flight_ = registry_->GetGauge("rpc.client.in_flight");
  mount->m_queue_wait_ = registry_->GetHistogram("rpc.client.queue_wait_ns");
  mount->window_ = std::clamp(options_.window, 1u, rpc::kMaxSendWindow);
  mount->nfs_metrics_.Init(registry_, "rpc.client.NFS3");
  mount->ctl_metrics_.Init(registry_, "rpc.client.SFSCTL");

  // --- Step 1-2: connect; obtain and certify the server's public key. ---
  xdr::Encoder hello;
  hello.PutUint32(static_cast<uint32_t>(ServiceType::kFileServer));
  hello.PutString(path.location);
  hello.PutOpaque(path.host_id);
  hello.PutString("");  // Extensions.
  ASSIGN_OR_RETURN(util::Bytes hello_reply,
                   HandshakeRoundtrip(mount->link_.get(), kMsgConnect, hello.Take()));
  xdr::Decoder hello_dec(hello_reply);
  ASSIGN_OR_RETURN(uint32_t connect_result, hello_dec.GetUint32());
  if (connect_result == kConnectRevoked) {
    ASSIGN_OR_RETURN(util::Bytes cert_bytes, hello_dec.GetOpaque());
    ASSIGN_OR_RETURN(PathRevokeCert cert, PathRevokeCert::Deserialize(cert_bytes));
    // Only honor the certificate if it verifies *and* actually names this
    // HostID; otherwise it is an attack and we just fail the mount.
    if (cert.Verify().ok() && cert.is_revocation() &&
        cert.RevokedPath().host_id == path.host_id) {
      revocations_[util::StringOf(path.host_id)] = cert;
      return util::SecurityError("server presented a valid revocation certificate");
    }
    return util::SecurityError("server presented an invalid revocation certificate");
  }
  if (connect_result != kConnectOk) {
    return util::NotFound("server does not serve " + path.ComponentName());
  }
  ASSIGN_OR_RETURN(util::Bytes server_key_bytes, hello_dec.GetOpaque());
  ASSIGN_OR_RETURN(crypto::RabinPublicKey server_key,
                   crypto::RabinPublicKey::Deserialize(server_key_bytes));
  if (!path.Certifies(server_key)) {
    return util::SecurityError("server public key does not match HostID (impostor?)");
  }
  ASSIGN_OR_RETURN(uint32_t dialect, hello_dec.GetUint32());

  if (dialect == kDialectReadOnly) {
    // Dialect hand-off: this HostID is a signed, public, read-only file
    // system.  No key negotiation — ReadOnlyClient::Connect verifies the
    // offline signature against the same HostID.
    MountPoint* mp = mount.get();
    mp->ro_client_ = std::make_unique<readonly::ReadOnlyClient>(
        mp->link_.get(), path, readonly::kDefaultVerifiedCacheCap, registry_);
    RETURN_IF_ERROR(mp->ro_client_->Connect());
    mp->root_fh_ = mp->ro_client_->root_fh();
    nfs::CacheOptions cache_options;
    cache_options.use_leases = true;  // Content-addressed data: cache hard.
    cache_options.registry = registry_;
    mp->cache_ =
        std::make_unique<nfs::CachingFs>(mp->ro_client_.get(), clock_, cache_options);
    ++mounts_created_;
    auto [it, inserted] = mounts_.emplace(path.FullPath(), std::move(mount));
    (void)inserted;
    return it->second.get();
  }
  if (dialect != kDialectReadWrite) {
    return util::InvalidArgument("server speaks an unknown dialect");
  }

  // --- Step 3-4: key negotiation (Figure 3). ---
  clock_->Advance(costs_->pk_encrypt_ns * 2, obs::TimeCategory::kCrypto);
  ClientNegotiation negotiation;
  negotiation.ephemeral_key = ephemeral_key_;
  negotiation.kc1 = prng_.RandomBytes(20);
  negotiation.kc2 = prng_.RandomBytes(20);
  ASSIGN_OR_RETURN(negotiation.enc_kc1, server_key.Encrypt(negotiation.kc1, &prng_));
  ASSIGN_OR_RETURN(negotiation.enc_kc2, server_key.Encrypt(negotiation.kc2, &prng_));

  xdr::Encoder neg;
  neg.PutOpaque(ephemeral_key_.public_key().Serialize());
  neg.PutOpaque(negotiation.enc_kc1);
  neg.PutOpaque(negotiation.enc_kc2);
  neg.PutBool(!options_.encrypt);
  ASSIGN_OR_RETURN(util::Bytes neg_reply,
                   HandshakeRoundtrip(mount->link_.get(), kMsgNegotiate, neg.Take()));
  xdr::Decoder neg_dec(neg_reply);
  ASSIGN_OR_RETURN(bool cleartext, neg_dec.GetBool());
  ASSIGN_OR_RETURN(util::Bytes enc_ks1, neg_dec.GetOpaque());
  ASSIGN_OR_RETURN(util::Bytes enc_ks2, neg_dec.GetOpaque());
  clock_->Advance(costs_->pk_decrypt_ns * 2, obs::TimeCategory::kCrypto);
  ASSIGN_OR_RETURN(SessionKeys keys, negotiation.Finish(server_key, enc_ks1, enc_ks2));

  mount->cleartext_ = cleartext;
  if (!cleartext) {
    mount->cipher_out_ = std::make_unique<ChannelCipher>(keys.kcs);
    mount->cipher_in_ = std::make_unique<ChannelCipher>(keys.ksc);
  } else if (options_.encrypt) {
    return util::SecurityError("server refused to encrypt the channel");
  }
  mount->session_id_ = keys.SessionId();

  // --- Fetch the root handle and build the client stack. ---
  MountPoint* mp = mount.get();
  xdr::Encoder empty;
  ASSIGN_OR_RETURN(util::Bytes root_reply, mp->Call(kSfsCtlProgram, kCtlGetRoot, empty.Take()));
  xdr::Decoder root_dec(root_reply);
  ASSIGN_OR_RETURN(mp->root_fh_, root_dec.GetOpaque());

  mp->nfs_client_ = std::make_unique<nfs::NfsClient>(
      [mp](uint32_t proc, const util::Bytes& args) {
        return mp->Call(nfs::kNfsProgram, proc, args);
      },
      // SFS dialect: requests carry the session's authno for the calling
      // user; anonymous users get authno 0.
      [mp](xdr::Encoder* enc, const nfs::Credentials& cred) {
        enc->PutUint32(mp->AuthnoFor(cred.uid));
      });

  nfs::CacheOptions cache_options;
  cache_options.use_leases = options_.enhanced_caching;
  cache_options.attr_timeout_ns = options_.attr_timeout_ns;
  cache_options.registry = registry_;
  if (options_.write_behind) {
    cache_options.write_behind = true;
    cache_options.close_to_open = true;
  }
  if (mp->window_ > 1) {
    // Pipelined channel: overlap sequential read misses with read-ahead.
    mp->nfs_client_->set_async_call(
        [mp](uint32_t proc, const util::Bytes& args, nfs::AsyncReplyFn done) {
          mp->CallAsync(nfs::kNfsProgram, proc, args, std::move(done));
        });
    cache_options.read_ahead_chunks = 2;
  }
  mp->cache_ = std::make_unique<nfs::CachingFs>(mp->nfs_client_.get(), clock_, cache_options);
  if (mp->window_ > 1) {
    mp->cache_->set_async_ops(mp->nfs_client_.get());
  }

  if (options_.enhanced_caching) {
    nfs::CachingFs* cache = mp->cache_.get();
    server->RegisterCacheCallback(mp->connection_id_,
                                  [cache](const nfs::FileHandle& fh) {
                                    cache->InvalidateHandle(fh);
                                  });
  }

  ++mounts_created_;
  auto [it, inserted] = mounts_.emplace(path.FullPath(), std::move(mount));
  (void)inserted;
  return it->second.get();
}

util::Result<util::Bytes> SfsClient::MountPoint::Call(uint32_t prog, uint32_t proc,
                                                      const util::Bytes& args) {
  if (window_ <= 1) {
    return LegacyCall(prog, proc, args);
  }
  std::optional<util::Result<util::Bytes>> out;
  CallAsync(prog, proc, args,
            [&out](util::Result<util::Bytes> result) { out = std::move(result); });
  while (!out.has_value()) {
    PumpOnce();
  }
  return std::move(*out);
}

util::Result<util::Bytes> SfsClient::MountPoint::LegacyCall(uint32_t prog, uint32_t proc,
                                                            const util::Bytes& args) {
  const bool is_nfs = prog == nfs::kNfsProgram;
  const std::string proc_name =
      is_nfs ? nfs::ProcName(proc)
             : (prog == kSfsCtlProgram ? CtlProcName(proc) : std::to_string(proc));

  // Channel call span: covers seal, transit, server work, open, and any
  // retransmission waits.  Pushed so those child spans nest under it.
  obs::ScopedSpan call_span(spans_, "sfs.call." + proc_name, "sfs.chan");

  // Build the RPC message.  The trace context travels *inside* the
  // sealed body (the server parents its dispatch span after opening);
  // only the wire seqno is cleartext (docs/PROTOCOL.md §10).
  uint32_t xid = next_xid_++;
  xdr::Encoder call;
  call.PutUint32(xid);
  call.PutUint32(prog);
  call.PutUint32(proc);
  call.PutOpaque(args);
  if (obs::Span* s = call_span.span()) {
    call.PutUint64(s->trace_id);
    call.PutUint64(s->id);
  }
  util::Bytes rpc_message = call.Take();

  obs::ProcMetrics* pm = is_nfs ? nfs_metrics_.Get(proc, proc_name)
                                : ctl_metrics_.Get(proc, proc_name);
  pm->calls->Increment();
  sim::Clock* clock = client_->clock_;
  const uint64_t t_call_ns = clock->now_ns();
  const sim::Clock::CategorySnapshot before = clock->categories();

  // On every exit path, attribute the call's elapsed virtual time to the
  // per-procedure latency histogram and slice it by charge category.
  auto finish = [&](bool ok, uint64_t reply_bytes) {
    if (!ok) {
      pm->errors->Increment();
      if (obs::Span* s = call_span.span()) {
        s->error = true;
      }
    }
    pm->bytes_received->Increment(reply_bytes);
    pm->latency->Record(clock->now_ns() - t_call_ns);
    const sim::Clock::CategorySnapshot& after = clock->categories();
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      pm->time[i]->Increment(after.ns[i] - before.ns[i]);
    }
  };

  // User-level client daemon: two kernel crossings, then seal — exactly
  // once.  Retransmission resends these identical sealed bytes, so the
  // send keystream advances once per request no matter how many copies
  // the network loses; the wire seqno outside the sealed body lets the
  // server deduplicate without opening the duplicate.
  client_->costs_->ChargeCrossing(client_->clock_, 2);
  util::Bytes sealed;
  if (cleartext_) {
    client_->costs_->ChargeCopy(client_->clock_, rpc_message.size());
    sealed = rpc_message;
  } else {
    const uint64_t seal_start_ns = clock->now_ns();
    sealed = cipher_out_->Seal(rpc_message);
    client_->costs_->ChargeCrypto(client_->clock_, sealed.size());
    RecordCryptoSpan(spans_, "sfs.seal", seal_start_ns, clock->now_ns(), sealed.size(),
                     spans_->current());
  }
  uint32_t wire_seqno = next_wire_seqno_++;
  xdr::Encoder frame;
  frame.PutUint32(wire_seqno);
  frame.PutOpaque(sealed);
  const util::Bytes wire = FrameMessage(kMsgEncrypted, frame.Take());
  if (obs::Span* s = call_span.span()) {
    s->xid = xid;
    s->seqno = wire_seqno;
    s->wire_bytes = wire.size();
  }

  auto emit = [&](obs::TraceEvent::Kind kind, uint32_t attempt, uint64_t wire_bytes,
                  const std::string& note) {
    if (!tracer_->active()) {
      return;
    }
    obs::TraceEvent event;
    event.kind = kind;
    event.layer = "sfs.chan";
    event.prog = prog;
    event.proc = proc;
    event.proc_name = proc_name;
    event.xid = xid;
    event.seqno = wire_seqno;
    event.wire_bytes = wire_bytes;
    event.t_send_ns = t_call_ns;
    event.t_recv_ns = clock->now_ns();
    event.attempt = attempt;
    event.note = note;
    tracer_->Emit(event);
  };
  emit(obs::TraceEvent::Kind::kClientCall, 0, wire.size(), "");

  const sim::RetryPolicy& policy = link_->retry_policy();
  uint32_t attempts = policy.max_transmissions == 0 ? 1 : policy.max_transmissions;
  util::Status last_error = util::Unavailable("no valid reply");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // The reply in hand was stale; wait out a timeout and resend.  The
      // server's duplicate-request cache replays the genuine sealed
      // reply without re-executing or advancing either keystream.
      client_->clock_->Advance(policy.initial_rto_ns, obs::TimeCategory::kWait);
      ++stale_retries_;
      m_stale_retries_->Increment();
      pm->retransmits->Increment();
      if (obs::Span* s = call_span.span()) {
        ++s->retransmits;
      }
      emit(obs::TraceEvent::Kind::kClientRetransmit, attempt, wire.size(),
           last_error.message());
    }
    pm->bytes_sent->Increment(wire.size());

    auto raw_reply = link_->Roundtrip(wire);
    if (!raw_reply.ok()) {
      // The link already retried transit loss; its verdict is final.
      finish(false, 0);
      return raw_reply.status();
    }
    auto frame_payload = Unframe(kMsgEncrypted, raw_reply.value());
    if (!frame_payload.ok()) {
      last_error = frame_payload.status();
      emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, raw_reply->size(),
           last_error.message());
      continue;
    }
    // The reply frame echoes the request's wire seqno in cleartext
    // (docs/PROTOCOL.md §10), so a stale duplicate is caught before the
    // cipher is touched.
    xdr::Decoder frame_dec(frame_payload.value());
    auto echo_seqno = frame_dec.GetUint32();
    auto sealed_reply = frame_dec.GetOpaque();
    if (!echo_seqno.ok() || !sealed_reply.ok() || !frame_dec.AtEnd()) {
      last_error = util::SecurityError("malformed encrypted reply frame");
      emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, raw_reply->size(),
           last_error.message());
      continue;
    }
    if (echo_seqno.value() != wire_seqno) {
      ++unmatched_replies_;
      m_unmatched_replies_->Increment();
      last_error = util::Unavailable("stale reply for seqno " +
                                     std::to_string(echo_seqno.value()));
      emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, raw_reply->size(),
           last_error.message());
      continue;
    }

    util::Bytes reply;
    if (cleartext_) {
      client_->costs_->ChargeCopy(client_->clock_, sealed_reply->size());
      reply = sealed_reply.value();
    } else {
      const uint64_t open_start_ns = clock->now_ns();
      client_->costs_->ChargeCrypto(client_->clock_, sealed_reply->size());
      RecordCryptoSpan(spans_, "sfs.open", open_start_ns, clock->now_ns(),
                       sealed_reply->size(), spans_->current());
      auto opened = cipher_in_->Open(sealed_reply.value());
      if (!opened.ok()) {
        // Wrong keystream position: a reordered or replayed stale reply
        // (or tampering — indistinguishable here).  Open left the stream
        // untouched, so discard and retransmit; persistent failure
        // surfaces the security error after the retry budget.
        last_error = opened.status();
        emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, sealed_reply->size(),
             last_error.message());
        continue;
      }
      reply = std::move(opened).value();
    }

    // Parse the RPC reply; a mismatched xid marks a stale reply in
    // cleartext mode (sealed mode already caught it via the MAC).
    xdr::Decoder dec(reply);
    auto reply_xid = dec.GetUint32();
    if (!reply_xid.ok()) {
      last_error = util::InvalidArgument("truncated RPC reply");
      continue;
    }
    if (reply_xid.value() != xid) {
      last_error = util::Unavailable("stale RPC reply xid");
      emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, reply.size(),
           "reply xid " + std::to_string(reply_xid.value()));
      continue;
    }
    ASSIGN_OR_RETURN(uint32_t status, dec.GetUint32());
    if (status == 0) {
      auto results = dec.GetOpaque();
      finish(results.ok(), results.ok() ? results->size() : 0);
      if (results.ok()) {
        emit(obs::TraceEvent::Kind::kClientReply, attempt, results->size(), "");
      }
      return results;
    }
    ASSIGN_OR_RETURN(uint32_t code, dec.GetUint32());
    ASSIGN_OR_RETURN(std::string message, dec.GetString());
    if (code == 0 || code > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
      code = static_cast<uint32_t>(util::ErrorCode::kInternal);
    }
    finish(false, 0);
    return util::Status(static_cast<util::ErrorCode>(code), message);
  }
  finish(false, 0);
  return last_error;
}

void SfsClient::MountPoint::EmitChannelEvent(obs::TraceEvent::Kind kind,
                                             const PendingChannelCall& call,
                                             uint64_t wire_bytes, const std::string& note) {
  if (!tracer_->active()) {
    return;
  }
  obs::TraceEvent event;
  event.kind = kind;
  event.layer = "sfs.chan";
  event.prog = call.prog;
  event.proc = call.proc;
  event.proc_name = call.proc_name;
  event.xid = call.xid;
  event.seqno = call.wire_seqno;
  event.wire_bytes = wire_bytes;
  event.t_send_ns = call.t_call_ns;
  event.t_recv_ns = client_->clock_->now_ns();
  event.attempt = call.attempt;
  event.note = note;
  tracer_->Emit(event);
}

void SfsClient::MountPoint::CountUnmatched(uint32_t seqno, uint64_t wire_bytes,
                                           const std::string& note) {
  ++unmatched_replies_;
  m_unmatched_replies_->Increment();
  if (!tracer_->active()) {
    return;
  }
  obs::TraceEvent event;
  event.kind = obs::TraceEvent::Kind::kClientStaleReply;
  event.layer = "sfs.chan";
  event.seqno = seqno;
  event.wire_bytes = wire_bytes;
  event.t_send_ns = client_->clock_->now_ns();
  event.t_recv_ns = client_->clock_->now_ns();
  event.note = note;
  tracer_->Emit(event);
}

void SfsClient::MountPoint::Transmit(PendingChannelCall* call) {
  call->pm->bytes_sent->Increment(call->wire.size());
  // Ambient across Submit so the inline server handler and the link's
  // transit bookkeeping parent under this call (Push(0) no-ops).
  spans_->Push(call->span_id);
  const uint64_t token = link_->Submit(call->wire);
  spans_->Pop(call->span_id);
  token_to_seqno_[token] = call->wire_seqno;
  call->deadline_ns = client_->clock_->now_ns() + call->rto_ns;
}

void SfsClient::MountPoint::CallAsync(uint32_t prog, uint32_t proc, const util::Bytes& args,
                                      std::function<void(util::Result<util::Bytes>)> done) {
  sim::Clock* clock = client_->clock_;
  if (pending_.size() >= window_) {
    const uint64_t wait_start = clock->now_ns();
    while (pending_.size() >= window_) {
      PumpOnce();
    }
    m_queue_wait_->Record(clock->now_ns() - wait_start);
  } else {
    m_queue_wait_->Record(0);
  }

  uint32_t xid = next_xid_++;
  const bool is_nfs = prog == nfs::kNfsProgram;
  const std::string proc_name =
      is_nfs ? nfs::ProcName(proc)
             : (prog == kSfsCtlProgram ? CtlProcName(proc) : std::to_string(proc));

  // Async channel call span, parented to the ambient span at submission
  // and ended when the in-order opener completes the call.
  uint64_t span_id = 0;
  if (spans_->enabled()) {
    span_id = spans_->Begin("sfs.call." + proc_name, "sfs.chan");
  }

  xdr::Encoder call_enc;
  call_enc.PutUint32(xid);
  call_enc.PutUint32(prog);
  call_enc.PutUint32(proc);
  call_enc.PutOpaque(args);
  if (obs::Span* s = spans_->Find(span_id)) {
    // Trace context rides inside the sealed body (see LegacyCall).
    call_enc.PutUint64(s->trace_id);
    call_enc.PutUint64(s->id);
    s->xid = xid;
  }
  util::Bytes rpc_message = call_enc.Take();

  PendingChannelCall call;
  call.xid = xid;
  call.prog = prog;
  call.proc = proc;
  call.span_id = span_id;
  call.proc_name = proc_name;
  call.pm = is_nfs ? nfs_metrics_.Get(proc, call.proc_name)
                   : ctl_metrics_.Get(proc, call.proc_name);
  call.pm->calls->Increment();
  call.t_call_ns = clock->now_ns();
  call.done = std::move(done);

  // Seal exactly once — the same rule as the stop-and-wait path.  Timer
  // retransmissions resend these identical bytes, so the send keystream
  // advances once per request no matter how many copies the network
  // loses, and the server's DRC matches duplicates without opening them.
  client_->costs_->ChargeCrossing(client_->clock_, 2);
  util::Bytes sealed;
  if (cleartext_) {
    client_->costs_->ChargeCopy(client_->clock_, rpc_message.size());
    sealed = rpc_message;
  } else {
    const uint64_t seal_start_ns = clock->now_ns();
    sealed = cipher_out_->Seal(rpc_message);
    client_->costs_->ChargeCrypto(client_->clock_, sealed.size());
    obs::Span* s = spans_->Find(span_id);
    RecordCryptoSpan(spans_, "sfs.seal", seal_start_ns, clock->now_ns(), sealed.size(),
                     s != nullptr ? s->context() : obs::SpanContext{});
  }
  call.wire_seqno = next_wire_seqno_++;
  xdr::Encoder frame;
  frame.PutUint32(call.wire_seqno);
  frame.PutOpaque(sealed);
  call.wire = FrameMessage(kMsgEncrypted, frame.Take());
  call.rto_ns = link_->retry_policy().initial_rto_ns;
  if (obs::Span* s = spans_->Find(span_id)) {
    s->seqno = call.wire_seqno;
    s->wire_bytes = call.wire.size();
  }

  auto [it, inserted] = pending_.emplace(call.wire_seqno, std::move(call));
  (void)inserted;
  g_in_flight_->Add(1);
  EmitChannelEvent(obs::TraceEvent::Kind::kClientCall, it->second, it->second.wire.size(), "");
  Transmit(&it->second);
  m_window_occupancy_sum_->Increment(pending_.size());
  m_window_samples_->Increment();
}

void SfsClient::MountPoint::Drain() {
  while (!pending_.empty()) {
    PumpOnce();
  }
}

void SfsClient::MountPoint::PumpOnce() {
  if (pending_.empty()) {
    return;
  }
  uint64_t deadline = UINT64_MAX;
  for (const auto& [seqno, call] : pending_) {
    deadline = std::min(deadline, call.deadline_ns);
  }
  auto delivery = link_->AwaitNext(deadline);
  if (delivery.has_value()) {
    OnChannelDelivery(std::move(*delivery));
    return;
  }

  const sim::RetryPolicy& policy = link_->retry_policy();
  const uint32_t attempts = policy.max_transmissions == 0 ? 1 : policy.max_transmissions;
  const uint64_t now = client_->clock_->now_ns();
  std::vector<uint32_t> expired;
  for (const auto& [seqno, call] : pending_) {
    if (call.deadline_ns <= now) {
      expired.push_back(seqno);
    }
  }
  for (uint32_t seqno : expired) {
    auto it = pending_.find(seqno);
    if (it == pending_.end()) {
      continue;
    }
    PendingChannelCall& call = it->second;
    if (call.attempt + 1 >= attempts) {
      CompleteChannelCall(
          seqno, util::Unavailable("channel retry budget exhausted waiting for reply"));
      continue;
    }
    ++call.attempt;
    call.rto_ns = std::min(call.rto_ns * policy.backoff_factor, policy.max_rto_ns);
    // Timer resends count as link retransmissions — the pipelined analog
    // of Roundtrip's internal retry loop — not as stale_retries: the
    // benchmark testbed sums both and must not double-count.
    link_->NoteRetransmission();
    call.pm->retransmits->Increment();
    if (obs::Span* s = spans_->Find(call.span_id)) {
      ++s->retransmits;
    }
    EmitChannelEvent(obs::TraceEvent::Kind::kClientRetransmit, call, call.wire.size(),
                     "retransmission timer expired");
    Transmit(&call);
  }
}

void SfsClient::MountPoint::OnChannelDelivery(sim::Delivery delivery) {
  uint32_t token_seqno = 0;
  auto tok = token_to_seqno_.find(delivery.token);
  if (tok != token_to_seqno_.end()) {
    token_seqno = tok->second;
    token_to_seqno_.erase(tok);
  }
  if (!delivery.status.ok()) {
    // A verdict from the connection itself (dead channel, malformed
    // message): retrying the same bytes cannot help the call whose copy
    // provoked it.
    if (pending_.count(token_seqno) != 0) {
      CompleteChannelCall(token_seqno, delivery.status);
    }
    return;
  }
  auto frame_payload = Unframe(kMsgEncrypted, delivery.response);
  if (!frame_payload.ok()) {
    CountUnmatched(token_seqno, delivery.response.size(), frame_payload.status().message());
    return;
  }
  xdr::Decoder frame_dec(frame_payload.value());
  auto echo_seqno = frame_dec.GetUint32();
  auto sealed = frame_dec.GetOpaque();
  if (!echo_seqno.ok() || !sealed.ok() || !frame_dec.AtEnd()) {
    CountUnmatched(token_seqno, delivery.response.size(), "malformed encrypted reply frame");
    return;
  }
  const uint32_t seqno = echo_seqno.value();
  if (seqno < next_open_seqno_ || pending_.count(seqno) == 0) {
    // A duplicate of an already-opened reply, or a seqno we never sent.
    CountUnmatched(seqno, delivery.response.size(), "no outstanding call for seqno");
    return;
  }
  // Stash the sealed body and open as far as the in-order cursor allows.
  // A duplicate overwrites with identical bytes (the server's DRC
  // replays the frame verbatim), so the overwrite is harmless.
  reorder_[seqno] = std::move(sealed).value();
  TryOpenInOrder();
}

void SfsClient::MountPoint::TryOpenInOrder() {
  while (true) {
    auto stash = reorder_.find(next_open_seqno_);
    if (stash == reorder_.end()) {
      return;
    }
    util::Bytes sealed = std::move(stash->second);
    reorder_.erase(stash);
    auto it = pending_.find(next_open_seqno_);
    if (it == pending_.end()) {
      // The call gave up (retry budget) before its reply arrived; the
      // keystream position cannot be recovered.
      CountUnmatched(next_open_seqno_, sealed.size(), "reply for abandoned call");
      return;
    }
    PendingChannelCall& call = it->second;

    util::Bytes reply;
    if (cleartext_) {
      client_->costs_->ChargeCopy(client_->clock_, sealed.size());
      reply = std::move(sealed);
    } else {
      const uint64_t open_start_ns = client_->clock_->now_ns();
      client_->costs_->ChargeCrypto(client_->clock_, sealed.size());
      if (obs::Span* s = spans_->Find(call.span_id)) {
        RecordCryptoSpan(spans_, "sfs.open", open_start_ns, client_->clock_->now_ns(),
                         sealed.size(), s->context());
      }
      auto opened = cipher_in_->Open(sealed);
      if (!opened.ok()) {
        // Tampered or corrupt at the expected keystream position.  Open
        // left the stream untouched; the call's timer resends, and the
        // server's DRC replays the genuine sealed bytes for this seqno.
        CountUnmatched(next_open_seqno_, sealed.size(), opened.status().message());
        return;
      }
      reply = std::move(opened).value();
    }
    ++next_open_seqno_;

    xdr::Decoder dec(reply);
    auto reply_xid = dec.GetUint32();
    if (!reply_xid.ok() || reply_xid.value() != call.xid) {
      // The MAC (or, in cleartext mode, nothing) vouched for this reply,
      // yet it names the wrong call: a server bug, not a network one.
      CompleteChannelCall(call.wire_seqno,
                          util::SecurityError("channel reply xid does not match call"));
      continue;
    }
    auto status_word = dec.GetUint32();
    if (!status_word.ok()) {
      CompleteChannelCall(call.wire_seqno, util::InvalidArgument("truncated RPC reply"));
      continue;
    }
    if (status_word.value() == 0) {
      auto results = dec.GetOpaque();
      if (results.ok()) {
        EmitChannelEvent(obs::TraceEvent::Kind::kClientReply, call, results->size(), "");
      }
      CompleteChannelCall(call.wire_seqno, std::move(results));
      continue;
    }
    auto code = dec.GetUint32();
    auto message = dec.GetString();
    uint32_t code_value =
        code.ok() ? code.value() : static_cast<uint32_t>(util::ErrorCode::kInternal);
    if (code_value == 0 || code_value > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
      code_value = static_cast<uint32_t>(util::ErrorCode::kInternal);
    }
    CompleteChannelCall(call.wire_seqno,
                        util::Status(static_cast<util::ErrorCode>(code_value),
                                     message.ok() ? message.value() : std::string()));
  }
}

void SfsClient::MountPoint::CompleteChannelCall(uint32_t wire_seqno,
                                                util::Result<util::Bytes> result) {
  auto it = pending_.find(wire_seqno);
  if (it == pending_.end()) {
    return;
  }
  PendingChannelCall call = std::move(it->second);
  pending_.erase(it);
  g_in_flight_->Add(-1);
  for (auto tok = token_to_seqno_.begin(); tok != token_to_seqno_.end();) {
    tok = tok->second == wire_seqno ? token_to_seqno_.erase(tok) : std::next(tok);
  }
  if (!result.ok()) {
    call.pm->errors->Increment();
  } else {
    call.pm->bytes_received->Increment(result->size());
  }
  call.pm->latency->Record(client_->clock_->now_ns() - call.t_call_ns);
  // Per-category time slices are deliberately not recorded for pipelined
  // calls: overlapping calls would each claim the full shared-clock
  // delta and double-count every category.
  if (call.span_id != 0) {
    if (obs::Span* s = spans_->Find(call.span_id)) {
      s->error = !result.ok();
    }
    spans_->End(call.span_id);
  }
  if (call.done) {
    call.done(std::move(result));
  }
}

util::Status SfsClient::MountPoint::Authenticate(uint32_t uid, const AuthSigner& signer) {
  if (read_only()) {
    // Public file system: everyone is anonymous, nothing to prove.
    authnos_[uid] = kAnonymousAuthno;
    return util::OkStatus();
  }
  util::Bytes auth_info = MakeAuthInfo(path_, session_id_);
  uint32_t seqno = next_seqno_++;
  std::optional<util::Bytes> auth_msg = signer(auth_info, seqno);
  if (!auth_msg.has_value()) {
    // Agent declined: anonymous access (paper §2.5).
    authnos_[uid] = kAnonymousAuthno;
    return util::OkStatus();
  }
  client_->clock_->Advance(client_->costs_->pk_sign_ns,
                           obs::TimeCategory::kCrypto);  // Agent signed the request.

  xdr::Encoder args;
  args.PutUint32(seqno);
  args.PutOpaque(*auth_msg);
  auto reply = Call(kSfsCtlProgram, kCtlLogin, args.Take());
  if (!reply.ok()) {
    authnos_[uid] = kAnonymousAuthno;
    SFS_LOG(kInfo) << "login failed for uid " << uid << ": " << reply.status().ToString();
    return reply.status();
  }
  xdr::Decoder dec(std::move(reply).value());
  ASSIGN_OR_RETURN(uint32_t authno, dec.GetUint32());
  authnos_[uid] = authno;
  return util::OkStatus();
}

uint32_t SfsClient::MountPoint::AuthnoFor(uint32_t uid) const {
  auto it = authnos_.find(uid);
  return it == authnos_.end() ? kAnonymousAuthno : it->second;
}

std::optional<std::string> SfsClient::MountPoint::RemoteUserName(uint32_t uid) {
  xdr::Encoder args;
  args.PutUint32(uid);
  auto reply = Call(kSfsCtlProgram, kCtlIdToName, args.Take());
  if (!reply.ok()) {
    return std::nullopt;
  }
  xdr::Decoder dec(std::move(reply).value());
  auto found = dec.GetBool();
  if (!found.ok() || !found.value()) {
    return std::nullopt;
  }
  auto name = dec.GetString();
  if (!name.ok()) {
    return std::nullopt;
  }
  return std::move(name).value();
}

std::optional<uint32_t> SfsClient::MountPoint::RemoteUid(const std::string& name) {
  xdr::Encoder args;
  args.PutString(name);
  auto reply = Call(kSfsCtlProgram, kCtlNameToId, args.Take());
  if (!reply.ok()) {
    return std::nullopt;
  }
  xdr::Decoder dec(std::move(reply).value());
  auto found = dec.GetBool();
  if (!found.ok() || !found.value()) {
    return std::nullopt;
  }
  auto uid = dec.GetUint32();
  if (!uid.ok()) {
    return std::nullopt;
  }
  return uid.value();
}

}  // namespace sfs
