// Self-certifying pathnames — the paper's central idea (§2.2).
//
// Every SFS file system lives under /sfs/Location:HostID, where Location
// names the server (DNS name or IP) and HostID is a collision-resistant
// hash of the server's public key and Location:
//
//   HostID = SHA-1("HostInfo", Location, PublicKey,
//                  "HostInfo", Location, PublicKey)
//
// The duplicated input is the paper's hedge against SHA-1 cryptanalysis
// (footnote 1).  Because the pathname pins the public key, a client can
// certify any server it can name, with no key-management machinery.
#ifndef SFS_SRC_SFS_PATHNAME_H_
#define SFS_SRC_SFS_PATHNAME_H_

#include <string>

#include "src/crypto/rabin.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sfs {

inline constexpr size_t kHostIdSize = 20;
inline constexpr char kSfsRoot[] = "/sfs";

// Computes HostID for (location, public key).
util::Bytes ComputeHostId(const std::string& location, const crypto::RabinPublicKey& key);

// A parsed Location:HostID pair.
struct SelfCertifyingPath {
  std::string location;
  util::Bytes host_id;  // 20 bytes.

  // "location:base32hostid" (the component name under /sfs).
  std::string ComponentName() const;
  // "/sfs/location:base32hostid".
  std::string FullPath() const;

  // Checks that `key` actually hashes to host_id for this location — the
  // certification step a client performs before trusting a server.
  bool Certifies(const crypto::RabinPublicKey& key) const;

  bool operator==(const SelfCertifyingPath& other) const {
    return location == other.location && host_id == other.host_id;
  }
  bool operator<(const SelfCertifyingPath& other) const {
    if (location != other.location) {
      return location < other.location;
    }
    return host_id < other.host_id;
  }

  // Builds the path for a server whose key is known.
  static SelfCertifyingPath For(const std::string& location,
                                const crypto::RabinPublicKey& key);

  // Parses a component of the form "location:hostid32".  Rejects missing
  // separators, bad base32, and wrong-length HostIDs.
  static util::Result<SelfCertifyingPath> Parse(const std::string& component);
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_PATHNAME_H_
