// Umbrella header: the SFS public API in one include.
//
//   #include "src/sfs/sfs.h"
//
// The pieces, bottom-up (each header carries its own detailed docs):
//
//   sfs::SelfCertifyingPath   (pathname.h)  — /sfs/Location:HostID names;
//       parse, format, and certify server keys against HostIDs.
//   sfs::ChannelCipher etc.   (session.h)   — the Figure-3 key negotiation
//       and the per-message ARC4 + rekeyed-HMAC secure channel.
//   sfs::SfsServer            (server.h)    — sfssd/sfsrwsd: serves a MemFs
//       over the read-write dialect (encrypted handles, leases, authno
//       credentials), hosts read-only images, answers SRP, serves
//       revocation certificates.
//   sfs::SfsClient            (client.h)    — sfscd: mounts self-certifying
//       paths, certifies keys, negotiates sessions, stacks the caches,
//       runs per-user Figure-4 authentication via agent signers.
//   sfs::PathRevokeCert       (revocation.h)— self-authenticating
//       revocations and forwarding pointers.
//   sfs::SrpFetchKey etc.     (sfskey.h)    — password-only bootstrap:
//       fetch the server's path + the user's encrypted key via SRP.
//   sfs::FormatRemoteUser     (idmap.h)     — the libsfs %user convention.
//
// Typical wiring (see examples/quickstart.cpp for the runnable version):
//
//   sim::Clock clock;                    // Virtual time.
//   sim::CostModel costs;                // Era-calibrated CPU costs.
//   auth::AuthServer authserver;         // pubkey -> credentials.
//   sfs::SfsServer server(&clock, &costs, {.location = "host.org"}, &authserver);
//   sfs::SfsClient client(&clock, &costs, dialer, {});
//   vfs::Vfs vfs(&clock, &costs);        // The "kernel".
//   vfs.MountRoot(&local_fs, local_fs.root_handle());
//   vfs.EnableSfs(&client);
//   vfs.Open(user, server.Path().FullPath() + "/file", vfs::OpenFlags::CreateRw());
#ifndef SFS_SRC_SFS_SFS_H_
#define SFS_SRC_SFS_SFS_H_

#include "src/sfs/client.h"
#include "src/sfs/idmap.h"
#include "src/sfs/pathname.h"
#include "src/sfs/proto.h"
#include "src/sfs/revocation.h"
#include "src/sfs/server.h"
#include "src/sfs/session.h"
#include "src/sfs/sfskey.h"

#endif  // SFS_SRC_SFS_SFS_H_
