// libsfs ID mapping (paper §3.3).
//
// "The NFS protocol uses numeric user and group IDs ... These numbers
// have no meaning outside of the local administrative realm.  A small C
// library, libsfs, allows programs to query file servers (through the
// client) for mappings of numeric IDs to and from human-readable names.
// We adopt the convention that user and group names prefixed with '%' are
// relative to the remote file server.  When both the ID and name of a
// user or group are the same on the client and server ... libsfs detects
// this situation and omits the percent sign."
//
// Server side: two control procedures backed by the authserver's public
// database.  Client side: a formatting helper implementing the percent
// convention against a local passwd-style table.
#ifndef SFS_SRC_SFS_IDMAP_H_
#define SFS_SRC_SFS_IDMAP_H_

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "src/util/status.h"

namespace sfs {

// Additional control procedures (continue the CtlProc space in proto.h).
enum IdMapProc : uint32_t {
  kCtlIdToName = 10,  // {uid} -> {bool found, name}
  kCtlNameToId = 11,  // {name} -> {bool found, uid}
};

// The client's local account table (a passwd-file stand-in).
class LocalIdTable {
 public:
  void Add(uint32_t uid, const std::string& name) {
    by_uid_[uid] = name;
    by_name_[name] = uid;
  }
  std::optional<std::string> NameFor(uint32_t uid) const {
    auto it = by_uid_.find(uid);
    return it == by_uid_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }
  std::optional<uint32_t> UidFor(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? std::nullopt : std::optional<uint32_t>(it->second);
  }

 private:
  std::map<uint32_t, std::string> by_uid_;
  std::map<std::string, uint32_t> by_name_;
};

// Queries the remote server for uid -> name (nullopt if unmapped there).
using RemoteIdLookup = std::function<std::optional<std::string>(uint32_t uid)>;

// Formats a file owner for display, libsfs-style:
//   * remote knows the uid as N, local maps N to the same name and uid
//     -> "name"            (identical on both sides: omit the percent)
//   * remote knows the uid as N otherwise -> "%N"  (server-relative)
//   * remote has no mapping -> decimal uid string.
std::string FormatRemoteUser(uint32_t uid, const LocalIdTable& local,
                             const RemoteIdLookup& remote);

}  // namespace sfs

#endif  // SFS_SRC_SFS_IDMAP_H_
