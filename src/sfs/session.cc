#include "src/sfs/session.h"

#include "src/crypto/sha1.h"
#include "src/xdr/xdr.h"

namespace sfs {
namespace {

constexpr size_t kKeyHalfSize = 20;
constexpr size_t kMacKeySize = 32;
constexpr size_t kMacSize = crypto::kSha1DigestSize;

}  // namespace

ChannelCipher::ChannelCipher(const util::Bytes& session_key) : stream_(session_key) {}

util::Bytes ChannelCipher::Seal(const util::Bytes& plaintext) {
  // 32 bytes of keystream re-key the MAC for this message and are never
  // used for encryption (paper §3.1.3).
  util::Bytes mac_key = stream_.NextBytes(kMacKeySize);

  xdr::Encoder body;
  body.PutUint32(static_cast<uint32_t>(plaintext.size()));
  body.PutFixedOpaque(plaintext);
  util::Bytes framed = body.Take();

  util::Bytes mac = crypto::HmacSha1(mac_key, framed);
  util::Append(&framed, mac);
  stream_.Crypt(&framed);  // Length, message, and MAC all get encrypted.
  return framed;
}

util::Result<util::Bytes> ChannelCipher::Open(const util::Bytes& sealed) {
  // Transactional: a failed Open must leave the stream where it was, so a
  // stale or corrupt message does not desynchronize the channel for the
  // genuine copy that retransmission will deliver.
  crypto::Arc4 checkpoint = stream_;
  auto fail = [&](const char* reason) {
    stream_ = checkpoint;
    return util::SecurityError(reason);
  };

  if (sealed.size() < 4 + kMacSize) {
    return fail("sealed message too short");
  }
  util::Bytes mac_key = stream_.NextBytes(kMacKeySize);
  util::Bytes buf = sealed;
  stream_.Crypt(&buf);

  util::Bytes framed(buf.begin(), buf.end() - static_cast<long>(kMacSize));
  util::Bytes mac(buf.end() - static_cast<long>(kMacSize), buf.end());
  if (!util::ConstantTimeEquals(mac, crypto::HmacSha1(mac_key, framed))) {
    return fail("MAC check failed");
  }
  xdr::Decoder dec(std::move(framed));
  auto len = dec.GetUint32();
  if (!len.ok()) {
    return fail("sealed message missing length");
  }
  auto plaintext = dec.GetFixedOpaque(len.value());
  if (!plaintext.ok() || !dec.AtEnd()) {
    return fail("length field inconsistent with message");
  }
  return std::move(plaintext).value();
}

util::Bytes SessionKeys::SessionId() const {
  xdr::Encoder enc;
  enc.PutString("SessionInfo");
  enc.PutOpaque(ksc);
  enc.PutOpaque(kcs);
  return crypto::Sha1Digest(enc.Take());
}

util::Bytes MakeAuthInfo(const SelfCertifyingPath& path, const util::Bytes& session_id) {
  xdr::Encoder enc;
  enc.PutString("AuthInfo");
  enc.PutString("FS");
  enc.PutString(path.location);
  enc.PutOpaque(path.host_id);
  enc.PutOpaque(session_id);
  return enc.Take();
}

util::Bytes MakeAuthId(const util::Bytes& auth_info) { return crypto::Sha1Digest(auth_info); }

SessionKeys DeriveSessionKeys(const crypto::RabinPublicKey& server_key,
                              const crypto::RabinPublicKey& client_key,
                              const util::Bytes& kc1, const util::Bytes& kc2,
                              const util::Bytes& ks1, const util::Bytes& ks2) {
  auto derive = [&](const char* label, const util::Bytes& kc, const util::Bytes& ks) {
    xdr::Encoder enc;
    enc.PutString(label);
    enc.PutOpaque(server_key.Serialize());
    enc.PutOpaque(kc);
    enc.PutOpaque(client_key.Serialize());
    enc.PutOpaque(ks);
    return crypto::Sha1Digest(enc.Take());
  };
  SessionKeys keys;
  keys.kcs = derive("KCS", kc1, ks1);
  keys.ksc = derive("KSC", kc2, ks2);
  return keys;
}

util::Result<ClientNegotiation> ClientNegotiation::Start(
    const crypto::RabinPublicKey& server_key, crypto::Prng* prng, size_t ephemeral_bits) {
  ClientNegotiation neg;
  neg.ephemeral_key = crypto::RabinPrivateKey::Generate(prng, ephemeral_bits);
  neg.kc1 = prng->RandomBytes(kKeyHalfSize);
  neg.kc2 = prng->RandomBytes(kKeyHalfSize);
  ASSIGN_OR_RETURN(neg.enc_kc1, server_key.Encrypt(neg.kc1, prng));
  ASSIGN_OR_RETURN(neg.enc_kc2, server_key.Encrypt(neg.kc2, prng));
  return neg;
}

util::Result<SessionKeys> ClientNegotiation::Finish(const crypto::RabinPublicKey& server_key,
                                                    const util::Bytes& enc_ks1,
                                                    const util::Bytes& enc_ks2) const {
  ASSIGN_OR_RETURN(util::Bytes ks1, ephemeral_key.Decrypt(enc_ks1));
  ASSIGN_OR_RETURN(util::Bytes ks2, ephemeral_key.Decrypt(enc_ks2));
  if (ks1.size() != kKeyHalfSize || ks2.size() != kKeyHalfSize) {
    return util::SecurityError("server key halves have wrong size");
  }
  return DeriveSessionKeys(server_key, ephemeral_key.public_key(), kc1, kc2, ks1, ks2);
}

util::Result<ServerNegotiation> ServerNegotiation::Respond(
    const crypto::RabinPrivateKey& server_key, const util::Bytes& client_pubkey_bytes,
    const util::Bytes& enc_kc1, const util::Bytes& enc_kc2, crypto::Prng* prng) {
  ASSIGN_OR_RETURN(crypto::RabinPublicKey client_key,
                   crypto::RabinPublicKey::Deserialize(client_pubkey_bytes));
  ASSIGN_OR_RETURN(util::Bytes kc1, server_key.Decrypt(enc_kc1));
  ASSIGN_OR_RETURN(util::Bytes kc2, server_key.Decrypt(enc_kc2));
  if (kc1.size() != kKeyHalfSize || kc2.size() != kKeyHalfSize) {
    return util::SecurityError("client key halves have wrong size");
  }
  util::Bytes ks1 = prng->RandomBytes(kKeyHalfSize);
  util::Bytes ks2 = prng->RandomBytes(kKeyHalfSize);

  ServerNegotiation out;
  out.keys = DeriveSessionKeys(server_key.public_key(), client_key, kc1, kc2, ks1, ks2);
  ASSIGN_OR_RETURN(out.enc_ks1, client_key.Encrypt(ks1, prng));
  ASSIGN_OR_RETURN(out.enc_ks2, client_key.Encrypt(ks2, prng));
  return out;
}

}  // namespace sfs
