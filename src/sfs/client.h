// The SFS client daemon: sfscd + the read-write protocol client.
//
// Given nothing but a self-certifying pathname, Mount():
//   1. dials the Location (the Dialer is this simulation's DNS+TCP),
//   2. asks the server for its public key and *verifies it against the
//      HostID* — the certification step that replaces key management,
//   3. runs the Figure 3 key negotiation with a short-lived client key
//      (forward secrecy),
//   4. fetches the encrypted root file handle and stacks the lease-based
//      attribute/access/name/data caches over the secure channel.
//
// Mounts are shared: two users naming the same self-certifying path reach
// the same cache ("they are asking for a server with the same public
// key"), while different HostIDs for the same Location never alias — the
// cache-sharing property AFS cannot offer (§5.1).
//
// Per-user authentication (Figure 4) goes through an agent-supplied
// signer, keeping the file system ignorant of user-authentication
// protocols.
#ifndef SFS_SRC_SFS_CLIENT_H_
#define SFS_SRC_SFS_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/crypto/prng.h"
#include "src/nfs/cache.h"
#include "src/nfs/client.h"
#include "src/readonly/readonly.h"
#include "src/rpc/rpc.h"
#include "src/sfs/pathname.h"
#include "src/sfs/revocation.h"
#include "src/sfs/server.h"
#include "src/sfs/session.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"

namespace sfs {

class SfsClient {
 public:
  struct Options {
    bool enhanced_caching = true;  // Leases + callbacks; false = plain timeouts.
    bool encrypt = true;           // Channel crypto (ablations disable).
    size_t ephemeral_key_bits = 512;
    sim::LinkProfile profile = sim::LinkProfile::Tcp();
    uint64_t attr_timeout_ns = 5'000'000'000;
    uint64_t prng_seed = 2;
    // Sliding send window for channel RPCs: 1 (default) keeps the
    // original stop-and-wait discipline; larger values pipeline up to
    // `window` concurrent calls over the secure channel (clamped to
    // rpc::kMaxSendWindow) and enable read-ahead in the cache layer.
    uint32_t window = 1;
    // Write-behind commit pipeline + close-to-open consistency in the
    // cache layer: unstable writes buffer locally and drain as
    // WRITE(UNSTABLE) batches + one COMMIT at close (replayed if the
    // server's write verifier changed).  Off = write-through.
    bool write_behind = false;
    // Receives the link.* / rpc.client.* metrics and trace events for
    // every mount; nullptr selects obs::Registry::Default().
    obs::Registry* registry = nullptr;
  };

  // Resolves a Location to a server, or nullptr (host unreachable).
  using Dialer = std::function<SfsServer*(const std::string& location)>;

  // Signs an authentication request on behalf of a user; nullopt means
  // the agent declines (the user proceeds anonymously).
  using AuthSigner =
      std::function<std::optional<util::Bytes>(const util::Bytes& auth_info, uint32_t seqno)>;

  SfsClient(sim::Clock* clock, const sim::CostModel* costs, Dialer dialer, Options options);
  ~SfsClient();

  // One mounted remote file system.
  class MountPoint {
   public:
    const SelfCertifyingPath& path() const { return path_; }
    const nfs::FileHandle& root_fh() const { return root_fh_; }
    // The cached FileSystemApi the VFS operates on.
    nfs::FileSystemApi* fs() { return cache_.get(); }
    nfs::CachingFs* cache() { return cache_.get(); }
    nfs::NfsClient* raw_client() { return nfs_client_.get(); }
    const util::Bytes& session_id() const { return session_id_; }

    // Figure 4: authenticate `uid` via the agent's signer.  On signer
    // decline or server rejection the user falls back to anonymous.
    util::Status Authenticate(uint32_t uid, const AuthSigner& signer);
    uint32_t AuthnoFor(uint32_t uid) const;
    bool HasAuthState(uint32_t uid) const { return authnos_.count(uid) != 0; }

    // libsfs ID mapping (paper §3.3): query the server for its notion of
    // a numeric ID / user name.  nullopt when the server has no mapping.
    std::optional<std::string> RemoteUserName(uint32_t uid);
    std::optional<uint32_t> RemoteUid(const std::string& name);

    sim::Link* link() { return link_.get(); }

    // Calls resent from above the link because the reply in hand was
    // stale (wrong xid or wrong keystream position).  Transit-loss
    // retransmits are counted by link()->retransmissions().  Per-instance
    // shim; the registry's rpc.client.stale_retries counter aggregates
    // the same events across mounts (and plain rpc::Clients).
    uint64_t stale_retries() const { return stale_retries_; }

    // True for mounts served by the read-only dialect (verified signed
    // images; no secure channel, no user authentication).
    bool read_only() const { return ro_client_ != nullptr; }

    // --- Pipelined channel (Options::window > 1) -----------------------
    // Starts a channel call without waiting for its reply.  If the send
    // window is full, blocks (pumping deliveries) until a slot frees;
    // the wait lands in the rpc.client.queue_wait_ns histogram.  `done`
    // runs when the matching reply opens, inside a later Call/CallAsync/
    // Drain on this mount.
    void CallAsync(uint32_t prog, uint32_t proc, const util::Bytes& args,
                   std::function<void(util::Result<util::Bytes>)> done);
    // Completes every outstanding pipelined call.
    void Drain();
    uint32_t window() const { return window_; }
    uint64_t in_flight() const { return pending_.size(); }
    // Replies that matched no outstanding call or failed to open at
    // their keystream position (late duplicates, tampering); aggregated
    // in rpc.client.unmatched_replies.
    uint64_t unmatched_replies() const { return unmatched_replies_; }

   private:
    friend class SfsClient;
    SfsClient* client_ = nullptr;
    SelfCertifyingPath path_;
    nfs::FileHandle root_fh_;
    util::Bytes session_id_;
    std::unique_ptr<sim::Link> link_;
    std::unique_ptr<ChannelCipher> cipher_out_;  // Seals client->server.
    std::unique_ptr<ChannelCipher> cipher_in_;   // Opens server->client.
    bool cleartext_ = false;
    SfsServer* server_ = nullptr;
    uint64_t connection_id_ = 0;
    std::unique_ptr<sim::Service> connection_;
    std::unique_ptr<nfs::NfsClient> nfs_client_;
    std::unique_ptr<readonly::ReadOnlyClient> ro_client_;
    std::unique_ptr<nfs::CachingFs> cache_;
    std::map<uint32_t, uint32_t> authnos_;  // uid -> authno (0 = anonymous).
    uint32_t next_seqno_ = 1;
    uint32_t next_xid_ = 1;
    // Wire-level sequence number prefixed to each kMsgEncrypted frame;
    // keys the server connection's duplicate-request cache.
    uint32_t next_wire_seqno_ = 1;
    uint64_t stale_retries_ = 0;

    // Pipelined-channel state.  The receive keystream is positional, so
    // sealed replies must open strictly in wire-seqno order: out-of-order
    // arrivals wait in `reorder_` until `next_open_seqno_` catches up (a
    // gap is filled by the owning call's retransmission timer — the
    // server's DRC replays the original sealed bytes for that seqno, at
    // the correct keystream position).
    struct PendingChannelCall {
      uint32_t xid = 0;
      uint32_t wire_seqno = 0;
      uint32_t prog = 0;
      uint32_t proc = 0;
      std::string proc_name;
      util::Bytes wire;  // Sealed once; retransmissions resend these bytes.
      uint64_t t_call_ns = 0;
      uint64_t deadline_ns = 0;
      uint64_t rto_ns = 0;
      uint32_t attempt = 0;
      uint64_t span_id = 0;  // Open "sfs.call.<proc>" span; 0 = tracing off.
      obs::ProcMetrics* pm = nullptr;
      std::function<void(util::Result<util::Bytes>)> done;
    };
    uint32_t window_ = 1;
    uint64_t unmatched_replies_ = 0;
    std::map<uint32_t, PendingChannelCall> pending_;  // By wire seqno.
    std::map<uint64_t, uint32_t> token_to_seqno_;     // Submission tokens.
    std::map<uint32_t, util::Bytes> reorder_;  // Sealed bodies awaiting order.
    uint32_t next_open_seqno_ = 1;

    // Observability handles (owned by the client's registry).  The
    // per-procedure prefixes match the plain-RPC Client's, so NFS3 and
    // SFS stacks report under the same metric names.
    obs::Tracer* tracer_ = nullptr;
    obs::SpanCollector* spans_ = nullptr;
    obs::Counter* m_stale_retries_ = nullptr;
    obs::Counter* m_unmatched_replies_ = nullptr;
    obs::Counter* m_window_occupancy_sum_ = nullptr;
    obs::Counter* m_window_samples_ = nullptr;
    obs::Gauge* g_in_flight_ = nullptr;
    obs::Histogram* m_queue_wait_ = nullptr;
    obs::ProcMetricsTable nfs_metrics_;  // "rpc.client.NFS3"
    obs::ProcMetricsTable ctl_metrics_;  // "rpc.client.SFSCTL"

    // Sends one RPC through the secure channel, charging client-side
    // crossings and crypto.  At window 1 this is the stop-and-wait
    // LegacyCall; otherwise it submits through the pipelined path and
    // pumps until this call completes (earlier async calls' callbacks
    // run along the way).
    util::Result<util::Bytes> Call(uint32_t prog, uint32_t proc, const util::Bytes& args);
    util::Result<util::Bytes> LegacyCall(uint32_t prog, uint32_t proc,
                                         const util::Bytes& args);
    // Sends (or resends) a pending call and arms its timer.
    void Transmit(PendingChannelCall* call);
    // Waits for the next delivery or the earliest retransmission
    // deadline; processes whichever fires (at most one event).
    void PumpOnce();
    void OnChannelDelivery(sim::Delivery delivery);
    // Opens stashed sealed replies in seqno order from next_open_seqno_.
    void TryOpenInOrder();
    // Removes the call from the window and runs its callback.
    void CompleteChannelCall(uint32_t wire_seqno, util::Result<util::Bytes> result);
    void CountUnmatched(uint32_t seqno, uint64_t wire_bytes, const std::string& note);
    void EmitChannelEvent(obs::TraceEvent::Kind kind, const PendingChannelCall& call,
                          uint64_t wire_bytes, const std::string& note);
  };

  // Mounts (or returns the existing mount for) a self-certifying path.
  // Fails with kSecurityError if the server cannot prove possession of
  // the HostID's key, or if a valid revocation certificate is known.
  util::Result<MountPoint*> Mount(const SelfCertifyingPath& path);

  // Records a revocation certificate after verifying it; future (and
  // existing) mounts of that path are blocked.
  util::Status SubmitRevocation(const PathRevokeCert& cert);
  bool IsRevoked(const SelfCertifyingPath& path) const;

  // Test hook: adversary installed on all future mount links.
  void set_interposer(sim::Interposer* interposer) { interposer_ = interposer; }

  uint64_t mounts_created() const { return mounts_created_; }

  // Regenerates the short-lived client key (sfscd does this hourly).
  void RotateEphemeralKey();

  sim::Clock* clock() { return clock_; }
  obs::Registry* registry() { return registry_; }

 private:
  sim::Clock* clock_;
  obs::Registry* registry_;
  const sim::CostModel* costs_;
  Dialer dialer_;
  Options options_;
  crypto::Prng prng_;
  crypto::RabinPrivateKey ephemeral_key_;  // K_C, shared across mounts.
  std::map<std::string, std::unique_ptr<MountPoint>> mounts_;  // By full path.
  std::map<std::string, PathRevokeCert> revocations_;          // By HostID bytes.
  sim::Interposer* interposer_ = nullptr;
  uint64_t mounts_created_ = 0;
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_CLIENT_H_
