#include "src/sfs/pathname.h"

#include "src/crypto/sha1.h"
#include "src/xdr/xdr.h"

namespace sfs {

util::Bytes ComputeHostId(const std::string& location, const crypto::RabinPublicKey& key) {
  // XDR-marshal the duplicated ("HostInfo", Location, PublicKey) tuple and
  // hash the raw bytes, per the paper's convention of hashing marshaled
  // structures (§3.2).
  xdr::Encoder enc;
  for (int i = 0; i < 2; ++i) {
    enc.PutString("HostInfo");
    enc.PutString(location);
    enc.PutOpaque(key.Serialize());
  }
  return crypto::Sha1Digest(enc.Take());
}

std::string SelfCertifyingPath::ComponentName() const {
  return location + ":" + util::Base32Encode(host_id);
}

std::string SelfCertifyingPath::FullPath() const {
  return std::string(kSfsRoot) + "/" + ComponentName();
}

bool SelfCertifyingPath::Certifies(const crypto::RabinPublicKey& key) const {
  return ComputeHostId(location, key) == host_id;
}

SelfCertifyingPath SelfCertifyingPath::For(const std::string& location,
                                           const crypto::RabinPublicKey& key) {
  return SelfCertifyingPath{location, ComputeHostId(location, key)};
}

util::Result<SelfCertifyingPath> SelfCertifyingPath::Parse(const std::string& component) {
  size_t colon = component.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon == component.size() - 1) {
    return util::InvalidArgument("not a Location:HostID name: " + component);
  }
  std::string location = component.substr(0, colon);
  ASSIGN_OR_RETURN(util::Bytes host_id, util::Base32Decode(component.substr(colon + 1)));
  if (host_id.size() != kHostIdSize) {
    return util::InvalidArgument("HostID has wrong length");
  }
  return SelfCertifyingPath{std::move(location), std::move(host_id)};
}

}  // namespace sfs
