// sfskey: the user's key-management utility (paper §2.4, §2.5.2).
//
// With nothing but a password, sfskey contacts a server's authserver over
// an *insecure* connection, runs SRP (which authenticates both sides
// without exposing the password to offline guessing), and downloads the
// server's self-certifying pathname plus an encrypted copy of the user's
// private key.  The password also decrypts that key — a safe design
// because the server only ever stores the SRP verifier and a ciphertext.
//
// Passwords are hardened with eksblowfish at a configurable cost, so
// guessing attacks "continue to take almost a full second of CPU time per
// account and candidate password tried" at an appropriate setting.
#ifndef SFS_SRC_SFS_SFSKEY_H_
#define SFS_SRC_SFS_SFSKEY_H_

#include <string>

#include "src/auth/authserver.h"
#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/sfs/server.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sfs {

// Encrypts a private key under a password: salt || cost || sealed-blob,
// where the seal key is eksblowfish(cost, salt, password).
util::Bytes EncryptPrivateKey(const crypto::RabinPrivateKey& key, const std::string& password,
                              unsigned cost, crypto::Prng* prng);

// Inverts EncryptPrivateKey; fails on a wrong password (MAC mismatch).
util::Result<crypto::RabinPrivateKey> DecryptPrivateKey(const util::Bytes& blob,
                                                        const std::string& password);

// Builds the complete per-user private record the user registers with
// authserv: SRP verifier + encrypted private key, both derived from one
// password ("typically also the password used in SRP").
auth::PrivateUserRecord MakeSrpRecord(const std::string& password, unsigned cost,
                                      const crypto::RabinPrivateKey& key, crypto::Prng* prng);

// What "sfskey add user@server" returns.
struct SfsKeyFetch {
  std::string self_certifying_path;  // e.g. "/sfs/sfs.lcs.mit.edu:vefa...".
  crypto::RabinPrivateKey private_key;
};

// Runs the full SRP fetch against `server` over a fresh connection with
// the given link profile.  One password prompt; no administrators, no
// certification authorities.
util::Result<SfsKeyFetch> SrpFetchKey(sim::Clock* clock, SfsServer* server,
                                      sim::LinkProfile profile, const std::string& user,
                                      const std::string& password, crypto::Prng* prng);

// "sfskey changepw": proves knowledge of the old password (a full SRP
// fetch), then re-registers a fresh verifier and a re-encrypted private
// key under the new password.  The authserver never sees either password.
util::Status SrpChangePassword(sim::Clock* clock, SfsServer* server, sim::LinkProfile profile,
                               const std::string& user, const std::string& old_password,
                               const std::string& new_password, unsigned cost,
                               crypto::Prng* prng);

}  // namespace sfs

#endif  // SFS_SRC_SFS_SFSKEY_H_
