#include "src/sfs/handle_crypt.h"

#include <cassert>

namespace sfs {
namespace {

// Fixed IV: handles already contain a high-entropy per-server secret, so
// identical plaintext handles across servers still encrypt differently
// (the key differs); within one server, handle uniqueness comes from the
// fileid/generation fields.
const util::Bytes kHandleIv(crypto::kBlowfishBlockSize, 0x00);

}  // namespace

HandleCryptFs::HandleCryptFs(nfs::FileSystemApi* inner, const util::Bytes& key)
    : inner_(inner), cipher_(key) {
  assert(key.size() == 20);
}

nfs::FileHandle HandleCryptFs::EncryptHandle(const nfs::FileHandle& fh) const {
  auto enc = cipher_.EncryptCbc(fh, kHandleIv);
  assert(enc.ok());  // Server handles are always 32 bytes.
  return std::move(enc).value();
}

std::optional<nfs::FileHandle> HandleCryptFs::DecryptHandle(const nfs::FileHandle& fh) const {
  if (fh.size() != nfs::kFileHandleSize) {
    return std::nullopt;
  }
  auto dec = cipher_.DecryptCbc(fh, kHandleIv);
  if (!dec.ok()) {
    return std::nullopt;
  }
  return std::move(dec).value();
}

// Decrypt-or-bail prologue shared by all methods taking a handle.
#define SFS_DECRYPT_FH(var, fh)            \
  auto var = DecryptHandle(fh);            \
  if (!var.has_value()) {                  \
    return nfs::Stat::kBadHandle;          \
  }

nfs::Stat HandleCryptFs::GetAttr(const nfs::FileHandle& fh, nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->GetAttr(*inner_fh, attr);
}

nfs::Stat HandleCryptFs::SetAttr(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                                 const nfs::Sattr& sattr, nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->SetAttr(*inner_fh, cred, sattr, attr);
}

nfs::Stat HandleCryptFs::Lookup(const nfs::FileHandle& dir, const std::string& name,
                                const nfs::Credentials& cred, nfs::FileHandle* out,
                                nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_dir, dir);
  nfs::Stat s = inner_->Lookup(*inner_dir, name, cred, out, attr);
  if (s == nfs::Stat::kOk) {
    *out = EncryptHandle(*out);
  }
  return s;
}

nfs::Stat HandleCryptFs::Access(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                                uint32_t want, uint32_t* allowed) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->Access(*inner_fh, cred, want, allowed);
}

nfs::Stat HandleCryptFs::ReadLink(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                                  std::string* target) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->ReadLink(*inner_fh, cred, target);
}

nfs::Stat HandleCryptFs::Read(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                              uint64_t offset, uint32_t count, util::Bytes* data, bool* eof) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->Read(*inner_fh, cred, offset, count, data, eof);
}

nfs::Stat HandleCryptFs::Write(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                               uint64_t offset, const util::Bytes& data, bool stable,
                               nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->Write(*inner_fh, cred, offset, data, stable, attr);
}

nfs::Stat HandleCryptFs::Create(const nfs::FileHandle& dir, const std::string& name,
                                const nfs::Credentials& cred, const nfs::Sattr& sattr,
                                nfs::FileHandle* out, nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_dir, dir);
  nfs::Stat s = inner_->Create(*inner_dir, name, cred, sattr, out, attr);
  if (s == nfs::Stat::kOk) {
    *out = EncryptHandle(*out);
  }
  return s;
}

nfs::Stat HandleCryptFs::Mkdir(const nfs::FileHandle& dir, const std::string& name,
                               const nfs::Credentials& cred, uint32_t mode,
                               nfs::FileHandle* out, nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_dir, dir);
  nfs::Stat s = inner_->Mkdir(*inner_dir, name, cred, mode, out, attr);
  if (s == nfs::Stat::kOk) {
    *out = EncryptHandle(*out);
  }
  return s;
}

nfs::Stat HandleCryptFs::Symlink(const nfs::FileHandle& dir, const std::string& name,
                                 const std::string& target, const nfs::Credentials& cred,
                                 nfs::FileHandle* out, nfs::Fattr* attr) {
  SFS_DECRYPT_FH(inner_dir, dir);
  nfs::Stat s = inner_->Symlink(*inner_dir, name, target, cred, out, attr);
  if (s == nfs::Stat::kOk) {
    *out = EncryptHandle(*out);
  }
  return s;
}

nfs::Stat HandleCryptFs::Remove(const nfs::FileHandle& dir, const std::string& name,
                                const nfs::Credentials& cred) {
  SFS_DECRYPT_FH(inner_dir, dir);
  return inner_->Remove(*inner_dir, name, cred);
}

nfs::Stat HandleCryptFs::Rmdir(const nfs::FileHandle& dir, const std::string& name,
                               const nfs::Credentials& cred) {
  SFS_DECRYPT_FH(inner_dir, dir);
  return inner_->Rmdir(*inner_dir, name, cred);
}

nfs::Stat HandleCryptFs::Rename(const nfs::FileHandle& from_dir, const std::string& from_name,
                                const nfs::FileHandle& to_dir, const std::string& to_name,
                                const nfs::Credentials& cred) {
  SFS_DECRYPT_FH(inner_from, from_dir);
  SFS_DECRYPT_FH(inner_to, to_dir);
  return inner_->Rename(*inner_from, from_name, *inner_to, to_name, cred);
}

nfs::Stat HandleCryptFs::Link(const nfs::FileHandle& target, const nfs::FileHandle& dir,
                              const std::string& name, const nfs::Credentials& cred) {
  SFS_DECRYPT_FH(inner_target, target);
  SFS_DECRYPT_FH(inner_dir, dir);
  return inner_->Link(*inner_target, *inner_dir, name, cred);
}

nfs::Stat HandleCryptFs::ReadDir(const nfs::FileHandle& dir, const nfs::Credentials& cred,
                                 uint64_t cookie, uint32_t max_entries,
                                 std::vector<nfs::DirEntry>* entries, bool* eof) {
  SFS_DECRYPT_FH(inner_dir, dir);
  return inner_->ReadDir(*inner_dir, cred, cookie, max_entries, entries, eof);
}

nfs::Stat HandleCryptFs::FsStat(const nfs::FileHandle& fh, uint64_t* total_bytes,
                                uint64_t* used_bytes) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->FsStat(*inner_fh, total_bytes, used_bytes);
}

nfs::Stat HandleCryptFs::Commit(const nfs::FileHandle& fh) {
  SFS_DECRYPT_FH(inner_fh, fh);
  return inner_->Commit(*inner_fh);
}

#undef SFS_DECRYPT_FH

}  // namespace sfs
