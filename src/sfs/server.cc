#include "src/sfs/server.h"

#include <cassert>

#include "src/crypto/sha1.h"
#include "src/sfs/idmap.h"
#include "src/util/log.h"
#include "src/xdr/xdr.h"

namespace sfs {
namespace {

// Derives the server's 20-byte Blowfish handle-encryption key from its
// private key material and a label (deterministic per server, never on
// the wire).
util::Bytes DeriveHandleKey(const crypto::RabinPrivateKey& key) {
  xdr::Encoder enc;
  enc.PutString("HandleKey");
  enc.PutOpaque(key.Serialize());
  return crypto::Sha1Digest(enc.Take());
}

util::Bytes FrameMessage(uint32_t type, const util::Bytes& payload) {
  xdr::Encoder enc;
  enc.PutUint32(type);
  enc.PutOpaque(payload);
  return enc.Take();
}

// Closed all-crypto span for a seal/open interval on the server side.
void RecordCryptoSpan(obs::SpanCollector* spans, const char* name, uint64_t start_ns,
                      uint64_t end_ns, uint64_t bytes, obs::SpanContext parent) {
  if (spans == nullptr || !spans->enabled() || end_ns == start_ns) {
    return;
  }
  obs::Span span;
  span.name = name;
  span.layer = "server";
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.cat_ns[static_cast<size_t>(obs::TimeCategory::kCrypto)] = end_ns - start_ns;
  span.wire_bytes = bytes;
  spans->RecordClosed(std::move(span), parent);
}

}  // namespace

SfsServer::SfsServer(sim::Clock* clock, const sim::CostModel* costs, Options options,
                     auth::AuthServer* authserver)
    : clock_(clock),
      costs_(costs),
      options_(std::move(options)),
      prng_(options_.prng_seed),
      identities_(),
      disk_(clock, sim::DiskProfile::Ibm18Es(),
            options_.registry != nullptr ? options_.registry : obs::Registry::Default()),
      memfs_(clock, &disk_,
             nfs::MemFs::Options{options_.fsid,
                                 /*handle_secret=*/prng_.RandomUint64(0),
                                 /*read_only=*/false}),
      crypt_fs_(&memfs_, DeriveHandleKey([&] {
        Identity primary;
        primary.location = options_.location;
        primary.key = crypto::RabinPrivateKey::Generate(&prng_, options_.key_bits);
        primary.host_id = ComputeHostId(primary.location, primary.key.public_key());
        identities_.push_back(std::move(primary));
        return identities_[0].key;
      }())),
      nfs_program_(&crypt_fs_, clock, costs),
      authserver_(authserver),
      registry_(options_.registry != nullptr ? options_.registry
                                             : obs::Registry::Default()),
      tracer_(&registry_->tracer()),
      spans_(&registry_->spans()),
      m_drc_hits_(registry_->GetCounter("server.drc_hits")) {
  nfs_program_.set_lease_ns(options_.lease_ns);
  nfs_metrics_.Init(registry_, "server.NFS3");
  ctl_metrics_.Init(registry_, "server.SFSCTL");
  if (options_.audit) {
    ServerAuditor::Options audit_options;
    audit_options.batch_records = options_.audit_batch_records;
    // The genesis key is the verifier's root of trust; it is drawn from
    // the server PRNG (deterministic per seed) unless supplied, and
    // would be escrowed off-host in a real deployment.
    audit_options.genesis_key = options_.audit_genesis_key.empty()
                                    ? prng_.RandomBytes(crypto::kSha1DigestSize)
                                    : options_.audit_genesis_key;
    auditor_ = std::make_unique<ServerAuditor>(clock_, costs_, registry_, audit_options);
  }
}

const crypto::RabinPublicKey& SfsServer::public_key() const {
  return identities_[0].key.public_key();
}

const crypto::RabinPrivateKey& SfsServer::private_key() const { return identities_[0].key; }

SelfCertifyingPath SfsServer::Path() const {
  return SelfCertifyingPath{identities_[0].location, identities_[0].host_id};
}

void SfsServer::AddIdentity(crypto::RabinPrivateKey key, const std::string& location) {
  Identity identity;
  identity.location = location;
  identity.host_id = ComputeHostId(location, key.public_key());
  identity.key = std::move(key);
  identities_.push_back(std::move(identity));
}

void SfsServer::ServeRevocation(PathRevokeCert cert) {
  const util::Bytes host_id = cert.RevokedPath().host_id;
  revocations_[util::StringOf(host_id)] = std::move(cert);
  if (auditor_ != nullptr) {
    auditor_->Record(obs::AuditKind::kRevocationInstalled, /*connection_id=*/0,
                     /*wire_seqno=*/0, /*proc=*/0, /*verdict=*/0,
                     obs::AuditDigest(host_id));
  }
}

SelfCertifyingPath SfsServer::ServeReadOnlyImage(readonly::SignedImage image) {
  auto key = crypto::RabinPublicKey::Deserialize(image.public_key);
  assert(key.ok() && "read-only image has an undecodable public key");
  SelfCertifyingPath path = SelfCertifyingPath::For(image.location, key.value());
  ro_replicas_[util::StringOf(path.host_id)] =
      std::make_unique<readonly::ReplicaServer>(clock_, costs_, std::move(image));
  return path;
}

SfsServer::Accepted SfsServer::CreateConnection() {
  uint64_t id = next_connection_id_++;
  return Accepted{std::make_unique<ServerConnection>(this, id), id};
}

void SfsServer::RegisterCacheCallback(uint64_t connection_id, InvalidateFn fn) {
  cache_callbacks_[connection_id] = std::move(fn);
}

void SfsServer::UnregisterCacheCallback(uint64_t connection_id) {
  cache_callbacks_.erase(connection_id);
}

const SfsServer::Identity* SfsServer::FindIdentity(const std::string& location,
                                                   const util::Bytes& host_id) const {
  for (const Identity& identity : identities_) {
    if (identity.location == location && identity.host_id == host_id) {
      return &identity;
    }
  }
  return nullptr;
}

void SfsServer::NotifyMutation(const nfs::FileHandle& fh, uint64_t originating_connection) {
  // "The server does not wait for invalidations to be acknowledged" —
  // callbacks charge no virtual time.
  for (const auto& [conn_id, fn] : cache_callbacks_) {
    if (conn_id != originating_connection) {
      fn(fh);
    }
  }
}

// ---------------------------------------------------------------------------

ServerConnection::ServerConnection(SfsServer* server, uint64_t id)
    : server_(server), id_(id) {}

ServerConnection::~ServerConnection() {
  if (server_->auditor_ != nullptr) {
    server_->auditor_->Flush();
  }
}

util::Result<util::Bytes> ServerConnection::Handle(const util::Bytes& request) {
  if (state_ == State::kDead) {
    return util::Unavailable("connection closed");
  }
  xdr::Decoder dec(request);
  auto type = dec.GetUint32();
  auto payload = dec.GetOpaque();
  if (!type.ok() || !payload.ok() || !dec.AtEnd()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed connection message");
  }
  // Read-only dialect hand-off: once a connection is bound to a replica,
  // its protocol messages go straight to the subsidiary server.  (These
  // are idempotent reads, so redelivered copies may simply re-execute.)
  if (ro_delegate_ != nullptr && (type.value() == readonly::kMsgRoGetRoot ||
                                  type.value() == readonly::kMsgRoGetNode)) {
    return ro_delegate_->Handle(request);
  }
  switch (type.value()) {
    case kMsgConnect:
    case kMsgNegotiate:
    case kMsgSrpStart:
    case kMsgSrpFinish: {
      // A duplicated handshake message would otherwise hit the state
      // machine out of phase and kill the connection; replay the reply.
      if (!last_handshake_request_.empty() && request == last_handshake_request_) {
        ++server_->drc_hits_;
        server_->m_drc_hits_->Increment();
        if (server_->tracer_->active()) {
          obs::TraceEvent event;
          event.kind = obs::TraceEvent::Kind::kServerDrcHit;
          event.layer = "sfs.chan";
          event.proc_name = "HANDSHAKE";
          event.wire_bytes = last_handshake_reply_.size();
          event.t_send_ns = server_->clock_->now_ns();
          event.t_recv_ns = event.t_send_ns;
          event.drc_hit = true;
          event.note = "redelivered handshake answered with recorded reply";
          server_->tracer_->Emit(event);
        }
        return last_handshake_reply_;
      }
      auto reply = type.value() == kMsgConnect     ? HandleConnect(payload.value())
                   : type.value() == kMsgNegotiate ? HandleNegotiate(payload.value())
                   : type.value() == kMsgSrpStart  ? HandleSrpStart(payload.value())
                                                   : HandleSrpFinish(payload.value());
      if (reply.ok()) {
        last_handshake_request_ = request;
        last_handshake_reply_ = reply.value();
      }
      return reply;
    }
    case kMsgEncrypted:
      return HandleEncrypted(payload.value());
    default:
      state_ = State::kDead;
      return util::InvalidArgument("unknown message type");
  }
}

util::Result<util::Bytes> ServerConnection::HandleConnect(const util::Bytes& payload) {
  if (state_ != State::kAwaitConnect) {
    state_ = State::kDead;
    return util::FailedPrecondition("connect after handshake");
  }
  xdr::Decoder dec(payload);
  auto service = dec.GetUint32();
  auto location = dec.GetString();
  auto host_id = dec.GetOpaque();
  auto extensions = dec.GetString();
  if (!service.ok() || !location.ok() || !host_id.ok() || !extensions.ok()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed connect request");
  }

  xdr::Encoder reply;
  // A served revocation certificate overrides everything for its HostID.
  auto revoked = server_->revocations_.find(util::StringOf(host_id.value()));
  if (revoked != server_->revocations_.end()) {
    if (server_->auditor_ != nullptr) {
      server_->auditor_->Record(obs::AuditKind::kRevocationServed, id_,
                                /*wire_seqno=*/0, /*proc=*/kConnectRevoked,
                                /*verdict=*/0, obs::AuditDigest(host_id.value()));
    }
    reply.PutUint32(kConnectRevoked);
    reply.PutOpaque(revoked->second.Serialize());
    return FrameMessage(kMsgConnect, reply.Take());
  }

  // Read-only identities take precedence: they are served by the
  // subsidiary read-only daemon, no key negotiation needed.
  auto replica = server_->ro_replicas_.find(util::StringOf(host_id.value()));
  if (replica != server_->ro_replicas_.end() &&
      replica->second->image().location == location.value()) {
    ro_delegate_ = replica->second.get();
    state_ = State::kEstablished;  // No negotiation phase for this dialect.
    reply.PutUint32(kConnectOk);
    reply.PutOpaque(replica->second->image().public_key);
    reply.PutUint32(kDialectReadOnly);
    return FrameMessage(kMsgConnect, reply.Take());
  }

  identity_ = server_->FindIdentity(location.value(), host_id.value());
  if (identity_ == nullptr) {
    reply.PutUint32(kConnectUnknown);
    return FrameMessage(kMsgConnect, reply.Take());
  }
  state_ = State::kAwaitNegotiate;
  reply.PutUint32(kConnectOk);
  reply.PutOpaque(identity_->key.public_key().Serialize());
  reply.PutUint32(kDialectReadWrite);
  return FrameMessage(kMsgConnect, reply.Take());
}

util::Result<util::Bytes> ServerConnection::HandleNegotiate(const util::Bytes& payload) {
  if (state_ != State::kAwaitNegotiate) {
    state_ = State::kDead;
    return util::FailedPrecondition("negotiate before connect");
  }
  xdr::Decoder dec(payload);
  auto client_pubkey = dec.GetOpaque();
  auto enc_kc1 = dec.GetOpaque();
  auto enc_kc2 = dec.GetOpaque();
  auto want_cleartext = dec.GetBool();
  if (!client_pubkey.ok() || !enc_kc1.ok() || !enc_kc2.ok() || !want_cleartext.ok()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed negotiate request");
  }

  server_->clock_->Advance(server_->costs_->pk_decrypt_ns * 2 +
                               server_->costs_->pk_encrypt_ns * 2,
                           obs::TimeCategory::kCrypto);
  auto negotiation = ServerNegotiation::Respond(identity_->key, client_pubkey.value(),
                                                enc_kc1.value(), enc_kc2.value(),
                                                &server_->prng_);
  if (!negotiation.ok()) {
    state_ = State::kDead;
    return negotiation.status();
  }

  cleartext_ = want_cleartext.value() && server_->options_.allow_cleartext;
  if (!cleartext_) {
    cipher_in_ = std::make_unique<ChannelCipher>(negotiation->keys.kcs);
    cipher_out_ = std::make_unique<ChannelCipher>(negotiation->keys.ksc);
  }
  session_id_ = negotiation->keys.SessionId();
  state_ = State::kEstablished;

  xdr::Encoder reply;
  reply.PutBool(cleartext_);
  reply.PutOpaque(negotiation->enc_ks1);
  reply.PutOpaque(negotiation->enc_ks2);
  return FrameMessage(kMsgNegotiate, reply.Take());
}

util::Result<util::Bytes> ServerConnection::HandleEncrypted(const util::Bytes& payload) {
  if (state_ != State::kEstablished) {
    state_ = State::kDead;
    return util::FailedPrecondition("encrypted message before negotiation");
  }
  // User-level server daemon: two kernel crossings per request.
  server_->costs_->ChargeCrossing(server_->clock_, 2);

  // The wire seqno travels outside the sealed body: the duplicate check
  // must run *before* the cipher, because opening a retransmitted copy
  // would advance the receive keystream a second time.
  xdr::Decoder frame(payload);
  auto wire_seqno = frame.GetUint32();
  auto sealed_body = frame.GetOpaque();
  if (!wire_seqno.ok() || !sealed_body.ok() || !frame.AtEnd()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed channel frame");
  }
  if (auto cached = reply_cache_.find(wire_seqno.value()); cached != reply_cache_.end()) {
    ++server_->drc_hits_;
    server_->m_drc_hits_->Increment();
    if (server_->tracer_->active()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEvent::Kind::kServerDrcHit;
      event.layer = "sfs.chan";
      event.seqno = wire_seqno.value();
      event.wire_bytes = cached->second.size();
      event.t_send_ns = server_->clock_->now_ns();
      event.t_recv_ns = event.t_send_ns;
      event.drc_hit = true;
      event.note = "replayed sealed reply; keystreams untouched";
      server_->tracer_->Emit(event);
    }
    if (server_->spans_->enabled()) {
      // The sealed body cannot be opened again (the keystream must not
      // advance), so the replay's trace context comes from the cache of
      // the original dispatch.
      obs::SpanContext parent = server_->spans_->current();
      if (auto ctx = ctx_cache_.find(wire_seqno.value()); ctx != ctx_cache_.end()) {
        parent = ctx->second;
      }
      obs::Span span;
      span.name = "sfs.drc_hit";
      span.layer = "server";
      span.start_ns = server_->clock_->now_ns();
      span.end_ns = span.start_ns;
      span.seqno = wire_seqno.value();
      span.wire_bytes = cached->second.size();
      span.drc_hit = true;
      server_->spans_->RecordClosed(std::move(span), parent);
    }
    return cached->second;
  }
  if (reply_cache_max_seqno_ != 0 &&
      wire_seqno.value() + kDrcWindow <= reply_cache_max_seqno_) {
    state_ = State::kDead;
    return util::SecurityError("channel seqno below duplicate-cache window");
  }

  util::Bytes plaintext;
  if (cleartext_) {
    server_->costs_->ChargeCopy(server_->clock_, sealed_body->size());
    plaintext = sealed_body.value();
  } else {
    const uint64_t open_start_ns = server_->clock_->now_ns();
    server_->costs_->ChargeCrypto(server_->clock_, sealed_body->size());
    RecordCryptoSpan(server_->spans_, "sfs.open", open_start_ns,
                     server_->clock_->now_ns(), sealed_body->size(),
                     server_->spans_->current());
    auto opened = cipher_in_->Open(sealed_body.value());
    if (!opened.ok()) {
      state_ = State::kDead;  // Tampered or forged: kill the session.
      return opened.status();
    }
    plaintext = std::move(opened).value();
  }

  auto reply = DispatchRpc(plaintext, wire_seqno.value());
  if (!reply.ok()) {
    state_ = State::kDead;
    return reply.status();
  }
  // The reply frame echoes the request's wire seqno in cleartext, so a
  // pipelined client can order sealed replies for in-order opening
  // before touching the receive cipher (docs/PROTOCOL.md §10).  Fresh
  // replies are sealed in request order — requests are handled serially
  // — so the echoed seqnos are exactly the keystream order.
  util::Bytes sealed_reply;
  if (cleartext_) {
    server_->costs_->ChargeCopy(server_->clock_, reply->size());
    sealed_reply = reply.value();
  } else {
    const uint64_t seal_start_ns = server_->clock_->now_ns();
    sealed_reply = cipher_out_->Seal(reply.value());
    server_->costs_->ChargeCrypto(server_->clock_, sealed_reply.size());
    RecordCryptoSpan(server_->spans_, "sfs.seal", seal_start_ns,
                     server_->clock_->now_ns(), sealed_reply.size(),
                     server_->spans_->current());
  }
  xdr::Encoder reply_frame;
  reply_frame.PutUint32(wire_seqno.value());
  reply_frame.PutOpaque(sealed_reply);
  util::Bytes framed_reply = FrameMessage(kMsgEncrypted, reply_frame.Take());

  // Record the framed reply so a retransmit replays these exact bytes
  // without touching either keystream.
  reply_cache_[wire_seqno.value()] = framed_reply;
  if (wire_seqno.value() > reply_cache_max_seqno_) {
    reply_cache_max_seqno_ = wire_seqno.value();
  }
  while (!reply_cache_.empty() &&
         reply_cache_.begin()->first + kDrcWindow <= reply_cache_max_seqno_) {
    reply_cache_.erase(reply_cache_.begin());
  }
  while (!ctx_cache_.empty() &&
         ctx_cache_.begin()->first + kDrcWindow <= reply_cache_max_seqno_) {
    ctx_cache_.erase(ctx_cache_.begin());
  }
  return framed_reply;
}

util::Result<util::Bytes> ServerConnection::DispatchRpc(const util::Bytes& rpc_message,
                                                        uint32_t wire_seqno) {
  // Minimal RPC framing: xid, prog, proc, args (see rpc/rpc.h).
  xdr::Decoder dec(rpc_message);
  auto xid = dec.GetUint32();
  auto prog = dec.GetUint32();
  auto proc = dec.GetUint32();
  auto args = dec.GetOpaque();
  if (!xid.ok() || !prog.ok() || !proc.ok() || !args.ok()) {
    return util::InvalidArgument("malformed RPC in channel");
  }
  // Optional trailing trace context (rides inside the sealed body; see
  // docs/OBSERVABILITY.md §"Spans").
  obs::SpanContext wire_ctx;
  if (!dec.AtEnd()) {
    auto trace_id = dec.GetUint64();
    auto parent_span = dec.GetUint64();
    if (!trace_id.ok() || !parent_span.ok()) {
      return util::InvalidArgument("malformed RPC in channel");
    }
    wire_ctx = obs::SpanContext{trace_id.value(), parent_span.value()};
  }
  if (!dec.AtEnd()) {
    return util::InvalidArgument("malformed RPC in channel");
  }
  if (wire_ctx.valid()) {
    ctx_cache_[wire_seqno] = wire_ctx;
  }

  const bool is_nfs = prog.value() == nfs::kNfsProgram;
  const bool is_ctl = prog.value() == kSfsCtlProgram;
  const std::string proc_name = is_nfs   ? nfs::ProcName(proc.value())
                                : is_ctl ? CtlProcName(proc.value())
                                         : std::to_string(proc.value());
  const uint64_t t_dispatch_ns = server_->clock_->now_ns();

  auto emit = [&](obs::TraceEvent::Kind kind, uint64_t wire_bytes,
                  const std::string& note) {
    if (!server_->tracer_->active()) {
      return;
    }
    obs::TraceEvent event;
    event.kind = kind;
    event.layer = "sfs.chan";
    event.prog = prog.value();
    event.proc = proc.value();
    event.proc_name = proc_name;
    event.xid = xid.value();
    event.seqno = wire_seqno;
    event.wire_bytes = wire_bytes;
    event.t_send_ns = t_dispatch_ns;
    event.t_recv_ns = server_->clock_->now_ns();
    event.note = note;
    server_->tracer_->Emit(event);
  };
  emit(obs::TraceEvent::Kind::kServerDispatch, rpc_message.size(), "");

  obs::ProcMetrics* pm = is_nfs   ? server_->nfs_metrics_.Get(proc.value(), proc_name)
                         : is_ctl ? server_->ctl_metrics_.Get(proc.value(), proc_name)
                                  : nullptr;
  if (pm != nullptr) {
    pm->calls->Increment();
    pm->bytes_received->Increment(rpc_message.size());
  }

  uint64_t dispatch_span = 0;
  if (server_->spans_->enabled()) {
    dispatch_span = server_->spans_->Begin("sfs.dispatch." + proc_name, "server", wire_ctx);
    if (obs::Span* s = server_->spans_->Find(dispatch_span)) {
      s->xid = xid.value();
      s->seqno = wire_seqno;
      s->wire_bytes = rpc_message.size();
    }
    server_->spans_->Push(dispatch_span);
  }

  util::Result<util::Bytes> result = util::InvalidArgument("no such program");
  if (is_nfs) {
    result = HandleNfs(proc.value(), args.value());
  } else if (is_ctl) {
    result = HandleCtl(proc.value(), args.value());
  }

  // Journal the executed operation (retransmits answered from the DRC
  // never reach this point, so the journal is exactly-once).  Recorded
  // while the dispatch span is still ambient: the record carries its
  // trace/span ids.
  if (server_->auditor_ != nullptr) {
    uint32_t verdict = result.ok() ? 0 : static_cast<uint32_t>(result.status().code());
    // Stable-storage flag: COMMITs and FILE_SYNC WRITEs are durable
    // commitments; UNSTABLE write-behind traffic stays unflagged.
    if (is_nfs && (proc.value() == nfs::kProcCommit ||
                   (proc.value() == nfs::kProcWrite &&
                    AuditNfsWriteIsStable(args.value())))) {
      verdict |= kAuditVerdictStableBit;
    }
    server_->auditor_->Record(
        is_nfs   ? obs::AuditKind::kNfs
        : is_ctl ? obs::AuditKind::kCtl
                 : obs::AuditKind::kOther,
        id_, wire_seqno, proc.value(), verdict,
        is_nfs ? AuditFhDigestOfNfsArgs(args.value()) : 0);
  }

  if (dispatch_span != 0) {
    if (obs::Span* s = server_->spans_->Find(dispatch_span)) {
      s->error = !result.ok();
    }
    server_->spans_->Pop(dispatch_span);
    server_->spans_->End(dispatch_span);
  }

  if (pm != nullptr) {
    // Handler execution time (server CPU + disk, by the cost model).
    pm->latency->Record(server_->clock_->now_ns() - t_dispatch_ns);
    if (!result.ok()) {
      pm->errors->Increment();
    }
  }

  xdr::Encoder reply;
  reply.PutUint32(xid.value());
  if (result.ok()) {
    reply.PutUint32(0);
    reply.PutOpaque(result.value());
  } else {
    reply.PutUint32(1);
    reply.PutUint32(static_cast<uint32_t>(result.status().code()));
    reply.PutString(result.status().message());
  }
  util::Bytes reply_bytes = reply.Take();
  if (pm != nullptr) {
    pm->bytes_sent->Increment(reply_bytes.size());
  }
  emit(obs::TraceEvent::Kind::kServerReply, reply_bytes.size(),
       result.ok() ? "" : result.status().message());
  return reply_bytes;
}

util::Result<util::Bytes> ServerConnection::HandleNfs(uint32_t proc,
                                                      const util::Bytes& args) {
  // The SFS dialect tags requests with an authentication number, mapped
  // to credentials established at login — never wire credentials.
  xdr::Decoder dec(args);
  ASSIGN_OR_RETURN(uint32_t authno, dec.GetUint32());
  nfs::Credentials creds = nfs::Credentials::Anonymous();
  if (authno != kAnonymousAuthno) {
    auto it = authno_to_creds_.find(authno);
    if (it == authno_to_creds_.end()) {
      return util::PermissionDenied("unknown authentication number");
    }
    creds = it->second;
  }
  util::Bytes nfs_args = dec.TakeRemaining();

  auto reply = server_->nfs_program_.Handle(creds, proc, nfs_args);
  if (!reply.ok()) {
    return reply;
  }

  // Lease coherence: invalidate other clients' cached state for mutated
  // handles.
  switch (proc) {
    case nfs::kProcSetAttr:
    case nfs::kProcWrite:
    case nfs::kProcCreate:
    case nfs::kProcMkdir:
    case nfs::kProcSymlink:
    case nfs::kProcRemove:
    case nfs::kProcRmdir: {
      xdr::Decoder fh_dec(nfs_args);
      auto fh = fh_dec.GetOpaque();
      if (fh.ok()) {
        server_->NotifyMutation(fh.value(), id_);
      }
      break;
    }
    case nfs::kProcRename:
    case nfs::kProcLink: {
      // Two handles are affected: (from_dir, to_dir) for rename,
      // (target, dir) for link; both happen to be the first two opaques
      // around one string for rename, or adjacent for link.
      xdr::Decoder fh_dec(nfs_args);
      auto first = fh_dec.GetOpaque();
      if (first.ok()) {
        server_->NotifyMutation(first.value(), id_);
      }
      if (proc == nfs::kProcRename) {
        auto from_name = fh_dec.GetString();
        auto to = fh_dec.GetOpaque();
        if (from_name.ok() && to.ok()) {
          server_->NotifyMutation(to.value(), id_);
        }
      } else {
        auto dir = fh_dec.GetOpaque();
        if (dir.ok()) {
          server_->NotifyMutation(dir.value(), id_);
        }
      }
      break;
    }
    default:
      break;
  }
  return reply;
}

util::Result<util::Bytes> ServerConnection::HandleCtl(uint32_t proc, const util::Bytes& args) {
  switch (proc) {
    case kCtlGetRoot: {
      xdr::Encoder enc;
      enc.PutOpaque(server_->crypt_fs_.EncryptHandle(server_->memfs_.root_handle()));
      return enc.Take();
    }
    case kCtlLogin: {
      if (server_->authserver_ == nullptr) {
        return util::Unavailable("no authserver configured");
      }
      xdr::Decoder dec(args);
      ASSIGN_OR_RETURN(uint32_t seqno, dec.GetUint32());
      ASSIGN_OR_RETURN(util::Bytes auth_msg, dec.GetOpaque());
      RETURN_IF_ERROR(CheckSeqno(seqno));

      SelfCertifyingPath path{identity_->location, identity_->host_id};
      util::Bytes auth_id = MakeAuthId(MakeAuthInfo(path, session_id_));
      // The file server hands the opaque AuthMsg to the authserver over
      // RPC (here, an in-process call on the same machine).
      server_->costs_->ChargeCrossing(server_->clock_, 2);
      server_->clock_->Advance(server_->costs_->pk_verify_ns, obs::TimeCategory::kCrypto);
      ASSIGN_OR_RETURN(nfs::Credentials creds,
                       server_->authserver_->ValidateAuthMsg(auth_msg, auth_id, seqno));
      uint32_t authno = next_authno_++;
      authno_to_creds_[authno] = creds;
      xdr::Encoder enc;
      enc.PutUint32(authno);
      return enc.Take();
    }
    case kCtlIdToName: {
      // libsfs ID mapping (paper §3.3): numeric id -> server-side name.
      if (server_->authserver_ == nullptr) {
        return util::Unavailable("no authserver configured");
      }
      xdr::Decoder dec(args);
      ASSIGN_OR_RETURN(uint32_t uid, dec.GetUint32());
      auto record = server_->authserver_->FindByUid(uid);
      xdr::Encoder enc;
      enc.PutBool(record.has_value());
      if (record.has_value()) {
        enc.PutString(record->name);
      }
      return enc.Take();
    }
    case kCtlNameToId: {
      if (server_->authserver_ == nullptr) {
        return util::Unavailable("no authserver configured");
      }
      xdr::Decoder dec(args);
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      auto record = server_->authserver_->FindByName(name);
      xdr::Encoder enc;
      enc.PutBool(record.has_value());
      if (record.has_value()) {
        enc.PutUint32(record->credentials.uid);
      }
      return enc.Take();
    }
    default:
      return util::InvalidArgument("unknown control procedure");
  }
}

util::Status ServerConnection::CheckSeqno(uint32_t seqno) {
  if (seqnos_seen_.count(seqno) != 0) {
    return util::SecurityError("replayed sequence number");
  }
  if (max_seqno_ > kSeqnoWindow && seqno < max_seqno_ - kSeqnoWindow) {
    return util::SecurityError("sequence number outside window");
  }
  seqnos_seen_.insert(seqno);
  max_seqno_ = std::max(max_seqno_, seqno);
  return util::OkStatus();
}

util::Result<util::Bytes> ServerConnection::HandleSrpStart(const util::Bytes& payload) {
  if (state_ != State::kAwaitConnect || server_->authserver_ == nullptr) {
    state_ = State::kDead;
    return util::FailedPrecondition("SRP not available on this connection");
  }
  xdr::Decoder dec(payload);
  auto user = dec.GetString();
  auto a_pub_bytes = dec.GetOpaque();
  if (!user.ok() || !a_pub_bytes.ok()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed SRP start");
  }
  auto verifier = server_->authserver_->SrpVerifierFor(user.value());
  if (!verifier.ok()) {
    // Deliberately slow failure path: on-line guessing of user names is
    // as slow as password guessing.
    SFS_LOG(kInfo) << "SRP: no record for user " << user.value();
    return verifier.status();
  }
  srp_user_ = user.value();
  srp_ = std::make_unique<crypto::SrpServer>(crypto::DefaultSrpParams(), *verifier.value(),
                                             &server_->prng_);
  auto b_pub = srp_->ProcessClientHello(crypto::BigInt::FromBytes(a_pub_bytes.value()));
  if (!b_pub.ok()) {
    state_ = State::kDead;
    return b_pub.status();
  }
  xdr::Encoder reply;
  reply.PutOpaque(srp_->Salt());
  reply.PutUint32(srp_->Cost());
  reply.PutOpaque(b_pub->ToBytes());
  return FrameMessage(kMsgSrpStart, reply.Take());
}

util::Result<util::Bytes> ServerConnection::HandleSrpFinish(const util::Bytes& payload) {
  if (srp_ == nullptr) {
    state_ = State::kDead;
    return util::FailedPrecondition("SRP finish before start");
  }
  xdr::Decoder dec(payload);
  auto m1 = dec.GetOpaque();
  if (!m1.ok()) {
    state_ = State::kDead;
    return util::InvalidArgument("malformed SRP finish");
  }
  util::Status proof = srp_->VerifyClientProof(m1.value());
  if (!proof.ok()) {
    state_ = State::kDead;  // One guess per connection; failures are logged.
    SFS_LOG(kInfo) << "SRP: failed password proof for " << srp_user_;
    return proof;
  }

  // Payload delivered under the SRP session key: the server's
  // self-certifying pathname and the user's encrypted private key.
  auto record = server_->authserver_->PrivateRecordFor(srp_user_);
  xdr::Encoder secret;
  secret.PutString(server_->Path().FullPath());
  secret.PutOpaque(record.ok() ? record.value()->encrypted_private_key : util::Bytes{});
  ChannelCipher seal_cipher(srp_->SessionKey());
  util::Bytes sealed = seal_cipher.Seal(secret.Take());

  xdr::Encoder reply;
  reply.PutOpaque(srp_->ServerProof());
  reply.PutOpaque(sealed);
  return FrameMessage(kMsgSrpFinish, reply.Take());
}

}  // namespace sfs
