// Key revocation certificates and forwarding pointers (paper §2.6).
//
//   {PathRevoke, Location, NULL}_K^-1      — revocation certificate
//   {PathRevoke, Location, target}_K^-1    — forwarding pointer
//
// Certificates are self-authenticating: anyone can check one against the
// public key it revokes, so distribution needs no trusted party ("even
// someone without permission to obtain ordinary public key certificates
// from Verisign could still submit revocation certificates").  A
// revocation certificate always overrules a forwarding pointer for the
// same HostID.
#ifndef SFS_SRC_SFS_REVOCATION_H_
#define SFS_SRC_SFS_REVOCATION_H_

#include <optional>
#include <string>

#include "src/crypto/rabin.h"
#include "src/sfs/pathname.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sfs {

// The pathname revoked/blocked paths resolve to, so that "users who
// investigate further can easily notice that the pathname has actually
// been revoked" (§2.6).
inline constexpr char kRevokedLinkTarget[] = ":REVOKED:";

class PathRevokeCert {
 public:
  PathRevokeCert() = default;

  // Signs a revocation for `location` under `key` (the compromised key —
  // only its owner can issue this).
  static PathRevokeCert MakeRevocation(const crypto::RabinPrivateKey& key,
                                       const std::string& location);

  // Signs a forwarding pointer redirecting the old path to `target`.
  static PathRevokeCert MakeForwardingPointer(const crypto::RabinPrivateKey& key,
                                              const std::string& location,
                                              const SelfCertifyingPath& target);

  // Checks the signature under the embedded key.  A valid certificate
  // proves the owner of RevokedPath()'s key issued it.
  util::Status Verify() const;

  // The self-certifying path this certificate applies to.
  SelfCertifyingPath RevokedPath() const;

  bool is_revocation() const { return !forward_to_.has_value(); }
  const std::optional<SelfCertifyingPath>& forward_to() const { return forward_to_; }
  const std::string& location() const { return location_; }
  const crypto::RabinPublicKey& key() const { return key_; }

  util::Bytes Serialize() const;
  static util::Result<PathRevokeCert> Deserialize(const util::Bytes& bytes);

 private:
  static util::Bytes SignedBody(const std::string& location,
                                const std::optional<SelfCertifyingPath>& forward_to);

  crypto::RabinPublicKey key_;
  std::string location_;
  std::optional<SelfCertifyingPath> forward_to_;
  util::Bytes signature_;
};

}  // namespace sfs

#endif  // SFS_SRC_SFS_REVOCATION_H_
