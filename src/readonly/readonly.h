// The SFS read-only dialect (paper §2.4, §3.2).
//
// Public, read-only file systems prove their contents with *precomputed*
// digital signatures: the owner signs, offline, the root of a SHA-1 hash
// tree over the whole file system image.  Replica servers need only the
// image and the signature — never the private key — so "read-only file
// systems [can] be replicated on untrusted machines", and the server's
// cryptographic work is "proportional to the file system's size and rate
// of change, rather than to the number of clients connecting".  This is
// what makes interactive SFS certification authorities practical.
//
// Representation: every node (file-chunk list, directory, symlink) is an
// XDR blob addressed by its SHA-1 hash.  File contents hash in 8 KB
// chunks so partial reads verify.  The signed root record binds
// {"SFSRO", Location, version, root hash}; the version number prevents
// replicas from serving stale images once clients have seen newer ones.
#ifndef SFS_SRC_READONLY_READONLY_H_
#define SFS_SRC_READONLY_READONLY_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/rabin.h"
#include "src/nfs/api.h"
#include "src/obs/metrics.h"
#include "src/sfs/pathname.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace readonly {

inline constexpr uint64_t kChunkSize = 8192;

// Default bound on ReadOnlyClient's verified-node cache.  256 nodes is
// ~2 MB of 8 KB chunks — enough to hold the hash-tree spine plus the
// working set of a directory scan, small enough that a pathological
// walk over a huge image cannot grow client memory without bound.
inline constexpr size_t kDefaultVerifiedCacheCap = 256;

// A published, signed file system image.
struct SignedImage {
  std::map<std::string, util::Bytes> nodes;  // SHA-1 hash (raw bytes) -> node blob.
  util::Bytes root_hash;
  util::Bytes public_key;  // Serialized signing key.
  std::string location;
  uint64_t version = 0;
  util::Bytes signature;  // Over {"SFSRO", location, version, root_hash}.

  // Total bytes across all nodes (replica storage footprint).
  uint64_t TotalBytes() const;
};

// Offline publisher: builds the hash tree and signs the root.  Runs on
// the owner's machine, the only place the private key ever exists.
class ImageBuilder {
 public:
  ImageBuilder();

  // Node construction: ids are builder-local until Build().
  using NodeId = uint32_t;
  NodeId RootDir() const { return 0; }
  NodeId AddDir(NodeId parent, const std::string& name);
  util::Status AddFile(NodeId parent, const std::string& name, const util::Bytes& content,
                       uint32_t mode = 0644);
  util::Status AddSymlink(NodeId parent, const std::string& name, const std::string& target);

  // Hashes everything bottom-up and signs the root.
  SignedImage Build(const crypto::RabinPrivateKey& key, const std::string& location,
                    uint64_t version);

 private:
  struct PendingNode {
    nfs::FileType type = nfs::FileType::kDirectory;
    uint32_t mode = 0755;
    util::Bytes content;         // Files.
    std::string symlink_target;  // Symlinks.
    std::map<std::string, NodeId> children;
  };
  util::Bytes EmitNode(const PendingNode& node, SignedImage* image) const;

  std::vector<PendingNode> nodes_;
};

// The bytes the publisher signs.
util::Bytes RootRecordBody(const std::string& location, uint64_t version,
                           const util::Bytes& root_hash);

// Untrusted replica: serves GetRoot / GetNode.  Holds no private key.
class ReplicaServer : public sim::Service {
 public:
  ReplicaServer(sim::Clock* clock, const sim::CostModel* costs, SignedImage image)
      : clock_(clock), costs_(costs), image_(std::move(image)) {}

  util::Result<util::Bytes> Handle(const util::Bytes& request) override;

  // Adversarial-test hooks: corrupt a served node / swap the image.
  void CorruptNode(const util::Bytes& hash, size_t byte_index);
  void ReplaceImage(SignedImage image) { image_ = std::move(image); }
  const SignedImage& image() const { return image_; }

 private:
  sim::Clock* clock_;
  const sim::CostModel* costs_;
  SignedImage image_;
};

// Verifying client: implements the read-only subset of FileSystemApi; all
// data is checked against the hash tree before use, so a malicious
// replica can at worst deny service.
class ReadOnlyClient : public nfs::FileSystemApi {
 public:
  // `cache_capacity` bounds the verified-node cache (LRU eviction; the
  // minimum honored is 1 so the node being parsed is never evicted
  // under itself).  `registry` receives readonly.cache.{hits,evictions};
  // nullptr selects obs::Registry::Default().
  ReadOnlyClient(sim::Link* link, const sfs::SelfCertifyingPath& expected_path,
                 size_t cache_capacity = kDefaultVerifiedCacheCap,
                 obs::Registry* registry = nullptr);

  // Fetches and verifies the signed root record.  Must succeed before
  // file operations.
  util::Status Connect();

  const nfs::FileHandle& root_fh() const { return root_fh_; }
  uint64_t version() const { return version_; }

  nfs::Stat GetAttr(const nfs::FileHandle& fh, nfs::Fattr* attr) override;
  nfs::Stat Lookup(const nfs::FileHandle& dir, const std::string& name,
                   const nfs::Credentials& cred, nfs::FileHandle* out,
                   nfs::Fattr* attr) override;
  nfs::Stat Access(const nfs::FileHandle& fh, const nfs::Credentials& cred, uint32_t want,
                   uint32_t* allowed) override;
  nfs::Stat ReadLink(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                     std::string* target) override;
  nfs::Stat Read(const nfs::FileHandle& fh, const nfs::Credentials& cred, uint64_t offset,
                 uint32_t count, util::Bytes* data, bool* eof) override;
  nfs::Stat ReadDir(const nfs::FileHandle& dir, const nfs::Credentials& cred, uint64_t cookie,
                    uint32_t max_entries, std::vector<nfs::DirEntry>* entries,
                    bool* eof) override;
  nfs::Stat FsStat(const nfs::FileHandle& fh, uint64_t* total_bytes,
                   uint64_t* used_bytes) override;
  nfs::Stat Commit(const nfs::FileHandle& fh) override;

  // Mutations are structurally impossible in this dialect.
  nfs::Stat SetAttr(const nfs::FileHandle&, const nfs::Credentials&, const nfs::Sattr&,
                    nfs::Fattr*) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Write(const nfs::FileHandle&, const nfs::Credentials&, uint64_t,
                  const util::Bytes&, bool, nfs::Fattr*) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Create(const nfs::FileHandle&, const std::string&, const nfs::Credentials&,
                   const nfs::Sattr&, nfs::FileHandle*, nfs::Fattr*) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Mkdir(const nfs::FileHandle&, const std::string&, const nfs::Credentials&,
                  uint32_t, nfs::FileHandle*, nfs::Fattr*) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Symlink(const nfs::FileHandle&, const std::string&, const std::string&,
                    const nfs::Credentials&, nfs::FileHandle*, nfs::Fattr*) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Remove(const nfs::FileHandle&, const std::string&,
                   const nfs::Credentials&) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Rmdir(const nfs::FileHandle&, const std::string&,
                  const nfs::Credentials&) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Rename(const nfs::FileHandle&, const std::string&, const nfs::FileHandle&,
                   const std::string&, const nfs::Credentials&) override {
    return nfs::Stat::kReadOnlyFs;
  }
  nfs::Stat Link(const nfs::FileHandle&, const nfs::FileHandle&, const std::string&,
                 const nfs::Credentials&) override {
    return nfs::Stat::kReadOnlyFs;
  }

  uint64_t nodes_fetched() const { return nodes_fetched_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_evictions() const { return cache_evictions_; }
  size_t cache_size() const { return verified_cache_.size(); }

 private:
  struct CachedNode {
    util::Bytes blob;
    std::list<std::string>::iterator lru_it;  // Position in lru_.
  };

  // Fetches a node by hash, verifies it, caches it (evicting the
  // least-recently-used node when over capacity).  The returned pointer
  // is valid until the next FetchNode call: a just-fetched node sits at
  // the LRU front and is never the eviction victim.
  util::Result<const util::Bytes*> FetchNode(const util::Bytes& hash);

  sim::Link* link_;
  sfs::SelfCertifyingPath expected_path_;
  nfs::FileHandle root_fh_;
  uint64_t version_ = 0;
  bool connected_ = false;
  size_t cache_capacity_;
  std::map<std::string, CachedNode> verified_cache_;
  std::list<std::string> lru_;  // Front = most recently used.
  uint64_t nodes_fetched_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_evictions_ = 0;
  obs::Counter* m_cache_hits_;
  obs::Counter* m_cache_evictions_;
};

// Read-only protocol message types (continue the sfs::MsgType space).
enum RoMsgType : uint32_t {
  kMsgRoGetRoot = 16,
  kMsgRoGetNode = 17,
};

}  // namespace readonly

#endif  // SFS_SRC_READONLY_READONLY_H_
