#include "src/readonly/readonly.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/sha1.h"
#include "src/xdr/xdr.h"

namespace readonly {
namespace {

constexpr uint32_t kNodeFile = 1;
constexpr uint32_t kNodeDir = 2;
constexpr uint32_t kNodeSymlink = 5;

struct ParsedNode {
  uint32_t type = 0;
  uint32_t mode = 0;
  uint64_t size = 0;
  std::vector<util::Bytes> chunks;                      // Files.
  std::vector<std::pair<std::string, util::Bytes>> entries;  // Dirs (name, hash).
  std::string symlink_target;
};

util::Result<ParsedNode> ParseNode(const util::Bytes& blob) {
  xdr::Decoder dec(blob);
  ParsedNode node;
  ASSIGN_OR_RETURN(node.type, dec.GetUint32());
  ASSIGN_OR_RETURN(node.mode, dec.GetUint32());
  switch (node.type) {
    case kNodeFile: {
      ASSIGN_OR_RETURN(node.size, dec.GetUint64());
      ASSIGN_OR_RETURN(uint32_t nchunks, dec.GetUint32());
      if (nchunks != (node.size + kChunkSize - 1) / kChunkSize) {
        return util::SecurityError("file node chunk count inconsistent with size");
      }
      node.chunks.reserve(nchunks);
      for (uint32_t i = 0; i < nchunks; ++i) {
        ASSIGN_OR_RETURN(util::Bytes h, dec.GetOpaque());
        node.chunks.push_back(std::move(h));
      }
      break;
    }
    case kNodeDir: {
      ASSIGN_OR_RETURN(uint32_t nentries, dec.GetUint32());
      for (uint32_t i = 0; i < nentries; ++i) {
        ASSIGN_OR_RETURN(std::string name, dec.GetString());
        ASSIGN_OR_RETURN(util::Bytes h, dec.GetOpaque());
        node.entries.emplace_back(std::move(name), std::move(h));
      }
      break;
    }
    case kNodeSymlink: {
      ASSIGN_OR_RETURN(node.symlink_target, dec.GetString());
      break;
    }
    default:
      return util::SecurityError("unknown node type");
  }
  if (!dec.AtEnd()) {
    return util::SecurityError("trailing bytes in node");
  }
  return node;
}

nfs::Fattr AttrFor(const ParsedNode& node, const util::Bytes& hash) {
  nfs::Fattr attr;
  attr.type = static_cast<nfs::FileType>(node.type);
  attr.mode = node.mode;
  attr.nlink = node.type == kNodeDir ? 2 : 1;
  attr.size = node.type == kNodeFile    ? node.size
              : node.type == kNodeSymlink ? node.symlink_target.size()
                                          : node.entries.size();
  attr.used = attr.size;
  uint64_t fileid = 0;
  for (size_t i = 0; i < 8 && i < hash.size(); ++i) {
    fileid = (fileid << 8) | hash[i];
  }
  attr.fileid = fileid;
  // Content-addressed data never changes: grant an effectively infinite
  // lease so clients cache aggressively.
  attr.lease_ns = ~uint64_t{0} >> 1;
  return attr;
}

}  // namespace

util::Bytes RootRecordBody(const std::string& location, uint64_t version,
                           const util::Bytes& root_hash) {
  xdr::Encoder enc;
  enc.PutString("SFSRO");
  enc.PutString(location);
  enc.PutUint64(version);
  enc.PutOpaque(root_hash);
  return enc.Take();
}

uint64_t SignedImage::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [hash, blob] : nodes) {
    total += blob.size();
  }
  return total;
}

ImageBuilder::ImageBuilder() { nodes_.push_back(PendingNode{}); }

ImageBuilder::NodeId ImageBuilder::AddDir(NodeId parent, const std::string& name) {
  assert(parent < nodes_.size() && nodes_[parent].type == nfs::FileType::kDirectory);
  PendingNode dir;
  dir.type = nfs::FileType::kDirectory;
  nodes_.push_back(std::move(dir));
  NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  nodes_[parent].children[name] = id;
  return id;
}

util::Status ImageBuilder::AddFile(NodeId parent, const std::string& name,
                                   const util::Bytes& content, uint32_t mode) {
  if (parent >= nodes_.size() || nodes_[parent].type != nfs::FileType::kDirectory) {
    return util::InvalidArgument("parent is not a directory");
  }
  if (nodes_[parent].children.count(name) != 0) {
    return util::AlreadyExists(name);
  }
  PendingNode file;
  file.type = nfs::FileType::kRegular;
  file.mode = mode;
  file.content = content;
  nodes_.push_back(std::move(file));
  nodes_[parent].children[name] = static_cast<NodeId>(nodes_.size() - 1);
  return util::OkStatus();
}

util::Status ImageBuilder::AddSymlink(NodeId parent, const std::string& name,
                                      const std::string& target) {
  if (parent >= nodes_.size() || nodes_[parent].type != nfs::FileType::kDirectory) {
    return util::InvalidArgument("parent is not a directory");
  }
  if (nodes_[parent].children.count(name) != 0) {
    return util::AlreadyExists(name);
  }
  PendingNode link;
  link.type = nfs::FileType::kSymlink;
  link.mode = 0777;
  link.symlink_target = target;
  nodes_.push_back(std::move(link));
  nodes_[parent].children[name] = static_cast<NodeId>(nodes_.size() - 1);
  return util::OkStatus();
}

util::Bytes ImageBuilder::EmitNode(const PendingNode& node, SignedImage* image) const {
  xdr::Encoder enc;
  switch (node.type) {
    case nfs::FileType::kRegular: {
      enc.PutUint32(kNodeFile);
      enc.PutUint32(node.mode);
      enc.PutUint64(node.content.size());
      uint32_t nchunks =
          static_cast<uint32_t>((node.content.size() + kChunkSize - 1) / kChunkSize);
      enc.PutUint32(nchunks);
      for (uint32_t i = 0; i < nchunks; ++i) {
        size_t begin = static_cast<size_t>(i) * kChunkSize;
        size_t end = std::min(node.content.size(), begin + kChunkSize);
        util::Bytes chunk(node.content.begin() + static_cast<long>(begin),
                          node.content.begin() + static_cast<long>(end));
        util::Bytes chunk_hash = crypto::Sha1Digest(chunk);
        image->nodes[util::StringOf(chunk_hash)] = std::move(chunk);
        enc.PutOpaque(chunk_hash);
      }
      break;
    }
    case nfs::FileType::kDirectory: {
      enc.PutUint32(kNodeDir);
      enc.PutUint32(node.mode);
      enc.PutUint32(static_cast<uint32_t>(node.children.size()));
      for (const auto& [name, child_id] : node.children) {
        util::Bytes child_hash = EmitNode(nodes_[child_id], image);
        enc.PutString(name);
        enc.PutOpaque(child_hash);
      }
      break;
    }
    case nfs::FileType::kSymlink: {
      enc.PutUint32(kNodeSymlink);
      enc.PutUint32(node.mode);
      enc.PutString(node.symlink_target);
      break;
    }
  }
  util::Bytes blob = enc.Take();
  util::Bytes hash = crypto::Sha1Digest(blob);
  image->nodes[util::StringOf(hash)] = std::move(blob);
  return hash;
}

SignedImage ImageBuilder::Build(const crypto::RabinPrivateKey& key,
                                const std::string& location, uint64_t version) {
  SignedImage image;
  image.location = location;
  image.version = version;
  image.public_key = key.public_key().Serialize();
  image.root_hash = EmitNode(nodes_[0], &image);
  image.signature = key.Sign(RootRecordBody(location, version, image.root_hash));
  return image;
}

util::Result<util::Bytes> ReplicaServer::Handle(const util::Bytes& request) {
  clock_->Advance(costs_->nfs_server_op_ns, obs::TimeCategory::kCpu);
  xdr::Decoder dec(request);
  ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes payload, dec.GetOpaque());

  xdr::Encoder reply;
  reply.PutUint32(type);
  if (type == kMsgRoGetRoot) {
    xdr::Encoder body;
    body.PutOpaque(image_.public_key);
    body.PutString(image_.location);
    body.PutUint64(image_.version);
    body.PutOpaque(image_.root_hash);
    body.PutOpaque(image_.signature);
    reply.PutOpaque(body.Take());
    return reply.Take();
  }
  if (type == kMsgRoGetNode) {
    xdr::Decoder p(payload);
    ASSIGN_OR_RETURN(util::Bytes hash, p.GetOpaque());
    auto it = image_.nodes.find(util::StringOf(hash));
    if (it == image_.nodes.end()) {
      return util::NotFound("no such node");
    }
    xdr::Encoder body;
    body.PutOpaque(it->second);
    reply.PutOpaque(body.Take());
    return reply.Take();
  }
  return util::InvalidArgument("unknown read-only message");
}

void ReplicaServer::CorruptNode(const util::Bytes& hash, size_t byte_index) {
  auto it = image_.nodes.find(util::StringOf(hash));
  if (it != image_.nodes.end() && !it->second.empty()) {
    it->second[byte_index % it->second.size()] ^= 0x01;
  }
}

ReadOnlyClient::ReadOnlyClient(sim::Link* link, const sfs::SelfCertifyingPath& expected_path,
                               size_t cache_capacity, obs::Registry* registry)
    : link_(link),
      expected_path_(expected_path),
      cache_capacity_(std::max<size_t>(1, cache_capacity)) {
  obs::Registry* reg = registry != nullptr ? registry : obs::Registry::Default();
  m_cache_hits_ = reg->GetCounter("readonly.cache.hits");
  m_cache_evictions_ = reg->GetCounter("readonly.cache.evictions");
}

util::Status ReadOnlyClient::Connect() {
  xdr::Encoder req;
  req.PutUint32(kMsgRoGetRoot);
  req.PutOpaque({});
  ASSIGN_OR_RETURN(util::Bytes raw, link_->Roundtrip(req.Take()));
  xdr::Decoder dec(raw);
  ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes body_bytes, dec.GetOpaque());
  if (type != kMsgRoGetRoot) {
    return util::SecurityError("bad read-only framing");
  }
  xdr::Decoder body(body_bytes);
  ASSIGN_OR_RETURN(util::Bytes pubkey_bytes, body.GetOpaque());
  ASSIGN_OR_RETURN(std::string location, body.GetString());
  ASSIGN_OR_RETURN(uint64_t version, body.GetUint64());
  ASSIGN_OR_RETURN(util::Bytes root_hash, body.GetOpaque());
  ASSIGN_OR_RETURN(util::Bytes signature, body.GetOpaque());

  // Certify: the key must hash to the expected HostID...
  ASSIGN_OR_RETURN(crypto::RabinPublicKey pubkey,
                   crypto::RabinPublicKey::Deserialize(pubkey_bytes));
  if (location != expected_path_.location || !expected_path_.Certifies(pubkey)) {
    return util::SecurityError("read-only server key does not match HostID");
  }
  // ...and the (offline) signature must cover this exact root.
  RETURN_IF_ERROR(pubkey.Verify(RootRecordBody(location, version, root_hash), signature));
  // Freshness: never accept an image older than one already seen.
  if (connected_ && version < version_) {
    return util::SecurityError("replica served a rolled-back image version");
  }
  version_ = version;
  root_fh_ = root_hash;
  connected_ = true;
  verified_cache_.clear();
  lru_.clear();
  return util::OkStatus();
}

util::Result<const util::Bytes*> ReadOnlyClient::FetchNode(const util::Bytes& hash) {
  if (!connected_) {
    return util::FailedPrecondition("not connected");
  }
  std::string key = util::StringOf(hash);
  auto cached = verified_cache_.find(key);
  if (cached != verified_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, cached->second.lru_it);
    ++cache_hits_;
    m_cache_hits_->Increment();
    return &cached->second.blob;
  }
  xdr::Encoder payload;
  payload.PutOpaque(hash);
  xdr::Encoder req;
  req.PutUint32(kMsgRoGetNode);
  req.PutOpaque(payload.Take());
  ASSIGN_OR_RETURN(util::Bytes raw, link_->Roundtrip(req.Take()));
  xdr::Decoder dec(raw);
  ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  ASSIGN_OR_RETURN(util::Bytes body_bytes, dec.GetOpaque());
  if (type != kMsgRoGetNode) {
    return util::SecurityError("bad read-only framing");
  }
  xdr::Decoder body(body_bytes);
  ASSIGN_OR_RETURN(util::Bytes blob, body.GetOpaque());
  // The verification step: content addressing means any tampering is a
  // hash mismatch.
  if (crypto::Sha1Digest(blob) != hash) {
    return util::SecurityError("node failed hash verification (tampered replica?)");
  }
  ++nodes_fetched_;
  lru_.push_front(key);
  auto [it, inserted] = verified_cache_.emplace(
      std::move(key), CachedNode{std::move(blob), lru_.begin()});
  (void)inserted;
  // Evict from the cold end; capacity >= 1 guarantees the node just
  // inserted (front of lru_) survives, so the returned pointer stays
  // valid until the caller's next FetchNode.
  while (verified_cache_.size() > cache_capacity_) {
    verified_cache_.erase(lru_.back());
    lru_.pop_back();
    ++cache_evictions_;
    m_cache_evictions_->Increment();
  }
  return &it->second.blob;
}

nfs::Stat ReadOnlyClient::GetAttr(const nfs::FileHandle& fh, nfs::Fattr* attr) {
  auto blob = FetchNode(fh);
  if (!blob.ok()) {
    return nfs::Stat::kStale;
  }
  auto node = ParseNode(**blob);
  if (!node.ok()) {
    return nfs::Stat::kIo;
  }
  *attr = AttrFor(node.value(), fh);
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::Lookup(const nfs::FileHandle& dir, const std::string& name,
                                 const nfs::Credentials& cred, nfs::FileHandle* out,
                                 nfs::Fattr* attr) {
  (void)cred;  // Public file system: world-readable by construction.
  auto blob = FetchNode(dir);
  if (!blob.ok()) {
    return nfs::Stat::kStale;
  }
  auto node = ParseNode(**blob);
  if (!node.ok() || node->type != kNodeDir) {
    return nfs::Stat::kNotDir;
  }
  for (const auto& [entry_name, hash] : node->entries) {
    if (entry_name == name) {
      *out = hash;
      return GetAttr(hash, attr);
    }
  }
  return nfs::Stat::kNoEnt;
}

nfs::Stat ReadOnlyClient::Access(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                                 uint32_t want, uint32_t* allowed) {
  (void)fh;
  (void)cred;
  *allowed = want & (nfs::kAccessRead | nfs::kAccessLookup | nfs::kAccessExecute);
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::ReadLink(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                                   std::string* target) {
  (void)cred;
  auto blob = FetchNode(fh);
  if (!blob.ok()) {
    return nfs::Stat::kStale;
  }
  auto node = ParseNode(**blob);
  if (!node.ok() || node->type != kNodeSymlink) {
    return nfs::Stat::kInval;
  }
  *target = node->symlink_target;
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::Read(const nfs::FileHandle& fh, const nfs::Credentials& cred,
                               uint64_t offset, uint32_t count, util::Bytes* data, bool* eof) {
  (void)cred;
  auto blob = FetchNode(fh);
  if (!blob.ok()) {
    return nfs::Stat::kStale;
  }
  auto node = ParseNode(**blob);
  if (!node.ok()) {
    return nfs::Stat::kIo;
  }
  if (node->type == kNodeDir) {
    return nfs::Stat::kIsDir;
  }
  if (node->type != kNodeFile) {
    return nfs::Stat::kInval;
  }
  data->clear();
  if (offset >= node->size) {
    *eof = true;
    return nfs::Stat::kOk;
  }
  uint64_t len = std::min<uint64_t>(count, node->size - offset);
  uint64_t first = offset / kChunkSize;
  uint64_t last = (offset + len - 1) / kChunkSize;
  for (uint64_t i = first; i <= last; ++i) {
    auto chunk = FetchNode(node->chunks[i]);
    if (!chunk.ok()) {
      return nfs::Stat::kIo;
    }
    uint64_t chunk_start = i * kChunkSize;
    uint64_t from = std::max(offset, chunk_start);
    uint64_t to = std::min(offset + len, chunk_start + (*chunk)->size());
    for (uint64_t pos = from; pos < to; ++pos) {
      data->push_back((**chunk)[pos - chunk_start]);
    }
  }
  *eof = offset + len >= node->size;
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::ReadDir(const nfs::FileHandle& dir, const nfs::Credentials& cred,
                                  uint64_t cookie, uint32_t max_entries,
                                  std::vector<nfs::DirEntry>* entries, bool* eof) {
  (void)cred;
  auto blob = FetchNode(dir);
  if (!blob.ok()) {
    return nfs::Stat::kStale;
  }
  auto node = ParseNode(**blob);
  if (!node.ok() || node->type != kNodeDir) {
    return nfs::Stat::kNotDir;
  }
  entries->clear();
  *eof = true;
  uint64_t index = 0;
  for (const auto& [name, hash] : node->entries) {
    ++index;
    if (index <= cookie) {
      continue;
    }
    if (entries->size() >= max_entries) {
      *eof = false;
      break;
    }
    uint64_t fileid = 0;
    for (size_t i = 0; i < 8 && i < hash.size(); ++i) {
      fileid = (fileid << 8) | hash[i];
    }
    entries->push_back(nfs::DirEntry{fileid, name, index});
  }
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::FsStat(const nfs::FileHandle& fh, uint64_t* total_bytes,
                                 uint64_t* used_bytes) {
  (void)fh;
  *total_bytes = 0;
  *used_bytes = 0;
  return nfs::Stat::kOk;
}

nfs::Stat ReadOnlyClient::Commit(const nfs::FileHandle& fh) {
  (void)fh;
  return nfs::Stat::kOk;
}

}  // namespace readonly
