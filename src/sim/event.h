// Discrete-event core for the simulation.
//
// One EventQueue per timeline (owned by the sim::Clock) holds every
// scheduled future occurrence — message arrivals at a host, handler
// completions, reply deliveries, retransmission timers — as (virtual
// time, monotonic seq) keyed entries in a binary heap.  Links, hosts,
// disks and timers are all just event sources; nothing executes "inside"
// a submit call anymore (see DESIGN.md §"Discrete-event substitution"
// for how this replaced the inline-Handle-plus-watermark model).
//
// Ledger discipline: the loop is the only place virtual time advances
// between events.  Each event carries an attribution for the gap the
// loop bridges to reach it — either a single obs::TimeCategory (wire
// transit, timer wait) or a proportional per-category breakdown (a
// handler completion, whose service time was measured in a clock frame;
// see Clock::BeginMeasureFrame).  Because every bridged nanosecond is
// charged exactly once, the clock's per-category totals still sum to
// now_ns() no matter how many overlapping conversations share the
// timeline.
//
// Determinism: events with equal timestamps dispatch in schedule order
// (the seq tiebreak), so runs are bit-reproducible regardless of heap
// internals.  Cancellation (timers that no longer matter) marks the
// entry dead; dead entries are discarded on pop without advancing the
// clock or charging anything.
#ifndef SFS_SRC_SIM_EVENT_H_
#define SFS_SRC_SIM_EVENT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/clock.h"

namespace sim {

// How the event loop charges the virtual-time gap it bridges when
// advancing to an event's timestamp.
struct GapAttribution {
  // Single-category form (breakdown_total == 0).
  obs::TimeCategory category = obs::TimeCategory::kWait;
  // Proportional form: the gap is split across `breakdown` in proportion
  // to its weights (a measured service frame); rounding remainders go to
  // the heaviest category so the charges sum exactly to the gap.
  Clock::CategorySnapshot breakdown;
  uint64_t breakdown_total = 0;

  static GapAttribution Category(obs::TimeCategory category) {
    GapAttribution a;
    a.category = category;
    return a;
  }
  static GapAttribution Proportional(const Clock::CategorySnapshot& breakdown);
};

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidId = 0;

  explicit EventQueue(Clock* clock) : clock_(clock) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at `at_ns` (clamped forward to now: the past
  // cannot be scheduled).  The gap from the previous event to this one
  // is charged per `attr` when the loop reaches it.
  EventId Schedule(uint64_t at_ns, GapAttribution attr, std::function<void()> fn);
  EventId Schedule(uint64_t at_ns, obs::TimeCategory category, std::function<void()> fn) {
    return Schedule(at_ns, GapAttribution::Category(category), std::move(fn));
  }

  // Cancels a scheduled event.  Returns true if it had not yet run (or
  // been cancelled); a cancelled event is skipped on pop with no clock
  // advance and no charge.
  bool Cancel(EventId id);

  // True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  // Timestamp of the earliest live event; UINT64_MAX when empty.
  uint64_t next_time_ns();

  // Dispatches the earliest live event: advances the clock to its
  // timestamp (charging the gap per its attribution), then runs it.
  // Returns false when the queue is empty.  The dispatched function may
  // schedule further events; it must not call RunOne reentrantly.
  bool RunOne();

  // Drains every event with timestamp <= until_ns.
  void RunUntil(uint64_t until_ns) {
    while (!empty() && next_time_ns() <= until_ns) {
      RunOne();
    }
  }

  Clock* clock() const { return clock_; }

  // Lifetime totals, exposed for tests.
  uint64_t dispatched() const { return dispatched_; }
  uint64_t cancelled() const { return cancelled_; }

 private:
  struct Entry {
    uint64_t at_ns = 0;
    EventId id = kInvalidId;
    // Min-heap on (at_ns, id): ids are monotonic, so equal timestamps
    // dispatch in schedule order.
    bool operator>(const Entry& other) const {
      return at_ns != other.at_ns ? at_ns > other.at_ns : id > other.id;
    }
  };
  struct Pending {
    GapAttribution attr;
    std::function<void()> fn;
  };

  void PopHeap();
  void PushHeap(Entry entry);

  Clock* clock_;
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Pending> pending_;  // Live (uncancelled) events.
  EventId next_id_ = 1;
  size_t live_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t cancelled_ = 0;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_EVENT_H_
