// Drives an obs::Timeline from the discrete-event loop.
//
// obs:: cannot see sim:: (layering), so the Timeline itself never
// schedules anything; this sampler owns a recurring EventQueue event
// that fires every timeline window (default 10 ms virtual) and feeds
// the timeline the current (now_ns, category-ledger) pair.
//
// Two properties worth spelling out:
//
//  - Sampler edges never perturb event *timing*.  An edge is a
//    zero-duration handler scheduled at a timestamp at or before the
//    next real event, so every completion, delivery and timer still
//    fires at exactly the virtual time it would have without the
//    sampler — committed BENCH baselines keep their real_time_s.
//    What can shift slightly is the ledger *split*: the gap an edge
//    lands inside is charged in two pieces (the pre-edge piece to
//    kWait), so at most one event gap per window may read as wait
//    instead of its own category (docs/OBSERVABILITY.md §8).
//
//  - When the clock jumps past several edges in one Advance() (e.g. a
//    workload's application-CPU phase), the pending edge dispatches
//    late with no clock advance, and the timeline closes one variable-
//    length catch-up window covering the whole gap.  Windows therefore
//    stay contiguous even across jumps.
#ifndef SFS_SRC_SIM_SAMPLER_H_
#define SFS_SRC_SIM_SAMPLER_H_

#include "src/obs/timeline.h"
#include "src/sim/event.h"

namespace sim {

class TimelineSampler {
 public:
  // Neither pointer is owned; both must outlive the sampler.
  TimelineSampler(Clock* clock, obs::Timeline* timeline)
      : clock_(clock), timeline_(timeline) {}
  ~TimelineSampler() { Stop(); }
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Pins the timeline origin at the current virtual time and schedules
  // the first window edge.
  void Start() {
    if (armed_ || timeline_ == nullptr) {
      return;
    }
    const Clock::CategorySnapshot cats = clock_->categories();
    timeline_->Start(clock_->now_ns(), cats.ns);
    armed_ = true;
    ScheduleNext();
  }

  // Cancels the pending edge without closing the trailing window.
  void Stop() {
    if (pending_ != EventQueue::kInvalidId) {
      clock_->events()->Cancel(pending_);
      pending_ = EventQueue::kInvalidId;
    }
    armed_ = false;
  }

  // Closes the final (partial) window at the current virtual time, runs
  // the episode annotator, and disarms.
  void Finalize() {
    Stop();
    const Clock::CategorySnapshot cats = clock_->categories();
    timeline_->Finalize(clock_->now_ns(), cats.ns);
  }

  // Edge delivery for scenarios that never pump the event queue: the
  // stop-and-wait Link::Roundtrip path handles requests inline and
  // advances the clock directly, so the recurring edge event would sit
  // in the queue forever.  Poll() closes the window by hand once the
  // clock has moved past the pending edge (same catch-up semantics as a
  // late dispatch) and re-anchors the next edge at now.  Harmless to
  // call from event-driven scenarios too; a no-op before the edge.
  void Poll() {
    if (armed_ && clock_->now_ns() >= next_edge_ns_) {
      if (pending_ != EventQueue::kInvalidId) {
        clock_->events()->Cancel(pending_);
      }
      OnEdge();
    }
  }

  bool armed() const { return armed_; }

  // Number of queue entries that are the sampler's own (0 or 1): lets
  // run loops distinguish "only the sampler is left" from real pending
  // work when checking for deadlock.
  size_t live_events() const {
    return pending_ != EventQueue::kInvalidId ? 1 : 0;
  }

 private:
  void OnEdge() {
    pending_ = EventQueue::kInvalidId;
    const Clock::CategorySnapshot cats = clock_->categories();
    timeline_->CloseWindow(clock_->now_ns(), cats.ns);
    if (armed_) {
      ScheduleNext();
    }
  }

  void ScheduleNext() {
    // The bridged gap (if the edge is reached by an actual clock
    // advance) is idle time by construction — nothing else was
    // scheduled earlier — so kWait is the honest attribution.
    next_edge_ns_ = clock_->now_ns() + timeline_->window_ns();
    pending_ = clock_->events()->Schedule(next_edge_ns_, obs::TimeCategory::kWait,
                                          [this] { OnEdge(); });
  }

  Clock* clock_;
  obs::Timeline* timeline_;
  EventQueue::EventId pending_ = EventQueue::kInvalidId;
  uint64_t next_edge_ns_ = 0;
  bool armed_ = false;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_SAMPLER_H_
