#include "src/sim/disk.h"

namespace sim {

void Disk::ChargeRead(uint64_t file_id, uint64_t offset, uint64_t bytes) {
  bool sequential = file_id == last_file_id_ && offset == next_sequential_offset_;
  if (!sequential) {
    clock_->Advance(profile_.seek_ns, obs::TimeCategory::kDisk);
  }
  clock_->Advance(bytes * 1'000'000'000 / profile_.bytes_per_sec, obs::TimeCategory::kDisk);
  last_file_id_ = file_id;
  next_sequential_offset_ = offset + bytes;
}

void Disk::ChargeCommit() {
  if (dirty_bytes_ == 0) {
    return;
  }
  // One seek to the log/segment plus a streaming write of the dirty data.
  clock_->Advance(profile_.seek_ns, obs::TimeCategory::kDisk);
  clock_->Advance(dirty_bytes_ * 1'000'000'000 / profile_.bytes_per_sec,
                  obs::TimeCategory::kDisk);
  dirty_bytes_ = 0;
  last_file_id_ = ~uint64_t{0};  // The write moved the head.
}

}  // namespace sim
