#include "src/sim/disk.h"

#include "src/obs/span.h"

namespace sim {

void Disk::RecordDiskSpan(const char* name, uint64_t start_ns, uint64_t bytes) {
  if (registry_ == nullptr || !registry_->spans().enabled()) {
    return;
  }
  const uint64_t now = clock_->now_ns();
  if (now == start_ns) {
    return;  // Free operation (buffered, cache-resident); no span.
  }
  obs::Span span;
  span.name = name;
  span.layer = "sim.disk";
  span.start_ns = start_ns;
  span.end_ns = now;
  // Every nanosecond of these charges goes to kDisk by construction.
  span.cat_ns[static_cast<size_t>(obs::TimeCategory::kDisk)] = now - start_ns;
  span.wire_bytes = bytes;
  registry_->spans().RecordClosed(std::move(span), registry_->spans().current());
}

void Disk::ChargeRead(uint64_t file_id, uint64_t offset, uint64_t bytes) {
  const uint64_t start_ns = clock_->now_ns();
  bool sequential = file_id == last_file_id_ && offset == next_sequential_offset_;
  if (!sequential) {
    clock_->Advance(profile_.seek_ns, obs::TimeCategory::kDisk);
  }
  clock_->Advance(bytes * 1'000'000'000 / profile_.bytes_per_sec, obs::TimeCategory::kDisk);
  last_file_id_ = file_id;
  next_sequential_offset_ = offset + bytes;
  RecordDiskSpan("disk.read", start_ns, bytes);
}

void Disk::ChargeCommit() {
  if (dirty_bytes_ == 0) {
    return;
  }
  const uint64_t start_ns = clock_->now_ns();
  const uint64_t bytes = dirty_bytes_;
  // One seek to the log/segment plus a streaming write of the dirty data.
  clock_->Advance(profile_.seek_ns, obs::TimeCategory::kDisk);
  clock_->Advance(dirty_bytes_ * 1'000'000'000 / profile_.bytes_per_sec,
                  obs::TimeCategory::kDisk);
  dirty_bytes_ = 0;
  last_file_id_ = ~uint64_t{0};  // The write moved the head.
  RecordDiskSpan("disk.commit", start_ns, bytes);
}

void Disk::ChargeAppend(uint64_t bytes) {
  const uint64_t start_ns = clock_->now_ns();
  // The journal tail is modeled as a reserved file id; any interleaved
  // read/commit moves the head away and the next append pays the seek.
  constexpr uint64_t kLogFileId = ~uint64_t{0} - 1;
  if (last_file_id_ != kLogFileId) {
    clock_->Advance(profile_.seek_ns, obs::TimeCategory::kDisk);
    next_sequential_offset_ = 0;
  }
  clock_->Advance(bytes * 1'000'000'000 / profile_.bytes_per_sec, obs::TimeCategory::kDisk);
  last_file_id_ = kLogFileId;
  next_sequential_offset_ += bytes;
  RecordDiskSpan("disk.log_append", start_ns, bytes);
}

void Disk::ChargeMetaUpdate() {
  const uint64_t start_ns = clock_->now_ns();
  clock_->Advance(profile_.meta_update_ns, obs::TimeCategory::kDisk);
  RecordDiskSpan("disk.meta_update", start_ns, 0);
}

}  // namespace sim
