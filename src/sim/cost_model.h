// CPU cost model for the simulation.
//
// The defaults approximate the paper's testbed (550 MHz Pentium III,
// FreeBSD 3.3, §4.1) so the benchmark harness reproduces the *shape* of
// the paper's results: a user-level file system pays kernel crossings and
// data copies; software encryption costs CPU per byte; public-key
// operations cost milliseconds at session setup.
//
// Rationale for the constants (derived from the paper's own numbers):
//  * Fig. 5 latency: NFS3/UDP 200us vs SFS 790us, of which only ~20us is
//    encryption -> ~570us for four extra user-level crossings, ~145us per
//    crossing.
//  * Fig. 5 throughput: 9.3 MB/s (NFS/UDP) vs 7.1 (SFS no-crypto) vs 4.1
//    (SFS): 1/7.1-1/9.3 s/MB of copy cost over two user-level daemons
//    -> ~60 MB/s copy rate per daemon; 1/4.1-1/7.1 s/MB of crypto over
//    client+server -> ~19.4 MB/s encrypt+MAC per endpoint.
#ifndef SFS_SRC_SIM_COST_MODEL_H_
#define SFS_SRC_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "src/sim/clock.h"

namespace sim {

struct CostModel {
  // One user<->kernel crossing of an RPC through a user-level daemon
  // (scheduling + syscall + small-message copy).
  uint64_t user_crossing_ns = 145'000;

  // Per-byte copy cost inside a user-level daemon (large transfers).
  uint64_t copy_bytes_per_sec = 60'000'000;

  // Symmetric crypto (ARC4 + SHA-1 MAC) per endpoint.
  uint64_t crypto_bytes_per_sec = 19'400'000;
  // Fixed per-message MAC/rekey cost.
  uint64_t crypto_per_message_ns = 5'000;

  // Public-key operations (1024-bit Rabin on the era's hardware).
  // Signing and decryption take a CRT square root; verification and
  // encryption are a single modular squaring.
  uint64_t pk_sign_ns = 24'000'000;
  uint64_t pk_verify_ns = 1'000'000;
  uint64_t pk_encrypt_ns = 1'000'000;
  uint64_t pk_decrypt_ns = 24'000'000;

  // Server side of one SRP exchange (paper §2.4): B = kv + g^b, v^u,
  // S = (A*v^u)^b — about 2.16 full-width exponentiations in the
  // 1024-bit group.  pk_sign's 24ms buys two half-width CRT
  // exponentiations (~12ms each); a full-width one costs ~8x a
  // half-width one (4x the limb products, 2x the exponent bits), so
  // ~96ms each and ~200ms for the handshake on the paper's hardware.
  uint64_t srp_server_ns = 200'000'000;

  // Local system-call overhead (local-FS baseline).
  uint64_t syscall_ns = 5'000;

  // NFS server per-request processing cost.
  uint64_t nfs_server_op_ns = 70'000;

  // Simulated CPU work per source file in the "compile" benchmark phases.
  uint64_t compile_cpu_per_file_ns = 250'000'000;

  // Which profile produced these constants; reported in BENCH JSON so
  // results from different machines are never compared blindly.
  std::string profile = "p3-550";

  // Helpers: charge `clock` for an operation.  Each helper attributes
  // the time to the matching obs::TimeCategory so per-operation
  // breakdowns can tell daemon CPU from crypto.
  void ChargeCrossing(Clock* clock, int crossings = 1) const {
    clock->Advance(user_crossing_ns * static_cast<uint64_t>(crossings),
                   obs::TimeCategory::kCpu);
  }
  void ChargeCopy(Clock* clock, uint64_t bytes) const {
    clock->Advance(bytes * 1'000'000'000 / copy_bytes_per_sec, obs::TimeCategory::kCpu);
  }
  void ChargeCrypto(Clock* clock, uint64_t bytes) const {
    clock->Advance(crypto_per_message_ns + bytes * 1'000'000'000 / crypto_bytes_per_sec,
                   obs::TimeCategory::kCrypto);
  }

  // The paper's testbed profile (default-constructed).
  static CostModel PentiumIII550() { return CostModel{}; }

  // Derives the crypto constants (pk_* and the symmetric rates) by
  // timing this build's real primitives — Rabin sign/verify/encrypt/
  // decrypt and ARC4+HMAC — on the host CPU.  The structural costs
  // (crossings, copies, syscalls, NFS server work) keep the paper
  // profile: they model 1999 kernel behaviour, not this machine's.
  // Takes a few hundred ms; callers cache the result (see
  // bench::ActiveCostModel).  Defined in calibrate.cc.
  static CostModel CalibrateFromPrimitives();
};

}  // namespace sim

#endif  // SFS_SRC_SIM_COST_MODEL_H_
