#include "src/sim/clock.h"

#include "src/sim/event.h"

namespace sim {

// Out of line so clock.h can hold the queue through a forward
// declaration (event.h includes clock.h for CategorySnapshot).
Clock::Clock() : events_(std::make_unique<EventQueue>(this)) {}
Clock::~Clock() = default;

}  // namespace sim
