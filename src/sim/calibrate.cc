// CostModel::CalibrateFromPrimitives: measure the real crypto primitives
// on the host CPU instead of assuming the paper's 550 MHz Pentium III.
//
// DESIGN.md row 30 promises exactly this — "CPU cost constants … can be
// calibrated by timing the real primitives at bench startup".  Only the
// crypto constants are measured; the structural costs (user-level
// crossings, copy rates, syscalls, NFS server work) stay at the paper
// profile because they model 1999 kernel behaviour that a wall-clock
// microbenchmark of this process cannot observe.

#include <chrono>
#include <cstdint>

#include "src/crypto/arc4.h"
#include "src/crypto/prng.h"
#include "src/crypto/rabin.h"
#include "src/crypto/sha1.h"
#include "src/crypto/srp.h"
#include "src/sim/cost_model.h"

namespace sim {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Repeats `op` until it has consumed at least `min_ns` of wall clock
// (and at least twice), returning the mean cost of one call.
template <typename Op>
uint64_t TimePerCall(uint64_t min_ns, Op op) {
  // Warm-up call: first-touch effects (page faults, lazy init) would
  // otherwise land in the measurement.
  op();
  uint64_t start = NowNs();
  uint64_t calls = 0;
  uint64_t elapsed = 0;
  do {
    op();
    ++calls;
    elapsed = NowNs() - start;
  } while (calls < 2 || elapsed < min_ns);
  return elapsed / calls;
}

}  // namespace

CostModel CostModel::CalibrateFromPrimitives() {
  CostModel model;  // Start from the paper profile for the structural costs.
  model.profile = "calibrated";

  // The paper's server keys are 1024-bit Rabin; time the same size.
  // Deterministic seed: calibration should not perturb any caller's
  // randomness, and key quality is irrelevant to timing.
  crypto::Prng prng(uint64_t{0x5f5ca11b});
  crypto::RabinPrivateKey key = crypto::RabinPrivateKey::Generate(&prng, 1024);

  const util::Bytes message = prng.RandomBytes(64);
  util::Bytes signature;
  model.pk_sign_ns = TimePerCall(20'000'000, [&] { signature = key.Sign(message); });
  model.pk_verify_ns =
      TimePerCall(5'000'000, [&] { (void)key.public_key().Verify(message, signature); });

  const util::Bytes plaintext = prng.RandomBytes(32);
  util::Bytes ciphertext;
  model.pk_encrypt_ns = TimePerCall(
      5'000'000, [&] { ciphertext = key.public_key().Encrypt(plaintext, &prng).value(); });
  model.pk_decrypt_ns = TimePerCall(20'000'000, [&] { (void)key.Decrypt(ciphertext); });

  // Server side of one SRP exchange: the key-negotiation bench charges
  // this per login.  The verifier (and its fixed-base table) is built
  // once outside the loop, like an authserv account record; the timed
  // region is what the server repeats per connection — fresh ephemeral
  // b plus ProcessClientHello's three exponentiations.
  {
    const crypto::SrpParams& params = crypto::DefaultSrpParams();
    crypto::SrpVerifier verifier =
        crypto::MakeSrpVerifier(params, "calibration", /*cost=*/4, &prng);
    crypto::SrpClient client(params, &prng);
    model.srp_server_ns = TimePerCall(20'000'000, [&] {
      crypto::SrpServer server(params, verifier, &prng);
      (void)server.ProcessClientHello(client.A());
    });
  }

  // Symmetric channel cost: ARC4 keystream XOR plus the HMAC-SHA-1 MAC
  // over the same bytes, as the secure channel pays per payload byte.
  const util::Bytes mac_key = prng.RandomBytes(20);
  util::Bytes buffer = prng.RandomBytes(256 * 1024);
  crypto::Arc4 stream(prng.RandomBytes(20));
  uint64_t per_buffer_ns = TimePerCall(20'000'000, [&] {
    stream.Crypt(&buffer);
    (void)crypto::HmacSha1(mac_key, buffer);
  });
  if (per_buffer_ns > 0) {
    model.crypto_bytes_per_sec = buffer.size() * 1'000'000'000 / per_buffer_ns;
  }
  // Fixed per-message cost: MAC of an empty payload (key schedule +
  // final block), the floor every RPC pays regardless of size.
  model.crypto_per_message_ns =
      TimePerCall(2'000'000, [&] { (void)crypto::HmacSha1(mac_key, util::Bytes{}); });

  return model;
}

}  // namespace sim
