// Virtual time for the simulation environment.
//
// All benchmark time in this repository is virtual: components charge the
// clock for network transit, disk mechanics, crypto CPU and user-level
// crossings according to the cost model, which makes every run
// deterministic regardless of the host machine.  See DESIGN.md §1 for why
// this substitution preserves the paper's comparisons.
//
// Every Advance() is attributed to an obs::TimeCategory, so the clock
// doubles as the ledger behind per-operation latency breakdowns: the
// per-category totals always sum to now_ns(), and the instrumented RPC
// layers diff CategorySnapshots around a call to attribute its cost to
// link vs crypto vs disk vs CPU (docs/OBSERVABILITY.md).
//
// Measure frames: the discrete-event core (src/sim/event.h) runs server
// handlers at their service-start event, but their cost must occupy the
// timeline *later*, as the gap up to the completion event.  A frame
// captures a scope's Advance() calls into an overlay instead of the
// global ledger; inside the frame, now_ns() and categories() include the
// overlay, so the handler's own stopwatches, histograms and span ledger
// diffs see time passing normally.  EndMeasureFrame() pops the overlay
// and returns the captured breakdown, which the scheduler replays onto
// the timeline proportionally when the completion event dispatches.
#ifndef SFS_SRC_SIM_CLOCK_H_
#define SFS_SRC_SIM_CLOCK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"

namespace sim {

class EventQueue;

class Clock {
 public:
  // Per-category charge totals; diff two snapshots to slice one
  // operation's cost by category.
  struct CategorySnapshot {
    uint64_t ns[obs::kTimeCategoryCount] = {};
  };

  Clock();
  ~Clock();
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  uint64_t now_ns() const { return now_ns_ + frame_extra_ns_; }
  void Advance(uint64_t delta_ns,
               obs::TimeCategory category = obs::TimeCategory::kUntracked) {
    if (!frames_.empty()) {
      frames_.back().ns[static_cast<size_t>(category)] += delta_ns;
      frame_extra_ns_ += delta_ns;
      return;
    }
    now_ns_ += delta_ns;
    charged_.ns[static_cast<size_t>(category)] += delta_ns;
  }

  double now_seconds() const { return static_cast<double>(now_ns()) * 1e-9; }

  uint64_t charged_ns(obs::TimeCategory category) const {
    uint64_t total = charged_.ns[static_cast<size_t>(category)];
    for (const CategorySnapshot& frame : frames_) {
      total += frame.ns[static_cast<size_t>(category)];
    }
    return total;
  }
  // By value: active measure frames overlay the global ledger, so the
  // snapshot is computed.  Callers binding `const CategorySnapshot&`
  // still work (lifetime extension).
  CategorySnapshot categories() const {
    CategorySnapshot out = charged_;
    for (const CategorySnapshot& frame : frames_) {
      for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
        out.ns[i] += frame.ns[i];
      }
    }
    return out;
  }

  // --- Measure frames (discrete-event scheduler support) --------------------
  //
  // Between Begin and End, Advance() accumulates into a frame overlay
  // instead of the global ledger; End returns the overlay.  Frames nest:
  // each captures only its own charges, and an inner frame's charges
  // never leak into the outer one — the scheduler replays each captured
  // breakdown onto the timeline exactly once.
  void BeginMeasureFrame() { frames_.emplace_back(); }
  CategorySnapshot EndMeasureFrame() {
    CategorySnapshot frame = frames_.back();
    frames_.pop_back();
    uint64_t total = 0;
    for (uint64_t ns : frame.ns) {
      total += ns;
    }
    frame_extra_ns_ -= total;
    return frame;
  }
  bool InMeasureFrame() const { return !frames_.empty(); }

  // The event queue sharing this timeline (src/sim/event.h).  Created
  // lazily-at-construction; every Link/Host on this clock schedules here.
  EventQueue* events() { return events_.get(); }

  // Copies the per-category totals into `time.<category>_ns` counters
  // plus `time.total_ns`, for inclusion in a registry snapshot.
  void ExportTimeCounters(obs::Registry* registry) const {
    const CategorySnapshot snapshot = categories();
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      registry
          ->GetCounter(std::string("time.") +
                       obs::TimeCategoryName(static_cast<obs::TimeCategory>(i)) +
                       "_ns")
          ->Set(snapshot.ns[i]);
    }
    registry->GetCounter("time.total_ns")->Set(now_ns());
  }

 private:
  uint64_t now_ns_ = 0;
  CategorySnapshot charged_;
  // Active measure frames (innermost last) and the sum of their charges,
  // kept separately so now_ns() stays O(1).
  std::vector<CategorySnapshot> frames_;
  uint64_t frame_extra_ns_ = 0;
  std::unique_ptr<EventQueue> events_;
};

// Measures virtual elapsed time across a scope.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_ns_(clock->now_ns()) {}
  uint64_t elapsed_ns() const { return clock_->now_ns() - start_ns_; }
  double elapsed_seconds() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  void Reset() { start_ns_ = clock_->now_ns(); }

 private:
  const Clock* clock_;
  uint64_t start_ns_;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_CLOCK_H_
