// Virtual time for the simulation environment.
//
// All benchmark time in this repository is virtual: components charge the
// clock for network transit, disk mechanics, crypto CPU and user-level
// crossings according to the cost model, which makes every run
// deterministic regardless of the host machine.  See DESIGN.md §1 for why
// this substitution preserves the paper's comparisons.
//
// Every Advance() is attributed to an obs::TimeCategory, so the clock
// doubles as the ledger behind per-operation latency breakdowns: the
// per-category totals always sum to now_ns(), and the instrumented RPC
// layers diff CategorySnapshots around a call to attribute its cost to
// link vs crypto vs disk vs CPU (docs/OBSERVABILITY.md).
#ifndef SFS_SRC_SIM_CLOCK_H_
#define SFS_SRC_SIM_CLOCK_H_

#include <cstdint>

#include "src/obs/metrics.h"

namespace sim {

class Clock {
 public:
  // Per-category charge totals; diff two snapshots to slice one
  // operation's cost by category.
  struct CategorySnapshot {
    uint64_t ns[obs::kTimeCategoryCount] = {};
  };

  Clock() = default;

  uint64_t now_ns() const { return now_ns_; }
  void Advance(uint64_t delta_ns,
               obs::TimeCategory category = obs::TimeCategory::kUntracked) {
    now_ns_ += delta_ns;
    charged_.ns[static_cast<size_t>(category)] += delta_ns;
  }

  double now_seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

  uint64_t charged_ns(obs::TimeCategory category) const {
    return charged_.ns[static_cast<size_t>(category)];
  }
  const CategorySnapshot& categories() const { return charged_; }

  // Copies the per-category totals into `time.<category>_ns` counters
  // plus `time.total_ns`, for inclusion in a registry snapshot.
  void ExportTimeCounters(obs::Registry* registry) const {
    for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
      registry
          ->GetCounter(std::string("time.") +
                       obs::TimeCategoryName(static_cast<obs::TimeCategory>(i)) +
                       "_ns")
          ->Set(charged_.ns[i]);
    }
    registry->GetCounter("time.total_ns")->Set(now_ns_);
  }

 private:
  uint64_t now_ns_ = 0;
  CategorySnapshot charged_;
};

// Measures virtual elapsed time across a scope.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_ns_(clock->now_ns()) {}
  uint64_t elapsed_ns() const { return clock_->now_ns() - start_ns_; }
  double elapsed_seconds() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  void Reset() { start_ns_ = clock_->now_ns(); }

 private:
  const Clock* clock_;
  uint64_t start_ns_;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_CLOCK_H_
