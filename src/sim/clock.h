// Virtual time for the simulation environment.
//
// All benchmark time in this repository is virtual: components charge the
// clock for network transit, disk mechanics, crypto CPU and user-level
// crossings according to the cost model, which makes every run
// deterministic regardless of the host machine.  See DESIGN.md §1 for why
// this substitution preserves the paper's comparisons.
#ifndef SFS_SRC_SIM_CLOCK_H_
#define SFS_SRC_SIM_CLOCK_H_

#include <cstdint>

namespace sim {

class Clock {
 public:
  Clock() = default;

  uint64_t now_ns() const { return now_ns_; }
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

  double now_seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

 private:
  uint64_t now_ns_ = 0;
};

// Measures virtual elapsed time across a scope.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_ns_(clock->now_ns()) {}
  uint64_t elapsed_ns() const { return clock_->now_ns() - start_ns_; }
  double elapsed_seconds() const { return static_cast<double>(elapsed_ns()) * 1e-9; }
  void Reset() { start_ns_ = clock_->now_ns(); }

 private:
  const Clock* clock_;
  uint64_t start_ns_;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_CLOCK_H_
