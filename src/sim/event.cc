#include "src/sim/event.h"

#include <algorithm>

namespace sim {

GapAttribution GapAttribution::Proportional(const Clock::CategorySnapshot& breakdown) {
  GapAttribution a;
  a.breakdown = breakdown;
  for (uint64_t ns : breakdown.ns) {
    a.breakdown_total += ns;
  }
  if (a.breakdown_total == 0) {
    // A zero-cost handler: the gap (if any) is pure scheduling artifact;
    // charge it as untracked rather than inventing a category.
    a.category = obs::TimeCategory::kUntracked;
  }
  return a;
}

void EventQueue::PushHeap(Entry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void EventQueue::PopHeap() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
}

EventQueue::EventId EventQueue::Schedule(uint64_t at_ns, GapAttribution attr,
                                         std::function<void()> fn) {
  const EventId id = next_id_++;
  at_ns = std::max(at_ns, clock_->now_ns());
  pending_.emplace(id, Pending{std::move(attr), std::move(fn)});
  PushHeap(Entry{at_ns, id});
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // The heap entry stays (lazily discarded on pop); only the payload map
  // decides liveness.
  if (pending_.erase(id) == 0) {
    return false;
  }
  --live_;
  ++cancelled_;
  return true;
}

uint64_t EventQueue::next_time_ns() {
  while (!heap_.empty() && pending_.find(heap_.front().id) == pending_.end()) {
    PopHeap();  // Cancelled: discard without advancing time.
  }
  return heap_.empty() ? UINT64_MAX : heap_.front().at_ns;
}

bool EventQueue::RunOne() {
  if (next_time_ns() == UINT64_MAX) {
    return false;
  }
  const Entry entry = heap_.front();
  PopHeap();
  auto it = pending_.find(entry.id);
  Pending pending = std::move(it->second);
  pending_.erase(it);
  --live_;
  ++dispatched_;

  const uint64_t now = clock_->now_ns();
  if (entry.at_ns > now) {
    const uint64_t gap = entry.at_ns - now;
    const GapAttribution& attr = pending.attr;
    if (attr.breakdown_total == 0) {
      clock_->Advance(gap, attr.category);
    } else {
      // Split the gap proportionally to the measured breakdown, exact to
      // the nanosecond: rounding remainders land on the heaviest
      // category so the charges sum to the gap and the ledger invariant
      // (categories sum to now_ns) survives every dispatch.
      uint64_t charged = 0;
      size_t heaviest = 0;
      for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
        if (attr.breakdown.ns[i] > attr.breakdown.ns[heaviest]) {
          heaviest = i;
        }
        const uint64_t share = static_cast<uint64_t>(
            static_cast<unsigned __int128>(gap) * attr.breakdown.ns[i] /
            attr.breakdown_total);
        if (share != 0) {
          clock_->Advance(share, static_cast<obs::TimeCategory>(i));
          charged += share;
        }
      }
      if (charged < gap) {
        clock_->Advance(gap - charged, static_cast<obs::TimeCategory>(heaviest));
      }
    }
  }
  pending.fn();
  return true;
}

}  // namespace sim
