#include "src/sim/network.h"

#include <algorithm>
#include <utility>

#include "src/sim/event.h"

namespace sim {

// --- Host -------------------------------------------------------------------

Host::Host(Clock* clock, Service* service, obs::Registry* registry, Options options)
    : clock_(clock), service_(service), options_(options) {
  registry_ = registry != nullptr ? registry : obs::Registry::Default();
  m_queue_wait_ = registry_->GetHistogram("server.queue_wait_ns");
  m_shed_ = registry_->GetCounter("server.shed");
  g_queue_len_ = registry_->GetGauge("server.queue_len");
  g_in_service_ = registry_->GetGauge("server.in_service");
}

Host::~Host() {
  for (uint64_t id : outstanding_events_) {
    clock_->events()->Cancel(id);
  }
}

void Host::Arrive(util::Bytes request, obs::SpanContext ctx, ResponseFn respond,
                  std::function<void()> shed, Service* service) {
  ++arrivals_;
  Job job{std::move(request), ctx, std::move(respond), clock_->now_ns(), service};
  if (in_service_ < options_.concurrency) {
    StartService(std::move(job));
    return;
  }
  if (queue_.size() < options_.queue_depth) {
    queue_.push_back(std::move(job));
    g_queue_len_->Add(1);
    return;
  }
  // Overload: the admission queue is full and the request vanishes, like
  // a datagram dropped on a full socket buffer.  No reply is ever
  // scheduled; the client's retransmission timer is the recovery.
  ++shed_;
  m_shed_->Increment();
  if (shed) {
    shed();
  }
}

void Host::StartService(Job job) {
  ++in_service_;
  g_in_service_->Add(1);
  const uint64_t wait_ns = clock_->now_ns() - job.arrive_ns;
  m_queue_wait_->Record(wait_ns);
  obs::SpanCollector& spans = registry_->spans();
  if (wait_ns != 0 && spans.enabled()) {
    // The queue interval, parented into the submitter's trace.  Tagged
    // kQueue: on the global ledger this time mostly overlaps other
    // requests' service (each nanosecond of the shared timeline is
    // charged once), so the per-request span — not the ledger — is where
    // queueing delay becomes visible (docs/OBSERVABILITY.md).
    obs::Span span;
    span.name = "server.queue";
    span.layer = "sim.host";
    span.start_ns = job.arrive_ns;
    span.end_ns = clock_->now_ns();
    span.cat_ns[static_cast<size_t>(obs::TimeCategory::kQueue)] = wait_ns;
    spans.RecordClosed(std::move(span), job.ctx);
  }

  // Run the handler now, at its service-start event, capturing its
  // charges in a measure frame; the captured breakdown becomes the gap
  // attribution of the completion event, so the service time occupies
  // the timeline between start and completion no matter who pumps the
  // loop.  The ambient span stack is swapped to the submitter's context:
  // handler-internal spans (crypto, disk) must not parent under whatever
  // span the pumping client happens to have open.
  std::vector<uint64_t> saved_stack;
  const bool spans_on = spans.enabled();
  if (spans_on) {
    saved_stack = spans.SwapStack({job.ctx.span_id});
  }
  clock_->BeginMeasureFrame();
  Service* service = job.service != nullptr ? job.service : service_;
  auto result = service->Handle(job.request);
  const Clock::CategorySnapshot frame = clock_->EndMeasureFrame();
  if (spans_on) {
    spans.SwapStack(std::move(saved_stack));
  }
  uint64_t service_ns = 0;
  for (uint64_t ns : frame.ns) {
    service_ns += ns;
  }
  auto id_holder = std::make_shared<uint64_t>(0);
  const uint64_t id = clock_->events()->Schedule(
      clock_->now_ns() + service_ns, GapAttribution::Proportional(frame),
      [this, id_holder, respond = std::move(job.respond),
       result = std::move(result)]() mutable {
        outstanding_events_.erase(*id_holder);
        if (respond) {
          respond(std::move(result));
        }
        FinishService();
      });
  *id_holder = id;
  outstanding_events_.insert(id);
}

void Host::FinishService() {
  --in_service_;
  g_in_service_->Add(-1);
  if (!queue_.empty() && in_service_ < options_.concurrency) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    g_queue_len_->Add(-1);
    StartService(std::move(job));
  }
}

// --- Link -------------------------------------------------------------------

Link::Link(Clock* clock, LinkProfile profile, Service* service, obs::Registry* registry)
    : clock_(clock), profile_(profile), service_(service) {
  registry_ = registry != nullptr ? registry : obs::Registry::Default();
  owned_host_ = std::make_unique<Host>(clock, service, registry_);
  host_ = owned_host_.get();
  m_messages_ = registry_->GetCounter("link.messages");
  m_bytes_ = registry_->GetCounter("link.bytes");
  m_retransmissions_ = registry_->GetCounter("link.retransmissions");
  m_drops_ = registry_->GetCounter("link.drops");
  m_duplicates_ = registry_->GetCounter("link.duplicates_delivered");
}

Link::Link(Clock* clock, LinkProfile profile, Host* host, obs::Registry* registry,
           Service* service)
    : clock_(clock),
      profile_(profile),
      service_(service != nullptr ? service : host->service()),
      host_(host) {
  registry_ = registry != nullptr ? registry : obs::Registry::Default();
  m_messages_ = registry_->GetCounter("link.messages");
  m_bytes_ = registry_->GetCounter("link.bytes");
  m_retransmissions_ = registry_->GetCounter("link.retransmissions");
  m_drops_ = registry_->GetCounter("link.drops");
  m_duplicates_ = registry_->GetCounter("link.duplicates_delivered");
}

Link::~Link() {
  for (uint64_t id : outstanding_events_) {
    clock_->events()->Cancel(id);
  }
}

void Link::ScheduleEvent(uint64_t at_ns, obs::TimeCategory category,
                         std::function<void()> fn) {
  auto id_holder = std::make_shared<uint64_t>(0);
  const uint64_t id = clock_->events()->Schedule(
      at_ns, category, [this, id_holder, fn = std::move(fn)] {
        outstanding_events_.erase(*id_holder);
        fn();
      });
  *id_holder = id;
  outstanding_events_.insert(id);
}

bool Link::SpansEnabled() const { return registry_->spans().enabled(); }

uint64_t Link::SerializationNs(size_t bytes) const {
  if (profile_.bytes_per_sec == 0) {
    return 0;
  }
  return static_cast<uint64_t>(bytes) * 1'000'000'000 / profile_.bytes_per_sec;
}

void Link::CountMessage(size_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  m_messages_->Increment();
  m_bytes_->Increment(bytes);
}

void Link::ChargeOneWay(size_t bytes, const char* span_name) {
  uint64_t transit = profile_.latency_ns + profile_.per_message_ns + SerializationNs(bytes);
  const uint64_t start_ns = clock_->now_ns();
  clock_->Advance(transit, obs::TimeCategory::kLink);
  CountMessage(bytes);
  if (transit != 0 && SpansEnabled()) {
    obs::SpanCollector& spans = registry_->spans();
    obs::Span span;
    span.name = span_name;
    span.layer = "sim.link";
    span.start_ns = start_ns;
    span.end_ns = start_ns + transit;
    span.cat_ns[static_cast<size_t>(obs::TimeCategory::kLink)] = transit;
    span.wire_bytes = bytes;
    spans.RecordClosed(std::move(span), spans.current());
  }
}

void Link::EraseTransitInfo(uint64_t token) { transit_info_.erase(token); }

uint64_t Link::Submit(const util::Bytes& request) {
  const uint64_t token = next_token_++;
  obs::SpanContext ctx;
  if (SpansEnabled()) {
    ctx = registry_->spans().current();
    transit_info_[token] = TransitInfo{ctx.trace_id, ctx.span_id, clock_->now_ns()};
  }
  util::Bytes wire_request = request;
  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnRequest(std::move(wire_request));
    if (!intercepted.ok()) {
      // Lost in transit: no arrival is ever scheduled; the sender's
      // retransmission timer is the only recovery.  The token is dead,
      // so its span bookkeeping goes with it.
      ++drops_observed_;
      m_drops_->Increment();
      EraseTransitInfo(token);
      return token;
    }
    wire_request = std::move(intercepted).value();
  }
  // Draw the duplicate verdict before scheduling so the interposer's
  // deterministic sequence stays per-submission, then put both copies on
  // the uplink: each occupies wire bandwidth and, at arrival, the
  // server's admission pipeline — a duplicate is an ordinary arrival
  // that the service must deduplicate, not a free ride.
  const bool duplicate = interposer_ != nullptr && interposer_->DuplicateRequest();
  ScheduleRequestLeg(token, wire_request, ctx, /*is_duplicate=*/false);
  if (duplicate) {
    ++duplicates_delivered_;
    m_duplicates_->Increment();
    ScheduleRequestLeg(token, wire_request, ctx, /*is_duplicate=*/true);
  }
  return token;
}

void Link::ScheduleRequestLeg(uint64_t token, const util::Bytes& wire_request,
                              obs::SpanContext ctx, bool is_duplicate) {
  CountMessage(wire_request.size());
  // Uplink: messages queue for bandwidth but overlap in propagation.
  const uint64_t up_start = std::max(clock_->now_ns(), uplink_free_ns_);
  uplink_free_ns_ = up_start + SerializationNs(wire_request.size());
  const uint64_t arrive_ns = uplink_free_ns_ + profile_.latency_ns + profile_.per_message_ns;
  ScheduleEvent(
      arrive_ns, obs::TimeCategory::kLink,
      [this, token, wire_request, ctx, is_duplicate] {
        // The respond/shed closures may sit in a shared Host's queue past
        // this link's lifetime; the weak token disarms them.
        std::weak_ptr<char> alive = alive_;
        host_->Arrive(
            wire_request, ctx,
            [this, alive, token, is_duplicate](util::Result<util::Bytes> result) {
              if (alive.expired() || is_duplicate) {
                // A dead link has no one to carry the reply to; a
                // duplicate's reply finds no one waiting (the service
                // deduplicated or re-executed — its choice) and the
                // network discards it.
                return;
              }
              CompleteResponse(token, std::move(result));
            },
            [this, alive, token, is_duplicate] {
              // Shed at admission: the token is dead (for the original;
              // a shed duplicate changes nothing for the live original).
              if (!alive.expired() && !is_duplicate) {
                EraseTransitInfo(token);
              }
            },
            service_);
      });
}

void Link::CompleteResponse(uint64_t token, util::Result<util::Bytes> result) {
  if (!result.ok()) {
    // A verdict from the service itself (dead connection, bad message)
    // is delivered like a reply: retrying the same bytes cannot help,
    // and the caller must hear about it.  It takes the full downlink leg
    // — latency, per-message overhead, serialization of its (empty)
    // body — and counts as a wire message, exactly like a success reply.
    ScheduleResponseLeg(token, result.status(), util::Bytes{});
    return;
  }
  util::Bytes wire_response = std::move(result).value();
  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnResponse(std::move(wire_response));
    if (!intercepted.ok()) {
      ++drops_observed_;
      m_drops_->Increment();
      EraseTransitInfo(token);
      return;
    }
    wire_response = std::move(intercepted).value();
  }
  ScheduleResponseLeg(token, util::OkStatus(), std::move(wire_response));
}

void Link::ScheduleResponseLeg(uint64_t token, util::Status status,
                               util::Bytes response) {
  CountMessage(response.size());
  const uint64_t down_start = std::max(clock_->now_ns(), downlink_free_ns_);
  downlink_free_ns_ = down_start + SerializationNs(response.size());
  const uint64_t deliver_ns =
      downlink_free_ns_ + profile_.latency_ns + profile_.per_message_ns;
  ScheduleEvent(
      deliver_ns, obs::TimeCategory::kLink,
      [this, token, status = std::move(status),
       response = std::move(response)]() mutable {
        Deliver(Delivery{token, std::move(status), std::move(response)});
      });
}

void Link::Deliver(Delivery delivery) {
  if (auto info = transit_info_.find(delivery.token); info != transit_info_.end()) {
    if (SpansEnabled()) {
      // Interval marker covering submit → delivery, parented into the
      // submitter's trace.  Categories stay empty: the interval overlaps
      // the server's service time and any concurrent transits, so a
      // ledger slice here would misattribute shared time.
      obs::Span span;
      span.name = "link.transit";
      span.layer = "sim.link";
      span.start_ns = info->second.submit_ns;
      span.end_ns = clock_->now_ns();
      span.wire_bytes = delivery.response.size();
      span.error = !delivery.status.ok();
      registry_->spans().RecordClosed(
          std::move(span),
          obs::SpanContext{info->second.trace_id, info->second.parent_span_id});
    }
    transit_info_.erase(info);
  }
  if (sink_) {
    sink_(std::move(delivery));
    return;
  }
  ready_.push_back(std::move(delivery));
}

std::optional<Delivery> Link::AwaitNext(uint64_t deadline_ns) {
  EventQueue* events = clock_->events();
  while (ready_.empty() && events->next_time_ns() <= deadline_ns) {
    events->RunOne();
  }
  if (!ready_.empty()) {
    Delivery delivery = std::move(ready_.front());
    ready_.pop_front();
    return delivery;
  }
  if (deadline_ns > clock_->now_ns()) {
    clock_->Advance(deadline_ns - clock_->now_ns(), obs::TimeCategory::kWait);
  }
  return std::nullopt;
}

util::Result<util::Bytes> Link::Roundtrip(const util::Bytes& request) {
  uint64_t rto = retry_policy_.initial_rto_ns;
  util::Status last_drop = util::Unavailable("request dropped in transit");
  for (uint32_t attempt = 0; attempt < retry_policy_.max_transmissions; ++attempt) {
    if (attempt > 0) {
      // The full retransmission timeout elapses before the sender gives
      // up on the outstanding copy and resends the same wire bytes.
      clock_->Advance(rto, obs::TimeCategory::kWait);
      rto = std::min(rto * retry_policy_.backoff_factor, retry_policy_.max_rto_ns);
      ++retransmissions_;
      m_retransmissions_->Increment();
    }

    util::Bytes wire_request = request;
    if (interposer_ != nullptr) {
      auto intercepted = interposer_->OnRequest(std::move(wire_request));
      if (!intercepted.ok()) {
        ++drops_observed_;
        m_drops_->Increment();
        last_drop = util::Unavailable("request dropped in transit: " +
                                      intercepted.status().message());
        continue;
      }
      wire_request = std::move(intercepted).value();
    }
    ChargeOneWay(wire_request.size(), "link.send");

    auto response = service_->Handle(wire_request);
    if (!response.ok()) {
      // An error from the service itself (dead connection, bad message)
      // is not transit loss; retrying the same bytes cannot help.
      return response.status();
    }
    util::Bytes wire_response = std::move(response).value();

    if (interposer_ != nullptr && interposer_->DuplicateRequest()) {
      // The network delivers a second copy of the request.  The service
      // must deduplicate; its reply to the copy finds no one waiting.
      ++duplicates_delivered_;
      m_duplicates_->Increment();
      ChargeOneWay(wire_request.size(), "link.send.dup");
      (void)service_->Handle(wire_request);
    }

    if (interposer_ != nullptr) {
      auto intercepted = interposer_->OnResponse(std::move(wire_response));
      if (!intercepted.ok()) {
        ++drops_observed_;
        m_drops_->Increment();
        last_drop = util::Unavailable("response dropped in transit: " +
                                      intercepted.status().message());
        continue;
      }
      wire_response = std::move(intercepted).value();
    }
    ChargeOneWay(wire_response.size(), "link.recv");
    return wire_response;
  }
  return last_drop;
}

// splitmix64: tiny, deterministic, and independent of the crypto layer.
bool LossyInterposer::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < p;
}

util::Result<util::Bytes> LossyInterposer::OnRequest(util::Bytes request) {
  if (Chance(profile_.drop)) {
    ++requests_dropped_;
    return util::Unavailable("lossy network: request lost");
  }
  return request;
}

util::Result<util::Bytes> LossyInterposer::OnResponse(util::Bytes response) {
  if (Chance(profile_.reorder)) {
    ++reorders_;
    if (held_.has_value()) {
      // Deliver the delayed response in place of the fresh one; the
      // receiver sees a stale message and must discard it.
      std::swap(*held_, response);
      return response;
    }
    held_ = std::move(response);
    return util::Unavailable("lossy network: response delayed");
  }
  if (Chance(profile_.drop)) {
    ++responses_dropped_;
    return util::Unavailable("lossy network: response lost");
  }
  return response;
}

bool LossyInterposer::DuplicateRequest() {
  if (Chance(profile_.duplicate)) {
    ++duplicates_;
    return true;
  }
  return false;
}

size_t LossyInterposer::FlushHeld() {
  if (!held_.has_value()) {
    return 0;
  }
  held_.reset();
  ++responses_dropped_;
  ++held_flushed_;
  return 1;
}

}  // namespace sim
