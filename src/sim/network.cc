#include "src/sim/network.h"

namespace sim {

void Link::ChargeOneWay(size_t bytes) {
  uint64_t transit = profile_.latency_ns + profile_.per_message_ns;
  if (profile_.bytes_per_sec > 0) {
    transit += static_cast<uint64_t>(bytes) * 1'000'000'000 / profile_.bytes_per_sec;
  }
  clock_->Advance(transit);
  ++messages_sent_;
  bytes_sent_ += bytes;
}

util::Result<util::Bytes> Link::Roundtrip(const util::Bytes& request) {
  util::Bytes wire_request = request;
  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnRequest(std::move(wire_request));
    if (!intercepted.ok()) {
      return util::Unavailable("request dropped in transit: " +
                               intercepted.status().message());
    }
    wire_request = std::move(intercepted).value();
  }
  ChargeOneWay(wire_request.size());

  auto response = service_->Handle(wire_request);
  if (!response.ok()) {
    return response.status();
  }
  util::Bytes wire_response = std::move(response).value();

  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnResponse(std::move(wire_response));
    if (!intercepted.ok()) {
      return util::Unavailable("response dropped in transit: " +
                               intercepted.status().message());
    }
    wire_response = std::move(intercepted).value();
  }
  ChargeOneWay(wire_response.size());
  return wire_response;
}

}  // namespace sim
