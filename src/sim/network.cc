#include "src/sim/network.h"

#include <algorithm>

#include "src/obs/span.h"

namespace sim {

namespace {
// Bounds transit_info_: tokens whose message was dropped never deliver,
// so their entries are reclaimed oldest-first past this size.
constexpr size_t kMaxTransitInfo = 4096;
}  // namespace

bool Link::SpansEnabled() const { return registry_->spans().enabled(); }

uint64_t Link::SerializationNs(size_t bytes) const {
  if (profile_.bytes_per_sec == 0) {
    return 0;
  }
  return static_cast<uint64_t>(bytes) * 1'000'000'000 / profile_.bytes_per_sec;
}

void Link::CountMessage(size_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  m_messages_->Increment();
  m_bytes_->Increment(bytes);
}

void Link::ChargeOneWay(size_t bytes, const char* span_name) {
  uint64_t transit = profile_.latency_ns + profile_.per_message_ns + SerializationNs(bytes);
  const uint64_t start_ns = clock_->now_ns();
  clock_->Advance(transit, obs::TimeCategory::kLink);
  CountMessage(bytes);
  if (transit != 0 && SpansEnabled()) {
    obs::SpanCollector& spans = registry_->spans();
    obs::Span span;
    span.name = span_name;
    span.layer = "sim.link";
    span.start_ns = start_ns;
    span.end_ns = start_ns + transit;
    span.cat_ns[static_cast<size_t>(obs::TimeCategory::kLink)] = transit;
    span.wire_bytes = bytes;
    spans.RecordClosed(std::move(span), spans.current());
  }
}

uint64_t Link::Submit(const util::Bytes& request) {
  const uint64_t token = next_token_++;
  if (SpansEnabled()) {
    obs::SpanContext ctx = registry_->spans().current();
    transit_info_[token] = TransitInfo{ctx.trace_id, ctx.span_id, clock_->now_ns()};
    while (transit_info_.size() > kMaxTransitInfo) {
      transit_info_.erase(transit_info_.begin());
    }
  }
  util::Bytes wire_request = request;
  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnRequest(std::move(wire_request));
    if (!intercepted.ok()) {
      // Lost in transit: no delivery is ever scheduled; the sender's
      // retransmission timer is the only recovery.
      ++drops_observed_;
      m_drops_->Increment();
      return token;
    }
    wire_request = std::move(intercepted).value();
  }
  CountMessage(wire_request.size());

  // Uplink: messages queue for bandwidth but overlap in propagation.
  const uint64_t up_start = std::max(clock_->now_ns(), uplink_free_ns_);
  uplink_free_ns_ = up_start + SerializationNs(wire_request.size());
  const uint64_t arrive_ns = uplink_free_ns_ + profile_.latency_ns + profile_.per_message_ns;

  // The server is a serial resource executing requests in arrival order.
  // The handler's own charges (disk, CPU, crypto) advance the shared
  // clock; the watermark positions its completion on the wire timeline.
  const uint64_t exec_start = std::max(arrive_ns, server_free_ns_);
  const uint64_t handler_begin = clock_->now_ns();
  auto response = service_->Handle(wire_request);
  server_free_ns_ = exec_start + (clock_->now_ns() - handler_begin);

  if (interposer_ != nullptr && interposer_->DuplicateRequest()) {
    // The network delivers a second copy; the service deduplicates and
    // its reply to the copy finds no one waiting.
    ++duplicates_delivered_;
    m_duplicates_->Increment();
    CountMessage(wire_request.size());
    (void)service_->Handle(wire_request);
  }

  if (!response.ok()) {
    // A verdict from the service itself (dead connection, bad message)
    // is delivered like a reply: retrying the same bytes cannot help,
    // and the caller must hear about it.
    deliveries_.emplace(server_free_ns_,
                        Delivery{token, response.status(), util::Bytes{}});
    return token;
  }
  util::Bytes wire_response = std::move(response).value();
  if (interposer_ != nullptr) {
    auto intercepted = interposer_->OnResponse(std::move(wire_response));
    if (!intercepted.ok()) {
      ++drops_observed_;
      m_drops_->Increment();
      return token;
    }
    wire_response = std::move(intercepted).value();
  }
  CountMessage(wire_response.size());
  const uint64_t down_start = std::max(server_free_ns_, downlink_free_ns_);
  downlink_free_ns_ = down_start + SerializationNs(wire_response.size());
  const uint64_t deliver_ns =
      downlink_free_ns_ + profile_.latency_ns + profile_.per_message_ns;
  deliveries_.emplace(deliver_ns,
                      Delivery{token, util::OkStatus(), std::move(wire_response)});
  return token;
}

std::optional<Delivery> Link::AwaitNext(uint64_t deadline_ns) {
  auto it = deliveries_.begin();
  if (it != deliveries_.end() && it->first <= deadline_ns) {
    if (it->first > clock_->now_ns()) {
      clock_->Advance(it->first - clock_->now_ns(), obs::TimeCategory::kLink);
    }
    Delivery delivery = std::move(it->second);
    deliveries_.erase(it);
    if (auto info = transit_info_.find(delivery.token); info != transit_info_.end()) {
      if (SpansEnabled()) {
        // Interval marker covering submit → delivery, parented into the
        // submitter's trace.  Categories stay empty: the interval spans
        // the inline handler execution and any concurrently pumped work,
        // so a ledger slice here would misattribute shared time.
        obs::Span span;
        span.name = "link.transit";
        span.layer = "sim.link";
        span.start_ns = info->second.submit_ns;
        span.end_ns = clock_->now_ns();
        span.wire_bytes = delivery.response.size();
        span.error = !delivery.status.ok();
        registry_->spans().RecordClosed(
            std::move(span),
            obs::SpanContext{info->second.trace_id, info->second.parent_span_id});
      }
      transit_info_.erase(info);
    }
    return delivery;
  }
  if (deadline_ns > clock_->now_ns()) {
    clock_->Advance(deadline_ns - clock_->now_ns(), obs::TimeCategory::kWait);
  }
  return std::nullopt;
}

util::Result<util::Bytes> Link::Roundtrip(const util::Bytes& request) {
  uint64_t rto = retry_policy_.initial_rto_ns;
  util::Status last_drop = util::Unavailable("request dropped in transit");
  for (uint32_t attempt = 0; attempt < retry_policy_.max_transmissions; ++attempt) {
    if (attempt > 0) {
      // The full retransmission timeout elapses before the sender gives
      // up on the outstanding copy and resends the same wire bytes.
      clock_->Advance(rto, obs::TimeCategory::kWait);
      rto = std::min(rto * retry_policy_.backoff_factor, retry_policy_.max_rto_ns);
      ++retransmissions_;
      m_retransmissions_->Increment();
    }

    util::Bytes wire_request = request;
    if (interposer_ != nullptr) {
      auto intercepted = interposer_->OnRequest(std::move(wire_request));
      if (!intercepted.ok()) {
        ++drops_observed_;
        m_drops_->Increment();
        last_drop = util::Unavailable("request dropped in transit: " +
                                      intercepted.status().message());
        continue;
      }
      wire_request = std::move(intercepted).value();
    }
    ChargeOneWay(wire_request.size(), "link.send");

    auto response = service_->Handle(wire_request);
    if (!response.ok()) {
      // An error from the service itself (dead connection, bad message)
      // is not transit loss; retrying the same bytes cannot help.
      return response.status();
    }
    util::Bytes wire_response = std::move(response).value();

    if (interposer_ != nullptr && interposer_->DuplicateRequest()) {
      // The network delivers a second copy of the request.  The service
      // must deduplicate; its reply to the copy finds no one waiting.
      ++duplicates_delivered_;
      m_duplicates_->Increment();
      ChargeOneWay(wire_request.size(), "link.send.dup");
      (void)service_->Handle(wire_request);
    }

    if (interposer_ != nullptr) {
      auto intercepted = interposer_->OnResponse(std::move(wire_response));
      if (!intercepted.ok()) {
        ++drops_observed_;
        m_drops_->Increment();
        last_drop = util::Unavailable("response dropped in transit: " +
                                      intercepted.status().message());
        continue;
      }
      wire_response = std::move(intercepted).value();
    }
    ChargeOneWay(wire_response.size(), "link.recv");
    return wire_response;
  }
  return last_drop;
}

// splitmix64: tiny, deterministic, and independent of the crypto layer.
bool LossyInterposer::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < p;
}

util::Result<util::Bytes> LossyInterposer::OnRequest(util::Bytes request) {
  if (Chance(profile_.drop)) {
    ++requests_dropped_;
    return util::Unavailable("lossy network: request lost");
  }
  return request;
}

util::Result<util::Bytes> LossyInterposer::OnResponse(util::Bytes response) {
  if (Chance(profile_.reorder)) {
    ++reorders_;
    if (held_.has_value()) {
      // Deliver the delayed response in place of the fresh one; the
      // receiver sees a stale message and must discard it.
      std::swap(*held_, response);
      return response;
    }
    held_ = std::move(response);
    return util::Unavailable("lossy network: response delayed");
  }
  if (Chance(profile_.drop)) {
    ++responses_dropped_;
    return util::Unavailable("lossy network: response lost");
  }
  return response;
}

bool LossyInterposer::DuplicateRequest() {
  if (Chance(profile_.duplicate)) {
    ++duplicates_;
    return true;
  }
  return false;
}

}  // namespace sim
