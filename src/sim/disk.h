// Disk mechanics model for the in-memory file server.
//
// Approximates the evaluation's IBM 18ES SCSI disk (§4.1): milliseconds
// of seek + rotational delay for non-sequential access, a fixed transfer
// rate, and expensive synchronous metadata updates (which dominate the
// unlink phase of the Sprite LFS small-file benchmark, §4.4).
//
// The model tracks a simple buffer cache notion: data written through the
// file system is resident in server memory, so re-reads are free;
// workload files pre-loaded as "cold" charge disk on first read.
#ifndef SFS_SRC_SIM_DISK_H_
#define SFS_SRC_SIM_DISK_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace sim {

struct DiskProfile {
  uint64_t seek_ns = 6'000'000;        // Average seek + rotational delay.
  uint64_t bytes_per_sec = 15'000'000; // Media transfer rate.
  uint64_t meta_update_ns = 4'000'000; // Synchronous metadata write (create/unlink/rename).

  static DiskProfile Ibm18Es() { return DiskProfile{}; }
};

class Disk {
 public:
  // `registry` (optional) lets disk charges record child spans when the
  // registry's SpanCollector is enabled (see src/obs/span.h).
  Disk(Clock* clock, DiskProfile profile, obs::Registry* registry = nullptr)
      : clock_(clock), profile_(profile), registry_(registry) {}

  // Cold read of `bytes` from `file_id` at `offset`.  Sequential
  // continuation of the previous read skips the seek.
  void ChargeRead(uint64_t file_id, uint64_t offset, uint64_t bytes);

  // Asynchronous (buffered) write: no immediate cost; the cost is paid at
  // Commit time.  We accumulate the dirty byte count here.
  void BufferWrite(uint64_t bytes) { dirty_bytes_ += bytes; }

  // Synchronous flush of buffered data (NFS COMMIT / stable writes).
  void ChargeCommit();

  // Durable sequential append to an on-disk log (the audit journal).
  // Pays the transfer always, and a seek only when the head is not
  // already parked at the log's tail — a disk dedicated to the journal
  // seeks once and then streams.
  void ChargeAppend(uint64_t bytes);

  // Synchronous metadata update.
  void ChargeMetaUpdate();

  uint64_t dirty_bytes() const { return dirty_bytes_; }

  // Forgets buffered writes without charging (benchmark setup helper).
  void DiscardDirty() { dirty_bytes_ = 0; }

 private:
  // Records one already-elapsed all-kDisk interval as a child span of the
  // ambient span (typically the server dispatch span).
  void RecordDiskSpan(const char* name, uint64_t start_ns, uint64_t bytes);

  Clock* clock_;
  DiskProfile profile_;
  obs::Registry* registry_ = nullptr;
  uint64_t dirty_bytes_ = 0;
  uint64_t last_file_id_ = ~uint64_t{0};
  uint64_t next_sequential_offset_ = 0;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_DISK_H_
