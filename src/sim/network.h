// Simulated network: links with latency/bandwidth, a synchronous
// request/response discipline, and an adversary interposition point.
//
// The paper's threat model (§2.1.2): "malicious parties entirely control
// the network.  Attackers can intercept packets, tamper with them, and
// inject new packets."  The Interposer hook gives tests exactly these
// powers; the LinkProfile reproduces the 100 Mbit/s switched Ethernet of
// the evaluation (§4.1) with separate UDP-like and TCP-like profiles.
#ifndef SFS_SRC_SIM_NETWORK_H_
#define SFS_SRC_SIM_NETWORK_H_

#include <cstdint>

#include "src/sim/clock.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sim {

// A request handler on the far side of a link ("the server machine").
class Service {
 public:
  virtual ~Service() = default;
  virtual util::Result<util::Bytes> Handle(const util::Bytes& request) = 0;
};

// Adversary hook: sees (and may rewrite, drop, or fabricate) every
// message in both directions.
class Interposer {
 public:
  virtual ~Interposer() = default;
  // Return modified bytes to forward, or an error status to drop the
  // message (the caller observes kUnavailable).
  virtual util::Result<util::Bytes> OnRequest(util::Bytes request) { return request; }
  virtual util::Result<util::Bytes> OnResponse(util::Bytes response) { return response; }
};

struct LinkProfile {
  uint64_t latency_ns;          // One-way propagation + switching.
  uint64_t bytes_per_sec;       // Wire bandwidth.
  uint64_t per_message_ns;      // Per-packet protocol overhead (one way).

  // 100 Mbit/s Ethernet, UDP transport (the paper's NFS 3 default).
  static LinkProfile Udp() { return {45'000, 12'500'000, 25'000}; }
  // Same wire, TCP transport (stream reassembly + ack overhead).  This is
  // the profile SFS connections use.
  static LinkProfile Tcp() { return {45'000, 11'500'000, 33'000}; }
  // FreeBSD 3.3's in-kernel NFS-over-TCP, which the paper found
  // "suboptimal" (§4.1, including a kernel panic while writing a large
  // file): same latency, degraded streaming bandwidth.
  static LinkProfile NfsTcpKernel() { return {45'000, 8'200'000, 33'000}; }
  // Loopback for the local-FS baseline.
  static LinkProfile Local() { return {0, 0, 0}; }
};

// A bidirectional link to one service.  Roundtrip() charges virtual time
// for both directions and runs the interposer chain.
class Link {
 public:
  Link(Clock* clock, LinkProfile profile, Service* service)
      : clock_(clock), profile_(profile), service_(service) {}

  // Installs (or clears, with nullptr) the adversary.
  void set_interposer(Interposer* interposer) { interposer_ = interposer; }

  util::Result<util::Bytes> Roundtrip(const util::Bytes& request);

  // Counters for benchmark reporting.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  Clock* clock() const { return clock_; }
  const LinkProfile& profile() const { return profile_; }

 private:
  void ChargeOneWay(size_t bytes);

  Clock* clock_;
  LinkProfile profile_;
  Service* service_;
  Interposer* interposer_ = nullptr;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_NETWORK_H_
