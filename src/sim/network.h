// Simulated network: links with latency/bandwidth, a synchronous
// request/response discipline, and an adversary interposition point.
//
// The paper's threat model (§2.1.2): "malicious parties entirely control
// the network.  Attackers can intercept packets, tamper with them, and
// inject new packets."  The Interposer hook gives tests exactly these
// powers; the LinkProfile reproduces the 100 Mbit/s switched Ethernet of
// the evaluation (§4.1) with separate UDP-like and TCP-like profiles.
//
// Loss masking: real NFS/SFS transports retransmit on a timer, so a
// dropped datagram delays an operation instead of failing it.  Roundtrip
// implements that discipline — the same wire bytes are resent after an
// exponentially backed-off timeout, up to RetryPolicy::max_transmissions;
// only then does the caller observe kUnavailable.  Services are expected
// to deduplicate redelivered requests (see rpc::Dispatcher and
// sfs::ServerConnection).
//
// Discrete-event model: pipelined submissions flow through the clock's
// EventQueue (src/sim/event.h).  Submit() schedules a message-arrival
// event on the far host; the Host admits it (or queues it behind a
// concurrency limit, or sheds it past the queue depth), runs the handler
// in a clock measure frame, and schedules a completion event; the reply
// then takes the downlink as a delivery event.  Nothing executes inline
// inside Submit, which makes the server a genuinely serial (or
// C-parallel) resource shared by every link pointed at it and makes
// inline-execution timing bugs structurally impossible.
#ifndef SFS_SRC_SIM_NETWORK_H_
#define SFS_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "src/obs/span.h"
#include "src/sim/clock.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sim {

// One reply arriving on a pipelined link (see Link::Submit/AwaitNext).
// `status` carries a service-level verdict (dead connection, malformed
// message); transit loss produces no Delivery at all — the sender's
// retransmission timer is the only signal.
struct Delivery {
  uint64_t token = 0;
  util::Status status = util::OkStatus();
  util::Bytes response;
};

// A request handler on the far side of a link ("the server machine").
class Service {
 public:
  virtual ~Service() = default;
  virtual util::Result<util::Bytes> Handle(const util::Bytes& request) = 0;
};

// Adversary hook: sees (and may rewrite, drop, or fabricate) every
// message in both directions.
class Interposer {
 public:
  virtual ~Interposer() = default;
  // Return modified bytes to forward, or an error status to drop the
  // message (the sender's retransmission timer eventually fires; after
  // the retry cap the caller observes kUnavailable).
  virtual util::Result<util::Bytes> OnRequest(util::Bytes request) { return request; }
  virtual util::Result<util::Bytes> OnResponse(util::Bytes response) { return response; }
  // Network duplication: return true to deliver the current request to
  // the service a second time.  The far side must deduplicate; the extra
  // reply finds no one waiting and is discarded.
  virtual bool DuplicateRequest() { return false; }
};

struct LinkProfile {
  uint64_t latency_ns;          // One-way propagation + switching.
  uint64_t bytes_per_sec;       // Wire bandwidth.
  uint64_t per_message_ns;      // Per-packet protocol overhead (one way).

  // 100 Mbit/s Ethernet, UDP transport (the paper's NFS 3 default).
  static LinkProfile Udp() { return {45'000, 12'500'000, 25'000}; }
  // Same wire, TCP transport (stream reassembly + ack overhead).  This is
  // the profile SFS connections use.
  static LinkProfile Tcp() { return {45'000, 11'500'000, 33'000}; }
  // FreeBSD 3.3's in-kernel NFS-over-TCP, which the paper found
  // "suboptimal" (§4.1, including a kernel panic while writing a large
  // file): same latency, degraded streaming bandwidth.
  static LinkProfile NfsTcpKernel() { return {45'000, 8'200'000, 33'000}; }
  // Loopback for the local-FS baseline.
  static LinkProfile Local() { return {0, 0, 0}; }
};

// Sender-side retransmission discipline (NFS-style timer: the FreeBSD
// default timeo is in this neighborhood, doubling per retry).
struct RetryPolicy {
  uint32_t max_transmissions = 6;        // 1 initial send + 5 retransmissions.
  uint64_t initial_rto_ns = 200'000'000;  // 200 ms before the first retry.
  uint64_t max_rto_ns = 3'200'000'000;    // Backoff ceiling.
  uint32_t backoff_factor = 2;
};

// Deterministic fault injector: drops, duplicates, and reorders messages
// with seeded probabilities.  Used by the fault-injection tests and the
// lossy benchmark configurations; with retransmission plus server-side
// duplicate-request caches, a workload must survive it with zero
// application-visible errors.
class LossyInterposer : public Interposer {
 public:
  struct Profile {
    double drop = 0.0;       // Per-message loss (each direction, independently).
    double duplicate = 0.0;  // Per-request duplicate delivery.
    double reorder = 0.0;    // Per-response delay/swap (stale delivery).
  };

  LossyInterposer(uint64_t seed, Profile profile)
      : state_(seed * 2 + 1), profile_(profile) {}

  util::Result<util::Bytes> OnRequest(util::Bytes request) override;
  util::Result<util::Bytes> OnResponse(util::Bytes response) override;
  bool DuplicateRequest() override;

  // End-of-run reconciliation: a response still held back for reordering
  // has left the simulation without ever being delivered.  Flushing
  // reclassifies it as a drop (counted in responses_dropped and
  // held_flushed), so sent = delivered + dropped balances after a run;
  // without the flush the held message is silently destroyed and the
  // accounting disagrees by one.  Returns how many messages (0 or 1)
  // were reclassified.
  size_t FlushHeld();
  bool has_held() const { return held_.has_value(); }

  uint64_t requests_dropped() const { return requests_dropped_; }
  uint64_t responses_dropped() const { return responses_dropped_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t reorders() const { return reorders_; }
  uint64_t held_flushed() const { return held_flushed_; }

 private:
  bool Chance(double p);

  uint64_t state_;
  Profile profile_;
  // A response held back by the network; delivered later in place of a
  // fresher one (the receiver sees a stale message, not silence).
  std::optional<util::Bytes> held_;
  uint64_t requests_dropped_ = 0;
  uint64_t responses_dropped_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t reorders_ = 0;
  uint64_t held_flushed_ = 0;
};

// The server machine as an event source: an admission queue in front of
// a concurrency-limited executor.  Requests arrive from any number of
// links; each is either started immediately (a free service slot),
// queued (recorded as server.queue_wait_ns and, with spans on, a
// server.queue span), or shed when the queue is full — a shed request
// simply vanishes, exactly like a datagram the kernel dropped on a full
// socket buffer, and the client's retransmission timer is the recovery.
//
// The handler runs at its service-start event inside a clock measure
// frame (see sim::Clock), so its disk/CPU/crypto charges are captured
// and replayed as the gap to its completion event: the server occupies
// the timeline for exactly the measured service time, whether or not the
// submitting client is the one pumping the event loop.
class Host {
 public:
  struct Options {
    // Service slots executing concurrently (the paper's server is one
    // machine — 1 models a serial daemon; >1 models SMP or async I/O).
    uint32_t concurrency = 1;
    // Admission-queue bound; arrivals past it are shed.  The default is
    // effectively unbounded (honest infinite-buffer model).
    size_t queue_depth = SIZE_MAX;
  };

  // `registry` receives server.queue_wait_ns / server.shed; nullptr
  // selects obs::Registry::Default().  The clock must outlive the host
  // (completion events scheduled on its queue are cancelled here).
  // Two overloads instead of a defaulted Options argument: a default
  // argument would need Options complete inside its own class.
  Host(Clock* clock, Service* service, obs::Registry* registry = nullptr)
      : Host(clock, service, registry, Options()) {}
  Host(Clock* clock, Service* service, obs::Registry* registry, Options options);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  using ResponseFn = std::function<void(util::Result<util::Bytes>)>;

  // Called at message-arrival-event time.  `respond` fires at the
  // service-completion event with the handler's verdict; `shed` (may be
  // null) fires instead, immediately, if the admission queue is full.
  // `ctx` is the submitting client's span context: queue spans parent
  // under it, and the handler executes with it as the ambient stack.
  // `service` overrides the host's default handler for this arrival:
  // per-connection protocol state (an rpc::Dispatcher's duplicate-
  // request cache is keyed by the connection's seqnos) lives in the
  // service, while the machine's slots and queue stay shared here.
  void Arrive(util::Bytes request, obs::SpanContext ctx, ResponseFn respond,
              std::function<void()> shed = nullptr, Service* service = nullptr);

  Clock* clock() const { return clock_; }
  Service* service() const { return service_; }
  const Options& options() const { return options_; }

  uint64_t arrivals() const { return arrivals_; }
  uint64_t shed_count() const { return shed_; }
  uint32_t in_service() const { return in_service_; }
  size_t queue_length() const { return queue_.size(); }

 private:
  struct Job {
    util::Bytes request;
    obs::SpanContext ctx;
    ResponseFn respond;
    uint64_t arrive_ns = 0;
    Service* service = nullptr;  // Per-connection override; null = host default.
  };

  void StartService(Job job);
  void FinishService();

  Clock* clock_;
  Service* service_;
  Options options_;
  std::deque<Job> queue_;
  // Completion events still scheduled; cancelled at destruction so a
  // host can die before its clock without dangling dispatches.
  std::set<uint64_t> outstanding_events_;
  uint32_t in_service_ = 0;
  uint64_t arrivals_ = 0;
  uint64_t shed_ = 0;
  obs::Registry* registry_;
  obs::Histogram* m_queue_wait_;
  obs::Counter* m_shed_;
  // Instantaneous admission-queue depth and busy executor slots, for
  // obs::Timeline gauge tracks (docs/OBSERVABILITY.md §8).
  obs::Gauge* g_queue_len_;
  obs::Gauge* g_in_service_;
};

// A bidirectional link to one service.  Roundtrip() charges virtual time
// for both directions, runs the interposer chain, and masks transit loss
// by retransmitting the same wire bytes on a backed-off timer.
class Link {
 public:
  // `registry` receives the aggregate link.* counters; nullptr selects
  // the process-wide obs::Registry::Default().  This form gives the link
  // its own private Host around `service` — the classic one-client
  // topology, where the far machine serves only this link.
  Link(Clock* clock, LinkProfile profile, Service* service,
       obs::Registry* registry = nullptr);

  // Shared-host form: many links (client machines) feed one server
  // machine, competing for its service slots and admission queue.
  // `service`, when given, is this connection's endpoint on the server
  // (e.g. its own rpc::Dispatcher, whose duplicate-request cache is
  // keyed by this connection's seqnos); null shares the host's default.
  Link(Clock* clock, LinkProfile profile, Host* host,
       obs::Registry* registry = nullptr, Service* service = nullptr);

  // The clock must outlive the link: in-flight events it scheduled are
  // cancelled here, and response closures a shared Host still holds are
  // disarmed (they hold a weak liveness token, not a bare this).
  ~Link();
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Installs (or clears, with nullptr) the adversary.
  void set_interposer(Interposer* interposer) { interposer_ = interposer; }

  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  util::Result<util::Bytes> Roundtrip(const util::Bytes& request);

  // --- Pipelined mode -----------------------------------------------------
  //
  // Submit() puts a request on the wire without blocking for the reply,
  // so several calls can share one round-trip of latency.  The uplink
  // and downlink are serial bandwidth resources (busy-until watermarks:
  // concurrent messages overlap in propagation but queue for the wire);
  // the server is the Host's admission/execution pipeline.  Everything
  // beyond the uplink watermark happens as scheduled events: arrival,
  // handler completion, delivery.  A message the interposer drops
  // schedules no delivery: the caller's retransmission timer is the
  // only recovery, exactly as with Roundtrip().
  //
  // Returns a token identifying the submission; the matching Delivery
  // carries it back (callers typically match on message content instead,
  // since duplicated/reordered replies can arrive under any token).
  uint64_t Submit(const util::Bytes& request);

  // Runs the event loop until a delivery for THIS link is ready (it is
  // returned; the gaps to intervening events are charged per-event: link
  // transit to kLink, handler completions to their measured categories)
  // or the next event lies beyond `deadline_ns` — then time advances to
  // the deadline (charged kWait, the retransmission-timer idle) and
  // nullopt is returned.
  std::optional<Delivery> AwaitNext(uint64_t deadline_ns);

  // Event-driven delivery: when set, deliveries are handed to `sink` at
  // their delivery event instead of queueing for AwaitNext.  Fleet-scale
  // harnesses drive one top-level EventQueue loop and let every client's
  // completions flow through sinks, avoiding nested pumping.
  void set_delivery_sink(std::function<void(Delivery)> sink) {
    sink_ = std::move(sink);
  }

  // True if a reply has arrived and not yet been consumed by AwaitNext.
  bool HasPendingDelivery() const { return !ready_.empty(); }

  // Counts a client-driven retransmission (pipelined callers resend on
  // their own timers; Roundtrip's internal retry loop counts itself).
  void NoteRetransmission() {
    ++retransmissions_;
    m_retransmissions_->Increment();
  }

  // Per-instance counters.  The same increments also feed the link.*
  // aggregate counters in the registry, which is what benchmark
  // reporting reads (bench/testbed.h); these accessors remain as shims
  // for callers that care about one specific link.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Timer-driven resends of cached wire bytes (zero on a loss-free link).
  uint64_t retransmissions() const { return retransmissions_; }
  // Messages the interposer dropped in transit (both directions).
  uint64_t drops_observed() const { return drops_observed_; }
  // Requests the interposer delivered twice.
  uint64_t duplicates_delivered() const { return duplicates_delivered_; }
  // In-flight span bookkeeping entries (bounded by in-flight tokens:
  // entries are erased at delivery and on every drop/shed — a live
  // token is never evicted).
  size_t transit_info_size() const { return transit_info_.size(); }

  Clock* clock() const { return clock_; }
  Host* host() const { return host_; }
  const LinkProfile& profile() const { return profile_; }

 private:
  void ChargeOneWay(size_t bytes, const char* span_name);
  // Wire occupancy (bandwidth) of one message, excluding propagation.
  uint64_t SerializationNs(size_t bytes) const;
  void CountMessage(size_t bytes);
  bool SpansEnabled() const;
  // Charges the uplink watermark and schedules the arrival event.
  void ScheduleRequestLeg(uint64_t token, const util::Bytes& wire_request,
                          obs::SpanContext ctx, bool is_duplicate);
  // Service verdict in hand (at completion-event time): run the response
  // interposer, charge the downlink, schedule the delivery event.  Error
  // verdicts take the same downlink leg as success replies.
  void CompleteResponse(uint64_t token, util::Result<util::Bytes> result);
  void ScheduleResponseLeg(uint64_t token, util::Status status, util::Bytes response);
  // Delivery-event time: record the transit span, then sink or queue.
  void Deliver(Delivery delivery);
  void EraseTransitInfo(uint64_t token);
  // Schedules on the clock's queue, tracking the id for cancellation at
  // destruction (the event wrapper un-tracks itself on dispatch).
  void ScheduleEvent(uint64_t at_ns, obs::TimeCategory category,
                     std::function<void()> fn);

  Clock* clock_;
  LinkProfile profile_;
  Service* service_;
  Host* host_;
  std::unique_ptr<Host> owned_host_;
  Interposer* interposer_ = nullptr;
  RetryPolicy retry_policy_;
  // Pipelined-mode state: replies delivered but not yet consumed, and
  // busy-until watermarks for the two wire directions (the server's
  // occupancy lives in the Host).
  std::deque<Delivery> ready_;
  std::function<void(Delivery)> sink_;
  uint64_t next_token_ = 1;
  uint64_t uplink_free_ns_ = 0;
  uint64_t downlink_free_ns_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t drops_observed_ = 0;
  uint64_t duplicates_delivered_ = 0;
  // Pipelined-mode span bookkeeping: the ambient span and submit time of
  // each in-flight token, so the delivery event can record a
  // "link.transit" span parented into the submitter's trace.  Entries
  // are erased exactly when the token dies — delivery, interposer drop,
  // or server shed — never by size pruning (which used to evict live
  // tokens at fleet scale and orphan their spans).
  struct TransitInfo {
    uint64_t trace_id = 0;
    uint64_t parent_span_id = 0;
    uint64_t submit_ns = 0;
  };
  std::map<uint64_t, TransitInfo> transit_info_;
  // Events this link scheduled and has not yet seen dispatch; cancelled
  // at destruction.
  std::set<uint64_t> outstanding_events_;
  // Liveness token for closures handed to a shared Host: they capture a
  // weak copy and no-op once the link is gone.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  obs::Registry* registry_ = nullptr;
  // Registry aggregates (shared across links on the same registry).
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_NETWORK_H_
