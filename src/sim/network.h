// Simulated network: links with latency/bandwidth, a synchronous
// request/response discipline, and an adversary interposition point.
//
// The paper's threat model (§2.1.2): "malicious parties entirely control
// the network.  Attackers can intercept packets, tamper with them, and
// inject new packets."  The Interposer hook gives tests exactly these
// powers; the LinkProfile reproduces the 100 Mbit/s switched Ethernet of
// the evaluation (§4.1) with separate UDP-like and TCP-like profiles.
//
// Loss masking: real NFS/SFS transports retransmit on a timer, so a
// dropped datagram delays an operation instead of failing it.  Roundtrip
// implements that discipline — the same wire bytes are resent after an
// exponentially backed-off timeout, up to RetryPolicy::max_transmissions;
// only then does the caller observe kUnavailable.  Services are expected
// to deduplicate redelivered requests (see rpc::Dispatcher and
// sfs::ServerConnection).
#ifndef SFS_SRC_SIM_NETWORK_H_
#define SFS_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/sim/clock.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace sim {

// One reply arriving on a pipelined link (see Link::Submit/AwaitNext).
// `status` carries a service-level verdict (dead connection, malformed
// message); transit loss produces no Delivery at all — the sender's
// retransmission timer is the only signal.
struct Delivery {
  uint64_t token = 0;
  util::Status status = util::OkStatus();
  util::Bytes response;
};

// A request handler on the far side of a link ("the server machine").
class Service {
 public:
  virtual ~Service() = default;
  virtual util::Result<util::Bytes> Handle(const util::Bytes& request) = 0;
};

// Adversary hook: sees (and may rewrite, drop, or fabricate) every
// message in both directions.
class Interposer {
 public:
  virtual ~Interposer() = default;
  // Return modified bytes to forward, or an error status to drop the
  // message (the sender's retransmission timer eventually fires; after
  // the retry cap the caller observes kUnavailable).
  virtual util::Result<util::Bytes> OnRequest(util::Bytes request) { return request; }
  virtual util::Result<util::Bytes> OnResponse(util::Bytes response) { return response; }
  // Network duplication: return true to deliver the current request to
  // the service a second time.  The far side must deduplicate; the extra
  // reply finds no one waiting and is discarded.
  virtual bool DuplicateRequest() { return false; }
};

struct LinkProfile {
  uint64_t latency_ns;          // One-way propagation + switching.
  uint64_t bytes_per_sec;       // Wire bandwidth.
  uint64_t per_message_ns;      // Per-packet protocol overhead (one way).

  // 100 Mbit/s Ethernet, UDP transport (the paper's NFS 3 default).
  static LinkProfile Udp() { return {45'000, 12'500'000, 25'000}; }
  // Same wire, TCP transport (stream reassembly + ack overhead).  This is
  // the profile SFS connections use.
  static LinkProfile Tcp() { return {45'000, 11'500'000, 33'000}; }
  // FreeBSD 3.3's in-kernel NFS-over-TCP, which the paper found
  // "suboptimal" (§4.1, including a kernel panic while writing a large
  // file): same latency, degraded streaming bandwidth.
  static LinkProfile NfsTcpKernel() { return {45'000, 8'200'000, 33'000}; }
  // Loopback for the local-FS baseline.
  static LinkProfile Local() { return {0, 0, 0}; }
};

// Sender-side retransmission discipline (NFS-style timer: the FreeBSD
// default timeo is in this neighborhood, doubling per retry).
struct RetryPolicy {
  uint32_t max_transmissions = 6;        // 1 initial send + 5 retransmissions.
  uint64_t initial_rto_ns = 200'000'000;  // 200 ms before the first retry.
  uint64_t max_rto_ns = 3'200'000'000;    // Backoff ceiling.
  uint32_t backoff_factor = 2;
};

// Deterministic fault injector: drops, duplicates, and reorders messages
// with seeded probabilities.  Used by the fault-injection tests and the
// lossy benchmark configurations; with retransmission plus server-side
// duplicate-request caches, a workload must survive it with zero
// application-visible errors.
class LossyInterposer : public Interposer {
 public:
  struct Profile {
    double drop = 0.0;       // Per-message loss (each direction, independently).
    double duplicate = 0.0;  // Per-request duplicate delivery.
    double reorder = 0.0;    // Per-response delay/swap (stale delivery).
  };

  LossyInterposer(uint64_t seed, Profile profile)
      : state_(seed * 2 + 1), profile_(profile) {}

  util::Result<util::Bytes> OnRequest(util::Bytes request) override;
  util::Result<util::Bytes> OnResponse(util::Bytes response) override;
  bool DuplicateRequest() override;

  uint64_t requests_dropped() const { return requests_dropped_; }
  uint64_t responses_dropped() const { return responses_dropped_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t reorders() const { return reorders_; }

 private:
  bool Chance(double p);

  uint64_t state_;
  Profile profile_;
  // A response held back by the network; delivered later in place of a
  // fresher one (the receiver sees a stale message, not silence).
  std::optional<util::Bytes> held_;
  uint64_t requests_dropped_ = 0;
  uint64_t responses_dropped_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t reorders_ = 0;
};

// A bidirectional link to one service.  Roundtrip() charges virtual time
// for both directions, runs the interposer chain, and masks transit loss
// by retransmitting the same wire bytes on a backed-off timer.
class Link {
 public:
  // `registry` receives the aggregate link.* counters; nullptr selects
  // the process-wide obs::Registry::Default().
  Link(Clock* clock, LinkProfile profile, Service* service,
       obs::Registry* registry = nullptr)
      : clock_(clock), profile_(profile), service_(service) {
    registry_ = registry != nullptr ? registry : obs::Registry::Default();
    m_messages_ = registry_->GetCounter("link.messages");
    m_bytes_ = registry_->GetCounter("link.bytes");
    m_retransmissions_ = registry_->GetCounter("link.retransmissions");
    m_drops_ = registry_->GetCounter("link.drops");
    m_duplicates_ = registry_->GetCounter("link.duplicates_delivered");
  }

  // Installs (or clears, with nullptr) the adversary.
  void set_interposer(Interposer* interposer) { interposer_ = interposer; }

  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  util::Result<util::Bytes> Roundtrip(const util::Bytes& request);

  // --- Pipelined mode -----------------------------------------------------
  //
  // Submit() puts a request on the wire without blocking for the reply,
  // so several calls can share one round-trip of latency.  The link
  // models three serial resources — uplink, server, downlink — with
  // busy-until watermarks: concurrent messages overlap in propagation
  // but queue for bandwidth and for the server, which executes requests
  // strictly in arrival order (so a channel's replies are sealed in
  // request order).  The handler runs inside Submit and its charges
  // advance the shared clock as usual; transit time is only charged
  // when AwaitNext() sleeps until a delivery.  A message the interposer
  // drops schedules no delivery: the caller's retransmission timer is
  // the only recovery, exactly as with Roundtrip().
  //
  // Returns a token identifying the submission; the matching Delivery
  // carries it back (callers typically match on message content instead,
  // since duplicated/reordered replies can arrive under any token).
  uint64_t Submit(const util::Bytes& request);

  // Advances virtual time to the earliest scheduled delivery, charging
  // the gap to kLink, and returns it — unless that delivery is after
  // `deadline_ns`, in which case time advances to the deadline (charged
  // kWait, the retransmission-timer idle) and nullopt is returned.
  std::optional<Delivery> AwaitNext(uint64_t deadline_ns);

  // True if any reply is still scheduled for delivery.
  bool HasPendingDelivery() const { return !deliveries_.empty(); }

  // Counts a client-driven retransmission (pipelined callers resend on
  // their own timers; Roundtrip's internal retry loop counts itself).
  void NoteRetransmission() {
    ++retransmissions_;
    m_retransmissions_->Increment();
  }

  // Per-instance counters.  The same increments also feed the link.*
  // aggregate counters in the registry, which is what benchmark
  // reporting reads (bench/testbed.h); these accessors remain as shims
  // for callers that care about one specific link.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Timer-driven resends of cached wire bytes (zero on a loss-free link).
  uint64_t retransmissions() const { return retransmissions_; }
  // Messages the interposer dropped in transit (both directions).
  uint64_t drops_observed() const { return drops_observed_; }
  // Requests the interposer delivered twice.
  uint64_t duplicates_delivered() const { return duplicates_delivered_; }

  Clock* clock() const { return clock_; }
  const LinkProfile& profile() const { return profile_; }

 private:
  void ChargeOneWay(size_t bytes, const char* span_name);
  // Wire occupancy (bandwidth) of one message, excluding propagation.
  uint64_t SerializationNs(size_t bytes) const;
  void CountMessage(size_t bytes);
  bool SpansEnabled() const;

  Clock* clock_;
  LinkProfile profile_;
  Service* service_;
  Interposer* interposer_ = nullptr;
  RetryPolicy retry_policy_;
  // Pipelined-mode state: scheduled deliveries ordered by arrival time,
  // and busy-until watermarks for the three serial resources.
  std::multimap<uint64_t, Delivery> deliveries_;
  uint64_t next_token_ = 1;
  uint64_t uplink_free_ns_ = 0;
  uint64_t server_free_ns_ = 0;
  uint64_t downlink_free_ns_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t drops_observed_ = 0;
  uint64_t duplicates_delivered_ = 0;
  // Pipelined-mode span bookkeeping: the ambient span and submit time of
  // each in-flight token, so AwaitNext can record a "link.transit" span
  // parented into the submitter's trace.  Bounded: dropped messages
  // never deliver, so stale entries are pruned oldest-first.
  struct TransitInfo {
    uint64_t trace_id = 0;
    uint64_t parent_span_id = 0;
    uint64_t submit_ns = 0;
  };
  std::map<uint64_t, TransitInfo> transit_info_;
  obs::Registry* registry_ = nullptr;
  // Registry aggregates (shared across links on the same registry).
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
};

}  // namespace sim

#endif  // SFS_SRC_SIM_NETWORK_H_
