// Minimal Sun-RPC-style call/reply layer over simulated links.
//
// Mirrors the paper's implementation structure (§3.2): programs
// communicate via RPC with XDR-described messages, and the library can
// pretty-print traffic for debugging.  A Dispatcher is the server side of
// one connection; a Client issues synchronous calls over a sim::Link.
//
// Wire format (XDR):
//   call:  uint32 xid, uint32 seqno, uint32 prog, uint32 proc, opaque args
//          [, uint64 trace_id, uint64 parent_span_id]  — optional trace
//          context, appended only while span tracing is enabled (the
//          server parents its dispatch span under the client's call span;
//          see docs/OBSERVABILITY.md §"Spans")
//   reply: uint32 xid, uint32 status (0 = accepted), on error: uint32
//          code + string message, else opaque results
//
// At-most-once semantics: the link retransmits lost messages, so the
// Dispatcher keeps a duplicate-request cache (DRC) keyed by the call's
// wire sequence number — a redelivered request replays the cached reply
// instead of re-executing a possibly non-idempotent handler.  The Client
// matches replies to outstanding calls by xid; a reply matching no
// outstanding call (a late duplicate from network reordering) is counted
// and discarded, and each call retransmits on its own timer until the
// matching reply arrives or the retry budget runs out.
//
// Pipelining: set_window(n > 1) lets the Client keep up to n calls in
// flight over a transport that supports Submit/AwaitNext, overlapping
// their round trips.  Replies may arrive out of order (the xid map
// reassociates them); each in-flight call carries its own backed-off
// retransmission timer and resends the identical wire bytes, so the
// server-side DRC semantics are unchanged at any window size.  The
// default window of 1 keeps the original stop-and-wait path.
#ifndef SFS_SRC_RPC_RPC_H_
#define SFS_SRC_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/obs/metrics.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace rpc {

// How many recent replies a duplicate-request cache retains.  A
// retransmitted request older than this gets an error instead of a
// replay (with a synchronous client it would have to be ancient).
inline constexpr uint32_t kDrcWindow = 64;

// Largest send window a pipelined client may use.  Kept well under
// kDrcWindow so every in-flight seqno (and a margin of recently
// completed ones) still has a cached reply a retransmit can hit.
inline constexpr uint32_t kMaxSendWindow = 32;

// Server-side handler for one RPC program.
using ProgramHandler =
    std::function<util::Result<util::Bytes>(uint32_t proc, const util::Bytes& args)>;

// Optional proc-name resolver, used by the traffic pretty-printer.
using ProcNamer = std::function<std::string(uint32_t proc)>;

class Dispatcher : public sim::Service {
 public:
  // `registry` receives the server.* counters, per-procedure ops metrics
  // and trace events; nullptr selects obs::Registry::Default().  `clock`
  // (optional) timestamps trace events and feeds per-procedure handler
  // latency histograms.
  explicit Dispatcher(obs::Registry* registry = nullptr,
                      const sim::Clock* clock = nullptr);

  // `name` labels this program's server-side metrics
  // ("server.<name>.<PROC>.*"); empty derives "PROG<prog>".
  void RegisterProgram(uint32_t prog, ProgramHandler handler, ProcNamer namer = nullptr,
                       std::string name = "");

  // sim::Service: decode the call header, dispatch, encode the reply.
  util::Result<util::Bytes> Handle(const util::Bytes& request) override;

  // Requests answered from the duplicate-request cache (no re-execution).
  // Per-instance shim; the registry's server.drc_hits counter aggregates
  // the same events across dispatchers.
  uint64_t drc_hits() const { return drc_hits_; }

 private:
  struct Program {
    ProgramHandler handler;
    ProcNamer namer;
    std::string name;
    obs::ProcMetricsTable metrics;
  };

  std::string ProcNameFor(const Program* program, uint32_t proc) const;

  std::map<uint32_t, Program> programs_;

  // Duplicate-request cache: wire seqno -> complete reply message.
  std::map<uint32_t, util::Bytes> drc_;
  uint32_t drc_max_seqno_ = 0;
  uint64_t drc_hits_ = 0;

  obs::Registry* registry_;
  const sim::Clock* clock_;
  obs::Tracer* tracer_;
  obs::SpanCollector* spans_;
  obs::Counter* m_drc_hits_;
};

// Transport abstraction for the client: anything that can do a
// request/response roundtrip (a raw sim::Link, or an encrypted channel).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual util::Result<util::Bytes> Roundtrip(const util::Bytes& request) = 0;
  // The clock and retry policy governing this transport, when it has one;
  // lets the client charge virtual time while waiting out stale replies.
  virtual sim::Clock* clock() { return nullptr; }
  virtual const sim::RetryPolicy* retry_policy() const { return nullptr; }

  // Pipelining surface (see sim::Link): transports that can overlap
  // calls implement these; the default keeps callers on Roundtrip.
  virtual bool SupportsPipelining() const { return false; }
  virtual uint64_t Submit(const util::Bytes& request) {
    (void)request;
    return 0;
  }
  virtual std::optional<sim::Delivery> AwaitNext(uint64_t deadline_ns) {
    (void)deadline_ns;
    return std::nullopt;
  }
  virtual void NoteRetransmission() {}

  // Event-driven surface: a transport that can push deliveries at their
  // delivery event (instead of being pulled via AwaitNext) accepts a
  // sink here.  Fleet-scale harnesses run one top-level event loop over
  // thousands of clients; nested per-client pumping would recurse.
  virtual bool SupportsEventDriven() const { return false; }
  virtual void SetDeliverySink(std::function<void(sim::Delivery)> sink) { (void)sink; }
};

// Adapts sim::Link to Transport.
class LinkTransport : public Transport {
 public:
  explicit LinkTransport(sim::Link* link) : link_(link) {}
  util::Result<util::Bytes> Roundtrip(const util::Bytes& request) override {
    return link_->Roundtrip(request);
  }
  sim::Clock* clock() override { return link_->clock(); }
  const sim::RetryPolicy* retry_policy() const override { return &link_->retry_policy(); }
  bool SupportsPipelining() const override { return true; }
  uint64_t Submit(const util::Bytes& request) override { return link_->Submit(request); }
  std::optional<sim::Delivery> AwaitNext(uint64_t deadline_ns) override {
    return link_->AwaitNext(deadline_ns);
  }
  void NoteRetransmission() override { link_->NoteRetransmission(); }
  bool SupportsEventDriven() const override { return true; }
  void SetDeliverySink(std::function<void(sim::Delivery)> sink) override {
    link_->set_delivery_sink(std::move(sink));
  }

 private:
  sim::Link* link_;
};

class Client {
 public:
  // `registry` receives the rpc.client.* counters, the per-procedure
  // metric family ("rpc.client.<prog_name>.<PROC>.*") and trace events;
  // nullptr selects obs::Registry::Default().  `prog_name` labels the
  // metric names (empty derives "PROG<prog>"); `namer` resolves
  // procedure numbers for metric names and trace events.
  Client(Transport* transport, uint32_t prog, obs::Registry* registry = nullptr,
         std::string prog_name = "", ProcNamer namer = nullptr);
  ~Client();

  // Synchronous call.  Errors from the transport (kUnavailable,
  // kSecurityError) and from the remote handler both surface as Status.
  // With a window > 1 this submits through the pipelined path and pumps
  // deliveries until this call completes — earlier async calls' replies
  // are processed (and their callbacks run) along the way.
  util::Result<util::Bytes> Call(uint32_t proc, const util::Bytes& args);

  // Completion for an asynchronous call: the decoded results, or the
  // transport/handler error.  Runs inside a later Call/CallAsync/Drain.
  using Callback = std::function<void(util::Result<util::Bytes>)>;

  // Starts a call without waiting for its reply.  If the window is full,
  // blocks (pumping deliveries) until a slot frees; the wait is recorded
  // in the rpc.client.queue_wait_ns histogram.  Requires a pipelining
  // transport and window > 1.
  void CallAsync(uint32_t proc, const util::Bytes& args, Callback done);

  // Pumps until every outstanding async call has completed.
  void Drain();

  // Switches this client to event-driven completion: deliveries arrive
  // through the transport's sink at their delivery event, and each
  // in-flight call arms a cancellable retransmission timer on the
  // clock's EventQueue instead of being polled by AwaitNext.  Call/
  // CallAsync/Drain keep working (they pump the shared event loop), but
  // a fleet harness can equally run the loop itself and let completions
  // flow through callbacks.  Requires a pipelining, event-capable
  // transport; no-op otherwise.
  void EnableEventDriven();
  bool event_driven() const { return event_driven_; }

  // Sliding send window: 1 (default) is stop-and-wait; larger values
  // pipeline up to `window` concurrent calls.  Clamped to kMaxSendWindow.
  void set_window(uint32_t window);
  uint32_t window() const { return window_; }
  uint64_t in_flight() const { return pending_.size(); }

  uint64_t calls_made() const { return calls_made_; }
  // Calls resent because the reply in hand was stale (wrong xid).
  // Per-instance shim; the registry's rpc.client.stale_retries counter
  // aggregates the same events across clients.
  uint64_t retransmissions() const { return retransmissions_; }
  // Replies that matched no outstanding call (late duplicates from
  // reordering); aggregated in rpc.client.unmatched_replies.
  uint64_t unmatched_replies() const { return unmatched_replies_; }

 private:
  struct PendingCall {
    uint32_t xid = 0;
    uint32_t seqno = 0;
    uint32_t proc = 0;
    std::string proc_name;
    util::Bytes wire;  // Sealed once; retransmissions resend these bytes.
    uint64_t t_call_ns = 0;
    uint64_t deadline_ns = 0;
    uint64_t rto_ns = 0;
    uint64_t timer_id = 0;  // Event-driven retransmission timer; 0 = none.
    uint32_t attempt = 0;
    uint64_t span_id = 0;  // Open "rpc.call.<proc>" span; 0 = tracing off.
    obs::ProcMetrics* pm = nullptr;
    Callback done;
  };

  bool UsePipelining() const;
  // Sends (or resends) a pending call and arms its timer.
  void Transmit(PendingCall* call);
  // Waits for the next delivery or the earliest retransmission deadline;
  // processes whichever fires.  Returns after at most one event.
  void PumpOnce();
  // Handles one delivered message: match by xid, complete or count.
  void OnDelivery(sim::Delivery delivery);
  // Event-driven retransmission timer fired for `xid`: resend or give up.
  void OnRetransmitTimer(uint32_t xid);
  // Removes the call from the window and runs its callback.
  void Complete(uint32_t xid, util::Result<util::Bytes> result);
  void EmitEvent(obs::TraceEvent::Kind kind, const PendingCall& call,
                 uint64_t wire_bytes, const std::string& note);
  util::Result<util::Bytes> LegacyCall(uint32_t proc, const util::Bytes& args);

  Transport* transport_;
  uint32_t prog_;
  std::string prog_name_;
  ProcNamer namer_;
  uint32_t next_xid_ = 1;
  uint32_t next_seqno_ = 1;
  uint32_t window_ = 1;
  bool event_driven_ = false;
  uint64_t calls_made_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t unmatched_replies_ = 0;

  // Outstanding pipelined calls by xid, plus the submission-token map
  // used to attribute service-level error deliveries.
  std::map<uint32_t, PendingCall> pending_;
  std::map<uint64_t, uint32_t> token_to_xid_;

  obs::Registry* registry_;
  obs::Tracer* tracer_;
  obs::SpanCollector* spans_;
  obs::Counter* m_stale_retries_;
  obs::Counter* m_unmatched_replies_;
  obs::Counter* m_window_occupancy_sum_;
  obs::Counter* m_window_samples_;
  // In-flight calls across all clients on the registry, for timeline
  // gauge tracks (client window occupancy over virtual time).
  obs::Gauge* g_in_flight_;
  obs::Histogram* m_queue_wait_;
  obs::ProcMetricsTable metrics_;
};

}  // namespace rpc

#endif  // SFS_SRC_RPC_RPC_H_
